// Quickstart: build a small network, then decide two MSO properties in the
// CONGEST model — acyclicity (the paper's running MSO example) and
// 3-colorability — with round counts that depend only on the treedepth
// parameter d, not on the network size.
package main

import (
	"fmt"
	"log"

	dmc "repro"
)

func main() {
	// A small "data center spine": one core switch (0), two aggregation
	// switches (1, 2), and racks hanging off them, plus one redundant link
	// that creates a cycle.
	g := dmc.NewGraph(9)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(1, 4)
	g.MustAddEdge(2, 5)
	g.MustAddEdge(2, 6)
	g.MustAddEdge(2, 7)
	g.MustAddEdge(1, 8)
	g.MustAddEdge(0, 8) // redundant uplink: a cycle 0-1-8

	opts := dmc.Options{D: 3}

	// 1. Closed MSO formula via the generic engine.
	res, err := dmc.CheckFormula(g,
		"~ exists X:VS . (exists x:V . x in X) & "+
			"(forall x:V . x in X -> (exists y1:V, y2:V . "+
			"y1 in X & y2 in X & y1 != y2 & adj(x,y1) & adj(x,y2)))",
		opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acyclic (MSO formula):   %v  (%d CONGEST rounds, max msg %d bits <= B=%d)\n",
		res.Accepted, res.Stats.Rounds, res.Stats.MaxMsgBits, res.Stats.Bandwidth)

	// 2. The same property via the hand-compiled predicate: same answer,
	// smaller homomorphism classes.
	res, err = dmc.Check(g, dmc.Acyclic(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acyclic (compiled):      %v  (%d rounds)\n", res.Accepted, res.Stats.Rounds)

	// 3. 3-colorability — the paper's headline example: polynomial-round in
	// general networks, constant-round under bounded treedepth.
	res, err = dmc.Check(g, dmc.KColorable(3), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-colorable:             %v  (%d rounds)\n", res.Accepted, res.Stats.Rounds)

	// 4. Exceeding the treedepth budget is reported, not mis-answered.
	tiny := dmc.Options{D: 1}
	res, err = dmc.Check(g, dmc.Acyclic(), tiny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with d=1:                treedepth exceeded = %v (td(G) > 1)\n", res.TdExceeded)
}
