// Netmonitor: the paper's labeled-graph setting. Servers are labeled "red"
// (must be monitored) or "blue" (may host a monitor); the goal is a
// minimum-cost set of blue hosts adjacent to every red server — the paper's
// red/blue domination example. The optmarked protocol then audits an
// already-deployed monitor set: is it a valid AND optimal deployment?
package main

import (
	"fmt"
	"log"

	dmc "repro"
	"repro/internal/graph/gen"
)

func main() {
	// A rack-level topology of treedepth <= 3 with alternating roles.
	g, _ := gen.BoundedTreedepth(14, 3, 0.5, 77)
	for v := 0; v < g.NumVertices(); v++ {
		g.SetVertexWeight(v, int64(1+v%4)) // monitor deployment cost
		if v%3 == 0 {
			g.SetVertexLabel("red", v)
		} else {
			g.SetVertexLabel("blue", v)
		}
	}
	fmt.Printf("network: %d hosts (%d links)\n", g.NumVertices(), g.NumEdges())

	// Solve the labeled optimization problem.
	res, err := dmc.Optimize(g, dmc.RedBlueDominatingSet(), dmc.Options{D: 3, Maximize: false})
	if err != nil {
		log.Fatal(err)
	}
	if res.TdExceeded {
		log.Fatal("treedepth budget too small")
	}
	if !res.Found {
		fmt.Println("no feasible monitor placement (some red host has no blue neighbor)")
		return
	}
	fmt.Printf("optimal monitor set (cost %d, %d rounds): %v\n", res.Weight, res.Stats.Rounds, res.Selected)

	// Audit the deployment with optmarked: mark exactly the computed set.
	audit := g.Clone()
	res.Selected.ForEach(func(v int) { audit.SetVertexLabel(dmc.MarkLabel, v) })
	check, err := dmc.CheckMarked(audit, dmc.RedBlueDominatingSet(), dmc.Options{D: 3, Maximize: false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit of the optimal deployment: accepted=%v\n", check.Accepted)

	// Now audit a padded deployment: add one more blue monitor. Still valid,
	// no longer minimal, so the network rejects it.
	padded := g.Clone()
	res.Selected.ForEach(func(v int) { padded.SetVertexLabel(dmc.MarkLabel, v) })
	for v := 0; v < padded.NumVertices(); v++ {
		if padded.HasVertexLabel("blue", v) && !res.Selected.Contains(v) {
			padded.SetVertexLabel(dmc.MarkLabel, v)
			fmt.Printf("padding deployment with host %d...\n", v)
			break
		}
	}
	check, err = dmc.CheckMarked(padded, dmc.RedBlueDominatingSet(), dmc.Options{D: 3, Maximize: false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit of the padded deployment: accepted=%v (valid but not minimal)\n", check.Accepted)
}
