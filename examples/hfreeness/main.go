// Hfreeness: Corollary 7.3 on a bounded-expansion family. Maximal
// outerplanar networks (planar, 2-degenerate) of growing size are checked
// for C4 subgraphs in O(log n) CONGEST rounds: a distributed peeling builds
// the low-treedepth decomposition, and one Theorem 6.1 run per part-subset
// finds or refutes the pattern.
package main

import (
	"fmt"
	"log"
	"math"

	dmc "repro"
	"repro/internal/graph/gen"
)

func main() {
	pattern := gen.Cycle(4)
	fmt.Println("pattern: C4 (cycle on 4 vertices)")
	fmt.Printf("%6s  %8s  %12s  %12s  %8s  %s\n",
		"n", "C4-free", "total rounds", "peel rounds", "colors", "rounds/log2(n)")
	for _, n := range []int{32, 64, 128, 256} {
		g := gen.MaximalOuterplanar(n, int64(n)*31)
		res, err := dmc.HFree(g, pattern, 8, dmc.Options{D: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %8v  %12d  %12d  %8d  %.1f\n",
			n, res.HFree, res.TotalRounds, res.PeelRounds, res.NumColors,
			float64(res.TotalRounds)/math.Log2(float64(n)))
	}
	fmt.Println()
	fmt.Println("the peel phase is the Θ(log n) term; the subset phase is a large but")
	fmt.Println("n-independent constant (part counts and per-union treedepths are bounded")
	fmt.Println("by the graph class and |V(H)| alone), so the totals plateau.")
	fmt.Println()
	fmt.Println("grids are C4-heavy but triangle-free:")
	grid := gen.Grid(6, 8)
	for _, h := range []*dmc.Graph{gen.Complete(3), gen.Cycle(4)} {
		res, err := dmc.HFree(grid, h, 8, dmc.Options{D: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  pattern with %d vertices, %d edges: free=%v (rounds %d)\n",
			h.NumVertices(), h.NumEdges(), res.HFree, res.TotalRounds)
	}
}
