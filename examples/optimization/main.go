// Optimization: a weighted field-sensor network solves two of the paper's
// headline optimization problems — maximum-weight independent set (a set of
// sensors that can transmit simultaneously without interference) and a
// minimum-weight spanning tree (a cheap backbone) — with the top-down phase
// of Theorem 6.1 informing every node whether it (or one of its links) is in
// the optimal solution.
package main

import (
	"fmt"
	"log"
	"strings"

	dmc "repro"
	"repro/internal/graph/gen"
)

func main() {
	// A random bounded-treedepth radio network: 18 sensors, treedepth <= 3,
	// battery levels as vertex weights, link costs as edge weights.
	g, _ := gen.BoundedTreedepth(18, 3, 0.4, 2024)
	gen.AssignRandomWeights(g, 50, 2025)
	fmt.Printf("network: %d sensors, %d links\n\n", g.NumVertices(), g.NumEdges())

	// Maximum-weight independent set: which sensors transmit this slot?
	res, err := dmc.Optimize(g, dmc.IndependentSet(), dmc.Options{D: 3, Maximize: true})
	if err != nil {
		log.Fatal(err)
	}
	if res.TdExceeded || !res.Found {
		log.Fatalf("unexpected: %+v", res)
	}
	var senders []string
	res.Selected.ForEach(func(v int) {
		senders = append(senders, fmt.Sprintf("s%d(battery %d)", v, g.VertexWeight(v)))
	})
	fmt.Printf("transmission slot (max-weight independent set, weight %d, %d rounds):\n  %s\n\n",
		res.Weight, res.Stats.Rounds, strings.Join(senders, ", "))

	// Every selected pair must be non-adjacent — each node knows its own
	// membership, so this is locally checkable.
	for _, e := range g.Edges() {
		if res.Selected.Contains(e.U) && res.Selected.Contains(e.V) {
			log.Fatalf("interference: %d and %d both selected", e.U, e.V)
		}
	}

	// Minimum spanning tree: the cheapest backbone, as an MSO optimization
	// problem over edge sets (the paper's minφ with φ = "S is a spanning
	// tree").
	mst, err := dmc.Optimize(g, dmc.SpanningTree(), dmc.Options{D: 3, Maximize: false})
	if err != nil {
		log.Fatal(err)
	}
	if !mst.Found {
		log.Fatal("no spanning tree (network disconnected?)")
	}
	fmt.Printf("backbone (minimum spanning tree, cost %d, %d rounds):\n", mst.Weight, mst.Stats.Rounds)
	mst.SelectedEdges.ForEach(func(id int) {
		e := g.Edge(id)
		fmt.Printf("  link s%d - s%d (cost %d)\n", e.U, e.V, g.EdgeWeight(id))
	})

	// Counting: how many optimal-structure alternatives exist?
	count, err := dmc.Count(g, dmc.Triangles(), dmc.Options{D: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntriangles in the interference graph: %d (%d rounds)\n", count.Count, count.Stats.Rounds)
}
