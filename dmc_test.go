package dmc_test

import (
	"testing"

	dmc "repro"
	"repro/internal/graph/gen"
	"repro/internal/mso"
	"repro/internal/mso/msolib"
)

func TestCheckFormulaQuick(t *testing.T) {
	g := gen.Cycle(5)
	res, err := dmc.CheckFormula(g,
		"~ exists x:V, y:V, z:V . adj(x,y) & adj(y,z) & adj(z,x)",
		dmc.Options{D: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.TdExceeded || !res.Accepted {
		t.Fatalf("C5 should be triangle-free: %+v", res)
	}
	res, err = dmc.CheckFormula(gen.Complete(4),
		"~ exists x:V, y:V, z:V . adj(x,y) & adj(y,z) & adj(z,x)",
		dmc.Options{D: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("K4 contains a triangle")
	}
}

func TestFacadeDecisionPredicates(t *testing.T) {
	g, _ := gen.BoundedTreedepth(20, 3, 0.4, 42)
	for _, tc := range []struct {
		name string
		pred dmc.Predicate
	}{
		{"acyclic", dmc.Acyclic()},
		{"connected", dmc.Connected()},
		{"3-colorable", dmc.KColorable(3)},
	} {
		res, err := dmc.Check(g, tc.pred, dmc.Options{D: 3, IDSeed: 7})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.TdExceeded {
			t.Fatalf("%s: unexpected treedepth report", tc.name)
		}
		if res.Stats.Rounds == 0 {
			t.Fatalf("%s: no rounds recorded", tc.name)
		}
	}
}

func TestFacadeOptimize(t *testing.T) {
	g := gen.Path(6)
	for v := 0; v < 6; v++ {
		g.SetVertexWeight(v, 1)
	}
	res, err := dmc.Optimize(g, dmc.IndependentSet(), dmc.Options{D: 3, Maximize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 3 || res.Selected.Count() != 3 {
		t.Fatalf("MaxIS(P6) = %+v, want weight 3", res)
	}
}

func TestFacadeCount(t *testing.T) {
	res, err := dmc.Count(gen.Complete(4), dmc.Triangles(), dmc.Options{D: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 4 {
		t.Fatalf("triangles(K4) = %d, want 4", res.Count)
	}
}

func TestFacadeCheckMarked(t *testing.T) {
	g := gen.Path(4)
	for v := 0; v < 4; v++ {
		g.SetVertexWeight(v, 1)
	}
	g.SetVertexLabel(dmc.MarkLabel, 0)
	g.SetVertexLabel(dmc.MarkLabel, 2)
	res, err := dmc.CheckMarked(g, dmc.IndependentSet(), dmc.Options{D: 3, Maximize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("{0,2} is a maximum independent set of P4")
	}
}

func TestFacadeHFree(t *testing.T) {
	g := gen.Grid(4, 4)
	res, err := dmc.HFree(g, gen.Complete(3), 8, dmc.Options{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HFree {
		t.Fatal("grids are triangle-free")
	}
}

func TestFacadeCompileFormula(t *testing.T) {
	pred, err := dmc.CompileFormula(msolib.IndependentSet(), msolib.FreeSet, mso.KindVertexSet)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Path(4)
	for v := 0; v < 4; v++ {
		g.SetVertexWeight(v, 1)
	}
	res, err := dmc.Optimize(g, pred, dmc.Options{D: 3, Maximize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 2 {
		t.Fatalf("compiled MaxIS(P4) = %+v, want 2", res)
	}
}

func TestFacadeTdExceeded(t *testing.T) {
	res, err := dmc.Check(gen.Path(50), dmc.Acyclic(), dmc.Options{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TdExceeded {
		t.Fatal("P50 has treedepth > 2")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (dmc.Options{}).Validate(); err == nil {
		t.Fatal("D = 0 should fail validation")
	}
	if err := (dmc.Options{D: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBadFormula(t *testing.T) {
	if _, err := dmc.CheckFormula(gen.Path(3), "((", dmc.Options{D: 2}); err == nil {
		t.Fatal("parse error should surface")
	}
	if _, err := dmc.CheckFormula(gen.Path(3), "adj(x,y)", dmc.Options{D: 2}); err == nil {
		t.Fatal("unbound variables should surface")
	}
}

func TestFacadeCertify(t *testing.T) {
	g := gen.RandomTree(10, 5)
	certs, err := dmc.Certify(g, 4, dmc.Acyclic())
	if err != nil {
		t.Fatal(err)
	}
	ok, rejectors := dmc.VerifyCertificates(g, 4, dmc.Acyclic(), certs)
	if !ok || len(rejectors) != 0 {
		t.Fatalf("honest certificates rejected by %v", rejectors)
	}
	// On a cyclic graph, the honest proof is rejected.
	cyc := gen.Cycle(6)
	certs, err = dmc.Certify(cyc, 4, dmc.Acyclic())
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := dmc.VerifyCertificates(cyc, 4, dmc.Acyclic(), certs); ok {
		t.Fatal("false instance accepted")
	}
}
