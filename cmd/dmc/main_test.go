package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// runDMC drives the CLI in-process.
func runDMC(t *testing.T, args []string, stdin string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errw bytes.Buffer
	err = runArgs(args, strings.NewReader(stdin), &out, &errw)
	return out.String(), errw.String(), err
}

func graphText(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFlagCombinations covers every documented flag interaction: which
// combinations run, which error, and which imply others.
func TestFlagCombinations(t *testing.T) {
	g, _ := gen.BoundedTreedepth(12, 3, 0.4, 11)
	text := graphText(t, g)
	cycle := graphText(t, gen.Cycle(6))

	cases := []struct {
		name    string
		args    []string
		stdin   string
		wantOut []string // substrings of stdout
		wantErr string   // substring of the error ("" = must succeed)
	}{
		{
			name: "list", args: []string{"-list"},
			wantOut: []string{"acyclic", "max-independent-set"},
		},
		{
			name: "default-dist", args: []string{"-problem", "acyclic", "-d", "3"}, stdin: text,
			wantOut: []string{"result: accepted=", "congest: rounds="},
		},
		{
			name: "seq", args: []string{"-problem", "acyclic", "-seq"}, stdin: cycle,
			wantOut: []string{"result: accepted=false"},
		},
		{
			name: "parallel", args: []string{"-problem", "acyclic", "-d", "3", "-parallel"}, stdin: text,
			wantOut: []string{"congest: rounds="},
		},
		{
			name: "workers-implies-parallel", args: []string{"-problem", "acyclic", "-d", "3", "-workers", "2"}, stdin: text,
			wantOut: []string{"congest: rounds="},
		},
		{
			name: "workers-negative", args: []string{"-problem", "acyclic", "-workers", "-1"}, stdin: text,
			wantErr: "-workers must be >= 0",
		},
		{
			name: "seq-rejects-parallel", args: []string{"-problem", "acyclic", "-seq", "-parallel"}, stdin: text,
			wantErr: "-parallel/-workers apply to the CONGEST run",
		},
		{
			name: "seq-rejects-workers", args: []string{"-problem", "acyclic", "-seq", "-workers", "2"}, stdin: text,
			wantErr: "-parallel/-workers apply to the CONGEST run",
		},
		{
			name: "seq-rejects-seed", args: []string{"-problem", "acyclic", "-seq", "-seed", "9"}, stdin: text,
			wantErr: "-seed applies to the CONGEST run",
		},
		{
			name: "seq-rejects-faults", args: []string{"-problem", "acyclic", "-seq", "-faults"}, stdin: text,
			wantErr: "-faults applies to the CONGEST run",
		},
		{
			name: "seq-rejects-trace", args: []string{"-problem", "acyclic", "-seq", "-trace", "-"}, stdin: text,
			wantErr: "-trace applies to the CONGEST run",
		},
		{
			name: "problem-and-formula", args: []string{"-problem", "acyclic", "-formula", "exists x:V . adj(x,x)"}, stdin: text,
			wantErr: "either -problem or -formula",
		},
		{
			name: "neither-problem-nor-formula", args: []string{}, stdin: text,
			wantErr: "need -problem or -formula",
		},
		{
			name: "unknown-problem", args: []string{"-problem", "nope"}, stdin: text,
			wantErr: "unknown problem",
		},
		{
			name: "formula", args: []string{"-formula", "~ exists x:V,y:V,z:V . adj(x,y) & adj(y,z) & adj(z,x)", "-d", "3"}, stdin: text,
			wantOut: []string{"problem: formula", "result: accepted="},
		},
		{
			name: "positional-args", args: []string{"-problem", "acyclic", "extra"}, stdin: text,
			wantErr: "unexpected arguments",
		},
		{
			name: "exact-d-dist", args: []string{"-problem", "acyclic", "-exact-d"}, stdin: text,
			wantOut: []string{"treedepth: td=", "congest: rounds="},
		},
		{
			name: "exact-d-seq", args: []string{"-problem", "acyclic", "-exact-d", "-seq"}, stdin: text,
			wantOut: []string{"treedepth: td=", "result: accepted="},
		},
		{
			name: "faults-noop", args: []string{"-problem", "acyclic", "-d", "3", "-faults"}, stdin: text,
			wantOut: []string{"faults: schedule is a no-op", "congest: rounds="},
		},
		{
			name: "faults-noop-inert-reorder", args: []string{"-problem", "acyclic", "-d", "3", "-faults", "-reorder-rate", "0.5", "-reorder-window", "0"}, stdin: text,
			wantOut: []string{"faults: schedule is a no-op"},
		},
		{
			name: "faults-live", args: []string{"-problem", "acyclic", "-d", "3", "-faults", "-drop-rate", "0.1", "-fault-seed", "5"}, stdin: text,
			wantOut: []string{"reliable delivery on", "faults: dropped=", "reliable: vrounds="},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out, _, err := runDMC(t, tc.args, tc.stdin)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v\nstdout:\n%s", err, out)
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(out, want) {
					t.Fatalf("stdout missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestWorkersAloneMatchesParallel: -workers without -parallel must behave
// exactly like -parallel -workers (the old silent-ignore bug).
func TestWorkersAloneMatchesParallel(t *testing.T) {
	g, _ := gen.BoundedTreedepth(14, 3, 0.5, 23)
	text := graphText(t, g)
	want, _, err := runDMC(t, []string{"-problem", "max-independent-set", "-d", "3", "-parallel", "-workers", "3"}, text)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := runDMC(t, []string{"-problem", "max-independent-set", "-d", "3", "-workers", "3"}, text)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("-workers alone diverged from -parallel -workers:\n  got:\n%s\n  want:\n%s", got, want)
	}
	// And both must match the plain sequential-delivery run bit-for-bit.
	plain, _, err := runDMC(t, []string{"-problem", "max-independent-set", "-d", "3"}, text)
	if err != nil {
		t.Fatal(err)
	}
	if got != plain {
		t.Fatalf("worker-pool run diverged from serial delivery:\n  got:\n%s\n  want:\n%s", got, plain)
	}
}

// TestNoopFaultsMatchFaultFree: a vacuous -faults schedule must produce the
// identical report to a run without -faults (modulo the no-op notice).
func TestNoopFaultsMatchFaultFree(t *testing.T) {
	g, _ := gen.BoundedTreedepth(12, 3, 0.4, 31)
	text := graphText(t, g)
	want, _, err := runDMC(t, []string{"-problem", "acyclic", "-d", "3"}, text)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := runDMC(t, []string{"-problem", "acyclic", "-d", "3", "-faults"}, text)
	if err != nil {
		t.Fatal(err)
	}
	got = strings.Replace(got, "faults: schedule is a no-op (all rates zero); running fault-free\n", "", 1)
	if got != want {
		t.Fatalf("no-op faults run diverged from fault-free run:\n  got:\n%s\n  want:\n%s", got, want)
	}
}

// TestExactDSeqUsesWitness: -exact-d -seq must evaluate along the verified
// witness forest and agree with the distributed exact run.
func TestExactDSeqUsesWitness(t *testing.T) {
	g, _ := gen.BoundedTreedepth(10, 2, 0.5, 47)
	text := graphText(t, g)
	seqOut, _, err := runDMC(t, []string{"-problem", "count-perfect-matchings", "-exact-d", "-seq"}, text)
	if err != nil {
		t.Fatal(err)
	}
	distOut, _, err := runDMC(t, []string{"-problem", "count-perfect-matchings", "-exact-d"}, text)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(out, prefix string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, prefix) {
				return line
			}
		}
		t.Fatalf("no %q line in:\n%s", prefix, out)
		return ""
	}
	if s, d := pick(seqOut, "result:"), pick(distOut, "result:"); s != d {
		t.Fatalf("seq witness run disagrees with distributed run: %q vs %q", s, d)
	}
	if s, d := pick(seqOut, "treedepth:"), pick(distOut, "treedepth:"); s != d {
		t.Fatalf("treedepth lines disagree: %q vs %q", s, d)
	}
}

// TestTraceStreams: -trace FILE writes NDJSON there; -trace - moves the
// report to stderr.
func TestTraceStreams(t *testing.T) {
	g := gen.Path(6)
	text := graphText(t, g)
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	out, _, err := runDMC(t, []string{"-problem", "acyclic", "-d", "3", "-trace", path}, text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "congest: rounds=") {
		t.Fatalf("report missing from stdout:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(data)) == 0 || !bytes.HasPrefix(bytes.TrimSpace(data), []byte("{")) {
		t.Fatalf("trace file does not look like NDJSON: %q", data[:min(len(data), 80)])
	}

	stdout, stderr, err := runDMC(t, []string{"-problem", "acyclic", "-d", "3", "-trace", "-"}, text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "congest: rounds=") {
		t.Fatalf("report must move to stderr with -trace -:\n%s", stderr)
	}
	if !strings.HasPrefix(strings.TrimSpace(stdout), "{") {
		t.Fatalf("stdout must carry the NDJSON stream:\n%s", stdout)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
