// Command dmc runs the distributed model checker on a graph instance:
//
//	gengraph -family bounded-td -n 64 -d 3 | dmc -problem acyclic -d 3
//	dmc -graph net.g -problem max-independent-set -d 3
//	dmc -graph net.g -formula "~ exists x:V,y:V,z:V . adj(x,y) & adj(y,z) & adj(z,x)" -d 3
//	dmc -list
//
// It prints the verdict/optimum/count, the CONGEST round count, message
// totals, and the maximum message width.
//
// With -exact-d, dmc first computes the exact treedepth of the input with
// the branch-and-bound solver (internal/treedepth), validates the witness
// elimination forest, and uses the verified optimum as the parameter d —
// so the protocol never aborts with LARGE TREEDEPTH and never wastes rounds
// on an overestimate. With -seq, the sequential run evaluates along the
// witness forest itself instead of the DFS heuristic:
//
//	gengraph -family grid -rows 3 -cols 5 | dmc -problem acyclic -exact-d
//
// With -trace, dmc additionally streams a round-level NDJSON event log of
// the CONGEST simulation (see congest.NDJSONTracer for the format), which
// cmd/trace summarizes into a per-phase round/bit table:
//
//	gengraph -family bounded-td -n 64 -d 3 | dmc -problem acyclic -d 3 -trace - | trace
//
// When -trace is "-" the event log goes to stdout and the human-readable
// report moves to stderr, so the two streams can be piped independently.
//
// With -faults, dmc injects seed-driven network chaos (message drop,
// duplication, reordering, node crash-restart) and wraps every node in the
// reliable-delivery ARQ adapter, which must still produce the fault-free
// answer:
//
//	gengraph -family bounded-td -n 64 -d 3 | dmc -problem acyclic -d 3 \
//	    -faults -fault-seed 7 -drop-rate 0.2 -dup-rate 0.1 -reorder-rate 0.1
//
// The same -fault-seed replays the same chaos bit-for-bit. If the faults
// exceed the adapter's retry budget, dmc exits nonzero with the offending
// edge and round. A -faults schedule whose every rate is zero is a no-op:
// dmc says so and runs the ordinary fault-free path (parallel delivery and
// all) instead of paying for the injector and the reliable adapter.
//
// Flag interactions are explicit: -workers implies -parallel on its own,
// and the sequential mode rejects every CONGEST-only flag (-parallel,
// -workers, -seed, -faults, -trace) instead of silently ignoring it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/regular"
	"repro/internal/treedepth"
)

func main() {
	if err := runArgs(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dmc:", err)
		os.Exit(1)
	}
}

// runArgs is the whole CLI with its streams injected, so tests can drive
// every flag combination in-process.
func runArgs(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	graphPath := fs.String("graph", "-", "graph file in edge-list format ('-' = stdin)")
	problem := fs.String("problem", "", "registered problem name (see -list)")
	formula := fs.String("formula", "", "closed MSO formula (generic engine)")
	d := fs.Int("d", 3, "treedepth parameter")
	exactD := fs.Bool("exact-d", false, "compute the exact treedepth with the branch-and-bound solver and use it as d (overrides -d)")
	seed := fs.Int64("seed", 0, "adversarial ID permutation seed (0 = identity)")
	list := fs.Bool("list", false, "list registered problems and exit")
	sequential := fs.Bool("seq", false, "run the sequential Algorithm 1 instead of the CONGEST protocol")
	tracePath := fs.String("trace", "", "write an NDJSON round-level trace here ('-' = stdout, report moves to stderr)")
	parallel := fs.Bool("parallel", false, "execute node programs on the worker pool (bit-identical to sequential; implied by -workers)")
	workers := fs.Int("workers", 0, "worker-pool size, implies -parallel (0 = GOMAXPROCS with -parallel)")
	faultsOn := fs.Bool("faults", false, "inject seed-driven network faults and wrap nodes in the reliable-delivery adapter")
	faultSeed := fs.Int64("fault-seed", 1, "fault-schedule seed (same seed = same chaos, bit-for-bit)")
	dropRate := fs.Float64("drop-rate", 0, "per-message drop probability with -faults")
	dupRate := fs.Float64("dup-rate", 0, "per-message duplication probability with -faults")
	reorderRate := fs.Float64("reorder-rate", 0, "per-message reorder probability with -faults")
	reorderWindow := fs.Int("reorder-window", 4, "maximum extra delivery delay in rounds with -faults")
	crashRate := fs.Float64("crash-rate", 0, "per-node per-round crash probability with -faults (outages of 1-4 rounds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *list {
		for _, p := range core.Problems() {
			fmt.Fprintf(stdout, "%-26s %s\n", p.Name, p.Description)
		}
		return nil
	}

	// Flag interactions, made explicit instead of silently ignored:
	// -workers on its own turns the worker pool on; the sequential mode has
	// no CONGEST run for -parallel/-workers/-seed/-faults/-trace to act on.
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if *workers > 0 {
		*parallel = true
	}
	if *sequential {
		switch {
		case *parallel:
			return fmt.Errorf("-parallel/-workers apply to the CONGEST run, not -seq")
		case *seed != 0:
			return fmt.Errorf("-seed applies to the CONGEST run, not -seq")
		case *faultsOn:
			return fmt.Errorf("-faults applies to the CONGEST run, not -seq")
		case *tracePath != "":
			return fmt.Errorf("-trace applies to the CONGEST run, not -seq")
		}
	}

	g, err := loadGraph(*graphPath, stdin)
	if err != nil {
		return err
	}

	// The human-readable report goes to stdout, unless the trace stream
	// claims stdout for piping into cmd/trace.
	report := stdout
	var tracer *congest.NDJSONTracer
	if *tracePath != "" {
		sink := stdout
		if *tracePath == "-" {
			report = stderr
		} else {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			defer f.Close()
			sink = f
		}
		tracer = congest.NewNDJSONTracer(sink)
	}

	var prob core.Problem
	switch {
	case *problem != "" && *formula != "":
		return fmt.Errorf("use either -problem or -formula, not both")
	case *problem != "":
		prob, err = core.Lookup(*problem)
		if err != nil {
			return err
		}
	case *formula != "":
		pred, err := core.CompileClosedFormula(*formula)
		if err != nil {
			return err
		}
		prob = core.Problem{
			Name: "formula", Kind: core.KindDecision,
			Build:       func() (regular.Predicate, error) { return pred, nil },
			Description: *formula,
		}
	default:
		return fmt.Errorf("need -problem or -formula (or -list)")
	}

	fmt.Fprintf(report, "graph: n=%d m=%d diam=%d\n", g.NumVertices(), g.NumEdges(), g.Diameter())
	var witness *treedepth.Forest
	if *exactD {
		td, forest, stats, err := treedepth.SolveExact(g, treedepth.SolveOptions{})
		if err != nil {
			return fmt.Errorf("exact treedepth: %w", err)
		}
		if err := treedepth.ValidateForest(g, forest, td); err != nil {
			return fmt.Errorf("exact treedepth: invalid witness: %w", err)
		}
		fmt.Fprintf(report, "treedepth: td=%d (verified optimal; %d branch nodes, %d cached sets)\n",
			td, stats.Nodes, stats.CacheEntries)
		*d = td
		witness = forest
	}
	fmt.Fprintf(report, "problem: %s (d=%d)\n", prob.Name, *d)

	if *sequential {
		var sol *core.Solution
		if witness != nil {
			// The exact run already paid for an optimal elimination forest;
			// evaluate along it instead of the DFS heuristic.
			sol, err = core.SolveSequentialForest(g, prob, witness)
		} else {
			sol, err = core.SolveSequential(g, prob)
		}
		if err != nil {
			return err
		}
		printSolution(report, prob, sol)
		return nil
	}
	opts := congest.Options{IDSeed: *seed, Parallel: *parallel, Workers: *workers}
	if tracer != nil {
		opts.Tracer = tracer
	}
	var fcfg faults.Config
	if *faultsOn {
		fcfg = faults.Config{
			Seed:          *faultSeed,
			DropRate:      *dropRate,
			DupRate:       *dupRate,
			ReorderRate:   *reorderRate,
			ReorderWindow: *reorderWindow,
			CrashRate:     *crashRate,
			MinOutage:     1,
			MaxOutage:     4,
		}
		if fcfg.Noop() {
			// A schedule that can never fire would still force serial
			// delivery and the ARQ adapter's overhead; say so and run the
			// ordinary path instead.
			fmt.Fprintf(report, "faults: schedule is a no-op (all rates zero); running fault-free\n")
			*faultsOn = false
		} else {
			opts.Injector = faults.New(fcfg)
			// The reliable adapter needs frame headroom beyond the default
			// bandwidth; the wrapped protocol still sees the default budget.
			opts.BandwidthFactor = protocols.ReliableBandwidthFactor(g.NumVertices())
			fmt.Fprintf(report, "faults: %v (reliable delivery on)\n", fcfg)
		}
	}
	var sol *core.Solution
	if *faultsOn {
		sol, err = core.SolveDistributedReliable(g, prob, *d, opts, protocols.ReliableConfig{})
	} else {
		sol, err = core.SolveDistributed(g, prob, *d, opts)
	}
	if tracer != nil {
		if ferr := tracer.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		if errors.Is(err, protocols.ErrUnrecoverable) {
			return fmt.Errorf("faults exceeded the retry budget (rerun with a lower -drop-rate or a different -fault-seed): %w", err)
		}
		return err
	}
	if sol.TdExceeded {
		fmt.Fprintf(report, "result: LARGE TREEDEPTH (td(G) > %d); rerun with a larger -d\n", *d)
		return nil
	}
	printSolution(report, prob, sol)
	fmt.Fprintf(report, "congest: rounds=%d messages=%d bits=%d maxMsgBits=%d bandwidth=%d\n",
		sol.Stats.Rounds, sol.Stats.Messages, sol.Stats.Bits, sol.Stats.MaxMsgBits, sol.Stats.Bandwidth)
	if *faultsOn {
		f := sol.Stats.Faults
		fmt.Fprintf(report, "faults: dropped=%d duplicated=%d delayed=%d lost=%d crashRounds=%d\n",
			f.Dropped, f.Duplicated, f.Delayed, f.Lost, f.CrashRounds)
		r := sol.Reliability
		fmt.Fprintf(report, "reliable: vrounds=%d chunks=%d retransmits=%d dupChunks=%d ackFrames=%d\n",
			r.VirtualRounds, r.Chunks, r.Retransmits, r.DupChunks, r.AckFrames)
	}
	return nil
}

func loadGraph(path string, stdin io.Reader) (*graph.Graph, error) {
	if path == "-" {
		return graph.ReadEdgeList(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

func printSolution(w io.Writer, prob core.Problem, sol *core.Solution) {
	switch prob.Kind {
	case core.KindDecision:
		fmt.Fprintf(w, "result: accepted=%v\n", sol.Accepted)
	case core.KindOptimization:
		if !sol.Found {
			fmt.Fprintln(w, "result: infeasible")
			return
		}
		fmt.Fprintf(w, "result: optimum weight=%d selected=%v\n", sol.Weight, sol.Selected)
	case core.KindCounting:
		fmt.Fprintf(w, "result: count=%d\n", sol.Count)
	}
}
