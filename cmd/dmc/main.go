// Command dmc runs the distributed model checker on a graph instance:
//
//	gengraph -family bounded-td -n 64 -d 3 | dmc -problem acyclic -d 3
//	dmc -graph net.g -problem max-independent-set -d 3
//	dmc -graph net.g -formula "~ exists x:V,y:V,z:V . adj(x,y) & adj(y,z) & adj(z,x)" -d 3
//	dmc -list
//
// It prints the verdict/optimum/count, the CONGEST round count, message
// totals, and the maximum message width.
//
// With -exact-d, dmc first computes the exact treedepth of the input with
// the branch-and-bound solver (internal/treedepth), validates the witness
// elimination forest, and uses the verified optimum as the parameter d —
// so the protocol never aborts with LARGE TREEDEPTH and never wastes rounds
// on an overestimate. With -seq, the sequential run evaluates along the
// witness forest itself instead of the DFS heuristic:
//
//	gengraph -family grid -rows 3 -cols 5 | dmc -problem acyclic -exact-d
//
// With -trace, dmc additionally streams a round-level NDJSON event log of
// the CONGEST simulation (see congest.NDJSONTracer for the format), which
// cmd/trace summarizes into a per-phase round/bit table:
//
//	gengraph -family bounded-td -n 64 -d 3 | dmc -problem acyclic -d 3 -trace - | trace
//
// When -trace is "-" the event log goes to stdout and the human-readable
// report moves to stderr, so the two streams can be piped independently.
//
// With -faults, dmc injects seed-driven network chaos (message drop,
// duplication, reordering, node crash-restart) and wraps every node in the
// reliable-delivery ARQ adapter, which must still produce the fault-free
// answer:
//
//	gengraph -family bounded-td -n 64 -d 3 | dmc -problem acyclic -d 3 \
//	    -faults -fault-seed 7 -drop-rate 0.2 -dup-rate 0.1 -reorder-rate 0.1
//
// The same -fault-seed replays the same chaos bit-for-bit. If the faults
// exceed the adapter's retry budget, dmc exits nonzero with the offending
// edge and round. A -faults schedule whose every rate is zero is a no-op:
// dmc says so and runs the ordinary fault-free path (parallel delivery and
// all) instead of paying for the injector and the reliable adapter.
//
// With -multiproc, dmc runs the CONGEST simulation across -shards real
// worker processes (re-executions of dmc itself, or the binary named by
// -shard-bin, e.g. dmcshard) connected over a Unix socket, coordinated by
// the frame protocol in internal/congest/transport. Results are
// bit-identical to the in-process engine; the report gains a wire line
// showing what the transport actually carried versus the logical CONGEST
// bits:
//
//	gengraph -family bounded-td -n 100000 -d 3 | dmc -problem acyclic -d 3 -multiproc -shards 4
//
// -multiproc composes with -faults (the chaos moves to the frame layer:
// whole shard-to-shard batches drop, duplicate, or reorder, and the
// reliable adapter must recover) and with -trace (the coordinator
// reconstructs the exact engine event stream), but not with both at once,
// and not with -crash-rate (process crashes are not modeled).
//
// Flag interactions are explicit: -workers implies -parallel on its own,
// and the sequential mode rejects every CONGEST-only flag (-parallel,
// -workers, -seed, -faults, -trace) instead of silently ignoring it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/regular"
	"repro/internal/shard"
	"repro/internal/treedepth"
)

func main() {
	// A dmc process spawned with the shard-worker environment set is a
	// worker, not a CLI: serve the session and exit.
	if ran, err := shard.MaybeWorker(); ran {
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmc (shard worker):", err)
			os.Exit(1)
		}
		return
	}
	if err := runArgs(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dmc:", err)
		os.Exit(1)
	}
}

// runArgs is the whole CLI with its streams injected, so tests can drive
// every flag combination in-process.
func runArgs(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	graphPath := fs.String("graph", "-", "graph file in edge-list format ('-' = stdin)")
	problem := fs.String("problem", "", "registered problem name (see -list)")
	formula := fs.String("formula", "", "closed MSO formula (generic engine)")
	d := fs.Int("d", 3, "treedepth parameter")
	exactD := fs.Bool("exact-d", false, "compute the exact treedepth with the branch-and-bound solver and use it as d (overrides -d)")
	seed := fs.Int64("seed", 0, "adversarial ID permutation seed (0 = identity)")
	list := fs.Bool("list", false, "list registered problems and exit")
	sequential := fs.Bool("seq", false, "run the sequential Algorithm 1 instead of the CONGEST protocol")
	tracePath := fs.String("trace", "", "write an NDJSON round-level trace here ('-' = stdout, report moves to stderr)")
	parallel := fs.Bool("parallel", false, "execute node programs on the worker pool (bit-identical to sequential; implied by -workers)")
	workers := fs.Int("workers", 0, "worker-pool size, implies -parallel (0 = GOMAXPROCS with -parallel)")
	faultsOn := fs.Bool("faults", false, "inject seed-driven network faults and wrap nodes in the reliable-delivery adapter")
	faultSeed := fs.Int64("fault-seed", 1, "fault-schedule seed (same seed = same chaos, bit-for-bit)")
	dropRate := fs.Float64("drop-rate", 0, "per-message drop probability with -faults")
	dupRate := fs.Float64("dup-rate", 0, "per-message duplication probability with -faults")
	reorderRate := fs.Float64("reorder-rate", 0, "per-message reorder probability with -faults")
	reorderWindow := fs.Int("reorder-window", 4, "maximum extra delivery delay in rounds with -faults")
	crashRate := fs.Float64("crash-rate", 0, "per-node per-round crash probability with -faults (outages of 1-4 rounds)")
	multiproc := fs.Bool("multiproc", false, "run the simulation across real worker processes over the frame protocol")
	shards := fs.Int("shards", 2, "worker-process count with -multiproc")
	shardBin := fs.String("shard-bin", "", "worker binary with -multiproc (default: re-execute dmc itself)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *list {
		for _, p := range core.Problems() {
			fmt.Fprintf(stdout, "%-26s %s\n", p.Name, p.Description)
		}
		return nil
	}

	// Flag interactions, made explicit instead of silently ignored:
	// -workers on its own turns the worker pool on; the sequential mode has
	// no CONGEST run for -parallel/-workers/-seed/-faults/-trace to act on.
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if *workers > 0 {
		*parallel = true
	}
	if *sequential {
		switch {
		case *parallel:
			return fmt.Errorf("-parallel/-workers apply to the CONGEST run, not -seq")
		case *seed != 0:
			return fmt.Errorf("-seed applies to the CONGEST run, not -seq")
		case *faultsOn:
			return fmt.Errorf("-faults applies to the CONGEST run, not -seq")
		case *tracePath != "":
			return fmt.Errorf("-trace applies to the CONGEST run, not -seq")
		case *multiproc:
			return fmt.Errorf("-multiproc applies to the CONGEST run, not -seq")
		}
	}
	if *multiproc {
		switch {
		case *parallel:
			return fmt.Errorf("-parallel/-workers select the in-process worker pool; -multiproc already executes across processes")
		case *shards < 1:
			return fmt.Errorf("-shards must be >= 1, got %d", *shards)
		case *faultsOn && *tracePath != "":
			return fmt.Errorf("-trace and -faults cannot be combined with -multiproc (frame faults have no exact trace)")
		case *faultsOn && *crashRate > 0:
			return fmt.Errorf("-crash-rate is not modeled at the frame layer; use -multiproc -faults with drop/dup/reorder rates")
		}
	}

	g, err := loadGraph(*graphPath, stdin)
	if err != nil {
		return err
	}

	// The human-readable report goes to stdout, unless the trace stream
	// claims stdout for piping into cmd/trace.
	report := stdout
	var tracer *congest.NDJSONTracer
	if *tracePath != "" {
		sink := stdout
		if *tracePath == "-" {
			report = stderr
		} else {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			defer f.Close()
			sink = f
		}
		tracer = congest.NewNDJSONTracer(sink)
	}

	var prob core.Problem
	switch {
	case *problem != "" && *formula != "":
		return fmt.Errorf("use either -problem or -formula, not both")
	case *problem != "":
		prob, err = core.Lookup(*problem)
		if err != nil {
			return err
		}
	case *formula != "":
		pred, err := core.CompileClosedFormula(*formula)
		if err != nil {
			return err
		}
		prob = core.Problem{
			Name: "formula", Kind: core.KindDecision,
			Build:       func() (regular.Predicate, error) { return pred, nil },
			Description: *formula,
		}
	default:
		return fmt.Errorf("need -problem or -formula (or -list)")
	}

	fmt.Fprintf(report, "graph: n=%d m=%d diam=%d\n", g.NumVertices(), g.NumEdges(), g.Diameter())
	var witness *treedepth.Forest
	if *exactD {
		td, forest, stats, err := treedepth.SolveExact(g, treedepth.SolveOptions{})
		if err != nil {
			return fmt.Errorf("exact treedepth: %w", err)
		}
		if err := treedepth.ValidateForest(g, forest, td); err != nil {
			return fmt.Errorf("exact treedepth: invalid witness: %w", err)
		}
		fmt.Fprintf(report, "treedepth: td=%d (verified optimal; %d branch nodes, %d cached sets)\n",
			td, stats.Nodes, stats.CacheEntries)
		*d = td
		witness = forest
	}
	fmt.Fprintf(report, "problem: %s (d=%d)\n", prob.Name, *d)

	if *sequential {
		var sol *core.Solution
		if witness != nil {
			// The exact run already paid for an optimal elimination forest;
			// evaluate along it instead of the DFS heuristic.
			sol, err = core.SolveSequentialForest(g, prob, witness)
		} else {
			sol, err = core.SolveSequential(g, prob)
		}
		if err != nil {
			return err
		}
		printSolution(report, prob, sol)
		return nil
	}
	opts := congest.Options{IDSeed: *seed, Parallel: *parallel, Workers: *workers}
	if tracer != nil {
		opts.Tracer = tracer
	}
	var fcfg faults.Config
	if *faultsOn {
		fcfg = faults.Config{
			Seed:          *faultSeed,
			DropRate:      *dropRate,
			DupRate:       *dupRate,
			ReorderRate:   *reorderRate,
			ReorderWindow: *reorderWindow,
			CrashRate:     *crashRate,
			MinOutage:     1,
			MaxOutage:     4,
		}
		if fcfg.Noop() {
			// A schedule that can never fire would still force serial
			// delivery and the ARQ adapter's overhead; say so and run the
			// ordinary path instead.
			fmt.Fprintf(report, "faults: schedule is a no-op (all rates zero); running fault-free\n")
			*faultsOn = false
		} else if !*multiproc {
			opts.Injector = faults.New(fcfg)
			// The reliable adapter needs frame headroom beyond the default
			// bandwidth; the wrapped protocol still sees the default budget.
			opts.BandwidthFactor = protocols.ReliableBandwidthFactor(g.NumVertices())
			fmt.Fprintf(report, "faults: %v (reliable delivery on)\n", fcfg)
		}
	}
	var sol *core.Solution
	if *multiproc {
		sol, err = runMultiproc(g, multiprocArgs{
			problem: *problem, formula: *formula, d: *d, seed: *seed,
			shards: *shards, bin: *shardBin,
			faults: *faultsOn, fcfg: fcfg,
			tracer: tracer, report: report, stderr: stderr,
		})
	} else if *faultsOn {
		sol, err = core.SolveDistributedReliable(g, prob, *d, opts, protocols.ReliableConfig{})
	} else {
		sol, err = core.SolveDistributed(g, prob, *d, opts)
	}
	if tracer != nil {
		if ferr := tracer.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		if errors.Is(err, protocols.ErrUnrecoverable) {
			return fmt.Errorf("faults exceeded the retry budget (rerun with a lower -drop-rate or a different -fault-seed): %w", err)
		}
		return err
	}
	if sol.TdExceeded {
		fmt.Fprintf(report, "result: LARGE TREEDEPTH (td(G) > %d); rerun with a larger -d\n", *d)
		return nil
	}
	printSolution(report, prob, sol)
	fmt.Fprintf(report, "congest: rounds=%d messages=%d bits=%d maxMsgBits=%d bandwidth=%d\n",
		sol.Stats.Rounds, sol.Stats.Messages, sol.Stats.Bits, sol.Stats.MaxMsgBits, sol.Stats.Bandwidth)
	if *faultsOn {
		f := sol.Stats.Faults
		fmt.Fprintf(report, "faults: dropped=%d duplicated=%d delayed=%d lost=%d crashRounds=%d\n",
			f.Dropped, f.Duplicated, f.Delayed, f.Lost, f.CrashRounds)
		r := sol.Reliability
		fmt.Fprintf(report, "reliable: vrounds=%d chunks=%d retransmits=%d dupChunks=%d ackFrames=%d\n",
			r.VirtualRounds, r.Chunks, r.Retransmits, r.DupChunks, r.AckFrames)
	}
	return nil
}

// multiprocArgs bundles what the multi-process path needs from the flag set.
type multiprocArgs struct {
	problem, formula string
	d                int
	seed             int64
	shards           int
	bin              string
	faults           bool
	fcfg             faults.Config
	tracer           *congest.NDJSONTracer
	report, stderr   io.Writer
}

// runMultiproc executes the run across real worker processes and reports
// the on-wire cost next to the logical CONGEST stats.
func runMultiproc(g *graph.Graph, a multiprocArgs) (*core.Solution, error) {
	spec := shard.Spec{
		Problem: a.problem,
		Formula: a.formula,
		D:       a.d,
		IDSeed:  a.seed,
	}
	if a.formula != "" {
		spec.Mode = int(protocols.ModeDecide)
	}
	opt := shard.Options{
		Shards: a.shards,
		Spawn:  &shard.ExecSpawner{Bin: a.bin, Stderr: a.stderr},
	}
	if a.tracer != nil {
		opt.Tracer = a.tracer
	}
	if a.faults {
		inj := faults.NewFrameInjector(a.fcfg)
		if inj.Quiet() {
			fmt.Fprintf(a.report, "faults: schedule is a no-op at the frame layer; running fault-free\n")
		} else {
			opt.Faults = inj
			spec.Reliable = true
			spec.BandwidthFactor = protocols.ReliableBandwidthFactor(g.NumVertices())
			fmt.Fprintf(a.report, "faults: %v at the frame layer (reliable delivery on)\n", inj.Config())
		}
	}
	fmt.Fprintf(a.report, "multiproc: shards=%d\n", a.shards)
	res, err := shard.Run(g, spec, opt)
	if res != nil {
		// The wire view is worth printing even when the run failed loudly.
		logicalBytes := int64(0)
		if res.Run != nil {
			logicalBytes = (res.Run.Stats.Bits + 7) / 8
		}
		fmt.Fprintf(a.report, "wire: frames=%d bytes=%d logicalBytes=%d overhead=%.2fx\n",
			res.Wire.FramesSent, res.Wire.BytesSent, logicalBytes, overheadRatio(res.Wire.BytesSent, logicalBytes))
	}
	if err != nil {
		return nil, err
	}
	run := res.Run
	sel := run.Selected
	if sel == nil {
		sel = run.SelectedEdges
	}
	return &core.Solution{
		TdExceeded:  run.TdExceeded,
		Accepted:    run.Accepted,
		Found:       run.Found,
		Weight:      run.Weight,
		Count:       run.Count,
		Selected:    sel,
		Stats:       run.Stats,
		Reliability: run.Reliability,
	}, nil
}

func overheadRatio(wire, logical int64) float64 {
	if logical <= 0 {
		return 0
	}
	return float64(wire) / float64(logical)
}

func loadGraph(path string, stdin io.Reader) (*graph.Graph, error) {
	if path == "-" {
		return graph.ReadEdgeList(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

func printSolution(w io.Writer, prob core.Problem, sol *core.Solution) {
	switch prob.Kind {
	case core.KindDecision:
		fmt.Fprintf(w, "result: accepted=%v\n", sol.Accepted)
	case core.KindOptimization:
		if !sol.Found {
			fmt.Fprintln(w, "result: infeasible")
			return
		}
		fmt.Fprintf(w, "result: optimum weight=%d selected=%v\n", sol.Weight, sol.Selected)
	case core.KindCounting:
		fmt.Fprintf(w, "result: count=%d\n", sol.Count)
	}
}
