package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirLintmod moves the test into the fixture module (run() resolves the
// module from the working directory) and restores the old directory after.
func chdirLintmod(t *testing.T) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	if err := os.Chdir(filepath.Join(old, "testdata", "lintmod")); err != nil {
		t.Fatalf("chdir: %v", err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatalf("restore wd: %v", err)
		}
	})
}

// runCLI invokes run() and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// The fixture module has exactly two gorolife findings, one per package,
// arranged so that package load order (lintmod, then lintmod/apkg) disagrees
// with file order (apkg/a.go before zmain.go): every output mode must present
// them file-sorted.

func TestTextOutputSorted(t *testing.T) {
	chdirLintmod(t)
	code, out, errb := runCLI(t, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "apkg/a.go:") || !strings.Contains(lines[0], "dmclint/gorolife") {
		t.Errorf("first line = %q, want apkg/a.go gorolife finding", lines[0])
	}
	if !strings.HasPrefix(lines[1], "zmain.go:") {
		t.Errorf("second line = %q, want zmain.go finding", lines[1])
	}
}

func TestJSONOutputSorted(t *testing.T) {
	chdirLintmod(t)
	code, out, errb := runCLI(t, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	if diags[0].File != "apkg/a.go" || diags[1].File != "zmain.go" {
		t.Errorf("files = [%s %s], want [apkg/a.go zmain.go]", diags[0].File, diags[1].File)
	}
	for _, d := range diags {
		if d.Analyzer != "gorolife" || d.Line == 0 || d.Col == 0 {
			t.Errorf("diagnostic %+v: want analyzer gorolife with a real position", d)
		}
	}
}

func TestSARIFOutput(t *testing.T) {
	chdirLintmod(t)
	code, out, errb := runCLI(t, "-sarif", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb)
	}
	var log sarifFile
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q with %d runs, want 2.1.0 with 1 run", log.Version, len(log.Runs))
	}
	runOut := log.Runs[0]
	if runOut.Tool.Driver.Name != "dmclint" {
		t.Errorf("driver name = %q", runOut.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range runOut.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if !ruleIDs["dmclint/gorolife"] || !ruleIDs["dmclint/lockwitness"] {
		t.Errorf("rules missing expected analyzers: %v", runOut.Tool.Driver.Rules)
	}
	if len(runOut.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(runOut.Results))
	}
	uris := []string{
		runOut.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI,
		runOut.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI,
	}
	if uris[0] != "apkg/a.go" || uris[1] != "zmain.go" {
		t.Errorf("result URIs = %v, want sorted [apkg/a.go zmain.go]", uris)
	}
	for _, r := range runOut.Results {
		if r.RuleID != "dmclint/gorolife" || r.Level != "warning" || r.Message.Text == "" {
			t.Errorf("result %+v: want gorolife warning with a message", r)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result %+v: missing start line", r)
		}
	}
}

func TestAnalyzersFilter(t *testing.T) {
	chdirLintmod(t)
	// gorolife alone still sees both findings.
	if code, out, _ := runCLI(t, "-analyzers", "gorolife", "./..."); code != 1 || strings.Count(out, "dmclint/gorolife") != 2 {
		t.Errorf("-analyzers gorolife: exit %d output %q, want both findings", code, out)
	}
	// maporder alone is silent here (package-gated), so the tree is clean.
	if code, out, errb := runCLI(t, "-analyzers", "maporder", "./..."); code != 0 || out != "" {
		t.Errorf("-analyzers maporder: exit %d output %q stderr %q, want clean exit 0", code, out, errb)
	}
	// Unknown names are usage errors that say what is valid.
	code, _, errb := runCLI(t, "-analyzers", "nosuch", "./...")
	if code != 2 || !strings.Contains(errb, "nosuch") {
		t.Errorf("-analyzers nosuch: exit %d stderr %q, want 2 naming the bad analyzer", code, errb)
	}
}

func TestListAndFlagValidation(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"maporder", "detsource", "framing", "runerr", "lockwitness", "ctxflow", "poolpair", "gorolife"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
	if code, _, errb := runCLI(t, "-json", "-sarif", "./..."); code != 2 || !strings.Contains(errb, "mutually exclusive") {
		t.Errorf("-json -sarif: exit %d stderr %q, want usage error", code, errb)
	}
}
