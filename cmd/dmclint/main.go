// Command dmclint runs the dmclint static-analysis suite (internal/analysis)
// over the module: maporder, detsource, framing, and runerr, which together
// machine-check the simulator's determinism, framing, and error-handling
// invariants (DESIGN.md, "Statically enforced invariants").
//
// Usage:
//
//	go run ./cmd/dmclint ./...
//	go run ./cmd/dmclint -json ./internal/protocols
//
// Diagnostics print as file:line:col: dmclint/<analyzer>: message, or as a
// JSON array of {file, line, col, analyzer, message} objects with -json.
// The exit status is 1 when any diagnostic is reported, 2 on usage or load
// errors, and 0 on a clean tree. Suppress individual findings with a
// preceding //lint:ignore dmclint/<analyzer> reason comment.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON diagnostics")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dmclint [-json] [packages]\n\n"+
			"Packages are import paths, module-relative directories, or ./... for the\n"+
			"whole module (the default).\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmclint:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(root, modPath)

	paths, err := resolvePatterns(loader, root, modPath, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmclint:", err)
		os.Exit(2)
	}

	var all []jsonDiagnostic
	failed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmclint: %v\n", err)
			os.Exit(2)
		}
		diags, err := analysis.RunAnalyzers(pkg, analysis.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmclint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			failed = true
			pos := pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			all = append(all, jsonDiagnostic{
				File: file, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
	}

	w := bufio.NewWriter(os.Stdout)
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []jsonDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "dmclint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range all {
			fmt.Fprintf(w, "%s:%d:%d: dmclint/%s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "dmclint:", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// findModule walks up from the working directory to the enclosing go.mod
// and reads the module path.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module directive", filepath.Join(dir, "go.mod"))
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// resolvePatterns expands command-line package patterns into import paths.
func resolvePatterns(loader *analysis.Loader, root, modPath string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "all":
			pkgs, err := loader.ModulePackages()
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				add(p)
			}
		case strings.HasPrefix(arg, modPath):
			add(arg)
		default:
			rel := strings.TrimPrefix(strings.TrimPrefix(arg, "./"), "/")
			rel = strings.TrimSuffix(rel, "/")
			if rel == "." || rel == "" {
				add(modPath)
				continue
			}
			add(modPath + "/" + filepath.ToSlash(rel))
		}
	}
	return out, nil
}
