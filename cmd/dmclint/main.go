// Command dmclint runs the dmclint static-analysis suite (internal/analysis)
// over the module: maporder, detsource, framing, runerr, lockwitness,
// ctxflow, poolpair, and gorolife, which together machine-check the
// simulator's determinism, framing, error-handling, and concurrency
// invariants (DESIGN.md, "Statically enforced invariants").
//
// Usage:
//
//	go run ./cmd/dmclint ./...
//	go run ./cmd/dmclint -json ./internal/protocols
//	go run ./cmd/dmclint -sarif ./... > dmclint.sarif
//	go run ./cmd/dmclint -analyzers ctxflow,gorolife ./internal/congest
//
// Diagnostics print as file:line:col: dmclint/<analyzer>: message, as a JSON
// array of {file, line, col, analyzer, message} objects with -json, or as a
// SARIF 2.1.0 log with -sarif; all three orders findings by (file, line,
// column, analyzer). -analyzers restricts the run to a comma-separated
// subset of the suite; -list prints the suite and exits. The exit status is
// 1 when any diagnostic is reported, 2 on usage or load errors, and 0 on a
// clean tree. Suppress individual findings with a preceding
// //lint:ignore dmclint/<analyzer> reason comment.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dmclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	sarifOut := fs.Bool("sarif", false, "emit a SARIF 2.1.0 log")
	spec := fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dmclint [-json|-sarif] [-analyzers names] [packages]\n\n"+
			"Packages are import paths, module-relative directories, or ./... for the\n"+
			"whole module (the default).\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "dmclint: -json and -sarif are mutually exclusive")
		return 2
	}
	analyzers, err := analysis.SelectAnalyzers(*spec)
	if err != nil {
		fmt.Fprintln(stderr, "dmclint:", err)
		return 2
	}

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(stderr, "dmclint:", err)
		return 2
	}
	loader := analysis.NewLoader(root, modPath)

	paths, err := resolvePatterns(loader, root, modPath, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "dmclint:", err)
		return 2
	}

	var all []jsonDiagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "dmclint: %v\n", err)
			return 2
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "dmclint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			all = append(all, jsonDiagnostic{
				File: file, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
	}
	// Per-package runs come back in package order; present one stable,
	// position-major stream regardless of how the packages were listed.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	w := bufio.NewWriter(stdout)
	switch {
	case *jsonOut:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []jsonDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "dmclint:", err)
			return 2
		}
	case *sarifOut:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifLog(analyzers, all)); err != nil {
			fmt.Fprintln(stderr, "dmclint:", err)
			return 2
		}
	default:
		for _, d := range all {
			fmt.Fprintf(w, "%s:%d:%d: dmclint/%s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(stderr, "dmclint:", err)
		return 2
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// SARIF 2.1.0 structures, restricted to the fields dmclint emits.
type sarifFile struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLog renders the (already sorted) diagnostics as one SARIF run, with
// one rule per analyzer in the running set.
func sarifLog(analyzers []*analysis.Analyzer, diags []jsonDiagnostic) sarifFile {
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: "dmclint/" + a.Name, ShortDescription: sarifText{Text: a.Doc}}
	}
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		results[i] = sarifResult{
			RuleID:  "dmclint/" + d.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.File},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		}
	}
	return sarifFile{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "dmclint", Rules: rules}}, Results: results}},
	}
}

// findModule walks up from the working directory to the enclosing go.mod
// and reads the module path.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module directive", filepath.Join(dir, "go.mod"))
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// resolvePatterns expands command-line package patterns into import paths.
func resolvePatterns(loader *analysis.Loader, root, modPath string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "all":
			pkgs, err := loader.ModulePackages()
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				add(p)
			}
		case strings.HasPrefix(arg, modPath):
			add(arg)
		default:
			rel := strings.TrimPrefix(strings.TrimPrefix(arg, "./"), "/")
			rel = strings.TrimSuffix(rel, "/")
			if rel == "." || rel == "" {
				add(modPath)
				continue
			}
			add(modPath + "/" + filepath.ToSlash(rel))
		}
	}
	return out, nil
}
