// Package apkg carries the fixture module's second finding, in a file that
// sorts before the root package's.
package apkg

// Work leaks a goroutine with no join: one gorolife finding.
func Work() {
	go func() {}()
}
