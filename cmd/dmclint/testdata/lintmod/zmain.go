// Package lintmod is a fixture module for dmclint's CLI tests. The file is
// named zmain.go so that it sorts after apkg/a.go even though its package
// loads first: the CLI's global (file, line) ordering is what the tests pin.
package lintmod

import "lintmod/apkg"

// Spawn leaks a goroutine with no join: one gorolife finding.
func Spawn() {
	go func() {
		apkg.Work()
	}()
}
