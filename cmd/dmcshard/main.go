// Command dmcshard is a standalone shard worker for dmc's multi-process
// mode. A coordinator (dmc -multiproc, or anything driving
// internal/shard.Run with an ExecSpawner) starts K of these; each dials the
// coordinator's socket, handshakes over the frame protocol, executes its
// vertex range, and exits when the session ends.
//
// Normally the coordinator passes the connection details through the
// DMC_SHARD_SOCKET / DMC_SHARD_INDEX environment variables and no flags are
// needed. For manual runs and debugging, the same pair can be given
// explicitly:
//
//	dmcshard -connect /tmp/dmc/coord.sock -index 2
//	dmcshard -connect 127.0.0.1:9073 -index 0
//
// -connect values containing a slash are Unix socket paths; anything else
// is dialed as TCP host:port. The worker is entirely driven by the
// coordinator: it receives the graph, the run spec, and every round's
// merged traffic over the socket, and reports results the same way.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/shard"
)

func main() {
	if ran, err := shard.MaybeWorker(); ran {
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmcshard:", err)
			os.Exit(1)
		}
		return
	}
	fs := flag.NewFlagSet("dmcshard", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	connect := fs.String("connect", "", "coordinator address: a unix socket path (contains '/') or a TCP host:port")
	index := fs.Int("index", -1, "shard index this worker serves")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "dmcshard: unexpected arguments:", fs.Args())
		os.Exit(2)
	}
	if *connect == "" || *index < 0 {
		fmt.Fprintf(os.Stderr, "dmcshard: need -connect and -index (or the %s/%s environment)\n",
			shard.EnvSocket, shard.EnvIndex)
		os.Exit(2)
	}
	if err := shard.WorkerConnect(*connect, *index); err != nil {
		fmt.Fprintln(os.Stderr, "dmcshard:", err)
		os.Exit(1)
	}
}
