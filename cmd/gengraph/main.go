// Command gengraph generates graph instances in the library's edge-list
// format (or PACE .gr), for use with cmd/dmc:
//
//	gengraph -family bounded-td -n 64 -d 3 -seed 7 -weights 100 > net.g
//	gengraph -family outerplanar -n 128 > planar.g
//	gengraph -family grid-chords -rows 4 -cols 6 -chords 5 -format pace > hard.gr
//
// Families: path, cycle, star, complete, grid, grid-chords, tree,
// caterpillar, caterpillar-blowup, bounded-td, degenerate, outerplanar, gnp,
// sparse-gnp.
//
// The path, tree, and sparse-gnp families stream their edge lists directly to
// stdout (when no weights are requested and the format is edgelist), so
// n = 10^6 instances emit in O(n) auxiliary memory instead of materializing
// the full in-memory graph first.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run() error {
	family := flag.String("family", "bounded-td", "graph family")
	n := flag.Int("n", 32, "number of vertices")
	d := flag.Int("d", 3, "treedepth bound (bounded-td) / degeneracy (degenerate)")
	rows := flag.Int("rows", 4, "grid rows")
	cols := flag.Int("cols", 8, "grid cols")
	chords := flag.Int("chords", 4, "extra random chords (grid-chords)")
	spine := flag.Int("spine", 8, "caterpillar spine length")
	legs := flag.Int("legs", 2, "caterpillar legs per spine vertex")
	blowup := flag.Int("blowup", 2, "copies per vertex (caterpillar-blowup)")
	prob := flag.Float64("p", 0.3, "edge probability (gnp, bounded-td extra edges)")
	seed := flag.Int64("seed", 1, "random seed")
	weights := flag.Int64("weights", 0, "assign random weights in [1, w] (0 = none)")
	format := flag.String("format", "edgelist", "output format: edgelist or pace")
	flag.Parse()

	// Streamable families skip graph materialization entirely when nothing
	// downstream (weights, the PACE m-upfront header) forces it. The streamed
	// bytes are identical to WriteEdgeList on the materialized graph — pinned
	// by the gen package's stream-equivalence tests.
	if *weights == 0 && *format == "edgelist" {
		switch *family {
		case "path":
			return streamEdgeList(*n, func(emit func(u, v int)) { gen.StreamPath(*n, emit) })
		case "tree":
			return streamEdgeList(*n, func(emit func(u, v int)) { gen.StreamRandomTree(*n, *seed, emit) })
		case "sparse-gnp":
			return streamEdgeList(*n, func(emit func(u, v int)) { gen.StreamConnectedSparseGNP(*n, *prob, *seed, emit) })
		}
	}

	var g *graph.Graph
	switch *family {
	case "path":
		g = gen.Path(*n)
	case "cycle":
		g = gen.Cycle(*n)
	case "star":
		g = gen.Star(*n)
	case "complete":
		g = gen.Complete(*n)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "grid-chords":
		g = gen.GridWithChords(*rows, *cols, *chords, *seed)
	case "tree":
		g = gen.RandomTree(*n, *seed)
	case "caterpillar":
		g = gen.Caterpillar(*spine, *legs)
	case "caterpillar-blowup":
		g = gen.Blowup(gen.Caterpillar(*spine, *legs), *blowup)
	case "bounded-td":
		g, _ = gen.BoundedTreedepth(*n, *d, *prob, *seed)
	case "degenerate":
		g = gen.RandomDegenerate(*n, *d, *seed)
	case "outerplanar":
		g = gen.MaximalOuterplanar(*n, *seed)
	case "gnp":
		g = gen.RandomGNP(*n, *prob, *seed)
	case "sparse-gnp":
		g = gen.ConnectedSparseGNP(*n, *prob, *seed)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if *weights > 0 {
		gen.AssignRandomWeights(g, *weights, *seed+1)
	}
	switch *format {
	case "edgelist":
		return graph.WriteEdgeList(os.Stdout, g)
	case "pace":
		return graph.WritePACE(os.Stdout, g)
	default:
		return fmt.Errorf("unknown format %q (want edgelist or pace)", *format)
	}
}

// streamEdgeList writes the edge-list format of WriteEdgeList for an
// unweighted, unlabeled graph delivered edge-by-edge. bufio latches the first
// write error, so checking Flush at the end covers the whole stream.
func streamEdgeList(n int, stream func(emit func(u, v int))) error {
	bw := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(bw, "n %d\n", n)
	stream(func(u, v int) {
		fmt.Fprintf(bw, "e %d %d\n", u, v)
	})
	return bw.Flush()
}
