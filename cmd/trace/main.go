// Command trace summarizes an NDJSON trace captured with dmc -trace (or any
// congest.NDJSONTracer stream) into a per-phase round/bit table:
//
//	gengraph -family bounded-td -n 64 -d 3 | dmc -problem acyclic -d 3 -trace - | trace
//	dmc -graph net.g -problem mst -d 3 -trace run.ndjson && trace -in run.ndjson
//
// Each row is one message kind (protocol phase): the rounds it spans, the
// number of rounds it was actually active in, its message and bit totals,
// its largest message, and its share of all bits. The footer reports the
// aggregate statistics and the network's bandwidth utilization.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/congest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "-", "NDJSON trace file ('-' = stdin)")
	perRound := flag.Bool("rounds", false, "also print the per-round histogram")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	var m congest.MetricsTracer
	events, err := congest.ReadTrace(r, &m)
	if err != nil {
		return err
	}
	if events == 0 {
		return fmt.Errorf("empty trace")
	}

	info, stats := m.Info(), m.Stats()
	fmt.Printf("trace: n=%d m=%d bandwidth=%d bits/edge/round, %d events\n\n",
		info.N, info.Edges, info.Bandwidth, events)

	writeTable(os.Stdout, []string{"phase", "rounds", "active", "messages", "bits", "maxMsgBits", "bits%"}, kindRows(&m, stats))

	if *perRound {
		fmt.Println()
		rows := make([][]string, 0, len(m.PerRound()))
		for _, rm := range m.PerRound() {
			rows = append(rows, []string{
				fmt.Sprintf("%d", rm.Round),
				fmt.Sprintf("%d", rm.Messages),
				fmt.Sprintf("%d", rm.Bits),
				fmt.Sprintf("%d", rm.Active),
				fmt.Sprintf("%d", rm.Halted),
			})
		}
		writeTable(os.Stdout, []string{"round", "messages", "bits", "active", "halted"}, rows)
	}

	fmt.Printf("\ntotal: rounds=%d messages=%d bits=%d maxMsgBits=%d haltedNodes=%d utilization=%.2f%%\n",
		stats.Rounds, stats.Messages, stats.Bits, stats.MaxMsgBits, stats.HaltedNodes, 100*m.Utilization())
	return nil
}

func kindRows(m *congest.MetricsTracer, stats congest.Stats) [][]string {
	var rows [][]string
	for _, k := range m.PerKind() {
		name := k.Kind
		if name == "" {
			name = "(untagged)"
		}
		share := 0.0
		if stats.Bits > 0 {
			share = 100 * float64(k.Bits) / float64(stats.Bits)
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d-%d", k.FirstRound, k.LastRound),
			fmt.Sprintf("%d", k.Rounds),
			fmt.Sprintf("%d", k.Messages),
			fmt.Sprintf("%d", k.Bits),
			fmt.Sprintf("%d", k.MaxMsgBits),
			fmt.Sprintf("%.1f", share),
		})
	}
	return rows
}

func writeTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
}
