// Command dmcd is the distributed-model-checking daemon: an HTTP+JSON
// service answering dmc-style queries over a persistent worker pool, with
// process-lifetime DP caches shared across requests and recycled CONGEST
// engine scratch. Answers are bit-identical to one-shot dmc runs.
//
//	dmcd -addr :8090 &
//	curl -s localhost:8090/v1/check -d '{
//	  "graph": "0 1\n1 2\n2 3\n",
//	  "problem": "acyclic",
//	  "d": 3
//	}'
//	curl -s localhost:8090/v1/stats
//
// On SIGINT/SIGTERM the daemon drains: /healthz turns 503 (so load
// balancers stop routing), new checks are refused, in-flight solves finish
// (bounded by -drain-grace), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dmcd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", 0, "CONGEST worker-pool size per request (0 = GOMAXPROCS)")
	maxConcurrent := flag.Int("max-concurrent", 0, "solves in flight (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "waiting requests beyond -max-concurrent before 429 (0 = 64)")
	timeout := flag.Duration("timeout", 0, "per-request solve timeout (0 = 30s)")
	composeCap := flag.Int("compose-cap", 0, "compose-memo entries per shared cache (0 = library default)")
	maxGraphBytes := flag.Int64("max-graph-bytes", 0, "request body limit (0 = 8 MiB)")
	maxFormulas := flag.Int("max-formulas", 0, "compiled-formula caches retained, LRU (0 = 64)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long to wait for in-flight solves on shutdown")
	flag.Parse()

	srv := serve.New(serve.Options{
		Workers:        *workers,
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		RequestTimeout: *timeout,
		ComposeCap:     *composeCap,
		MaxGraphBytes:  *maxGraphBytes,
		MaxFormulas:    *maxFormulas,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("dmcd: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("dmcd: draining (grace %v)", *drainGrace)
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("dmcd: drained cleanly")
	return nil
}
