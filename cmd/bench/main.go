// Command bench regenerates the full evaluation suite of EXPERIMENTS.md:
// every table (T1–T7) and figure series (F1–F3), printed as aligned text or
// CSV.
//
//	bench                # run everything, full sweeps
//	bench -quick         # smaller sweeps (the test-suite configuration)
//	bench -only T1,F2    # a subset
//	bench -csv           # machine-readable output
//
// The S1 engine-scaling scenario can additionally serialize its report:
//
//	bench -only S1 -scaling-out BENCH_congest.json
//
// The sweep runs once; the table and the JSON document come from the same
// measurements, and the command exits nonzero if any parallel run diverges
// from its sequential twin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "smaller sweeps")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	csv := flag.Bool("csv", false, "CSV output")
	scalingOut := flag.String("scaling-out", "", "write the S1 scaling report as JSON to this path")
	flag.Parse()

	// When the JSON report is requested, run the S1 sweep exactly once and
	// reuse the measurements for both outputs.
	var scalingRep *experiments.ScalingReport
	if *scalingOut != "" {
		rep, err := experiments.ScalingSweep(*quick)
		if err != nil {
			return err
		}
		scalingRep = rep
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*scalingOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *scalingOut)
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		start := time.Now()
		var tab *experiments.Table
		var err error
		if e.ID == "S1" && scalingRep != nil {
			tab = experiments.ScalingTable(scalingRep)
		} else {
			tab, err = e.Run(*quick)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", e.ID, tab.CSV())
		} else {
			fmt.Println(tab.Render())
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
