// Command bench regenerates the full evaluation suite of EXPERIMENTS.md:
// every table (T1–T7) and figure series (F1–F3), printed as aligned text or
// CSV.
//
//	bench                # run everything, full sweeps
//	bench -quick         # smaller sweeps (the test-suite configuration)
//	bench -only T1,F2    # a subset
//	bench -csv           # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "smaller sweeps")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	csv := flag.Bool("csv", false, "CSV output")
	flag.Parse()

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(*quick)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", e.ID, tab.CSV())
		} else {
			fmt.Println(tab.Render())
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
