// Command bench regenerates the full evaluation suite of EXPERIMENTS.md:
// every table (T1–T7) and figure series (F1–F3), printed as aligned text or
// CSV.
//
//	bench                # run everything, full sweeps
//	bench -quick         # smaller sweeps (the test-suite configuration)
//	bench -only T1,F2    # a subset
//	bench -csv           # machine-readable output
//
// The S1 engine-scaling and S2 DP-algebra scenarios can additionally
// serialize their reports:
//
//	bench -only S1 -scaling-out BENCH_congest.json
//	bench -only S2 -dp-out BENCH_dp.json
//	bench -only S3 -faults-out BENCH_faults.json
//	bench -only S6 -td-out BENCH_td.json
//	bench -only S7 -multiproc-out BENCH_multiproc.json
//
// Each sweep runs once; the table and the JSON document come from the same
// measurements, and the command exits nonzero if any parallel run diverges
// from its sequential twin (S1), any cached run diverges from its uncached
// reference (S2), any fault-injected run reports a wrong verdict or an
// unrecoverable failure at a drop rate the retry budget must mask (S3), or
// any treedepth run returns an invalid witness or disagrees with the naive
// oracle (S6), or any sharded run's stats or state checksum diverge from the
// in-process engine (S7).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "smaller sweeps")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	csv := flag.Bool("csv", false, "CSV output")
	scalingOut := flag.String("scaling-out", "", "write the S1 scaling report as JSON to this path")
	scalingSizes := flag.String("scaling-sizes", "", "comma-separated n values for the S1 sweep (default: the built-in sizes)")
	dpOut := flag.String("dp-out", "", "write the S2 DP-algebra report as JSON to this path")
	faultsOut := flag.String("faults-out", "", "write the S3 fault-injection report as JSON to this path")
	serveOut := flag.String("serve-out", "", "write the S4 dmcd load-test report as JSON to this path")
	tdOut := flag.String("td-out", "", "write the S6 exact-treedepth report as JSON to this path")
	multiprocOut := flag.String("multiproc-out", "", "write the S7 multi-process transport report as JSON to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected sweeps to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after all sweeps) to this path")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "bench: cpuprofile close:", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
				return
			}
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile close:", err)
			}
		}()
	}

	var sizes []int
	if *scalingSizes != "" {
		for _, s := range strings.Split(*scalingSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("invalid -scaling-sizes entry %q", s)
			}
			sizes = append(sizes, n)
		}
	}

	// When a JSON report is requested, run that sweep exactly once and reuse
	// the measurements for both outputs.
	var scalingRep *experiments.ScalingReport
	if *scalingOut != "" {
		rep, err := experiments.ScalingSweepSizes(*quick, sizes)
		if rep != nil {
			// Write the report even on divergence so the artifact shows which
			// runs failed; the error still fails the command.
			if werr := writeJSON(*scalingOut, rep); werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			return err
		}
		scalingRep = rep
	}
	var dpRep *experiments.DPReport
	if *dpOut != "" {
		rep, err := experiments.DPSweep(*quick)
		if rep != nil {
			// Write the report even on divergence so the artifact shows which
			// runs failed; the error still fails the command.
			if werr := writeJSON(*dpOut, rep); werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			return err
		}
		dpRep = rep
	}
	var faultsRep *experiments.FaultReport
	if *faultsOut != "" {
		rep, err := experiments.FaultSweep(*quick)
		if rep != nil {
			// Write the report even on divergence so the artifact shows which
			// runs failed; the error still fails the command.
			if werr := writeJSON(*faultsOut, rep); werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			return err
		}
		faultsRep = rep
	}
	var serveRep *experiments.ServeReport
	if *serveOut != "" {
		rep, err := experiments.ServeSweep(*quick)
		if rep != nil {
			// Write the report even on divergence so the artifact shows which
			// runs failed; the error still fails the command.
			if werr := writeJSON(*serveOut, rep); werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			return err
		}
		serveRep = rep
	}
	var tdRep *experiments.TDReport
	if *tdOut != "" {
		rep, err := experiments.TDSweep(*quick)
		if rep != nil {
			// Write the report even on divergence so the artifact shows which
			// runs failed; the error still fails the command.
			if werr := writeJSON(*tdOut, rep); werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			return err
		}
		tdRep = rep
	}
	var multiprocRep *experiments.MultiprocReport
	if *multiprocOut != "" {
		rep, err := experiments.MultiprocSweep(*quick)
		if rep != nil {
			// Write the report even on divergence so the artifact shows which
			// runs failed; the error still fails the command.
			if werr := writeJSON(*multiprocOut, rep); werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			return err
		}
		multiprocRep = rep
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		start := time.Now()
		var tab *experiments.Table
		var err error
		switch {
		case e.ID == "S1" && scalingRep != nil:
			tab = experiments.ScalingTable(scalingRep)
		case e.ID == "S2" && dpRep != nil:
			tab = experiments.DPTable(dpRep)
		case e.ID == "S3" && faultsRep != nil:
			tab = experiments.FaultTable(faultsRep)
		case e.ID == "S4" && serveRep != nil:
			tab = experiments.ServeTable(serveRep)
		case e.ID == "S6" && tdRep != nil:
			tab = experiments.TDTable(tdRep)
		case e.ID == "S7" && multiprocRep != nil:
			tab = experiments.MultiprocTable(multiprocRep)
		default:
			tab, err = e.Run(*quick)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", e.ID, tab.CSV())
		} else {
			fmt.Println(tab.Render())
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)
	return nil
}
