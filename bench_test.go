package dmc_test

import (
	"testing"

	dmc "repro"
	"repro/internal/congest"
	"repro/internal/experiments"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
)

// --- One benchmark per EXPERIMENTS.md table/figure. Each iteration
// regenerates the experiment in its quick configuration; run cmd/bench for
// the full sweeps and formatted output. ---

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(true)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkT1DecisionRoundsVsN(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkT2RoundsVsDepth(b *testing.B)     { benchExperiment(b, "T2") }
func BenchmarkT3Optimization(b *testing.B)      { benchExperiment(b, "T3") }
func BenchmarkT4Counting(b *testing.B)          { benchExperiment(b, "T4") }
func BenchmarkT5OptMarked(b *testing.B)         { benchExperiment(b, "T5") }
func BenchmarkT6HFreeExpansion(b *testing.B)    { benchExperiment(b, "T6") }
func BenchmarkT7GenericVsCompiled(b *testing.B) { benchExperiment(b, "T7") }
func BenchmarkT8PhaseBreakdown(b *testing.B)    { benchExperiment(b, "T8") }
func BenchmarkF1MessageWidth(b *testing.B)      { benchExperiment(b, "F1") }
func BenchmarkF2BaselineCrossover(b *testing.B) { benchExperiment(b, "F2") }
func BenchmarkF3ElimTree(b *testing.B)          { benchExperiment(b, "F3") }
func BenchmarkS1EngineScaling(b *testing.B)     { benchExperiment(b, "S1") }
func BenchmarkS2DPAlgebra(b *testing.B)         { benchExperiment(b, "S2") }

// --- Micro-benchmarks: the building blocks. ---

func BenchmarkSequentialDecideAcyclic(b *testing.B) {
	g, _ := gen.BoundedTreedepth(256, 3, 0.2, 1)
	forest := treedepth.DFSForest(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := seq.New(g, forest, predicates.Acyclicity{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := run.Decide(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialOptimizeMaxIS(b *testing.B) {
	g, _ := gen.BoundedTreedepth(128, 3, 0.2, 2)
	gen.AssignRandomWeights(g, 10, 3)
	forest := treedepth.DFSForest(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := seq.New(g, forest, predicates.IndependentSet{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := run.Optimize(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedDecideAcyclic(b *testing.B) {
	g, _ := gen.BoundedTreedepth(256, 3, 0.2, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := protocols.Decide(g, 3, predicates.Acyclicity{}, congest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.TdExceeded {
			b.Fatal("unexpected treedepth report")
		}
	}
}

// BenchmarkDistributedDecideAcyclicTraced is the traced twin of
// BenchmarkDistributedDecideAcyclic: the delta between the two is the full
// cost of metrics tracing, and BenchmarkDistributedDecideAcyclic itself
// guards the nil-tracer path against regressions.
func BenchmarkDistributedDecideAcyclicTraced(b *testing.B) {
	g, _ := gen.BoundedTreedepth(256, 3, 0.2, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m congest.MetricsTracer
		res, err := protocols.Decide(g, 3, predicates.Acyclicity{}, congest.Options{Tracer: &m})
		if err != nil {
			b.Fatal(err)
		}
		if res.TdExceeded {
			b.Fatal("unexpected treedepth report")
		}
		if len(m.PerKind()) == 0 {
			b.Fatal("tracer captured nothing")
		}
	}
}

func BenchmarkDistributedOptimizeMST(b *testing.B) {
	g, _ := gen.BoundedTreedepth(64, 2, 0.4, 5)
	gen.AssignRandomWeights(g, 20, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := protocols.Optimize(g, 2, predicates.SpanningTree{}, false, congest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("no spanning tree")
		}
	}
}

func BenchmarkDistributedCountTriangles(b *testing.B) {
	g, _ := gen.BoundedTreedepth(64, 3, 0.4, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := protocols.Count(g, 3, predicates.Triangles{}, congest.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineDecideAcyclic(b *testing.B) {
	g, _ := gen.BoundedTreedepth(256, 3, 0.2, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := protocols.BaselineDecide(g, protocols.AcyclicSolver, congest.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenericEngineTriangleFree(b *testing.B) {
	g, _ := gen.BoundedTreedepth(32, 2, 0.5, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dmc.CheckFormula(g,
			"~ exists x:V, y:V, z:V . adj(x,y) & adj(y,z) & adj(z,x)", dmc.Options{D: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.TdExceeded {
			b.Fatal("unexpected treedepth report")
		}
	}
}

func BenchmarkElimTreeConstruction(b *testing.B) {
	g, _ := gen.BoundedTreedepth(512, 3, 0.2, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := protocols.Decide(g, 3, predicates.Connectivity{}, congest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Forest.Depth() > 8 {
			b.Fatal("depth bound violated")
		}
	}
}
