package wterm

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/treedepth"
)

// Derivation describes how the subtree graph G_u of every elimination-tree
// node is built from base graphs by composition: at node u with children
// v_1..v_q (sorted), start from the edge-owned base graph of u and fold each
// child's subtree graph in with the gluing f_(B_u, B_{v_i}); the child's own
// vertex v_i is forgotten by that gluing. This is the composition sequence of
// Equations (1)–(2) of the paper, reassociated so that each base graph
// appears exactly once.
type Derivation struct {
	G      *graph.Graph
	Forest *treedepth.Forest
	// Bags[u] is the sorted bag (u plus ancestors) of every vertex.
	Bags [][]int
	// Order is a post-order listing of the vertices (children before
	// parents), usable to drive bottom-up dynamic programming.
	Order []int
}

// NewDerivation validates the elimination forest against g and precomputes
// bags and a post-order traversal.
func NewDerivation(g *graph.Graph, f *treedepth.Forest) (*Derivation, error) {
	if err := f.VerifyElimination(g); err != nil {
		return nil, fmt.Errorf("wterm: %w", err)
	}
	n := g.NumVertices()
	bags := make([][]int, n)
	for u := 0; u < n; u++ {
		bag := f.PathToRoot(u)
		sort.Ints(bag)
		bags[u] = bag
	}
	children := f.Children()
	order := make([]int, 0, n)
	var post func(u int)
	post = func(u int) {
		for _, c := range children[u] {
			post(c)
		}
		order = append(order, u)
	}
	for _, r := range f.Roots() {
		post(r)
	}
	return &Derivation{G: g, Forest: f, Bags: bags, Order: order}, nil
}

// Base returns the edge-owned base graph of node u.
func (d *Derivation) Base(u int) (*TerminalGraph, error) {
	return BaseFromBag(d.G, d.Bags[u], u)
}

// FoldGluing returns the gluing used to fold child v's subtree graph into
// the accumulator at node u: operand 1 has bag B_u, operand 2 has bag B_v,
// and the result keeps B_u (forgetting v).
func (d *Derivation) FoldGluing(u, v int) (Gluing, error) {
	return GluingFromBags(d.Bags[u], d.Bags[v], d.Bags[u])
}

// SubtreeGraph materializes G_u by actually composing terminal graphs
// bottom-up. It is exponential in nothing but linear in subtree size, yet
// materializes real graphs, so it is intended for tests and for the generic
// MSO engine's representatives rather than for large-scale runs.
func (d *Derivation) SubtreeGraph(u int) (*TerminalGraph, error) {
	children := d.Forest.Children()
	var build func(u int) (*TerminalGraph, error)
	build = func(u int) (*TerminalGraph, error) {
		acc, err := d.Base(u)
		if err != nil {
			return nil, err
		}
		for _, c := range children[u] {
			sub, err := build(c)
			if err != nil {
				return nil, err
			}
			m, err := d.FoldGluing(u, c)
			if err != nil {
				return nil, err
			}
			acc, err = Compose(m, acc, sub)
			if err != nil {
				return nil, err
			}
		}
		return acc, nil
	}
	return build(u)
}
