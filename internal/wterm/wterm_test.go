package wterm

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/treedepth"
)

func TestGluingValidate(t *testing.T) {
	good := Gluing{Rows: [][2]int{{1, 1}, {2, 0}}, N1: 2, N2: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Gluing{
		{Rows: [][2]int{{3, 0}}, N1: 2, N2: 1},         // out of range
		{Rows: [][2]int{{0, 0}}, N1: 1, N2: 1},         // fresh terminal
		{Rows: [][2]int{{1, 0}, {1, 0}}, N1: 2, N2: 1}, // reused operand-1 terminal
		{Rows: [][2]int{{1, 1}, {2, 1}}, N1: 2, N2: 2}, // reused operand-2 terminal
		{Rows: [][2]int{{-1, 0}}, N1: 1, N2: 1},        // negative
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestGluingForgottenShared(t *testing.T) {
	m := Gluing{Rows: [][2]int{{1, 2}, {0, 3}}, N1: 3, N2: 3}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	f1 := m.Forgotten1()
	if len(f1) != 2 || f1[0] != 2 || f1[1] != 3 {
		t.Fatalf("Forgotten1 = %v", f1)
	}
	f2 := m.Forgotten2()
	if len(f2) != 1 || f2[0] != 1 {
		t.Fatalf("Forgotten2 = %v", f2)
	}
	sh := m.SharedRows()
	if len(sh) != 1 || sh[0] != 0 {
		t.Fatalf("SharedRows = %v", sh)
	}
	if m.Key() == (Gluing{Rows: [][2]int{{1, 2}, {0, 2}}, N1: 3, N2: 3}).Key() {
		t.Fatal("different gluings must have different keys")
	}
}

func TestGluingFromBags(t *testing.T) {
	m, err := GluingFromBags([]int{2, 5}, []int{2, 5, 7}, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != 2 || m.Rows[0] != [2]int{1, 1} || m.Rows[1] != [2]int{2, 2} {
		t.Fatalf("Rows = %v", m.Rows)
	}
	if f := m.Forgotten2(); len(f) != 1 || f[0] != 3 {
		t.Fatalf("Forgotten2 = %v", f)
	}
	if _, err := GluingFromBags([]int{1}, []int{2}, []int{3}); err == nil {
		t.Fatal("vertex in neither bag should fail")
	}
}

// Paper Figure 2: paths as 2-terminal recursive graphs.
func TestComposePaperFigure2(t *testing.T) {
	// Edge a-b with terminals (a=1st, b=2nd).
	edge := func() *TerminalGraph {
		g := graph.New(2)
		g.MustAddEdge(0, 1)
		return &TerminalGraph{G: g, Terminals: []int{0, 1}}
	}
	// m(f) = ((2,1),(0,2)): result 1st terminal = op1's 2nd = op2's 1st;
	// result 2nd terminal = op2's 2nd. Op1's 1st terminal forgotten.
	m := Gluing{Rows: [][2]int{{2, 1}, {0, 2}}, N1: 2, N2: 2}
	p3, err := Compose(m, edge(), edge())
	if err != nil {
		t.Fatal(err)
	}
	if p3.G.NumVertices() != 3 || p3.G.NumEdges() != 2 {
		t.Fatalf("compose gave %v", p3.G)
	}
	if p3.G.Diameter() != 2 {
		t.Fatal("result should be P3")
	}
	// Compose again to get P4.
	p4, err := Compose(m, p3, edge())
	if err != nil {
		t.Fatal(err)
	}
	if p4.G.NumVertices() != 4 || p4.G.NumEdges() != 3 || p4.G.Diameter() != 3 {
		t.Fatalf("second compose gave %v", p4.G)
	}
	// Terminals are the path endpoints... the 1st terminal of P4 is internal
	// actually; check terminals are distinct and valid.
	if err := p4.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComposeCarriesLabelsAndWeights(t *testing.T) {
	g1 := graph.New(2)
	g1.MustAddEdge(0, 1)
	g1.SetVertexLabel("red", 0)
	g1.SetVertexWeight(1, 7)
	g1.SetEdgeWeight(0, 3)
	g1.SetEdgeLabel("mark", 0)
	t1 := &TerminalGraph{G: g1, Terminals: []int{1}}
	g2 := graph.New(2)
	g2.MustAddEdge(0, 1)
	g2.SetVertexWeight(0, 7) // same glued vertex, same weight
	g2.SetVertexLabel("blue", 1)
	t2 := &TerminalGraph{G: g2, Terminals: []int{0}}
	m := Gluing{Rows: [][2]int{{1, 1}}, N1: 1, N2: 1}
	out, err := Compose(m, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if out.G.NumVertices() != 3 || out.G.NumEdges() != 2 {
		t.Fatalf("compose gave %v", out.G)
	}
	if !out.G.HasVertexLabel("red", 0) {
		t.Fatal("lost op1 vertex label")
	}
	if out.G.VertexWeight(out.Terminals[0]) != 7 {
		t.Fatal("lost glued vertex weight")
	}
	eid, _ := out.G.EdgeBetween(0, 1)
	if out.G.EdgeWeight(eid) != 3 || !out.G.HasEdgeLabel("mark", eid) {
		t.Fatal("lost edge weight/label")
	}
	blueFound := false
	for v := 0; v < 3; v++ {
		if out.G.HasVertexLabel("blue", v) {
			blueFound = true
		}
	}
	if !blueFound {
		t.Fatal("lost op2 vertex label")
	}
}

func TestComposeRejectsDuplicateEdge(t *testing.T) {
	// Both operands own the edge between the two glued terminals.
	mk := func() *TerminalGraph {
		g := graph.New(2)
		g.MustAddEdge(0, 1)
		return &TerminalGraph{G: g, Terminals: []int{0, 1}}
	}
	m := Gluing{Rows: [][2]int{{1, 1}, {2, 2}}, N1: 2, N2: 2}
	if _, err := Compose(m, mk(), mk()); err == nil {
		t.Fatal("duplicate edge should be rejected under the edge-owned grammar")
	}
}

func TestComposeArityMismatch(t *testing.T) {
	g := graph.New(1)
	t1 := &TerminalGraph{G: g, Terminals: []int{0}}
	m := Gluing{Rows: [][2]int{{1, 1}}, N1: 2, N2: 1}
	if _, err := Compose(m, t1, t1); err == nil {
		t.Fatal("terminal count mismatch should fail")
	}
}

func TestBaseFromBag(t *testing.T) {
	g := gen.Complete(4)
	g.SetVertexWeight(2, 5)
	g.SetVertexLabel("red", 3)
	base, err := BaseFromBag(g, []int{3, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Bag sorted: [1 2 3]; owner 3 is local 2; edges 3-1 and 3-2 only.
	if base.G.NumVertices() != 3 || base.G.NumEdges() != 2 {
		t.Fatalf("base = %v", base.G)
	}
	if !base.G.HasEdge(2, 0) || !base.G.HasEdge(2, 1) || base.G.HasEdge(0, 1) {
		t.Fatal("owned edges wrong (1-2 is not owned by 3)")
	}
	if base.G.VertexWeight(1) != 5 || !base.G.HasVertexLabel("red", 2) {
		t.Fatal("weights/labels not restricted")
	}
	if len(base.Orig) != 3 || base.Orig[0] != 1 || base.Orig[2] != 3 {
		t.Fatalf("Orig = %v", base.Orig)
	}
	if _, err := BaseFromBag(g, []int{0, 1}, 2); err == nil {
		t.Fatal("owner outside bag should fail")
	}
	if _, err := BaseFromBag(g, []int{0, 0}, 0); err == nil {
		t.Fatal("duplicate bag vertex should fail")
	}
}

// The central grammar property: composing all edge-owned base graphs along
// the elimination tree reconstructs exactly the original graph.
func TestDerivationReconstructs(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(14)
		g, _ := gen.BoundedTreedepth(n, 2+r.Intn(3), 0.5, r.Int63())
		gen.AssignRandomWeights(g, 50, r.Int63())
		f := treedepth.DFSForest(g)
		d, err := NewDerivation(g, f)
		if err != nil {
			t.Fatal(err)
		}
		roots := f.Roots()
		if len(roots) != 1 {
			t.Fatal("connected graph should have one root")
		}
		full, err := d.SubtreeGraph(roots[0])
		if err != nil {
			t.Fatal(err)
		}
		if full.G.NumVertices() != n || full.G.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: reconstruction has n=%d m=%d, want n=%d m=%d",
				trial, full.G.NumVertices(), full.G.NumEdges(), n, g.NumEdges())
		}
		// Check edges and weights via the Orig mapping.
		for _, e := range full.G.Edges() {
			ou, ov := full.Orig[e.U], full.Orig[e.V]
			gid, ok := g.EdgeBetween(ou, ov)
			if !ok {
				t.Fatalf("trial %d: spurious edge {%d,%d}", trial, ou, ov)
			}
			if g.EdgeWeight(gid) != full.G.EdgeWeight(e.ID) {
				t.Fatalf("trial %d: edge weight mismatch", trial)
			}
		}
		for v := 0; v < n; v++ {
			if full.G.VertexWeight(v) != g.VertexWeight(full.Orig[v]) {
				t.Fatalf("trial %d: vertex weight mismatch", trial)
			}
		}
		// Root terminals = root bag = {root}.
		if full.NumTerminals() != 1 || full.Orig[full.Terminals[0]] != roots[0] {
			t.Fatalf("trial %d: root terminals wrong", trial)
		}
	}
}

func TestDerivationPostOrder(t *testing.T) {
	g := gen.Path(6)
	f := treedepth.DFSForest(g)
	d, err := NewDerivation(g, f)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, u := range d.Order {
		pos[u] = i
	}
	if len(pos) != 6 {
		t.Fatalf("Order = %v", d.Order)
	}
	for v, p := range f.Parent {
		if p >= 0 && pos[v] > pos[p] {
			t.Fatalf("child %d after parent %d in post-order", v, p)
		}
	}
	// Bags are sorted and contain self.
	for u := 0; u < 6; u++ {
		if !sort.IntsAreSorted(d.Bags[u]) {
			t.Fatalf("bag %v not sorted", d.Bags[u])
		}
		found := false
		for _, v := range d.Bags[u] {
			if v == u {
				found = true
			}
		}
		if !found {
			t.Fatalf("bag of %d misses itself", u)
		}
	}
}

func TestDerivationRejectsBadForest(t *testing.T) {
	g := gen.Path(4)
	bad := treedepth.NewForest([]int{1, -1, 1, 0}) // edge {2,3} not ancestor-related
	if _, err := NewDerivation(g, bad); err == nil {
		t.Fatal("invalid elimination forest should be rejected")
	}
}
