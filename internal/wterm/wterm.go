// Package wterm implements w-terminal graphs and their composition (gluing)
// operations, following Section 3 of the paper (Borie–Parker–Tovey grammar).
//
// A w-terminal graph is a graph with an ordered list of at most w
// distinguished terminal vertices. A composition f(G1, G2) makes disjoint
// copies of G1 and G2 and identifies some terminals of G1 with some terminals
// of G2 according to a gluing matrix m(f); operand terminals not mapped to
// any result terminal are "forgotten" (they become internal vertices).
//
// The library uses the grammar in its "edge-owned" form: when a graph of
// treedepth d is derived from an elimination tree, the base graph of vertex u
// contributes only the edges from u to its ancestors (u is the unique deepest
// vertex of its bag), so every edge of G is introduced by exactly one base
// graph. This is the same derivation compressed differently and keeps
// dynamic-programming weight/count accounting free of inclusion–exclusion
// corrections.
package wterm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// ErrGluing is wrapped by all composition errors.
var ErrGluing = errors.New("wterm: invalid gluing")

// TerminalGraph is a w-terminal graph: a graph over local vertex IDs plus an
// ordered terminal list (local IDs). Orig optionally maps local IDs back to
// the vertex IDs of an ambient graph (nil when not applicable).
type TerminalGraph struct {
	G         *graph.Graph
	Terminals []int
	Orig      []int
}

// NumTerminals returns τ(G), the number of terminals.
func (t *TerminalGraph) NumTerminals() int { return len(t.Terminals) }

// Validate checks that terminals are distinct, in range, and at most the
// vertex count.
func (t *TerminalGraph) Validate() error {
	seen := map[int]bool{}
	for _, v := range t.Terminals {
		if v < 0 || v >= t.G.NumVertices() {
			return fmt.Errorf("%w: terminal %d out of range", ErrGluing, v)
		}
		if seen[v] {
			return fmt.Errorf("%w: duplicate terminal %d", ErrGluing, v)
		}
		seen[v] = true
	}
	if t.Orig != nil && len(t.Orig) != t.G.NumVertices() {
		return fmt.Errorf("%w: Orig has %d entries for %d vertices", ErrGluing, len(t.Orig), t.G.NumVertices())
	}
	return nil
}

// Gluing is the matrix m(f) of a binary composition: Rows[r] = (i, j) states
// that the r-th terminal of the result is the i-th terminal of operand 1
// and/or the j-th terminal of operand 2 (1-based; 0 means "not from this
// operand"). N1 and N2 are the operand terminal counts τ(G1), τ(G2); operand
// terminals referenced by no row are forgotten.
type Gluing struct {
	Rows   [][2]int
	N1, N2 int
}

// Validate checks matrix well-formedness: entries in range, each operand
// terminal used at most once, and no row with both entries zero (the paper
// notes fresh result terminals never occur in this construction).
func (m Gluing) Validate() error {
	used1 := map[int]bool{}
	used2 := map[int]bool{}
	for r, row := range m.Rows {
		i, j := row[0], row[1]
		if i < 0 || i > m.N1 || j < 0 || j > m.N2 {
			return fmt.Errorf("%w: row %d entries (%d,%d) out of range (N1=%d, N2=%d)", ErrGluing, r, i, j, m.N1, m.N2)
		}
		if i == 0 && j == 0 {
			return fmt.Errorf("%w: row %d introduces a fresh terminal", ErrGluing, r)
		}
		if i != 0 {
			if used1[i] {
				return fmt.Errorf("%w: operand-1 terminal %d used twice", ErrGluing, i)
			}
			used1[i] = true
		}
		if j != 0 {
			if used2[j] {
				return fmt.Errorf("%w: operand-2 terminal %d used twice", ErrGluing, j)
			}
			used2[j] = true
		}
	}
	return nil
}

// Forgotten1 returns the 1-based ranks of operand-1 terminals that are
// forgotten by the composition, in increasing order.
func (m Gluing) Forgotten1() []int { return m.forgotten(0, m.N1) }

// Forgotten2 returns the 1-based ranks of operand-2 terminals that are
// forgotten by the composition, in increasing order.
func (m Gluing) Forgotten2() []int { return m.forgotten(1, m.N2) }

func (m Gluing) forgotten(col, n int) []int {
	used := make([]bool, n+1)
	for _, row := range m.Rows {
		if row[col] != 0 {
			used[row[col]] = true
		}
	}
	var out []int
	for i := 1; i <= n; i++ {
		if !used[i] {
			out = append(out, i)
		}
	}
	return out
}

// SharedRows returns the result ranks whose terminal is glued from both
// operands (both matrix entries nonzero).
func (m Gluing) SharedRows() []int {
	var out []int
	for r, row := range m.Rows {
		if row[0] != 0 && row[1] != 0 {
			out = append(out, r)
		}
	}
	return out
}

// Key returns a canonical string identity for the gluing, usable as a map
// key (the number of distinct gluings is bounded in terms of w alone).
func (m Gluing) Key() string {
	b := make([]byte, 0, 8+4*len(m.Rows))
	b = append(b, byte(m.N1), byte(m.N2))
	for _, row := range m.Rows {
		b = append(b, byte(row[0]), byte(row[1]))
	}
	return string(b)
}

// GluingFromBags builds the gluing used throughout the elimination-tree
// derivation: operands carry bags (sorted original vertex IDs) bag1 and bag2,
// and the result keeps exactly the vertices of resultBag, identifying equal
// vertex IDs. Every result vertex must occur in at least one operand bag.
func GluingFromBags(bag1, bag2, resultBag []int) (Gluing, error) {
	rank := func(bag []int, v int) int {
		i := sort.SearchInts(bag, v)
		if i < len(bag) && bag[i] == v {
			return i + 1
		}
		return 0
	}
	m := Gluing{Rows: make([][2]int, len(resultBag)), N1: len(bag1), N2: len(bag2)}
	for r, v := range resultBag {
		i, j := rank(bag1, v), rank(bag2, v)
		if i == 0 && j == 0 {
			return Gluing{}, fmt.Errorf("%w: result vertex %d in neither operand bag", ErrGluing, v)
		}
		m.Rows[r] = [2]int{i, j}
	}
	if err := m.Validate(); err != nil {
		return Gluing{}, err
	}
	return m, nil
}

// Compose applies the composition described by m to g1 and g2: disjoint
// copies are made, operand terminals mapped to the same row are identified,
// and the result's terminals follow the rows of m. Vertex labels and weights
// are carried over (for glued pairs, operand 1 wins; in elimination-tree
// derivations both sides describe the same original vertex). Edges from both
// operands are kept; a duplicate edge between two glued terminals is an
// error under the edge-owned grammar.
func Compose(m Gluing, g1, g2 *TerminalGraph) (*TerminalGraph, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.N1 != g1.NumTerminals() || m.N2 != g2.NumTerminals() {
		return nil, fmt.Errorf("%w: matrix is (%d,%d) but operands have (%d,%d) terminals",
			ErrGluing, m.N1, m.N2, g1.NumTerminals(), g2.NumTerminals())
	}
	n1, n2 := g1.G.NumVertices(), g2.G.NumVertices()
	// Map operand-2 vertices into the result: glued terminals collapse onto
	// their operand-1 partner; everything else shifts after operand 1.
	map2 := make([]int, n2)
	for i := range map2 {
		map2[i] = -1
	}
	for _, row := range m.Rows {
		if row[0] != 0 && row[1] != 0 {
			map2[g2.Terminals[row[1]-1]] = g1.Terminals[row[0]-1]
		}
	}
	next := n1
	for v := 0; v < n2; v++ {
		if map2[v] < 0 {
			map2[v] = next
			next++
		}
	}
	out := graph.New(next)
	copyInto := func(tg *TerminalGraph, vmap func(int) int) error {
		for _, e := range tg.G.Edges() {
			u, v := vmap(e.U), vmap(e.V)
			id, err := out.AddEdge(u, v)
			if err != nil {
				return fmt.Errorf("%w: duplicate edge {%d,%d} across operands (edge-owned grammar violated): %v",
					ErrGluing, u, v, err)
			}
			out.SetEdgeWeight(id, tg.G.EdgeWeight(e.ID))
			for _, label := range tg.G.EdgeLabelNames() {
				if tg.G.HasEdgeLabel(label, e.ID) {
					out.SetEdgeLabel(label, id)
				}
			}
		}
		for v := 0; v < tg.G.NumVertices(); v++ {
			w := vmap(v)
			if out.VertexWeight(w) == 0 {
				out.SetVertexWeight(w, tg.G.VertexWeight(v))
			}
			for _, label := range tg.G.VertexLabelNames() {
				if tg.G.HasVertexLabel(label, v) {
					out.SetVertexLabel(label, w)
				}
			}
		}
		return nil
	}
	if err := copyInto(g1, func(v int) int { return v }); err != nil {
		return nil, err
	}
	if err := copyInto(g2, func(v int) int { return map2[v] }); err != nil {
		return nil, err
	}
	terms := make([]int, len(m.Rows))
	for r, row := range m.Rows {
		if row[0] != 0 {
			terms[r] = g1.Terminals[row[0]-1]
		} else {
			terms[r] = map2[g2.Terminals[row[1]-1]]
		}
	}
	var orig []int
	if g1.Orig != nil && g2.Orig != nil {
		orig = make([]int, next)
		copy(orig, g1.Orig)
		for v := 0; v < n2; v++ {
			orig[map2[v]] = g2.Orig[v]
		}
	}
	return &TerminalGraph{G: out, Terminals: terms, Orig: orig}, nil
}

// BaseFromBag builds the edge-owned base graph of vertex owner within the
// ambient graph g: local vertices are the (sorted) bag, every bag vertex is a
// terminal in sorted order, and the edges are exactly the g-edges between
// owner and the other bag vertices. Labels and weights are restricted from g.
func BaseFromBag(g *graph.Graph, bag []int, owner int) (*TerminalGraph, error) {
	sorted := append([]int(nil), bag...)
	sort.Ints(sorted)
	idx := make(map[int]int, len(sorted))
	for i, v := range sorted {
		if v < 0 || v >= g.NumVertices() {
			return nil, fmt.Errorf("%w: bag vertex %d out of range", ErrGluing, v)
		}
		if _, dup := idx[v]; dup {
			return nil, fmt.Errorf("%w: duplicate bag vertex %d", ErrGluing, v)
		}
		idx[v] = i
	}
	ownerLocal, ok := idx[owner]
	if !ok {
		return nil, fmt.Errorf("%w: owner %d not in bag %v", ErrGluing, owner, bag)
	}
	local := graph.New(len(sorted))
	for i, v := range sorted {
		local.SetVertexWeight(i, g.VertexWeight(v))
		for _, label := range g.VertexLabelNames() {
			if g.HasVertexLabel(label, v) {
				local.SetVertexLabel(label, i)
			}
		}
	}
	for i, v := range sorted {
		if v == owner {
			continue
		}
		if eid, ok := g.EdgeBetween(owner, v); ok {
			id := local.MustAddEdge(ownerLocal, i)
			local.SetEdgeWeight(id, g.EdgeWeight(eid))
			for _, label := range g.EdgeLabelNames() {
				if g.HasEdgeLabel(label, eid) {
					local.SetEdgeLabel(label, id)
				}
			}
		}
	}
	terms := make([]int, len(sorted))
	for i := range sorted {
		terms[i] = i
	}
	return &TerminalGraph{G: local, Terminals: terms, Orig: sorted}, nil
}
