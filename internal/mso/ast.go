// Package mso implements monadic second-order logic over graphs: an AST with
// element variables (vertices, edges) and set variables (vertex sets, edge
// sets), the predicates adj / inc / = / ∈ plus unary label predicates, a
// textual parser, a well-formedness checker, and a naive exhaustive evaluator
// used as the ground-truth oracle for the automata-based engines.
package mso

import (
	"fmt"
	"sort"
)

// VarKind classifies MSO variables.
type VarKind int

// Variable kinds. Element variables range over single vertices or edges; set
// variables range over subsets.
const (
	KindVertex VarKind = iota + 1
	KindEdge
	KindVertexSet
	KindEdgeSet
)

// String returns the parser notation of the kind.
func (k VarKind) String() string {
	switch k {
	case KindVertex:
		return "V"
	case KindEdge:
		return "E"
	case KindVertexSet:
		return "VS"
	case KindEdgeSet:
		return "ES"
	default:
		return fmt.Sprintf("VarKind(%d)", int(k))
	}
}

// IsSet reports whether the kind is a set kind.
func (k VarKind) IsSet() bool { return k == KindVertexSet || k == KindEdgeSet }

// ElementKind returns the element kind underlying a set kind (or the kind
// itself for element kinds).
func (k VarKind) ElementKind() VarKind {
	switch k {
	case KindVertexSet:
		return KindVertex
	case KindEdgeSet:
		return KindEdge
	default:
		return k
	}
}

// Formula is an MSO formula node.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Adj asserts that vertex variables X and Y are adjacent.
type Adj struct{ X, Y string }

// Inc asserts that vertex variable V is incident to edge variable E.
type Inc struct{ V, E string }

// Eq asserts equality of two element variables of the same kind.
type Eq struct{ X, Y string }

// In asserts membership of element variable X in set variable S.
type In struct{ X, S string }

// Label asserts that element variable X carries the named unary label.
type Label struct {
	Name string
	X    string
}

// Not is logical negation.
type Not struct{ F Formula }

// And is logical conjunction.
type And struct{ L, R Formula }

// Or is logical disjunction.
type Or struct{ L, R Formula }

// Implies is logical implication.
type Implies struct{ L, R Formula }

// Iff is logical equivalence.
type Iff struct{ L, R Formula }

// Exists is existential quantification of Var (of kind Kind) in Body.
type Exists struct {
	Var  string
	Kind VarKind
	Body Formula
}

// ForAll is universal quantification of Var (of kind Kind) in Body.
type ForAll struct {
	Var  string
	Kind VarKind
	Body Formula
}

// True is the constant true formula (nullary conjunction).
type True struct{}

// False is the constant false formula (nullary disjunction).
type False struct{}

func (Adj) isFormula()     {}
func (Inc) isFormula()     {}
func (Eq) isFormula()      {}
func (In) isFormula()      {}
func (Label) isFormula()   {}
func (Not) isFormula()     {}
func (And) isFormula()     {}
func (Or) isFormula()      {}
func (Implies) isFormula() {}
func (Iff) isFormula()     {}
func (Exists) isFormula()  {}
func (ForAll) isFormula()  {}
func (True) isFormula()    {}
func (False) isFormula()   {}

func (a Adj) String() string   { return fmt.Sprintf("adj(%s,%s)", a.X, a.Y) }
func (i Inc) String() string   { return fmt.Sprintf("inc(%s,%s)", i.V, i.E) }
func (e Eq) String() string    { return fmt.Sprintf("%s = %s", e.X, e.Y) }
func (i In) String() string    { return fmt.Sprintf("%s in %s", i.X, i.S) }
func (l Label) String() string { return fmt.Sprintf("%s(%s)", l.Name, l.X) }
func (n Not) String() string   { return "~" + parenthesize(n.F) }
func (a And) String() string   { return parenthesize(a.L) + " & " + parenthesize(a.R) }
func (o Or) String() string    { return parenthesize(o.L) + " | " + parenthesize(o.R) }
func (i Implies) String() string {
	return parenthesize(i.L) + " -> " + parenthesize(i.R)
}
func (i Iff) String() string { return parenthesize(i.L) + " <-> " + parenthesize(i.R) }
func (e Exists) String() string {
	return fmt.Sprintf("exists %s:%s . %s", e.Var, e.Kind, e.Body)
}
func (f ForAll) String() string {
	return fmt.Sprintf("forall %s:%s . %s", f.Var, f.Kind, f.Body)
}
func (True) String() string  { return "true" }
func (False) String() string { return "false" }

func parenthesize(f Formula) string {
	switch f.(type) {
	// Eq and In are excluded: "~x = y" would reparse as "(~x) = y".
	case Adj, Inc, Label, Not, True, False:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// --- Convenience constructors ---

// AndAll folds the formulas with conjunction; the empty conjunction is True.
func AndAll(fs ...Formula) Formula {
	if len(fs) == 0 {
		return True{}
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = And{out, f}
	}
	return out
}

// OrAll folds the formulas with disjunction; the empty disjunction is False.
func OrAll(fs ...Formula) Formula {
	if len(fs) == 0 {
		return False{}
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = Or{out, f}
	}
	return out
}

// ExistsMany nests existential quantifiers of the same kind.
func ExistsMany(kind VarKind, vars []string, body Formula) Formula {
	out := body
	for i := len(vars) - 1; i >= 0; i-- {
		out = Exists{Var: vars[i], Kind: kind, Body: out}
	}
	return out
}

// ForAllMany nests universal quantifiers of the same kind.
func ForAllMany(kind VarKind, vars []string, body Formula) Formula {
	out := body
	for i := len(vars) - 1; i >= 0; i-- {
		out = ForAll{Var: vars[i], Kind: kind, Body: out}
	}
	return out
}

// Distinct asserts that the named element variables are pairwise distinct.
func Distinct(vars ...string) Formula {
	var parts []Formula
	for i := range vars {
		for j := i + 1; j < len(vars); j++ {
			parts = append(parts, Not{Eq{vars[i], vars[j]}})
		}
	}
	return AndAll(parts...)
}

// QuantifierRank returns the maximum quantifier nesting depth (set and
// element quantifiers both count).
func QuantifierRank(f Formula) int {
	switch t := f.(type) {
	case Adj, Inc, Eq, In, Label, True, False:
		return 0
	case Not:
		return QuantifierRank(t.F)
	case And:
		return maxInt(QuantifierRank(t.L), QuantifierRank(t.R))
	case Or:
		return maxInt(QuantifierRank(t.L), QuantifierRank(t.R))
	case Implies:
		return maxInt(QuantifierRank(t.L), QuantifierRank(t.R))
	case Iff:
		return maxInt(QuantifierRank(t.L), QuantifierRank(t.R))
	case Exists:
		return 1 + QuantifierRank(t.Body)
	case ForAll:
		return 1 + QuantifierRank(t.Body)
	default:
		return 0
	}
}

// SetQuantifierCount returns the total number of set quantifiers in f.
func SetQuantifierCount(f Formula) int {
	switch t := f.(type) {
	case Adj, Inc, Eq, In, Label, True, False:
		return 0
	case Not:
		return SetQuantifierCount(t.F)
	case And:
		return SetQuantifierCount(t.L) + SetQuantifierCount(t.R)
	case Or:
		return SetQuantifierCount(t.L) + SetQuantifierCount(t.R)
	case Implies:
		return SetQuantifierCount(t.L) + SetQuantifierCount(t.R)
	case Iff:
		return SetQuantifierCount(t.L) + SetQuantifierCount(t.R)
	case Exists:
		c := SetQuantifierCount(t.Body)
		if t.Kind.IsSet() {
			c++
		}
		return c
	case ForAll:
		c := SetQuantifierCount(t.Body)
		if t.Kind.IsSet() {
			c++
		}
		return c
	default:
		return 0
	}
}

// FreeVars returns the free variables of f with their kinds, inferred from
// usage context. Kinds of free variables that appear only in position-neutral
// predicates (Eq) may be unresolved and are reported as 0; Check resolves and
// validates kinds fully given declared kinds for free variables.
func FreeVars(f Formula) map[string]VarKind {
	free := map[string]VarKind{}
	collectFree(f, map[string]bool{}, free)
	return free
}

func collectFree(f Formula, bound map[string]bool, free map[string]VarKind) {
	note := func(name string, kind VarKind) {
		if bound[name] {
			return
		}
		if prev, ok := free[name]; !ok || prev == 0 {
			free[name] = kind
		}
	}
	switch t := f.(type) {
	case Adj:
		note(t.X, KindVertex)
		note(t.Y, KindVertex)
	case Inc:
		note(t.V, KindVertex)
		note(t.E, KindEdge)
	case Eq:
		note(t.X, 0)
		note(t.Y, 0)
	case In:
		note(t.X, 0)
		note(t.S, 0)
	case Label:
		note(t.X, 0)
	case Not:
		collectFree(t.F, bound, free)
	case And:
		collectFree(t.L, bound, free)
		collectFree(t.R, bound, free)
	case Or:
		collectFree(t.L, bound, free)
		collectFree(t.R, bound, free)
	case Implies:
		collectFree(t.L, bound, free)
		collectFree(t.R, bound, free)
	case Iff:
		collectFree(t.L, bound, free)
		collectFree(t.R, bound, free)
	case Exists:
		collectQuantified(t.Var, t.Body, bound, free)
	case ForAll:
		collectQuantified(t.Var, t.Body, bound, free)
	case True, False:
	}
}

func collectQuantified(v string, body Formula, bound map[string]bool, free map[string]VarKind) {
	was := bound[v]
	bound[v] = true
	collectFree(body, bound, free)
	bound[v] = was
}

// Substitute returns f with every free occurrence of the element-or-set
// variable old renamed to new. Quantifiers binding old shadow as usual.
func Substitute(f Formula, oldName, newName string) Formula {
	switch t := f.(type) {
	case Adj:
		return Adj{ren(t.X, oldName, newName), ren(t.Y, oldName, newName)}
	case Inc:
		return Inc{ren(t.V, oldName, newName), ren(t.E, oldName, newName)}
	case Eq:
		return Eq{ren(t.X, oldName, newName), ren(t.Y, oldName, newName)}
	case In:
		return In{ren(t.X, oldName, newName), ren(t.S, oldName, newName)}
	case Label:
		return Label{t.Name, ren(t.X, oldName, newName)}
	case Not:
		return Not{Substitute(t.F, oldName, newName)}
	case And:
		return And{Substitute(t.L, oldName, newName), Substitute(t.R, oldName, newName)}
	case Or:
		return Or{Substitute(t.L, oldName, newName), Substitute(t.R, oldName, newName)}
	case Implies:
		return Implies{Substitute(t.L, oldName, newName), Substitute(t.R, oldName, newName)}
	case Iff:
		return Iff{Substitute(t.L, oldName, newName), Substitute(t.R, oldName, newName)}
	case Exists:
		if t.Var == oldName {
			return t
		}
		return Exists{t.Var, t.Kind, Substitute(t.Body, oldName, newName)}
	case ForAll:
		if t.Var == oldName {
			return t
		}
		return ForAll{t.Var, t.Kind, Substitute(t.Body, oldName, newName)}
	default:
		return f
	}
}

func ren(name, oldName, newName string) string {
	if name == oldName {
		return newName
	}
	return name
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Size returns the number of AST nodes of f.
func Size(f Formula) int {
	switch t := f.(type) {
	case Not:
		return 1 + Size(t.F)
	case And:
		return 1 + Size(t.L) + Size(t.R)
	case Or:
		return 1 + Size(t.L) + Size(t.R)
	case Implies:
		return 1 + Size(t.L) + Size(t.R)
	case Iff:
		return 1 + Size(t.L) + Size(t.R)
	case Exists:
		return 1 + Size(t.Body)
	case ForAll:
		return 1 + Size(t.Body)
	default:
		return 1
	}
}

// LabelNames returns the sorted set of unary label predicate names used in f.
func LabelNames(f Formula) []string {
	seen := map[string]bool{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch t := f.(type) {
		case Label:
			seen[t.Name] = true
		case Not:
			walk(t.F)
		case And:
			walk(t.L)
			walk(t.R)
		case Or:
			walk(t.L)
			walk(t.R)
		case Implies:
			walk(t.L)
			walk(t.R)
		case Iff:
			walk(t.L)
			walk(t.R)
		case Exists:
			walk(t.Body)
		case ForAll:
			walk(t.Body)
		}
	}
	walk(f)
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
