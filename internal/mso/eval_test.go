package mso

import (
	"errors"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
)

func triangle() *graph.Graph {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	return g
}

func path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func evalClosed(t *testing.T, g *graph.Graph, input string) bool {
	t.Helper()
	f := MustParse(input)
	if err := Check(f, nil); err != nil {
		t.Fatalf("Check(%q): %v", input, err)
	}
	v, err := NewEvaluator(g).Eval(f, nil)
	if err != nil {
		t.Fatalf("Eval(%q): %v", input, err)
	}
	return v
}

func TestEvalAtoms(t *testing.T) {
	g := path(3)
	ev := NewEvaluator(g)
	cases := []struct {
		f    Formula
		asg  Assignment
		want bool
	}{
		{Adj{"x", "y"}, Assignment{"x": VertexValue(0), "y": VertexValue(1)}, true},
		{Adj{"x", "y"}, Assignment{"x": VertexValue(0), "y": VertexValue(2)}, false},
		{Eq{"x", "y"}, Assignment{"x": VertexValue(1), "y": VertexValue(1)}, true},
		{Eq{"x", "y"}, Assignment{"x": VertexValue(1), "y": VertexValue(2)}, false},
		{Inc{"v", "e"}, Assignment{"v": VertexValue(0), "e": EdgeValue(0)}, true},
		{Inc{"v", "e"}, Assignment{"v": VertexValue(2), "e": EdgeValue(0)}, false},
		{In{"x", "S"}, Assignment{"x": VertexValue(1), "S": VertexSetValue(bitset.FromIndices(3, 1))}, true},
		{In{"x", "S"}, Assignment{"x": VertexValue(0), "S": VertexSetValue(bitset.FromIndices(3, 1))}, false},
		{In{"e", "F"}, Assignment{"e": EdgeValue(1), "F": EdgeSetValue(bitset.FromIndices(2, 1))}, true},
		{True{}, nil, true},
		{False{}, nil, false},
	}
	for i, tc := range cases {
		got, err := ev.Eval(tc.f, tc.asg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != tc.want {
			t.Fatalf("case %d (%s): got %v, want %v", i, tc.f, got, tc.want)
		}
	}
}

func TestEvalLabels(t *testing.T) {
	g := path(2)
	g.SetVertexLabel("red", 0)
	g.SetEdgeLabel("mark", 0)
	ev := NewEvaluator(g)
	got, err := ev.Eval(Label{"red", "x"}, Assignment{"x": VertexValue(0)})
	if err != nil || !got {
		t.Fatalf("red(0) = %v, %v", got, err)
	}
	got, err = ev.Eval(Label{"red", "x"}, Assignment{"x": VertexValue(1)})
	if err != nil || got {
		t.Fatalf("red(1) = %v, %v", got, err)
	}
	got, err = ev.Eval(Label{"mark", "e"}, Assignment{"e": EdgeValue(0)})
	if err != nil || !got {
		t.Fatalf("mark(e0) = %v, %v", got, err)
	}
}

func TestEvalConnectives(t *testing.T) {
	g := path(2)
	if !evalClosed(t, g, "true & ~false") {
		t.Fatal("true & ~false")
	}
	if evalClosed(t, g, "false | false") {
		t.Fatal("false | false")
	}
	if !evalClosed(t, g, "false -> false") {
		t.Fatal("vacuous implication")
	}
	if !evalClosed(t, g, "false <-> false") {
		t.Fatal("iff")
	}
	if evalClosed(t, g, "true <-> false") {
		t.Fatal("iff")
	}
}

func TestEvalQuantifiers(t *testing.T) {
	tri := triangle()
	p4 := path(4)
	hasTriangle := "exists x:V, y:V, z:V . adj(x,y) & adj(y,z) & adj(z,x)"
	if !evalClosed(t, tri, hasTriangle) {
		t.Fatal("triangle graph should have a triangle")
	}
	if evalClosed(t, p4, hasTriangle) {
		t.Fatal("P4 should be triangle-free")
	}
	allAdjacent := "forall x:V, y:V . x = y | adj(x,y)"
	if !evalClosed(t, tri, allAdjacent) {
		t.Fatal("K3 is complete")
	}
	if evalClosed(t, p4, allAdjacent) {
		t.Fatal("P4 is not complete")
	}
	// Edge quantifier: every edge has two endpoints.
	if !evalClosed(t, p4, "forall e:E . exists x:V, y:V . x != y & inc(x,e) & inc(y,e)") {
		t.Fatal("edges have two endpoints")
	}
}

func TestEvalSetQuantifiers(t *testing.T) {
	// "There is an independent set of size >= 2" via sets.
	f := `exists X:VS . (exists a:V, b:V . a != b & a in X & b in X) &
		(forall x:V, y:V . (x in X & y in X) -> ~adj(x,y))`
	if evalClosed(t, triangle(), f) {
		t.Fatal("K3 has no independent set of size 2")
	}
	if !evalClosed(t, path(3), f) {
		t.Fatal("P3 has an independent set of size 2")
	}
	// Edge set quantifier: some nonempty edge set exists iff graph has edges.
	g := graph.New(3)
	hasEdgeSet := "exists F:ES . exists e:E . e in F"
	if evalClosed(t, g, hasEdgeSet) {
		t.Fatal("edgeless graph")
	}
	if !evalClosed(t, path(3), hasEdgeSet) {
		t.Fatal("P3 has edges")
	}
}

func TestEvalEmptyGraph(t *testing.T) {
	g := graph.New(0)
	if !evalClosed(t, g, "forall x:V . false") {
		t.Fatal("universal over empty domain is true")
	}
	if evalClosed(t, g, "exists x:V . true") {
		t.Fatal("existential over empty domain is false")
	}
}

func TestEvalUniverseLimit(t *testing.T) {
	g := path(30)
	ev := &Evaluator{G: g, MaxSetUniverse: 10}
	_, err := ev.Eval(MustParse("exists X:VS . true"), nil)
	if !errors.Is(err, ErrUniverseTooLarge) {
		t.Fatalf("err = %v, want ErrUniverseTooLarge", err)
	}
	// Element quantifiers are fine at any size.
	if _, err := ev.Eval(MustParse("exists x:V . true"), nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalErrors(t *testing.T) {
	ev := NewEvaluator(path(3))
	if _, err := ev.Eval(Adj{"x", "y"}, nil); err == nil {
		t.Fatal("unbound variable should error")
	}
	if _, err := ev.Eval(Adj{"x", "y"}, Assignment{"x": EdgeValue(0), "y": VertexValue(0)}); err == nil {
		t.Fatal("kind mismatch should error")
	}
	if _, err := ev.Eval(Adj{"x", "y"}, Assignment{"x": VertexValue(99), "y": VertexValue(0)}); err == nil {
		t.Fatal("out-of-range vertex should error")
	}
	if _, err := ev.Eval(nil, nil); err == nil {
		t.Fatal("nil formula should error")
	}
}

func TestEvalDoesNotMutateAssignment(t *testing.T) {
	ev := NewEvaluator(path(3))
	asg := Assignment{"y": VertexValue(1)}
	_, err := ev.Eval(MustParse("exists y:V . adj(y,y)"), asg)
	if err != nil {
		t.Fatal(err)
	}
	if v := asg["y"]; v.Kind != KindVertex || v.Elem != 1 {
		t.Fatal("Eval must not mutate the caller's assignment")
	}
	if len(asg) != 1 {
		t.Fatal("Eval must not add bindings to the caller's assignment")
	}
}

func TestCountAssignments(t *testing.T) {
	tri := triangle()
	ev := NewEvaluator(tri)
	triFormula := MustParse("adj(x1,x2) & adj(x2,x3) & adj(x3,x1)")
	free := []TypedVar{{"x1", KindVertex}, {"x2", KindVertex}, {"x3", KindVertex}}
	count, err := ev.CountAssignments(triFormula, free)
	if err != nil {
		t.Fatal(err)
	}
	if count != 6 { // 3! ordered triangles
		t.Fatalf("ordered triangles in K3 = %d, want 6", count)
	}
	// P4 has none.
	count, err = NewEvaluator(path(4)).CountAssignments(triFormula, free)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("triangles in P4 = %d, want 0", count)
	}
	// Count edges via edge variable.
	count, err = ev.CountAssignments(True{}, []TypedVar{{"e", KindEdge}})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("edges = %d, want 3", count)
	}
	// Count subsets: all vertex sets of K3 satisfying true = 8.
	count, err = ev.CountAssignments(True{}, []TypedVar{{"X", KindVertexSet}})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("subsets = %d, want 8", count)
	}
}

func TestOptimizeSetIndependentSet(t *testing.T) {
	// P4: maximum independent set has size 2 (unit weights).
	g := path(4)
	for v := 0; v < 4; v++ {
		g.SetVertexWeight(v, 1)
	}
	indep := MustParse("forall x:V, y:V . (x in S & y in S) -> ~adj(x,y)")
	res, err := NewEvaluator(g).OptimizeSet(indep, "S", KindVertexSet, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 2 {
		t.Fatalf("MaxIS(P4) = %+v, want weight 2", res)
	}
	// Weighted: middle vertices heavy.
	g.SetVertexWeight(1, 10)
	g.SetVertexWeight(2, 10)
	res, err = NewEvaluator(g).OptimizeSet(indep, "S", KindVertexSet, true)
	if err != nil {
		t.Fatal(err)
	}
	// Best: {1, 3}? 1 and 3 not adjacent: weight 11. Or {0, 2}: 11. Both 11.
	if res.Weight != 11 {
		t.Fatalf("weighted MaxIS = %d, want 11", res.Weight)
	}
}

func TestOptimizeSetMinimize(t *testing.T) {
	// Minimum vertex cover of K3 with unit weights is 2.
	g := triangle()
	for v := 0; v < 3; v++ {
		g.SetVertexWeight(v, 1)
	}
	vc := MustParse("forall e:E . exists x:V . inc(x,e) & x in S")
	res, err := NewEvaluator(g).OptimizeSet(vc, "S", KindVertexSet, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 2 {
		t.Fatalf("MinVC(K3) = %+v, want weight 2", res)
	}
}

func TestOptimizeSetInfeasible(t *testing.T) {
	res, err := NewEvaluator(path(2)).OptimizeSet(False{}, "S", KindVertexSet, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("no set satisfies false")
	}
}

func TestOptimizeSetEdges(t *testing.T) {
	// Maximum matching in P4 (unit edge weights): both end edges, size 2.
	g := path(4)
	for _, e := range g.Edges() {
		g.SetEdgeWeight(e.ID, 1)
	}
	matching := MustParse(`forall e1:E, e2:E . (e1 in S & e2 in S & e1 != e2) ->
		~(exists x:V . inc(x,e1) & inc(x,e2))`)
	res, err := NewEvaluator(g).OptimizeSet(matching, "S", KindEdgeSet, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 2 {
		t.Fatalf("MaxMatching(P4) = %+v, want 2", res)
	}
}

func TestOptimizeSetErrors(t *testing.T) {
	ev := NewEvaluator(path(3))
	if _, err := ev.OptimizeSet(True{}, "S", KindVertex, true); err == nil {
		t.Fatal("element kind should be rejected")
	}
	big := &Evaluator{G: path(40), MaxSetUniverse: 8}
	if _, err := big.OptimizeSet(True{}, "S", KindVertexSet, true); !errors.Is(err, ErrUniverseTooLarge) {
		t.Fatalf("err = %v", err)
	}
}
