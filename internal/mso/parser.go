package mso

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// ErrParse is wrapped by all parser errors.
var ErrParse = errors.New("mso: parse error")

// Parse parses the textual MSO syntax:
//
//	formula   := iff
//	iff       := implies ('<->' implies)*
//	implies   := or ('->' implies)?           (right associative)
//	or        := and ('|' and)*
//	and       := unary ('&' unary)*
//	unary     := '~' unary | quantifier | atom
//	quantifier:= ('exists'|'forall') binding (',' binding)* '.' formula
//	binding   := NAME ':' ('V'|'E'|'VS'|'ES')
//	atom      := 'true' | 'false' | '(' formula ')'
//	           | 'adj' '(' NAME ',' NAME ')'
//	           | 'inc' '(' NAME ',' NAME ')'
//	           | NAME '(' NAME ')'            (unary label predicate)
//	           | NAME '=' NAME | NAME '!=' NAME
//	           | NAME 'in' NAME | NAME 'notin' NAME
//
// Identifiers are letters, digits, and underscores, starting with a letter or
// underscore. Keywords: exists, forall, in, notin, true, false, adj, inc.
func Parse(input string) (Formula, error) {
	p := &parser{tokens: nil, pos: 0}
	if err := p.tokenize(input); err != nil {
		return nil, err
	}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("%w: unexpected %q at end of input", ErrParse, p.peek().text)
	}
	return f, nil
}

// MustParse is Parse for statically-known formulas; it panics on error.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokenType int

const (
	tokIdent tokenType = iota + 1
	tokPunct           // ( ) , . : = & | ~ -> <-> !=
	tokEOF
)

type token struct {
	typ  tokenType
	text string
	pos  int
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) tokenize(input string) error {
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == ':' || c == '=' || c == '&' || c == '|' || c == '~':
			p.tokens = append(p.tokens, token{tokPunct, string(c), i})
			i++
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				p.tokens = append(p.tokens, token{tokPunct, "!=", i})
				i += 2
			} else {
				// '!' alone is an alias for '~'.
				p.tokens = append(p.tokens, token{tokPunct, "~", i})
				i++
			}
		case c == '-':
			if i+1 < len(input) && input[i+1] == '>' {
				p.tokens = append(p.tokens, token{tokPunct, "->", i})
				i += 2
			} else {
				return fmt.Errorf("%w: stray '-' at offset %d", ErrParse, i)
			}
		case c == '<':
			if strings.HasPrefix(input[i:], "<->") {
				p.tokens = append(p.tokens, token{tokPunct, "<->", i})
				i += 3
			} else {
				return fmt.Errorf("%w: stray '<' at offset %d", ErrParse, i)
			}
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) {
				r := rune(input[j])
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
					break
				}
				j++
			}
			p.tokens = append(p.tokens, token{tokIdent, input[i:j], i})
			i = j
		default:
			return fmt.Errorf("%w: unexpected character %q at offset %d", ErrParse, c, i)
		}
	}
	p.tokens = append(p.tokens, token{tokEOF, "", len(input)})
	return nil
}

func (p *parser) peek() token { return p.tokens[p.pos] }

func (p *parser) next() token {
	t := p.tokens[p.pos]
	if t.typ != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEnd() bool { return p.peek().typ == tokEOF }

func (p *parser) acceptPunct(text string) bool {
	if t := p.peek(); t.typ == tokPunct && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.typ == tokIdent && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	if !p.acceptPunct(text) {
		t := p.peek()
		return fmt.Errorf("%w: expected %q at offset %d, got %q", ErrParse, text, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.typ != tokIdent {
		return "", fmt.Errorf("%w: expected identifier at offset %d, got %q", ErrParse, t.pos, t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parseFormula() (Formula, error) { return p.parseIff() }

func (p *parser) parseIff() (Formula, error) {
	left, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("<->") {
		right, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		left = Iff{left, right}
	}
	return left, nil
}

func (p *parser) parseImplies() (Formula, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("->") {
		right, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		return Implies{left, right}, nil
	}
	return left, nil
}

func (p *parser) parseOr() (Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("|") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("&") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And{left, right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Formula, error) {
	if p.acceptPunct("~") {
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{f}, nil
	}
	if p.acceptKeyword("exists") {
		return p.parseQuantifier(true)
	}
	if p.acceptKeyword("forall") {
		return p.parseQuantifier(false)
	}
	return p.parseAtom()
}

func (p *parser) parseQuantifier(existential bool) (Formula, error) {
	type binding struct {
		name string
		kind VarKind
	}
	var bindings []binding
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		kindText, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		kind, err := parseKind(kindText)
		if err != nil {
			return nil, err
		}
		bindings = append(bindings, binding{name, kind})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	// The quantifier body extends as far right as possible ("dot notation").
	body, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	for i := len(bindings) - 1; i >= 0; i-- {
		b := bindings[i]
		if existential {
			body = Exists{Var: b.name, Kind: b.kind, Body: body}
		} else {
			body = ForAll{Var: b.name, Kind: b.kind, Body: body}
		}
	}
	return body, nil
}

func parseKind(text string) (VarKind, error) {
	switch text {
	case "V":
		return KindVertex, nil
	case "E":
		return KindEdge, nil
	case "VS":
		return KindVertexSet, nil
	case "ES":
		return KindEdgeSet, nil
	default:
		return 0, fmt.Errorf("%w: unknown kind %q (want V, E, VS, or ES)", ErrParse, text)
	}
}

func (p *parser) parseAtom() (Formula, error) {
	if p.acceptPunct("(") {
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	t := p.peek()
	if t.typ != tokIdent {
		return nil, fmt.Errorf("%w: expected atom at offset %d, got %q", ErrParse, t.pos, t.text)
	}
	name := p.next().text
	switch name {
	case "true":
		return True{}, nil
	case "false":
		return False{}, nil
	case "adj", "inc":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		b, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if name == "adj" {
			return Adj{a, b}, nil
		}
		return Inc{a, b}, nil
	}
	// Label predicate: NAME '(' NAME ')'.
	if p.acceptPunct("(") {
		arg, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return Label{Name: name, X: arg}, nil
	}
	// Binary relational atoms on a leading variable.
	switch {
	case p.acceptPunct("="):
		other, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return Eq{name, other}, nil
	case p.acceptPunct("!="):
		other, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return Not{Eq{name, other}}, nil
	case p.acceptKeyword("in"):
		other, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return In{name, other}, nil
	case p.acceptKeyword("notin"):
		other, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return Not{In{name, other}}, nil
	}
	return nil, fmt.Errorf("%w: variable %q is not a formula (expected =, !=, in, notin, or a predicate) at offset %d",
		ErrParse, name, t.pos)
}
