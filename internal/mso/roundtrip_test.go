package mso

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomFormula builds a random well-formed formula over the given bound
// variables (name -> kind), introducing fresh quantifiers as it recurses.
func randomFormula(r *rand.Rand, depth int, scope map[string]VarKind) Formula {
	vertexVars := varsOfKind(scope, KindVertex)
	edgeVars := varsOfKind(scope, KindEdge)
	vsetVars := varsOfKind(scope, KindVertexSet)
	esetVars := varsOfKind(scope, KindEdgeSet)

	atoms := []func() (Formula, bool){
		func() (Formula, bool) { return True{}, true },
		func() (Formula, bool) { return False{}, true },
		func() (Formula, bool) {
			if len(vertexVars) < 1 {
				return nil, false
			}
			return Adj{pick(r, vertexVars), pick(r, vertexVars)}, true
		},
		func() (Formula, bool) {
			if len(vertexVars) < 1 || len(edgeVars) < 1 {
				return nil, false
			}
			return Inc{pick(r, vertexVars), pick(r, edgeVars)}, true
		},
		func() (Formula, bool) {
			if len(vertexVars) < 1 {
				return nil, false
			}
			return Eq{pick(r, vertexVars), pick(r, vertexVars)}, true
		},
		func() (Formula, bool) {
			if len(vertexVars) < 1 || len(vsetVars) < 1 {
				return nil, false
			}
			return In{pick(r, vertexVars), pick(r, vsetVars)}, true
		},
		func() (Formula, bool) {
			if len(edgeVars) < 1 || len(esetVars) < 1 {
				return nil, false
			}
			return In{pick(r, edgeVars), pick(r, esetVars)}, true
		},
		func() (Formula, bool) {
			if len(vertexVars) < 1 {
				return nil, false
			}
			return Label{"red", pick(r, vertexVars)}, true
		},
	}
	if depth <= 0 {
		for {
			if f, ok := atoms[r.Intn(len(atoms))](); ok {
				return f
			}
		}
	}
	switch r.Intn(7) {
	case 0:
		return Not{randomFormula(r, depth-1, scope)}
	case 1:
		return And{randomFormula(r, depth-1, scope), randomFormula(r, depth-1, scope)}
	case 2:
		return Or{randomFormula(r, depth-1, scope), randomFormula(r, depth-1, scope)}
	case 3:
		return Implies{randomFormula(r, depth-1, scope), randomFormula(r, depth-1, scope)}
	case 4:
		return Iff{randomFormula(r, depth-1, scope), randomFormula(r, depth-1, scope)}
	default:
		kinds := []VarKind{KindVertex, KindEdge, KindVertexSet, KindEdgeSet}
		kind := kinds[r.Intn(len(kinds))]
		name := freshName(kind, len(scope))
		inner := map[string]VarKind{}
		for k, v := range scope {
			inner[k] = v
		}
		inner[name] = kind
		body := randomFormula(r, depth-1, inner)
		if r.Intn(2) == 0 {
			return Exists{Var: name, Kind: kind, Body: body}
		}
		return ForAll{Var: name, Kind: kind, Body: body}
	}
}

func varsOfKind(scope map[string]VarKind, kind VarKind) []string {
	var out []string
	for name, k := range scope {
		if k == kind {
			out = append(out, name)
		}
	}
	return out
}

func pick(r *rand.Rand, xs []string) string { return xs[r.Intn(len(xs))] }

func freshName(kind VarKind, n int) string {
	prefix := map[VarKind]string{
		KindVertex: "v", KindEdge: "e", KindVertexSet: "VS_", KindEdgeSet: "ES_",
	}[kind]
	return prefix + string(rune('a'+n%26)) + string(rune('0'+n/26%10))
}

// Property: printing and reparsing any well-formed formula is the identity
// up to printing, and preserves well-formedness, rank, and size.
func TestRandomFormulaRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1001))
	for trial := 0; trial < 200; trial++ {
		f := randomFormula(r, 1+r.Intn(4), map[string]VarKind{})
		if err := Check(f, nil); err != nil {
			t.Fatalf("trial %d: generated formula ill-formed: %v\n%s", trial, err, f)
		}
		text := f.String()
		g, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, text)
		}
		if g.String() != text {
			t.Fatalf("trial %d: round trip changed:\n%s\n%s", trial, text, g.String())
		}
		if QuantifierRank(f) != QuantifierRank(g) {
			t.Fatalf("trial %d: rank changed", trial)
		}
		if err := Check(g, nil); err != nil {
			t.Fatalf("trial %d: reparsed formula ill-formed: %v", trial, err)
		}
	}
}

// Property: evaluating a formula and its reparse agree on a small graph.
func TestRandomFormulaEvalAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(1002))
	for trial := 0; trial < 40; trial++ {
		f := randomFormula(r, 1+r.Intn(3), map[string]VarKind{})
		g, err := Parse(f.String())
		if err != nil {
			t.Fatal(err)
		}
		gr := randomSmallGraph(r)
		ev := NewEvaluator(gr)
		v1, err1 := ev.Eval(f, nil)
		v2, err2 := ev.Eval(g, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, err1, err2)
		}
		if err1 == nil && v1 != v2 {
			t.Fatalf("trial %d: eval mismatch on %s", trial, f)
		}
	}
}

func randomSmallGraph(r *rand.Rand) *graph.Graph {
	n := 2 + r.Intn(4)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(2) == 0 {
				g.MustAddEdge(i, j)
			}
		}
	}
	if r.Intn(2) == 0 {
		g.SetVertexLabel("red", r.Intn(n))
	}
	return g
}
