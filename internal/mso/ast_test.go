package mso

import (
	"testing"
)

func TestStringRoundTrip(t *testing.T) {
	// Every formula's String() must reparse to an equal-printing formula.
	formulas := []Formula{
		Adj{"x", "y"},
		Inc{"x", "e"},
		Eq{"x", "y"},
		In{"x", "X"},
		Label{"red", "x"},
		Not{Adj{"x", "y"}},
		And{Adj{"x", "y"}, Eq{"x", "y"}},
		Or{Adj{"x", "y"}, Not{Eq{"x", "y"}}},
		Implies{In{"x", "X"}, Label{"red", "x"}},
		Iff{True{}, False{}},
		Exists{"x", KindVertex, Adj{"x", "x"}},
		ForAll{"X", KindVertexSet, Exists{"x", KindVertex, In{"x", "X"}}},
		Exists{"e", KindEdge, Exists{"F", KindEdgeSet, In{"e", "F"}}},
	}
	for _, f := range formulas {
		s := f.String()
		g, err := Parse(s)
		if err != nil {
			t.Fatalf("reparse %q: %v", s, err)
		}
		if g.String() != s {
			t.Fatalf("round trip changed: %q -> %q", s, g.String())
		}
	}
}

func TestAndAllOrAll(t *testing.T) {
	if _, ok := AndAll().(True); !ok {
		t.Fatal("empty AndAll should be True")
	}
	if _, ok := OrAll().(False); !ok {
		t.Fatal("empty OrAll should be False")
	}
	f := AndAll(Adj{"a", "b"})
	if _, ok := f.(Adj); !ok {
		t.Fatal("singleton AndAll should be the formula itself")
	}
}

func TestQuantifierRank(t *testing.T) {
	cases := []struct {
		f    Formula
		want int
	}{
		{Adj{"x", "y"}, 0},
		{Exists{"x", KindVertex, Adj{"x", "x"}}, 1},
		{Exists{"x", KindVertex, Exists{"y", KindVertex, Adj{"x", "y"}}}, 2},
		{And{
			Exists{"x", KindVertex, Adj{"x", "x"}},
			Exists{"y", KindVertex, Exists{"z", KindVertex, Adj{"y", "z"}}},
		}, 2},
		{Not{ForAll{"X", KindVertexSet, Exists{"x", KindVertex, In{"x", "X"}}}}, 2},
	}
	for i, tc := range cases {
		if got := QuantifierRank(tc.f); got != tc.want {
			t.Fatalf("case %d: rank = %d, want %d", i, got, tc.want)
		}
	}
}

func TestSetQuantifierCount(t *testing.T) {
	f := Exists{"X", KindVertexSet, And{
		Exists{"x", KindVertex, In{"x", "X"}},
		ForAll{"F", KindEdgeSet, True{}},
	}}
	if got := SetQuantifierCount(f); got != 2 {
		t.Fatalf("SetQuantifierCount = %d, want 2", got)
	}
}

func TestFreeVars(t *testing.T) {
	f := Exists{"x", KindVertex, And{Adj{"x", "y"}, In{"x", "S"}}}
	free := FreeVars(f)
	if len(free) != 2 {
		t.Fatalf("free = %v", free)
	}
	if free["y"] != KindVertex {
		t.Fatalf("y kind = %v", free["y"])
	}
	if _, ok := free["S"]; !ok {
		t.Fatal("S should be free")
	}
	if _, ok := free["x"]; ok {
		t.Fatal("x is bound")
	}
	// Shadowing: inner binder hides outer free use.
	g := And{Adj{"x", "x"}, Exists{"x", KindVertex, Adj{"x", "x"}}}
	free = FreeVars(g)
	if len(free) != 1 || free["x"] != KindVertex {
		t.Fatalf("free = %v", free)
	}
}

func TestSubstitute(t *testing.T) {
	f := And{Adj{"x", "y"}, Exists{"x", KindVertex, Adj{"x", "y"}}}
	g := Substitute(f, "x", "z")
	want := "adj(z,y) & (exists x:V . adj(x,y))"
	if g.String() != want {
		t.Fatalf("Substitute = %q, want %q", g.String(), want)
	}
	h := Substitute(f, "y", "w")
	if h.String() != "adj(x,w) & (exists x:V . adj(x,w))" {
		t.Fatalf("Substitute = %q", h.String())
	}
}

func TestSizeAndLabelNames(t *testing.T) {
	f := And{Label{"red", "x"}, Not{Label{"blue", "x"}}}
	if got := Size(f); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	names := LabelNames(Exists{"x", KindVertex, f})
	if len(names) != 2 || names[0] != "blue" || names[1] != "red" {
		t.Fatalf("LabelNames = %v", names)
	}
}

func TestDistinct(t *testing.T) {
	f := Distinct("a", "b", "c")
	// 3 pairwise inequalities.
	want := "(~(a = b) & ~(a = c)) & ~(b = c)"
	if f.String() != want {
		t.Fatalf("Distinct = %q, want %q", f.String(), want)
	}
	if _, ok := Distinct("a").(True); !ok {
		t.Fatal("Distinct of one var should be True")
	}
}

func TestVarKindHelpers(t *testing.T) {
	if KindVertexSet.ElementKind() != KindVertex || KindEdgeSet.ElementKind() != KindEdge {
		t.Fatal("ElementKind wrong")
	}
	if KindVertex.ElementKind() != KindVertex {
		t.Fatal("ElementKind of element kind should be identity")
	}
	if !KindVertexSet.IsSet() || KindEdge.IsSet() {
		t.Fatal("IsSet wrong")
	}
	if KindVertex.String() != "V" || KindEdgeSet.String() != "ES" {
		t.Fatal("String wrong")
	}
}
