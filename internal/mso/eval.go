package mso

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// ErrUniverseTooLarge is returned when naive evaluation would need to
// enumerate more subsets than the configured limit allows.
var ErrUniverseTooLarge = errors.New("mso: universe too large for naive evaluation")

// DefaultMaxSetUniverse bounds the universe size (vertices or edges) over
// which the naive evaluator will enumerate all subsets for set quantifiers.
const DefaultMaxSetUniverse = 24

// Value is the binding of a variable in an assignment.
type Value struct {
	Kind VarKind
	Elem int         // for KindVertex / KindEdge
	Set  *bitset.Set // for KindVertexSet / KindEdgeSet
}

// VertexValue binds a vertex element.
func VertexValue(v int) Value { return Value{Kind: KindVertex, Elem: v} }

// EdgeValue binds an edge element by edge ID.
func EdgeValue(e int) Value { return Value{Kind: KindEdge, Elem: e} }

// VertexSetValue binds a vertex set.
func VertexSetValue(s *bitset.Set) Value { return Value{Kind: KindVertexSet, Set: s} }

// EdgeSetValue binds an edge set (by edge IDs).
func EdgeSetValue(s *bitset.Set) Value { return Value{Kind: KindEdgeSet, Set: s} }

// Assignment maps free-variable names to values.
type Assignment map[string]Value

// Evaluator evaluates MSO formulas on a graph by exhaustive enumeration. It
// is exponential in the number of set quantifiers and serves as the
// ground-truth oracle; the automata engines are the scalable implementations.
type Evaluator struct {
	G *graph.Graph
	// MaxSetUniverse bounds vertex/edge counts for subset enumeration; 0
	// means DefaultMaxSetUniverse.
	MaxSetUniverse int
}

// NewEvaluator returns an evaluator for g with default limits.
func NewEvaluator(g *graph.Graph) *Evaluator { return &Evaluator{G: g} }

func (ev *Evaluator) maxUniverse() int {
	if ev.MaxSetUniverse > 0 {
		return ev.MaxSetUniverse
	}
	return DefaultMaxSetUniverse
}

// Eval evaluates f under the given assignment of its free variables. The
// assignment map is not modified.
func (ev *Evaluator) Eval(f Formula, asg Assignment) (bool, error) {
	env := make(Assignment, len(asg)+4)
	for k, v := range asg {
		env[k] = v
	}
	return ev.eval(f, env)
}

func (ev *Evaluator) eval(f Formula, env Assignment) (bool, error) {
	switch t := f.(type) {
	case True:
		return true, nil
	case False:
		return false, nil
	case Adj:
		x, err := ev.elem(env, t.X, KindVertex)
		if err != nil {
			return false, err
		}
		y, err := ev.elem(env, t.Y, KindVertex)
		if err != nil {
			return false, err
		}
		return ev.G.HasEdge(x, y), nil
	case Inc:
		v, err := ev.elem(env, t.V, KindVertex)
		if err != nil {
			return false, err
		}
		e, err := ev.elem(env, t.E, KindEdge)
		if err != nil {
			return false, err
		}
		edge := ev.G.Edge(e)
		return edge.U == v || edge.V == v, nil
	case Eq:
		vx, ok := env[t.X]
		if !ok {
			return false, fmt.Errorf("mso: unbound variable %q", t.X)
		}
		vy, ok := env[t.Y]
		if !ok {
			return false, fmt.Errorf("mso: unbound variable %q", t.Y)
		}
		if vx.Kind.IsSet() || vy.Kind.IsSet() || vx.Kind != vy.Kind {
			return false, fmt.Errorf("mso: = kind mismatch for %q, %q", t.X, t.Y)
		}
		return vx.Elem == vy.Elem, nil
	case In:
		vx, ok := env[t.X]
		if !ok {
			return false, fmt.Errorf("mso: unbound variable %q", t.X)
		}
		vs, ok := env[t.S]
		if !ok {
			return false, fmt.Errorf("mso: unbound variable %q", t.S)
		}
		if vx.Kind.IsSet() || !vs.Kind.IsSet() || vs.Kind.ElementKind() != vx.Kind {
			return false, fmt.Errorf("mso: 'in' kind mismatch for %q, %q", t.X, t.S)
		}
		return vs.Set.Contains(vx.Elem), nil
	case Label:
		vx, ok := env[t.X]
		if !ok {
			return false, fmt.Errorf("mso: unbound variable %q", t.X)
		}
		switch vx.Kind {
		case KindVertex:
			return ev.G.HasVertexLabel(t.Name, vx.Elem), nil
		case KindEdge:
			return ev.G.HasEdgeLabel(t.Name, vx.Elem), nil
		default:
			return false, fmt.Errorf("mso: label %q applied to set variable %q", t.Name, t.X)
		}
	case Not:
		v, err := ev.eval(t.F, env)
		return !v, err
	case And:
		l, err := ev.eval(t.L, env)
		if err != nil || !l {
			return false, err
		}
		return ev.eval(t.R, env)
	case Or:
		l, err := ev.eval(t.L, env)
		if err != nil || l {
			return l, err
		}
		return ev.eval(t.R, env)
	case Implies:
		l, err := ev.eval(t.L, env)
		if err != nil {
			return false, err
		}
		if !l {
			return true, nil
		}
		return ev.eval(t.R, env)
	case Iff:
		l, err := ev.eval(t.L, env)
		if err != nil {
			return false, err
		}
		r, err := ev.eval(t.R, env)
		if err != nil {
			return false, err
		}
		return l == r, nil
	case Exists:
		return ev.quantify(t.Var, t.Kind, t.Body, env, true)
	case ForAll:
		return ev.quantify(t.Var, t.Kind, t.Body, env, false)
	case nil:
		return false, fmt.Errorf("mso: nil formula node")
	default:
		return false, fmt.Errorf("mso: unknown node type %T", f)
	}
}

// quantify evaluates an existential (existential=true) or universal
// quantifier by enumerating the domain.
func (ev *Evaluator) quantify(name string, kind VarKind, body Formula, env Assignment, existential bool) (bool, error) {
	prev, had := env[name]
	defer func() {
		if had {
			env[name] = prev
		} else {
			delete(env, name)
		}
	}()

	try := func(val Value) (bool, bool, error) {
		env[name] = val
		v, err := ev.eval(body, env)
		if err != nil {
			return false, true, err
		}
		if existential && v {
			return true, true, nil
		}
		if !existential && !v {
			return false, true, nil
		}
		return false, false, nil
	}

	switch kind {
	case KindVertex:
		for v := 0; v < ev.G.NumVertices(); v++ {
			if res, done, err := try(VertexValue(v)); done {
				return res, err
			}
		}
	case KindEdge:
		for e := 0; e < ev.G.NumEdges(); e++ {
			if res, done, err := try(EdgeValue(e)); done {
				return res, err
			}
		}
	case KindVertexSet, KindEdgeSet:
		universe := ev.G.NumVertices()
		if kind == KindEdgeSet {
			universe = ev.G.NumEdges()
		}
		if universe > ev.maxUniverse() {
			return false, fmt.Errorf("%w: %d elements for set quantifier over %q (limit %d)",
				ErrUniverseTooLarge, universe, name, ev.maxUniverse())
		}
		for mask := uint64(0); mask < 1<<uint(universe); mask++ {
			set := bitset.New(universe)
			for m := mask; m != 0; m &= m - 1 {
				set.Add(trailingZeros(m))
			}
			val := VertexSetValue(set)
			if kind == KindEdgeSet {
				val = EdgeSetValue(set)
			}
			if res, done, err := try(val); done {
				return res, err
			}
		}
	default:
		return false, fmt.Errorf("mso: quantifier over %q has invalid kind %v", name, kind)
	}
	// Existential exhausted without witness: false. Universal never failed: true.
	return !existential, nil
}

func trailingZeros(m uint64) int { return bits.TrailingZeros64(m) }

func (ev *Evaluator) elem(env Assignment, name string, want VarKind) (int, error) {
	v, ok := env[name]
	if !ok {
		return 0, fmt.Errorf("mso: unbound variable %q", name)
	}
	if v.Kind != want {
		return 0, fmt.Errorf("mso: variable %q is %v, want %v", name, v.Kind, want)
	}
	if want == KindVertex && (v.Elem < 0 || v.Elem >= ev.G.NumVertices()) {
		return 0, fmt.Errorf("mso: vertex value %d of %q out of range", v.Elem, name)
	}
	if want == KindEdge && (v.Elem < 0 || v.Elem >= ev.G.NumEdges()) {
		return 0, fmt.Errorf("mso: edge value %d of %q out of range", v.Elem, name)
	}
	return v.Elem, nil
}

// TypedVar declares a free variable with its kind, for counting and
// optimization drivers.
type TypedVar struct {
	Name string
	Kind VarKind
}

// CountAssignments counts the assignments of the given free variables that
// satisfy f, enumerating exhaustively. Set variables require the universe to
// be within the evaluator's limit.
func (ev *Evaluator) CountAssignments(f Formula, free []TypedVar) (int64, error) {
	env := make(Assignment, len(free))
	var count int64
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(free) {
			v, err := ev.eval(f, env)
			if err != nil {
				return err
			}
			if v {
				count++
			}
			return nil
		}
		fv := free[i]
		switch fv.Kind {
		case KindVertex:
			for v := 0; v < ev.G.NumVertices(); v++ {
				env[fv.Name] = VertexValue(v)
				if err := rec(i + 1); err != nil {
					return err
				}
			}
		case KindEdge:
			for e := 0; e < ev.G.NumEdges(); e++ {
				env[fv.Name] = EdgeValue(e)
				if err := rec(i + 1); err != nil {
					return err
				}
			}
		case KindVertexSet, KindEdgeSet:
			universe := ev.G.NumVertices()
			if fv.Kind == KindEdgeSet {
				universe = ev.G.NumEdges()
			}
			if universe > ev.maxUniverse() {
				return fmt.Errorf("%w: %d elements for free set variable %q (limit %d)",
					ErrUniverseTooLarge, universe, fv.Name, ev.maxUniverse())
			}
			for mask := uint64(0); mask < 1<<uint(universe); mask++ {
				set := bitset.New(universe)
				for m := mask; m != 0; m &= m - 1 {
					set.Add(trailingZeros(m))
				}
				if fv.Kind == KindVertexSet {
					env[fv.Name] = VertexSetValue(set)
				} else {
					env[fv.Name] = EdgeSetValue(set)
				}
				if err := rec(i + 1); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("mso: free variable %q has invalid kind %v", fv.Name, fv.Kind)
		}
		delete(env, fv.Name)
		return nil
	}
	if err := rec(0); err != nil {
		return 0, err
	}
	return count, nil
}

// OptResult reports the outcome of naive optimization.
type OptResult struct {
	Found  bool
	Weight int64
	Set    *bitset.Set // vertex IDs or edge IDs depending on the variable kind
}

// OptimizeSet finds a subset binding for the free set variable that satisfies
// f and has maximum (or minimum) total weight, using vertex weights for
// vertex sets and edge weights for edge sets. It enumerates all subsets and
// requires the universe to be within the evaluator's limit.
func (ev *Evaluator) OptimizeSet(f Formula, varName string, kind VarKind, maximize bool) (OptResult, error) {
	if !kind.IsSet() {
		return OptResult{}, fmt.Errorf("mso: OptimizeSet needs a set kind, got %v", kind)
	}
	universe := ev.G.NumVertices()
	if kind == KindEdgeSet {
		universe = ev.G.NumEdges()
	}
	if universe > ev.maxUniverse() {
		return OptResult{}, fmt.Errorf("%w: %d elements for optimization over %q (limit %d)",
			ErrUniverseTooLarge, universe, varName, ev.maxUniverse())
	}
	weight := func(set *bitset.Set) int64 {
		var total int64
		set.ForEach(func(i int) {
			if kind == KindVertexSet {
				total += ev.G.VertexWeight(i)
			} else {
				total += ev.G.EdgeWeight(i)
			}
		})
		return total
	}
	var best OptResult
	for mask := uint64(0); mask < 1<<uint(universe); mask++ {
		set := bitset.New(universe)
		for m := mask; m != 0; m &= m - 1 {
			set.Add(trailingZeros(m))
		}
		val := VertexSetValue(set)
		if kind == KindEdgeSet {
			val = EdgeSetValue(set)
		}
		ok, err := ev.Eval(f, Assignment{varName: val})
		if err != nil {
			return OptResult{}, err
		}
		if !ok {
			continue
		}
		w := weight(set)
		if !best.Found || (maximize && w > best.Weight) || (!maximize && w < best.Weight) {
			best = OptResult{Found: true, Weight: w, Set: set}
		}
	}
	return best, nil
}
