package msolib

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/mso"
)

func evalClosed(t *testing.T, g *graph.Graph, f mso.Formula) bool {
	t.Helper()
	if err := mso.Check(f, nil); err != nil {
		t.Fatalf("Check: %v", err)
	}
	v, err := mso.NewEvaluator(g).Eval(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func checkOpt(t *testing.T, f mso.Formula) {
	t.Helper()
	if err := mso.Check(f, map[string]mso.VarKind{FreeSet: mso.KindVertexSet}); err != nil {
		// Try edge set.
		if err2 := mso.Check(f, map[string]mso.VarKind{FreeSet: mso.KindEdgeSet}); err2 != nil {
			t.Fatalf("Check failed for both kinds: %v / %v", err, err2)
		}
	}
}

func TestTriangleFree(t *testing.T) {
	if evalClosed(t, gen.Complete(3), TriangleFree()) {
		t.Fatal("K3 is not triangle-free")
	}
	if !evalClosed(t, gen.Path(5), TriangleFree()) {
		t.Fatal("P5 is triangle-free")
	}
	if !evalClosed(t, gen.Cycle(5), TriangleFree()) {
		t.Fatal("C5 is triangle-free")
	}
	if evalClosed(t, gen.Complete(5), TriangleFree()) {
		t.Fatal("K5 contains triangles")
	}
}

func TestCycleFree(t *testing.T) {
	if evalClosed(t, gen.Cycle(4), CycleFree(4)) {
		t.Fatal("C4 is not C4-free")
	}
	if !evalClosed(t, gen.Cycle(5), CycleFree(4)) {
		t.Fatal("C5 is C4-free")
	}
	// K4 contains C4 as a subgraph.
	if evalClosed(t, gen.Complete(4), CycleFree(4)) {
		t.Fatal("K4 contains C4")
	}
	if !evalClosed(t, gen.Path(6), CycleFree(3)) {
		t.Fatal("P6 is C3-free")
	}
}

func TestHSubgraphVsInduced(t *testing.T) {
	// P3 as subgraph of K3: yes. As induced subgraph: no.
	p3 := gen.Path(3)
	if !evalClosed(t, gen.Complete(3), HSubgraph(p3)) {
		t.Fatal("K3 contains P3 as subgraph")
	}
	if evalClosed(t, gen.Complete(3), HInducedSubgraph(p3)) {
		t.Fatal("K3 does not contain P3 induced")
	}
	if !evalClosed(t, gen.Path(4), HInducedSubgraph(p3)) {
		t.Fatal("P4 contains P3 induced")
	}
	if !evalClosed(t, gen.Complete(3), HInducedFree(p3)) {
		t.Fatal("K3 is induced-P3-free")
	}
	if evalClosed(t, gen.Complete(3), HSubgraphFree(p3)) {
		t.Fatal("K3 is not subgraph-P3-free")
	}
}

func TestAcyclic(t *testing.T) {
	if !evalClosed(t, gen.Path(6), Acyclic()) {
		t.Fatal("P6 is acyclic")
	}
	if !evalClosed(t, gen.RandomTree(8, 3), Acyclic()) {
		t.Fatal("trees are acyclic")
	}
	if evalClosed(t, gen.Cycle(5), Acyclic()) {
		t.Fatal("C5 has a cycle")
	}
	if evalClosed(t, gen.Complete(4), Acyclic()) {
		t.Fatal("K4 has cycles")
	}
	// Disconnected forest.
	forest, _ := gen.DisjointUnion(gen.Path(3), gen.Path(4))
	if !evalClosed(t, forest, Acyclic()) {
		t.Fatal("forests are acyclic")
	}
	withCycle, _ := gen.DisjointUnion(gen.Path(3), gen.Cycle(3))
	if evalClosed(t, withCycle, Acyclic()) {
		t.Fatal("P3 + C3 has a cycle")
	}
}

func TestConnected(t *testing.T) {
	if !evalClosed(t, gen.Path(5), Connected()) {
		t.Fatal("P5 is connected")
	}
	two, _ := gen.DisjointUnion(gen.Path(2), gen.Path(3))
	if evalClosed(t, two, Connected()) {
		t.Fatal("disjoint union is disconnected")
	}
	if !evalClosed(t, graph.New(1), Connected()) {
		t.Fatal("K1 is connected")
	}
}

func TestKColorable(t *testing.T) {
	if !evalClosed(t, gen.Cycle(4), KColorable(2)) {
		t.Fatal("C4 is bipartite")
	}
	if evalClosed(t, gen.Cycle(5), KColorable(2)) {
		t.Fatal("C5 is not bipartite")
	}
	if !evalClosed(t, gen.Cycle(5), KColorable(3)) {
		t.Fatal("C5 is 3-colorable")
	}
	if evalClosed(t, gen.Complete(4), KColorable(3)) {
		t.Fatal("K4 is not 3-colorable")
	}
	if !evalClosed(t, gen.Complete(4), KColorable(4)) {
		t.Fatal("K4 is 4-colorable")
	}
	if !evalClosed(t, gen.Complete(4), NonKColorable(3)) {
		t.Fatal("K4 is non-3-colorable")
	}
}

func TestOptimizationFormulas(t *testing.T) {
	// Unit weights on P5.
	g := gen.Path(5)
	for v := 0; v < 5; v++ {
		g.SetVertexWeight(v, 1)
	}
	for _, e := range g.Edges() {
		g.SetEdgeWeight(e.ID, 1)
	}
	ev := mso.NewEvaluator(g)

	res, err := ev.OptimizeSet(IndependentSet(), FreeSet, mso.KindVertexSet, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 3 { // {0,2,4}
		t.Fatalf("MaxIS(P5) = %d, want 3", res.Weight)
	}

	res, err = ev.OptimizeSet(VertexCover(), FreeSet, mso.KindVertexSet, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 2 { // {1,3}
		t.Fatalf("MinVC(P5) = %d, want 2", res.Weight)
	}

	res, err = ev.OptimizeSet(DominatingSet(), FreeSet, mso.KindVertexSet, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 2 { // {1,3} or {1,4}
		t.Fatalf("MinDS(P5) = %d, want 2", res.Weight)
	}

	res, err = ev.OptimizeSet(Matching(), FreeSet, mso.KindEdgeSet, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 2 {
		t.Fatalf("MaxMatching(P5) = %d, want 2", res.Weight)
	}
}

func TestFeedbackVertexSet(t *testing.T) {
	// C5 + chord: minimum FVS has size 1.
	g := gen.Cycle(5)
	g.MustAddEdge(0, 2)
	for v := 0; v < 5; v++ {
		g.SetVertexWeight(v, 1)
	}
	res, err := mso.NewEvaluator(g).OptimizeSet(FeedbackVertexSet(), FreeSet, mso.KindVertexSet, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 1 {
		t.Fatalf("MinFVS = %d, want 1", res.Weight)
	}
	// The empty set is a valid FVS of a tree.
	tr := gen.RandomTree(6, 2)
	for v := 0; v < 6; v++ {
		tr.SetVertexWeight(v, 1)
	}
	res, err = mso.NewEvaluator(tr).OptimizeSet(FeedbackVertexSet(), FreeSet, mso.KindVertexSet, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 0 {
		t.Fatalf("MinFVS(tree) = %d, want 0", res.Weight)
	}
}

func TestSpanningTree(t *testing.T) {
	// C4 with one heavy edge: MST avoids it.
	g := gen.Cycle(4)
	g.SetEdgeWeight(0, 1)
	g.SetEdgeWeight(1, 1)
	g.SetEdgeWeight(2, 1)
	g.SetEdgeWeight(3, 100)
	res, err := mso.NewEvaluator(g).OptimizeSet(SpanningTree(), FreeSet, mso.KindEdgeSet, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 3 {
		t.Fatalf("MST(C4) = %+v, want weight 3", res)
	}
	if res.Set.Contains(3) {
		t.Fatal("MST should avoid the heavy edge")
	}
	// Disconnected graph: no spanning tree.
	dis, _ := gen.DisjointUnion(gen.Path(2), gen.Path(2))
	res, err = mso.NewEvaluator(dis).OptimizeSet(SpanningTree(), FreeSet, mso.KindEdgeSet, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("disconnected graph has no spanning tree")
	}
}

func TestPerfectMatching(t *testing.T) {
	if !evalClosed(t, gen.Path(4), HasPerfectMatching()) {
		t.Fatal("P4 has a perfect matching")
	}
	if evalClosed(t, gen.Path(3), HasPerfectMatching()) {
		t.Fatal("P3 has no perfect matching (odd)")
	}
	if evalClosed(t, gen.Star(4), HasPerfectMatching()) {
		t.Fatal("K_{1,3} has no perfect matching")
	}
	// Count perfect matchings of C6: exactly 2.
	count, err := mso.NewEvaluator(gen.Cycle(6)).CountAssignments(
		PerfectMatching(), []mso.TypedVar{{Name: FreeSet, Kind: mso.KindEdgeSet}})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("perfect matchings of C6 = %d, want 2", count)
	}
}

func TestTriangleCounting(t *testing.T) {
	free := []mso.TypedVar{{Name: "x1", Kind: mso.KindVertex}, {Name: "x2", Kind: mso.KindVertex}, {Name: "x3", Kind: mso.KindVertex}}
	count, err := mso.NewEvaluator(gen.Complete(4)).CountAssignments(Triangle(), free)
	if err != nil {
		t.Fatal(err)
	}
	if count != 24 { // K4 has 4 triangles, 6 orderings each
		t.Fatalf("ordered triangles in K4 = %d, want 24", count)
	}
}

func TestLabeledFormulas(t *testing.T) {
	// Star with red leaves and blue center: center dominates all reds.
	g := gen.Star(5)
	g.SetVertexLabel("blue", 0)
	for v := 1; v < 5; v++ {
		g.SetVertexLabel("red", v)
		g.SetVertexWeight(v, 1)
	}
	g.SetVertexWeight(0, 1)
	res, err := mso.NewEvaluator(g).OptimizeSet(RedBlueDominatingSet(), FreeSet, mso.KindVertexSet, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 1 || !res.Set.Contains(0) {
		t.Fatalf("RedBlueDomination = %+v, want {0}", res)
	}

	// Proper 2-coloring.
	p := gen.Path(3)
	p.SetVertexLabel("red", 0)
	p.SetVertexLabel("blue", 1)
	p.SetVertexLabel("red", 2)
	if !evalClosed(t, p, ProperlyTwoColored()) {
		t.Fatal("alternating P3 is properly 2-colored")
	}
	bad := gen.Path(3)
	bad.SetVertexLabel("red", 0)
	bad.SetVertexLabel("red", 1)
	bad.SetVertexLabel("blue", 2)
	if evalClosed(t, bad, ProperlyTwoColored()) {
		t.Fatal("adjacent reds are not properly colored")
	}
	missing := gen.Path(3)
	missing.SetVertexLabel("red", 0)
	if evalClosed(t, missing, ProperlyTwoColored()) {
		t.Fatal("uncolored vertices fail the covering condition")
	}
}

func TestDegreeFormulas(t *testing.T) {
	if !evalClosed(t, gen.Star(5), HasVertexOfDegreeAtLeast(3)) {
		t.Fatal("star center has degree 4")
	}
	if evalClosed(t, gen.Path(10), HasVertexOfDegreeAtLeast(3)) {
		t.Fatal("paths have max degree 2")
	}
	if !evalClosed(t, gen.Path(10), MaxDegreeAtMost(2)) {
		t.Fatal("paths have max degree 2")
	}
	if evalClosed(t, gen.Star(5), MaxDegreeAtMost(2)) {
		t.Fatal("star violates max degree 2")
	}
}

func TestEdgeDominatingSet(t *testing.T) {
	g := gen.Path(5) // edges 0-1,1-2,2-3,3-4
	for _, e := range g.Edges() {
		g.SetEdgeWeight(e.ID, 1)
	}
	res, err := mso.NewEvaluator(g).OptimizeSet(EdgeDominatingSet(), FreeSet, mso.KindEdgeSet, false)
	if err != nil {
		t.Fatal(err)
	}
	// Edges are 0-1, 1-2, 2-3, 3-4; no single edge touches all of them, and
	// e.g. {1-2, 3-4} works, so the minimum is 2.
	if !res.Found || res.Weight != 2 {
		t.Fatalf("MinEDS(P5) = %+v, want 2", res)
	}
}

func TestAllFormulasWellFormed(t *testing.T) {
	closed := []mso.Formula{
		TriangleFree(), Triangle(), CycleFree(5), Acyclic(), Connected(),
		KColorable(3), NonKColorable(3), HasPerfectMatching(),
		HasVertexOfDegreeAtLeast(3), MaxDegreeAtMost(2), ProperlyTwoColored(),
		HSubgraph(gen.Path(3)), HInducedSubgraph(gen.Cycle(4)),
	}
	for i, f := range closed {
		free := mso.FreeVars(f)
		decl := map[string]mso.VarKind{}
		for name, kind := range free {
			if kind == 0 {
				kind = mso.KindVertex
			}
			decl[name] = kind
		}
		if err := mso.Check(f, decl); err != nil {
			t.Fatalf("formula %d: %v", i, err)
		}
	}
	vertexOpt := []mso.Formula{IndependentSet(), VertexCover(), DominatingSet(), FeedbackVertexSet(), RedBlueDominatingSet()}
	for i, f := range vertexOpt {
		if err := mso.Check(f, map[string]mso.VarKind{FreeSet: mso.KindVertexSet}); err != nil {
			t.Fatalf("vertex-opt formula %d: %v", i, err)
		}
	}
	edgeOpt := []mso.Formula{SpanningTree(), Matching(), PerfectMatching(), EdgeDominatingSet()}
	for i, f := range edgeOpt {
		if err := mso.Check(f, map[string]mso.VarKind{FreeSet: mso.KindEdgeSet}); err != nil {
			t.Fatalf("edge-opt formula %d: %v", i, err)
		}
	}
}
