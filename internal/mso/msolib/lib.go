// Package msolib is a library of MSO formulas for classic graph properties
// and optimization problems, built programmatically on the mso AST. Closed
// formulas express decision predicates (acyclicity, k-colorability,
// H-freeness); formulas with a free set variable express optimization
// problems (independent set, vertex cover, spanning tree, matching) in the
// maxφ/minφ framework of the paper.
package msolib

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mso"
)

// FreeSet is the conventional name of the free set variable in optimization
// formulas produced by this package.
const FreeSet = "S"

// TriangleFree is ¬∃x,y,z pairwise-adjacent distinct vertices.
func TriangleFree() mso.Formula {
	return mso.Not{F: mso.ExistsMany(mso.KindVertex, []string{"x1", "x2", "x3"},
		mso.AndAll(
			mso.Adj{X: "x1", Y: "x2"},
			mso.Adj{X: "x2", Y: "x3"},
			mso.Adj{X: "x3", Y: "x1"},
		))}
}

// Triangle is the free-variable formula φ(x1,x2,x3) stating that the three
// vertices form a triangle; used for counting triangles (each triangle has 6
// ordered occurrences).
func Triangle() mso.Formula {
	return mso.AndAll(
		mso.Adj{X: "x1", Y: "x2"},
		mso.Adj{X: "x2", Y: "x3"},
		mso.Adj{X: "x3", Y: "x1"},
	)
}

// CycleFree returns C_k-freeness (no cycle on exactly k vertices as a
// subgraph, not necessarily induced). It panics for k < 3.
func CycleFree(k int) mso.Formula {
	return HSubgraphFree(cycleGraph(k))
}

func cycleGraph(k int) *graph.Graph {
	if k < 3 {
		panic(fmt.Sprintf("msolib: CycleFree needs k >= 3, got %d", k))
	}
	c := graph.New(k)
	for i := 0; i < k; i++ {
		c.MustAddEdge(i, (i+1)%k)
	}
	return c
}

// HSubgraph returns the formula ∃x_1..x_p distinct with adj(x_i, x_j) for
// every edge {i,j} of H: "G contains H as a (not necessarily induced)
// subgraph". This is the formula φ_H of Corollary 7.3 without the negation.
func HSubgraph(h *graph.Graph) mso.Formula {
	p := h.NumVertices()
	vars := make([]string, p)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i+1)
	}
	parts := []mso.Formula{mso.Distinct(vars...)}
	for _, e := range h.Edges() {
		parts = append(parts, mso.Adj{X: vars[e.U], Y: vars[e.V]})
	}
	return mso.ExistsMany(mso.KindVertex, vars, mso.AndAll(parts...))
}

// HSubgraphFree is ¬HSubgraph(h): "G is H-free" in the subgraph sense.
func HSubgraphFree(h *graph.Graph) mso.Formula {
	return mso.Not{F: HSubgraph(h)}
}

// HInducedSubgraph additionally requires non-adjacency for non-edges of H,
// i.e. G contains H as an induced subgraph.
func HInducedSubgraph(h *graph.Graph) mso.Formula {
	p := h.NumVertices()
	vars := make([]string, p)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i+1)
	}
	parts := []mso.Formula{mso.Distinct(vars...)}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if h.HasEdge(i, j) {
				parts = append(parts, mso.Adj{X: vars[i], Y: vars[j]})
			} else {
				parts = append(parts, mso.Not{F: mso.Adj{X: vars[i], Y: vars[j]}})
			}
		}
	}
	return mso.ExistsMany(mso.KindVertex, vars, mso.AndAll(parts...))
}

// HInducedFree is ¬HInducedSubgraph(h).
func HInducedFree(h *graph.Graph) mso.Formula {
	return mso.Not{F: HInducedSubgraph(h)}
}

// Acyclic is the paper's formulation: there is no nonempty vertex set X in
// which every vertex has two distinct neighbors inside X.
func Acyclic() mso.Formula {
	inner := mso.ForAll{Var: "x", Kind: mso.KindVertex, Body: mso.Implies{
		L: mso.In{X: "x", S: "X"},
		R: mso.ExistsMany(mso.KindVertex, []string{"y1", "y2"}, mso.AndAll(
			mso.In{X: "y1", S: "X"},
			mso.In{X: "y2", S: "X"},
			mso.Not{F: mso.Eq{X: "y1", Y: "y2"}},
			mso.Adj{X: "x", Y: "y1"},
			mso.Adj{X: "x", Y: "y2"},
		)),
	}}
	nonEmpty := mso.Exists{Var: "z", Kind: mso.KindVertex, Body: mso.In{X: "z", S: "X"}}
	return mso.Not{F: mso.Exists{Var: "X", Kind: mso.KindVertexSet,
		Body: mso.And{L: nonEmpty, R: inner}}}
}

// Connected states that no proper nonempty vertex subset is closed under
// adjacency: for every X with some vertex inside and some outside, an edge
// crosses the cut.
func Connected() mso.Formula {
	someIn := mso.Exists{Var: "u", Kind: mso.KindVertex, Body: mso.In{X: "u", S: "X"}}
	someOut := mso.Exists{Var: "v", Kind: mso.KindVertex, Body: mso.Not{F: mso.In{X: "v", S: "X"}}}
	crossing := mso.ExistsMany(mso.KindVertex, []string{"a", "b"}, mso.AndAll(
		mso.In{X: "a", S: "X"},
		mso.Not{F: mso.In{X: "b", S: "X"}},
		mso.Adj{X: "a", Y: "b"},
	))
	return mso.ForAll{Var: "X", Kind: mso.KindVertexSet,
		Body: mso.Implies{L: mso.And{L: someIn, R: someOut}, R: crossing}}
}

// KColorable states that the vertices can be covered by k independent sets.
func KColorable(k int) mso.Formula {
	if k < 1 {
		panic(fmt.Sprintf("msolib: KColorable needs k >= 1, got %d", k))
	}
	sets := make([]string, k)
	for i := range sets {
		sets[i] = fmt.Sprintf("C%d", i+1)
	}
	var coverParts []mso.Formula
	for _, s := range sets {
		coverParts = append(coverParts, mso.In{X: "x", S: s})
	}
	cover := mso.ForAll{Var: "x", Kind: mso.KindVertex, Body: mso.OrAll(coverParts...)}
	parts := []mso.Formula{cover}
	for _, s := range sets {
		parts = append(parts, mso.ForAllMany(mso.KindVertex, []string{"y", "z"},
			mso.Implies{
				L: mso.AndAll(mso.In{X: "y", S: s}, mso.In{X: "z", S: s}),
				R: mso.Not{F: mso.Adj{X: "y", Y: "z"}},
			}))
	}
	body := mso.AndAll(parts...)
	out := mso.Formula(body)
	for i := k - 1; i >= 0; i-- {
		out = mso.Exists{Var: sets[i], Kind: mso.KindVertexSet, Body: out}
	}
	return out
}

// NonKColorable is ¬KColorable(k); for k = 3 this is the paper's running
// example of a hard MSO property made constant-round on bounded treedepth.
func NonKColorable(k int) mso.Formula {
	return mso.Not{F: KColorable(k)}
}

// IndependentSet is φ(S): no two vertices of S are adjacent.
func IndependentSet() mso.Formula {
	return mso.ForAllMany(mso.KindVertex, []string{"x", "y"},
		mso.Implies{
			L: mso.AndAll(mso.In{X: "x", S: FreeSet}, mso.In{X: "y", S: FreeSet}),
			R: mso.Not{F: mso.Adj{X: "x", Y: "y"}},
		})
}

// VertexCover is φ(S): every edge has an endpoint in S.
func VertexCover() mso.Formula {
	return mso.ForAll{Var: "e", Kind: mso.KindEdge,
		Body: mso.Exists{Var: "x", Kind: mso.KindVertex,
			Body: mso.AndAll(mso.Inc{V: "x", E: "e"}, mso.In{X: "x", S: FreeSet})}}
}

// DominatingSet is φ(S): every vertex is in S or adjacent to a vertex of S.
func DominatingSet() mso.Formula {
	return mso.ForAll{Var: "x", Kind: mso.KindVertex,
		Body: mso.Or{
			L: mso.In{X: "x", S: FreeSet},
			R: mso.Exists{Var: "y", Kind: mso.KindVertex,
				Body: mso.AndAll(mso.Adj{X: "x", Y: "y"}, mso.In{X: "y", S: FreeSet})},
		}}
}

// FeedbackVertexSet is φ(S): deleting S leaves an acyclic graph — no
// nonempty X disjoint from S has minimum degree 2 within X.
func FeedbackVertexSet() mso.Formula {
	inner := mso.ForAll{Var: "x", Kind: mso.KindVertex, Body: mso.Implies{
		L: mso.In{X: "x", S: "X"},
		R: mso.ExistsMany(mso.KindVertex, []string{"y1", "y2"}, mso.AndAll(
			mso.In{X: "y1", S: "X"},
			mso.In{X: "y2", S: "X"},
			mso.Not{F: mso.Eq{X: "y1", Y: "y2"}},
			mso.Adj{X: "x", Y: "y1"},
			mso.Adj{X: "x", Y: "y2"},
		)),
	}}
	nonEmpty := mso.Exists{Var: "z", Kind: mso.KindVertex, Body: mso.In{X: "z", S: "X"}}
	disjoint := mso.ForAll{Var: "w", Kind: mso.KindVertex, Body: mso.Implies{
		L: mso.In{X: "w", S: "X"},
		R: mso.Not{F: mso.In{X: "w", S: FreeSet}},
	}}
	return mso.Not{F: mso.Exists{Var: "X", Kind: mso.KindVertexSet,
		Body: mso.AndAll(nonEmpty, disjoint, inner)}}
}

// adjVia(x, y, s) states that some edge of set variable s joins x and y.
func adjVia(x, y, s string) mso.Formula {
	return mso.Exists{Var: "e_" + x + y, Kind: mso.KindEdge, Body: mso.AndAll(
		mso.In{X: "e_" + x + y, S: s},
		mso.Inc{V: x, E: "e_" + x + y},
		mso.Inc{V: y, E: "e_" + x + y},
	)}
}

// SpanningTree is φ(S) over edge sets: the subgraph (V, S) is connected and
// acyclic. With edge weights and minφ, this yields minimum spanning tree.
func SpanningTree() mso.Formula {
	// Connectivity via S-edges: every cut is crossed by an S-edge.
	someIn := mso.Exists{Var: "u", Kind: mso.KindVertex, Body: mso.In{X: "u", S: "X"}}
	someOut := mso.Exists{Var: "v", Kind: mso.KindVertex, Body: mso.Not{F: mso.In{X: "v", S: "X"}}}
	crossing := mso.ExistsMany(mso.KindVertex, []string{"a", "b"}, mso.AndAll(
		mso.In{X: "a", S: "X"},
		mso.Not{F: mso.In{X: "b", S: "X"}},
		adjVia("a", "b", FreeSet),
	))
	connectedViaS := mso.ForAll{Var: "X", Kind: mso.KindVertexSet,
		Body: mso.Implies{L: mso.And{L: someIn, R: someOut}, R: crossing}}
	// Acyclicity of (V, S): no nonempty vertex set X where each vertex has
	// two distinct S-neighbors within X. Unlike adj(x,x), adjVia(x,x,S) is
	// satisfiable (any S-edge at x), so y1 != x and y2 != x are explicit.
	inner := mso.ForAll{Var: "x", Kind: mso.KindVertex, Body: mso.Implies{
		L: mso.In{X: "x", S: "X"},
		R: mso.ExistsMany(mso.KindVertex, []string{"y1", "y2"}, mso.AndAll(
			mso.In{X: "y1", S: "X"},
			mso.In{X: "y2", S: "X"},
			mso.Not{F: mso.Eq{X: "y1", Y: "y2"}},
			mso.Not{F: mso.Eq{X: "y1", Y: "x"}},
			mso.Not{F: mso.Eq{X: "y2", Y: "x"}},
			adjVia("x", "y1", FreeSet),
			adjVia("x", "y2", FreeSet),
		)),
	}}
	nonEmpty := mso.Exists{Var: "z", Kind: mso.KindVertex, Body: mso.In{X: "z", S: "X"}}
	acyclicViaS := mso.Not{F: mso.Exists{Var: "X", Kind: mso.KindVertexSet,
		Body: mso.And{L: nonEmpty, R: inner}}}
	return mso.And{L: connectedViaS, R: acyclicViaS}
}

// Matching is φ(S) over edge sets: no two distinct edges of S share an
// endpoint.
func Matching() mso.Formula {
	return mso.ForAllMany(mso.KindEdge, []string{"e1", "e2"},
		mso.Implies{
			L: mso.AndAll(
				mso.In{X: "e1", S: FreeSet},
				mso.In{X: "e2", S: FreeSet},
				mso.Not{F: mso.Eq{X: "e1", Y: "e2"}},
			),
			R: mso.Not{F: mso.Exists{Var: "x", Kind: mso.KindVertex,
				Body: mso.AndAll(mso.Inc{V: "x", E: "e1"}, mso.Inc{V: "x", E: "e2"})}},
		})
}

// PerfectMatching is φ(S): S is a matching covering every vertex. Counting
// the satisfying assignments of S counts perfect matchings.
func PerfectMatching() mso.Formula {
	covers := mso.ForAll{Var: "x", Kind: mso.KindVertex,
		Body: mso.Exists{Var: "e", Kind: mso.KindEdge,
			Body: mso.AndAll(mso.In{X: "e", S: FreeSet}, mso.Inc{V: "x", E: "e"})}}
	return mso.And{L: Matching(), R: covers}
}

// HasPerfectMatching is the closed formula ∃S PerfectMatching(S).
func HasPerfectMatching() mso.Formula {
	return mso.Exists{Var: FreeSet, Kind: mso.KindEdgeSet, Body: PerfectMatching()}
}

// RedBlueDominatingSet is the paper's labeled example: S contains only blue
// vertices and every red vertex is adjacent to a vertex of S.
func RedBlueDominatingSet() mso.Formula {
	allBlue := mso.ForAll{Var: "x", Kind: mso.KindVertex, Body: mso.Implies{
		L: mso.In{X: "x", S: FreeSet},
		R: mso.Label{Name: "blue", X: "x"},
	}}
	dominated := mso.ForAll{Var: "y", Kind: mso.KindVertex, Body: mso.Implies{
		L: mso.Label{Name: "red", X: "y"},
		R: mso.Exists{Var: "x", Kind: mso.KindVertex,
			Body: mso.AndAll(mso.In{X: "x", S: FreeSet}, mso.Adj{X: "x", Y: "y"})},
	}}
	return mso.And{L: allBlue, R: dominated}
}

// ProperlyTwoColored is the paper's labeled closed formula: every vertex is
// red or blue, and no edge joins two vertices of the same color.
func ProperlyTwoColored() mso.Formula {
	covered := mso.ForAll{Var: "x", Kind: mso.KindVertex,
		Body: mso.Or{L: mso.Label{Name: "red", X: "x"}, R: mso.Label{Name: "blue", X: "x"}}}
	proper := mso.ForAllMany(mso.KindVertex, []string{"x", "y"},
		mso.Not{F: mso.AndAll(
			mso.Adj{X: "x", Y: "y"},
			mso.Or{
				L: mso.And{L: mso.Label{Name: "red", X: "x"}, R: mso.Label{Name: "red", X: "y"}},
				R: mso.And{L: mso.Label{Name: "blue", X: "x"}, R: mso.Label{Name: "blue", X: "y"}},
			},
		)})
	return mso.And{L: covered, R: proper}
}

// HasVertexOfDegreeAtLeast returns ∃x with k pairwise-distinct neighbors —
// for k = 3 this is the paper's example of an FO property requiring Ω(n)
// rounds on paths-with-a-claw, delimiting the meta-theorem.
func HasVertexOfDegreeAtLeast(k int) mso.Formula {
	if k < 1 {
		panic(fmt.Sprintf("msolib: HasVertexOfDegreeAtLeast needs k >= 1, got %d", k))
	}
	vars := make([]string, k)
	for i := range vars {
		vars[i] = fmt.Sprintf("y%d", i+1)
	}
	parts := []mso.Formula{mso.Distinct(vars...)}
	for _, v := range vars {
		parts = append(parts, mso.Adj{X: "x", Y: v})
	}
	return mso.Exists{Var: "x", Kind: mso.KindVertex,
		Body: mso.ExistsMany(mso.KindVertex, vars, mso.AndAll(parts...))}
}

// MaxDegreeAtMost is ¬HasVertexOfDegreeAtLeast(k+1).
func MaxDegreeAtMost(k int) mso.Formula {
	return mso.Not{F: HasVertexOfDegreeAtLeast(k + 1)}
}

// EdgeDominatingSet is φ(S) over edge sets: every edge shares an endpoint
// with an edge of S.
func EdgeDominatingSet() mso.Formula {
	return mso.ForAll{Var: "e", Kind: mso.KindEdge,
		Body: mso.Exists{Var: "f", Kind: mso.KindEdge, Body: mso.AndAll(
			mso.In{X: "f", S: FreeSet},
			mso.Exists{Var: "x", Kind: mso.KindVertex,
				Body: mso.And{L: mso.Inc{V: "x", E: "e"}, R: mso.Inc{V: "x", E: "f"}}},
		)}}
}
