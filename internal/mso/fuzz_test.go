package mso

import "testing"

// FuzzParseMSO drives the MSO parser with arbitrary input. Invariants:
// the parser never panics, and every accepted formula survives a
// print -> parse -> print round trip unchanged (printing is a fixed point
// after one iteration).
func FuzzParseMSO(f *testing.F) {
	seeds := []string{
		"true",
		"false",
		"~ true",
		"exists x:V . adj(x,x)",
		"forall x:V, y:V . adj(x,y) -> adj(y,x)",
		"~ exists x:V,y:V,z:V . adj(x,y) & adj(y,z) & adj(z,x)",
		"exists S:VS . forall x:V . x in S | ~ (x in S)",
		"exists e:E, x:V . inc(x,e) & red(x)",
		"exists x:V, y:V . x != y & (x = y <-> false)",
		"forall F:ES . exists e:E . e notin F | e in F",
		"(true -> false) <-> ~ true",
		"exists x:V . exists y:V . mark(x) & adj(x, y)",
		"exists x:V . ((red(x) | blue(x)) & ~ (red(x) & blue(x)))",
		"forall x:V . forall S:VS . x in S -> exists y:V . y in S",
		// Near-miss inputs that must be rejected cleanly.
		"exists x . adj(x,x)",
		"adj(x",
		"exists x:V",
		"x in",
		"((true)",
		"tr ue",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return // keep deeply nested inputs from blowing the stack budget
		}
		formula, err := Parse(input)
		if err != nil {
			return // rejected inputs only need to be rejected without panic
		}
		printed := formula.String()
		reparsed, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own printing %q: %v", input, printed, err)
		}
		if got := reparsed.String(); got != printed {
			t.Fatalf("printing not a fixed point:\n input: %q\n first: %q\nsecond: %q", input, printed, got)
		}
		// Well-formedness must also survive the round trip: if the original
		// checks closed, so must the reparse.
		errOrig := Check(formula, nil)
		errRe := Check(reparsed, nil)
		if (errOrig == nil) != (errRe == nil) {
			t.Fatalf("well-formedness changed across round trip of %q: %v vs %v", input, errOrig, errRe)
		}
	})
}
