package mso

import (
	"errors"
	"fmt"
)

// ErrIllFormed is wrapped by all well-formedness errors reported by Check.
var ErrIllFormed = errors.New("mso: ill-formed formula")

// Check verifies that f is well formed given the declared kinds of its free
// variables: every variable used is bound (by a quantifier or a declaration),
// predicates receive variables of the right kinds, Eq compares like kinds,
// and In relates an element to a set of the matching element kind. It
// returns nil when the formula is well formed.
func Check(f Formula, free map[string]VarKind) error {
	env := make(map[string]VarKind, len(free))
	for name, kind := range free {
		if kind != KindVertex && kind != KindEdge && kind != KindVertexSet && kind != KindEdgeSet {
			return fmt.Errorf("%w: free variable %q has invalid kind %v", ErrIllFormed, name, kind)
		}
		env[name] = kind
	}
	return check(f, env)
}

func check(f Formula, env map[string]VarKind) error {
	lookup := func(name string, want VarKind, ctx string) error {
		kind, ok := env[name]
		if !ok {
			return fmt.Errorf("%w: unbound variable %q in %s", ErrIllFormed, name, ctx)
		}
		if kind != want {
			return fmt.Errorf("%w: variable %q is %v but %s needs %v", ErrIllFormed, name, kind, ctx, want)
		}
		return nil
	}
	switch t := f.(type) {
	case Adj:
		if err := lookup(t.X, KindVertex, "adj"); err != nil {
			return err
		}
		return lookup(t.Y, KindVertex, "adj")
	case Inc:
		if err := lookup(t.V, KindVertex, "inc"); err != nil {
			return err
		}
		return lookup(t.E, KindEdge, "inc")
	case Eq:
		kx, ok := env[t.X]
		if !ok {
			return fmt.Errorf("%w: unbound variable %q in =", ErrIllFormed, t.X)
		}
		ky, ok := env[t.Y]
		if !ok {
			return fmt.Errorf("%w: unbound variable %q in =", ErrIllFormed, t.Y)
		}
		if kx.IsSet() || ky.IsSet() {
			return fmt.Errorf("%w: = compares elements, got %v and %v", ErrIllFormed, kx, ky)
		}
		if kx != ky {
			return fmt.Errorf("%w: = kind mismatch: %q is %v, %q is %v", ErrIllFormed, t.X, kx, t.Y, ky)
		}
		return nil
	case In:
		kx, ok := env[t.X]
		if !ok {
			return fmt.Errorf("%w: unbound variable %q in 'in'", ErrIllFormed, t.X)
		}
		ks, ok := env[t.S]
		if !ok {
			return fmt.Errorf("%w: unbound variable %q in 'in'", ErrIllFormed, t.S)
		}
		if kx.IsSet() {
			return fmt.Errorf("%w: left side of 'in' must be an element, %q is %v", ErrIllFormed, t.X, kx)
		}
		if !ks.IsSet() {
			return fmt.Errorf("%w: right side of 'in' must be a set, %q is %v", ErrIllFormed, t.S, ks)
		}
		if ks.ElementKind() != kx {
			return fmt.Errorf("%w: 'in' kind mismatch: %q is %v, %q is %v", ErrIllFormed, t.X, kx, t.S, ks)
		}
		return nil
	case Label:
		kind, ok := env[t.X]
		if !ok {
			return fmt.Errorf("%w: unbound variable %q in label %q", ErrIllFormed, t.X, t.Name)
		}
		if kind.IsSet() {
			return fmt.Errorf("%w: label %q applies to elements, %q is %v", ErrIllFormed, t.Name, t.X, kind)
		}
		return nil
	case Not:
		return check(t.F, env)
	case And:
		if err := check(t.L, env); err != nil {
			return err
		}
		return check(t.R, env)
	case Or:
		if err := check(t.L, env); err != nil {
			return err
		}
		return check(t.R, env)
	case Implies:
		if err := check(t.L, env); err != nil {
			return err
		}
		return check(t.R, env)
	case Iff:
		if err := check(t.L, env); err != nil {
			return err
		}
		return check(t.R, env)
	case Exists:
		return checkQuantifier(t.Var, t.Kind, t.Body, env)
	case ForAll:
		return checkQuantifier(t.Var, t.Kind, t.Body, env)
	case True, False:
		return nil
	case nil:
		return fmt.Errorf("%w: nil formula node", ErrIllFormed)
	default:
		return fmt.Errorf("%w: unknown node type %T", ErrIllFormed, f)
	}
}

func checkQuantifier(name string, kind VarKind, body Formula, env map[string]VarKind) error {
	if kind != KindVertex && kind != KindEdge && kind != KindVertexSet && kind != KindEdgeSet {
		return fmt.Errorf("%w: quantifier over %q has invalid kind %v", ErrIllFormed, name, kind)
	}
	prev, had := env[name]
	env[name] = kind
	err := check(body, env)
	if had {
		env[name] = prev
	} else {
		delete(env, name)
	}
	return err
}
