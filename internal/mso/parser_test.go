package mso

import (
	"errors"
	"testing"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		input string
		want  string
	}{
		{"adj(x,y)", "adj(x,y)"},
		{"x = y", "x = y"},
		{"x != y", "~(x = y)"},
		{"x in X", "x in X"},
		{"x notin X", "~(x in X)"},
		{"red(x)", "red(x)"},
		{"true & false", "true & false"},
		{"~adj(x,y)", "~adj(x,y)"},
		{"!adj(x,y)", "~adj(x,y)"},
		{"adj(a,b) & adj(b,c) & adj(c,a)", "(adj(a,b) & adj(b,c)) & adj(c,a)"},
		{"adj(a,b) | adj(b,c) & adj(c,a)", "adj(a,b) | (adj(b,c) & adj(c,a))"},
		{"adj(a,b) -> adj(b,c) -> adj(c,a)", "adj(a,b) -> (adj(b,c) -> adj(c,a))"},
		{"adj(a,b) <-> adj(b,a)", "adj(a,b) <-> adj(b,a)"},
		{"exists x:V . adj(x,x)", "exists x:V . adj(x,x)"},
		{"forall X:VS . exists x:V . x in X", "forall X:VS . exists x:V . x in X"},
		{"exists e:E, F:ES . e in F", "exists e:E . exists F:ES . e in F"},
		{"(adj(x,y))", "adj(x,y)"},
		{"inc(v,e)", "inc(v,e)"},
	}
	for _, tc := range cases {
		f, err := Parse(tc.input)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.input, err)
		}
		if got := f.String(); got != tc.want {
			t.Fatalf("Parse(%q) = %q, want %q", tc.input, got, tc.want)
		}
	}
}

func TestParseQuantifierScope(t *testing.T) {
	// The dot extends as far right as possible.
	f := MustParse("exists x:V . adj(x,y) & adj(y,x)")
	ex, ok := f.(Exists)
	if !ok {
		t.Fatalf("want Exists at top, got %T", f)
	}
	if _, ok := ex.Body.(And); !ok {
		t.Fatalf("quantifier body should be the conjunction, got %T", ex.Body)
	}
	// Parentheses can delimit the body.
	g := MustParse("(exists x:V . adj(x,y)) & adj(y,y)")
	if _, ok := g.(And); !ok {
		t.Fatalf("want And at top, got %T", g)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"adj(x",
		"adj(x,)",
		"adj x y",
		"exists x . adj(x,x)",   // missing kind
		"exists x:W . adj(x,x)", // bad kind
		"exists x:V adj(x,x)",   // missing dot
		"x",                     // bare variable
		"adj(x,y) &",            // dangling operator
		"adj(x,y) adj(y,z)",     // missing operator
		"<",                     // stray
		"-",                     // stray
		"x @ y",                 // bad char
		"((adj(x,y))",           // unbalanced
		"forall :V . true",      // missing name
	}
	for _, input := range cases {
		if _, err := Parse(input); err == nil {
			t.Fatalf("Parse(%q) should fail", input)
		} else if !errors.Is(err, ErrParse) {
			t.Fatalf("Parse(%q) error %v should wrap ErrParse", input, err)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

func TestParsePaperFormulas(t *testing.T) {
	// Triangle-freeness as in the paper's Section 1.
	f := MustParse("~ exists x1:V, x2:V, x3:V . adj(x1,x2) & adj(x2,x3) & adj(x3,x1)")
	if err := Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if QuantifierRank(f) != 3 {
		t.Fatalf("rank = %d", QuantifierRank(f))
	}
	// Acyclicity as in the paper.
	g := MustParse(`~ exists X:VS . (exists x:V . x in X) &
		(forall x:V . x in X -> (exists y1:V, y2:V .
			y1 in X & y2 in X & y1 != y2 & adj(x,y1) & adj(x,y2)))`)
	if err := Check(g, nil); err != nil {
		t.Fatal(err)
	}
}
