package mso

import (
	"errors"
	"testing"
)

func TestCheckValid(t *testing.T) {
	cases := []struct {
		f    Formula
		free map[string]VarKind
	}{
		{MustParse("exists x:V, y:V . adj(x,y)"), nil},
		{MustParse("forall e:E . exists x:V . inc(x,e)"), nil},
		{MustParse("x in S"), map[string]VarKind{"x": KindVertex, "S": KindVertexSet}},
		{MustParse("e in F"), map[string]VarKind{"e": KindEdge, "F": KindEdgeSet}},
		{MustParse("exists x:V . red(x)"), nil},
		{MustParse("forall e:E . mark(e)"), nil},
		{MustParse("exists x:V, y:V . x = y"), nil},
		{True{}, nil},
	}
	for i, tc := range cases {
		if err := Check(tc.f, tc.free); err != nil {
			t.Fatalf("case %d (%s): %v", i, tc.f, err)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		f    Formula
		free map[string]VarKind
	}{
		{"unbound adj", MustParse("adj(x,y)"), nil},
		{"adj on edge", MustParse("exists e:E . adj(e,e)"), nil},
		{"inc swapped", MustParse("exists x:V, e:E . inc(e,x)"), nil},
		{"eq kind mismatch", MustParse("exists x:V, e:E . x = e"), nil},
		{"eq on sets", MustParse("exists X:VS, Y:VS . X = Y"), nil},
		{"in element-element", MustParse("exists x:V, y:V . x in y"), nil},
		{"in set-set", MustParse("exists X:VS, Y:VS . X in Y"), nil},
		{"in cross kind", MustParse("exists x:V, F:ES . x in F"), nil},
		{"label on set", MustParse("exists X:VS . red(X)"), nil},
		{"unbound in body", MustParse("exists x:V . adj(x,z)"), nil},
		{"bad free kind", MustParse("x in S"), map[string]VarKind{"x": 0, "S": KindVertexSet}},
		{"nil node", Not{nil}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Check(tc.f, tc.free)
			if err == nil {
				t.Fatalf("Check(%s) should fail", tc.f)
			}
			if !errors.Is(err, ErrIllFormed) {
				t.Fatalf("error %v should wrap ErrIllFormed", err)
			}
		})
	}
}

func TestCheckShadowing(t *testing.T) {
	// Outer X is a vertex set; inner binder reuses the name as an edge set.
	f := MustParse("exists X:VS . (exists x:V . x in X) & (exists X:ES . exists e:E . e in X)")
	if err := Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// After the inner scope closes, outer kind must be restored.
	g := MustParse("exists X:VS . (exists X:ES . exists e:E . e in X) & (exists x:V . x in X)")
	if err := Check(g, nil); err != nil {
		t.Fatal(err)
	}
}
