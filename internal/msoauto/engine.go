package msoauto

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/mso"
	"repro/internal/regular"
	"repro/internal/wterm"
)

// Options configure the generic engine.
type Options struct {
	// FreeSetVar names the free set variable of the formula ("" for closed
	// formulas); FreeSetKind must be mso.KindVertexSet or mso.KindEdgeSet
	// when FreeSetVar is set.
	FreeSetVar  string
	FreeSetKind mso.VarKind
	// Threshold clamps sibling-subtree multiplicities in pattern classes
	// (the Gajarský–Hlinený kernelization). 0 derives a conservative value
	// from the formula's quantifier rank; negative disables clamping (exact
	// mode, used for cross-validation).
	Threshold int
	// MaxSetUniverse is forwarded to the naive evaluator used on class
	// representatives (0 = mso.DefaultMaxSetUniverse).
	MaxSetUniverse int
}

// Engine compiles an MSO formula into a regular predicate over
// elimination-tree derivations (Theorem 4.2 for bounded treedepth). It is
// exact when Threshold is large enough for the formula's rank; the test
// suite cross-validates clamped runs against exact mode and the naive
// oracle.
type Engine struct {
	formula      mso.Formula
	opts         Options
	threshold    int
	vertexLabels []string

	// Engine-level caches, shared by all users of the predicate (the seq
	// runner, the per-node protocol wrappers, tests). Patterns are immutable
	// once canonicalized — Compose clones its operands before mutating — so
	// cached patClass values can be handed out freely. All three maps are
	// mutex-guarded and flushed wholesale at engineCacheCap (deterministic,
	// seed-free eviction: no map-iteration order is ever observed).
	mu          sync.Mutex
	acceptCache map[string]bool
	// canonCache memoizes canonicalizeAndKey: the pre-canonical encoding of
	// a freshly merged pattern (children in construction order, unclamped)
	// maps to the canonicalized class, so each distinct merge shape pays the
	// recursive sort-and-clamp once.
	canonCache map[string]patClass
	// decodeCache memoizes DecodeClass per wire key.
	decodeCache map[string]patClass
	stats       EngineStats
}

// engineCacheCap bounds each engine cache; on hitting the cap the whole map
// is dropped (a flush is deterministic and only costs recomputation).
const engineCacheCap = 1 << 18

// EngineStats counts engine cache traffic.
type EngineStats struct {
	CanonHits    int64 `json:"canon_hits"`
	CanonMisses  int64 `json:"canon_misses"`
	DecodeHits   int64 `json:"decode_hits"`
	DecodeMisses int64 `json:"decode_misses"`
	AcceptHits   int64 `json:"accept_hits"`
	AcceptMisses int64 `json:"accept_misses"`
}

// Stats returns a snapshot of the engine's cache counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

var _ regular.Predicate = (*Engine)(nil)

// New builds an engine for the formula. The formula's unary label
// predicates become the vertex-label vocabulary; edge labels are not
// supported by the generic engine (use a compiled predicate).
func New(formula mso.Formula, opts Options) (*Engine, error) {
	free := map[string]mso.VarKind{}
	if opts.FreeSetVar != "" {
		if opts.FreeSetKind != mso.KindVertexSet && opts.FreeSetKind != mso.KindEdgeSet {
			return nil, fmt.Errorf("msoauto: free variable %q needs kind VS or ES, got %v", opts.FreeSetVar, opts.FreeSetKind)
		}
		free[opts.FreeSetVar] = opts.FreeSetKind
	}
	if err := mso.Check(formula, free); err != nil {
		return nil, err
	}
	labels := mso.LabelNames(formula)
	if len(labels) > 32 {
		return nil, fmt.Errorf("msoauto: at most 32 labels supported, formula uses %d", len(labels))
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold(formula)
	}
	if threshold < 0 {
		threshold = 0 // exact mode: no clamping
	}
	return &Engine{
		formula:      formula,
		opts:         opts,
		threshold:    threshold,
		vertexLabels: labels,
		acceptCache:  map[string]bool{},
		canonCache:   map[string]patClass{},
		decodeCache:  map[string]patClass{},
	}, nil
}

// DefaultThreshold returns the rank-derived sibling-multiplicity bound
// 2^qr(φ) + 1 (capped at 64): by a standard Ehrenfeucht–Fraïssé argument,
// MSO formulas of quantifier rank q cannot distinguish sibling-subtree
// multiplicities beyond a function of q, for which this is a conservative
// practical choice.
func DefaultThreshold(formula mso.Formula) int {
	q := mso.QuantifierRank(formula)
	if q > 6 {
		return 64
	}
	return 1<<uint(q) + 1
}

// Name implements regular.Predicate.
func (e *Engine) Name() string {
	return fmt.Sprintf("mso(%s)", e.formula)
}

// SetKind implements regular.Predicate.
func (e *Engine) SetKind() regular.SetKind {
	switch {
	case e.opts.FreeSetVar == "":
		return regular.SetNone
	case e.opts.FreeSetKind == mso.KindVertexSet:
		return regular.SetVertex
	default:
		return regular.SetEdge
	}
}

type patClass struct {
	key string
	pat *pattern
}

func (c patClass) Key() string { return c.key }

// basePattern builds the terminal-only pattern of a base graph for one
// selection (vertex mask or edge mask over the base's owned edges).
func (e *Engine) basePattern(base *wterm.TerminalGraph, vertexSel uint64, edgeSel map[[2]int]bool) (*pattern, error) {
	k := base.NumTerminals()
	if k > maxTerminals {
		return nil, fmt.Errorf("msoauto: %d terminals exceeds limit %d", k, maxTerminals)
	}
	p := &pattern{
		k:         k,
		termAdj:   make([]uint64, k),
		termLab:   make([]uint32, k),
		termSelEd: make([]uint64, k),
		termSel:   vertexSel,
	}
	for i := 0; i < k; i++ {
		v := base.Terminals[i]
		for bit, name := range e.vertexLabels {
			if base.G.HasVertexLabel(name, v) {
				p.termLab[i] |= 1 << uint(bit)
			}
		}
	}
	for _, edge := range base.G.Edges() {
		// Base graphs from wterm.BaseFromBag have terminal rank == local ID.
		a, b := edge.U, edge.V
		p.termAdj[a] |= 1 << uint(b)
		p.termAdj[b] |= 1 << uint(a)
		if edgeSel[[2]int{a, b}] || edgeSel[[2]int{b, a}] {
			p.termSelEd[a] |= 1 << uint(b)
			p.termSelEd[b] |= 1 << uint(a)
		}
	}
	return p, nil
}

// HomBase implements regular.Predicate.
func (e *Engine) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	k := base.NumTerminals()
	var out []regular.BaseClass
	emit := func(vertexSel uint64, edgeSel map[[2]int]bool, sel regular.Selection) error {
		p, err := e.basePattern(base, vertexSel, edgeSel)
		if err != nil {
			return err
		}
		key := p.canonicalizeAndKey(e.threshold)
		out = append(out, regular.BaseClass{Class: patClass{key: key, pat: p}, Sel: sel})
		return nil
	}
	switch e.SetKind() {
	case regular.SetNone:
		if err := emit(0, nil, regular.Selection{}); err != nil {
			return nil, err
		}
	case regular.SetVertex:
		if k >= 63 {
			return nil, fmt.Errorf("msoauto: cannot enumerate selections over %d terminals", k)
		}
		for mask := uint64(0); mask < 1<<uint(k); mask++ {
			if err := emit(mask, nil, regular.Selection{VertexMask: mask}); err != nil {
				return nil, err
			}
		}
	case regular.SetEdge:
		edges := base.G.Edges()
		if len(edges) >= 62 {
			return nil, fmt.Errorf("msoauto: cannot enumerate selections over %d edges", len(edges))
		}
		for mask := uint64(0); mask < 1<<uint(len(edges)); mask++ {
			edgeSel := map[[2]int]bool{}
			var pairs [][2]int
			for i, edge := range edges {
				if mask&(1<<uint(i)) != 0 {
					edgeSel[[2]int{edge.U, edge.V}] = true
					pairs = append(pairs, [2]int{edge.U, edge.V})
				}
			}
			if err := emit(0, edgeSel, regular.Selection{EdgePairs: regular.NormalizeEdgePairs(pairs)}); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Compose implements regular.Predicate (the update function ⊙_f): forgotten
// terminals of each operand become internal pattern nodes, terminal
// attributes are merged (selections and labels must agree on glued
// terminals, edges are disjoint under the edge-owned grammar), the internal
// forests are concatenated, and the result is re-canonicalized.
func (e *Engine) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(patClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrPattern, c1)
	}
	b, ok := c2.(patClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrPattern, c2)
	}
	p1 := clonePattern(a.pat)
	p2 := clonePattern(b.pat)
	// Forget operand terminals not mapped to the result (descending rank so
	// indices stay valid).
	if err := forgetAll(p1, f.Forgotten1()); err != nil {
		return nil, false, err
	}
	if err := forgetAll(p2, f.Forgotten2()); err != nil {
		return nil, false, err
	}
	// Remaining operand ranks map to result ranks; build the permutations.
	perm1, perm2, err := resultPerms(f)
	if err != nil {
		return nil, false, err
	}
	if err := p1.permuteTerminals(perm1, len(f.Rows)); err != nil {
		return nil, false, err
	}
	if err := p2.permuteTerminals(perm2, len(f.Rows)); err != nil {
		return nil, false, err
	}
	merged, compatible, err := mergePatterns(p1, p2, f)
	if err != nil || !compatible {
		return nil, compatible, err
	}
	// Identical merge shapes canonicalize identically, so the pre-canonical
	// encoding is a sound memo key for the recursive sort-and-clamp.
	pre := merged.preCanonicalKey()
	e.mu.Lock()
	if pc, hit := e.canonCache[pre]; hit {
		e.stats.CanonHits++
		e.mu.Unlock()
		return pc, true, nil
	}
	e.stats.CanonMisses++
	e.mu.Unlock()
	key := merged.canonicalizeAndKey(e.threshold)
	pc := patClass{key: key, pat: merged}
	e.mu.Lock()
	if len(e.canonCache) >= engineCacheCap {
		e.canonCache = map[string]patClass{}
	}
	e.canonCache[pre] = pc
	e.mu.Unlock()
	return pc, true, nil
}

func clonePattern(p *pattern) *pattern {
	c := &pattern{
		k:         p.k,
		termAdj:   append([]uint64(nil), p.termAdj...),
		termLab:   append([]uint32(nil), p.termLab...),
		termSel:   p.termSel,
		termSelEd: append([]uint64(nil), p.termSelEd...),
		roots:     make([]*pnode, len(p.roots)),
	}
	for i, r := range p.roots {
		c.roots[i] = clonePNode(r)
	}
	return c
}

func forgetAll(p *pattern, ranks1Based []int) error {
	for i := len(ranks1Based) - 1; i >= 0; i-- {
		if err := p.forgetTerminal(ranks1Based[i] - 1); err != nil {
			return err
		}
	}
	return nil
}

// resultPerms maps each operand's post-forget terminal index to its result
// rank (-1 when the operand does not contribute that result terminal).
func resultPerms(f wterm.Gluing) (perm1, perm2 []int, err error) {
	kept1 := keptRanks(f, 0)
	kept2 := keptRanks(f, 1)
	perm1 = make([]int, len(kept1))
	perm2 = make([]int, len(kept2))
	pos1 := map[int]int{}
	for i, r := range kept1 {
		pos1[r] = i
	}
	pos2 := map[int]int{}
	for i, r := range kept2 {
		pos2[r] = i
	}
	for r, row := range f.Rows {
		if row[0] != 0 {
			perm1[pos1[row[0]]] = r
		}
		if row[1] != 0 {
			perm2[pos2[row[1]]] = r
		}
	}
	return perm1, perm2, nil
}

// keptRanks lists the operand's 1-based ranks used by the gluing, in
// increasing order (matching the index order after forgetting).
func keptRanks(f wterm.Gluing, col int) []int {
	var out []int
	n := f.N1
	if col == 1 {
		n = f.N2
	}
	used := make([]bool, n+1)
	for _, row := range f.Rows {
		if row[col] != 0 {
			used[row[col]] = true
		}
	}
	for i := 1; i <= n; i++ {
		if used[i] {
			out = append(out, i)
		}
	}
	return out
}

// permuteTerminals reindexes the pattern's terminals: old index i becomes
// perm[i], in a result space of size newK. Unassigned result terminals get
// empty attributes (they come from the other operand).
func (p *pattern) permuteTerminals(perm []int, newK int) error {
	if len(perm) != p.k {
		return fmt.Errorf("%w: perm size %d != k %d", ErrPattern, len(perm), p.k)
	}
	adj := make([]uint64, newK)
	lab := make([]uint32, newK)
	selEd := make([]uint64, newK)
	var sel uint64
	for i := 0; i < p.k; i++ {
		t := perm[i]
		adj[t] = permuteMask(p.termAdj[i], perm)
		lab[t] = p.termLab[i]
		selEd[t] = permuteMask(p.termSelEd[i], perm)
		if p.termSel&(1<<uint(i)) != 0 {
			sel |= 1 << uint(t)
		}
	}
	var remap func(n *pnode)
	remap = func(n *pnode) {
		n.termAdj = permuteMask(n.termAdj, perm)
		n.selTermEdg = permuteMask(n.selTermEdg, perm)
		for _, ch := range n.children {
			remap(ch)
		}
	}
	for _, r := range p.roots {
		remap(r)
	}
	p.k = newK
	p.termAdj, p.termLab, p.termSelEd, p.termSel = adj, lab, selEd, sel
	return nil
}

func permuteMask(mask uint64, perm []int) uint64 {
	var out uint64
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			out |= 1 << uint(perm[i])
		}
		mask >>= 1
	}
	return out
}

// mergePatterns unions two permuted patterns over the same result terminal
// space, enforcing the §4.1 compatibility conditions.
func mergePatterns(p1, p2 *pattern, f wterm.Gluing) (*pattern, bool, error) {
	k := len(f.Rows)
	out := &pattern{
		k:         k,
		termAdj:   make([]uint64, k),
		termLab:   make([]uint32, k),
		termSelEd: make([]uint64, k),
	}
	for r, row := range f.Rows {
		has1, has2 := row[0] != 0, row[1] != 0
		switch {
		case has1 && has2:
			// Glued terminal: the same original vertex in both operands.
			if p1.termLab[r] != p2.termLab[r] {
				return nil, false, nil
			}
			sel1 := p1.termSel&(1<<uint(r)) != 0
			sel2 := p2.termSel&(1<<uint(r)) != 0
			if sel1 != sel2 {
				return nil, false, nil
			}
			if p1.termAdj[r]&p2.termAdj[r] != 0 {
				return nil, false, fmt.Errorf("%w: duplicate bag edge (edge-owned grammar violated)", ErrPattern)
			}
			out.termAdj[r] = p1.termAdj[r] | p2.termAdj[r]
			out.termLab[r] = p1.termLab[r]
			out.termSelEd[r] = p1.termSelEd[r] | p2.termSelEd[r]
			if sel1 {
				out.termSel |= 1 << uint(r)
			}
		case has1:
			out.termAdj[r] = p1.termAdj[r]
			out.termLab[r] = p1.termLab[r]
			out.termSelEd[r] = p1.termSelEd[r]
			if p1.termSel&(1<<uint(r)) != 0 {
				out.termSel |= 1 << uint(r)
			}
		case has2:
			out.termAdj[r] = p2.termAdj[r]
			out.termLab[r] = p2.termLab[r]
			out.termSelEd[r] = p2.termSelEd[r]
			if p2.termSel&(1<<uint(r)) != 0 {
				out.termSel |= 1 << uint(r)
			}
		}
	}
	out.roots = append(append([]*pnode(nil), p1.roots...), p2.roots...)
	return out, true, nil
}

// Accepting implements regular.Predicate: the class is accepting iff the
// formula holds on the pattern's representative, with the free set variable
// bound to the pattern's recorded selection. Results are cached per key.
func (e *Engine) Accepting(c regular.Class) (bool, error) {
	pc, ok := c.(patClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrPattern, c)
	}
	e.mu.Lock()
	if v, hit := e.acceptCache[pc.key]; hit {
		e.stats.AcceptHits++
		e.mu.Unlock()
		return v, nil
	}
	e.stats.AcceptMisses++
	e.mu.Unlock()

	g, selVerts, selEdges, err := pc.pat.materialize(e.vertexLabels, nil)
	if err != nil {
		return false, err
	}
	if limit := e.representativeLimit(); g.NumVertices() > limit {
		return false, fmt.Errorf("msoauto: class representative has %d vertices (limit %d for this formula); "+
			"lower Options.Threshold so the kernelization prunes harder", g.NumVertices(), limit)
	}
	ev := &mso.Evaluator{G: g, MaxSetUniverse: e.opts.MaxSetUniverse}
	asg := mso.Assignment{}
	switch e.SetKind() {
	case regular.SetVertex:
		set := bitset.New(g.NumVertices())
		for _, v := range selVerts {
			set.Add(v)
		}
		asg[e.opts.FreeSetVar] = mso.VertexSetValue(set)
	case regular.SetEdge:
		set := bitset.New(g.NumEdges())
		for _, id := range selEdges {
			set.Add(id)
		}
		asg[e.opts.FreeSetVar] = mso.EdgeSetValue(set)
	}
	v, err := ev.Eval(e.formula, asg)
	if err != nil {
		return false, err
	}
	e.mu.Lock()
	e.acceptCache[pc.key] = v
	e.mu.Unlock()
	return v, nil
}

// representativeLimit bounds the representative size so that naive
// evaluation in Accepting stays tractable: the cost is roughly
// (2^size)^s * size^q for s set quantifiers and q element quantifiers.
func (e *Engine) representativeLimit() int {
	switch mso.SetQuantifierCount(e.formula) {
	case 0:
		return 40
	case 1:
		return 18
	default:
		return 12
	}
}

// Selection implements regular.Predicate.
func (e *Engine) Selection(c regular.Class) (regular.Selection, error) {
	pc, ok := c.(patClass)
	if !ok {
		return regular.Selection{}, fmt.Errorf("%w: %T", ErrPattern, c)
	}
	sel := regular.Selection{VertexMask: pc.pat.termSel}
	for i := 0; i < pc.pat.k; i++ {
		for j := i + 1; j < pc.pat.k; j++ {
			if pc.pat.termSelEd[i]&(1<<uint(j)) != 0 {
				sel.EdgePairs = append(sel.EdgePairs, [2]int{i, j})
			}
		}
	}
	return sel, nil
}

// DecodeClass implements regular.Predicate, memoized per wire key.
func (e *Engine) DecodeClass(data []byte) (regular.Class, error) {
	wire := string(data)
	e.mu.Lock()
	if pc, hit := e.decodeCache[wire]; hit {
		e.stats.DecodeHits++
		e.mu.Unlock()
		return pc, nil
	}
	e.stats.DecodeMisses++
	e.mu.Unlock()
	p, err := decodePattern(data)
	if err != nil {
		return nil, err
	}
	// Re-canonicalize defensively; the key should round-trip.
	key := p.canonicalizeAndKey(e.threshold)
	pc := patClass{key: key, pat: p}
	e.mu.Lock()
	if len(e.decodeCache) >= engineCacheCap {
		e.decodeCache = map[string]patClass{}
	}
	e.decodeCache[wire] = pc
	e.mu.Unlock()
	return pc, nil
}
