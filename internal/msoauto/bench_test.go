package msoauto_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mso/msolib"
	"repro/internal/msoauto"
	"repro/internal/regular"
	"repro/internal/wterm"
)

// BenchmarkEngineCompose measures the automatic engine's ⊙_f over all
// (parent, child) base-class pairs of a path fold step, the shape every
// inner DP loop produces. The steady state exercises the engine's
// canonicalization memo (structurally repeated merges resolve without
// re-canonicalizing); the fresh variant pays the full merge+canonicalize
// cost every time.
func BenchmarkEngineCompose(b *testing.B) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	accBase, err := wterm.BaseFromBag(g, []int{0, 1}, 1)
	if err != nil {
		b.Fatal(err)
	}
	childBase, err := wterm.BaseFromBag(g, []int{0, 1, 2}, 2)
	if err != nil {
		b.Fatal(err)
	}
	glue, err := wterm.GluingFromBags([]int{0, 1}, []int{0, 1, 2}, []int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	newEngine := func() (*msoauto.Engine, []regular.BaseClass, []regular.BaseClass) {
		e, err := msoauto.New(msolib.Acyclic(), msoauto.Options{})
		if err != nil {
			b.Fatal(err)
		}
		acc, err := e.HomBase(accBase)
		if err != nil {
			b.Fatal(err)
		}
		child, err := e.HomBase(childBase)
		if err != nil {
			b.Fatal(err)
		}
		if len(acc) == 0 || len(child) == 0 {
			b.Fatal("no base classes")
		}
		return e, acc, child
	}
	composeAll := func(b *testing.B, e *msoauto.Engine, acc, child []regular.BaseClass) {
		for _, c1 := range acc {
			for _, c2 := range child {
				if _, _, err := e.Compose(glue, c1.Class, c2.Class); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("warm", func(b *testing.B) {
		e, acc, child := newEngine()
		composeAll(b, e, acc, child) // populate the canonicalization memo
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			composeAll(b, e, acc, child)
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e, acc, child := newEngine()
			b.StartTimer()
			composeAll(b, e, acc, child)
		}
	})
}

// The canonicalization memo must serve repeats and return byte-identical
// classes to the first (uncached) computation.
func TestEngineComposeMemoStats(t *testing.T) {
	e := mustEngine(t, msolib.Acyclic(), msoauto.Options{})
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	accBase, err := wterm.BaseFromBag(g, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	childBase, err := wterm.BaseFromBag(g, []int{0, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	glue, err := wterm.GluingFromBags([]int{0, 1}, []int{0, 1, 2}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := e.HomBase(accBase)
	if err != nil {
		t.Fatal(err)
	}
	child, err := e.HomBase(childBase)
	if err != nil {
		t.Fatal(err)
	}
	first := make(map[[2]int]string)
	for pass := 0; pass < 2; pass++ {
		for i, c1 := range acc {
			for j, c2 := range child {
				cl, ok, err := e.Compose(glue, c1.Class, c2.Class)
				if err != nil {
					t.Fatal(err)
				}
				key := ""
				if ok {
					key = cl.Key()
				}
				at := [2]int{i, j}
				if pass == 0 {
					first[at] = key
				} else if first[at] != key {
					t.Fatalf("memoized Compose diverged at %v: %q vs %q", at, first[at], key)
				}
			}
		}
	}
	st := e.Stats()
	if st.CanonHits == 0 {
		t.Fatalf("second pass should hit the canonicalization memo: %+v", st)
	}
	if st.CanonMisses == 0 {
		t.Fatalf("first pass should miss: %+v", st)
	}
}
