package msoauto_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/mso"
	"repro/internal/mso/msolib"
	"repro/internal/msoauto"
	"repro/internal/regular"
	"repro/internal/seq"
	"repro/internal/treedepth"
	"repro/internal/wterm"
)

func mustEngine(t *testing.T, f mso.Formula, opts msoauto.Options) *msoauto.Engine {
	t.Helper()
	e, err := msoauto.New(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func decideSeq(t *testing.T, g *graph.Graph, p regular.Predicate) bool {
	t.Helper()
	run, err := seq.New(g, treedepth.DFSForest(g), p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := run.Decide()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEngineClosedFormulasMatchOracle(t *testing.T) {
	formulas := []struct {
		name string
		f    mso.Formula
	}{
		{"triangle-free", msolib.TriangleFree()},
		{"acyclic", msolib.Acyclic()},
		{"2-colorable", msolib.KColorable(2)},
		{"has-deg-3", msolib.HasVertexOfDegreeAtLeast(3)},
		{"connected", msolib.Connected()},
	}
	r := rand.New(rand.NewSource(501))
	for _, tf := range formulas {
		t.Run(tf.name, func(t *testing.T) {
			e := mustEngine(t, tf.f, msoauto.Options{})
			for trial := 0; trial < 8; trial++ {
				n := 2 + r.Intn(8)
				g, _ := gen.BoundedTreedepth(n, 2+r.Intn(2), 0.6, r.Int63())
				got := decideSeq(t, g, e)
				want, err := mso.NewEvaluator(g).Eval(tf.f, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d: engine=%v oracle=%v (graph %v)", trial, got, want, g)
				}
			}
		})
	}
}

func TestEngineKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		f    mso.Formula
		g    *graph.Graph
		want bool
	}{
		{"K3 not triangle-free", msolib.TriangleFree(), gen.Complete(3), false},
		{"P5 triangle-free", msolib.TriangleFree(), gen.Path(5), true},
		{"C4 bipartite", msolib.KColorable(2), gen.Cycle(4), true},
		{"C5 not bipartite", msolib.KColorable(2), gen.Cycle(5), false},
		{"tree acyclic", msolib.Acyclic(), gen.RandomTree(9, 3), true},
		{"C6 not acyclic", msolib.Acyclic(), gen.Cycle(6), false},
		{"star has deg 3", msolib.HasVertexOfDegreeAtLeast(3), gen.Star(5), true},
		{"path lacks deg 3", msolib.HasVertexOfDegreeAtLeast(3), gen.Path(8), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := mustEngine(t, tc.f, msoauto.Options{})
			if got := decideSeq(t, tc.g, e); got != tc.want {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestEngineOptimizationMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(502))
	e := mustEngine(t, msolib.IndependentSet(), msoauto.Options{
		FreeSetVar: msolib.FreeSet, FreeSetKind: mso.KindVertexSet,
	})
	for trial := 0; trial < 8; trial++ {
		n := 2 + r.Intn(7)
		g, _ := gen.BoundedTreedepth(n, 2, 0.6, r.Int63())
		gen.AssignRandomWeights(g, 10, r.Int63())
		run, err := seq.New(g, treedepth.DFSForest(g), e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := run.Optimize(true)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.NewEvaluator(g).OptimizeSet(msolib.IndependentSet(), msolib.FreeSet, mso.KindVertexSet, true)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Found || got.Weight != want.Weight {
			t.Fatalf("trial %d: engine MaxIS=%d oracle=%d", trial, got.Weight, want.Weight)
		}
		// Witness check.
		ok, err := mso.NewEvaluator(g).Eval(msolib.IndependentSet(),
			mso.Assignment{msolib.FreeSet: mso.VertexSetValue(got.Vertices)})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: witness not independent", trial)
		}
	}
}

func TestEngineEdgeSetOptimization(t *testing.T) {
	r := rand.New(rand.NewSource(503))
	e := mustEngine(t, msolib.Matching(), msoauto.Options{
		FreeSetVar: msolib.FreeSet, FreeSetKind: mso.KindEdgeSet,
	})
	for trial := 0; trial < 6; trial++ {
		n := 2 + r.Intn(6)
		g, _ := gen.BoundedTreedepth(n, 2, 0.5, r.Int63())
		gen.AssignRandomWeights(g, 10, r.Int63())
		run, err := seq.New(g, treedepth.DFSForest(g), e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := run.Optimize(true)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.NewEvaluator(g).OptimizeSet(msolib.Matching(), msolib.FreeSet, mso.KindEdgeSet, true)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Found || got.Weight != want.Weight {
			t.Fatalf("trial %d: engine MaxMatching=%d oracle=%d", trial, got.Weight, want.Weight)
		}
	}
}

func TestEngineCountMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(504))
	e := mustEngine(t, msolib.IndependentSet(), msoauto.Options{
		FreeSetVar: msolib.FreeSet, FreeSetKind: mso.KindVertexSet,
	})
	for trial := 0; trial < 6; trial++ {
		n := 2 + r.Intn(7)
		g, _ := gen.BoundedTreedepth(n, 2, 0.5, r.Int63())
		run, err := seq.New(g, treedepth.DFSForest(g), e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := run.Count()
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.NewEvaluator(g).CountAssignments(
			msolib.IndependentSet(), []mso.TypedVar{{Name: msolib.FreeSet, Kind: mso.KindVertexSet}})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: engine count=%d oracle=%d", trial, got, want)
		}
	}
}

// Clamping must kick in on wide stars yet preserve answers; this validates
// the kernelization path explicitly. Formulas without set quantifiers run on
// every graph; the 2-colorability formula (two set quantifiers, so naive
// evaluation is exponential in the representative) runs only where threshold
// 2 shrinks the representative to a handful of vertices.
func TestEngineClampingSound(t *testing.T) {
	foFormulas := []struct {
		name string
		f    mso.Formula
		want func(g *graph.Graph) bool
	}{
		{"triangle-free", msolib.TriangleFree(), func(*graph.Graph) bool { return true }},
		{"has-deg-3", msolib.HasVertexOfDegreeAtLeast(3), func(g *graph.Graph) bool { return g.MaxDegree() >= 3 }},
	}
	graphs := []*graph.Graph{gen.Star(25), gen.Caterpillar(4, 6), gen.CompleteBipartite(2, 12)}
	for _, tf := range foFormulas {
		for gi, g := range graphs {
			e := mustEngine(t, tf.f, msoauto.Options{Threshold: 4})
			got := decideSeq(t, g, e)
			if got != tf.want(g) {
				t.Fatalf("%s on graph %d: got %v, want %v", tf.name, gi, got, tf.want(g))
			}
		}
	}
	// MSO with set quantifiers: wide star, aggressive clamping.
	e := mustEngine(t, msolib.KColorable(2), msoauto.Options{Threshold: 2})
	if !decideSeq(t, gen.Star(25), e) {
		t.Fatal("stars are bipartite")
	}
	e2 := mustEngine(t, msolib.KColorable(2), msoauto.Options{Threshold: 2})
	odd := gen.Cycle(5)
	if decideSeq(t, odd, e2) {
		t.Fatal("C5 is not bipartite")
	}
}

func TestEngineClampedVsExact(t *testing.T) {
	// On graphs with many identical siblings, a clamped engine must agree
	// with exact mode.
	r := rand.New(rand.NewSource(505))
	f := msolib.TriangleFree()
	clamped := mustEngine(t, f, msoauto.Options{Threshold: 3})
	exact := mustEngine(t, f, msoauto.Options{Threshold: -1})
	for trial := 0; trial < 6; trial++ {
		g, _ := gen.BoundedTreedepth(10+r.Intn(8), 2, 0.6, r.Int63())
		if got, want := decideSeq(t, g, clamped), decideSeq(t, g, exact); got != want {
			t.Fatalf("trial %d: clamped=%v exact=%v", trial, got, want)
		}
	}
}

func TestEngineLabeledFormula(t *testing.T) {
	e := mustEngine(t, msolib.ProperlyTwoColored(), msoauto.Options{})
	good := gen.Path(4)
	good.SetVertexLabel("red", 0)
	good.SetVertexLabel("blue", 1)
	good.SetVertexLabel("red", 2)
	good.SetVertexLabel("blue", 3)
	if !decideSeq(t, good, e) {
		t.Fatal("alternating path is properly 2-colored")
	}
	bad := gen.Path(4)
	bad.SetVertexLabel("red", 0)
	bad.SetVertexLabel("red", 1)
	bad.SetVertexLabel("blue", 2)
	bad.SetVertexLabel("blue", 3)
	if decideSeq(t, bad, e) {
		t.Fatal("monochromatic edge must be rejected")
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := msoauto.New(msolib.IndependentSet(), msoauto.Options{FreeSetVar: msolib.FreeSet, FreeSetKind: mso.KindVertex}); err == nil {
		t.Fatal("element kind for free set variable should be rejected")
	}
	if _, err := msoauto.New(mso.Adj{X: "x", Y: "y"}, msoauto.Options{}); err == nil {
		t.Fatal("formula with unbound element variables should be rejected")
	}
}

func TestEngineClassRoundTrip(t *testing.T) {
	e := mustEngine(t, msolib.Acyclic(), msoauto.Options{})
	g, _ := gen.BoundedTreedepth(8, 2, 0.5, 506)
	f := treedepth.DFSForest(g)
	run, err := seq.New(g, f, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Decide(); err != nil {
		t.Fatal(err)
	}
	// Round-trip some base classes through the wire encoding.
	d, err := wtermDeriv(g, f)
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.Base(0)
	if err != nil {
		t.Fatal(err)
	}
	classes, err := e.HomBase(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, bc := range classes {
		back, err := e.DecodeClass([]byte(bc.Class.Key()))
		if err != nil {
			t.Fatal(err)
		}
		if back.Key() != bc.Class.Key() {
			t.Fatal("class key round trip changed")
		}
	}
}

func TestDefaultThreshold(t *testing.T) {
	if got := msoauto.DefaultThreshold(mso.True{}); got != 2 {
		t.Fatalf("threshold(rank 0) = %d, want 2", got)
	}
	if got := msoauto.DefaultThreshold(msolib.TriangleFree()); got != 9 {
		t.Fatalf("threshold(rank 3) = %d, want 9", got)
	}
	deep := msolib.KColorable(5) // rank 7 > 6
	if got := msoauto.DefaultThreshold(deep); got != 64 {
		t.Fatalf("threshold(deep) = %d, want 64", got)
	}
}

func wtermDeriv(g *graph.Graph, f *treedepth.Forest) (*wterm.Derivation, error) {
	return wterm.NewDerivation(g, f)
}
