// Package msoauto is the generic MSO-to-regular-predicate engine for graphs
// of bounded treedepth: it realizes Theorem 4.2 (Borie–Parker–Tovey) for the
// elimination-tree derivations used by this library.
//
// The homomorphism class of a w-terminal graph (G_u, B_u) is a *canonically
// reduced pattern tree*: the terminals (the bag) with their mutual edges,
// labels, and free-set selection, plus the forest of forgotten vertices with
// their edges into their ancestor chain — recursively canonicalized, with
// sibling subtrees of identical type clamped at a multiplicity threshold
// τ(φ). For fixed (φ, d) the universe of such patterns is finite, the update
// function is gluing followed by re-canonicalization, and a class is
// accepting iff φ holds on the pattern's bounded-size representative graph,
// evaluated with the naive oracle. The clamping is the Gajarský–Hlinený
// kernelization the paper cites: sibling subtrees beyond τ copies are
// indistinguishable by MSO formulas of bounded rank.
package msoauto

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// ErrPattern is wrapped by pattern encoding/decoding errors.
var ErrPattern = errors.New("msoauto: bad pattern")

// maxTerminals bounds bag sizes so masks fit in uint64.
const maxTerminals = 62

// pnode is one forgotten (internal) vertex of a pattern tree.
type pnode struct {
	termAdj    uint64 // edges to terminals, by terminal rank
	ancAdj     uint64 // edges to internal ancestors, bit j = j levels up (j >= 1)
	labels     uint32 // vertex labels, by index into the engine's vocabulary
	sel        bool   // vertex in the free set
	selTermEdg uint64 // selected edges to terminals (edge-set variables)
	selAncEdg  uint64 // selected edges to internal ancestors
	children   []*pnode
}

// pattern is a homomorphism class: terminal-side attributes plus the reduced
// internal forest.
type pattern struct {
	k         int      // number of terminals
	termAdj   []uint64 // termAdj[i] = edges from terminal i to terminals (symmetric)
	termLab   []uint32
	termSel   uint64
	termSelEd []uint64 // termSelEd[i] = selected bag edges from terminal i
	roots     []*pnode
}

// clonePNode deep-copies a subtree.
func clonePNode(n *pnode) *pnode {
	c := *n
	c.children = make([]*pnode, len(n.children))
	for i, ch := range n.children {
		c.children[i] = clonePNode(ch)
	}
	return &c
}

// encodeNode serializes a node header (without children).
func encodeNodeHeader(b []byte, n *pnode, numChildren int) []byte {
	b = appendU64(b, n.termAdj)
	b = appendU64(b, n.ancAdj)
	b = appendU32(b, n.labels)
	if n.sel {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU64(b, n.selTermEdg)
	b = appendU64(b, n.selAncEdg)
	b = appendU16(b, uint16(numChildren))
	return b
}

// canonicalize sorts children recursively by their encodings and clamps
// sibling multiplicities at threshold (0 = no clamping). It returns the
// node's canonical binary encoding (preorder, child counts embedded).
func canonicalize(n *pnode, threshold int) []byte {
	kept, keptEncs := canonicalizeSiblings(n.children, threshold)
	n.children = kept
	out := encodeNodeHeader(nil, n, len(kept))
	for _, e := range keptEncs {
		out = append(out, e...)
	}
	return out
}

// canonicalizeSiblings canonicalizes a sibling list: each subtree is
// canonicalized, the list is sorted by encoding, and runs of identical
// encodings are clamped at threshold.
func canonicalizeSiblings(children []*pnode, threshold int) ([]*pnode, [][]byte) {
	encs := make([][]byte, len(children))
	for i, ch := range children {
		encs[i] = canonicalize(ch, threshold)
	}
	order := make([]int, len(children))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return string(encs[order[a]]) < string(encs[order[b]])
	})
	var kept []*pnode
	var keptEncs [][]byte
	run := 0
	for _, idx := range order {
		if len(keptEncs) > 0 && string(keptEncs[len(keptEncs)-1]) == string(encs[idx]) {
			run++
		} else {
			run = 1
		}
		if threshold > 0 && run > threshold {
			continue
		}
		kept = append(kept, children[idx])
		keptEncs = append(keptEncs, encs[idx])
	}
	return kept, keptEncs
}

// canonicalizeAndKey canonicalizes the whole pattern (clamping sibling
// multiplicities at threshold) and returns its canonical binary key, which
// doubles as the wire encoding.
func (p *pattern) canonicalizeAndKey(threshold int) string {
	kept, keptEncs := canonicalizeSiblings(p.roots, threshold)
	p.roots = kept
	b := make([]byte, 0, 64)
	b = append(b, uint8(p.k))
	for i := 0; i < p.k; i++ {
		b = appendU64(b, p.termAdj[i])
		b = appendU32(b, p.termLab[i])
		b = appendU64(b, p.termSelEd[i])
	}
	b = appendU64(b, p.termSel)
	b = appendU16(b, uint16(len(kept)))
	for _, e := range keptEncs {
		b = append(b, e...)
	}
	return string(b)
}

// preCanonicalKey serializes the pattern exactly as built: children in
// construction order, no sorting, no clamping. Patterns with equal
// pre-canonical encodings are structurally identical, hence canonicalize to
// the same class — which makes this a sound memo key for canonicalizeAndKey
// without paying for the recursive sort first.
func (p *pattern) preCanonicalKey() string {
	b := make([]byte, 0, 64)
	b = append(b, uint8(p.k))
	for i := 0; i < p.k; i++ {
		b = appendU64(b, p.termAdj[i])
		b = appendU32(b, p.termLab[i])
		b = appendU64(b, p.termSelEd[i])
	}
	b = appendU64(b, p.termSel)
	b = appendU16(b, uint16(len(p.roots)))
	for _, r := range p.roots {
		b = encodePreOrder(b, r)
	}
	return string(b)
}

func encodePreOrder(b []byte, n *pnode) []byte {
	b = encodeNodeHeader(b, n, len(n.children))
	for _, ch := range n.children {
		b = encodePreOrder(b, ch)
	}
	return b
}

// decodePattern parses a pattern from its canonical key.
func decodePattern(data []byte) (*pattern, error) {
	r := &byteReader{buf: data}
	k, err := r.u8()
	if err != nil {
		return nil, err
	}
	p := &pattern{
		k:         int(k),
		termAdj:   make([]uint64, k),
		termLab:   make([]uint32, k),
		termSelEd: make([]uint64, k),
	}
	for i := 0; i < int(k); i++ {
		if p.termAdj[i], err = r.u64(); err != nil {
			return nil, err
		}
		if p.termLab[i], err = r.u32(); err != nil {
			return nil, err
		}
		if p.termSelEd[i], err = r.u64(); err != nil {
			return nil, err
		}
	}
	if p.termSel, err = r.u64(); err != nil {
		return nil, err
	}
	numRoots, err := r.u16()
	if err != nil {
		return nil, err
	}
	p.roots = make([]*pnode, numRoots)
	for i := range p.roots {
		if p.roots[i], err = decodeNode(r, 0); err != nil {
			return nil, err
		}
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrPattern, len(r.buf))
	}
	return p, nil
}

const maxPatternDepth = 1 << 16

func decodeNode(r *byteReader, depth int) (*pnode, error) {
	if depth > maxPatternDepth {
		return nil, fmt.Errorf("%w: pattern too deep", ErrPattern)
	}
	n := &pnode{}
	var err error
	if n.termAdj, err = r.u64(); err != nil {
		return nil, err
	}
	if n.ancAdj, err = r.u64(); err != nil {
		return nil, err
	}
	if n.labels, err = r.u32(); err != nil {
		return nil, err
	}
	selByte, err := r.u8()
	if err != nil {
		return nil, err
	}
	n.sel = selByte != 0
	if n.selTermEdg, err = r.u64(); err != nil {
		return nil, err
	}
	if n.selAncEdg, err = r.u64(); err != nil {
		return nil, err
	}
	numChildren, err := r.u16()
	if err != nil {
		return nil, err
	}
	n.children = make([]*pnode, numChildren)
	for i := range n.children {
		if n.children[i], err = decodeNode(r, depth+1); err != nil {
			return nil, err
		}
	}
	return n, nil
}

type byteReader struct{ buf []byte }

func (r *byteReader) u8() (uint8, error) {
	if len(r.buf) < 1 {
		return 0, fmt.Errorf("%w: truncated", ErrPattern)
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v, nil
}

func (r *byteReader) u16() (uint16, error) {
	if len(r.buf) < 2 {
		return 0, fmt.Errorf("%w: truncated", ErrPattern)
	}
	v := uint16(r.buf[0]) | uint16(r.buf[1])<<8
	r.buf = r.buf[2:]
	return v, nil
}

func (r *byteReader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, fmt.Errorf("%w: truncated", ErrPattern)
	}
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(r.buf[i]) << uint(8*i)
	}
	r.buf = r.buf[4:]
	return v, nil
}

func (r *byteReader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, fmt.Errorf("%w: truncated", ErrPattern)
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(r.buf[i]) << uint(8*i)
	}
	r.buf = r.buf[8:]
	return v, nil
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>uint(8*i)))
	}
	return b
}

// countNodes returns the number of internal nodes.
func (p *pattern) countNodes() int {
	var rec func(n *pnode) int
	rec = func(n *pnode) int {
		c := 1
		for _, ch := range n.children {
			c += rec(ch)
		}
		return c
	}
	total := 0
	for _, r := range p.roots {
		total += rec(r)
	}
	return total
}

// materialize builds the representative graph of the pattern: vertices
// 0..k-1 are the terminals, internal vertices follow. It returns the graph,
// the set of selected vertices, and the selected edge IDs (for free-set
// evaluation), plus an error if the pattern is inconsistent.
func (p *pattern) materialize(vertexLabels, edgeLabels []string) (*graph.Graph, []int, []int, error) {
	total := p.k + p.countNodes()
	g := graph.New(total)
	var selVerts []int
	var selEdges []int
	addEdge := func(a, b int, selected bool) error {
		id, err := g.AddEdge(a, b)
		if err != nil {
			return fmt.Errorf("%w: duplicate edge {%d,%d}", ErrPattern, a, b)
		}
		if selected {
			selEdges = append(selEdges, id)
		}
		return nil
	}
	for i := 0; i < p.k; i++ {
		for bit, name := range vertexLabels {
			if p.termLab[i]&(1<<uint(bit)) != 0 {
				g.SetVertexLabel(name, i)
			}
		}
		if p.termSel&(1<<uint(i)) != 0 {
			selVerts = append(selVerts, i)
		}
		for j := 0; j < i; j++ {
			if p.termAdj[i]&(1<<uint(j)) != 0 {
				if err := addEdge(j, i, p.termSelEd[i]&(1<<uint(j)) != 0); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	next := p.k
	var build func(n *pnode, chain []int) error
	build = func(n *pnode, chain []int) error {
		self := next
		next++
		for bit, name := range vertexLabels {
			if n.labels&(1<<uint(bit)) != 0 {
				g.SetVertexLabel(name, self)
			}
		}
		if n.sel {
			selVerts = append(selVerts, self)
		}
		for t := 0; t < p.k; t++ {
			if n.termAdj&(1<<uint(t)) != 0 {
				if err := addEdge(t, self, n.selTermEdg&(1<<uint(t)) != 0); err != nil {
					return err
				}
			}
		}
		for j := 1; j <= len(chain); j++ {
			if n.ancAdj&(1<<uint(j)) != 0 {
				anc := chain[len(chain)-j]
				if err := addEdge(anc, self, n.selAncEdg&(1<<uint(j)) != 0); err != nil {
					return err
				}
			}
		}
		childChain := append(chain, self)
		for _, ch := range n.children {
			if err := build(ch, childChain); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range p.roots {
		if err := build(r, nil); err != nil {
			return nil, nil, nil, err
		}
	}
	_ = edgeLabels // edge labels are not yet supported by the generic engine
	return g, selVerts, selEdges, nil
}

// forgetTerminal converts terminal rank t into an internal node: the
// pattern's roots become its children (their termAdj bit t moves to
// ancAdj at the appropriate height) and all terminal indices above t shift
// down. The forgotten vertex's own terminal attributes become the new
// internal root's attributes.
func (p *pattern) forgetTerminal(t int) error {
	if t < 0 || t >= p.k {
		return fmt.Errorf("%w: forget rank %d of %d", ErrPattern, t, p.k)
	}
	newRoot := &pnode{
		termAdj:    dropBit(p.termAdj[t], t),
		labels:     p.termLab[t],
		sel:        p.termSel&(1<<uint(t)) != 0,
		selTermEdg: dropBit(p.termSelEd[t], t),
		children:   p.roots,
	}
	// Re-root the old internal forest under newRoot: every node's bit-t
	// terminal adjacency becomes an ancestor adjacency at height depth+1.
	var shift func(n *pnode, depth int)
	shift = func(n *pnode, depth int) {
		if n.termAdj&(1<<uint(t)) != 0 {
			n.ancAdj |= 1 << uint(depth)
			if n.selTermEdg&(1<<uint(t)) != 0 {
				n.selAncEdg |= 1 << uint(depth)
			}
		}
		n.termAdj = dropBit(n.termAdj, t)
		n.selTermEdg = dropBit(n.selTermEdg, t)
		for _, ch := range n.children {
			shift(ch, depth+1)
		}
	}
	for _, r := range newRoot.children {
		shift(r, 1)
	}
	p.roots = []*pnode{newRoot}
	// Shrink the terminal side.
	p.k--
	p.termSel = dropBit(p.termSel, t)
	newAdj := make([]uint64, p.k)
	newLab := make([]uint32, p.k)
	newSelEd := make([]uint64, p.k)
	j := 0
	for i := 0; i <= p.k; i++ {
		if i == t {
			continue
		}
		newAdj[j] = dropBit(p.termAdj[i], t)
		newLab[j] = p.termLab[i]
		newSelEd[j] = dropBit(p.termSelEd[i], t)
		j++
	}
	p.termAdj, p.termLab, p.termSelEd = newAdj, newLab, newSelEd
	return nil
}

// dropBit removes bit t from a mask, shifting higher bits down.
func dropBit(mask uint64, t int) uint64 {
	low := mask & ((1 << uint(t)) - 1)
	high := mask >> uint(t+1)
	return low | high<<uint(t)
}
