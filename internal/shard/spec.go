// Package shard runs the CONGEST simulation as a multi-process system: K
// worker processes each own a contiguous vertex range and execute the node
// programs, while a coordinator drives the round barrier over a
// length-prefixed frame protocol (package transport) and performs the
// deterministic receiver-side merge. The partition is exactly the engine's
// receiver-sharded scheme, and every rule of the in-process engine —
// sender validation order, the receiver-side drop rule, stats accounting,
// trace event order — is reproduced, so verdicts, congest.Stats, and trace
// output are bit-identical to a single-process run at any shard count
// (pinned by the cross-process differential battery in equiv_test.go).
//
// A session is one run:
//
//	worker:  HELLO ->
//	coord:             <- CONFIG (digest + spec + graph)
//	worker:  READY ->
//	         per round r = 0, 1, ...:
//	coord:             <- STEP(r)
//	worker:  BATCH(r) ->          (messages bucketed by receiver shard)
//	coord:             <- DELIVER(r)  (merged traffic for this shard)
//	worker:  REPORT(r) ->         (stats delta, halts, trace events)
//	         then:
//	coord:             <- FINISH
//	worker:  OUTPUTS ->           (per-vertex protocol outputs)
//
// ABORT (either direction) ends the session early. The coordinator may
// apply frame-level faults (package faults' FrameInjector) to inter-shard
// BATCH traffic before the merge, modeling a lossy network between
// processes that protocols.Reliable's ARQ must recover.
package shard

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocols"
)

// Spec is the run description shipped to every worker in the CONFIG frame:
// everything a worker needs to rebuild the exact protocol configuration,
// with the predicate referenced by registry name or formula text (never
// serialized state). The JSON encoding is part of the wire protocol and is
// covered by the run digest.
type Spec struct {
	// Problem names a registered core problem; its predicate, mode, and
	// direction are resolved by core.Lookup on both sides.
	Problem string `json:"problem,omitempty"`
	// Formula is a closed MSO formula compiled by core.CompileClosedFormula
	// (mutually exclusive with Problem).
	Formula string `json:"formula,omitempty"`
	// Mode overrides the protocol mode when nonzero (values are
	// protocols.Mode). Required with Formula; optional with Problem (e.g.
	// ModeCheckMarked reuses a registered predicate on marked inputs).
	Mode int `json:"mode,omitempty"`
	// D is the treedepth parameter.
	D int `json:"d,omitempty"`
	// Maximize is the optimization direction for Formula-based runs
	// (Problem-based runs use the problem's own direction).
	Maximize bool `json:"maximize,omitempty"`
	// Reliable wraps every node in the reliable-delivery adapter.
	Reliable bool                     `json:"reliable,omitempty"`
	Rel      protocols.ReliableConfig `json:"rel,omitempty"`
	// BandwidthFactor / RoundLimit / IDSeed mirror congest.Options.
	BandwidthFactor int   `json:"bandwidth_factor,omitempty"`
	RoundLimit      int   `json:"round_limit,omitempty"`
	IDSeed          int64 `json:"id_seed,omitempty"`
	// Trace makes workers attach sender tags and emission sequence numbers
	// to wire messages so the coordinator can reconstruct the engine's
	// trace event stream exactly.
	Trace bool `json:"trace,omitempty"`
	// Workload selects a non-protocol node program ("" runs the model
	// checker; WorkloadHeartbeat runs the S7 micro-benchmark nodes).
	Workload string `json:"workload,omitempty"`
	// HeartbeatRounds is the heartbeat workload's round count (0 means the
	// S1-compatible default).
	HeartbeatRounds int `json:"heartbeat_rounds,omitempty"`
}

// WorkloadHeartbeat names the S7 scaling workload: every node broadcasts a
// small accumulator for a fixed number of rounds (the same node program as
// experiment S1's), exercising the transport without DP work.
const WorkloadHeartbeat = "heartbeat"

// EncodeSpec returns the canonical JSON bytes of the spec — the form that
// goes on the wire and into the digest.
func EncodeSpec(spec Spec) ([]byte, error) { return json.Marshal(spec) }

// DecodeSpec parses canonical spec bytes.
func DecodeSpec(data []byte) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("shard: bad spec: %w", err)
	}
	return spec, nil
}

// Options converts the spec's simulator knobs to congest.Options.
func (s Spec) Options() congest.Options {
	return congest.Options{
		BandwidthFactor: s.BandwidthFactor,
		RoundLimit:      s.RoundLimit,
		IDSeed:          s.IDSeed,
	}
}

// RoundLimitRounds resolves the spec's round cap like the engine does.
func (s Spec) RoundLimitRounds() int {
	if s.RoundLimit == 0 {
		return congest.DefaultRoundLimit
	}
	return s.RoundLimit
}

// Resolve builds the protocol configuration the spec describes. Both sides
// of the session call it — the worker to instantiate nodes, the
// coordinator to assemble the result — and both must arrive at the same
// configuration, which is why the spec carries names and formulas rather
// than values. Workload specs resolve to a zero Config.
func (s Spec) Resolve() (protocols.Config, error) {
	if s.Workload != "" {
		if s.Workload != WorkloadHeartbeat {
			return protocols.Config{}, fmt.Errorf("shard: unknown workload %q", s.Workload)
		}
		if s.Problem != "" || s.Formula != "" {
			return protocols.Config{}, fmt.Errorf("shard: workload spec must not name a problem or formula")
		}
		return protocols.Config{}, nil
	}
	if (s.Problem == "") == (s.Formula == "") {
		return protocols.Config{}, fmt.Errorf("shard: spec must name exactly one of problem or formula")
	}
	cfg := protocols.Config{
		D:        s.D,
		Reliable: s.Reliable,
		Rel:      s.Rel,
	}
	if s.Problem != "" {
		prob, err := core.Lookup(s.Problem)
		if err != nil {
			return protocols.Config{}, err
		}
		pred, err := prob.Build()
		if err != nil {
			return protocols.Config{}, err
		}
		cfg.Pred = pred
		cfg.Maximize = prob.Maximize
		switch prob.Kind {
		case core.KindDecision:
			cfg.Mode = protocols.ModeDecide
		case core.KindOptimization:
			cfg.Mode = protocols.ModeOptimize
		case core.KindCounting:
			cfg.Mode = protocols.ModeCount
		default:
			return protocols.Config{}, fmt.Errorf("shard: problem %q has unsupported kind %d", s.Problem, prob.Kind)
		}
	} else {
		pred, err := core.CompileClosedFormula(s.Formula)
		if err != nil {
			return protocols.Config{}, err
		}
		cfg.Pred = pred
		cfg.Maximize = s.Maximize
		if s.Mode == 0 {
			return protocols.Config{}, fmt.Errorf("shard: formula spec must set a mode")
		}
	}
	if s.Mode != 0 {
		cfg.Mode = protocols.Mode(s.Mode)
	}
	switch cfg.Mode {
	case protocols.ModeDecide, protocols.ModeOptimize, protocols.ModeCount, protocols.ModeCheckMarked:
	default:
		return protocols.Config{}, fmt.Errorf("shard: invalid mode %d", s.Mode)
	}
	return cfg, nil
}

// EncodeGraph serializes g in the deterministic edge-list format (weights
// and labels included) — the worker's copy of the input and the digest's
// graph component.
func EncodeGraph(g *graph.Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Digest fingerprints one run: SHA-256 over the spec bytes and the graph
// bytes with unambiguous framing. The coordinator puts it in CONFIG; each
// worker recomputes it from the bytes it received and echoes it in READY,
// so a spec/graph mismatch (version skew, truncation the frame layer
// missed) fails the handshake instead of corrupting a run.
func Digest(specBytes, graphBytes []byte) [32]byte {
	h := sha256.New()
	var hdr [8]byte
	putLen := func(b []byte) {
		n := uint64(len(b))
		for i := 0; i < 8; i++ {
			hdr[i] = byte(n >> (8 * i))
		}
		h.Write(hdr[:])
		h.Write(b)
	}
	putLen(specBytes)
	putLen(graphBytes)
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}
