package shard

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/congest/transport"
)

// Spawner launches the K workers of a run and hands the coordinator their
// connections, in arbitrary order (the handshake's HELLO frames map
// connections to shard indices). cleanup tears the workers down: it closes
// the connections and blocks until every worker has exited, so no worker
// goroutine or process outlives the run.
type Spawner interface {
	Spawn(shards int) (conns []io.ReadWriteCloser, cleanup func(), err error)
}

// LoopbackSpawner runs workers as goroutines over in-memory pipes — the
// full frame protocol (handshake, digests, merges, faults) with no OS
// processes. It is the default spawner and what the differential battery
// uses, so the protocol logic itself is exercised under -race.
type LoopbackSpawner struct {
	mu   sync.Mutex
	errs []error
}

// NewLoopback returns a fresh loopback spawner.
func NewLoopback() *LoopbackSpawner { return &LoopbackSpawner{} }

// Spawn implements Spawner.
func (l *LoopbackSpawner) Spawn(shards int) ([]io.ReadWriteCloser, func(), error) {
	conns := make([]io.ReadWriteCloser, shards)
	l.errs = make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		coordSide, workerSide := transport.Loopback()
		conns[i] = coordSide
		wg.Add(1)
		go func(i int, conn io.ReadWriteCloser) {
			defer wg.Done()
			err := RunWorker(conn, i)
			l.mu.Lock()
			l.errs[i] = err
			l.mu.Unlock()
		}(i, workerSide)
	}
	cleanup := func() {
		// Closing the coordinator sides unblocks any worker still in I/O;
		// the join guarantees no goroutine outlives the run.
		for _, c := range conns {
			c.Close()
		}
		wg.Wait()
	}
	return conns, cleanup, nil
}

// Errors returns the per-worker exit errors. Valid after the run returns
// (cleanup joins the workers); a worker torn down mid-I/O by cleanup
// reports its pipe error here, which is expected on coordinator-side
// failures.
func (l *LoopbackSpawner) Errors() []error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]error(nil), l.errs...)
}

// EnvSocket and EnvIndex are the environment variables that turn a process
// into a shard worker: any binary whose main calls MaybeWorker first (dmc,
// dmcshard, the test binaries) can be spawned as a worker without
// arguments.
const (
	EnvSocket = "DMC_SHARD_SOCKET"
	EnvIndex  = "DMC_SHARD_INDEX"
)

// MaybeWorker checks the worker environment variables and, when present,
// runs the full worker session. It returns ran=false immediately in normal
// processes. Call it at the top of main: when ran is true, the process
// should exit (with an error status iff err is non-nil) instead of
// continuing as whatever binary it is.
func MaybeWorker() (ran bool, err error) {
	addr := os.Getenv(EnvSocket)
	if addr == "" {
		return false, nil
	}
	idxText := os.Getenv(EnvIndex)
	idx, convErr := strconv.Atoi(idxText)
	if convErr != nil || idx < 0 {
		return true, fmt.Errorf("shard: bad %s=%q", EnvIndex, idxText)
	}
	return true, WorkerConnect(addr, idx)
}

// WorkerConnect dials the coordinator (a unix socket path, or host:port
// when addr contains no slash) and runs the worker session for the given
// shard index.
func WorkerConnect(addr string, index int) error {
	network := "unix"
	if !strings.Contains(addr, "/") {
		network = "tcp"
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return fmt.Errorf("shard: dialing coordinator %s: %w", addr, err)
	}
	return RunWorker(conn, index)
}

// ExecSpawner launches real worker processes connected over a unix socket.
// Each worker gets EnvSocket/EnvIndex in its environment, so any
// MaybeWorker-aware binary works — including the running test binary or
// dmc itself re-executed.
type ExecSpawner struct {
	// Bin is the worker binary; "" re-executes the current executable.
	Bin string
	// Args are extra arguments passed to the binary (usually none: the
	// environment carries the worker role).
	Args []string
	// AcceptTimeout bounds how long the coordinator waits for each worker
	// to connect (0 means 30s).
	AcceptTimeout time.Duration
	// Stderr, when non-nil, receives the workers' stderr (nil discards).
	Stderr io.Writer
}

// Spawn implements Spawner.
func (e *ExecSpawner) Spawn(shards int) ([]io.ReadWriteCloser, func(), error) {
	bin := e.Bin
	if bin == "" {
		self, err := os.Executable()
		if err != nil {
			return nil, nil, fmt.Errorf("shard: resolving executable: %w", err)
		}
		bin = self
	}
	dir, err := os.MkdirTemp("", "dmcshard-*")
	if err != nil {
		return nil, nil, err
	}
	sock := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	timeout := e.AcceptTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	var cmds []*exec.Cmd
	var conns []io.ReadWriteCloser
	fail := func(err error) ([]io.ReadWriteCloser, func(), error) {
		for _, c := range conns {
			c.Close()
		}
		for _, cmd := range cmds {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
		ln.Close()
		os.RemoveAll(dir)
		return nil, nil, err
	}
	for i := 0; i < shards; i++ {
		cmd := exec.Command(bin, e.Args...)
		cmd.Env = append(os.Environ(),
			EnvSocket+"="+sock,
			EnvIndex+"="+strconv.Itoa(i),
		)
		cmd.Stderr = e.Stderr
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("shard: starting worker %d: %w", i, err))
		}
		cmds = append(cmds, cmd)
	}
	ul := ln.(*net.UnixListener)
	for i := 0; i < shards; i++ {
		if err := ul.SetDeadline(time.Now().Add(timeout)); err != nil {
			return fail(err)
		}
		conn, err := ul.Accept()
		if err != nil {
			return fail(fmt.Errorf("shard: waiting for worker connections (%d/%d): %w", i, shards, err))
		}
		conns = append(conns, conn)
	}
	cleanup := func() {
		for _, c := range conns {
			c.Close()
		}
		ln.Close()
		// Workers exit on their own once the sockets close; kill is the
		// backstop for a wedged process, and the wait reaps every child.
		done := make(chan struct{})
		go func() {
			for _, cmd := range cmds {
				_ = cmd.Wait()
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(timeout):
			for _, cmd := range cmds {
				_ = cmd.Process.Kill()
			}
			<-done
		}
		os.RemoveAll(dir)
	}
	return conns, cleanup, nil
}
