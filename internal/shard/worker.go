package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/congest"
	"repro/internal/congest/transport"
	"repro/internal/graph"
	"repro/internal/protocols"
)

// workerOutputs is the OUTPUTS frame body (JSON): one shard's contribution
// to the run result. Outputs covers the shard's vertex range [lo, hi) in
// order; the coordinator concatenates shards in index order to recover the
// vertex-indexed slice the in-process driver builds.
type workerOutputs struct {
	Rel  protocols.RelStats            `json:"rel"`
	Fail *protocols.UnrecoverableError `json:"fail,omitempty"`
	// OutputErr/OutputErrVertex report the first Result() failure in vertex
	// order (the in-process driver stops at the first).
	OutputErr       string             `json:"output_err,omitempty"`
	OutputErrVertex int                `json:"output_err_vertex,omitempty"`
	Outputs         []protocols.Output `json:"outputs,omitempty"`
	// Checksum is the heartbeat workload's partial state digest.
	Checksum uint64 `json:"checksum,omitempty"`
}

// buildConfig resolves the spec against the graph exactly as the in-process
// driver normalizes its Config: label vocabularies default to the graph's,
// the 32-label cap applies, and reliable runs must clear the minimum frame
// budget. Worker and coordinator both call this, so both sides reject a bad
// run the same way.
func buildConfig(spec Spec, g *graph.Graph) (protocols.Config, error) {
	cfg, err := spec.Resolve()
	if err != nil {
		return cfg, err
	}
	if spec.Workload != "" {
		return cfg, nil
	}
	if cfg.VertexLabelNames == nil {
		cfg.VertexLabelNames = g.VertexLabelNames()
	}
	if cfg.EdgeLabelNames == nil {
		cfg.EdgeLabelNames = g.EdgeLabelNames()
	}
	if len(cfg.VertexLabelNames) > 32 || len(cfg.EdgeLabelNames) > 32 {
		return cfg, fmt.Errorf("shard: at most 32 vertex and edge labels supported")
	}
	if cfg.Reliable {
		n := g.NumVertices()
		if got := congest.FrameBudgetBytes(spec.Options().BandwidthBits(n)); got < protocols.ReliableMinFrameBytes {
			return cfg, fmt.Errorf("shard: reliable delivery needs a frame budget of at least %d bytes, got %d",
				protocols.ReliableMinFrameBytes, got)
		}
	}
	return cfg, nil
}

// nodeFactory builds the per-vertex node constructor for the spec.
func nodeFactory(spec Spec, cfg protocols.Config) func(v int) congest.Node {
	if spec.Workload == WorkloadHeartbeat {
		rounds := spec.HeartbeatRounds
		if rounds <= 0 {
			rounds = DefaultHeartbeatRounds
		}
		return func(v int) congest.Node { return &heartbeatNode{limit: rounds} }
	}
	if cfg.Reliable {
		innerCfg := cfg
		innerCfg.Reliable = false
		return func(v int) congest.Node {
			return protocols.NewReliable(protocols.NewNode(innerCfg), cfg.Rel)
		}
	}
	return func(v int) congest.Node { return protocols.NewNode(cfg) }
}

// classifyBatchErr maps a sub-engine validation error to its wire kind.
func classifyBatchErr(err error) uint8 {
	switch {
	case errors.Is(err, congest.ErrMessageTooLarge):
		return transport.BatchErrTooLarge
	case errors.Is(err, congest.ErrBandwidthExceeded):
		return transport.BatchErrBandwidth
	default:
		return transport.BatchErrBadPort
	}
}

// workerSession is one worker's side of a run.
type workerSession struct {
	index int
	r     *transport.Reader
	w     *transport.Writer
	spec  Spec
	se    *congest.SubEngine
}

// RunWorker executes the worker side of one session on conn: handshake,
// round loop, outputs. It returns nil on a clean session end — including a
// coordinator-initiated ABORT, whose cause the coordinator already owns —
// and an error only for transport or protocol violations this side
// detected. conn is closed on return.
func RunWorker(conn io.ReadWriteCloser, index int) error {
	defer conn.Close()
	ws := &workerSession{
		index: index,
		r:     transport.NewReader(conn, 0, nil),
		w:     transport.NewWriter(conn, nil),
	}
	if err := ws.w.WriteFrame(transport.Frame{
		Type:    transport.TypeHello,
		Payload: transport.Hello{Proto: transport.Version, Shard: uint32(index)}.Encode(),
	}); err != nil {
		return err
	}
	if err := ws.handshake(); err != nil {
		return err
	}
	return ws.roundLoop()
}

// abort sends an ABORT frame with the error text and returns the error.
// Best-effort: if the peer is gone the write failure is secondary.
func (ws *workerSession) abort(err error) error {
	_ = ws.w.WriteFrame(transport.Frame{
		Type:    transport.TypeAbort,
		Payload: transport.Abort{Text: err.Error()}.Encode(),
	})
	return err
}

// handshake consumes CONFIG, rebuilds the run, verifies the digest, and
// answers READY.
func (ws *workerSession) handshake() error {
	f, err := ws.r.ReadFrame()
	if err != nil {
		return err
	}
	if f.Type == transport.TypeAbort {
		return nil
	}
	if f.Type != transport.TypeConfig {
		return ws.abort(fmt.Errorf("shard: worker expected CONFIG, got frame type %d", f.Type))
	}
	cfg, err := transport.DecodeConfig(f.Payload)
	if err != nil {
		return ws.abort(fmt.Errorf("shard: bad CONFIG: %w", err))
	}
	if digest := Digest(cfg.Spec, cfg.Graph); digest != cfg.Digest {
		return ws.abort(fmt.Errorf("shard: digest mismatch: coordinator sent %x, worker computed %x", cfg.Digest[:4], digest[:4]))
	}
	spec, err := DecodeSpec(cfg.Spec)
	if err != nil {
		return ws.abort(err)
	}
	g, err := graph.ReadEdgeList(bytes.NewReader(cfg.Graph))
	if err != nil {
		return ws.abort(fmt.Errorf("shard: bad graph: %w", err))
	}
	shards := int(cfg.Shards)
	if shards < 1 || ws.index >= shards {
		return ws.abort(fmt.Errorf("shard: worker index %d outside %d shards", ws.index, shards))
	}
	n := g.NumVertices()
	if want := uint32((n + shards - 1) / shards); cfg.ShardSize != want {
		return ws.abort(fmt.Errorf("shard: CONFIG shard size %d, want %d", cfg.ShardSize, want))
	}
	pcfg, err := buildConfig(spec, g)
	if err != nil {
		return ws.abort(err)
	}
	sim, err := congest.NewSimulator(g, spec.Options())
	if err != nil {
		return ws.abort(err)
	}
	se, err := congest.NewSubEngine(sim, shards, ws.index, nodeFactory(spec, pcfg), spec.Trace)
	if err != nil {
		return ws.abort(err)
	}
	ws.spec = spec
	ws.se = se
	return ws.w.WriteFrame(transport.Frame{
		Type:    transport.TypeReady,
		Payload: transport.Ready{Digest: cfg.Digest}.Encode(),
	})
}

// roundLoop serves STEP/FINISH/ABORT until the session ends. The loop has
// no local exit condition by design: the coordinator owns termination, and
// a vanished coordinator surfaces as a read error when the transport
// closes.
func (ws *workerSession) roundLoop() error {
	for {
		f, err := ws.r.ReadFrame()
		if err != nil {
			return err
		}
		switch f.Type {
		case transport.TypeStep:
			if err := ws.step(int(f.Round)); err != nil {
				return err
			}
		case transport.TypeFinish:
			return ws.sendOutputs()
		case transport.TypeAbort:
			return nil
		default:
			return ws.abort(fmt.Errorf("shard: worker expected STEP/FINISH/ABORT, got frame type %d", f.Type))
		}
	}
}

// step runs one round: compute (Init in round 0), emit the validated batch,
// ingest the coordinator's merge, compact, report.
func (ws *workerSession) step(round int) error {
	var sub [][]transport.Msg
	var errV int
	var serr error
	if round == 0 {
		sub, errV, serr = ws.se.RunInit()
	} else {
		ws.se.Compute(round)
		sub, errV, serr = ws.se.EmitBatch(round)
	}
	batch := transport.Batch{ErrVertex: -1, Sub: sub}
	if serr != nil {
		batch = transport.Batch{
			ErrKind:   classifyBatchErr(serr),
			ErrVertex: int32(errV),
			ErrText:   serr.Error(),
		}
	}
	if err := ws.w.WriteFrame(transport.Frame{
		Type: transport.TypeBatch, Round: uint32(round), Payload: batch.Encode(),
	}); err != nil {
		return err
	}
	if serr != nil {
		// The coordinator will abort the run; wait for it at the loop top.
		return nil
	}
	f, err := ws.r.ReadFrame()
	if err != nil {
		return err
	}
	switch f.Type {
	case transport.TypeAbort:
		return nil
	case transport.TypeDeliver:
	default:
		return ws.abort(fmt.Errorf("shard: worker expected DELIVER, got frame type %d", f.Type))
	}
	if int(f.Round) != round {
		return ws.abort(fmt.Errorf("shard: DELIVER for round %d during round %d", f.Round, round))
	}
	dl, err := transport.DecodeDeliver(f.Payload)
	if err != nil {
		return ws.abort(fmt.Errorf("shard: bad DELIVER: %w", err))
	}
	ds, err := ws.se.Deliver(round, dl.Delayed, dl.Msgs)
	if err != nil {
		return ws.abort(err)
	}
	report := transport.Report{
		Messages:   ds.Messages,
		Bits:       ds.Bits,
		MaxMsgBits: int32(ds.MaxMsgBits),
		Lost:       ds.Lost,
		Halted:     ws.se.Compact(round),
		Events:     ds.Events,
	}
	return ws.w.WriteFrame(transport.Frame{
		Type: transport.TypeReport, Round: uint32(round), Payload: report.Encode(),
	})
}

// sendOutputs answers FINISH with the shard's result contribution.
func (ws *workerSession) sendOutputs() error {
	lo, hi := ws.se.Range()
	var out workerOutputs
	if ws.spec.Workload == WorkloadHeartbeat {
		for v := lo; v < hi; v++ {
			out.Checksum += heartbeatDigest(v, ws.se.Node(v).(*heartbeatNode).acc)
		}
	} else {
		for v := lo; v < hi; v++ {
			node := ws.se.Node(v)
			if ws.spec.Reliable {
				st, fail, ok := protocols.RelResult(node)
				if ok {
					out.Rel = out.Rel.Add(st)
					if fail != nil && out.Fail == nil {
						out.Fail = fail
					}
				}
			}
		}
		if out.Fail == nil {
			for v := lo; v < hi; v++ {
				res, err := protocols.Result(ws.se.Node(v))
				if err != nil {
					out.OutputErr = err.Error()
					out.OutputErrVertex = v
					out.Outputs = nil
					break
				}
				out.Outputs = append(out.Outputs, res)
			}
		}
	}
	data, err := json.Marshal(out)
	if err != nil {
		return ws.abort(fmt.Errorf("shard: encoding outputs: %w", err))
	}
	return ws.w.WriteFrame(transport.Frame{
		Type:    transport.TypeOutputs,
		Payload: transport.Outputs{Data: data}.Encode(),
	})
}

// DefaultHeartbeatRounds matches experiment S1's workload length.
const DefaultHeartbeatRounds = 8

// heartbeatNode is the S7 workload: broadcast a 2-byte running accumulator
// each round for a fixed number of rounds, then halt — the same node
// program as experiment S1's, so S7's multiproc rows are comparable to S1's
// in-process ones. Payload and outbox live in the struct, so the workload
// allocates nothing per round and the measurement isolates transport cost.
type heartbeatNode struct {
	limit  int
	rounds int
	acc    int
	buf    [2]byte
	out    [1]congest.Outgoing
}

func (h *heartbeatNode) emit() []congest.Outgoing {
	h.buf[0], h.buf[1] = byte(h.acc), byte(h.acc>>8)
	h.out[0] = congest.Broadcast(congest.Message(h.buf[:]))
	return h.out[:]
}

func (h *heartbeatNode) Init(env *congest.Env) []congest.Outgoing {
	h.acc = env.ID & 0xFFFF
	return h.emit()
}

func (h *heartbeatNode) Round(env *congest.Env, inbox []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, in := range inbox {
		h.acc += int(in.Payload[0]) | int(in.Payload[1])<<8
	}
	h.acc &= 0xFFFF
	h.rounds++
	if h.rounds >= h.limit {
		return nil, true
	}
	return h.emit(), false
}

// heartbeatDigest mixes one node's final accumulator into a
// position-sensitive but partition-independent digest: per-vertex hashes
// sum (mod 2^64), so K workers' partial sums combine to the same value the
// in-process twin computes over all vertices.
func heartbeatDigest(v, acc int) uint64 {
	z := uint64(v)<<20 ^ uint64(acc&0xFFFF)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// RunHeartbeatInProcess is the single-process twin of a heartbeat-workload
// multiproc run: same nodes, same engine, same digest formula. S7 uses it
// as the baseline the multiproc rows must match.
func RunHeartbeatInProcess(g *graph.Graph, opts congest.Options, rounds int) (congest.Stats, uint64, error) {
	if rounds <= 0 {
		rounds = DefaultHeartbeatRounds
	}
	n := g.NumVertices()
	sim, err := congest.NewSimulator(g, opts)
	if err != nil {
		return congest.Stats{}, 0, err
	}
	nodes := make([]heartbeatNode, n)
	stats, err := sim.Run(func(v int) congest.Node {
		nodes[v] = heartbeatNode{limit: rounds}
		return &nodes[v]
	})
	if err != nil {
		return stats, 0, err
	}
	var sum uint64
	for v := range nodes {
		sum += heartbeatDigest(v, nodes[v].acc)
	}
	return stats, sum, nil
}
