package shard

// The cross-process differential battery: every run here executes the same
// spec twice — once through the in-process driver, once through the
// multi-process coordinator at several shard counts — and demands
// bit-identical results: verdicts, congest.Stats (down to every fault
// counter), per-vertex outputs, and, for the golden cases, the complete
// NDJSON trace byte stream. The graph population and predicate rotation
// mirror the protocols package's differential suite, so the two batteries
// pin the same behavior from opposite sides of the process boundary.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/congest"
	"repro/internal/congest/transport"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
)

// TestMain makes the test binary MaybeWorker-aware, so ExecSpawner can
// re-execute it as a real worker process in the subprocess tests.
func TestMain(m *testing.M) {
	if ran, err := MaybeWorker(); ran {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const equivGraphCount = 50

type equivCase struct {
	name string
	g    *graph.Graph
	d    int
}

// equivGraphs regenerates the protocols differential population: 50 seeded
// random graphs of treedepth 2–3 (10 under -short).
func equivGraphs(t *testing.T) []equivCase {
	t.Helper()
	count := equivGraphCount
	if testing.Short() {
		count = 10
	}
	cases := make([]equivCase, 0, count)
	for i := 0; i < count; i++ {
		d := 2 + i%2
		n := 8 + (i%7)*4
		prob := 0.1 + 0.05*float64(i%4)
		g, _ := gen.BoundedTreedepth(n, d, prob, int64(1000+i))
		gen.AssignRandomWeights(g, 10, int64(2000+i))
		cases = append(cases, equivCase{name: fmt.Sprintf("g%02d_n%d_d%d", i, n, d), g: g, d: d})
	}
	return cases
}

// equivSeeds is the protocols suite's ID-assignment rotation: identity and
// an adversarial permutation distinct per graph.
func equivSeeds(i int) []int64 { return []int64{0, int64(0xC0FFEE + 31*i)} }

var equivShardCounts = []int{1, 2, 4}

// inProcess runs the spec through the single-process driver — the oracle
// every multiproc run must reproduce exactly.
func inProcess(t *testing.T, g *graph.Graph, spec Spec) (*protocols.RunResult, error) {
	t.Helper()
	cfg, err := buildConfig(spec, g)
	if err != nil {
		t.Fatalf("buildConfig: %v", err)
	}
	return protocols.Run(g, cfg, spec.Options())
}

// mustAgree fails unless got is bit-identical to want: stats first (the
// highest-signal divergence), then the whole result including outputs,
// forest, cache counters, and reliability counters.
func mustAgree(t *testing.T, label string, got, want *protocols.RunResult) {
	t.Helper()
	if got.Stats != want.Stats {
		t.Errorf("%s: stats diverged:\n got  %+v\n want %+v", label, got.Stats, want.Stats)
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: result diverged:\n got  %+v\n want %+v", label, got, want)
	}
}

// runShards executes spec at shard count k over loopback workers and
// requires a clean run on both sides of every session.
func runShards(t *testing.T, label string, g *graph.Graph, spec Spec, k int) *Result {
	t.Helper()
	sp := NewLoopback()
	res, err := Run(g, spec, Options{Shards: k, Spawn: sp})
	if err != nil {
		t.Fatalf("%s: shard.Run: %v", label, err)
	}
	for wi, werr := range sp.Errors() {
		if werr != nil {
			t.Fatalf("%s: worker %d: %v", label, wi, werr)
		}
	}
	return res
}

// TestCrossProcessDifferentialBattery sweeps the 50-graph population
// through the multiproc path at K ∈ {1, 2, 4} and both ID seeds, rotating
// decision predicates per graph and sampling optimization and counting runs
// on the same cadence as the in-process differential suite.
func TestCrossProcessDifferentialBattery(t *testing.T) {
	decide := []string{"acyclic", "2-colorable", "connected"}
	optimize := []string{"max-independent-set", "min-vertex-cover"}
	for i, tc := range equivGraphs(t) {
		specs := []Spec{{Problem: decide[i%3], D: tc.d}}
		if i%5 == 0 {
			specs = append(specs, Spec{Problem: optimize[(i/5)%2], D: tc.d})
		}
		if i%10 == 3 {
			specs = append(specs, Spec{Problem: "count-triangles", D: tc.d})
		}
		for _, spec := range specs {
			for _, seed := range equivSeeds(i) {
				spec.IDSeed = seed
				want, err := inProcess(t, tc.g, spec)
				if err != nil {
					t.Fatalf("%s/%s seed=%d: in-process: %v", tc.name, spec.Problem, seed, err)
				}
				for _, k := range equivShardCounts {
					label := fmt.Sprintf("%s/%s seed=%d K=%d", tc.name, spec.Problem, seed, k)
					res := runShards(t, label, tc.g, spec, k)
					mustAgree(t, label, res.Run, want)
				}
			}
		}
	}
}

// TestCrossProcessGoldenTraces replays the protocols package's golden DP
// trace cases through the multiproc path and byte-compares the NDJSON
// stream — against the committed golden files where the case is expressible
// as a registry problem, and against a fresh in-process trace for the
// counting case (whose golden twin uses an unregistered predicate).
func TestCrossProcessGoldenTraces(t *testing.T) {
	g, _ := gen.BoundedTreedepth(18, 2, 0.3, 42)
	gen.AssignRandomWeights(g, 9, 43)
	marked := g.Clone()
	marked.SetVertexLabel(protocols.MarkLabel, 0)
	marked.SetVertexLabel(protocols.MarkLabel, 5)

	cases := []struct {
		name   string
		g      *graph.Graph
		spec   Spec
		golden string // committed golden file; "" compares to a live in-process trace
	}{
		{"decide_connected", g,
			Spec{Problem: "connected", D: 2, IDSeed: 7}, "golden_dp_decide_connected.ndjson"},
		{"opt_indset", g,
			Spec{Problem: "max-independent-set", D: 2, IDSeed: 7}, "golden_dp_opt_indset.ndjson"},
		{"checkmarked_indset", marked,
			Spec{Problem: "max-independent-set", Mode: int(protocols.ModeCheckMarked), D: 2, IDSeed: 7},
			"golden_dp_checkmarked_indset.ndjson"},
		{"count_triangles", g,
			Spec{Problem: "count-triangles", D: 2, IDSeed: 7}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want []byte
			if tc.golden != "" {
				var err error
				want, err = os.ReadFile(filepath.Join("..", "protocols", "testdata", tc.golden))
				if err != nil {
					t.Fatalf("reading committed golden trace: %v", err)
				}
			} else {
				spec := tc.spec
				spec.Trace = true
				cfg, err := buildConfig(spec, tc.g)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				tracer := congest.NewNDJSONTracer(&buf)
				opts := spec.Options()
				opts.Tracer = tracer
				if _, err := protocols.Run(tc.g, cfg, opts); err != nil {
					t.Fatal(err)
				}
				if err := tracer.Err(); err != nil {
					t.Fatal(err)
				}
				want = buf.Bytes()
			}
			for _, k := range equivShardCounts {
				var buf bytes.Buffer
				tracer := congest.NewNDJSONTracer(&buf)
				if _, err := Run(tc.g, tc.spec, Options{Shards: k, Tracer: tracer}); err != nil {
					t.Fatalf("K=%d: %v", k, err)
				}
				if err := tracer.Err(); err != nil {
					t.Fatalf("K=%d: tracer: %v", k, err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("K=%d: trace diverged (got %d bytes, want %d); first divergent line %d",
						k, buf.Len(), len(want), firstDivergentLine(buf.Bytes(), want))
				}
			}
		})
	}
}

// firstDivergentLine is a debugging aid for golden-trace failures.
func firstDivergentLine(got, want []byte) int {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return i + 1
		}
	}
	return min(len(gl), len(wl)) + 1
}

// TestCrossProcessExecSpawner runs one case over real OS worker processes
// (the test binary re-executed via MaybeWorker) to cover the socket
// transport and process lifecycle the loopback battery bypasses.
func TestCrossProcessExecSpawner(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess spawning skipped in -short mode")
	}
	tc := equivGraphs(t)[2]
	spec := Spec{Problem: "connected", D: tc.d, IDSeed: 11}
	want, err := inProcess(t, tc.g, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tc.g, spec, Options{Shards: 2, Spawn: &ExecSpawner{Stderr: os.Stderr}})
	if err != nil {
		t.Fatalf("exec run: %v", err)
	}
	mustAgree(t, "exec K=2", res.Run, want)
	if res.Wire.FramesSent == 0 || res.Wire.BytesRecv == 0 {
		t.Errorf("exec run reported no wire traffic: %+v", res.Wire)
	}
}

// TestCrossProcessFaultyReliable injects frame-level faults into the
// inter-shard links and requires zero wrong verdicts: every run either
// completes with the fault-free answer or dies loudly with
// ErrUnrecoverable (possible only for lossy schedules).
func TestCrossProcessFaultyReliable(t *testing.T) {
	type schedule struct {
		name         string
		cfg          faults.Config
		mustComplete bool // loss-free fault classes cannot exhaust the ARQ budget
	}
	schedules := []schedule{
		{"dup-only", faults.Config{DupRate: 0.4, ReorderWindow: 4}, true},
		{"drop", faults.Config{DropRate: 0.15}, false},
		{"mixed", faults.Config{DropRate: 0.1, DupRate: 0.1, ReorderRate: 0.1, ReorderWindow: 3}, false},
	}
	completed, failed := 0, 0
	for i, tc := range equivGraphs(t) {
		if i%7 != 1 {
			continue // ARQ runs are slow; sample the population
		}
		spec := Spec{
			Problem: "connected", D: tc.d, Reliable: true,
			BandwidthFactor: protocols.ReliableBandwidthFactor(tc.g.NumVertices()),
		}
		want, err := inProcess(t, tc.g, spec)
		if err != nil {
			t.Fatalf("%s: fault-free reliable baseline: %v", tc.name, err)
		}
		for si, sc := range schedules {
			fc := sc.cfg
			fc.Seed = int64(1000*i + si)
			for _, k := range []int{2, 4} {
				label := fmt.Sprintf("%s/%s K=%d", tc.name, sc.name, k)
				res, err := Run(tc.g, spec, Options{Shards: k, Faults: faults.NewFrameInjector(fc)})
				switch {
				case err == nil:
					completed++
					if res.Run.TdExceeded {
						t.Errorf("%s: spurious treedepth report under frame faults", label)
						continue
					}
					if res.Run.Accepted != want.Accepted {
						t.Errorf("%s: WRONG VERDICT under frame faults: got %v, fault-free %v",
							label, res.Run.Accepted, want.Accepted)
					}
				case errors.Is(err, protocols.ErrUnrecoverable):
					failed++
					if sc.mustComplete {
						t.Errorf("%s: loss-free fault class reported unrecoverable: %v", label, err)
					}
				default:
					t.Errorf("%s: unexpected error: %v", label, err)
				}
			}
		}
	}
	if completed == 0 {
		t.Fatal("no fault-injected run completed; the grid tests nothing")
	}
	t.Logf("frame-fault grid: %d completed (all agreed with fault-free), %d unrecoverable", completed, failed)
}

// TestMultiprocWireVsLogicalStats pins the bug-fix contract of the stats
// split: the logical congest.Stats of a multiproc run are byte-identical to
// the in-process engine's (framing never leaks into them), while the wire
// view reports the strictly larger on-the-wire byte count.
func TestMultiprocWireVsLogicalStats(t *testing.T) {
	tc := equivGraphs(t)[0]
	spec := Spec{Problem: "acyclic", D: tc.d}
	want, err := inProcess(t, tc.g, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range equivShardCounts {
		res := runShards(t, fmt.Sprintf("K=%d", k), tc.g, spec, k)
		if res.Run.Stats != want.Stats {
			t.Errorf("K=%d: logical stats diverged from in-process:\n got  %+v\n want %+v",
				k, res.Run.Stats, want.Stats)
		}
		w := res.Wire
		if w.FramesSent == 0 || w.FramesRecv == 0 || w.BytesSent == 0 || w.BytesRecv == 0 {
			t.Fatalf("K=%d: empty wire stats: %+v", k, w)
		}
		if w.BytesSent < w.FramesSent*transport.HeaderSize {
			t.Errorf("K=%d: %d bytes for %d frames is below header floor", k, w.BytesSent, w.FramesSent)
		}
		logicalBytes := (want.Stats.Bits + 7) / 8
		if w.BytesSent <= logicalBytes {
			t.Errorf("K=%d: wire bytes (%d) must exceed logical payload bytes (%d): framing overhead is real",
				k, w.BytesSent, logicalBytes)
		}
	}
}

// TestMultiprocHeartbeat pins the S7 workload: stats and state checksum of
// the multiproc heartbeat match the single-process twin at every K.
func TestMultiprocHeartbeat(t *testing.T) {
	g, _ := gen.BoundedTreedepth(40, 3, 0.2, 99)
	wantStats, wantSum, err := RunHeartbeatInProcess(g, congest.Options{IDSeed: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range equivShardCounts {
		spec := Spec{Workload: WorkloadHeartbeat, IDSeed: 5}
		res := runShards(t, fmt.Sprintf("heartbeat K=%d", k), g, spec, k)
		if res.Run.Stats != wantStats {
			t.Errorf("K=%d: heartbeat stats diverged:\n got  %+v\n want %+v", k, res.Run.Stats, wantStats)
		}
		if res.Checksum != wantSum {
			t.Errorf("K=%d: heartbeat checksum %#x, in-process %#x", k, res.Checksum, wantSum)
		}
	}
}

// TestMultiprocRoundLimitParity: engine error values and text cross the
// process boundary intact.
func TestMultiprocRoundLimitParity(t *testing.T) {
	tc := equivGraphs(t)[1]
	spec := Spec{Problem: "connected", D: tc.d, RoundLimit: 3}
	_, wantErr := inProcess(t, tc.g, spec)
	if !errors.Is(wantErr, congest.ErrRoundLimit) {
		t.Fatalf("in-process run expected to hit the round limit, got %v", wantErr)
	}
	_, gotErr := Run(tc.g, spec, Options{Shards: 2})
	if !errors.Is(gotErr, congest.ErrRoundLimit) {
		t.Fatalf("multiproc run: want round-limit error, got %v", gotErr)
	}
	if gotErr.Error() != wantErr.Error() {
		t.Errorf("error text diverged:\n got  %q\n want %q", gotErr, wantErr)
	}
}
