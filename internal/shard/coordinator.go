package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/congest"
	"repro/internal/congest/transport"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/protocols"
)

// Options configure a multi-process run.
type Options struct {
	// Shards is the worker count K (vertices are partitioned into K
	// contiguous ranges of size ceil(n/K)). Must be >= 1.
	Shards int
	// Spawn launches the workers; nil means an in-process loopback pair per
	// worker (NewLoopback), which runs the full frame protocol without OS
	// processes.
	Spawn Spawner
	// Tracer observes the run exactly as congest.Options.Tracer does; the
	// coordinator reconstructs the engine's event stream from worker
	// reports. Cannot be combined with active Faults (same restriction the
	// in-process engine's serial path lifts, but across processes the fault
	// stream has frame granularity, so traced fault runs are rejected
	// rather than silently different).
	Tracer congest.Tracer
	// Faults, when non-nil and not Quiet, perturbs inter-shard frames:
	// whole message batches are dropped, delayed, or duplicated by a
	// stateless hash of (seed, round, src, dst). Crash schedules are not
	// supported at this layer.
	Faults *faults.FrameInjector
	// Context cancels the run at round barriers, like
	// congest.Options.Context.
	Context context.Context
}

// Result is a multi-process run outcome: the assembled protocol result
// (bit-identical to protocols.Run's), plus what the transport actually
// carried — the on-wire view the logical congest.Stats deliberately
// excludes.
type Result struct {
	Run *protocols.RunResult
	// Wire aggregates frames and bytes over every worker session,
	// coordinator side (each logical payload is counted once sent and once
	// received by the star topology's relay).
	Wire transport.WireStats
	// Checksum is the heartbeat workload's state digest (zero for protocol
	// runs).
	Checksum uint64
}

// session is the coordinator's handle on one worker.
type session struct {
	r *transport.Reader
	w *transport.Writer
}

// delayedEntry is a fault-deferred batch parked at the coordinator until
// its due round.
type delayedEntry struct {
	due   int
	shard int // receiver shard
	msgs  []transport.Msg
}

// coordinator is the state of one run.
type coordinator struct {
	g     *graph.Graph
	spec  Spec
	opt   Options
	k     int
	n     int
	limit int
	ids   []int
	cfg   protocols.Config

	sess    []*session
	wire    transport.WireStats
	stats   congest.Stats
	inj     *faults.FrameInjector
	delayed []delayedEntry

	haltedCount int
	// halts/events are the current round's merged trace input.
	halts  []int32
	events []transport.Event
}

// Run executes spec on g across opt.Shards worker processes and returns
// the assembled result. For protocol specs the RunResult — verdict,
// counters, outputs, forest — is bit-identical to protocols.Run(g, cfg,
// spec.Options()) at any shard count; errors (validation failures, round
// limit, cancellation) carry the engine's error values and text.
func Run(g *graph.Graph, spec Spec, opt Options) (*Result, error) {
	if opt.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count must be >= 1, got %d", opt.Shards)
	}
	inj := opt.Faults
	if inj != nil && inj.Quiet() {
		inj = nil
	}
	if inj != nil {
		if opt.Tracer != nil {
			return nil, fmt.Errorf("shard: tracing and frame faults cannot be combined")
		}
		if inj.Config().CrashRate > 0 {
			return nil, fmt.Errorf("shard: frame-level faults do not model node crashes (CrashRate must be 0)")
		}
	}
	spec.Trace = opt.Tracer != nil
	cfg, err := buildConfig(spec, g)
	if err != nil {
		return nil, err
	}
	sim, err := congest.NewSimulator(g, spec.Options())
	if err != nil {
		return nil, err
	}
	co := &coordinator{
		g:     g,
		spec:  spec,
		opt:   opt,
		k:     opt.Shards,
		n:     g.NumVertices(),
		limit: spec.RoundLimitRounds(),
		ids:   sim.IDs(),
		cfg:   cfg,
		inj:   inj,
	}

	spawner := opt.Spawn
	if spawner == nil {
		spawner = NewLoopback()
	}
	conns, cleanup, err := spawner.Spawn(co.k)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	run, checksum, err := co.drive(conns)
	if err != nil {
		if run == nil {
			return nil, err
		}
		return &Result{Run: run, Wire: co.wire}, err
	}
	return &Result{Run: run, Wire: co.wire, Checksum: checksum}, nil
}

// drive runs handshake, round loop, and collection over the spawned
// connections. A non-nil RunResult alongside an error mirrors
// protocols.Run's reliable-failure contract.
func (co *coordinator) drive(conns []io.ReadWriteCloser) (*protocols.RunResult, uint64, error) {
	if err := co.handshake(conns); err != nil {
		return nil, 0, err
	}

	bw := co.spec.Options().BandwidthBits(co.n)
	co.stats = congest.Stats{Bandwidth: bw}
	tr := co.opt.Tracer
	if tr != nil {
		tr.RunStart(congest.RunInfo{N: co.n, Edges: co.g.NumEdges(), Bandwidth: bw})
	}
	endTrace := func() {
		if tr != nil {
			tr.RunEnd(co.stats)
			tr = nil
		}
	}

	for round := 0; ; round++ {
		if round > 0 {
			if ctx := co.opt.Context; ctx != nil {
				if err := ctx.Err(); err != nil {
					co.abortAll("canceled")
					endTrace()
					return nil, 0, fmt.Errorf("%w: %w", congest.ErrCanceled, err)
				}
			}
			if round > co.limit {
				co.abortAll("round limit")
				endTrace()
				return nil, 0, fmt.Errorf("%w: %d rounds", congest.ErrRoundLimit, co.limit)
			}
			co.stats.Rounds = round
		}
		if tr != nil {
			tr.RoundStart(round)
		}
		if err := co.stepRound(round); err != nil {
			endTrace()
			return nil, 0, err
		}
		if tr != nil {
			co.emitTrace(tr, round)
			tr.RoundEnd(round, co.n-co.haltedCount, co.haltedCount)
		}
		if co.haltedCount == co.n {
			break
		}
	}

	// End-of-run accounting, exactly like the engine's finish(): delayed
	// copies that can never be delivered are lost.
	for _, d := range co.delayed {
		co.stats.Faults.Lost += int64(len(d.msgs))
	}
	co.delayed = nil
	co.stats.HaltedNodes = co.haltedCount
	endTrace()

	return co.collect()
}

// handshake maps HELLO frames to shard indices, ships CONFIG, and verifies
// every READY digest echo.
func (co *coordinator) handshake(conns []io.ReadWriteCloser) error {
	if len(conns) != co.k {
		return fmt.Errorf("shard: spawner returned %d connections for %d shards", len(conns), co.k)
	}
	specBytes, err := EncodeSpec(co.spec)
	if err != nil {
		return err
	}
	graphBytes, err := EncodeGraph(co.g)
	if err != nil {
		return err
	}
	digest := Digest(specBytes, graphBytes)
	co.sess = make([]*session, co.k)
	for _, conn := range conns {
		s := &session{
			r: transport.NewReader(conn, 0, &co.wire),
			w: transport.NewWriter(conn, &co.wire),
		}
		f, err := s.r.ReadFrame()
		if err != nil {
			return fmt.Errorf("shard: reading HELLO: %w", err)
		}
		if f.Type != transport.TypeHello {
			return fmt.Errorf("shard: expected HELLO, got frame type %d", f.Type)
		}
		hello, err := transport.DecodeHello(f.Payload)
		if err != nil {
			return err
		}
		if hello.Proto != transport.Version {
			return fmt.Errorf("shard: worker speaks protocol %d, coordinator %d", hello.Proto, transport.Version)
		}
		idx := int(hello.Shard)
		if idx < 0 || idx >= co.k {
			return fmt.Errorf("shard: HELLO index %d outside %d shards", idx, co.k)
		}
		if co.sess[idx] != nil {
			return fmt.Errorf("shard: duplicate HELLO for shard %d", idx)
		}
		co.sess[idx] = s
	}
	configPayload := transport.Config{
		Shards:    uint32(co.k),
		ShardSize: uint32((co.n + co.k - 1) / co.k),
		Digest:    digest,
		Spec:      specBytes,
		Graph:     graphBytes,
	}.Encode()
	for i, s := range co.sess {
		if err := s.w.WriteFrame(transport.Frame{Type: transport.TypeConfig, Payload: configPayload}); err != nil {
			return fmt.Errorf("shard: sending CONFIG to shard %d: %w", i, err)
		}
	}
	for i, s := range co.sess {
		f, err := s.r.ReadFrame()
		if err != nil {
			return fmt.Errorf("shard: reading READY from shard %d: %w", i, err)
		}
		if f.Type == transport.TypeAbort {
			return co.abortError(i, f)
		}
		if f.Type != transport.TypeReady {
			return fmt.Errorf("shard: expected READY from shard %d, got frame type %d", i, f.Type)
		}
		ready, err := transport.DecodeReady(f.Payload)
		if err != nil {
			return err
		}
		if ready.Digest != digest {
			return fmt.Errorf("shard: shard %d echoed wrong digest", i)
		}
	}
	return nil
}

// abortError turns a worker ABORT frame into the run error.
func (co *coordinator) abortError(i int, f transport.Frame) error {
	ab, err := transport.DecodeAbort(f.Payload)
	if err != nil {
		return fmt.Errorf("shard: shard %d aborted (unreadable reason: %v)", i, err)
	}
	return fmt.Errorf("shard: shard %d aborted: %s", i, ab.Text)
}

// abortAll broadcasts ABORT, best-effort. Only called when every worker is
// known to be blocked reading (a round barrier), so the writes cannot
// deadlock on unbuffered transports.
func (co *coordinator) abortAll(text string) {
	payload := transport.Abort{Text: text}.Encode()
	for _, s := range co.sess {
		_ = s.w.WriteFrame(transport.Frame{Type: transport.TypeAbort, Payload: payload})
	}
}

// stepRound drives one barrier round: STEP out, BATCH in, fault + merge,
// DELIVER out, REPORT in.
func (co *coordinator) stepRound(round int) error {
	for i, s := range co.sess {
		if err := s.w.WriteFrame(transport.Frame{Type: transport.TypeStep, Round: uint32(round)}); err != nil {
			return fmt.Errorf("shard: sending STEP to shard %d: %w", i, err)
		}
	}
	batches := make([]transport.Batch, co.k)
	for i, s := range co.sess {
		f, err := s.r.ReadFrame()
		if err != nil {
			return fmt.Errorf("shard: reading BATCH from shard %d: %w", i, err)
		}
		if f.Type == transport.TypeAbort {
			return co.abortError(i, f)
		}
		if f.Type != transport.TypeBatch || int(f.Round) != round {
			return fmt.Errorf("shard: expected BATCH(%d) from shard %d, got type %d round %d", round, i, f.Type, f.Round)
		}
		if batches[i], err = transport.DecodeBatch(f.Payload); err != nil {
			return fmt.Errorf("shard: bad BATCH from shard %d: %w", i, err)
		}
	}
	// The engine surfaces the validation failure of the globally lowest
	// sender vertex; per-shard first errors merge by ErrVertex.
	if err := co.firstError(batches); err != nil {
		co.abortAll("sender validation failed")
		return err
	}

	delivers := co.merge(round, batches)
	for t, s := range co.sess {
		if err := s.w.WriteFrame(transport.Frame{
			Type: transport.TypeDeliver, Round: uint32(round), Payload: delivers[t].Encode(),
		}); err != nil {
			return fmt.Errorf("shard: sending DELIVER to shard %d: %w", t, err)
		}
	}

	co.halts = co.halts[:0]
	co.events = co.events[:0]
	for i, s := range co.sess {
		f, err := s.r.ReadFrame()
		if err != nil {
			return fmt.Errorf("shard: reading REPORT from shard %d: %w", i, err)
		}
		if f.Type == transport.TypeAbort {
			return co.abortError(i, f)
		}
		if f.Type != transport.TypeReport || int(f.Round) != round {
			return fmt.Errorf("shard: expected REPORT(%d) from shard %d, got type %d round %d", round, i, f.Type, f.Round)
		}
		rep, err := transport.DecodeReport(f.Payload)
		if err != nil {
			return fmt.Errorf("shard: bad REPORT from shard %d: %w", i, err)
		}
		co.stats.Messages += rep.Messages
		co.stats.Bits += rep.Bits
		if int(rep.MaxMsgBits) > co.stats.MaxMsgBits {
			co.stats.MaxMsgBits = int(rep.MaxMsgBits)
		}
		co.stats.Faults.Lost += rep.Lost
		co.halts = append(co.halts, rep.Halted...)
		co.events = append(co.events, rep.Events...)
	}
	co.haltedCount += len(co.halts)
	return nil
}

// firstError merges per-shard validation failures into the engine's error
// value for the globally lowest sender vertex.
func (co *coordinator) firstError(batches []transport.Batch) error {
	errV := int32(math.MaxInt32)
	var kind uint8
	var text string
	for _, b := range batches {
		if b.ErrKind != transport.BatchOK && b.ErrVertex < errV {
			errV, kind, text = b.ErrVertex, b.ErrKind, b.ErrText
		}
	}
	if errV == math.MaxInt32 {
		return nil
	}
	switch kind {
	case transport.BatchErrTooLarge:
		return rewrap(congest.ErrMessageTooLarge, text)
	case transport.BatchErrBandwidth:
		return rewrap(congest.ErrBandwidthExceeded, text)
	default:
		return errors.New(text)
	}
}

// rewrap rebuilds "<sentinel>: detail" text as an error wrapping the
// sentinel, so errors.Is works across the process boundary and the message
// matches the in-process engine's byte for byte.
func rewrap(sentinel error, text string) error {
	detail := strings.TrimPrefix(text, sentinel.Error())
	return fmt.Errorf("%w%s", sentinel, detail)
}

// merge builds each receiver shard's DELIVER for the round: fault-deferred
// batches due now first, then the round's traffic concatenated over sender
// shards in index order — global sender-vertex order, the same merge the
// in-process engine performs — with frame faults applied to inter-shard
// sub-batches, and same-round duplicate copies appended after normal
// traffic.
func (co *coordinator) merge(round int, batches []transport.Batch) []transport.Deliver {
	delivers := make([]transport.Deliver, co.k)
	if len(co.delayed) > 0 {
		kept := co.delayed[:0]
		for _, d := range co.delayed {
			if d.due == round {
				delivers[d.shard].Delayed = append(delivers[d.shard].Delayed, d.msgs...)
			} else {
				kept = append(kept, d)
			}
		}
		co.delayed = kept
	}
	var dups [][]transport.Msg // same-round duplicate copies, per shard
	for s, b := range batches {
		for t, sub := range b.Sub {
			if t >= co.k || len(sub) == 0 {
				continue
			}
			if co.inj == nil || s == t {
				delivers[t].Msgs = append(delivers[t].Msgs, sub...)
				continue
			}
			plan := co.inj.OnFrame(round, s, t)
			if plan.Dup {
				co.stats.Faults.Duplicated += int64(len(sub))
				co.wire.FramesDup++
				co.wire.MsgsDup += int64(len(sub))
				if plan.DupDelay > 0 {
					co.stats.Faults.Delayed += int64(len(sub))
					co.delayed = append(co.delayed, delayedEntry{due: round + plan.DupDelay, shard: t, msgs: sub})
				} else {
					if dups == nil {
						dups = make([][]transport.Msg, co.k)
					}
					dups[t] = append(dups[t], sub...)
				}
			}
			switch {
			case plan.Drop:
				co.stats.Faults.Dropped += int64(len(sub))
				co.wire.FramesDropped++
				co.wire.MsgsDropped += int64(len(sub))
			case plan.Delay > 0:
				co.stats.Faults.Delayed += int64(len(sub))
				co.wire.FramesDelayed++
				co.wire.MsgsDelayed += int64(len(sub))
				co.delayed = append(co.delayed, delayedEntry{due: round + plan.Delay, shard: t, msgs: sub})
			default:
				delivers[t].Msgs = append(delivers[t].Msgs, sub...)
			}
		}
	}
	for t := range dups {
		delivers[t].Msgs = append(delivers[t].Msgs, dups[t]...)
	}
	return delivers
}

// emitTrace replays the round's receiver-observed events in the engine's
// serial order: ascending sender vertex, each sender's deliveries in
// emission order, a sender's halt right after its deliveries. Keys are
// unique — (From, Seq) per delivery, (vertex, MaxInt32) per halt — so the
// sort fully determines the order.
func (co *coordinator) emitTrace(tr congest.Tracer, round int) {
	type traceEv struct {
		from, seq int32
		halt      bool
		ev        transport.Event
	}
	evs := make([]traceEv, 0, len(co.events)+len(co.halts))
	for _, e := range co.events {
		evs = append(evs, traceEv{from: e.From, seq: e.Seq, ev: e})
	}
	for _, v := range co.halts {
		evs = append(evs, traceEv{from: v, seq: math.MaxInt32, halt: true})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].from != evs[j].from {
			return evs[i].from < evs[j].from
		}
		return evs[i].seq < evs[j].seq
	})
	for _, e := range evs {
		if e.halt {
			tr.NodeHalted(round, co.ids[e.from])
			continue
		}
		tr.Send(congest.SendEvent{
			Round:    round,
			FromID:   co.ids[e.ev.From],
			ToID:     co.ids[e.ev.To],
			Port:     int(e.ev.Port),
			SizeBits: int(e.ev.Bits),
			Kind:     e.ev.Kind,
		})
	}
}

// collect finishes the run: FINISH out, OUTPUTS in, result assembly
// identical to the in-process driver's.
func (co *coordinator) collect() (*protocols.RunResult, uint64, error) {
	for i, s := range co.sess {
		if err := s.w.WriteFrame(transport.Frame{Type: transport.TypeFinish}); err != nil {
			return nil, 0, fmt.Errorf("shard: sending FINISH to shard %d: %w", i, err)
		}
	}
	parts := make([]workerOutputs, co.k)
	for i, s := range co.sess {
		f, err := s.r.ReadFrame()
		if err != nil {
			return nil, 0, fmt.Errorf("shard: reading OUTPUTS from shard %d: %w", i, err)
		}
		if f.Type == transport.TypeAbort {
			return nil, 0, co.abortError(i, f)
		}
		if f.Type != transport.TypeOutputs {
			return nil, 0, fmt.Errorf("shard: expected OUTPUTS from shard %d, got frame type %d", i, f.Type)
		}
		out, err := transport.DecodeOutputs(f.Payload)
		if err != nil {
			return nil, 0, err
		}
		if err := json.Unmarshal(out.Data, &parts[i]); err != nil {
			return nil, 0, fmt.Errorf("shard: bad OUTPUTS from shard %d: %w", i, err)
		}
	}

	if co.spec.Workload == WorkloadHeartbeat {
		var sum uint64
		for _, p := range parts {
			sum += p.Checksum
		}
		return &protocols.RunResult{Stats: co.stats}, sum, nil
	}

	var rel protocols.RelStats
	var firstFail *protocols.UnrecoverableError
	for _, p := range parts {
		rel = rel.Add(p.Rel)
		if p.Fail != nil && firstFail == nil {
			firstFail = p.Fail
		}
	}
	if firstFail != nil {
		// Mirrors protocols.Run: stats and reliability counters, no outputs.
		return &protocols.RunResult{
			Stats:       co.stats,
			Outputs:     make([]protocols.Output, co.n),
			Reliability: rel,
		}, 0, firstFail
	}
	outputs := make([]protocols.Output, 0, co.n)
	for _, p := range parts {
		if p.OutputErr != "" {
			return nil, 0, errors.New(p.OutputErr)
		}
		outputs = append(outputs, p.Outputs...)
	}
	res, err := protocols.AssembleResult(co.g, co.cfg, co.ids, outputs)
	if err != nil {
		return nil, 0, err
	}
	res.Stats = co.stats
	res.Reliability = rel
	return res, 0, nil
}
