package protocols_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
)

// fingerprintRun flattens everything observable about a run — stats, verdict,
// selection, and every per-vertex output — into one comparable string.
func fingerprintRun(res *protocols.RunResult, err error) string {
	if err != nil {
		return "err:" + err.Error()
	}
	s := fmt.Sprintf("stats=%+v td=%v acc=%v found=%v w=%d cnt=%d",
		res.Stats, res.TdExceeded, res.Accepted, res.Found, res.Weight, res.Count)
	if res.Selected != nil {
		s += " sel=" + res.Selected.String()
	}
	if res.SelectedEdges != nil {
		s += " seledges=" + res.SelectedEdges.String()
	}
	for v, out := range res.Outputs {
		s += fmt.Sprintf(" [%d]=p%d,f%d,a%v,s%v,e%v", v, out.ParentID, out.Failure, out.Accepted, out.Selected, out.SelectedEdges)
	}
	return s
}

// TestSharedCacheMatchesPrivate: distributed runs evaluating through handles
// of one process-lifetime Shared cache must be bit-identical to runs with
// per-node private caches, in both execution modes, including warm repeats
// against the already-populated cache.
func TestSharedCacheMatchesPrivate(t *testing.T) {
	type scenario struct {
		name string
		cfg  protocols.Config
	}
	scenarios := []scenario{
		{"decide-acyclic", protocols.Config{Pred: predicates.Acyclicity{}, Mode: protocols.ModeDecide, D: 3}},
		{"opt-mis", protocols.Config{Pred: predicates.IndependentSet{}, Mode: protocols.ModeOptimize, Maximize: true, D: 3}},
		{"count-matchings", protocols.Config{Pred: predicates.Matching{Perfect: true}, Mode: protocols.ModeCount, D: 3}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			shared := regular.NewShared(sc.cfg.Pred)
			for _, parallel := range []bool{false, true} {
				for rep := 0; rep < 2; rep++ {
					for i := 0; i < 3; i++ {
						g, _ := gen.BoundedTreedepth(10+4*i, 3, 0.4, int64(7000+i))
						gen.AssignRandomWeights(g, 9, int64(8000+i))
						opts := congest.Options{IDSeed: int64(0xACE + i), Parallel: parallel, Workers: 3}
						want := fingerprintRun(protocols.Run(g, sc.cfg, opts))
						cachedCfg := sc.cfg
						cachedCfg.Cache = shared
						got := fingerprintRun(protocols.Run(g, cachedCfg, opts))
						if got != want {
							t.Fatalf("parallel=%v rep=%d graph=%d: shared-cache run diverged\n  shared:  %s\n  private: %s",
								parallel, rep, i, got, want)
						}
					}
				}
			}
			st := shared.Stats()
			if st.ComposeHits+st.AcceptHits+st.SelectionHits+st.DecodeHits == 0 {
				t.Fatalf("warm repeats produced no cross-request hits: %+v", st)
			}
		})
	}
}

// TestSharedCachePredicateMismatch: a shared cache wrapping a different
// predicate than the run's must be rejected up front, not silently mix
// class universes.
func TestSharedCachePredicateMismatch(t *testing.T) {
	g := gen.Path(6)
	shared := regular.NewShared(predicates.Connectivity{})
	cfg := protocols.Config{Pred: predicates.Acyclicity{}, Mode: protocols.ModeDecide, D: 3, Cache: shared}
	_, err := protocols.Run(g, cfg, congest.Options{})
	if !errors.Is(err, protocols.ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol for predicate mismatch", err)
	}
}
