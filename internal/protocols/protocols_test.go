package protocols_test

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/mso"
	"repro/internal/mso/msolib"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
)

func opts(seed int64) congest.Options {
	return congest.Options{IDSeed: seed}
}

func TestElimTreeValidOnBoundedTreedepth(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	for trial := 0; trial < 12; trial++ {
		n := 4 + r.Intn(30)
		d := 2 + r.Intn(2)
		g, _ := gen.BoundedTreedepth(n, d, 0.5, r.Int63())
		res, err := protocols.Decide(g, d, predicates.Acyclicity{}, opts(r.Int63()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.TdExceeded {
			t.Fatalf("trial %d: unexpected treedepth report (td <= %d by construction)", trial, d)
		}
		if err := res.Forest.VerifyElimination(g); err != nil {
			t.Fatalf("trial %d: protocol tree invalid: %v", trial, err)
		}
		if depth := res.Forest.Depth(); depth > 1<<uint(d) {
			t.Fatalf("trial %d: tree depth %d > 2^%d", trial, depth, d)
		}
		// Lemma 5.3: every node's bag must be itself plus its ancestors.
		for v, out := range res.Outputs {
			if out.Depth != res.Forest.DepthOf(v) {
				t.Fatalf("trial %d: node %d depth %d != forest depth %d", trial, v, out.Depth, res.Forest.DepthOf(v))
			}
			if len(out.Bag) != out.Depth {
				t.Fatalf("trial %d: node %d bag size %d != depth %d", trial, v, len(out.Bag), out.Depth)
			}
		}
	}
}

func TestTdExceededReported(t *testing.T) {
	// td(P40) = 6 > 2, so d = 2 must be reported as exceeded.
	g := gen.Path(40)
	res, err := protocols.Decide(g, 2, predicates.Acyclicity{}, opts(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.TdExceeded {
		t.Fatal("expected large-treedepth report for P40 with d=2")
	}
	// With d = 6 it must succeed.
	res, err = protocols.Decide(g, 6, predicates.Acyclicity{}, opts(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.TdExceeded {
		t.Fatal("d=6 suffices for P40")
	}
	if !res.Accepted {
		t.Fatal("P40 is acyclic")
	}
}

func TestDistributedDecisionMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(402))
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(14)
		d := 2 + r.Intn(2)
		g, _ := gen.BoundedTreedepth(n, d, 0.6, r.Int63())
		res, err := protocols.Decide(g, d, predicates.Acyclicity{}, opts(r.Int63()))
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.NewEvaluator(g).Eval(msolib.Acyclic(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.TdExceeded || res.Accepted != want {
			t.Fatalf("trial %d: distributed acyclic = %v (td %v), oracle %v", trial, res.Accepted, res.TdExceeded, want)
		}
	}
}

func TestDistributedThreeColorability(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"C5", gen.Cycle(5), true},
		{"K4", gen.Complete(4), false},
		{"K5", gen.Complete(5), false},
		{"grid", gen.Grid(3, 3), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := protocols.Decide(tc.g, 5, predicates.KColorability{K: 3}, opts(11))
			if err != nil {
				t.Fatal(err)
			}
			if res.TdExceeded {
				t.Fatal("unexpected treedepth report")
			}
			if res.Accepted != tc.want {
				t.Fatalf("3-colorable = %v, want %v", res.Accepted, tc.want)
			}
		})
	}
}

func TestDistributedOptimizationMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(403))
	for trial := 0; trial < 8; trial++ {
		n := 4 + r.Intn(8)
		d := 2
		g, _ := gen.BoundedTreedepth(n, d, 0.6, r.Int63())
		gen.AssignRandomWeights(g, 10, r.Int63())

		// Maximum independent set.
		res, err := protocols.Optimize(g, d, predicates.IndependentSet{}, true, opts(r.Int63()))
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.NewEvaluator(g).OptimizeSet(msolib.IndependentSet(), msolib.FreeSet, mso.KindVertexSet, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.TdExceeded || !res.Found || res.Weight != want.Weight {
			t.Fatalf("trial %d: MaxIS dist=%d oracle=%d (td %v)", trial, res.Weight, want.Weight, res.TdExceeded)
		}
		// The distributed selection must be an actual optimal independent set.
		okSel, err := mso.NewEvaluator(g).Eval(msolib.IndependentSet(),
			mso.Assignment{msolib.FreeSet: mso.VertexSetValue(res.Selected)})
		if err != nil {
			t.Fatal(err)
		}
		var selWeight int64
		res.Selected.ForEach(func(v int) { selWeight += g.VertexWeight(v) })
		if !okSel || selWeight != want.Weight {
			t.Fatalf("trial %d: selected set invalid (ok=%v weight=%d want=%d)", trial, okSel, selWeight, want.Weight)
		}
	}
}

func TestDistributedMST(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 6; trial++ {
		n := 4 + r.Intn(6)
		g, _ := gen.BoundedTreedepth(n, 2, 0.7, r.Int63())
		gen.AssignRandomWeights(g, 20, r.Int63())
		res, err := protocols.Optimize(g, 2, predicates.SpanningTree{}, false, opts(r.Int63()))
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.NewEvaluator(g).OptimizeSet(msolib.SpanningTree(), msolib.FreeSet, mso.KindEdgeSet, false)
		if err != nil {
			t.Fatal(err)
		}
		if res.TdExceeded || !res.Found || res.Weight != want.Weight {
			t.Fatalf("trial %d: MST dist=%d oracle=%d", trial, res.Weight, want.Weight)
		}
		// Check the selected edges form a spanning tree of the right weight.
		if res.SelectedEdges.Count() != n-1 {
			t.Fatalf("trial %d: MST has %d edges, want %d", trial, res.SelectedEdges.Count(), n-1)
		}
		var w int64
		res.SelectedEdges.ForEach(func(e int) { w += g.EdgeWeight(e) })
		if w != want.Weight {
			t.Fatalf("trial %d: selected edges weigh %d, want %d", trial, w, want.Weight)
		}
		sub := graph.New(n)
		res.SelectedEdges.ForEach(func(e int) {
			edge := g.Edge(e)
			sub.MustAddEdge(edge.U, edge.V)
		})
		if !sub.IsConnected() {
			t.Fatalf("trial %d: selected edges not spanning", trial)
		}
	}
}

func TestDistributedCounting(t *testing.T) {
	r := rand.New(rand.NewSource(405))
	for trial := 0; trial < 8; trial++ {
		n := 4 + r.Intn(10)
		g, _ := gen.BoundedTreedepth(n, 3, 0.7, r.Int63())
		res, err := protocols.Count(g, 3, predicates.Triangles{}, opts(r.Int63()))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					if g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(a, c) {
						want++
					}
				}
			}
		}
		if res.TdExceeded || res.Count != want {
			t.Fatalf("trial %d: triangles = %d, want %d", trial, res.Count, want)
		}
	}
}

func TestDistributedCheckMarked(t *testing.T) {
	// P4 unit weights, MaxIS weight 2.
	base := gen.Path(4)
	for v := 0; v < 4; v++ {
		base.SetVertexWeight(v, 1)
	}
	mark := func(vs ...int) *graph.Graph {
		g := base.Clone()
		for _, v := range vs {
			g.SetVertexLabel(protocols.MarkLabel, v)
		}
		return g
	}
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"optimal {0,2}", mark(0, 2), true},
		{"optimal {1,3}", mark(1, 3), true},
		{"suboptimal {0}", mark(0), false},
		{"invalid {0,1}", mark(0, 1), false},
		{"empty", mark(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := protocols.CheckMarked(tc.g, 3, predicates.IndependentSet{}, true, opts(5))
			if err != nil {
				t.Fatal(err)
			}
			if res.TdExceeded {
				t.Fatal("unexpected treedepth report")
			}
			if res.Accepted != tc.want {
				t.Fatalf("CheckMarked = %v, want %v", res.Accepted, tc.want)
			}
		})
	}
}

func TestDistributedCheckMarkedMST(t *testing.T) {
	g := gen.Cycle(4)
	for _, e := range g.Edges() {
		g.SetEdgeWeight(e.ID, 1)
	}
	heavy, _ := g.EdgeBetween(3, 0)
	g.SetEdgeWeight(heavy, 50)
	// Mark the three light edges: an MST.
	good := g.Clone()
	for _, e := range g.Edges() {
		if e.ID != heavy {
			good.SetEdgeLabel(protocols.MarkLabel, e.ID)
		}
	}
	res, err := protocols.CheckMarked(good, 3, predicates.SpanningTree{}, false, opts(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("light spanning tree should verify as minimal")
	}
	// Mark a spanning tree including the heavy edge: valid but not minimal.
	bad := g.Clone()
	count := 0
	for _, e := range bad.Edges() {
		if count < 2 && e.ID != heavy {
			bad.SetEdgeLabel(protocols.MarkLabel, e.ID)
			count++
		}
	}
	bad.SetEdgeLabel(protocols.MarkLabel, heavy)
	res, err = protocols.CheckMarked(bad, 3, predicates.SpanningTree{}, false, opts(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("heavy spanning tree is not minimal")
	}
}

func TestDistributedMatchesSequentialAcrossSeeds(t *testing.T) {
	// Adversarial ID assignments must not change results.
	g, _ := gen.BoundedTreedepth(14, 3, 0.5, 99)
	gen.AssignRandomWeights(g, 10, 100)
	f := treedepth.DFSForest(g)
	run, err := seq.New(g, f, predicates.VertexCover{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := run.Optimize(false)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		res, err := protocols.Optimize(g, 3, predicates.VertexCover{}, false, opts(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.TdExceeded || res.Weight != want.Weight {
			t.Fatalf("seed %d: dist=%d seq=%d", seed, res.Weight, want.Weight)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	g := gen.Path(3)
	if _, err := protocols.Run(g, protocols.Config{Pred: predicates.Acyclicity{}, Mode: protocols.ModeDecide, D: 0}, opts(1)); err == nil {
		t.Fatal("d = 0 should be rejected")
	}
}

func TestStatsWithinBandwidth(t *testing.T) {
	g, _ := gen.BoundedTreedepth(24, 3, 0.4, 17)
	res, err := protocols.Decide(g, 3, predicates.Acyclicity{}, opts(17))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxMsgBits > res.Stats.Bandwidth {
		t.Fatalf("message of %d bits exceeded the %d-bit budget", res.Stats.MaxMsgBits, res.Stats.Bandwidth)
	}
	if res.Stats.Rounds == 0 || res.Stats.Messages == 0 {
		t.Fatal("stats should be populated")
	}
}

func TestSingleVertex(t *testing.T) {
	g := graph.New(1)
	res, err := protocols.Decide(g, 1, predicates.Acyclicity{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TdExceeded || !res.Accepted {
		t.Fatalf("single vertex: %+v", res)
	}
}
