package protocols

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/regular"
	"repro/internal/wterm"
)

// handle dispatches one complete logical message in the event-driven phases.
func (n *dpNode) handle(port int, msg []byte) error {
	r := &wireReader{buf: msg}
	tag, err := r.u8()
	if err != nil {
		return err
	}
	switch tag {
	case tagBag:
		return n.handleBagMsg(r)
	case tagBagPeer:
		return n.handleBagPeer(port, r)
	case tagTable:
		return n.handleTable(port, r)
	case tagVerdict:
		return n.handleVerdict(r)
	case tagTarget:
		return n.handleTarget(r)
	default:
		return fmt.Errorf("%w: unknown tag %d", ErrProtocol, tag)
	}
}

// progress advances the event-driven state machine when its preconditions
// become true.
func (n *dpNode) progress() {
	if n.phase != phaseBags && n.phase != phaseUp {
		return
	}
	if n.phase == phaseBags {
		if !n.haveBag || n.peerBags < n.env.Degree {
			return
		}
		// Elimination-forest verification: every neighbor must be an
		// ancestor (in our bag) or a descendant (we are in its bag).
		if n.peerFail > 0 {
			n.fail(n.peerFail)
		}
		for _, nid := range n.mustBeAncestor {
			if !containsSorted(n.bag, nid) {
				n.fail(failInvalid)
			}
		}
		if n.failure == 0 {
			if err := n.buildBaseTables(); err != nil {
				n.fail(failInvalid)
			}
		}
		n.phase = phaseUp
	}
	n.tryFoldAndSend()
}

// ownerRank is this node's terminal rank within its (sorted) bag.
func (n *dpNode) ownerRank() int { return sort.SearchInts(n.bag, n.env.ID) }

// baseGraph materializes this node's edge-owned base graph from purely local
// knowledge: the bag (IDs, weights, labels) received from the parent and the
// node's own incident edges into the bag.
func (n *dpNode) baseGraph() (*wterm.TerminalGraph, error) {
	k := len(n.bag)
	local := graph.New(k)
	for i := range n.bag {
		info := n.bagInfo[i]
		local.SetVertexWeight(i, info.weight)
		for bit, name := range n.cfg.VertexLabelNames {
			if info.labels&(1<<uint(bit)) != 0 {
				local.SetVertexLabel(name, i)
			}
		}
	}
	own := n.ownerRank()
	for port, nid := range n.env.NeighborIDs {
		i := sort.SearchInts(n.bag, nid)
		if i >= len(n.bag) || n.bag[i] != nid {
			continue // not an ancestor: the edge is owned elsewhere
		}
		id, err := local.AddEdge(own, i)
		if err != nil {
			return nil, err
		}
		local.SetEdgeWeight(id, n.env.PortWeight[port])
		for _, name := range n.cfg.EdgeLabelNames {
			if n.env.PortLabels[port][name] {
				local.SetEdgeLabel(name, id)
			}
		}
	}
	terms := make([]int, k)
	for i := range terms {
		terms[i] = i
	}
	return &wterm.TerminalGraph{G: local, Terminals: terms, Orig: append([]int(nil), n.bag...)}, nil
}

// buildBaseTables initializes the DP tables from the base graph. This is
// also where the node's DP cache is born: a handle on the run-spanning
// shared cache when Config.Cache is set, a private instance otherwise.
// Either way every memo stays computation-local, so the protocol's round
// count and wire bytes are untouched by caching.
func (n *dpNode) buildBaseTables() error {
	base, err := n.baseGraph()
	if err != nil {
		return err
	}
	if n.cfg.Cache != nil {
		n.cache = n.cfg.Cache.Handle()
	} else {
		n.cache = regular.NewCached(n.cfg.Pred)
	}
	switch n.cfg.Mode {
	case ModeDecide:
		n.finalDecide, err = n.cache.BaseDenseSet(base)
	case ModeOptimize:
		n.finalOpt, err = n.cache.BaseDenseOpt(base, n.ownerRank(), n.cfg.Maximize)
	case ModeCount:
		n.finalCount, err = n.cache.BaseDenseCount(base)
	case ModeCheckMarked:
		n.finalOpt, err = n.cache.BaseDenseOpt(base, n.ownerRank(), n.cfg.Maximize)
		if err != nil {
			return err
		}
		marked, err := n.markedBaseClassSet(base)
		if err != nil {
			return err
		}
		n.finalMarked = n.cache.InternClassSet(marked)
		n.markedWeight = n.localMarkedWeight(base)
	default:
		return fmt.Errorf("%w: unknown mode %d", ErrProtocol, n.cfg.Mode)
	}
	return err
}

// markedBaseClassSet filters base classes to those whose selection matches
// the marked set on the elements owned by this node.
func (n *dpNode) markedBaseClassSet(base *wterm.TerminalGraph) (regular.ClassSet, error) {
	pred := n.cfg.Pred
	classes, err := pred.HomBase(base)
	if err != nil {
		return nil, err
	}
	own := n.ownerRank()
	out := make(regular.ClassSet)
	switch pred.SetKind() {
	case regular.SetVertex:
		wantBit := uint64(0)
		if n.env.Labels[MarkLabel] {
			wantBit = 1 << uint(own)
		}
		for _, bc := range classes {
			if bc.Sel.VertexMask&(1<<uint(own)) == wantBit {
				out[bc.Class.Key()] = bc.Class
			}
		}
	case regular.SetEdge:
		want := n.markedOwnedPairs()
		for _, bc := range classes {
			got := regular.NormalizeEdgePairs(append([][2]int(nil), bc.Sel.EdgePairs...))
			if pairsEqual(got, want) {
				out[bc.Class.Key()] = bc.Class
			}
		}
	default:
		return nil, fmt.Errorf("%w: CheckMarked needs a predicate with a free set variable", ErrProtocol)
	}
	return out, nil
}

// markedOwnedPairs lists this node's owned edges carrying the mark label, as
// terminal rank pairs.
func (n *dpNode) markedOwnedPairs() [][2]int {
	own := n.ownerRank()
	var pairs [][2]int
	for port, nid := range n.env.NeighborIDs {
		i := sort.SearchInts(n.bag, nid)
		if i >= len(n.bag) || n.bag[i] != nid {
			continue
		}
		if n.env.PortLabels[port][MarkLabel] {
			lo, hi := own, i
			if lo > hi {
				lo, hi = hi, lo
			}
			pairs = append(pairs, [2]int{lo, hi})
		}
	}
	return regular.NormalizeEdgePairs(pairs)
}

func pairsEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// localMarkedWeight is the marked weight owned by this node.
func (n *dpNode) localMarkedWeight(base *wterm.TerminalGraph) int64 {
	switch n.cfg.Pred.SetKind() {
	case regular.SetVertex:
		if n.env.Labels[MarkLabel] {
			return n.env.Weight
		}
	case regular.SetEdge:
		var total int64
		for port, nid := range n.env.NeighborIDs {
			if containsSorted(n.bag, nid) && n.env.PortLabels[port][MarkLabel] {
				total += n.env.PortWeight[port]
			}
		}
		return total
	}
	return 0
}

// handleTable stores a child's table in its childIDs-aligned slot; folding
// happens in progress once all children have reported. A table from a
// neighbor that is not a child (possible only under corrupted traffic) is
// ignored; a duplicate overwrites its slot without re-counting.
func (n *dpNode) handleTable(port int, r *wireReader) error {
	status, err := r.u8()
	if err != nil {
		return err
	}
	markedEntries, err := readEntries(r)
	if err != nil {
		return err
	}
	entries, err := readEntries(r)
	if err != nil {
		return err
	}
	weight, err := r.i64()
	if err != nil {
		return err
	}
	childID := n.env.NeighborIDs[port]
	i := sort.SearchInts(n.childIDs, childID)
	if i >= len(n.childIDs) || n.childIDs[i] != childID {
		return nil
	}
	n.childTables[i] = childTable{
		failure: int(status),
		entries: entries,
		marked:  markedEntries,
		weight:  weight,
	}
	if !n.tableGot[i] {
		n.tableGot[i] = true
		n.tablesGot++
	}
	return nil
}

// readEntries decodes one table. Entry keys alias the message buffer (a
// fresh allocation handed over by ByteStreamReceiver.Pop) instead of being
// copied one by one — with thousands of nodes each receiving tables with
// hundreds of entries, the per-entry copies dominated the DP phase's
// allocation profile.
func readEntries(r *wireReader) ([]tableEntry, error) {
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := make([]tableEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		key, err := r.bytesView()
		if err != nil {
			return nil, err
		}
		value, err := r.i64()
		if err != nil {
			return nil, err
		}
		out = append(out, tableEntry{key: key, value: value})
	}
	return out, nil
}

func writeEntries(w *wireWriter, entries []tableEntry) {
	w.u32(uint32(len(entries)))
	for _, e := range entries {
		w.bytes(e.key)
		w.i64(e.value)
	}
}

// tryFoldAndSend folds all children (once they have all reported) and sends
// the node's table to its parent, or — at the root — computes the verdict
// and starts the downward phase.
func (n *dpNode) tryFoldAndSend() {
	if n.phase != phaseUp || n.sentUp {
		return
	}
	if n.tablesGot < len(n.childIDs) {
		return
	}
	if n.failure == 0 {
		if err := n.foldChildren(); err != nil {
			n.fail(failInvalid)
		}
	}
	n.sentUp = true
	if n.parentID < 0 {
		n.rootFinish()
		return
	}
	// Serialize the table to the parent.
	n.env.Tag(KindTable)
	var w wireWriter
	w.u8(tagTable)
	w.u8(uint8(n.failure))
	if n.failure != 0 {
		writeEntries(&w, nil)
		writeEntries(&w, nil)
		w.i64(0)
	} else {
		n.writeMarkedEntries(&w)
		n.writeMainEntries(&w)
		w.i64(n.markedWeight)
	}
	n.send[n.parentPort].Push(w.buf)
	if n.cfg.Mode == ModeOptimize {
		n.phase = phaseDown // wait for the target class
	} else {
		n.phase = phaseDown // wait for the verdict
	}
}

// Tables cross the wire in canonical (key-sorted) entry order. Dense tables
// already hold their IDs in that order, so serialization is a straight walk
// directly from the interner's key strings onto the wire — same bytes as
// the historical entry-list assembly (u32 count, then per entry
// length-prefixed key + i64 value), without materializing a []byte copy of
// every key first.

func (n *dpNode) writeMarkedEntries(w *wireWriter) {
	if n.cfg.Mode != ModeCheckMarked {
		w.u32(0)
		return
	}
	w.u32(uint32(len(n.finalMarked.IDs)))
	for _, id := range n.finalMarked.IDs {
		w.str(n.cache.KeyOf(id))
		w.i64(0)
	}
}

func (n *dpNode) writeMainEntries(w *wireWriter) {
	switch n.cfg.Mode {
	case ModeDecide:
		w.u32(uint32(len(n.finalDecide.IDs)))
		for _, id := range n.finalDecide.IDs {
			w.str(n.cache.KeyOf(id))
			w.i64(0)
		}
	case ModeOptimize, ModeCheckMarked:
		w.u32(uint32(len(n.finalOpt.IDs)))
		for i, id := range n.finalOpt.IDs {
			w.str(n.cache.KeyOf(id))
			w.i64(n.finalOpt.Weights[i])
		}
	case ModeCount:
		w.u32(uint32(len(n.finalCount.IDs)))
		for i, id := range n.finalCount.IDs {
			w.str(n.cache.KeyOf(id))
			w.i64(n.finalCount.Counts[i])
		}
	default:
		w.u32(0)
	}
}

// foldChildren folds every child's table into this node's, in increasing
// child-ID order (Lemma 4.3 / 4.6 / the counting analogue). All folds run on
// the node's cached dense algebra; iteration order is canonical, so verdicts,
// weights, and tie-breaking match the uncached map folds exactly.
func (n *dpNode) foldChildren() error {
	for ci, childID := range n.childIDs {
		ct := n.childTables[ci]
		if ct.failure != 0 {
			n.fail(ct.failure)
			return nil
		}
		childBag := insertSorted(n.bag, childID)
		glue, err := wterm.GluingFromBags(n.bag, childBag, n.bag)
		if err != nil {
			return err
		}
		g := n.cache.InternGluing(glue)
		switch n.cfg.Mode {
		case ModeDecide:
			child, err := n.decodeDenseSet(ct.entries)
			if err != nil {
				return err
			}
			n.finalDecide, err = n.cache.FoldDecideDense(g, n.finalDecide, child)
			if err != nil {
				return err
			}
		case ModeOptimize:
			child, err := n.decodeDenseOpt(ct.entries)
			if err != nil {
				return err
			}
			var back map[regular.ClassID]regular.DenseBack
			n.finalOpt, back, err = n.cache.FoldOptDense(g, n.finalOpt, child, n.cfg.Maximize)
			if err != nil {
				return err
			}
			n.stages = append(n.stages, upStage{childID: childID, back: back})
		case ModeCount:
			child, err := n.decodeDenseCount(ct.entries)
			if err != nil {
				return err
			}
			n.finalCount, err = n.cache.FoldCountDense(g, n.finalCount, child)
			if err != nil {
				return err
			}
		case ModeCheckMarked:
			childMarked, err := n.decodeDenseSet(ct.marked)
			if err != nil {
				return err
			}
			n.finalMarked, err = n.cache.FoldDecideDense(g, n.finalMarked, childMarked)
			if err != nil {
				return err
			}
			childOpt, err := n.decodeDenseOpt(ct.entries)
			if err != nil {
				return err
			}
			n.finalOpt, _, err = n.cache.FoldOptDense(g, n.finalOpt, childOpt, n.cfg.Maximize)
			if err != nil {
				return err
			}
			n.markedWeight += ct.weight
		}
	}
	return nil
}

func insertSorted(xs []int, v int) []int {
	out := make([]int, 0, len(xs)+1)
	pos := sort.SearchInts(xs, v)
	out = append(out, xs[:pos]...)
	out = append(out, v)
	out = append(out, xs[pos:]...)
	return out
}

// decodeWire interns every wire entry in received order. Honest senders emit
// canonical (key-sorted, duplicate-free) entries, so the ID list is already
// canonical for our interner too (both orders are the lexicographic key
// order) — one InternWire per entry and no sorting. A violation means a
// corrupted or malformed message; legacy map decoding collapsed those
// silently (last duplicate wins, order recomputed), so we restore exactly
// those semantics before returning.
func (n *dpNode) decodeWire(entries []tableEntry) ([]regular.ClassID, []int64, error) {
	ids := make([]regular.ClassID, 0, len(entries))
	vals := make([]int64, 0, len(entries))
	canonical := true
	for i, e := range entries {
		id, err := n.cache.InternWire(e.key)
		if err != nil {
			return nil, nil, err
		}
		if i > 0 && n.cache.KeyOf(ids[len(ids)-1]) >= n.cache.KeyOf(id) {
			canonical = false
		}
		ids = append(ids, id)
		vals = append(vals, e.value)
	}
	if canonical {
		return ids, vals, nil
	}
	// Map semantics: last occurrence of a key wins, then canonical order.
	byID := make(map[regular.ClassID]int64, len(ids))
	uniq := ids[:0]
	for i, id := range ids {
		if _, seen := byID[id]; !seen {
			uniq = append(uniq, id)
		}
		byID[id] = vals[i]
	}
	n.cache.SortCanonical(uniq)
	vals = vals[:0]
	for _, id := range uniq {
		vals = append(vals, byID[id])
	}
	return uniq, vals, nil
}

func (n *dpNode) decodeDenseSet(entries []tableEntry) (regular.DenseSet, error) {
	ids, _, err := n.decodeWire(entries)
	if err != nil {
		return regular.DenseSet{}, err
	}
	return regular.DenseSet{IDs: ids}, nil
}

func (n *dpNode) decodeDenseOpt(entries []tableEntry) (regular.DenseOpt, error) {
	ids, vals, err := n.decodeWire(entries)
	if err != nil {
		return regular.DenseOpt{}, err
	}
	return regular.DenseOpt{IDs: ids, Weights: vals}, nil
}

func (n *dpNode) decodeDenseCount(entries []tableEntry) (regular.DenseCount, error) {
	ids, vals, err := n.decodeWire(entries)
	if err != nil {
		return regular.DenseCount{}, err
	}
	return regular.DenseCount{IDs: ids, Counts: vals}, nil
}

// --- root verdict and downward phase ---

func (n *dpNode) rootFinish() {
	n.out.IsRoot = true
	switch n.cfg.Mode {
	case ModeDecide:
		accepted := false
		if n.failure == 0 {
			var err error
			accepted, err = n.cache.AnyAcceptingDense(n.finalDecide)
			if err != nil {
				n.fail(failInvalid)
			}
		}
		n.out.Accepted = accepted && n.failure == 0
		n.broadcastVerdict()
	case ModeCount:
		var total int64
		if n.failure == 0 {
			var err error
			total, err = n.cache.TotalAcceptingDense(n.finalCount)
			if err != nil {
				n.fail(failInvalid)
			}
		}
		n.out.Count = total
		n.broadcastVerdict()
	case ModeCheckMarked:
		accepted := false
		if n.failure == 0 {
			okMarked, err := n.cache.AnyAcceptingDense(n.finalMarked)
			if err != nil {
				n.fail(failInvalid)
			}
			_, bestW, found, err := n.cache.BestAcceptingDense(n.finalOpt, n.cfg.Maximize)
			if err != nil {
				n.fail(failInvalid)
			}
			accepted = okMarked && found && bestW == n.markedWeight
		}
		n.out.Accepted = accepted && n.failure == 0
		n.broadcastVerdict()
	case ModeOptimize:
		if n.failure != 0 {
			n.broadcastVerdict()
			return
		}
		bestID, bestW, found, err := n.cache.BestAcceptingDense(n.finalOpt, n.cfg.Maximize)
		if err != nil {
			n.fail(failInvalid)
			n.broadcastVerdict()
			return
		}
		n.out.Found = found
		n.out.Weight = bestW
		if !found {
			n.broadcastVerdict()
			return
		}
		n.applyTarget(bestID)
	}
}

func (n *dpNode) broadcastVerdict() {
	n.env.Tag(KindVerdict)
	var w wireWriter
	w.u8(tagVerdict)
	w.u8(uint8(n.failure))
	if n.out.Accepted {
		w.u8(1)
	} else {
		w.u8(0)
	}
	if n.out.Found {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.i64(n.out.Count)
	for i := range n.childIDs {
		n.send[n.childPorts[i]].Push(w.buf)
	}
	n.phase = phaseDone
}

func (n *dpNode) handleVerdict(r *wireReader) error {
	status, err := r.u8()
	if err != nil {
		return err
	}
	accepted, err := r.u8()
	if err != nil {
		return err
	}
	found, err := r.u8()
	if err != nil {
		return err
	}
	count, err := r.i64()
	if err != nil {
		return err
	}
	n.fail(int(status))
	n.out.Accepted = accepted != 0
	n.out.Found = found != 0
	n.out.Count = count
	n.broadcastVerdict() // forward down and finish
	return nil
}

// applyTarget installs this node's target class, marks its owned selection,
// and forwards per-child targets computed by walking the fold stages back.
// Targets still cross the wire as class keys (the canonical encoding); the
// dense back-pointer walk happens on interned IDs.
func (n *dpNode) applyTarget(id regular.ClassID) {
	if !denseOptHas(n.finalOpt, id) {
		n.fail(failInvalid)
		n.broadcastVerdict()
		return
	}
	sel, err := n.cache.SelectionID(id)
	if err != nil {
		n.fail(failInvalid)
		n.broadcastVerdict()
		return
	}
	own := n.ownerRank()
	switch n.cfg.Pred.SetKind() {
	case regular.SetVertex:
		n.out.Selected = sel.VertexMask&(1<<uint(own)) != 0
	case regular.SetEdge:
		for _, pair := range sel.EdgePairs {
			other := pair[0]
			if other == own {
				other = pair[1]
			}
			if other != own {
				n.out.SelectedEdges = append(n.out.SelectedEdges, n.bag[other])
			}
		}
		sort.Ints(n.out.SelectedEdges)
	}
	// Walk stages backwards to find each child's target class.
	cur := id
	targets := make(map[int]string, len(n.stages))
	for s := len(n.stages) - 1; s >= 0; s-- {
		st := n.stages[s]
		b, ok := st.back[cur]
		if !ok {
			n.fail(failInvalid)
			n.broadcastVerdict()
			return
		}
		targets[st.childID] = n.cache.KeyOf(b.Child)
		cur = b.Acc
	}
	n.env.Tag(KindTarget)
	for i, childID := range n.childIDs {
		var w wireWriter
		w.u8(tagTarget)
		w.u8(uint8(n.failure))
		w.str(targets[childID])
		n.send[n.childPorts[i]].Push(w.buf)
	}
	n.phase = phaseDone
}

// denseOptHas reports whether the OPT table carries an entry for id.
func denseOptHas(t regular.DenseOpt, id regular.ClassID) bool {
	for _, x := range t.IDs {
		if x == id {
			return true
		}
	}
	return false
}

func (n *dpNode) handleTarget(r *wireReader) error {
	status, err := r.u8()
	if err != nil {
		return err
	}
	key, err := r.bytes()
	if err != nil {
		return err
	}
	if status != failNone {
		n.fail(int(status))
		n.broadcastVerdict()
		return nil
	}
	if n.cache == nil {
		// A target reached a node that never built tables (possible only
		// under corrupted traffic): protocol violation.
		n.fail(failInvalid)
		n.broadcastVerdict()
		return nil
	}
	// The target is one of our table's classes, so its key is already
	// interned; an unknown key is a protocol violation, reported by the
	// denseOptHas check inside applyTarget.
	id, ok := n.cache.LookupKey(string(key))
	if !ok {
		n.fail(failInvalid)
		n.broadcastVerdict()
		return nil
	}
	n.applyTarget(id)
	return nil
}
