package protocols

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/congest"
)

// This file implements reliable delivery over a faulty CONGEST network: a
// protocol adapter that wraps any congest.Node and restores the
// round-synchronous, loss-free semantics the wrapped protocol assumes, on
// top of a network that drops, duplicates, reorders, and loses messages to
// crash-restart outages (see internal/faults).
//
// The construction is a synchronizer over per-edge ARQ links:
//
//   - Record layer (round synchronization). The inner node runs in virtual
//     rounds. For every virtual round vr and every port, the adapter emits a
//     record — the frames the inner node sent on that port at vr, possibly
//     empty, plus a halt flag on the inner node's final round — and advances
//     the inner node to vr+1 only once every port has delivered its peer's
//     vr record (ports whose peer's inner node already halted count as
//     permanently empty). Records are the barrier: loss can delay a virtual
//     round but never lets two neighbors observe different histories.
//
//   - ARQ layer (per-edge reliability). Record bytes stream over each edge
//     direction as sequence-numbered chunks under stop-and-wait ARQ:
//     one chunk in flight, retransmitted every Timeout rounds until the
//     peer's cumulative ack covers it, duplicates discarded by sequence
//     number, at most MaxRetries retransmissions before the adapter
//     declares the edge unrecoverable. Every ARQ frame is built by the
//     wire.go helpers and shipped through a ByteStreamSender, so the
//     per-edge bandwidth cap is enforced by construction.
//
//   - Failure propagation. When a chunk exhausts its retry budget the node
//     poisons the run: it floods poison frames (carrying the offending edge
//     and round) on every port for PoisonRounds rounds and halts; receivers
//     adopt and re-flood. The driver turns any poisoned node into a typed
//     *UnrecoverableError wrapping ErrUnrecoverable.
//
//   - Termination. A node whose inner protocol has halted keeps its ARQ
//     links alive — acking retransmissions, flushing its own chunks — and
//     only halts for real after Linger consecutive silent rounds, so a peer
//     still retransmitting is never stranded against a dead edge.
//
// Determinism: the adapter adds no randomness. Its entire state is a
// function of the frame arrival order, which the engine keeps deterministic
// (an installed injector forces the serial delivery route), so a replayed
// fault seed replays the reliable run bit-for-bit.

// ErrUnrecoverable is reported (wrapped by *UnrecoverableError) when
// injected faults exceed what retransmission can mask.
var ErrUnrecoverable = errors.New("protocols: reliable delivery failed: fault budget exceeded")

// UnrecoverableError carries the first edge and round on which the reliable
// adapter gave up.
type UnrecoverableError struct {
	FromID int // sender-side node ID of the failed edge direction
	ToID   int // receiver-side node ID
	Round  int // physical round when the retry budget ran out
	Reason string
}

func (e *UnrecoverableError) Error() string {
	return fmt.Sprintf("%v (edge %d->%d, round %d: %s)",
		ErrUnrecoverable, e.FromID, e.ToID, e.Round, e.Reason)
}

// Unwrap makes errors.Is(err, ErrUnrecoverable) work.
func (e *UnrecoverableError) Unwrap() error { return ErrUnrecoverable }

// ReliableMinFrameBytes is the smallest physical frame budget the adapter
// can work with: the 4-byte stream length prefix, the 13-byte chunk header
// (flags, ack, seq, chunk length), and at least 7 chunk bytes.
const ReliableMinFrameBytes = 24

// reliableTargetFrameBytes is the frame budget ReliableBandwidthFactor aims
// for: large enough that ARQ header overhead stays below ~50%.
const reliableTargetFrameBytes = 32

// ReliableBandwidthFactor returns a congest.Options.BandwidthFactor giving
// an n-node network physical frames of at least reliableTargetFrameBytes,
// the headroom the reliable adapter's framing needs. The wrapped protocol
// still sees its own (default-factor) bandwidth — see
// ReliableConfig.InnerBandwidthFactor — so the boost pays for ARQ headers
// and record barriers, not for a faster inner protocol.
func ReliableBandwidthFactor(n int) int {
	logn := bits.Len(uint(n - 1))
	if logn < 1 {
		logn = 1
	}
	return (reliableTargetFrameBytes*8 + logn - 1) / logn
}

// ReliableConfig tunes the adapter. The zero value selects the defaults.
type ReliableConfig struct {
	// InnerBandwidthFactor is the bandwidth factor presented to the wrapped
	// protocol (0 means congest.DefaultBandwidthFactor): the inner node
	// behaves exactly as it would on a fault-free network with that budget,
	// whatever the physical budget is.
	InnerBandwidthFactor int
	// Timeout is the number of physical rounds between retransmissions of
	// an unacked chunk (0 means 6).
	Timeout int
	// MaxRetries bounds retransmissions per chunk; one more loss is an
	// unrecoverable edge (0 means 16).
	MaxRetries int
	// Linger is how many consecutive silent rounds a finished node waits
	// before halting, so peers' retransmissions still find it alive
	// (0 means 64; must exceed Timeout plus the network's reorder window).
	Linger int
	// PoisonRounds is how many rounds a failed node floods poison frames
	// before halting (0 means 32).
	PoisonRounds int
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.InnerBandwidthFactor == 0 {
		c.InnerBandwidthFactor = congest.DefaultBandwidthFactor
	}
	if c.Timeout == 0 {
		c.Timeout = 6
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 16
	}
	if c.Linger == 0 {
		c.Linger = 64
	}
	if c.PoisonRounds == 0 {
		c.PoisonRounds = 32
	}
	return c
}

// RelStats aggregates the reliable adapter's work (per node; the driver
// sums them across the run).
type RelStats struct {
	// VirtualRounds is the number of inner-protocol rounds completed (the
	// driver keeps the maximum over nodes, the others are summed).
	VirtualRounds int
	// Chunks is the number of distinct ARQ chunks first-transmitted.
	Chunks int64
	// Retransmits is the number of chunk retransmissions (what loss cost).
	Retransmits int64
	// DupChunks is the number of duplicate chunks discarded on receive
	// (retransmissions and injected duplicates that were not needed).
	DupChunks int64
	// AckFrames is the number of standalone ack frames (no chunk aboard).
	AckFrames int64
	// Poisoned counts nodes that observed an unrecoverable failure.
	Poisoned int
}

// Add merges two RelStats (VirtualRounds by maximum, counters by sum).
func (a RelStats) Add(b RelStats) RelStats {
	if b.VirtualRounds > a.VirtualRounds {
		a.VirtualRounds = b.VirtualRounds
	}
	a.Chunks += b.Chunks
	a.Retransmits += b.Retransmits
	a.DupChunks += b.DupChunks
	a.AckFrames += b.AckFrames
	a.Poisoned += b.Poisoned
	return a
}

// KindReliable tags rounds in which the adapter sent only ARQ control
// traffic (retransmissions, acks, poison) with no inner-protocol progress.
const KindReliable = "rel"

// ARQ frame flags.
const (
	relFlagChunk  = 1 << 0 // frame carries a chunk (ack+seq+bytes follow)
	relFlagPoison = 1 << 1 // frame carries a poison report instead
)

// Record flags.
const recFlagHalt = 1 << 0 // the sending inner node halted at this round

// Poison reasons.
const (
	reasonRetries   = 1 // retry budget exhausted
	reasonMalformed = 2 // undecodable ARQ frame
	reasonSeqGap    = 3 // chunk sequence gap (impossible under stop-and-wait)
)

func reasonString(code uint8) string {
	switch code {
	case reasonRetries:
		return "retry budget exhausted"
	case reasonMalformed:
		return "malformed reliable frame"
	case reasonSeqGap:
		return "chunk sequence gap"
	}
	return fmt.Sprintf("reason %d", code)
}

// relPort is the adapter's per-port (per edge direction) state.
type relPort struct {
	phys congest.ByteStreamSender   // physical frames out (one per round)
	rx   congest.ByteStreamReceiver // physical frames in

	// Sender side.
	pending  []byte // record bytes not yet chunked
	inflight []byte // current stop-and-wait chunk (nil when idle)
	seq      uint32 // sequence number of inflight
	nextSeq  uint32
	lastSend int // physical round of the last (re)transmission
	retries  int

	// Receiver side.
	want      uint32 // next expected chunk sequence number
	recordBuf []byte // accepted chunk bytes awaiting record parsing
	nextVr    int    // next record vround expected from the peer
	records   []portRecord
	sendAck   bool // owe the peer an ack (fresh or duplicate chunk seen)

	peerHalted bool // peer's inner node halted...
	peerHaltVr int  // ...at this virtual round
}

type portRecord struct {
	vr      int
	halt    bool
	payload []byte
}

// idle reports whether this direction has nothing left to deliver.
func (p *relPort) idle() bool { return p.inflight == nil && len(p.pending) == 0 }

// Reliable wraps an inner congest.Node with reliable delivery. Build with
// NewReliable; read the adapter's outcome with RelResult.
type Reliable struct {
	inner congest.Node
	cfg   ReliableConfig

	env      *congest.Env
	innerEnv congest.Env
	ports    []relPort
	round    int

	vr        int // next virtual round to run on the inner node
	innerDone bool
	innerIn   []congest.Incoming // scratch: inner inbox build

	lastTraffic int

	poisoned   bool
	poisonLeft int
	fail       *UnrecoverableError

	stats RelStats
}

// NewReliable wraps inner with the reliable-delivery adapter.
func NewReliable(inner congest.Node, cfg ReliableConfig) *Reliable {
	return &Reliable{inner: inner, cfg: cfg.withDefaults()}
}

// RelResult returns the adapter outcome for a node built by NewReliable
// (ok=false for unwrapped nodes). fail is non-nil iff the node poisoned the
// run or absorbed another node's poison.
func RelResult(n congest.Node) (stats RelStats, fail *UnrecoverableError, ok bool) {
	rel, isRel := n.(*Reliable)
	if !isRel {
		return RelStats{}, nil, false
	}
	return rel.stats, rel.fail, true
}

// chunkBytes is the chunk capacity of one physical frame: the budget minus
// the stream length prefix (4) and the flags/ack/seq/length header (13).
func (r *Reliable) chunkBytes() int {
	return congest.FrameBudgetBytes(r.env.Bandwidth) - 17
}

// Init implements congest.Node: runs the inner node's Init as virtual round
// 0 and queues its output records.
func (r *Reliable) Init(env *congest.Env) []congest.Outgoing {
	r.env = env
	r.innerEnv = *env
	r.innerEnv.Bandwidth = congest.Options{BandwidthFactor: r.cfg.InnerBandwidthFactor}.BandwidthBits(env.N)
	r.ports = make([]relPort, env.Degree)

	r.innerEnv.Round = 0
	outs := r.inner.Init(&r.innerEnv)
	env.Tag(r.innerEnv.Kind())
	r.queueRecords(0, outs, false)
	r.vr = 1
	return r.emit()
}

// Round implements congest.Node.
func (r *Reliable) Round(env *congest.Env, inbox []congest.Incoming) ([]congest.Outgoing, bool) {
	r.env = env
	r.round = env.Round
	if len(inbox) > 0 {
		r.lastTraffic = env.Round
	}
	for _, in := range inbox {
		r.ports[in.Port].rx.Feed(in.Payload)
	}
	for pi := range r.ports {
		r.drainPort(pi)
	}
	if r.poisoned {
		return r.poisonStep()
	}
	advanced := r.advanceInner()
	if r.poisoned {
		return r.poisonStep()
	}
	out := r.emit()
	if r.poisoned {
		// emit detected an exhausted retry budget; switch to poison flooding
		// from this very round.
		return r.poisonStep()
	}
	if !advanced {
		env.Tag(KindReliable)
	}
	return out, r.maybeHalt()
}

// drainPort consumes every complete ARQ frame received on the port.
func (r *Reliable) drainPort(pi int) {
	p := &r.ports[pi]
	for {
		msg, ok := p.rx.Pop()
		if !ok {
			return
		}
		rd := &wireReader{buf: msg}
		flags, err := rd.u8()
		if err != nil {
			r.poisonLocal(pi, reasonMalformed)
			return
		}
		if flags&relFlagPoison != 0 {
			r.absorbPoison(rd)
			continue
		}
		ack, err := rd.u32()
		if err != nil {
			r.poisonLocal(pi, reasonMalformed)
			return
		}
		seq, err := rd.u32()
		if err != nil {
			r.poisonLocal(pi, reasonMalformed)
			return
		}
		// Cumulative ack: the inflight chunk is covered once the peer
		// expects a later sequence number.
		if p.inflight != nil && ack > p.seq {
			p.inflight = nil
			p.retries = 0
		}
		if flags&relFlagChunk == 0 {
			continue
		}
		chunk, err := rd.bytes()
		if err != nil {
			r.poisonLocal(pi, reasonMalformed)
			return
		}
		switch {
		case seq == p.want:
			p.want++
			p.recordBuf = append(p.recordBuf, chunk...)
			p.sendAck = true
			if !r.parseRecords(pi) {
				return
			}
		case seq < p.want:
			// Retransmission or injected duplicate of an accepted chunk:
			// discard, but re-ack (the peer keeps retrying until it hears).
			p.sendAck = true
			r.stats.DupChunks++
		default:
			// Stop-and-wait never exposes a gap; seeing one means the
			// stream itself is broken.
			r.poisonLocal(pi, reasonSeqGap)
			return
		}
	}
}

// parseRecords extracts complete records from the port's accepted byte
// stream. Returns false when it poisoned the run.
func (r *Reliable) parseRecords(pi int) bool {
	p := &r.ports[pi]
	for {
		if len(p.recordBuf) < 9 {
			return true
		}
		rd := &wireReader{buf: p.recordBuf}
		vr32, err := rd.u32()
		if err != nil {
			return true
		}
		fl, err := rd.u8()
		if err != nil {
			return true
		}
		payload, err := rd.bytes()
		if err != nil {
			// Payload not fully arrived yet.
			return true
		}
		p.recordBuf = rd.buf
		vr := int(vr32)
		if vr != p.nextVr {
			r.poisonLocal(pi, reasonSeqGap)
			return false
		}
		p.nextVr++
		halt := fl&recFlagHalt != 0
		p.records = append(p.records, portRecord{vr: vr, halt: halt, payload: payload})
		if halt {
			p.peerHalted = true
			p.peerHaltVr = vr
			// Nothing we queue from here on will ever be read: the peer's
			// inner node is done. Dropping our unsent bytes mirrors the raw
			// engine, which silently drops messages to halted nodes.
			p.pending = p.pending[:0]
			p.inflight = nil
		}
	}
}

// advanceInner runs every virtual round whose barrier is satisfied; reports
// whether at least one ran.
func (r *Reliable) advanceInner() bool {
	advanced := false
	for !r.innerDone && !r.poisoned {
		need := r.vr - 1
		ready := true
		for pi := range r.ports {
			p := &r.ports[pi]
			if len(p.records) > 0 && p.records[0].vr == need {
				continue
			}
			if p.peerHalted && p.peerHaltVr < need {
				continue // permanently silent: an empty record forever
			}
			ready = false
			break
		}
		if !ready {
			break
		}
		inbox := r.innerIn[:0]
		for pi := range r.ports {
			p := &r.ports[pi]
			if len(p.records) > 0 && p.records[0].vr == need {
				rec := p.records[0]
				p.records = p.records[1:]
				if len(rec.payload) > 0 {
					inbox = append(inbox, congest.Incoming{Port: pi, Payload: rec.payload})
				}
			}
		}
		r.innerIn = inbox[:0]
		r.innerEnv.Round = r.vr
		outs, done := r.inner.Round(&r.innerEnv, inbox)
		r.env.Tag(r.innerEnv.Kind())
		r.queueRecords(r.vr, outs, done)
		r.stats.VirtualRounds = r.vr
		r.vr++
		advanced = true
		if done {
			r.innerDone = true
		}
	}
	return advanced
}

// queueRecords encodes one record per open port for the given virtual round
// (empty records included — they are the synchronization barrier) and
// appends it to the port's pending ARQ bytes.
func (r *Reliable) queueRecords(vr int, outs []congest.Outgoing, halt bool) {
	var flags uint8
	if halt {
		flags |= recFlagHalt
	}
	for pi := range r.ports {
		p := &r.ports[pi]
		if p.peerHalted {
			continue
		}
		w := &wireWriter{}
		w.u32(uint32(vr))
		w.u8(flags)
		w.bytes(r.portPayload(outs, pi))
		p.pending = append(p.pending, w.buf...)
	}
}

// portPayload concatenates the inner node's outgoing frames for one port
// (Port -1 means every port, mirroring the engine's broadcast expansion).
func (r *Reliable) portPayload(outs []congest.Outgoing, pi int) []byte {
	var payload []byte
	for _, o := range outs {
		if o.Port == pi || o.Port == -1 {
			payload = append(payload, o.Payload...)
		}
	}
	return payload
}

// emit runs the per-port ARQ send phase: retransmit on timeout, launch the
// next chunk when the link is free, or send a bare ack when one is owed.
func (r *Reliable) emit() []congest.Outgoing {
	var out []congest.Outgoing
	budget := congest.FrameBudgetBytes(r.env.Bandwidth)
	for pi := range r.ports {
		p := &r.ports[pi]
		sendChunk := false
		switch {
		case p.inflight != nil:
			if r.round-p.lastSend >= r.cfg.Timeout {
				p.retries++
				if p.retries > r.cfg.MaxRetries {
					r.poisonLocal(pi, reasonRetries)
					return nil
				}
				r.stats.Retransmits++
				sendChunk = true
			}
		case len(p.pending) > 0:
			k := r.chunkBytes()
			if k > len(p.pending) {
				k = len(p.pending)
			}
			p.inflight = append([]byte(nil), p.pending[:k]...)
			p.pending = p.pending[k:]
			p.seq = p.nextSeq
			p.nextSeq++
			p.retries = 0
			r.stats.Chunks++
			sendChunk = true
		}
		if !sendChunk && !p.sendAck {
			continue
		}
		w := &wireWriter{}
		if sendChunk {
			w.u8(relFlagChunk)
			w.u32(p.want)
			w.u32(p.seq)
			w.bytes(p.inflight)
			p.lastSend = r.round
		} else {
			w.u8(0)
			w.u32(p.want)
			w.u32(0)
			r.stats.AckFrames++
		}
		p.sendAck = false
		p.phys.Push(w.buf)
		frame, ok := p.phys.NextFrame(budget)
		if ok {
			out = append(out, congest.Outgoing{Port: pi, Payload: frame})
		}
	}
	return out
}

// maybeHalt: a node halts once its inner protocol is done, every link has
// drained, and the network has been silent toward it for Linger rounds (so
// no peer can still be retransmitting into a void).
func (r *Reliable) maybeHalt() bool {
	if !r.innerDone {
		return false
	}
	for pi := range r.ports {
		if !r.ports[pi].idle() {
			return false
		}
	}
	if r.env.Degree == 0 {
		return true
	}
	return r.round-r.lastTraffic >= r.cfg.Linger
}

// poisonLocal records a locally detected unrecoverable failure on port pi.
func (r *Reliable) poisonLocal(pi int, reason uint8) {
	if r.poisoned {
		return
	}
	r.startPoison(&UnrecoverableError{
		FromID: r.env.ID,
		ToID:   r.env.NeighborIDs[pi],
		Round:  r.round,
		Reason: reasonString(reason),
	})
}

// absorbPoison adopts a poison report received from a neighbor.
func (r *Reliable) absorbPoison(rd *wireReader) {
	from, err := rd.u32()
	if err != nil {
		return
	}
	to, err := rd.u32()
	if err != nil {
		return
	}
	round, err := rd.u32()
	if err != nil {
		return
	}
	reason, err := rd.u8()
	if err != nil {
		return
	}
	if r.poisoned {
		return
	}
	r.startPoison(&UnrecoverableError{
		FromID: int(from),
		ToID:   int(to),
		Round:  int(round),
		Reason: reasonString(reason),
	})
}

func (r *Reliable) startPoison(fail *UnrecoverableError) {
	r.poisoned = true
	r.poisonLeft = r.cfg.PoisonRounds
	r.fail = fail
	r.stats.Poisoned = 1
}

// poisonStep floods the poison report on every port and halts once the
// flooding budget is spent (re-flooding masks dropped poison frames; the
// engine round limit is the last-resort backstop).
func (r *Reliable) poisonStep() ([]congest.Outgoing, bool) {
	r.env.Tag(KindReliable)
	var out []congest.Outgoing
	budget := congest.FrameBudgetBytes(r.env.Bandwidth)
	for pi := range r.ports {
		p := &r.ports[pi]
		w := &wireWriter{}
		w.u8(relFlagPoison)
		w.u32(uint32(r.fail.FromID))
		w.u32(uint32(r.fail.ToID))
		w.u32(uint32(r.fail.Round))
		w.u8(r.poisonReasonCode())
		p.phys.Push(w.buf)
		frame, ok := p.phys.NextFrame(budget)
		if ok {
			out = append(out, congest.Outgoing{Port: pi, Payload: frame})
		}
	}
	r.poisonLeft--
	return out, r.poisonLeft <= 0
}

// poisonReasonCode maps the stored failure back to its wire code.
func (r *Reliable) poisonReasonCode() uint8 {
	switch r.fail.Reason {
	case reasonString(reasonRetries):
		return reasonRetries
	case reasonString(reasonMalformed):
		return reasonMalformed
	case reasonString(reasonSeqGap):
		return reasonSeqGap
	}
	return reasonMalformed
}
