package protocols

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/regular"
	"repro/internal/treedepth"
)

// RunResult is the aggregate outcome of a distributed run.
type RunResult struct {
	Stats congest.Stats
	// TdExceeded is the protocol's "large treedepth" report (at least one
	// node rejected during Algorithm 2 or verification).
	TdExceeded bool
	// Decision / verification verdict.
	Accepted bool
	// Optimization outcome.
	Found         bool
	Weight        int64
	Selected      *bitset.Set // vertex indices (SetVertex predicates)
	SelectedEdges *bitset.Set // edge IDs (SetEdge predicates)
	// Counting outcome.
	Count int64
	// Forest is the elimination tree the protocol built (vertex-indexed),
	// for inspection and verification.
	Forest *treedepth.Forest
	// Outputs are the raw per-vertex outputs.
	Outputs []Output
	// Cache aggregates the per-node DP-cache counters (sums of counters,
	// maxima of gauges). Caching is computation-local, so these never affect
	// Stats — they report work avoided, not messages sent.
	Cache regular.CacheStats
	// Reliability aggregates the reliable-delivery adapter's counters when
	// Config.Reliable is set (zero otherwise).
	Reliability RelStats
}

// Run executes the full pipeline (Algorithm 2, Lemma 5.3, and the Theorem
// 6.1 phase for cfg.Mode) on g under the CONGEST simulator.
func Run(g *graph.Graph, cfg Config, opts congest.Options) (*RunResult, error) {
	if cfg.D < 1 {
		return nil, fmt.Errorf("%w: treedepth parameter d must be >= 1", ErrProtocol)
	}
	if cfg.VertexLabelNames == nil {
		cfg.VertexLabelNames = g.VertexLabelNames()
	}
	if cfg.EdgeLabelNames == nil {
		cfg.EdgeLabelNames = g.EdgeLabelNames()
	}
	if len(cfg.VertexLabelNames) > 32 || len(cfg.EdgeLabelNames) > 32 {
		return nil, fmt.Errorf("%w: at most 32 vertex and edge labels supported", ErrProtocol)
	}
	if cfg.Cache != nil && cfg.Cache.Predicate().Name() != cfg.Pred.Name() {
		return nil, fmt.Errorf("%w: shared cache wraps predicate %q, run wants %q",
			ErrProtocol, cfg.Cache.Predicate().Name(), cfg.Pred.Name())
	}
	sim, err := congest.NewSimulator(g, opts)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if cfg.Reliable {
		if got := congest.FrameBudgetBytes(opts.BandwidthBits(n)); got < ReliableMinFrameBytes {
			return nil, fmt.Errorf("%w: reliable delivery needs a frame budget of at least %d bytes, got %d (raise Options.BandwidthFactor, e.g. to ReliableBandwidthFactor(n))",
				ErrProtocol, ReliableMinFrameBytes, got)
		}
	}
	innerCfg := cfg
	innerCfg.Reliable = false
	nodes := make([]congest.Node, n)
	stats, err := sim.Run(func(v int) congest.Node {
		if cfg.Reliable {
			nodes[v] = NewReliable(NewNode(innerCfg), cfg.Rel)
		} else {
			nodes[v] = NewNode(cfg)
		}
		return nodes[v]
	})
	if err != nil {
		return nil, err
	}

	var rel RelStats
	if cfg.Reliable {
		var firstFail *UnrecoverableError
		for v := 0; v < n; v++ {
			st, fail, ok := RelResult(nodes[v])
			if !ok {
				continue
			}
			rel = rel.Add(st)
			if fail != nil && firstFail == nil {
				firstFail = fail
			}
		}
		if firstFail != nil {
			// Poisoned nodes halted mid-protocol; their outputs are not
			// meaningful, so report the failure with the stats collected so
			// far instead of parsing garbage.
			return &RunResult{Stats: stats, Outputs: make([]Output, n), Reliability: rel}, firstFail
		}
	}
	outputs := make([]Output, n)
	for v := 0; v < n; v++ {
		out, err := Result(nodes[v])
		if err != nil {
			return nil, err
		}
		outputs[v] = out
	}
	res, err := AssembleResult(g, cfg, sim.IDs(), outputs)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	res.Reliability = rel
	return res, nil
}

// AssembleResult builds a RunResult from the raw per-vertex outputs of a
// finished run: parent-pointer resolution into the elimination forest, the
// TdExceeded rules, root-verdict collection, cache aggregation, and
// selected-set reconstruction. It is the post-processing shared by the
// in-process driver and the multi-process shard coordinator (which gathers
// outputs from worker processes instead of local nodes). ids is the run's
// vertex -> identifier assignment; outputs is vertex-indexed and is
// retained in the result. Stats and Reliability are left zero for the
// caller to fill.
func AssembleResult(g *graph.Graph, cfg Config, ids []int, outputs []Output) (*RunResult, error) {
	n := g.NumVertices()
	if len(outputs) != n {
		return nil, fmt.Errorf("%w: %d outputs for %d vertices", ErrProtocol, len(outputs), n)
	}
	res := &RunResult{Outputs: outputs}
	idToVertex := make(map[int]int, n)
	for v, id := range ids {
		idToVertex[id] = v
	}
	parent := make([]int, n)
	roots := 0
	for v := 0; v < n; v++ {
		out := outputs[v]
		res.Cache = res.Cache.Add(out.Cache)
		if out.Failure != failNone {
			res.TdExceeded = true
		}
		switch {
		case out.ParentID == -1:
			parent[v] = -1
			roots++
		case out.ParentID < -1:
			// Never adopted.
			parent[v] = -1
			res.TdExceeded = true
		default:
			pv, ok := idToVertex[out.ParentID]
			if !ok {
				return nil, fmt.Errorf("%w: unknown parent ID %d", ErrProtocol, out.ParentID)
			}
			parent[v] = pv
		}
	}
	if roots != 1 {
		res.TdExceeded = true
	}
	res.Forest = treedepth.NewForest(parent)
	if res.TdExceeded {
		return res, nil
	}

	// Collect the root's verdict and per-node selections.
	for v := 0; v < n; v++ {
		out := res.Outputs[v]
		if out.IsRoot {
			res.Accepted = out.Accepted
			res.Found = out.Found
			res.Weight = out.Weight
			res.Count = out.Count
		}
	}
	if cfg.Mode == ModeOptimize && res.Found {
		switch cfg.Pred.SetKind() {
		case regular.SetVertex:
			res.Selected = bitset.New(n)
			for v := 0; v < n; v++ {
				if res.Outputs[v].Selected {
					res.Selected.Add(v)
				}
			}
		case regular.SetEdge:
			res.SelectedEdges = bitset.New(g.NumEdges())
			for v := 0; v < n; v++ {
				for _, ancestorID := range res.Outputs[v].SelectedEdges {
					av, ok := idToVertex[ancestorID]
					if !ok {
						return nil, fmt.Errorf("%w: unknown ancestor ID %d", ErrProtocol, ancestorID)
					}
					eid, ok := g.EdgeBetween(v, av)
					if !ok {
						return nil, fmt.Errorf("%w: node selected non-edge {%d,%d}", ErrProtocol, v, av)
					}
					res.SelectedEdges.Add(eid)
				}
			}
		}
	}
	return res, nil
}

// Decide runs the distributed decision protocol for a closed predicate.
func Decide(g *graph.Graph, d int, pred regular.Predicate, opts congest.Options) (*RunResult, error) {
	return Run(g, Config{Pred: pred, Mode: ModeDecide, D: d}, opts)
}

// Optimize runs the distributed maxφ/minφ protocol with solution selection.
func Optimize(g *graph.Graph, d int, pred regular.Predicate, maximize bool, opts congest.Options) (*RunResult, error) {
	return Run(g, Config{Pred: pred, Mode: ModeOptimize, D: d, Maximize: maximize}, opts)
}

// Count runs the distributed counting protocol.
func Count(g *graph.Graph, d int, pred regular.Predicate, opts congest.Options) (*RunResult, error) {
	return Run(g, Config{Pred: pred, Mode: ModeCount, D: d}, opts)
}

// CheckMarked runs the distributed optmarked protocol: the marked set is
// given by the MarkLabel vertex/edge labels of g.
func CheckMarked(g *graph.Graph, d int, pred regular.Predicate, maximize bool, opts congest.Options) (*RunResult, error) {
	return Run(g, Config{Pred: pred, Mode: ModeCheckMarked, D: d, Maximize: maximize}, opts)
}
