package protocols_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/congest"
	"repro/internal/faults"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
)

// Property: a fault schedule whose rates are all zero is not merely
// behavior-preserving but byte-invisible — installing it changes nothing
// about a run, down to the last trace byte. The two tests below check the
// property against the committed goldens and quick-check it across a few
// hundred seeds.

// TestQuietSchedulePreservesGoldenDPTrace: running the DP protocol under a
// zero-rate schedule must reproduce the committed golden trace exactly, so
// the fault seam provably costs nothing when disarmed.
func TestQuietSchedulePreservesGoldenDPTrace(t *testing.T) {
	g, _ := gen.BoundedTreedepth(18, 2, 0.3, 42)
	gen.AssignRandomWeights(g, 9, 43)
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_dp_decide_connected.ndjson"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	for _, seed := range []int64{0, 1, 42, -9000} {
		var buf bytes.Buffer
		tracer := congest.NewNDJSONTracer(&buf)
		opts := congest.Options{
			IDSeed:   7,
			Tracer:   tracer,
			Injector: faults.New(faults.Config{Seed: seed, ReorderWindow: int(seed % 17)}),
		}
		if _, err := protocols.Decide(g, 2, predicates.Connectivity{}, opts); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tracer.Err(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Fatalf("seed %d: quiet schedule diverged from the golden DP trace (%d bytes vs %d)",
				seed, buf.Len(), len(golden))
		}
	}
}

// TestQuickCheckQuietScheduleTransparency quick-checks the transparency
// property over ~200 seeded zero-rate schedules: stats and the complete
// NDJSON stream must be byte-identical to a run with no injector installed.
func TestQuickCheckQuietScheduleTransparency(t *testing.T) {
	schedules := 200
	if testing.Short() {
		schedules = 25
	}
	g, _ := gen.BoundedTreedepth(16, 2, 0.35, 99)
	run := func(inj congest.FaultInjector) (congest.Stats, []byte) {
		t.Helper()
		var buf bytes.Buffer
		tracer := congest.NewNDJSONTracer(&buf)
		res, err := protocols.Decide(g, 2, predicates.Acyclicity{}, congest.Options{
			IDSeed: 5, Tracer: tracer, Injector: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tracer.Err(); err != nil {
			t.Fatal(err)
		}
		return res.Stats, buf.Bytes()
	}
	baseStats, baseTrace := run(nil)
	for i := 0; i < schedules; i++ {
		// Every knob that does not enable a fault varies with i; all rates
		// stay zero. Seeds cover negatives and both PRNG stream halves.
		cfg := faults.Config{
			Seed:          int64(i*2654435761 - 1000),
			ReorderWindow: i % (faults.MaxReorderWindow + 2),
			MinOutage:     i % (faults.MaxOutage + 2),
			MaxOutage:     (i * 3) % (faults.MaxOutage + 2),
		}
		if !cfg.Quiet() {
			t.Fatalf("schedule %d is not quiet: %+v", i, cfg)
		}
		stats, trace := run(faults.New(cfg))
		if stats != baseStats {
			t.Fatalf("schedule %d (%v): stats diverged:\n%+v\nwant %+v", i, cfg, stats, baseStats)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Fatalf("schedule %d (%v): NDJSON trace diverged from the injector-free run", i, cfg)
		}
	}
}

// TestQuietScheduleTransparentUnderReliable is the adapter half of the
// property: with the reliable adapter on, a zero-rate schedule leaves the
// adapter's wire-level byte stream identical to the adapter's own fault-free
// run (the adapter adds no randomness of its own).
func TestQuietScheduleTransparentUnderReliable(t *testing.T) {
	g, _ := gen.BoundedTreedepth(14, 2, 0.3, 77)
	cfg := protocols.Config{Pred: predicates.Connectivity{}, Mode: protocols.ModeDecide, D: 2, Reliable: true}
	run := func(inj congest.FaultInjector) []byte {
		t.Helper()
		var buf bytes.Buffer
		tracer := congest.NewNDJSONTracer(&buf)
		opts := reliableOptions(g.NumVertices())
		opts.IDSeed = 5
		opts.Tracer = tracer
		opts.Injector = inj
		if _, err := protocols.Run(g, cfg, opts); err != nil {
			t.Fatal(err)
		}
		if err := tracer.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := run(nil)
	if len(base) == 0 {
		t.Fatal("empty baseline trace")
	}
	for _, seed := range []int64{0, 17, -4} {
		if got := run(faults.New(faults.Config{Seed: seed, ReorderWindow: 9})); !bytes.Equal(got, base) {
			t.Fatalf("seed %d: reliable wire stream diverged under a quiet schedule (%d bytes vs %d)",
				seed, len(got), len(base))
		}
	}
}
