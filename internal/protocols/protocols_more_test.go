package protocols_test

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/mso/msolib"
	"repro/internal/msoauto"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
)

func TestDistributedSteinerTree(t *testing.T) {
	r := rand.New(rand.NewSource(901))
	for trial := 0; trial < 6; trial++ {
		n := 5 + r.Intn(8)
		g, _ := gen.BoundedTreedepth(n, 2, 0.5, r.Int63())
		gen.AssignRandomWeights(g, 10, r.Int63())
		g.SetVertexLabel(predicates.TerminalLabel, 0)
		g.SetVertexLabel(predicates.TerminalLabel, n-1)
		dist, err := protocols.Optimize(g, 2, predicates.SteinerTree{}, false, opts(r.Int63()))
		if err != nil {
			t.Fatal(err)
		}
		run, err := seq.New(g, treedepth.DFSForest(g), predicates.SteinerTree{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := run.Optimize(false)
		if err != nil {
			t.Fatal(err)
		}
		if dist.TdExceeded || dist.Found != want.Found || dist.Weight != want.Weight {
			t.Fatalf("trial %d: dist=(%v,%d) seq=(%v,%d)",
				trial, dist.Found, dist.Weight, want.Found, want.Weight)
		}
	}
}

func TestDistributedHamiltonian(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"C6", gen.Cycle(6), true},
		{"P6", gen.Path(6), false},
		{"K4", gen.Complete(4), true},
		{"star", gen.Star(6), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := protocols.Decide(tc.g, 4, predicates.HamiltonianCycle{}, opts(3))
			if err != nil {
				t.Fatal(err)
			}
			if res.TdExceeded {
				t.Fatal("unexpected treedepth report")
			}
			if res.Accepted != tc.want {
				t.Fatalf("hamiltonian = %v, want %v", res.Accepted, tc.want)
			}
		})
	}
}

func TestDistributedGenericEngine(t *testing.T) {
	// The generic MSO compiler runs unchanged through the CONGEST protocol:
	// its pattern-tree classes are streamed like any other class.
	engine, err := msoauto.New(msolib.TriangleFree(), msoauto.Options{})
	if err != nil {
		t.Fatal(err)
	}
	free, _ := gen.BoundedTreedepth(12, 2, 0.2, 55)
	res, err := protocols.Decide(free, 2, engine, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.TdExceeded {
		t.Fatal("unexpected treedepth report")
	}
	want := true
	for a := 0; a < 12 && want; a++ {
		for b := a + 1; b < 12 && want; b++ {
			for c := b + 1; c < 12; c++ {
				if free.HasEdge(a, b) && free.HasEdge(b, c) && free.HasEdge(a, c) {
					want = false
					break
				}
			}
		}
	}
	if res.Accepted != want {
		t.Fatalf("triangle-free = %v, want %v", res.Accepted, want)
	}
}

func TestBaselineMatchesProtocol(t *testing.T) {
	r := rand.New(rand.NewSource(902))
	for trial := 0; trial < 6; trial++ {
		n := 5 + r.Intn(20)
		g, _ := gen.BoundedTreedepth(n, 3, 0.4, r.Int63())
		proto, err := protocols.Decide(g, 3, predicates.Acyclicity{}, opts(r.Int63()))
		if err != nil {
			t.Fatal(err)
		}
		base, err := protocols.BaselineDecide(g, protocols.AcyclicSolver, opts(r.Int63()))
		if err != nil {
			t.Fatal(err)
		}
		if proto.TdExceeded || proto.Accepted != base.Accepted {
			t.Fatalf("trial %d: protocol=%v baseline=%v", trial, proto.Accepted, base.Accepted)
		}
	}
}

func TestBaselineHighDiameter(t *testing.T) {
	// The baseline's rounds must grow with the diameter; the protocol's must
	// not (beyond its d-dependence).
	small := gen.Caterpillar(8, 1)
	large := gen.Caterpillar(64, 1)
	baseSmall, err := protocols.BaselineDecide(small, protocols.AcyclicSolver, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseLarge, err := protocols.BaselineDecide(large, protocols.AcyclicSolver, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if baseLarge.Stats.Rounds <= baseSmall.Stats.Rounds {
		t.Fatalf("baseline rounds should grow with diameter: %d vs %d",
			baseSmall.Stats.Rounds, baseLarge.Stats.Rounds)
	}
	if !baseSmall.Accepted || !baseLarge.Accepted {
		t.Fatal("caterpillars are acyclic")
	}
}

func TestBandwidthFactorIndependence(t *testing.T) {
	// Results must be identical across bandwidth factors; only round counts
	// change.
	g, _ := gen.BoundedTreedepth(20, 3, 0.4, 66)
	gen.AssignRandomWeights(g, 10, 67)
	var weights []int64
	var rounds []int
	for _, factor := range []int{0, 8, 64} {
		res, err := protocols.Optimize(g, 3, predicates.IndependentSet{}, true,
			congest.Options{BandwidthFactor: factor})
		if err != nil {
			t.Fatal(err)
		}
		if res.TdExceeded {
			t.Fatal("unexpected treedepth report")
		}
		weights = append(weights, res.Weight)
		rounds = append(rounds, res.Stats.Rounds)
	}
	if weights[0] != weights[1] || weights[1] != weights[2] {
		t.Fatalf("weights differ across bandwidths: %v", weights)
	}
	if rounds[2] >= rounds[1] {
		t.Fatalf("wider bandwidth should need fewer rounds: %v", rounds)
	}
}

func TestDistributedRedBlueDomination(t *testing.T) {
	r := rand.New(rand.NewSource(903))
	p := predicates.DominatingSet{DominateLabel: "red", MemberLabel: "blue"}
	for trial := 0; trial < 5; trial++ {
		n := 5 + r.Intn(8)
		g, _ := gen.BoundedTreedepth(n, 2, 0.5, r.Int63())
		gen.AssignRandomWeights(g, 5, r.Int63())
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				g.SetVertexLabel("red", v)
			} else {
				g.SetVertexLabel("blue", v)
			}
		}
		dist, err := protocols.Optimize(g, 2, p, false, opts(r.Int63()))
		if err != nil {
			t.Fatal(err)
		}
		run, err := seq.New(g, treedepth.DFSForest(g), p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := run.Optimize(false)
		if err != nil {
			t.Fatal(err)
		}
		if dist.Found != want.Found || (want.Found && dist.Weight != want.Weight) {
			t.Fatalf("trial %d: dist=(%v,%d) seq=(%v,%d)",
				trial, dist.Found, dist.Weight, want.Found, want.Weight)
		}
	}
}

func TestDistributedInfeasibleOptimization(t *testing.T) {
	// Red vertex with no blue neighbor: red/blue domination infeasible.
	g := gen.Path(3)
	g.SetVertexLabel("red", 0)
	g.SetVertexLabel("red", 1)
	g.SetVertexLabel("red", 2)
	p := predicates.DominatingSet{DominateLabel: "red", MemberLabel: "blue"}
	res, err := protocols.Optimize(g, 2, p, false, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TdExceeded || res.Found {
		t.Fatalf("expected infeasible, got %+v", res)
	}
}

func TestMinimalBandwidth(t *testing.T) {
	// Factor 1 gives the floor budget of 8 bits; the protocol must still be
	// correct, just slower.
	g, _ := gen.BoundedTreedepth(12, 2, 0.4, 70)
	res, err := protocols.Decide(g, 2, predicates.Acyclicity{}, congest.Options{BandwidthFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := protocols.Decide(g, 2, predicates.Acyclicity{}, congest.Options{BandwidthFactor: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.TdExceeded || res.Accepted != wide.Accepted {
		t.Fatalf("narrow=%v wide=%v", res.Accepted, wide.Accepted)
	}
	if res.Stats.Rounds <= wide.Stats.Rounds {
		t.Fatal("narrow bandwidth should need more rounds")
	}
}

func TestFaultInjectionNoPanics(t *testing.T) {
	// Corrupted messages must never crash a run: the protocol either
	// completes (possibly reporting failure) or the simulator surfaces an
	// error. Wrong silent answers are acceptable here — CONGEST links are
	// reliable by definition; this only tests robustness of the decoders.
	r := rand.New(rand.NewSource(905))
	for trial := 0; trial < 20; trial++ {
		g, _ := gen.BoundedTreedepth(10+r.Intn(10), 2, 0.4, r.Int63())
		opts := congest.Options{
			IDSeed:      r.Int63(),
			CorruptProb: 0.02,
			CorruptSeed: r.Int63(),
			RoundLimit:  1 << 16,
		}
		_, _ = protocols.Decide(g, 2, predicates.Acyclicity{}, opts)
		_, _ = protocols.Optimize(g, 2, predicates.IndependentSet{}, true, opts)
		_, _ = protocols.Count(g, 2, predicates.Triangles{}, opts)
	}
}

func TestParallelExecutionDeterministic(t *testing.T) {
	// The parallel simulator mode must be observationally identical to the
	// sequential one: same rounds, same verdicts, same selections.
	g, _ := gen.BoundedTreedepth(30, 3, 0.4, 77)
	gen.AssignRandomWeights(g, 10, 78)
	serial, err := protocols.Optimize(g, 3, predicates.IndependentSet{}, true,
		congest.Options{IDSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := protocols.Optimize(g, 3, predicates.IndependentSet{}, true,
		congest.Options{IDSeed: 5, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Weight != parallel.Weight || serial.Stats.Rounds != parallel.Stats.Rounds {
		t.Fatalf("serial (%d, %d rounds) != parallel (%d, %d rounds)",
			serial.Weight, serial.Stats.Rounds, parallel.Weight, parallel.Stats.Rounds)
	}
	if !serial.Selected.Equal(parallel.Selected) {
		t.Fatal("selected sets differ between execution modes")
	}
	if serial.Stats.Messages != parallel.Stats.Messages || serial.Stats.Bits != parallel.Stats.Bits {
		t.Fatal("message accounting differs between execution modes")
	}
}
