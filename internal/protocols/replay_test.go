package protocols_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/congest"
	"repro/internal/faults"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
)

// TestReplayDeterminismParallel: replaying the same fault seed must
// reproduce the run bit-for-bit — RunResult, stats, and the complete NDJSON
// trace — even with a multi-worker engine (an installed injector forces the
// serial delivery route; compute still fans out across workers, which the
// race detector checks when this runs under -race).
func TestReplayDeterminismParallel(t *testing.T) {
	g, _ := gen.BoundedTreedepth(26, 3, 0.3, 21)
	gen.AssignRandomWeights(g, 9, 22)
	cfg := protocols.Config{
		Pred: predicates.IndependentSet{}, Mode: protocols.ModeOptimize,
		Maximize: true, D: 3, Reliable: true,
	}
	run := func() (*protocols.RunResult, []byte) {
		t.Helper()
		var buf bytes.Buffer
		tracer := congest.NewNDJSONTracer(&buf)
		opts := reliableOptions(g.NumVertices())
		opts.IDSeed = 9
		opts.Tracer = tracer
		opts.Parallel = true
		opts.Workers = 4
		opts.Injector = faults.New(faults.Config{
			Seed: 2024, DropRate: 0.15, DupRate: 0.1, ReorderRate: 0.1, ReorderWindow: 4,
			CrashRate: 0.0005, MinOutage: 1, MaxOutage: 3,
		})
		res, err := protocols.Run(g, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := tracer.Err(); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	a, traceA := run()
	b, traceB := run()
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged across replays:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Reliability != b.Reliability {
		t.Fatalf("reliability counters diverged:\n%+v\n%+v", a.Reliability, b.Reliability)
	}
	if a.Accepted != b.Accepted || a.Found != b.Found || a.Weight != b.Weight || a.TdExceeded != b.TdExceeded {
		t.Fatalf("verdicts diverged:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(a.Outputs, b.Outputs) {
		t.Fatal("per-node outputs diverged across replays")
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatalf("NDJSON traces diverged across replays (%d vs %d bytes)", len(traceA), len(traceB))
	}
	if a.Stats.Faults.Dropped == 0 {
		t.Fatalf("schedule injected no drops; replay test is vacuous: %+v", a.Stats.Faults)
	}
}
