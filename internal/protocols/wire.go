// Package protocols implements the paper's CONGEST protocols on top of the
// congest simulator: Algorithm 2 (distributed elimination-tree construction,
// Lemma 5.1), canonical-bag propagation (Lemma 5.3), the bottom-up
// decision protocol, the bottom-up OPT / top-down extraction protocol and
// the COUNT protocol (Theorem 6.1 and Section 6), the optmarked
// verification, and a collect-at-root baseline used for comparison.
//
// All logical messages are carried over per-edge byte streams, so a k-bit
// message costs ceil(k/B) rounds on a B-bit edge, matching the paper's
// Θ(k/log n) accounting.
package protocols

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrProtocol is wrapped by protocol-level failures (malformed messages,
// inconsistent state).
var ErrProtocol = errors.New("protocols: protocol error")

// Message tags for the DP phases.
const (
	tagBag     = 1 // parent -> child: parent's bag and its induced edges
	tagBagPeer = 2 // neighbor -> neighbor: my bag (elimination verification)
	tagTable   = 3 // child -> parent: DP table
	tagVerdict = 4 // root -> down: decision/count result, doubles as finish
	tagTarget  = 5 // parent -> child: OPT target class key, then finish
)

type wireWriter struct{ buf []byte }

func (w *wireWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *wireWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *wireWriter) i64(v int64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v)) }
func (w *wireWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// str writes a string with the same framing as bytes, without forcing the
// caller to materialize a []byte copy first (interned class keys are
// strings; table serialization streams them straight onto the wire).
func (w *wireWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

type wireReader struct{ buf []byte }

func (r *wireReader) u8() (uint8, error) {
	if len(r.buf) < 1 {
		return 0, fmt.Errorf("%w: truncated u8", ErrProtocol)
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v, nil
}

func (r *wireReader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, fmt.Errorf("%w: truncated u32", ErrProtocol)
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *wireReader) i64() (int64, error) {
	if len(r.buf) < 8 {
		return 0, fmt.Errorf("%w: truncated i64", ErrProtocol)
	}
	v := int64(binary.LittleEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v, nil
}

func (r *wireReader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint32(len(r.buf)) < n {
		return nil, fmt.Errorf("%w: truncated bytes", ErrProtocol)
	}
	v := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return v, nil
}

// bytesView is bytes without the defensive copy: the returned slice aliases
// the reader's buffer. Use it only when the underlying message buffer is
// owned by the caller and outlives every use of the view (table entries
// decoded from a popped stream message qualify — Pop hands over a fresh
// buffer that is never reused).
func (r *wireReader) bytesView() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint32(len(r.buf)) < n {
		return nil, fmt.Errorf("%w: truncated bytes", ErrProtocol)
	}
	v := r.buf[:n:n]
	r.buf = r.buf[n:]
	return v, nil
}
