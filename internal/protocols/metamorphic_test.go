package protocols_test

import (
	"errors"
	"testing"

	"repro/internal/congest"
	"repro/internal/faults"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
)

// Metamorphic property of the reliable adapter: injected faults may slow a
// run down or kill it loudly, but they can never change its answer. Every
// run that completes without ErrUnrecoverable must report the sequential
// oracle's verdict, and fault classes the ARQ layer absorbs outright
// (duplication, reordering — nothing is ever lost) must always complete.
func TestMetamorphicFaultGrid(t *testing.T) {
	type schedule struct {
		name string
		cfg  faults.Config
		// mustComplete: this fault class cannot exhaust a retry budget, so
		// ErrUnrecoverable would itself be a bug.
		mustComplete bool
	}
	schedules := []schedule{
		{"dup-only", faults.Config{DupRate: 0.4, ReorderWindow: 4}, true},
		{"reorder-only", faults.Config{ReorderRate: 0.4, ReorderWindow: 4}, true},
		{"drop", faults.Config{DropRate: 0.15}, false},
		{"mixed", faults.Config{DropRate: 0.15, DupRate: 0.1, ReorderRate: 0.1, ReorderWindow: 3}, false},
		{"crashy", faults.Config{CrashRate: 0.001, MinOutage: 1, MaxOutage: 4, DropRate: 0.05}, false},
	}
	pred := predicates.Acyclicity{}
	completed, failed := 0, 0
	for i, tc := range differentialGraphs(t) {
		if testing.Short() && i%5 != 0 {
			continue
		}
		oracle, err := seq.New(tc.g, treedepth.DFSForest(tc.g), pred)
		if err != nil {
			t.Fatalf("%s: oracle: %v", tc.name, err)
		}
		want, err := oracle.Decide()
		if err != nil {
			t.Fatalf("%s: oracle decide: %v", tc.name, err)
		}
		for _, sc := range schedules {
			cfg := sc.cfg
			cfg.Seed = int64(100*i + 7) // independent chaos per graph
			opts := reliableOptions(tc.g.NumVertices())
			opts.Injector = faults.New(cfg)
			res, err := protocols.Run(tc.g, protocols.Config{
				Pred: pred, Mode: protocols.ModeDecide, D: tc.d, Reliable: true,
			}, opts)
			switch {
			case err == nil:
				completed++
				if res.TdExceeded {
					t.Errorf("%s/%s: spurious treedepth report under faults", tc.name, sc.name)
					continue
				}
				if res.Accepted != want {
					t.Errorf("%s/%s: WRONG VERDICT under faults: distributed=%v oracle=%v (schedule %v)",
						tc.name, sc.name, res.Accepted, want, cfg)
				}
			case errors.Is(err, protocols.ErrUnrecoverable):
				failed++
				if sc.mustComplete {
					t.Errorf("%s/%s: loss-free fault class reported unrecoverable: %v", tc.name, sc.name, err)
				}
			default:
				t.Errorf("%s/%s: unexpected error: %v", tc.name, sc.name, err)
			}
		}
	}
	if completed == 0 {
		t.Fatal("no run in the grid completed; the grid tests nothing")
	}
	t.Logf("metamorphic grid: %d completed (all agreed with the oracle), %d unrecoverable", completed, failed)
}

// TestMetamorphicSeedInvariance: the verdict is invariant across fault
// seeds — ten different chaos streams over the same lossy schedule must all
// either fail loudly or agree with each other and the fault-free run.
func TestMetamorphicSeedInvariance(t *testing.T) {
	cases := differentialGraphs(t)
	tc := cases[3]
	pred := predicates.Connectivity{}
	base, err := protocols.Decide(tc.g, tc.d, pred, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		opts := reliableOptions(tc.g.NumVertices())
		opts.Injector = faults.New(faults.Config{
			Seed: seed, DropRate: 0.2, DupRate: 0.1, ReorderRate: 0.1, ReorderWindow: 4,
		})
		res, err := protocols.Run(tc.g, protocols.Config{
			Pred: pred, Mode: protocols.ModeDecide, D: tc.d, Reliable: true,
		}, opts)
		if errors.Is(err, protocols.ErrUnrecoverable) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.TdExceeded || res.Accepted != base.Accepted {
			t.Errorf("seed %d: verdict (td=%v acc=%v) != fault-free (acc=%v)",
				seed, res.TdExceeded, res.Accepted, base.Accepted)
		}
	}
}
