package protocols

import (
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
)

// CentralSolver decides a predicate on a fully known graph; it runs at the
// baseline's collection point.
type CentralSolver func(*graph.Graph) (bool, error)

// AcyclicSolver is the centralized acyclicity check used by the benchmark
// baseline.
func AcyclicSolver(g *graph.Graph) (bool, error) {
	return g.NumEdges() == g.NumVertices()-len(g.Components()), nil
}

// BaselineDecide is the naive CONGEST protocol against which the paper's
// constant-round algorithm is compared: build a BFS tree from the node with
// identifier 1, converge-cast the entire edge list to it, solve the problem
// centrally there (with the given solver), and broadcast the verdict. Its
// round complexity is Θ(diam(G) + m·log n / B), which grows with the
// network, whereas the Theorem 6.1 protocol depends only on d and φ.
func BaselineDecide(g *graph.Graph, solve CentralSolver, opts congest.Options) (*RunResult, error) {
	sim, err := congest.NewSimulator(g, opts)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	nodes := make([]*baselineNode, n)
	stats, err := sim.Run(func(v int) congest.Node {
		nodes[v] = &baselineNode{solve: solve}
		return nodes[v]
	})
	if err != nil {
		return nil, err
	}
	res := &RunResult{Stats: stats, Outputs: make([]Output, n)}
	for v := 0; v < n; v++ {
		res.Outputs[v] = nodes[v].out
		if nodes[v].out.IsRoot {
			res.Accepted = nodes[v].out.Accepted
		}
		if nodes[v].out.Failure != failNone {
			res.TdExceeded = true
		}
	}
	return res, nil
}

// Baseline message tags.
const (
	tagBFS      = 10
	tagBFSReply = 11 // payload: 1 = you are my parent, 0 = not
	tagCollect  = 12 // subtree edge list
	tagAnswer   = 13
)

type baselineNode struct {
	solve CentralSolver
	out   Output

	env  *congest.Env
	send []congest.ByteStreamSender
	recv []congest.ByteStreamReceiver

	joined     bool
	parentPort int
	childPorts []int
	replies    int
	collected  int
	edges      [][3]int64 // (idA, idB, weight), aggregated from the subtree
	sentUp     bool
	done       bool
}

// Init implements congest.Node.
func (b *baselineNode) Init(env *congest.Env) []congest.Outgoing {
	b.env = env
	b.send = make([]congest.ByteStreamSender, env.Degree)
	b.recv = make([]congest.ByteStreamReceiver, env.Degree)
	b.parentPort = -1
	env.Tag(KindBFS)
	// Local edges, owned by the smaller-ID endpoint to avoid duplication.
	for port, nid := range env.NeighborIDs {
		if env.ID < nid {
			b.edges = append(b.edges, [3]int64{int64(env.ID), int64(nid), env.PortWeight[port]})
		}
	}
	if env.ID == 1 {
		b.joined = true
		var w wireWriter
		w.u8(tagBFS)
		for port := 0; port < env.Degree; port++ {
			b.send[port].Push(w.buf)
		}
	}
	return b.frames()
}

// Round implements congest.Node.
func (b *baselineNode) Round(env *congest.Env, inbox []congest.Incoming) ([]congest.Outgoing, bool) {
	b.env = env
	for _, in := range inbox {
		b.recv[in.Port].Feed(in.Payload)
	}
	for port := 0; port < env.Degree; port++ {
		for {
			msg, ok := b.recv[port].Pop()
			if !ok {
				break
			}
			if err := b.handle(port, msg); err != nil {
				b.out.Failure = failInvalid
				b.done = true
			}
		}
	}
	b.progress()
	out := b.frames()
	if b.done && !b.pending() {
		return out, true
	}
	return out, false
}

func (b *baselineNode) frames() []congest.Outgoing {
	var out []congest.Outgoing
	budget := congest.FrameBudgetBytes(b.env.Bandwidth)
	for port := range b.send {
		if frame, ok := b.send[port].NextFrame(budget); ok {
			out = append(out, congest.Outgoing{Port: port, Payload: frame})
		}
	}
	return out
}

func (b *baselineNode) pending() bool {
	for port := range b.send {
		if b.send[port].Pending() {
			return true
		}
	}
	return false
}

func (b *baselineNode) handle(port int, msg []byte) error {
	if len(msg) == 0 {
		return fmt.Errorf("%w: empty baseline message", ErrProtocol)
	}
	switch msg[0] {
	case tagBFS:
		if b.joined {
			var w wireWriter
			w.u8(tagBFSReply)
			w.u8(0)
			b.send[port].Push(w.buf)
			return nil
		}
		b.joined = true
		b.parentPort = port
		var reply wireWriter
		reply.u8(tagBFSReply)
		reply.u8(1)
		b.send[port].Push(reply.buf)
		var probe wireWriter
		probe.u8(tagBFS)
		for p := 0; p < b.env.Degree; p++ {
			if p != port {
				b.send[p].Push(probe.buf)
			}
		}
		if b.env.Degree == 1 {
			// Leaf with only the parent: no replies to wait for.
		}
		return nil
	case tagBFSReply:
		if len(msg) < 2 {
			return fmt.Errorf("%w: short BFS reply", ErrProtocol)
		}
		b.replies++
		if msg[1] == 1 {
			b.childPorts = append(b.childPorts, port)
			sort.Ints(b.childPorts)
		}
		return nil
	case tagCollect:
		r := &wireReader{buf: msg[1:]}
		count, err := r.u32()
		if err != nil {
			return err
		}
		for i := uint32(0); i < count; i++ {
			a, err := r.i64()
			if err != nil {
				return err
			}
			bb, err := r.i64()
			if err != nil {
				return err
			}
			w, err := r.i64()
			if err != nil {
				return err
			}
			b.edges = append(b.edges, [3]int64{a, bb, w})
		}
		b.collected++
		return nil
	case tagAnswer:
		if len(msg) < 2 {
			return fmt.Errorf("%w: short answer", ErrProtocol)
		}
		b.out.Accepted = msg[1] == 1
		b.forwardAnswer()
		return nil
	default:
		return fmt.Errorf("%w: unknown baseline tag %d", ErrProtocol, msg[0])
	}
}

// expectedReplies is the number of BFS replies this node waits for: all
// neighbors except its parent.
func (b *baselineNode) expectedReplies() int {
	if b.env.ID == 1 {
		return b.env.Degree
	}
	return b.env.Degree - 1
}

func (b *baselineNode) progress() {
	if b.done || b.sentUp || !b.joined {
		return
	}
	if b.replies < b.expectedReplies() || b.collected < len(b.childPorts) {
		return
	}
	b.sentUp = true
	if b.env.ID == 1 {
		b.solveAtRoot()
		return
	}
	b.env.Tag(KindCollect)
	var w wireWriter
	w.u8(tagCollect)
	w.u32(uint32(len(b.edges)))
	for _, e := range b.edges {
		w.i64(e[0])
		w.i64(e[1])
		w.i64(e[2])
	}
	b.send[b.parentPort].Push(w.buf)
	// Wait for the answer broadcast (leaves with no children are done after
	// forwarding nothing).
}

func (b *baselineNode) solveAtRoot() {
	b.out.IsRoot = true
	// Rebuild the graph from IDs 1..n.
	n := b.env.N
	g := graph.New(n)
	ok := true
	for _, e := range b.edges {
		u, v := int(e[0])-1, int(e[1])-1
		id, err := g.AddEdge(u, v)
		if err != nil {
			ok = false
			break
		}
		g.SetEdgeWeight(id, e[2])
	}
	accepted := false
	if ok {
		if dec, err := b.solve(g); err == nil {
			accepted = dec
		} else {
			b.out.Failure = failInvalid
		}
	} else {
		b.out.Failure = failInvalid
	}
	b.out.Accepted = accepted
	b.forwardAnswer()
}

func (b *baselineNode) forwardAnswer() {
	b.env.Tag(KindAnswer)
	var w wireWriter
	w.u8(tagAnswer)
	if b.out.Accepted {
		w.u8(1)
	} else {
		w.u8(0)
	}
	for _, port := range b.childPorts {
		b.send[port].Push(w.buf)
	}
	b.done = true
}
