package protocols_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
)

// TestGoldenDPTraces locks the complete NDJSON event stream of the DP
// protocol — every message of the elimination, bag, upward-table, and
// downward phases — against committed golden files, one per mode. The DP
// tables cross the wire in canonical (key-sorted) entry order, so any change
// to table construction, interning, or caching that altered a single byte or
// the order of a single entry would diverge here. Regenerate intentionally
// with: UPDATE_GOLDEN=1 go test ./internal/protocols -run TestGoldenDPTraces
func TestGoldenDPTraces(t *testing.T) {
	g, _ := gen.BoundedTreedepth(18, 2, 0.3, 42)
	gen.AssignRandomWeights(g, 9, 43)
	marked := g.Clone()
	marked.SetVertexLabel(protocols.MarkLabel, 0)
	marked.SetVertexLabel(protocols.MarkLabel, 5)

	cases := []struct {
		name string
		run  func(opts congest.Options) error
	}{
		{"decide_connected", func(opts congest.Options) error {
			_, err := protocols.Decide(g, 2, predicates.Connectivity{}, opts)
			return err
		}},
		{"opt_indset", func(opts congest.Options) error {
			_, err := protocols.Optimize(g, 2, predicates.IndependentSet{}, true, opts)
			return err
		}},
		{"count_matching", func(opts congest.Options) error {
			_, err := protocols.Count(g, 2, predicates.Matching{}, opts)
			return err
		}},
		{"checkmarked_indset", func(opts congest.Options) error {
			_, err := protocols.CheckMarked(marked, 2, predicates.IndependentSet{}, true, opts)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			tracer := congest.NewNDJSONTracer(&buf)
			if err := tc.run(congest.Options{IDSeed: 7, Tracer: tracer}); err != nil {
				t.Fatal(err)
			}
			if err := tracer.Err(); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", fmt.Sprintf("golden_dp_%s.ndjson", tc.name))
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("DP trace diverged from golden file %s (got %d bytes, want %d)",
					golden, buf.Len(), len(want))
			}
		})
	}
}
