package protocols

import (
	"testing"

	"repro/internal/congest"
)

// TestNodeSteadyRoundZeroAllocs pins the dpNode per-round path at zero heap
// allocations in steady state: a mid-window elimination round with no
// inbound traffic and drained send streams must not allocate — not for the
// inbox scan, not for the frame pump (emitFrames reuses outBuf and
// NextFrame returns arena views). Phase transitions and message handling
// may allocate; the per-round baseline that runs at n=10^6 scale may not.
func TestNodeSteadyRoundZeroAllocs(t *testing.T) {
	env := &congest.Env{
		ID: 5, Degree: 3, NeighborIDs: []int{1, 2, 9},
		Bandwidth: 64, N: 1 << 20,
	}
	node := NewNode(Config{Mode: ModeDecide, D: 3}).(*dpNode)
	node.Init(env)

	// Round 1 opens the first flooding window (pushes tuples); a few
	// mid-window rounds drain the streams. windowRounds = ceil(16/8)+1 = 3,
	// so env.Round = 2 keeps the node mid-window (windowPos = 1) and far
	// from the phase transition at elimRounds().
	env.Round = 1
	node.Round(env, nil)
	env.Round = 2
	for i := 0; i < 8; i++ {
		node.Round(env, nil)
	}
	if node.pendingFrames() {
		t.Fatal("send streams not drained after warm-up")
	}

	avg := testing.AllocsPerRun(100, func() {
		out, halted := node.Round(env, nil)
		if halted {
			t.Fatal("node halted during elimination")
		}
		if len(out) != 0 {
			t.Fatalf("unexpected frames from a drained node: %d", len(out))
		}
	})
	if avg != 0 {
		t.Errorf("steady-state node round allocates %.1f objects/round, want 0", avg)
	}
}
