package protocols_test

import (
	"fmt"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
)

// The differential harness cross-checks the full distributed pipeline
// (Algorithm 2 + Lemma 5.3 + Theorem 6.1) against the sequential
// Algorithm 1 oracle on a population of seeded random graphs of small
// treedepth, under both the identity and an adversarial ID permutation.
// Any divergence is a correctness bug in one of the two engines.

const diffGraphs = 50

type diffCase struct {
	name string
	g    *graph.Graph
	d    int
}

func differentialGraphs(t *testing.T) []diffCase {
	t.Helper()
	count := diffGraphs
	if testing.Short() {
		count = 10
	}
	cases := make([]diffCase, 0, count)
	for i := 0; i < count; i++ {
		d := 2 + i%2 // treedepth parameter 2 or 3
		n := 8 + (i%7)*4
		prob := 0.1 + 0.05*float64(i%4)
		g, _ := gen.BoundedTreedepth(n, d, prob, int64(1000+i))
		gen.AssignRandomWeights(g, 10, int64(2000+i))
		cases = append(cases, diffCase{name: fmt.Sprintf("g%02d_n%d_d%d", i, n, d), g: g, d: d})
	}
	return cases
}

// idSeeds is the ID-assignment suite: identity and an adversarial
// pseudo-random permutation (distinct per graph via the offset).
func idSeeds(i int) []int64 { return []int64{0, int64(0xC0FFEE + 31*i)} }

func TestDifferentialDecideVsSequential(t *testing.T) {
	preds := []struct {
		name string
		pred regular.Predicate
	}{
		{"acyclic", predicates.Acyclicity{}},
		{"2-colorable", predicates.KColorability{K: 2}},
		{"connected", predicates.Connectivity{}},
	}
	for i, tc := range differentialGraphs(t) {
		forest := treedepth.DFSForest(tc.g)
		for _, p := range preds {
			oracle, err := seq.New(tc.g, forest, p.pred)
			if err != nil {
				t.Fatalf("%s/%s: oracle: %v", tc.name, p.name, err)
			}
			want, err := oracle.Decide()
			if err != nil {
				t.Fatalf("%s/%s: oracle decide: %v", tc.name, p.name, err)
			}
			for _, seed := range idSeeds(i) {
				res, err := protocols.Decide(tc.g, tc.d, p.pred, congest.Options{IDSeed: seed})
				if err != nil {
					t.Fatalf("%s/%s seed=%d: %v", tc.name, p.name, seed, err)
				}
				if res.TdExceeded {
					t.Fatalf("%s/%s seed=%d: unexpected treedepth report", tc.name, p.name, seed)
				}
				if res.Accepted != want {
					t.Errorf("%s/%s seed=%d: distributed=%v oracle=%v", tc.name, p.name, seed, res.Accepted, want)
				}
			}
		}
	}
}

func TestDifferentialOptimizeVsSequential(t *testing.T) {
	preds := []struct {
		name     string
		pred     regular.Predicate
		maximize bool
	}{
		{"max-independent-set", predicates.IndependentSet{}, true},
		{"min-vertex-cover", predicates.VertexCover{}, false},
	}
	for i, tc := range differentialGraphs(t) {
		if i%5 != 0 {
			continue // optimization runs are heavier; sample the population
		}
		forest := treedepth.DFSForest(tc.g)
		for _, p := range preds {
			oracle, err := seq.New(tc.g, forest, p.pred)
			if err != nil {
				t.Fatalf("%s/%s: oracle: %v", tc.name, p.name, err)
			}
			want, err := oracle.Optimize(p.maximize)
			if err != nil {
				t.Fatalf("%s/%s: oracle optimize: %v", tc.name, p.name, err)
			}
			for _, seed := range idSeeds(i) {
				res, err := protocols.Optimize(tc.g, tc.d, p.pred, p.maximize, congest.Options{IDSeed: seed})
				if err != nil {
					t.Fatalf("%s/%s seed=%d: %v", tc.name, p.name, seed, err)
				}
				if res.TdExceeded {
					t.Fatalf("%s/%s seed=%d: unexpected treedepth report", tc.name, p.name, seed)
				}
				if res.Found != want.Found {
					t.Errorf("%s/%s seed=%d: found=%v oracle=%v", tc.name, p.name, seed, res.Found, want.Found)
					continue
				}
				if res.Found && res.Weight != want.Weight {
					t.Errorf("%s/%s seed=%d: weight=%d oracle=%d", tc.name, p.name, seed, res.Weight, want.Weight)
				}
			}
		}
	}
}

func TestDifferentialCountVsSequential(t *testing.T) {
	for i, tc := range differentialGraphs(t) {
		if i%10 != 3 {
			continue // counting tables are wide; a handful of instances suffices
		}
		forest := treedepth.DFSForest(tc.g)
		oracle, err := seq.New(tc.g, forest, predicates.Triangles{})
		if err != nil {
			t.Fatalf("%s: oracle: %v", tc.name, err)
		}
		want, err := oracle.Count()
		if err != nil {
			t.Fatalf("%s: oracle count: %v", tc.name, err)
		}
		for _, seed := range idSeeds(i) {
			res, err := protocols.Count(tc.g, tc.d, predicates.Triangles{}, congest.Options{IDSeed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", tc.name, seed, err)
			}
			if res.TdExceeded {
				t.Fatalf("%s seed=%d: unexpected treedepth report", tc.name, seed)
			}
			if res.Count != want {
				t.Errorf("%s seed=%d: count=%d oracle=%d", tc.name, seed, res.Count, want)
			}
		}
	}
}
