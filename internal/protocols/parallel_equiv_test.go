package protocols_test

import (
	"testing"

	"repro/internal/congest"
	graphpkg "repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
)

// TestDifferentialParallelMatchesSequential runs the full distributed
// pipeline over the differential-suite graphs with Parallel: true under an
// adversarial ID permutation and nonzero fault injection, and demands the
// outcome — verdict, treedepth report, and every stats counter — be
// bit-identical to the sequential run. Run under -race this also shakes the
// worker pool for data races on the shared engine state.
func TestDifferentialParallelMatchesSequential(t *testing.T) {
	type outcome struct {
		stats      congest.Stats
		tdExceeded bool
		accepted   bool
		err        string
	}
	run := func(g *graphpkg.Graph, d int, opts congest.Options) outcome {
		res, err := protocols.Decide(g, d, predicates.Acyclicity{}, opts)
		var o outcome
		if res != nil {
			o = outcome{stats: res.Stats, tdExceeded: res.TdExceeded, accepted: res.Accepted}
		}
		if err != nil {
			o.err = err.Error()
		}
		return o
	}
	for i, tc := range differentialGraphs(t) {
		if i%10 != 1 {
			continue // the full population runs in the decide differential; a sample suffices here
		}
		for _, opts := range []congest.Options{
			{IDSeed: int64(0xBEEF + i)},
			{IDSeed: int64(0xBEEF + i), CorruptProb: 0.01, CorruptSeed: int64(41 + i), RoundLimit: 1 << 9},
		} {
			seqOpts, parOpts := opts, opts
			parOpts.Parallel = true
			parOpts.Workers = 3
			want := run(tc.g, tc.d, seqOpts)
			got := run(tc.g, tc.d, parOpts)
			if got != want {
				t.Errorf("%s corrupt=%v: parallel diverged from sequential:\n  par: %+v\n  seq: %+v",
					tc.name, opts.CorruptProb > 0, got, want)
			}
			// A second worker count must not change anything either.
			parOpts.Workers = 8
			if got8 := run(tc.g, tc.d, parOpts); got8 != want {
				t.Errorf("%s corrupt=%v workers=8: parallel diverged from sequential", tc.name, opts.CorruptProb > 0)
			}
		}
	}
}
