package protocols_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/faults"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
)

// reliableOptions returns simulator options with the bandwidth headroom the
// adapter needs on an n-node network.
func reliableOptions(n int) congest.Options {
	return congest.Options{BandwidthFactor: protocols.ReliableBandwidthFactor(n)}
}

// TestReliableFaultFreeMatchesRaw: on a fault-free network the adapter is a
// pure (slower) transport: verdict and elimination forest match the raw run.
func TestReliableFaultFreeMatchesRaw(t *testing.T) {
	g, _ := gen.BoundedTreedepth(18, 2, 0.3, 42)
	raw, err := protocols.Decide(g, 2, predicates.Acyclicity{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := protocols.Config{Pred: predicates.Acyclicity{}, Mode: protocols.ModeDecide, D: 2, Reliable: true}
	rel, err := protocols.Run(g, cfg, reliableOptions(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if rel.TdExceeded != raw.TdExceeded || rel.Accepted != raw.Accepted {
		t.Fatalf("reliable verdict (td=%v acc=%v) != raw (td=%v acc=%v)",
			rel.TdExceeded, rel.Accepted, raw.TdExceeded, raw.Accepted)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if rel.Forest.Parent[v] != raw.Forest.Parent[v] {
			t.Fatalf("vertex %d: reliable parent %d != raw parent %d",
				v, rel.Forest.Parent[v], raw.Forest.Parent[v])
		}
	}
	if rel.Reliability.VirtualRounds == 0 || rel.Reliability.Chunks == 0 {
		t.Fatalf("adapter reported no work: %+v", rel.Reliability)
	}
	if rel.Reliability.Poisoned != 0 {
		t.Fatalf("fault-free run poisoned: %+v", rel.Reliability)
	}
	if rel.Stats.Rounds <= raw.Stats.Rounds {
		t.Fatalf("adapter cannot be faster than raw: %d <= %d rounds",
			rel.Stats.Rounds, raw.Stats.Rounds)
	}
}

// TestReliableMasksDrops: the adapter must absorb a 20% per-message drop
// rate (plus duplicates and reordering) and still produce the fault-free
// verdict, with the loss visible in the retransmission counters.
func TestReliableMasksDrops(t *testing.T) {
	g, _ := gen.BoundedTreedepth(14, 2, 0.3, 43)
	want, err := protocols.Decide(g, 2, predicates.Connectivity{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := protocols.Config{Pred: predicates.Connectivity{}, Mode: protocols.ModeDecide, D: 2, Reliable: true}
	opts := reliableOptions(g.NumVertices())
	opts.Injector = faults.New(faults.Config{
		Seed: 7, DropRate: 0.2, DupRate: 0.1, ReorderRate: 0.1, ReorderWindow: 4,
	})
	res, err := protocols.Run(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TdExceeded || res.Accepted != want.Accepted {
		t.Fatalf("verdict under 20%% drop (td=%v acc=%v) != fault-free (acc=%v)",
			res.TdExceeded, res.Accepted, want.Accepted)
	}
	if res.Reliability.Retransmits == 0 {
		t.Fatalf("20%% drop produced no retransmissions: %+v", res.Reliability)
	}
	if res.Stats.Faults.Dropped == 0 {
		t.Fatalf("injector dropped nothing: %+v", res.Stats.Faults)
	}
}

// TestReliableUnrecoverable: a drop rate beyond any retry budget must fail
// loudly with the typed error, not hang or return a wrong verdict.
func TestReliableUnrecoverable(t *testing.T) {
	g, _ := gen.BoundedTreedepth(10, 2, 0.4, 44)
	cfg := protocols.Config{
		Pred: predicates.Acyclicity{}, Mode: protocols.ModeDecide, D: 2,
		Reliable: true,
		Rel:      protocols.ReliableConfig{Timeout: 2, MaxRetries: 3},
	}
	opts := reliableOptions(g.NumVertices())
	opts.Injector = faults.New(faults.Config{Seed: 3, DropRate: 0.95})
	opts.RoundLimit = 1 << 14
	_, err := protocols.Run(g, cfg, opts)
	if err == nil {
		t.Fatal("95% drop with a 3-retry budget must fail")
	}
	if !errors.Is(err, protocols.ErrUnrecoverable) {
		t.Fatalf("error is not ErrUnrecoverable: %v", err)
	}
	var unrec *protocols.UnrecoverableError
	if !errors.As(err, &unrec) {
		t.Fatalf("error is not *UnrecoverableError: %v", err)
	}
	if unrec.FromID == unrec.ToID || unrec.Round <= 0 {
		t.Fatalf("failure lacks the offending edge/round: %+v", unrec)
	}
	if !strings.Contains(err.Error(), "edge") {
		t.Fatalf("error message should name the edge: %v", err)
	}
}

// TestReliableRejectsTinyBudget: the driver must refuse a physical frame
// budget too small for the ARQ framing instead of failing opaquely.
func TestReliableRejectsTinyBudget(t *testing.T) {
	g, _ := gen.BoundedTreedepth(12, 2, 0.3, 45)
	cfg := protocols.Config{Pred: predicates.Acyclicity{}, Mode: protocols.ModeDecide, D: 2, Reliable: true}
	_, err := protocols.Run(g, cfg, congest.Options{}) // default factor: ~3-byte frames
	if err == nil || !strings.Contains(err.Error(), "frame budget") {
		t.Fatalf("want frame-budget error, got %v", err)
	}
}

// TestReliableSurvivesCrashRestart: crash-restart outages shorter than the
// retry budget are masked like drops.
func TestReliableSurvivesCrashRestart(t *testing.T) {
	g, _ := gen.BoundedTreedepth(12, 2, 0.3, 46)
	want, err := protocols.Decide(g, 2, predicates.KColorability{K: 2}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := protocols.Config{Pred: predicates.KColorability{K: 2}, Mode: protocols.ModeDecide, D: 2, Reliable: true}
	opts := reliableOptions(g.NumVertices())
	opts.Injector = faults.New(faults.Config{Seed: 11, CrashRate: 0.002, MinOutage: 1, MaxOutage: 4})
	res, err := protocols.Run(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TdExceeded || res.Accepted != want.Accepted {
		t.Fatalf("verdict under crash-restart (td=%v acc=%v) != fault-free (acc=%v)",
			res.TdExceeded, res.Accepted, want.Accepted)
	}
	if res.Stats.Faults.CrashRounds == 0 {
		t.Fatalf("schedule crashed nobody: %+v", res.Stats.Faults)
	}
}
