package protocols

// Regression tests for the violations dmclint surfaced (PR 3). They pin the
// fixed behavior: localTuple must pick its candidate by (depth, min ID)
// independent of map iteration order, and the baseline handshake must put
// exactly the same bytes on the wire through wireWriter as the old []byte
// literals did.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/congest"
)

func TestLocalTupleDeterministic(t *testing.T) {
	env := &congest.Env{ID: 7, Degree: 4, NeighborIDs: []int{12, 3, 9, 5}}
	// markedNbr is port-indexed with -1 for unmarked ports (the flat layout
	// that replaced the original port->depth map; the fold is structurally
	// order-independent now, but the selection rule — deepest marked
	// neighbor, ties by minimum ID — stays pinned).
	cases := []struct {
		name      string
		markedNbr []int32 // per port: depth, or -1
		want      floodTuple
	}{
		{"no marked neighbors", []int32{-1, -1, -1, -1}, floodTuple{depth: 0, markedID: 0, candID: 7}},
		{"single marked neighbor", []int32{-1, 2, -1, -1}, floodTuple{depth: 2, markedID: 3, candID: 7}},
		{"deepest wins", []int32{4, -1, 3, -1}, floodTuple{depth: 4, markedID: 12, candID: 7}},
		{"depth tie broken by min ID", []int32{2, -1, 3, 3}, floodTuple{depth: 3, markedID: 5, candID: 7}},
	}
	for _, tc := range cases {
		n := &dpNode{env: env, markedNbr: tc.markedNbr}
		if got := n.localTuple(); got != tc.want {
			t.Errorf("%s: localTuple() = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// frame4 is one length-prefixed logical message as the byte-stream layer
// carries it: 4-byte little-endian length, then the payload.
func frame4(msg ...byte) []byte {
	out := []byte{byte(len(msg)), 0, 0, 0}
	return append(out, msg...)
}

// drainPort pops everything pending on one sender with a generous budget.
func drainPort(s *congest.ByteStreamSender) []byte {
	var out []byte
	for {
		frame, ok := s.NextFrame(1 << 20)
		if !ok {
			return out
		}
		out = append(out, frame...)
	}
}

func TestBaselineWireBytesPinned(t *testing.T) {
	const bandwidth = 1 << 16

	// Root: Init floods tagBFS on every port.
	rootEnv := &congest.Env{ID: 1, Degree: 2, NeighborIDs: []int{2, 3}, Bandwidth: bandwidth, PortWeight: []int64{4, 5}}
	root := &baselineNode{}
	outs := root.Init(rootEnv)
	if len(outs) != 2 {
		t.Fatalf("root Init emitted %d frames, want 2", len(outs))
	}
	for i, o := range outs {
		if o.Port != i || !bytes.Equal(o.Payload, frame4(tagBFS)) {
			t.Errorf("root Init frame %d = port %d payload %v, want port %d payload %v",
				i, o.Port, o.Payload, i, frame4(tagBFS))
		}
	}

	// Non-root: the first tagBFS adopts the sender as parent (reply 1) and
	// re-floods the probe on every other port.
	env := &congest.Env{ID: 2, Degree: 3, NeighborIDs: []int{1, 4, 5}, Bandwidth: bandwidth, PortWeight: []int64{4, 6, 7}}
	nd := &baselineNode{}
	if outs := nd.Init(env); len(outs) != 0 {
		t.Fatalf("non-root Init emitted %d frames, want 0", len(outs))
	}
	if err := nd.handle(0, []byte{tagBFS}); err != nil {
		t.Fatalf("handle(tagBFS): %v", err)
	}
	for port, want := range [][]byte{frame4(tagBFSReply, 1), frame4(tagBFS), frame4(tagBFS)} {
		if got := drainPort(&nd.send[port]); !bytes.Equal(got, want) {
			t.Errorf("after first tagBFS, port %d bytes = %v, want %v", port, got, want)
		}
	}

	// A later probe on a joined node is declined with reply 0.
	if err := nd.handle(1, []byte{tagBFS}); err != nil {
		t.Fatalf("handle(second tagBFS): %v", err)
	}
	if got, want := drainPort(&nd.send[1]), frame4(tagBFSReply, 0); !bytes.Equal(got, want) {
		t.Errorf("decline reply bytes = %v, want %v", got, want)
	}

	// forwardAnswer ships tagAnswer with the accepted bit to every child.
	for _, accepted := range []bool{false, true} {
		t.Run(fmt.Sprintf("answer_accepted=%v", accepted), func(t *testing.T) {
			a := &baselineNode{env: env, send: make([]congest.ByteStreamSender, 3), childPorts: []int{1, 2}}
			a.out.Accepted = accepted
			a.forwardAnswer()
			bit := byte(0)
			if accepted {
				bit = 1
			}
			if got := drainPort(&a.send[0]); len(got) != 0 {
				t.Errorf("non-child port 0 got bytes %v, want none", got)
			}
			for _, port := range []int{1, 2} {
				if got, want := drainPort(&a.send[port]), frame4(tagAnswer, bit); !bytes.Equal(got, want) {
					t.Errorf("answer bytes on port %d = %v, want %v", port, got, want)
				}
			}
		})
	}
}
