package protocols

import (
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/regular"
)

// Mode selects what the distributed protocol computes.
type Mode int

// Protocol modes.
const (
	ModeDecide Mode = iota + 1
	ModeOptimize
	ModeCount
	ModeCheckMarked
)

// MarkLabel is the vertex/edge label naming the marked set in
// ModeCheckMarked (the unary predicate Mark of Section 6).
const MarkLabel = "mark"

// Failure codes carried by the protocol.
const (
	failNone       = 0
	failTdExceeded = 1
	failInvalid    = 2
)

// Config parameterizes the protocol run; it is known to every node up front
// (it encodes the algorithm, not the input graph).
type Config struct {
	Pred     regular.Predicate
	Mode     Mode
	D        int  // treedepth parameter d
	Maximize bool // optimization direction
	// VertexLabelNames / EdgeLabelNames fix the label vocabulary used on the
	// wire (part of the formula, hence global knowledge).
	VertexLabelNames []string
	EdgeLabelNames   []string
	// Reliable wraps every node in the reliable-delivery adapter (see
	// reliable.go), restoring round-synchronous semantics on a faulty
	// network at the cost of extra physical rounds and bandwidth. Requires a
	// physical frame budget of at least ReliableMinFrameBytes (use
	// ReliableBandwidthFactor for congest.Options.BandwidthFactor).
	Reliable bool
	// Rel tunes the adapter when Reliable is set (zero value = defaults).
	Rel ReliableConfig
	// Cache, when non-nil, is a process-lifetime shared DP cache for Pred:
	// every node draws a handle from it instead of building a private
	// interner/memo, so classes and compositions interned by earlier runs
	// (earlier requests, in a daemon) are reused. Must wrap the same
	// predicate as Pred. Caching stays computation-local either way —
	// verdicts, wire bytes, and round counts are bit-identical to private
	// per-node caches.
	Cache *regular.Shared
}

// depthBound is 2^d, the elimination-tree depth bound of Lemma 2.5.
func (c Config) depthBound() int { return 1 << uint(c.D) }

// elimMsgBytes is the fixed payload size of elimination-phase messages
// (three u32 fields) plus the stream length prefix.
const elimMsgBytes = 12 + 4

// node phases.
const (
	phaseElim = iota
	phaseBags
	phaseUp
	phaseDown
	phaseDone
)

// Output is what a node reports when it halts.
type Output struct {
	Failure int
	// Root-only results.
	IsRoot   bool
	Accepted bool  // ModeDecide / ModeCheckMarked verdict
	Found    bool  // ModeOptimize feasibility
	Weight   int64 // ModeOptimize optimum
	Count    int64 // ModeCount result
	// Per-node results.
	ParentID      int // elimination-tree parent (-1 for the root)
	Depth         int
	Bag           []int // sorted bag IDs (Lemma 5.3)
	BagEdges      [][2]int
	Selected      bool  // ModeOptimize, vertex predicates: this node is in S
	SelectedEdges []int // ModeOptimize, edge predicates: ancestor IDs of selected owned edges
	// Cache reports this node's DP-cache traffic (computation-local: caching
	// never changes what crosses the wire, so these are diagnostics only).
	Cache regular.CacheStats
}

// dpNode is the per-vertex protocol state machine.
type dpNode struct {
	cfg Config
	out Output

	env   *congest.Env
	phase int

	// Streams, one per port.
	send []congest.ByteStreamSender
	recv []congest.ByteStreamReceiver

	// outBuf backs the Outgoing slice returned by emitFrames, reused across
	// rounds so the steady-state frame pump allocates nothing.
	outBuf []congest.Outgoing

	// --- elimination phase (Algorithm 2) ---
	// Per-neighbor state is port-indexed or childIDs-aligned flat slices (no
	// maps): markedNbr[port] is the depth of the marked neighbor on that port
	// (-1 while unmarked; announced depths are always >= 1), and
	// childPorts[i] is the port of childIDs[i].
	marked     bool
	parentID   int
	depth      int
	childIDs   []int // sorted
	childPorts []int // childPorts[i] = port of childIDs[i]
	parentPort int
	markedNbr  []int32
	tuple      floodTuple

	// --- bags phase (Lemma 5.3) ---
	bag            []int       // sorted IDs, includes self
	bagInfo        []bagVertex // bagInfo[i] describes bag[i]
	bagEdges       [][2]int    // index pairs into bag (sorted IDs), G[B_u]
	haveBag        bool
	peerBags       int // how many neighbor bag-peer messages received
	peerFail       int
	mustBeAncestor []int // neighbor IDs that must appear in our own bag

	// --- DP phases ---
	// cache is this node's private interned/memoized DP algebra. It is
	// created when the base tables are built and never shared between nodes:
	// all caching is computation-local, so CONGEST rounds, messages, and wire
	// bytes are exactly those of the uncached protocol.
	cache *regular.Cached
	// childTables[i] is the table received from childIDs[i]; tableGot[i]
	// records arrival and tablesGot counts them (allocated once the child
	// set is final, at the end of the elimination phase).
	childTables  []childTable
	tableGot     []bool
	tablesGot    int
	stages       []upStage
	finalOpt     regular.DenseOpt
	finalDecide  regular.DenseSet
	finalCount   regular.DenseCount
	finalMarked  regular.DenseSet // ModeCheckMarked: classes with S fixed to the marked set
	markedWeight int64
	sentUp       bool
	failure      int
}

type bagVertex struct {
	weight int64
	labels uint32 // bitmask into cfg.VertexLabelNames
}

type childTable struct {
	failure int
	entries []tableEntry
	marked  []tableEntry // ModeCheckMarked: decision table of the marked-set run
	weight  int64        // ModeCheckMarked: subtree marked weight
}

type tableEntry struct {
	key   []byte
	value int64
}

type upStage struct {
	childID int
	back    map[regular.ClassID]regular.DenseBack
}

type floodTuple struct {
	depth    int
	markedID int
	candID   int
}

// better reports whether a beats b: deeper marked neighbor first, then
// smaller marked ID, then smaller candidate ID.
func (a floodTuple) better(b floodTuple) bool {
	if a.depth != b.depth {
		return a.depth > b.depth
	}
	if a.markedID != b.markedID {
		return a.markedID < b.markedID
	}
	return a.candID < b.candID
}

// Message kinds reported through congest.Env.Tag, one per protocol phase:
// the Algorithm 2 elimination flood, the Lemma 5.3 bag propagation, the
// bottom-up DP tables, and the two downward finishes. The tag is sticky, so
// frames that drain a phase's stream over later rounds keep that phase's
// kind in the trace.
const (
	KindElim    = "elim"    // Algorithm 2 flooding + adoption announcements
	KindBag     = "bag"     // canonical-bag top-down propagation + peer checks
	KindTable   = "table"   // child -> parent DP tables
	KindVerdict = "verdict" // root -> leaves decision/count verdict
	KindTarget  = "target"  // root -> leaves OPT target classes

	// Collect-at-root baseline kinds.
	KindBFS     = "bfs"     // BFS tree construction
	KindCollect = "collect" // edge lists shipped up the BFS tree
	KindAnswer  = "answer"  // root's verdict broadcast down
)

// NewNode builds the protocol node for one vertex.
func NewNode(cfg Config) congest.Node {
	return &dpNode{cfg: cfg, parentID: -2, parentPort: -1}
}

// Result returns the node's output; valid once the simulation has finished.
// Nodes wrapped by the reliable-delivery adapter are unwrapped transparently.
func Result(n congest.Node) (Output, error) {
	if rel, isRel := n.(*Reliable); isRel {
		n = rel.inner
	}
	d, ok := n.(*dpNode)
	if !ok {
		return Output{}, fmt.Errorf("%w: not a protocol node", ErrProtocol)
	}
	return d.out, nil
}

// --- schedule arithmetic (all derived from public knowledge n, B, d) ---

func (n *dpNode) frameBudget() int { return congest.FrameBudgetBytes(n.env.Bandwidth) }

// windowRounds is the number of rounds needed to deliver one elimination
// message one hop: frames + 1 (send/receive offset).
func (n *dpNode) windowRounds() int {
	f := (elimMsgBytes + n.frameBudget() - 1) / n.frameBudget()
	return f + 1
}

// budget is min(2^d, n): the flooding and step budgets of Algorithm 2 never
// need to exceed the component size, and every node knows n.
func (n *dpNode) budget() int {
	b := n.cfg.depthBound()
	if n.env.N < b {
		b = n.env.N
	}
	return b
}

// hopsPerStep is the flooding budget H = min(2^d, n) (component diameters
// are below 2^d when td(G) <= d, and always below n).
func (n *dpNode) hopsPerStep() int { return n.budget() }

// stepRounds = (H hops + 1 announce window) * window.
func (n *dpNode) stepRounds() int { return (n.hopsPerStep() + 1) * n.windowRounds() }

// elimRounds = D steps, D = min(2^d, n).
func (n *dpNode) elimRounds() int { return n.budget() * n.stepRounds() }

// --- congest.Node implementation ---

// Init implements congest.Node.
func (n *dpNode) Init(env *congest.Env) []congest.Outgoing {
	n.env = env
	n.send = make([]congest.ByteStreamSender, env.Degree)
	n.recv = make([]congest.ByteStreamReceiver, env.Degree)
	n.markedNbr = make([]int32, env.Degree)
	for p := range n.markedNbr {
		n.markedNbr[p] = -1
	}
	n.phase = phaseElim
	env.Tag(KindElim)
	return nil
}

// Round implements congest.Node.
func (n *dpNode) Round(env *congest.Env, inbox []congest.Incoming) ([]congest.Outgoing, bool) {
	n.env = env
	for _, in := range inbox {
		n.recv[in.Port].Feed(in.Payload)
	}
	round := env.Round

	if n.phase == phaseElim {
		n.elimRound(round)
		if round == n.elimRounds() {
			n.enterBagsPhase()
		}
	} else {
		// Event-driven phases: consume every complete message.
		for port := 0; port < env.Degree; port++ {
			for {
				msg, ok := n.recv[port].Pop()
				if !ok {
					break
				}
				if err := n.handle(port, msg); err != nil {
					n.fail(failInvalid)
				}
			}
		}
		n.progress()
	}

	out := n.emitFrames()
	if n.phase == phaseDone && !n.pendingFrames() {
		n.out.ParentID = n.parentID
		n.out.Depth = n.depth
		n.out.Bag = n.bag
		n.out.BagEdges = n.bagEdges
		if n.cache != nil {
			n.out.Cache = n.cache.Stats()
		}
		if n.out.Failure == 0 {
			n.out.Failure = n.failure
		}
		return out, true
	}
	return out, false
}

func (n *dpNode) fail(code int) {
	if code > n.failure {
		n.failure = code
	}
}

func (n *dpNode) emitFrames() []congest.Outgoing {
	out := n.outBuf[:0]
	budget := n.frameBudget()
	for port := range n.send {
		if frame, ok := n.send[port].NextFrame(budget); ok {
			out = append(out, congest.Outgoing{Port: port, Payload: frame})
		}
	}
	n.outBuf = out
	if len(out) == 0 {
		return nil
	}
	return out
}

func (n *dpNode) pendingFrames() bool {
	for port := range n.send {
		if n.send[port].Pending() {
			return true
		}
	}
	return false
}

// --- elimination phase ---

func (n *dpNode) elimRound(round int) {
	w := n.windowRounds()
	stepLen := n.stepRounds()
	inner := (round - 1) % stepLen
	windowIdx := inner / w
	windowPos := inner % w
	isAnnounce := windowIdx == n.hopsPerStep()

	// Consume any complete elimination messages first.
	for port := 0; port < n.env.Degree; port++ {
		for {
			msg, ok := n.recv[port].Pop()
			if !ok {
				break
			}
			n.handleElimMsg(port, msg)
		}
	}

	if windowPos != 0 {
		return // mid-window: frames flow, nothing new to push
	}

	if !isAnnounce {
		if windowIdx == 0 {
			// Step start: recompute the local tuple from marked neighbors.
			n.tuple = n.localTuple()
		}
		if n.marked {
			return
		}
		// Push the current best tuple to all unmarked neighbors.
		payload := encodeElim(n.tuple.depth, n.tuple.markedID, n.tuple.candID)
		for port := 0; port < n.env.Degree; port++ {
			if n.markedNbr[port] < 0 {
				n.send[port].Push(payload)
			}
		}
		return
	}

	// Announce window: the winner adopts itself and announces.
	if n.marked || n.tuple.candID != n.env.ID {
		return
	}
	if n.tuple.depth == 0 {
		n.parentID = -1
		n.depth = 1
	} else {
		n.parentID = n.tuple.markedID
		n.depth = n.tuple.depth + 1
		port, ok := n.portOfID(n.parentID)
		if !ok {
			// The elected parent is not a neighbor: inconsistent flooding
			// (only possible when td(G) > d).
			n.fail(failTdExceeded)
			return
		}
		n.parentPort = port
	}
	n.marked = true
	payload := encodeElim(n.depth, n.env.ID, pid(n.parentID))
	for port := 0; port < n.env.Degree; port++ {
		n.send[port].Push(payload)
	}
}

// pid encodes a possibly-negative parent ID into a u32-safe value.
func pid(id int) int {
	if id < 0 {
		return 0
	}
	return id
}

func (n *dpNode) portOfID(id int) (int, bool) {
	for port, nid := range n.env.NeighborIDs {
		if nid == id {
			return port, true
		}
	}
	return 0, false
}

// localTuple is this node's candidacy: the deepest marked neighbor (ties by
// minimum ID) with this node as the adoptee, or the root-election fallback
// (depth 0) when no neighbor is marked yet.
func (n *dpNode) localTuple() floodTuple {
	bestDepth, bestMarked := 0, 0
	for port := 0; port < n.env.Degree; port++ {
		d := int(n.markedNbr[port])
		if d < 0 {
			continue
		}
		id := n.env.NeighborIDs[port]
		if d > bestDepth || (d == bestDepth && id < bestMarked) {
			bestDepth, bestMarked = d, id
		}
	}
	return floodTuple{depth: bestDepth, markedID: bestMarked, candID: n.env.ID}
}

func (n *dpNode) handleElimMsg(port int, msg []byte) {
	a, b, c, err := decodeElim(msg)
	if err != nil {
		n.fail(failInvalid)
		return
	}
	if n.markedNbr[port] >= 0 {
		return // late traffic from a marked neighbor: ignore
	}
	senderID := n.env.NeighborIDs[port]
	if b == senderID {
		// Announcement (id, depth, parentID) encoded as (depth=a, id=b, parent=c).
		n.markedNbr[port] = int32(a)
		if c == n.env.ID && n.marked {
			// The sender adopted us as its parent: insert into the sorted
			// child list with its port kept index-aligned.
			pos := sort.SearchInts(n.childIDs, senderID)
			n.childIDs = append(n.childIDs, 0)
			copy(n.childIDs[pos+1:], n.childIDs[pos:])
			n.childIDs[pos] = senderID
			n.childPorts = append(n.childPorts, 0)
			copy(n.childPorts[pos+1:], n.childPorts[pos:])
			n.childPorts[pos] = port
		}
		return
	}
	// Flood tuple.
	t := floodTuple{depth: a, markedID: b, candID: c}
	if !n.marked && t.better(n.tuple) {
		n.tuple = t
	}
}

func encodeElim(a, b, c int) []byte {
	var w wireWriter
	w.u32(uint32(a))
	w.u32(uint32(b))
	w.u32(uint32(c))
	return w.buf
}

func decodeElim(msg []byte) (int, int, int, error) {
	r := wireReader{buf: msg}
	a, err := r.u32()
	if err != nil {
		return 0, 0, 0, err
	}
	b, err := r.u32()
	if err != nil {
		return 0, 0, 0, err
	}
	c, err := r.u32()
	if err != nil {
		return 0, 0, 0, err
	}
	return int(a), int(b), int(c), nil
}

// --- bags phase (Lemma 5.3) ---

func (n *dpNode) enterBagsPhase() {
	n.phase = phaseBags
	// The child set is final once elimination ends; the table buffers can be
	// laid out childIDs-aligned now.
	n.childTables = make([]childTable, len(n.childIDs))
	n.tableGot = make([]bool, len(n.childIDs))
	if !n.marked {
		// Report large treedepth (Algorithm 2, instruction 22) and tell all
		// neighbors, so the failure reaches the tree.
		n.fail(failTdExceeded)
		n.out.Failure = failTdExceeded
		n.env.Tag(KindBag)
		var w wireWriter
		w.u8(tagBagPeer)
		w.u8(failTdExceeded)
		w.u32(0)
		for port := 0; port < n.env.Degree; port++ {
			n.send[port].Push(w.buf)
		}
		n.phase = phaseDone
		return
	}
	if n.depth > n.cfg.depthBound() {
		n.fail(failTdExceeded)
	}
	if n.parentID < 0 {
		// The root's bag is itself; start the top-down propagation.
		n.setBag([]int{n.env.ID}, []bagVertex{{weight: n.env.Weight, labels: n.vertexLabelMask()}}, nil)
	}
}

func (n *dpNode) vertexLabelMask() uint32 {
	var mask uint32
	for i, name := range n.cfg.VertexLabelNames {
		if n.env.Labels[name] {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// setBag installs this node's bag and sends (a) the bag to each child and
// (b) the bag-peer verification message to every neighbor. info is
// index-aligned with the sorted bag.
func (n *dpNode) setBag(bag []int, info []bagVertex, parentEdges [][2]int) {
	n.bag = bag
	n.bagInfo = info
	n.haveBag = true
	n.env.Tag(KindBag)
	// G[B_u] = G[B_parent] plus this node's edges into the bag.
	n.bagEdges = append([][2]int(nil), parentEdges...)
	selfIdx := sort.SearchInts(bag, n.env.ID)
	for port, nid := range n.env.NeighborIDs {
		_ = port
		i := sort.SearchInts(bag, nid)
		if i < len(bag) && bag[i] == nid {
			lo, hi := selfIdx, i
			if lo > hi {
				lo, hi = hi, lo
			}
			n.bagEdges = append(n.bagEdges, [2]int{lo, hi})
		}
	}
	n.bagEdges = regular.NormalizeEdgePairs(n.bagEdges)

	// Send the child bag to each child: B_child = B_u + child (the child
	// adds itself), with per-vertex weight and label data.
	var w wireWriter
	w.u8(tagBag)
	w.u32(uint32(len(bag)))
	for i, id := range bag {
		w.u32(uint32(id))
		w.i64(n.bagInfo[i].weight)
		w.u32(n.bagInfo[i].labels)
	}
	w.u32(uint32(len(n.bagEdges)))
	for _, e := range n.bagEdges {
		w.u8(uint8(e[0]))
		w.u8(uint8(e[1]))
	}
	for i := range n.childIDs {
		n.send[n.childPorts[i]].Push(w.buf)
	}

	// Bag-peer verification to every neighbor.
	var pw wireWriter
	pw.u8(tagBagPeer)
	pw.u8(failNone)
	pw.u32(uint32(len(bag)))
	for _, id := range bag {
		pw.u32(uint32(id))
	}
	for port := 0; port < n.env.Degree; port++ {
		n.send[port].Push(pw.buf)
	}
}

func (n *dpNode) handleBagMsg(r *wireReader) error {
	count, err := r.u32()
	if err != nil {
		return err
	}
	parentBag := make([]int, 0, count)
	parentInfo := make([]bagVertex, 0, count)
	for i := uint32(0); i < count; i++ {
		id, err := r.u32()
		if err != nil {
			return err
		}
		weight, err := r.i64()
		if err != nil {
			return err
		}
		labels, err := r.u32()
		if err != nil {
			return err
		}
		parentBag = append(parentBag, int(id))
		parentInfo = append(parentInfo, bagVertex{weight: weight, labels: labels})
	}
	edgeCount, err := r.u32()
	if err != nil {
		return err
	}
	parentEdgesIdx := make([][2]int, 0, edgeCount)
	for i := uint32(0); i < edgeCount; i++ {
		a, err := r.u8()
		if err != nil {
			return err
		}
		b, err := r.u8()
		if err != nil {
			return err
		}
		parentEdgesIdx = append(parentEdgesIdx, [2]int{int(a), int(b)})
	}
	// Insert self into the sorted bag (and the aligned info slice); remap
	// parent edge indices.
	bag := append([]int(nil), parentBag...)
	pos := sort.SearchInts(bag, n.env.ID)
	bag = append(bag, 0)
	copy(bag[pos+1:], bag[pos:])
	bag[pos] = n.env.ID
	info := append(parentInfo, bagVertex{})
	copy(info[pos+1:], info[pos:])
	info[pos] = bagVertex{weight: n.env.Weight, labels: n.vertexLabelMask()}
	remap := func(i int) int {
		if i >= pos {
			return i + 1
		}
		return i
	}
	parentEdges := make([][2]int, 0, len(parentEdgesIdx))
	for _, e := range parentEdgesIdx {
		parentEdges = append(parentEdges, [2]int{remap(e[0]), remap(e[1])})
	}
	n.setBag(bag, info, parentEdges)
	return nil
}

func (n *dpNode) handleBagPeer(port int, r *wireReader) error {
	status, err := r.u8()
	if err != nil {
		return err
	}
	count, err := r.u32()
	if err != nil {
		return err
	}
	peerBag := make([]int, 0, count)
	for i := uint32(0); i < count; i++ {
		id, err := r.u32()
		if err != nil {
			return err
		}
		peerBag = append(peerBag, int(id))
	}
	n.peerBags++
	if status != failNone {
		n.peerFail = maxInt(n.peerFail, int(status))
		return nil
	}
	// Elimination check: this neighbor must be an ancestor or a descendant —
	// equivalently, our ID is in its bag or its ID will be in ours. We defer
	// the "its ID in ours" half until our bag arrives (checked in progress).
	nid := n.env.NeighborIDs[port]
	inPeer := containsSorted(peerBag, n.env.ID)
	if !inPeer {
		// Remember: neighbor nid must be in our bag.
		n.mustBeAncestor = append(n.mustBeAncestor, nid)
	}
	return nil
}

func containsSorted(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
