package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph/gen"
	"repro/internal/regular"
)

func TestRegistryLookup(t *testing.T) {
	if _, err := Lookup("acyclic"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); !errors.Is(err, ErrUnknownProblem) {
		t.Fatalf("err = %v", err)
	}
	seen := map[string]bool{}
	for _, p := range Problems() {
		if seen[p.Name] {
			t.Fatalf("duplicate problem %q", p.Name)
		}
		seen[p.Name] = true
		if p.Description == "" || p.Build == nil {
			t.Fatalf("problem %q incomplete", p.Name)
		}
	}
}

// Every registered problem with an oracle must agree with it, both
// sequentially and distributed, on random bounded-treedepth instances.
func TestAllProblemsAgreeWithOracles(t *testing.T) {
	r := rand.New(rand.NewSource(701))
	for _, prob := range Problems() {
		prob := prob
		t.Run(prob.Name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				n := 4 + r.Intn(6)
				g, _ := gen.BoundedTreedepth(n, 2, 0.6, r.Int63())
				gen.AssignRandomWeights(g, 8, r.Int63())
				seqSol, err := SolveSequential(g, prob)
				if err != nil {
					t.Fatalf("trial %d: sequential: %v", trial, err)
				}
				distSol, err := SolveDistributed(g, prob, 3, congest.Options{IDSeed: r.Int63()})
				if err != nil {
					t.Fatalf("trial %d: distributed: %v", trial, err)
				}
				if distSol.TdExceeded {
					t.Fatalf("trial %d: unexpected treedepth report", trial)
				}
				switch prob.Kind {
				case KindDecision:
					if seqSol.Accepted != distSol.Accepted {
						t.Fatalf("trial %d: seq=%v dist=%v", trial, seqSol.Accepted, distSol.Accepted)
					}
				case KindOptimization:
					if seqSol.Found != distSol.Found || (seqSol.Found && seqSol.Weight != distSol.Weight) {
						t.Fatalf("trial %d: seq=(%v,%d) dist=(%v,%d)",
							trial, seqSol.Found, seqSol.Weight, distSol.Found, distSol.Weight)
					}
				case KindCounting:
					if seqSol.Count != distSol.Count {
						t.Fatalf("trial %d: seq=%d dist=%d", trial, seqSol.Count, distSol.Count)
					}
				}
				if prob.Oracle == nil {
					continue
				}
				okOracle, weightOracle, err := prob.Oracle(g)
				if err != nil {
					t.Fatalf("trial %d: oracle: %v", trial, err)
				}
				switch prob.Kind {
				case KindDecision:
					if distSol.Accepted != okOracle {
						t.Fatalf("trial %d: dist=%v oracle=%v", trial, distSol.Accepted, okOracle)
					}
				case KindOptimization:
					if distSol.Found != okOracle || (okOracle && distSol.Weight != weightOracle) {
						t.Fatalf("trial %d: dist=(%v,%d) oracle=(%v,%d)",
							trial, distSol.Found, distSol.Weight, okOracle, weightOracle)
					}
				}
			}
		})
	}
}

func TestCompileClosedFormula(t *testing.T) {
	pred, err := CompileClosedFormula("~ exists x:V, y:V, z:V . adj(x,y) & adj(y,z) & adj(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	custom := Problem{
		Name: "custom-triangle-free", Kind: KindDecision,
		Build: func() (regular.Predicate, error) { return pred, nil },
	}
	sol, err := SolveDistributed(gen.Cycle(6), custom, 4, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.TdExceeded || !sol.Accepted {
		t.Fatalf("C6 should be triangle-free: %+v", sol)
	}
	if _, err := CompileClosedFormula("(("); err == nil {
		t.Fatal("parse errors should surface")
	}
}
