// Package core ties the engines together: a registry of named problems
// (predicate + mode + direction) spanning the paper's applications, used by
// the command-line tools and the benchmark harness, plus a uniform Solve
// entry point that can run any registered problem sequentially (Algorithm 1)
// or distributed (Theorem 6.1).
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mso"
	"repro/internal/mso/msolib"
	"repro/internal/msoauto"
	"repro/internal/protocols"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
)

// ErrUnknownProblem is returned for unregistered problem names.
var ErrUnknownProblem = errors.New("core: unknown problem")

// Kind classifies what a problem computes.
type Kind int

// Problem kinds.
const (
	KindDecision Kind = iota + 1
	KindOptimization
	KindCounting
)

// Problem is a registered, named problem instance.
type Problem struct {
	Name string
	Kind Kind
	// Maximize applies to optimization problems.
	Maximize bool
	// Build returns a fresh predicate (some predicates carry parameters).
	Build func() (regular.Predicate, error)
	// Oracle evaluates the problem naively for cross-validation; nil when
	// no oracle formula exists. For decision problems the weight is 0.
	Oracle func(g *graph.Graph) (bool, int64, error)
	// Description is a one-line human-readable summary.
	Description string
}

func decisionOracle(f mso.Formula) func(*graph.Graph) (bool, int64, error) {
	return func(g *graph.Graph) (bool, int64, error) {
		v, err := mso.NewEvaluator(g).Eval(f, nil)
		return v, 0, err
	}
}

func optOracle(f mso.Formula, kind mso.VarKind, maximize bool) func(*graph.Graph) (bool, int64, error) {
	return func(g *graph.Graph) (bool, int64, error) {
		res, err := mso.NewEvaluator(g).OptimizeSet(f, msolib.FreeSet, kind, maximize)
		if err != nil {
			return false, 0, err
		}
		return res.Found, res.Weight, nil
	}
}

// Problems returns the registry, sorted by name.
func Problems() []Problem {
	ps := []Problem{
		{
			Name: "acyclic", Kind: KindDecision,
			Build:       func() (regular.Predicate, error) { return predicates.Acyclicity{}, nil },
			Oracle:      decisionOracle(msolib.Acyclic()),
			Description: "G has no cycle (closed MSO)",
		},
		{
			Name: "connected", Kind: KindDecision,
			Build:       func() (regular.Predicate, error) { return predicates.Connectivity{}, nil },
			Oracle:      decisionOracle(msolib.Connected()),
			Description: "G is connected (closed MSO)",
		},
		{
			Name: "3-colorable", Kind: KindDecision,
			Build:       func() (regular.Predicate, error) { return predicates.KColorability{K: 3}, nil },
			Oracle:      decisionOracle(msolib.KColorable(3)),
			Description: "G admits a proper 3-coloring (the paper's running example, negated)",
		},
		{
			Name: "2-colorable", Kind: KindDecision,
			Build:       func() (regular.Predicate, error) { return predicates.KColorability{K: 2}, nil },
			Oracle:      decisionOracle(msolib.KColorable(2)),
			Description: "G is bipartite",
		},
		{
			Name: "triangle-free", Kind: KindDecision,
			Build: func() (regular.Predicate, error) {
				h := graph.New(3)
				h.MustAddEdge(0, 1)
				h.MustAddEdge(1, 2)
				h.MustAddEdge(2, 0)
				p, err := predicates.NewHSubgraph(h)
				if err != nil {
					return nil, err
				}
				return predicates.Negate(p), nil
			},
			Oracle:      decisionOracle(msolib.TriangleFree()),
			Description: "G contains no triangle (H-freeness via the subgraph predicate)",
		},
		{
			Name: "has-perfect-matching", Kind: KindDecision,
			Build:       func() (regular.Predicate, error) { return predicates.Matching{Perfect: true}, nil },
			Oracle:      decisionOracle(msolib.HasPerfectMatching()),
			Description: "G has a perfect matching",
		},
		{
			Name: "max-independent-set", Kind: KindOptimization, Maximize: true,
			Build:       func() (regular.Predicate, error) { return predicates.IndependentSet{}, nil },
			Oracle:      optOracle(msolib.IndependentSet(), mso.KindVertexSet, true),
			Description: "maximum-weight independent set",
		},
		{
			Name: "min-vertex-cover", Kind: KindOptimization, Maximize: false,
			Build:       func() (regular.Predicate, error) { return predicates.VertexCover{}, nil },
			Oracle:      optOracle(msolib.VertexCover(), mso.KindVertexSet, false),
			Description: "minimum-weight vertex cover",
		},
		{
			Name: "min-dominating-set", Kind: KindOptimization, Maximize: false,
			Build:       func() (regular.Predicate, error) { return predicates.DominatingSet{}, nil },
			Oracle:      optOracle(msolib.DominatingSet(), mso.KindVertexSet, false),
			Description: "minimum-weight dominating set",
		},
		{
			Name: "min-feedback-vertex-set", Kind: KindOptimization, Maximize: false,
			Build:       func() (regular.Predicate, error) { return predicates.FeedbackVertexSet{}, nil },
			Oracle:      optOracle(msolib.FeedbackVertexSet(), mso.KindVertexSet, false),
			Description: "minimum-weight feedback vertex set",
		},
		{
			Name: "mst", Kind: KindOptimization, Maximize: false,
			Build:       func() (regular.Predicate, error) { return predicates.SpanningTree{}, nil },
			Oracle:      optOracle(msolib.SpanningTree(), mso.KindEdgeSet, false),
			Description: "minimum-weight spanning tree",
		},
		{
			Name: "max-matching", Kind: KindOptimization, Maximize: true,
			Build:       func() (regular.Predicate, error) { return predicates.Matching{}, nil },
			Oracle:      optOracle(msolib.Matching(), mso.KindEdgeSet, true),
			Description: "maximum-weight matching",
		},
		{
			Name: "min-steiner-tree", Kind: KindOptimization, Maximize: false,
			Build:       func() (regular.Predicate, error) { return predicates.SteinerTree{}, nil },
			Description: "minimum-weight Steiner tree over 'terminal'-labeled vertices",
		},
		{
			Name: "hamiltonian-cycle", Kind: KindDecision,
			Build:       func() (regular.Predicate, error) { return decideViaExists{predicates.HamiltonianCycle{}}, nil },
			Description: "G has a Hamiltonian cycle",
		},
		{
			Name: "min-tsp-tour", Kind: KindOptimization, Maximize: false,
			Build:       func() (regular.Predicate, error) { return predicates.HamiltonianCycle{}, nil },
			Description: "minimum-weight Hamiltonian cycle",
		},
		{
			Name: "count-hamiltonian-cycles", Kind: KindCounting,
			Build:       func() (regular.Predicate, error) { return predicates.HamiltonianCycle{}, nil },
			Description: "number of Hamiltonian cycles",
		},
		{
			Name: "count-triangles", Kind: KindCounting,
			Build:       func() (regular.Predicate, error) { return predicates.Triangles{}, nil },
			Description: "number of triangles",
		},
		{
			Name: "count-perfect-matchings", Kind: KindCounting,
			Build:       func() (regular.Predicate, error) { return predicates.Matching{Perfect: true}, nil },
			Description: "number of perfect matchings",
		},
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// Lookup finds a problem by name.
func Lookup(name string) (Problem, error) {
	for _, p := range Problems() {
		if p.Name == name {
			return p, nil
		}
	}
	return Problem{}, fmt.Errorf("%w: %q", ErrUnknownProblem, name)
}

// decideViaExists adapts a free-set predicate to the decision question
// "does some satisfying set exist?" — the class-set bottom-up phase already
// tracks all reachable classes, so Decide with the same predicate answers
// existence directly.
type decideViaExists struct {
	regular.Predicate
}

// Solution is the uniform result of Solve.
type Solution struct {
	TdExceeded bool
	Accepted   bool
	Found      bool
	Weight     int64
	Count      int64
	Selected   *bitset.Set // vertex or edge IDs, per predicate kind
	Stats      congest.Stats
	// Reliability holds the reliable-delivery adapter's counters when the
	// run used SolveDistributedReliable (zero otherwise).
	Reliability protocols.RelStats
}

// SolveDistributed runs the problem's distributed protocol with treedepth
// parameter d.
func SolveDistributed(g *graph.Graph, prob Problem, d int, opts congest.Options) (*Solution, error) {
	return solveDistributed(g, prob, d, opts, false, protocols.ReliableConfig{}, nil)
}

// SolveDistributedCached is SolveDistributed with every node evaluating its
// DP through a handle of the given process-lifetime shared cache (which must
// wrap the same predicate the problem builds). Results are bit-identical to
// SolveDistributed; only work is saved.
func SolveDistributedCached(g *graph.Graph, prob Problem, d int, opts congest.Options, cache *regular.Shared) (*Solution, error) {
	return solveDistributed(g, prob, d, opts, false, protocols.ReliableConfig{}, cache)
}

// SolveDistributedReliable is SolveDistributed with every node wrapped in
// the reliable-delivery adapter (see protocols.Reliable): the protocol
// tolerates the faults injected via opts.Injector at the cost of extra
// rounds. opts.BandwidthFactor must give the adapter's minimum frame budget
// (protocols.ReliableBandwidthFactor is the standard choice). When injected
// faults exceed the retry budget the error wraps protocols.ErrUnrecoverable.
func SolveDistributedReliable(g *graph.Graph, prob Problem, d int, opts congest.Options, rel protocols.ReliableConfig) (*Solution, error) {
	return solveDistributed(g, prob, d, opts, true, rel, nil)
}

func solveDistributed(g *graph.Graph, prob Problem, d int, opts congest.Options, reliable bool, rel protocols.ReliableConfig, cache *regular.Shared) (*Solution, error) {
	pred, err := prob.Build()
	if err != nil {
		return nil, err
	}
	cfg := protocols.Config{Pred: pred, D: d, Reliable: reliable, Rel: rel, Cache: cache}
	switch prob.Kind {
	case KindDecision:
		cfg.Mode = protocols.ModeDecide
	case KindOptimization:
		cfg.Mode = protocols.ModeOptimize
		cfg.Maximize = prob.Maximize
	case KindCounting:
		cfg.Mode = protocols.ModeCount
	default:
		return nil, fmt.Errorf("core: unknown kind %d", prob.Kind)
	}
	run, err := protocols.Run(g, cfg, opts)
	if err != nil {
		return nil, err
	}
	sel := run.Selected
	if sel == nil {
		sel = run.SelectedEdges
	}
	return &Solution{
		TdExceeded:  run.TdExceeded,
		Accepted:    run.Accepted,
		Found:       run.Found,
		Weight:      run.Weight,
		Count:       run.Count,
		Selected:    sel,
		Stats:       run.Stats,
		Reliability: run.Reliability,
	}, nil
}

// SolveSequential runs the problem centrally with Algorithm 1 over a DFS
// elimination tree (the baseline of the benchmark harness).
func SolveSequential(g *graph.Graph, prob Problem) (*Solution, error) {
	return SolveSequentialForest(g, prob, treedepth.DFSForest(g))
}

// SolveSequentialForest is SolveSequential over a caller-supplied elimination
// forest — e.g. an exact-treedepth witness instead of the DFS heuristic.
func SolveSequentialForest(g *graph.Graph, prob Problem, forest *treedepth.Forest) (*Solution, error) {
	pred, err := prob.Build()
	if err != nil {
		return nil, err
	}
	run, err := seq.New(g, forest, pred)
	if err != nil {
		return nil, err
	}
	return finishSequential(run, prob)
}

// SolveSequentialCached is SolveSequential evaluating through a handle of the
// given process-lifetime shared cache (which must wrap the same predicate the
// problem builds). Results are bit-identical to SolveSequential.
func SolveSequentialCached(g *graph.Graph, prob Problem, cache *regular.Shared) (*Solution, error) {
	run, err := seq.NewWithCache(g, treedepth.DFSForest(g), cache.Handle())
	if err != nil {
		return nil, err
	}
	return finishSequential(run, prob)
}

// finishSequential drives a constructed runner through the problem's phase.
func finishSequential(run *seq.Runner, prob Problem) (*Solution, error) {
	out := &Solution{}
	var err error
	switch prob.Kind {
	case KindDecision:
		out.Accepted, err = run.Decide()
	case KindOptimization:
		var res seq.OptResult
		res, err = run.Optimize(prob.Maximize)
		out.Found, out.Weight = res.Found, res.Weight
		if res.Vertices != nil {
			out.Selected = res.Vertices
		} else {
			out.Selected = res.Edges
		}
	case KindCounting:
		out.Count, err = run.Count()
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CompileClosedFormula compiles a closed MSO formula text into a predicate
// via the generic engine.
func CompileClosedFormula(text string) (regular.Predicate, error) {
	f, err := mso.Parse(text)
	if err != nil {
		return nil, err
	}
	return msoauto.New(f, msoauto.Options{})
}
