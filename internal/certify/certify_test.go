package certify

import (
	"math/rand"
	"testing"

	"repro/internal/congest"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/mso"
	"repro/internal/mso/msolib"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
)

func proveAndVerify(t *testing.T, g *graph.Graph, d int, pred regular.Predicate) (bool, []Certificate) {
	t.Helper()
	certs, err := Prove(g, d, pred)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := Verify(g, d, pred, certs)
	return ok, certs
}

func TestCompletenessAcyclic(t *testing.T) {
	r := rand.New(rand.NewSource(1101))
	for trial := 0; trial < 15; trial++ {
		g := gen.RandomTree(4+r.Intn(12), r.Int63())
		ok, certs := proveAndVerify(t, g, 4, predicates.Acyclicity{})
		if !ok {
			t.Fatalf("trial %d: honest proof of a true instance rejected", trial)
		}
		if MaxCertificateBits(certs) == 0 {
			t.Fatal("certificates should have positive size")
		}
	}
}

func TestSoundnessRejectsFalseInstances(t *testing.T) {
	// On a cyclic graph, no acyclicity certificate is accepted — in
	// particular not the honest prover's, and not random mutations of it.
	r := rand.New(rand.NewSource(1102))
	g := gen.Cycle(7)
	certs, err := Prove(g, 4, predicates.Acyclicity{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, rejectors := Verify(g, 4, predicates.Acyclicity{}, certs); ok {
		t.Fatal("false instance accepted")
	} else if len(rejectors) == 0 {
		t.Fatal("no rejector reported")
	}
	// Adversarial prover: mutate certificates trying to sneak the proof
	// through; every attempt must still be rejected somewhere.
	for attempt := 0; attempt < 300; attempt++ {
		mutated := cloneCerts(certs)
		for k := 0; k < 1+r.Intn(4); k++ {
			v := r.Intn(len(mutated))
			switch r.Intn(5) {
			case 0:
				mutated[v].Accepting = true
			case 1:
				mutated[v].ParentID = r.Intn(len(mutated) + 1)
			case 2:
				mutated[v].Depth = 1 + r.Intn(8)
			case 3:
				if len(mutated[v].ClassKey) > 0 {
					mutated[v].ClassKey[r.Intn(len(mutated[v].ClassKey))] ^= byte(1 + r.Intn(255))
				}
			case 4:
				mutated[v].Bag = append([]int(nil), mutated[v].Bag...)
				if len(mutated[v].Bag) > 0 {
					mutated[v].Bag[r.Intn(len(mutated[v].Bag))] = 1 + r.Intn(len(mutated))
				}
			}
		}
		if ok, _ := Verify(g, 4, predicates.Acyclicity{}, mutated); ok {
			t.Fatalf("attempt %d: adversarial certificates accepted on a false instance", attempt)
		}
	}
}

func TestCertifyMatchesOracleAcrossPredicates(t *testing.T) {
	r := rand.New(rand.NewSource(1103))
	preds := []struct {
		pred    regular.Predicate
		formula mso.Formula
	}{
		{predicates.Acyclicity{}, msolib.Acyclic()},
		{predicates.KColorability{K: 2}, msolib.KColorable(2)},
	}
	for _, tc := range preds {
		for trial := 0; trial < 10; trial++ {
			g, _ := gen.BoundedTreedepth(4+r.Intn(8), 2, 0.5, r.Int63())
			want, err := mso.NewEvaluator(g).Eval(tc.formula, nil)
			if err != nil {
				t.Fatal(err)
			}
			certs, err := Prove(g, 3, tc.pred)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := Verify(g, 3, tc.pred, certs)
			if got != want {
				t.Fatalf("%s trial %d: certified=%v oracle=%v", tc.pred.Name(), trial, got, want)
			}
		}
	}
}

func TestVerifyRejectsWrongLength(t *testing.T) {
	g := gen.Path(4)
	ok, rejectors := Verify(g, 3, predicates.Acyclicity{}, nil)
	if ok || len(rejectors) != 4 {
		t.Fatal("missing certificates must be rejected everywhere")
	}
}

func TestProveValidation(t *testing.T) {
	dis, _ := gen.DisjointUnion(gen.Path(2), gen.Path(2))
	if _, err := Prove(dis, 3, predicates.Acyclicity{}); err == nil {
		t.Fatal("disconnected graph should be rejected")
	}
	if _, err := Prove(gen.Path(4), 3, predicates.IndependentSet{}); err == nil {
		t.Fatal("free-variable predicates cannot be certified by this scheme")
	}
	// td(P40) = 6: a depth-2 budget fails.
	if _, err := Prove(gen.Path(40), 2, predicates.Acyclicity{}); err == nil {
		t.Fatal("deep trees should be rejected for small d")
	}
}

func TestCertificateSizeScalesWithLogN(t *testing.T) {
	// For fixed d, certificate bits grow only through the O(log n) ID width
	// (here IDs are machine ints, so the bag length dominates and is O(2^d)).
	const d = 3
	prev := 0
	for _, n := range []int{16, 64, 256} {
		g, _ := gen.BoundedTreedepth(n, d, 0.2, int64(n))
		certs, err := Prove(g, d, predicates.Acyclicity{})
		if err != nil {
			t.Fatal(err)
		}
		bits := MaxCertificateBits(certs)
		if bits <= 0 {
			t.Fatal("certificate bits must be positive")
		}
		// Bounded by the depth bound, not by n.
		if prev != 0 && bits > 4*prev {
			t.Fatalf("certificate size exploded with n: %d -> %d", prev, bits)
		}
		prev = bits
	}
}

func cloneCerts(in []Certificate) []Certificate {
	out := make([]Certificate, len(in))
	for i, c := range in {
		out[i] = c
		out[i].Bag = append([]int(nil), c.Bag...)
		out[i].ClassKey = append([]byte(nil), c.ClassKey...)
	}
	return out
}

func TestVerifyDistributedCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(1104))
	for trial := 0; trial < 8; trial++ {
		g := gen.RandomTree(4+r.Intn(10), r.Int63())
		certs, err := Prove(g, 4, predicates.Acyclicity{})
		if err != nil {
			t.Fatal(err)
		}
		ok, stats, err := VerifyDistributed(g, 4, predicates.Acyclicity{}, certs, congest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: honest distributed verification rejected", trial)
		}
		if stats.Rounds < 1 {
			t.Fatal("the exchange costs at least one round")
		}
		// The distributed and sequential verifiers must agree.
		seqOK, _ := Verify(g, 4, predicates.Acyclicity{}, certs)
		if seqOK != ok {
			t.Fatalf("trial %d: distributed %v != sequential %v", trial, ok, seqOK)
		}
	}
}

func TestVerifyDistributedSoundness(t *testing.T) {
	g := gen.Cycle(8)
	certs, err := Prove(g, 4, predicates.Acyclicity{})
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := VerifyDistributed(g, 4, predicates.Acyclicity{}, certs, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("false instance accepted by the distributed verifier")
	}
	// Corrupted certificates are rejected, not crashed on.
	r := rand.New(rand.NewSource(1105))
	for attempt := 0; attempt < 50; attempt++ {
		mutated := cloneCerts(certs)
		v := r.Intn(len(mutated))
		if len(mutated[v].ClassKey) > 0 {
			mutated[v].ClassKey[r.Intn(len(mutated[v].ClassKey))] ^= 0xFF
		}
		mutated[v].Accepting = true
		if ok, _, err := VerifyDistributed(g, 4, predicates.Acyclicity{}, mutated, congest.Options{}); err != nil {
			t.Fatal(err)
		} else if ok {
			t.Fatalf("attempt %d: corrupted certificates accepted", attempt)
		}
	}
}

func TestVerifyDistributedValidation(t *testing.T) {
	g := gen.Path(4)
	certs, err := Prove(g, 3, predicates.Acyclicity{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyDistributed(g, 3, predicates.Acyclicity{}, certs, congest.Options{IDSeed: 7}); err == nil {
		t.Fatal("non-identity IDs should be rejected")
	}
	if _, _, err := VerifyDistributed(g, 3, predicates.Acyclicity{}, certs[:2], congest.Options{}); err == nil {
		t.Fatal("wrong certificate count should be rejected")
	}
}

func TestCertificateWireRoundTrip(t *testing.T) {
	c := Certificate{ParentID: 7, Depth: 3, Bag: []int{2, 5, 7}, ClassKey: []byte{9, 8, 7}, Accepting: true}
	back, err := decodeCertificate(encodeCertificate(c))
	if err != nil {
		t.Fatal(err)
	}
	if back.ParentID != 7 || back.Depth != 3 || !back.Accepting ||
		len(back.Bag) != 3 || back.Bag[1] != 5 || string(back.ClassKey) != string(c.ClassKey) {
		t.Fatalf("round trip changed: %+v", back)
	}
	if _, err := decodeCertificate([]byte{1, 2}); err == nil {
		t.Fatal("truncated certificate should fail to decode")
	}
}
