// Package certify implements distributed certification (proof-labeling
// schemes) of MSO predicates on graphs of bounded treedepth — the setting of
// Bousquet, Feuilloley and Pierron [PODC 2022] that the paper's meta-theorem
// enhances from certification to decision.
//
// The prover, knowing the whole graph, assigns each vertex a certificate:
// its elimination-tree parent and depth, its bag (itself plus its
// ancestors), and the homomorphism class of its subtree graph. The verifier
// is the canonical one-round protocol: every vertex exchanges certificates
// with its neighbors once and checks purely local conditions — bag chains,
// the ancestor/descendant property of every incident edge, and that its
// class is the fold of its children's classes with its own base graph. If
// the predicate holds, the honest prover's certificates are accepted
// everywhere (completeness); if it does not, every possible certificate
// assignment is rejected by at least one vertex (soundness).
//
// For a fixed predicate and treedepth bound, certificates have
// O(2^d log n + |class|) bits, matching the O(log n)-bits-for-fixed-d regime
// of the certification literature.
package certify

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/regular"
	"repro/internal/treedepth"
	"repro/internal/wterm"
)

// ErrCertify is wrapped by prover-side failures.
var ErrCertify = errors.New("certify: error")

// Certificate is one vertex's label. Identifiers are vertex+1 (0 = none).
type Certificate struct {
	// ParentID is the elimination-tree parent's identifier (0 for the root).
	ParentID int
	// Depth is the vertex's depth in the elimination tree (root = 1).
	Depth int
	// Bag is the sorted list of identifiers of the vertex and its ancestors.
	Bag []int
	// ClassKey is the canonical encoding of h(G_v), the homomorphism class
	// of the subtree graph with the bag as terminals.
	ClassKey []byte
	// Accepting is the prover's claim that the root class is accepting; only
	// meaningful at the root (everyone else carries false).
	Accepting bool
}

// Bits returns the certificate's size in bits on the wire.
func (c Certificate) Bits() int {
	return 64 + 64 + 64*len(c.Bag) + 8*len(c.ClassKey) + 1
}

// Prove builds certificates for predicate pred on g using an elimination
// tree of depth at most 2^d (a DFS tree; Lemma 2.5). It fails when
// td(G) > d would force a deeper tree. Only closed predicates (a single
// class per subgraph) can be certified by this scheme.
func Prove(g *graph.Graph, d int, pred regular.Predicate) ([]Certificate, error) {
	if pred.SetKind() != regular.SetNone {
		return nil, fmt.Errorf("%w: certification needs a closed predicate, %s has a free set variable",
			ErrCertify, pred.Name())
	}
	if !g.IsConnected() || g.NumVertices() == 0 {
		return nil, fmt.Errorf("%w: graph must be connected and nonempty", ErrCertify)
	}
	forest := treedepth.DFSForest(g)
	if forest.Depth() > 1<<uint(d) {
		return nil, fmt.Errorf("%w: elimination tree depth %d exceeds 2^%d (treedepth too large)",
			ErrCertify, forest.Depth(), d)
	}
	deriv, err := wterm.NewDerivation(g, forest)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	children := forest.Children()
	classes := make([]regular.Class, n)
	for _, u := range deriv.Order {
		base, err := deriv.Base(u)
		if err != nil {
			return nil, err
		}
		set, err := regular.BaseClassSet(pred, base)
		if err != nil {
			return nil, err
		}
		if len(set) != 1 {
			return nil, fmt.Errorf("%w: closed predicate produced %d base classes", ErrCertify, len(set))
		}
		var acc regular.Class
		for _, c := range set {
			acc = c
		}
		for _, child := range children[u] {
			glue, err := deriv.FoldGluing(u, child)
			if err != nil {
				return nil, err
			}
			next, ok, err := pred.Compose(glue, acc, classes[child])
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("%w: incompatible closed-class fold", ErrCertify)
			}
			acc = next
		}
		classes[u] = acc
	}
	certs := make([]Certificate, n)
	for v := 0; v < n; v++ {
		bag := make([]int, len(deriv.Bags[v]))
		for i, u := range deriv.Bags[v] {
			bag[i] = u + 1
		}
		parentID := 0
		if p := forest.Parent[v]; p >= 0 {
			parentID = p + 1
		}
		certs[v] = Certificate{
			ParentID: parentID,
			Depth:    forest.DepthOf(v),
			Bag:      bag,
			ClassKey: []byte(classes[v].Key()),
		}
	}
	root := forest.Roots()[0]
	accepting, err := pred.Accepting(classes[root])
	if err != nil {
		return nil, err
	}
	certs[root].Accepting = accepting
	return certs, nil
}

// Verify runs the one-round verifier at every vertex: each vertex sees its
// own certificate, its neighbors' certificates, and its local edges. It
// returns the global verdict (all vertices accept) and the list of
// rejecting vertices.
func Verify(g *graph.Graph, d int, pred regular.Predicate, certs []Certificate) (bool, []int) {
	n := g.NumVertices()
	var rejectors []int
	if len(certs) != n {
		for v := 0; v < n; v++ {
			rejectors = append(rejectors, v)
		}
		return false, rejectors
	}
	for v := 0; v < n; v++ {
		if !verifyAt(g, d, pred, certs, v) {
			rejectors = append(rejectors, v)
		}
	}
	return len(rejectors) == 0, rejectors
}

// neighborCert pairs a neighbor's identifier with its certificate, the
// verifier's one-round view.
type neighborCert struct {
	ID   int
	Cert Certificate
}

// verifyAt is the local check of a single vertex. It may only inspect v's
// own certificate, its neighbors' certificates, and v's incident edges.
func verifyAt(g *graph.Graph, d int, pred regular.Predicate, certs []Certificate, v int) bool {
	neighbors := make([]neighborCert, 0, g.Degree(v))
	for _, w := range g.Neighbors(v) {
		neighbors = append(neighbors, neighborCert{ID: w + 1, Cert: certs[w]})
	}
	base, err := localBase(g, certs[v].Bag, v)
	if err != nil {
		return false
	}
	return localCheck(d, pred, v+1, certs[v], neighbors, base)
}

// localCheck is the verifier's node program: it sees only the node's own
// certificate, its neighbors' certificates, and its own base graph.
// Certificates are adversarial input: any malformation — including ones that
// would make a predicate implementation panic — is a rejection.
func localCheck(d int, pred regular.Predicate, id int, self Certificate, neighbors []neighborCert, base *wterm.TerminalGraph) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()

	// Structural sanity: sorted bag containing self, depth = |bag| <= 2^d.
	if len(self.Bag) != self.Depth || self.Depth < 1 || self.Depth > 1<<uint(d) {
		return false
	}
	if !sort.IntsAreSorted(self.Bag) || !containsSorted(self.Bag, id) {
		return false
	}
	// Non-root claims below the root line must not claim acceptance.
	if self.ParentID == 0 {
		if self.Depth != 1 || len(self.Bag) != 1 {
			return false
		}
	} else if self.Accepting {
		return false
	}

	parentSeen := false
	for _, nc := range neighbors {
		peer := nc.Cert
		wid := nc.ID
		// Elimination property: every incident edge joins ancestor and
		// descendant — one endpoint's bag contains the other.
		if !containsSorted(self.Bag, wid) && !containsSorted(peer.Bag, id) {
			return false
		}
		if wid == self.ParentID {
			parentSeen = true
			// Bag chain: our bag is the parent's bag plus ourselves.
			if peer.Depth != self.Depth-1 {
				return false
			}
			want := insertSorted(peer.Bag, id)
			if !equalInts(self.Bag, want) {
				return false
			}
		}
		// Children consistency (checked during the fold below).
		if peer.ParentID == id {
			if peer.Depth != self.Depth+1 {
				return false
			}
			want := insertSorted(self.Bag, wid)
			if !equalInts(peer.Bag, want) {
				return false
			}
		}
	}
	if self.ParentID != 0 && !parentSeen {
		return false // the claimed parent is not even a neighbor
	}

	// Class check: our class must equal the fold of our base class with our
	// children's classes.
	set, err := regular.BaseClassSet(pred, base)
	if err != nil || len(set) != 1 {
		return false
	}
	var acc regular.Class
	for _, c := range set {
		acc = c
	}
	// Children in increasing ID order, exactly as the honest prover folds.
	children := map[int]Certificate{}
	var childIDs []int
	for _, nc := range neighbors {
		if nc.Cert.ParentID == id {
			childIDs = append(childIDs, nc.ID)
			children[nc.ID] = nc.Cert
		}
	}
	sort.Ints(childIDs)
	for _, cid := range childIDs {
		child := children[cid]
		childClass, err := pred.DecodeClass(child.ClassKey)
		if err != nil {
			return false
		}
		glue, err := wterm.GluingFromBags(self.Bag, child.Bag, self.Bag)
		if err != nil {
			return false
		}
		next, ok, err := pred.Compose(glue, acc, childClass)
		if err != nil || !ok {
			return false
		}
		acc = next
	}
	if !bytes.Equal([]byte(acc.Key()), self.ClassKey) {
		return false
	}
	// The root checks the verdict itself.
	if self.ParentID == 0 {
		accepting, err := pred.Accepting(acc)
		if err != nil || !accepting || !self.Accepting {
			return false
		}
	}
	return true
}

// localBase rebuilds the vertex's edge-owned base graph from its bag and
// incident edges — information the verifier legitimately has.
func localBase(g *graph.Graph, bagIDs []int, v int) (*wterm.TerminalGraph, error) {
	bag := make([]int, len(bagIDs))
	for i, id := range bagIDs {
		u := id - 1
		if u < 0 || u >= g.NumVertices() {
			return nil, fmt.Errorf("%w: bag ID %d out of range", ErrCertify, id)
		}
		bag[i] = u
	}
	return wterm.BaseFromBag(g, bag, v)
}

func containsSorted(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

func insertSorted(xs []int, v int) []int {
	out := make([]int, 0, len(xs)+1)
	pos := sort.SearchInts(xs, v)
	out = append(out, xs[:pos]...)
	out = append(out, v)
	out = append(out, xs[pos:]...)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MaxCertificateBits returns the largest certificate size of an assignment.
func MaxCertificateBits(certs []Certificate) int {
	max := 0
	for _, c := range certs {
		if b := c.Bits(); b > max {
			max = b
		}
	}
	return max
}
