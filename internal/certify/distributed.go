package certify

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/regular"
	"repro/internal/wterm"
)

// VerifyDistributed runs the certification verifier as an actual CONGEST
// protocol: every node streams its certificate to all neighbors once, then
// performs the local check of the scheme. The logical protocol is one round;
// under the B-bit budget the exchange costs ceil(|certificate|/B) + O(1)
// rounds, which the returned stats report.
//
// The simulator must use the identity identifier assignment (vertex v has ID
// v+1, the scheme's convention), so opts.IDSeed must be zero. Labeled
// predicates are not supported by the distributed verifier: a node cannot
// know its ancestors' labels from one certificate exchange (the sequential
// Verify supports them).
func VerifyDistributed(g *graph.Graph, d int, pred regular.Predicate, certs []Certificate, opts congest.Options) (bool, congest.Stats, error) {
	if opts.IDSeed != 0 {
		return false, congest.Stats{}, fmt.Errorf("%w: the distributed verifier needs identity IDs (IDSeed = 0)", ErrCertify)
	}
	sim, err := congest.NewSimulator(g, opts)
	if err != nil {
		return false, congest.Stats{}, err
	}
	n := g.NumVertices()
	if len(certs) != n {
		return false, congest.Stats{}, fmt.Errorf("%w: %d certificates for %d vertices", ErrCertify, len(certs), n)
	}
	nodes := make([]*verifierNode, n)
	stats, err := sim.Run(func(v int) congest.Node {
		nodes[v] = &verifierNode{d: d, pred: pred, cert: certs[v]}
		return nodes[v]
	})
	if err != nil {
		return false, stats, err
	}
	for v := 0; v < n; v++ {
		if !nodes[v].accepted {
			return false, stats, nil
		}
	}
	return true, stats, nil
}

type verifierNode struct {
	d    int
	pred regular.Predicate
	cert Certificate

	env      *congest.Env
	send     []congest.ByteStreamSender
	recv     []congest.ByteStreamReceiver
	received int
	peers    []neighborCert
	accepted bool
	done     bool
}

// KindCertificate tags the one-shot certificate exchange in traces.
const KindCertificate = "certificate"

// Init implements congest.Node: push the certificate to every neighbor.
func (n *verifierNode) Init(env *congest.Env) []congest.Outgoing {
	n.env = env
	env.Tag(KindCertificate)
	n.send = make([]congest.ByteStreamSender, env.Degree)
	n.recv = make([]congest.ByteStreamReceiver, env.Degree)
	payload := encodeCertificate(n.cert)
	for port := 0; port < env.Degree; port++ {
		n.send[port].Push(payload)
	}
	return n.frames()
}

// Round implements congest.Node.
func (n *verifierNode) Round(env *congest.Env, inbox []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, in := range inbox {
		n.recv[in.Port].Feed(in.Payload)
	}
	for port := 0; port < env.Degree; port++ {
		for {
			msg, ok := n.recv[port].Pop()
			if !ok {
				break
			}
			cert, err := decodeCertificate(msg)
			if err != nil {
				cert = Certificate{} // malformed: fails the local check
			}
			n.peers = append(n.peers, neighborCert{ID: env.NeighborIDs[port], Cert: cert})
			n.received++
		}
	}
	if !n.done && n.received == env.Degree {
		n.accepted = n.check()
		n.done = true
	}
	out := n.frames()
	if n.done && !n.pending() {
		return out, true
	}
	return out, false
}

// check runs the scheme's local verification on purely local knowledge.
func (n *verifierNode) check() bool {
	base, err := n.localBase()
	if err != nil {
		return false
	}
	return localCheck(n.d, n.pred, n.env.ID, n.cert, n.peers, base)
}

// localBase rebuilds the node's edge-owned base graph from the bag in its
// own certificate and its local ports: vertices are the bag IDs, edges are
// the node's links into the bag.
func (n *verifierNode) localBase() (*wterm.TerminalGraph, error) {
	bag := n.cert.Bag
	k := len(bag)
	idx := make(map[int]int, k)
	for i, id := range bag {
		idx[id] = i
	}
	own, ok := idx[n.env.ID]
	if !ok {
		return nil, fmt.Errorf("%w: own ID missing from bag", ErrCertify)
	}
	local := graph.New(k)
	local.SetVertexWeight(own, n.env.Weight)
	for port, nid := range n.env.NeighborIDs {
		if i, inBag := idx[nid]; inBag {
			id, err := local.AddEdge(own, i)
			if err != nil {
				return nil, err
			}
			local.SetEdgeWeight(id, n.env.PortWeight[port])
		}
	}
	terms := make([]int, k)
	for i := range terms {
		terms[i] = i
	}
	return &wterm.TerminalGraph{G: local, Terminals: terms, Orig: append([]int(nil), bag...)}, nil
}

func (n *verifierNode) frames() []congest.Outgoing {
	var out []congest.Outgoing
	budget := congest.FrameBudgetBytes(n.env.Bandwidth)
	for port := range n.send {
		if frame, ok := n.send[port].NextFrame(budget); ok {
			out = append(out, congest.Outgoing{Port: port, Payload: frame})
		}
	}
	return out
}

func (n *verifierNode) pending() bool {
	for port := range n.send {
		if n.send[port].Pending() {
			return true
		}
	}
	return false
}

// encodeCertificate serializes a certificate for the wire.
func encodeCertificate(c Certificate) []byte {
	out := make([]byte, 0, 16+4*len(c.Bag)+len(c.ClassKey))
	out = appendU32(out, uint32(c.ParentID))
	out = appendU32(out, uint32(c.Depth))
	if c.Accepting {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = appendU32(out, uint32(len(c.Bag)))
	for _, id := range c.Bag {
		out = appendU32(out, uint32(id))
	}
	out = appendU32(out, uint32(len(c.ClassKey)))
	out = append(out, c.ClassKey...)
	return out
}

// decodeCertificate parses the wire encoding.
func decodeCertificate(b []byte) (Certificate, error) {
	var c Certificate
	r := &certReader{buf: b}
	c.ParentID = int(r.u32())
	c.Depth = int(r.u32())
	c.Accepting = r.u8() != 0
	bagLen := int(r.u32())
	if bagLen < 0 || bagLen > 1<<16 || r.err != nil {
		return Certificate{}, fmt.Errorf("%w: malformed certificate", ErrCertify)
	}
	c.Bag = make([]int, 0, bagLen)
	for i := 0; i < bagLen; i++ {
		c.Bag = append(c.Bag, int(r.u32()))
	}
	keyLen := int(r.u32())
	if r.err != nil || keyLen < 0 || keyLen > len(r.buf) {
		return Certificate{}, fmt.Errorf("%w: malformed certificate", ErrCertify)
	}
	c.ClassKey = append([]byte(nil), r.buf[:keyLen]...)
	r.buf = r.buf[keyLen:]
	if r.err != nil || len(r.buf) != 0 {
		return Certificate{}, fmt.Errorf("%w: malformed certificate", ErrCertify)
	}
	return c, nil
}

type certReader struct {
	buf []byte
	err error
}

func (r *certReader) u8() byte {
	if r.err != nil || len(r.buf) < 1 {
		r.err = ErrCertify
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *certReader) u32() uint32 {
	if r.err != nil || len(r.buf) < 4 {
		r.err = ErrCertify
		return 0
	}
	v := uint32(r.buf[0]) | uint32(r.buf[1])<<8 | uint32(r.buf[2])<<16 | uint32(r.buf[3])<<24
	r.buf = r.buf[4:]
	return v
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
