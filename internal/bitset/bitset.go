// Package bitset provides a dense, fixed-capacity bitset used throughout the
// library for vertex and edge sets. It is value-semantics friendly: Clone
// copies, and all mutating methods operate in place.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset over the universe [0, n) fixed at construction time.
// The zero value is an empty set over an empty universe.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a set over [0, n) containing exactly the given indices.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Len returns the size of the universe.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set. Out-of-range indices are ignored.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. Out-of-range indices are ignored.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every element of the universe.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes bits beyond the universe in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(s.n%wordBits)) - 1
	}
}

// UnionWith adds every element of other to s. Panics if universes differ.
func (s *Set) UnionWith(other *Set) {
	s.check(other)
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// IntersectWith removes elements of s not present in other.
func (s *Set) IntersectWith(other *Set) {
	s.check(other)
	for i, w := range other.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes every element of other from s.
func (s *Set) DifferenceWith(other *Set) {
	s.check(other)
	for i, w := range other.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and other contain exactly the same elements over
// the same universe.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s belongs to other.
func (s *Set) SubsetOf(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// IntersectionCount returns |s ∩ other| without materializing the
// intersection. Panics if universes differ.
func (s *Set) IntersectionCount(other *Set) int {
	s.check(other)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & other.words[i])
	}
	return c
}

// CopyFrom overwrites s with the contents of other. Panics if universes
// differ.
func (s *Set) CopyFrom(other *Set) {
	s.check(other)
	copy(s.words, other.words)
}

// Intersects reports whether s and other share at least one element.
func (s *Set) Intersects(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Indices returns the elements of the set in increasing order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// AppendIndices appends the elements of the set in increasing order to dst
// and returns the extended slice. It lets callers reuse a scratch buffer
// where Indices would allocate.
func (s *Set) AppendIndices(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+b)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for each element in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Min returns the smallest element and true, or (0, false) if empty.
func (s *Set) Min() (int, bool) {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// Key returns a compact string usable as a map key; two sets over the same
// universe have equal keys iff they are equal.
func (s *Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(w >> uint(8*i)))
		}
	}
	return b.String()
}

func (s *Set) check(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d != %d", s.n, other.n))
	}
}
