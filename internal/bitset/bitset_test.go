package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) = true after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Add(-1)
	s.Add(10)
	s.Add(1000)
	if !s.Empty() {
		t.Fatal("out-of-range Add should be a no-op")
	}
	if s.Contains(-5) || s.Contains(10) {
		t.Fatal("out-of-range Contains should be false")
	}
	s.Remove(99) // must not panic
}

func TestZeroUniverse(t *testing.T) {
	s := New(0)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("empty-universe set should be empty")
	}
	s.Fill()
	if s.Count() != 0 {
		t.Fatal("Fill on empty universe should keep set empty")
	}
	neg := New(-5)
	if neg.Len() != 0 {
		t.Fatalf("negative n should clamp to 0, got %d", neg.Len())
	}
}

func TestFillTrims(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if got := s.Count(); got != n {
			t.Fatalf("n=%d: Fill Count = %d, want %d", n, got, n)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(10, 1, 2, 3, 4)
	b := FromIndices(10, 3, 4, 5, 6)

	u := a.Clone()
	u.UnionWith(b)
	if want := FromIndices(10, 1, 2, 3, 4, 5, 6); !u.Equal(want) {
		t.Fatalf("union = %v, want %v", u, want)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if want := FromIndices(10, 3, 4); !i.Equal(want) {
		t.Fatalf("intersect = %v, want %v", i, want)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if want := FromIndices(10, 1, 2); !d.Equal(want) {
		t.Fatalf("difference = %v, want %v", d, want)
	}
}

func TestSubsetIntersects(t *testing.T) {
	a := FromIndices(10, 1, 2)
	b := FromIndices(10, 1, 2, 3)
	if !a.SubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	c := FromIndices(10, 7, 8)
	if a.Intersects(c) {
		t.Fatal("a should not intersect c")
	}
	if !New(10).SubsetOf(a) {
		t.Fatal("empty set is subset of anything")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromIndices(10, 1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("Clone must be independent")
	}
}

func TestIndicesForEachOrder(t *testing.T) {
	s := FromIndices(200, 199, 0, 64, 100)
	got := s.Indices()
	want := []int{0, 64, 100, 199}
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestMin(t *testing.T) {
	s := New(100)
	if _, ok := s.Min(); ok {
		t.Fatal("Min of empty set should report false")
	}
	s.Add(70)
	s.Add(5)
	if m, ok := s.Min(); !ok || m != 5 {
		t.Fatalf("Min = %d,%v, want 5,true", m, ok)
	}
}

func TestStringAndKey(t *testing.T) {
	s := FromIndices(10, 1, 3)
	if got := s.String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	a := FromIndices(100, 5, 99)
	b := FromIndices(100, 5, 99)
	c := FromIndices(100, 5, 98)
	if a.Key() != b.Key() {
		t.Fatal("equal sets must have equal keys")
	}
	if a.Key() == c.Key() {
		t.Fatal("different sets must have different keys")
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on universe mismatch")
		}
	}()
	New(10).UnionWith(New(11))
}

// Property: union count >= max of the two counts; intersection <= min.
func TestQuickAlgebraBounds(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		const n = 150
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if ra.Intn(2) == 0 {
				a.Add(i)
			}
			if rb.Intn(2) == 0 {
				b.Add(i)
			}
		}
		u := a.Clone()
		u.UnionWith(b)
		in := a.Clone()
		in.IntersectWith(b)
		// Inclusion-exclusion.
		if u.Count()+in.Count() != a.Count()+b.Count() {
			return false
		}
		return a.SubsetOf(u) && b.SubsetOf(u) && in.SubsetOf(a) && in.SubsetOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective on random sets (round-trip via Indices).
func TestQuickKeyConsistency(t *testing.T) {
	f := func(seed int64) bool {
		const n = 99
		r := rand.New(rand.NewSource(seed))
		a := New(n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				a.Add(i)
			}
		}
		b := FromIndices(n, a.Indices()...)
		return a.Equal(b) && a.Key() == b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: IntersectionCount agrees with materializing the intersection,
// and CopyFrom/AppendIndices round-trip the contents.
func TestQuickIntersectionCountCopyAppend(t *testing.T) {
	f := func(seed int64) bool {
		const n = 131
		r := rand.New(rand.NewSource(seed))
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				a.Add(i)
			}
			if r.Intn(3) == 0 {
				b.Add(i)
			}
		}
		in := a.Clone()
		in.IntersectWith(b)
		if a.IntersectionCount(b) != in.Count() {
			return false
		}
		c := New(n)
		c.CopyFrom(a)
		if !c.Equal(a) {
			return false
		}
		scratch := a.AppendIndices(make([]int, 0, 8))
		d := FromIndices(n, scratch...)
		return d.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
