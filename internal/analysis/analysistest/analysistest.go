// Package analysistest runs dmclint analyzers over golden fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture sources
// live under testdata/src/<importpath>/, and every line that should produce
// a diagnostic carries a trailing comment
//
//	// want "regexp"
//
// whose regexp must match the diagnostic message. Diagnostics without a
// matching want, and wants without a matching diagnostic, fail the test.
// Suppressions (//lint:ignore dmclint/<name> reason) are applied before
// matching, so suppression fixtures simply carry no want comments.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the calling package's testdata/src
// fixture root.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("analysistest: getwd: %v", err)
	}
	return filepath.Join(wd, "testdata", "src")
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run loads each fixture package and checks the analyzer's diagnostics
// against the // want comments in its files.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewLoader(srcRoot, "")
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("load %s: %v", path, err)
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, path, err)
			continue
		}
		wants := collectWants(t, pkg)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !matchWant(wants, pos, d.Message) {
				t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
			}
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := regexp.Compile(strings.ReplaceAll(m[1], `\"`, `"`))
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, &want{file: pos.Filename, line: pos.Line, pattern: pat})
			}
		}
	}
	return out
}

func matchWant(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
