package analysis

import (
	"go/ast"
	"go/types"
	"maps"
	"strings"
)

// LockWitness enforces caller-side locking contracts. A function or method
// whose correctness depends on the caller holding a mutex declares that with
// a doc-comment directive
//
//	//dmclint:requires-lock <field>
//
// naming the mutex field (e.g. mu). Every call to an annotated function must
// then appear inside a syntactic lock-held region for that field on the
// callee's receiver: after X.mu.Lock()/RLock() (including the sticky
// defer X.mu.Unlock() form and the conditional `if X.mu != nil { Lock;
// defer Unlock }` shape), inside the body of `if X.mu == nil { ... }`
// (the private single-owner fast path of the dual-mode caches), after a
// terminating `if X.mu != nil { ...; return }` block, or in a caller that is
// itself annotated for the same field.
//
// The companion naming rule closes the annotation gap: any function whose
// name ends in "Locked" — the convention regular.Cached and serve.Server use
// for must-hold-the-lock helpers — must carry the annotation, so new helpers
// cannot silently opt out of the check.
//
// The tracking is intraprocedural and syntactic (no alias or path-condition
// analysis); genuinely safe calls the tracker cannot see are suppressed with
// //lint:ignore dmclint/lockwitness <reason>.
var LockWitness = &Analyzer{
	Name: "lockwitness",
	Doc:  "calls to //dmclint:requires-lock functions must hold the named lock",
	Run:  runLockWitness,
}

const requiresLockMarker = "dmclint:requires-lock"

// lockAnnotation extracts the required lock field from a doc comment, or "".
func lockAnnotation(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, requiresLockMarker); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// collectLockAnnotations maps each annotated function object in the package
// to its required lock field.
func collectLockAnnotations(pass *Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			field := lockAnnotation(fd.Doc)
			if field == "" {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				out[obj] = field
			}
		}
	}
	return out
}

func runLockWitness(pass *Pass) error {
	ann := collectLockAnnotations(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			field := ""
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				field = ann[obj]
			}
			if field == "" && strings.HasSuffix(fd.Name.Name, "Locked") {
				pass.Reportf(fd.Name.Pos(),
					"%s follows the *Locked naming convention but has no //dmclint:requires-lock annotation",
					fd.Name.Name)
			}
			w := &lockWalker{
				pass:        pass,
				ann:         ann,
				callerField: field,
				held:        make(map[string]bool),
				nilOK:       make(map[string]bool),
			}
			w.block(fd.Body.List)
			w.drainFuncLits()
		}
	}
	return nil
}

// lockWalker tracks syntactically held locks through one function body in
// statement order.
type lockWalker struct {
	pass *Pass
	ann  map[types.Object]string
	// callerField is the enclosing function's own requires-lock field ("" if
	// unannotated): calls needing that field are the caller's obligation.
	callerField string
	// held maps lock expressions ("c.mu", "s.core.mu") currently held; a
	// deferred Unlock keeps the entry to the end of the function.
	held map[string]bool
	// nilOK maps lock expressions known nil on this path — the private
	// single-owner mode where no locking is required.
	nilOK map[string]bool
	// lits queues function literals for a fresh walk (a closure's body does
	// not inherit the creation site's lock state).
	lits []*ast.FuncLit
}

// fork copies the walker for a conditionally executed branch.
func (w *lockWalker) fork() *lockWalker {
	return &lockWalker{
		pass:        w.pass,
		ann:         w.ann,
		callerField: w.callerField,
		held:        maps.Clone(w.held),
		nilOK:       maps.Clone(w.nilOK),
	}
}

// drainFuncLits walks queued closures with fresh lock state.
func (w *lockWalker) drainFuncLits() {
	for len(w.lits) > 0 {
		lit := w.lits[0]
		w.lits = w.lits[1:]
		lw := &lockWalker{
			pass:  w.pass,
			ann:   w.ann,
			held:  make(map[string]bool),
			nilOK: make(map[string]bool),
		}
		lw.block(lit.Body.List)
		w.lits = append(w.lits, lw.lits...)
	}
}

func (w *lockWalker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if expr, op, ok := classifyLockCall(w.pass, s.X); ok {
			switch op {
			case "Lock", "RLock":
				w.held[expr] = true
			case "Unlock", "RUnlock":
				delete(w.held, expr)
			}
			return
		}
		w.checkExpr(s.X)
	case *ast.DeferStmt:
		if expr, op, ok := classifyLockCall(w.pass, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Sticky: the lock stays held to the end of the function.
			w.held[expr] = true
			return
		}
		w.checkExpr(s.Call)
	case *ast.GoStmt:
		w.checkExpr(s.Call)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r)
		}
	case *ast.IfStmt:
		w.ifStmt(s)
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond)
		}
		body := w.fork()
		body.block(s.Body.List)
		if s.Post != nil {
			body.stmt(s.Post)
		}
		w.lits = append(w.lits, body.lits...)
	case *ast.RangeStmt:
		w.checkExpr(s.X)
		body := w.fork()
		body.block(s.Body.List)
		w.lits = append(w.lits, body.lits...)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag)
		}
		w.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.caseBodies(s.Body)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := w.fork()
			if cc.Comm != nil {
				branch.stmt(cc.Comm)
			}
			branch.block(cc.Body)
			w.lits = append(w.lits, branch.lits...)
		}
	case *ast.SendStmt:
		w.checkExpr(s.Chan)
		w.checkExpr(s.Value)
	case *ast.IncDecStmt:
		w.checkExpr(s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// caseBodies walks each case clause of a switch body in a fork.
func (w *lockWalker) caseBodies(body *ast.BlockStmt) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := w.fork()
		for _, e := range cc.List {
			branch.checkExpr(e)
		}
		branch.block(cc.Body)
		w.lits = append(w.lits, branch.lits...)
	}
}

// ifStmt handles the lock-relevant if shapes: nil-mutex fast paths and
// conditional locking.
func (w *lockWalker) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		w.stmt(s.Init)
	}
	w.checkExpr(s.Cond)

	lockExpr, isNil := nilMutexCompare(w.pass, s.Cond)
	body := w.fork()
	if lockExpr != "" && isNil {
		// if X.mu == nil { ... }: the body runs in private single-owner mode.
		body.nilOK[lockExpr] = true
	}
	body.block(s.Body.List)
	w.lits = append(w.lits, body.lits...)

	if lockExpr != "" && !isNil {
		// if X.mu != nil { Lock; defer Unlock }: either the lock is held
		// afterwards or it was nil and no locking is required, so acquisitions
		// escape the branch.
		for e := range body.held {
			if !w.held[e] {
				w.held[e] = true
			}
		}
		// if X.mu != nil { ...; return }: the code after only runs when the
		// mutex is nil.
		if terminates(s.Body) {
			w.nilOK[lockExpr] = true
		}
	}
	if s.Else != nil {
		els := w.fork()
		els.stmt(s.Else)
		w.lits = append(w.lits, els.lits...)
	}
}

// checkExpr inspects an expression for calls to annotated functions, queuing
// nested function literals for a fresh walk.
func (w *lockWalker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.lits = append(w.lits, n)
			return false
		case *ast.CallExpr:
			w.checkCall(n)
		}
		return true
	})
}

func (w *lockWalker) checkCall(call *ast.CallExpr) {
	obj := calleeObject(w.pass.Info, call)
	if obj == nil {
		return
	}
	field, ok := w.ann[obj]
	if !ok {
		return
	}
	if w.callerField == field {
		return // the obligation belongs to this function's own callers
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		lock := exprString(sel.X) + "." + field
		if w.held[lock] || w.nilOK[lock] {
			return
		}
	} else if w.heldByField(field) {
		return // plain function call: match the lock by field name alone
	}
	w.pass.Reportf(call.Pos(),
		"call to %s requires %s to be held: lock it first, run on the nil-%s fast path, or annotate the caller with //dmclint:requires-lock %s",
		obj.Name(), field, field, field)
}

// heldByField reports whether any held or known-nil lock expression's last
// path component matches the field (for annotated plain functions with no
// receiver to anchor the lock to).
func (w *lockWalker) heldByField(field string) bool {
	match := func(set map[string]bool) bool {
		for e := range set {
			if e == field || strings.HasSuffix(e, "."+field) {
				return true
			}
		}
		return false
	}
	return match(w.held) || match(w.nilOK)
}

// classifyLockCall recognizes X.Lock/RLock/Unlock/RUnlock() on a sync.Mutex
// or sync.RWMutex, returning X's canonical text and the operation.
func classifyLockCall(pass *Pass, e ast.Expr) (expr, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexExpr(pass, sel.X) {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

// nilMutexCompare matches `X == nil` / `X != nil` where X is a mutex pointer,
// returning X's text and whether the true branch is the nil side.
func nilMutexCompare(pass *Pass, cond ast.Expr) (expr string, isNil bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	var x ast.Expr
	switch {
	case isNilIdent(be.Y):
		x = be.X
	case isNilIdent(be.X):
		x = be.Y
	default:
		return "", false
	}
	if !isMutexExpr(pass, x) {
		return "", false
	}
	switch be.Op.String() {
	case "==":
		return exprString(x), true
	case "!=":
		return exprString(x), false
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isMutexExpr reports whether e's type is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isMutexExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	return namedTypeIn(tv.Type, "sync", "Mutex") || namedTypeIn(tv.Type, "sync", "RWMutex")
}

// terminates reports whether a block's last statement unconditionally leaves
// the enclosing function.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}
