package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("" only for commands loaded by directory)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module. Imports inside
// the module resolve recursively through the loader; all other imports
// (standard library) resolve through go/importer's source importer, which
// reads GOROOT sources and therefore needs no network, module cache, or
// pre-compiled export data.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // directory containing the package tree
	ModulePath string // module path prefix ("" maps import paths directly to directories)

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
}

// NewLoader builds a loader for the module rooted at moduleRoot with the
// given module path. An empty modulePath maps import paths to directories
// verbatim (used by analysistest fixtures, GOPATH-style).
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil),
	}
}

// dirOf maps an import path to a module directory, or ok=false when the path
// is not inside the module.
func (l *Loader) dirOf(importPath string) (string, bool) {
	var rel string
	switch {
	case l.ModulePath == "":
		rel = importPath
	case importPath == l.ModulePath:
		rel = "."
	case strings.HasPrefix(importPath, l.ModulePath+"/"):
		rel = strings.TrimPrefix(importPath, l.ModulePath+"/")
	default:
		return "", false
	}
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	st, err := os.Stat(dir)
	if err != nil || !st.IsDir() {
		return "", false
	}
	return dir, true
}

// Load parses and type-checks the package at the given import path,
// memoized per loader.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir, ok := l.dirOf(importPath)
	if !ok {
		return nil, fmt.Errorf("analysis: %s is not a package of module %s", importPath, l.ModulePath)
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	p, err := l.loadDir(importPath, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = p
	return p, nil
}

// loadDir does the parse + type-check work for one directory. Test files
// (*_test.go) are skipped: the determinism invariants bind the shipped
// engine and protocol code, while tests are free to use clocks and RNGs.
func (l *Loader) loadDir(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.Fset.Position(files[i].Pos()).Filename < l.Fset.Position(files[j].Pos()).Filename
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &loaderImporter{l: l, dir: dir},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		// Report every error (capped), each with its source position, so a
		// broken package is diagnosable from the loader error alone.
		const maxErrs = 10
		shown := typeErrs
		extra := 0
		if len(shown) > maxErrs {
			extra = len(shown) - maxErrs
			shown = shown[:maxErrs]
		}
		msgs := make([]string, len(shown))
		for i, e := range shown {
			msgs[i] = e.Error()
		}
		suffix := ""
		if extra > 0 {
			suffix = fmt.Sprintf("; and %d more errors", extra)
		}
		return nil, fmt.Errorf("analysis: type-checking %s: %s%s", importPath, strings.Join(msgs, "; "), suffix)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// loaderImporter adapts the Loader (module packages) and the source importer
// (everything else) to types.Importer.
type loaderImporter struct {
	l   *Loader
	dir string
}

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := li.l.dirOf(path); ok {
		p, err := li.l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if from, ok := li.l.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, li.dir, 0)
	}
	return li.l.std.Import(path)
}

// ModulePackages lists the import paths of every package under the module
// root, skipping testdata, hidden directories, and directories without
// non-test Go files. Paths come back sorted.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		switch {
		case rel == ".":
			out = append(out, l.ModulePath)
		case l.ModulePath == "":
			out = append(out, filepath.ToSlash(rel))
		default:
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
