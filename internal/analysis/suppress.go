package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments have the staticcheck-compatible form
//
//	//lint:ignore dmclint/<name> reason
//
// and silence the named analyzer's diagnostics on the same line or on the
// line immediately below the comment. When the comment (or the comment group
// it ends) is attached to a `defer` or `go` statement, it additionally
// covers that analyzer's diagnostics anywhere inside the statement — so one
// ignore above a multi-line closure suppresses a finding on a later line
// within it, and stacked ignores for several analyzers above one go
// statement all apply. The reason is mandatory: an ignore without one does
// not suppress anything and is itself reported, so suppressions stay
// auditable.

const ignorePrefix = "lint:ignore "

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file     string
	line     int
	analyzer string
	hasWhy   bool
	pos      token.Pos
	// groupEnd is the last line of the comment group containing this ignore:
	// a group of stacked ignores attaches as a whole to the statement on the
	// next line.
	groupEnd int
	// spanStart/spanEnd, when set, are the line range of the defer/go
	// statement this ignore is attached to; diagnostics inside it are
	// covered.
	spanStart, spanEnd int
}

// parseSuppressions extracts every dmclint ignore comment in the package and
// resolves closure spans for ignores attached to defer/go statements.
func parseSuppressions(pkg *Package) []suppression {
	var out []suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			groupEnd := pkg.Fset.Position(cg.End()).Line
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) == 0 || !strings.HasPrefix(fields[0], "dmclint/") {
					continue // a lint:ignore for some other tool
				}
				p := pkg.Fset.Position(c.Pos())
				out = append(out, suppression{
					file:     p.Filename,
					line:     p.Line,
					analyzer: strings.TrimPrefix(fields[0], "dmclint/"),
					hasWhy:   len(fields) > 1,
					pos:      c.Pos(),
					groupEnd: groupEnd,
				})
			}
		}
	}
	attachClosureSpans(pkg, out)
	return out
}

// attachClosureSpans resolves, for each suppression, the defer/go statement
// it is attached to: one starting on the comment's own line (trailing
// comment) or on the line following the comment group (leading comment,
// possibly stacked with other ignores). The statement's full line range then
// covers diagnostics reported inside its closure.
func attachClosureSpans(pkg *Package, sups []suppression) {
	if len(sups) == 0 {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
			default:
				return true
			}
			start := pkg.Fset.Position(n.Pos())
			end := pkg.Fset.Position(n.End())
			for i := range sups {
				s := &sups[i]
				if s.file != start.Filename {
					continue
				}
				if start.Line == s.groupEnd+1 || start.Line == s.line {
					s.spanStart, s.spanEnd = start.Line, end.Line
				}
			}
			return true
		})
	}
}

// applySuppressions filters diagnostics covered by a well-formed ignore
// comment and reports malformed ignores (missing reason) for analyzers in
// the running set.
func applySuppressions(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	sups := parseSuppressions(pkg)
	if len(sups) == 0 {
		return diags
	}
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}

	covered := func(d Diagnostic) bool {
		p := pkg.Fset.Position(d.Pos)
		for _, s := range sups {
			if !s.hasWhy || s.analyzer != d.Analyzer || s.file != p.Filename {
				continue
			}
			if s.line == p.Line || s.line == p.Line-1 {
				return true
			}
			if s.spanStart != 0 && p.Line >= s.spanStart && p.Line <= s.spanEnd {
				return true
			}
		}
		return false
	}

	out := diags[:0]
	for _, d := range diags {
		if !covered(d) {
			out = append(out, d)
		}
	}
	for _, s := range sups {
		if !s.hasWhy && running[s.analyzer] {
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: s.analyzer,
				Message:  "lint:ignore dmclint/" + s.analyzer + " needs a reason; the suppression is not applied",
			})
		}
	}
	return out
}
