package analysis

import (
	"go/token"
	"strings"
)

// Suppression comments have the staticcheck-compatible form
//
//	//lint:ignore dmclint/<name> reason
//
// and silence the named analyzer's diagnostics on the same line or on the
// line immediately below the comment. The reason is mandatory: an ignore
// without one does not suppress anything and is itself reported, so
// suppressions stay auditable.

const ignorePrefix = "lint:ignore "

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file     string
	line     int
	analyzer string
	hasWhy   bool
	pos      token.Pos
}

// parseSuppressions extracts every dmclint ignore comment in the package.
func parseSuppressions(pkg *Package) []suppression {
	var out []suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) == 0 || !strings.HasPrefix(fields[0], "dmclint/") {
					continue // a lint:ignore for some other tool
				}
				p := pkg.Fset.Position(c.Pos())
				out = append(out, suppression{
					file:     p.Filename,
					line:     p.Line,
					analyzer: strings.TrimPrefix(fields[0], "dmclint/"),
					hasWhy:   len(fields) > 1,
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// applySuppressions filters diagnostics covered by a well-formed ignore
// comment and reports malformed ignores (missing reason) for analyzers in
// the running set.
func applySuppressions(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	sups := parseSuppressions(pkg)
	if len(sups) == 0 {
		return diags
	}
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}

	covered := func(d Diagnostic) bool {
		p := pkg.Fset.Position(d.Pos)
		for _, s := range sups {
			if !s.hasWhy || s.analyzer != d.Analyzer || s.file != p.Filename {
				continue
			}
			if s.line == p.Line || s.line == p.Line-1 {
				return true
			}
		}
		return false
	}

	out := diags[:0]
	for _, d := range diags {
		if !covered(d) {
			out = append(out, d)
		}
	}
	for _, s := range sups {
		if !s.hasWhy && running[s.analyzer] {
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: s.analyzer,
				Message:  "lint:ignore dmclint/" + s.analyzer + " needs a reason; the suppression is not applied",
			})
		}
	}
	return out
}
