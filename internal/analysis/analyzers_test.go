package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer runs over its golden fixture package plus example.com/nondet,
// which sits outside the deterministic packages and must stay silent for the
// package-gated analyzers. Suppression fixtures (//lint:ignore with a
// reason) are inline in each fixture: the suppressed lines carry no want
// comment, so an unapplied suppression fails the test as an unexpected
// diagnostic.

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.MapOrder,
		"repro/internal/protocols/maporderfix",
		"example.com/nondet")
}

func TestDetSource(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.DetSource,
		"repro/internal/congest/detsrcfix",
		"example.com/nondet")
}

func TestFraming(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.Framing,
		"repro/internal/protocols/framingfix")
}

func TestRunErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.RunErr,
		"repro/runerrfix")
}

func TestLockWitness(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.LockWitness,
		"repro/internal/regular/lockwitnessfix")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.CtxFlow,
		"repro/internal/congest/ctxflowfix",
		"example.com/nondet")
}

func TestPoolPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.PoolPair,
		"repro/internal/congest/poolpairfix")
}

func TestGoroLife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), analysis.GoroLife,
		"repro/gorolifefix")
}
