package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` statements over maps in the deterministic packages
// whenever the iteration's results can escape the loop in iteration order —
// into message payloads, trace events, returned slices, or any variable
// declared outside the loop — without an intervening sort.
//
// Go map iteration order is deliberately randomized, so any escape of that
// order breaks the engine's bit-identical sequential/parallel contract and
// the certification soundness of the Theorem 6.1 protocols. The analyzer
// accepts the provably order-insensitive shapes — deleting keys, building
// another map, commutative integer accumulation (+=, |=, &=, ^=, counters),
// and early returns of iteration-independent values in loops without other
// side effects — plus one escape hatch: a slice that is
// only appended to inside the loop is fine if the enclosing function sorts
// it after the loop (sort.* or a *Sort*/*Normalize*/*Canonical* helper).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach payloads, traces, or returned data unsorted",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFuncMapRanges(pass, fd)
			return false // checkFuncMapRanges walks nested nodes itself
		})
	}
	return nil
}

func checkFuncMapRanges(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fd, rs)
		return true
	})
}

// sortedEscape tracks slice variables appended to inside the loop that must
// be sorted after it.
type sortedEscape struct {
	expr string // canonical lvalue text, e.g. "out" or "n.bagEdges"
	pos  token.Pos
}

type rangeCheck struct {
	pass    *Pass
	rs      *ast.RangeStmt
	escapes []sortedEscape
	badPos  token.Pos
	badWhat string
	// effectPos is the first order-insensitive side effect (delete, counter,
	// map insert, append); earlyReturn is the first iteration-independent
	// early return. Each is fine alone, but together the return makes the
	// skipped iterations' effects order-dependent.
	effectPos   token.Pos
	earlyReturn token.Pos
}

func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	c := &rangeCheck{pass: pass, rs: rs}
	for _, s := range rs.Body.List {
		c.stmt(s)
		if c.badPos.IsValid() {
			break
		}
	}
	if c.badPos.IsValid() {
		pass.Reportf(rs.Range, "iteration over map %s escapes in map order (%s); iterate a sorted key slice or restructure",
			exprString(rs.X), c.badWhat)
		return
	}
	if c.earlyReturn.IsValid() && c.effectPos.IsValid() {
		pass.Reportf(rs.Range, "iteration over map %s escapes in map order (early return skips iterations whose side effects precede it); hoist the effects or the return",
			exprString(rs.X))
		return
	}
	for _, esc := range c.escapes {
		if !sortedAfter(pass, fd, rs, esc.expr) {
			pass.Reportf(esc.pos, "map-ordered append to %s is never sorted before use; sort it after the loop or iterate sorted keys",
				esc.expr)
			return
		}
	}
}

// bad marks the range as order-sensitive.
func (c *rangeCheck) bad(pos token.Pos, what string) {
	if !c.badPos.IsValid() {
		c.badPos, c.badWhat = pos, what
	}
}

// effect records an order-insensitive side effect of the loop body.
func (c *rangeCheck) effect(pos token.Pos) {
	if !c.effectPos.IsValid() {
		c.effectPos = pos
	}
}

// mentionsLoopLocal reports whether the expression references any object
// declared inside the range statement (key/value variables or body locals).
func (c *rangeCheck) mentionsLoopLocal(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pass.Info.ObjectOf(id); obj != nil &&
				obj.Pos() >= c.rs.Pos() && obj.Pos() < c.rs.End() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// loopLocal reports whether the identifier's object is declared inside the
// range statement (including the key/value variables).
func (c *rangeCheck) loopLocal(id *ast.Ident) bool {
	obj := c.pass.Info.ObjectOf(id)
	if obj == nil {
		return id.Name == "_"
	}
	return obj.Pos() >= c.rs.Pos() && obj.Pos() < c.rs.End()
}

// isInteger reports whether the expression has an integer type.
func (c *rangeCheck) isInteger(e ast.Expr) bool {
	tv, ok := c.pass.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// stmt classifies one loop-body statement as order-insensitive or not.
func (c *rangeCheck) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			c.bad(s.Pos(), "expression statement")
			return
		}
		if isBuiltin(c.pass.Info, call.Fun, "delete") {
			c.effect(s.Pos())
			return // builtin delete: removing keys is order-insensitive
		}
		c.bad(s.Pos(), "call "+exprString(call.Fun)+" observes iteration order")
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		if c.isInteger(s.X) {
			c.effect(s.Pos())
			return // integer counter: commutative
		}
		c.bad(s.Pos(), "non-integer inc/dec")
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		for _, b := range s.Body.List {
			c.stmt(b)
		}
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.BlockStmt:
		for _, b := range s.List {
			c.stmt(b)
		}
	case *ast.DeclStmt:
		// Loop-local declaration.
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			c.bad(s.Pos(), "goto")
		}
	case *ast.ReturnStmt:
		// A return whose results are constants or reference nothing bound by
		// the loop yields the same value whichever iteration fires it; the
		// remaining hazard (skipping later iterations' effects) is checked
		// against effectPos after the walk.
		for _, r := range s.Results {
			if tv, ok := c.pass.Info.Types[r]; ok && tv.Value != nil {
				continue
			}
			if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if !c.mentionsLoopLocal(r) {
				continue
			}
			c.bad(s.Pos(), "return of iteration-dependent value")
			return
		}
		if !c.earlyReturn.IsValid() {
			c.earlyReturn = s.Pos()
		}
	case *ast.RangeStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
		// Nested control flow: classify the nested bodies with the same rules.
		ast.Inspect(s, func(n ast.Node) bool {
			if n == s {
				return true
			}
			if inner, ok := n.(ast.Stmt); ok {
				switch inner.(type) {
				case *ast.BlockStmt, *ast.CaseClause:
					return true
				}
				c.stmt(inner)
				return false
			}
			return true
		})
	case *ast.EmptyStmt:
	default:
		c.bad(s.Pos(), "statement may observe iteration order")
	}
}

// outerLvalue reports whether e is an lvalue rooted outside the loop (an
// identifier or selector chain); these are the escapes we track.
func (c *rangeCheck) outerLvalue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return !c.loopLocal(e)
	case *ast.SelectorExpr:
		return true
	}
	return false
}

func (c *rangeCheck) assign(s *ast.AssignStmt) {
	// Commutative integer accumulation is order-insensitive.
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
		token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN, token.MUL_ASSIGN:
		if len(s.Lhs) == 1 && c.isInteger(s.Lhs[0]) {
			c.effect(s.Pos())
			return
		}
		c.bad(s.Pos(), "compound assignment on non-integer")
		return
	case token.ASSIGN, token.DEFINE:
	default:
		c.bad(s.Pos(), "assignment "+s.Tok.String())
		return
	}

	// append-to-slice escape: allowed if sorted after the loop.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(c.pass.Info, call.Fun, "append") {
			if c.outerLvalue(s.Lhs[0]) && len(call.Args) > 0 && exprString(s.Lhs[0]) == exprString(call.Args[0]) {
				c.escapes = append(c.escapes, sortedEscape{expr: exprString(s.Lhs[0]), pos: s.Pos()})
				c.effect(s.Pos())
				return
			}
		}
	}

	for _, lhs := range s.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if c.loopLocal(l) || l.Name == "_" {
				continue
			}
			if s.Tok == token.DEFINE {
				continue // new binding shadowing inside the loop body scope
			}
			c.bad(s.Pos(), "write to "+l.Name+" declared outside the loop")
			return
		case *ast.IndexExpr:
			if tv, ok := c.pass.Info.Types[l.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					c.effect(s.Pos())
					continue // building a map: insertion order is unobservable
				}
			}
			c.bad(s.Pos(), "indexed write to "+exprString(l.X))
			return
		case *ast.SelectorExpr:
			c.bad(s.Pos(), "write to "+exprString(l))
			return
		default:
			c.bad(s.Pos(), "write to "+exprString(lhs))
			return
		}
	}
}

// sortedAfter reports whether expr is passed to a sorting call after the
// range statement within the enclosing function.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, expr string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortingCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if exprString(arg) == expr {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isBuiltin reports whether the call target is the named Go builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return true
	}
	_, isB := obj.(*types.Builtin)
	return isB
}

// isSortingCall recognizes package sort / slices calls and helper functions
// whose name advertises a canonical order (Sort, Normalize, Canonical).
func isSortingCall(pass *Pass, call *ast.CallExpr) bool {
	for _, pkg := range []string{"sort", "slices"} {
		if _, ok := isPackageSelector(pass.Info, call, pkg); ok {
			return true
		}
	}
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "sort") || strings.Contains(lower, "normalize") || strings.Contains(lower, "canonical")
}
