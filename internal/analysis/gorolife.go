package analysis

import (
	"go/ast"
	"go/types"
)

// GoroLife guards goroutine lifecycles module-wide: dmcd's SIGTERM drain can
// only wait for work it can see, so every `go` statement in non-test code
// must have a join mechanism visible in the function that starts it — a
// sync.WaitGroup whose Add precedes the go statement and whose Done is
// called in the goroutine, or a channel handshake (the goroutine sends on or
// closes a channel). A goroutine with neither outlives the request that
// spawned it and leaks past drain.
//
// The second rule is stylistic hygiene with teeth: a goroutine closure must
// not capture an enclosing loop's iteration variable. Go 1.22 made the
// capture safe, but passing the value as an argument keeps the dependency
// explicit and the code portable to pre-1.22 readers and backports.
var GoroLife = &Analyzer{
	Name: "gorolife",
	Doc:  "go statements need a visible join (WaitGroup or channel) and must not capture loop variables",
	Run:  runGoroLife,
}

func runGoroLife(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncGoStmts(pass, fd)
		}
	}
	return nil
}

func checkFuncGoStmts(pass *Pass, fd *ast.FuncDecl) {
	var gos []*ast.GoStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	if len(gos) == 0 {
		return
	}
	addsWG := funcCallsWaitGroupAdd(pass, fd)
	for _, g := range gos {
		if v := capturedLoopVar(pass, fd, g); v != "" {
			pass.Reportf(g.Go, "goroutine closure captures loop variable %s; pass it as an argument instead", v)
		}
		if !goroutineJoined(pass, g, addsWG) {
			pass.Reportf(g.Go, "goroutine started in %s has no visible join: pair a sync.WaitGroup Add/Done with a Wait, or hand the result back on a channel",
				fd.Name.Name)
		}
	}
}

// funcCallsWaitGroupAdd reports whether the function body contains an
// X.Add(..) call on a sync.WaitGroup (outside nested function literals the
// call may still count: forEach-style helpers Add before dispatching, which
// is the pattern being certified).
func funcCallsWaitGroupAdd(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
			if tv, ok := pass.Info.Types[sel.X]; ok && namedTypeIn(tv.Type, "sync", "WaitGroup") {
				found = true
			}
		}
		return true
	})
	return found
}

// goroutineJoined reports whether the go statement has a visible join: a
// WaitGroup Done inside the goroutine with a matching Add in the enclosing
// function, or a send/close on a channel from inside the goroutine.
func goroutineJoined(pass *Pass, g *ast.GoStmt, enclosingAddsWG bool) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		// go method() / go fn(): nothing inside the callee is visible here.
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			joined = true
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltinClose := pass.Info.Uses[id].(*types.Builtin); isBuiltinClose || pass.Info.Uses[id] == nil {
					joined = true
					return false
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(n.Args) == 0 {
				if tv, ok := pass.Info.Types[sel.X]; ok && namedTypeIn(tv.Type, "sync", "WaitGroup") && enclosingAddsWG {
					joined = true
					return false
				}
			}
		}
		return true
	})
	return joined
}

// capturedLoopVar returns the name of an enclosing for/range loop's
// iteration variable referenced by the goroutine's closure, or "".
func capturedLoopVar(pass *Pass, fd *ast.FuncDecl, g *ast.GoStmt) string {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return ""
	}
	// Collect the iteration variables of every loop whose body encloses g.
	loopVars := make(map[types.Object]string)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if g.Pos() >= n.Body.Pos() && g.End() <= n.Body.End() {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = id.Name
						}
					}
				}
			}
		case *ast.ForStmt:
			if g.Pos() >= n.Body.Pos() && g.End() <= n.Body.End() && n.Init != nil {
				if as, ok := n.Init.(*ast.AssignStmt); ok {
					for _, e := range as.Lhs {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := pass.Info.Defs[id]; obj != nil {
								loopVars[obj] = id.Name
							}
						}
					}
				}
			}
		}
		return true
	})
	if len(loopVars) == 0 {
		return ""
	}
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				if name, isLoopVar := loopVars[obj]; isLoopVar {
					captured = name
					return false
				}
			}
		}
		return true
	})
	return captured
}
