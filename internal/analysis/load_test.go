package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestLoadTypeError pins the loader's behavior on a package that fails to
// type-check: no panic, and the error carries every failure with its source
// position so the package is diagnosable from the error alone.
func TestLoadTypeError(t *testing.T) {
	loader := analysis.NewLoader(analysistest.TestData(t), "")
	pkg, err := loader.Load("broken/typeerr")
	if err == nil {
		t.Fatalf("load of broken/typeerr succeeded with package %v, want type error", pkg)
	}
	msg := err.Error()
	if !strings.Contains(msg, "type-checking broken/typeerr") {
		t.Errorf("error does not name the package: %s", msg)
	}
	// Both independent failures must be present, each with a file:line
	// position.
	for _, frag := range []string{"undefinedName", "anotherUndefinedName", "mismatched types"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error is missing %q: %s", frag, msg)
		}
	}
	if !strings.Contains(msg, "typeerr.go:") {
		t.Errorf("error carries no source positions: %s", msg)
	}
}

// TestSelectAnalyzers covers the -analyzers CSV filter: suite order is
// preserved regardless of the spec's order, unknown names fail with the
// valid set, and an empty spec selects the whole suite.
func TestSelectAnalyzers(t *testing.T) {
	all, err := analysis.SelectAnalyzers("")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if len(all) != len(analysis.Analyzers()) {
		t.Fatalf("empty spec selected %d analyzers, want the full suite of %d", len(all), len(analysis.Analyzers()))
	}

	got, err := analysis.SelectAnalyzers("gorolife, maporder")
	if err != nil {
		t.Fatalf("two-name spec: %v", err)
	}
	if len(got) != 2 || got[0].Name != "maporder" || got[1].Name != "gorolife" {
		names := make([]string, len(got))
		for i, a := range got {
			names[i] = a.Name
		}
		t.Errorf("spec %q selected %v, want suite order [maporder gorolife]", "gorolife, maporder", names)
	}

	if _, err := analysis.SelectAnalyzers("maporder,nosuch"); err == nil {
		t.Errorf("unknown analyzer name was accepted")
	} else if !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("error does not name the unknown analyzer: %v", err)
	}

	if _, err := analysis.SelectAnalyzers(" , "); err == nil {
		t.Errorf("all-empty spec was accepted")
	}
}
