package analysis

import (
	"go/ast"
	"strings"
)

// Framing enforces that protocol code builds every payload through the
// wire.go framing helpers and ships it through the byte-stream framing
// layer, so the aggregate per-edge bandwidth cap cannot be silently
// re-violated by hand-rolled payloads:
//
//   - congest.Outgoing literals may only carry payloads produced by
//     ByteStreamSender.NextFrame (the frame scheduler is what keeps every
//     frame within the per-edge budget);
//   - congest.Broadcast ships one unframed payload to every port and is
//     therefore off-limits in protocol code;
//   - ByteStreamSender.Push arguments must come from a wireWriter buffer or
//     an encoding helper, not from raw []byte literals or string
//     conversions (raw literals dodge the canonical wire encoding that the
//     length accounting and the decoders assume).
//
// The analyzer applies to repro/internal/protocols (and subpackages),
// excluding wire.go itself, which defines the helpers.
var Framing = &Analyzer{
	Name: "framing",
	Doc:  "payloads must be built by the wire.go helpers and framed by the byte-stream layer",
	Run:  runFraming,
}

const framingPkg = "repro/internal/protocols"

func runFraming(pass *Pass) error {
	path := pass.Pkg.Path()
	if path != framingPkg && !strings.HasPrefix(path, framingPkg+"/") {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "/wire.go") || filename == "wire.go" {
			continue
		}
		var enclosing *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
			case *ast.CompositeLit:
				checkOutgoingLit(pass, enclosing, n)
			case *ast.CallExpr:
				checkFramingCall(pass, enclosing, n)
			}
			return true
		})
	}
	return nil
}

// checkOutgoingLit validates congest.Outgoing{...} literals: the payload
// must be a NextFrame result (or absent/nil).
func checkOutgoingLit(pass *Pass, fd *ast.FuncDecl, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !namedTypeIn(tv.Type, "repro/internal/congest", "Outgoing") {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Payload" {
			continue
		}
		if !isFramedPayload(pass, fd, kv.Value) {
			pass.Reportf(kv.Value.Pos(), "Outgoing payload %s bypasses byte-stream framing; emit frames via ByteStreamSender.NextFrame",
				exprString(kv.Value))
		}
	}
}

func checkFramingCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// congest.Broadcast ships an unframed payload on every port.
	if obj := calleeObject(pass.Info, call); obj != nil &&
		obj.Name() == "Broadcast" && pkgPathOf(obj) == "repro/internal/congest" {
		pass.Reportf(call.Pos(), "congest.Broadcast bypasses byte-stream framing; push on each port's ByteStreamSender instead")
		return
	}
	// ByteStreamSender.Push(x): x must be wire-encoded.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Push" {
		return
	}
	recv, ok := pass.Info.Selections[sel]
	if !ok || !namedTypeIn(recv.Recv(), "repro/internal/congest", "ByteStreamSender") {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	if !isWireEncoded(pass, fd, call.Args[0]) {
		pass.Reportf(call.Args[0].Pos(), "payload %s is not built by the wire.go helpers; use a wireWriter (or an encode* helper) so framing and decoding stay canonical",
			exprString(call.Args[0]))
	}
}

// isFramedPayload reports whether the expression is a NextFrame result: the
// call itself, nil, or an identifier whose defining assignment in the
// enclosing function is a NextFrame call.
func isFramedPayload(pass *Pass, fd *ast.FuncDecl, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		def, ok := definingRhs(pass, fd, e)
		if !ok {
			// Parameters and fields are vouched for at their producer.
			return pass.Info.ObjectOf(e) != nil && defIsParam(pass, fd, e)
		}
		return isFramedPayload(pass, fd, def)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "NextFrame" {
			return true
		}
		return false
	}
	return false
}

// isWireEncoded reports whether the expression is a wire.go product: a
// wireWriter .buf read, a call result (encode helpers), or an identifier
// tracing to one of those. Raw []byte/Message composite literals and string
// conversions are rejected.
func isWireEncoded(pass *Pass, fd *ast.FuncDecl, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if e.Sel.Name != "buf" {
			return false
		}
		tv, ok := pass.Info.Types[e.X]
		return ok && strings.HasSuffix(tv.Type.String(), "wireWriter")
	case *ast.CallExpr:
		// An encoding helper; conversions like []byte("...") are not calls to
		// functions and are rejected below.
		if _, isConv := conversionTarget(pass, e); isConv {
			return false
		}
		return true
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		if def, ok := definingRhs(pass, fd, e); ok {
			return isWireEncoded(pass, fd, def)
		}
		return defIsParam(pass, fd, e)
	case *ast.CompositeLit:
		return false
	case *ast.SliceExpr:
		return isWireEncoded(pass, fd, e.X)
	}
	return false
}

// conversionTarget reports whether the call expression is a type conversion.
func conversionTarget(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return call.Args[0], true
	}
	return nil, false
}

// definingRhs finds the unique defining assignment of an identifier within
// the enclosing function and returns its right-hand side.
func definingRhs(pass *Pass, fd *ast.FuncDecl, id *ast.Ident) (ast.Expr, bool) {
	obj := pass.Info.ObjectOf(id)
	if obj == nil || fd == nil || fd.Body == nil {
		return nil, false
	}
	var rhs ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			l, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if pass.Info.Defs[l] == obj || pass.Info.Uses[l] == obj {
				switch {
				case len(as.Lhs) == len(as.Rhs):
					rhs = as.Rhs[i]
				case len(as.Rhs) == 1:
					// Multi-value assignment (v, ok := f()): the single RHS
					// call produced the value.
					rhs = as.Rhs[0]
				}
			}
		}
		return true
	})
	if rhs != nil {
		return rhs, true
	}
	return nil, false
}

// defIsParam reports whether the identifier resolves to a parameter of the
// enclosing function.
func defIsParam(pass *Pass, fd *ast.FuncDecl, id *ast.Ident) bool {
	obj := pass.Info.ObjectOf(id)
	if obj == nil || fd == nil || fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if pass.Info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}
