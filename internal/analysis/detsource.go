package analysis

import (
	"go/ast"
	"strings"
)

// DetSource forbids ambient nondeterminism sources — wall-clock reads,
// global/unseeded math/rand, and environment lookups — in the deterministic
// packages. Node programs and the engine must be pure functions of their
// explicit inputs; the only sanctioned randomness is a rand.Rand built from
// an explicit seed (rand.New(rand.NewSource(seed)), as the ID permutation
// and fault injection already do), because a recorded seed makes every run
// replayable.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "no wall clocks, global RNGs, or environment reads in deterministic code",
	Run:  runDetSource,
}

// detSourceForbidden maps package paths to their forbidden top-level
// functions. An empty set forbids every package-level function except the
// seeded-constructor allowlist below.
var detSourceForbidden = map[string][]string{
	"time": {"Now", "Since", "Until", "Sleep", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc"},
	"os":   {"Getenv", "LookupEnv", "Environ", "ExpandEnv"},
}

// detSourceRandAllowed lists the math/rand package-level constructors that
// take an explicit seed (directly or through a Source) and are therefore
// deterministic to call.
var detSourceRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 seeded generators.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDetSource(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for path, names := range detSourceForbidden {
				name, ok := isPackageSelector(pass.Info, call, path)
				if !ok {
					continue
				}
				for _, bad := range names {
					if name == bad {
						pass.Reportf(call.Pos(), "%s.%s is nondeterministic input; deterministic code must take it as an explicit parameter",
							path, name)
						return true
					}
				}
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				name, ok := isPackageSelector(pass.Info, call, path)
				if !ok {
					continue
				}
				if detSourceRandAllowed[name] {
					continue
				}
				pass.Reportf(call.Pos(), "global %s.%s is unseeded; use a rand.New(rand.NewSource(seed)) instance threaded through Options",
					shortPkg(path), name)
			}
			return true
		})
	}
	return nil
}

func shortPkg(path string) string {
	path = strings.TrimSuffix(path, "/v2")
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
