package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestMalformedIgnore pins the missing-reason path: a //lint:ignore without
// a reason must not suppress the diagnostic it covers, and must be reported
// itself. Asserted directly (not via want comments) because appending a want
// comment to the reason-less ignore would turn the appended text into its
// reason.
func TestMalformedIgnore(t *testing.T) {
	loader := analysis.NewLoader(analysistest.TestData(t), "")
	pkg, err := loader.Load("repro/internal/protocols/malformedignore")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analysis.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	var sawViolation, sawMalformed bool
	for _, d := range diags {
		if d.Analyzer != "maporder" {
			t.Errorf("diagnostic from %s, want maporder: %s", d.Analyzer, d.Message)
		}
		switch {
		case strings.Contains(d.Message, "needs a reason"):
			sawMalformed = true
		case strings.Contains(d.Message, "never sorted"):
			sawViolation = true
		}
	}
	if !sawMalformed {
		t.Errorf("missing-reason ignore was not reported: %+v", diags)
	}
	if !sawViolation {
		t.Errorf("reason-less ignore suppressed the violation it covered: %+v", diags)
	}
}
