package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestMalformedIgnore pins the missing-reason path: a //lint:ignore without
// a reason must not suppress the diagnostic it covers, and must be reported
// itself. Asserted directly (not via want comments) because appending a want
// comment to the reason-less ignore would turn the appended text into its
// reason.
func TestMalformedIgnore(t *testing.T) {
	loader := analysis.NewLoader(analysistest.TestData(t), "")
	pkg, err := loader.Load("repro/internal/protocols/malformedignore")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analysis.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	var sawViolation, sawMalformed bool
	for _, d := range diags {
		if d.Analyzer != "maporder" {
			t.Errorf("diagnostic from %s, want maporder: %s", d.Analyzer, d.Message)
		}
		switch {
		case strings.Contains(d.Message, "needs a reason"):
			sawMalformed = true
		case strings.Contains(d.Message, "never sorted"):
			sawViolation = true
		}
	}
	if !sawMalformed {
		t.Errorf("missing-reason ignore was not reported: %+v", diags)
	}
	if !sawViolation {
		t.Errorf("reason-less ignore suppressed the violation it covered: %+v", diags)
	}
}

// TestClosureSpanSuppression pins the statement-span rule: an ignore comment
// attached to a defer or go statement covers diagnostics on later lines
// inside its closure, and stacked ignores for several analyzers above one go
// statement all attach. The fixture would otherwise produce ctxflow and
// gorolife findings on lines two or more below their ignore comments, where
// the plain line rules cannot reach.
func TestClosureSpanSuppression(t *testing.T) {
	loader := analysis.NewLoader(analysistest.TestData(t), "")
	pkg, err := loader.Load("repro/internal/serve/ctxsuppress")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analysis.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d: [%s] escaped its closure-span suppression: %s",
				pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
}

// TestClosureSpanDoesNotLeak pins the other direction: the span only covers
// the statement the ignore is attached to. The ctxflowfix fixture's want
// comments (run in TestCtxFlow) prove unsuppressed diagnostics still fire;
// here we check that an ignore attached to one go statement does not bleed
// into a sibling statement in the same function.
func TestClosureSpanDoesNotLeak(t *testing.T) {
	loader := analysis.NewLoader(analysistest.TestData(t), "")
	pkg, err := loader.Load("repro/internal/serve/spanleak")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{analysis.CtxFlow})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the sibling's: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "blocking send") {
		t.Errorf("unexpected diagnostic: %s", diags[0].Message)
	}
}
