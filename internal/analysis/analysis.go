// Package analysis is a self-contained static-analysis framework plus the
// dmclint analyzer suite that machine-checks the simulator's determinism,
// framing, and error-handling invariants (see DESIGN.md, "Statically
// enforced invariants").
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built purely on the standard library's
// go/ast, go/parser, and go/types, so the module stays dependency-free:
// packages are parsed and type-checked by the Loader in load.go, with
// standard-library imports resolved through go/importer's source importer.
//
// The Theorem 6.1 protocols certify only if every node program is a
// deterministic function of its inbox, and the engine's sequential/parallel
// bit-identity contract holds only if nothing in the deterministic core
// consumes ambient entropy (map iteration order, wall-clock time, global
// RNGs, the environment). These analyzers turn those review-time rules into
// build-time failures.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DeterministicPkgs lists the packages whose code must be a deterministic
// function of explicit inputs: the node programs, the simulator engine, the
// table algebra, and the sequential reference oracle. Subpackages inherit
// the constraint (prefix match).
var DeterministicPkgs = []string{
	"repro/internal/protocols",
	"repro/internal/congest",
	"repro/internal/faults",
	"repro/internal/regular",
	"repro/internal/seq",
}

// IsDeterministicPkg reports whether the import path belongs to the
// deterministic core (exact match or subpackage of a DeterministicPkgs
// entry).
func IsDeterministicPkg(path string) bool {
	for _, p := range DeterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one named check. Run inspects the package in the Pass and
// reports findings through pass.Reportf.
type Analyzer struct {
	Name string // short name, reported as dmclint/<Name>
	Doc  string // one-line description of the guarded invariant
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full dmclint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, DetSource, Framing, RunErr, LockWitness, CtxFlow, PoolPair, GoroLife}
}

// SelectAnalyzers resolves a comma-separated list of analyzer names to the
// corresponding suite subset, preserving suite order. An empty spec selects
// the whole suite; an unknown name is an error listing the valid names.
func SelectAnalyzers(spec string) ([]*Analyzer, error) {
	all := Analyzers()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	wanted := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range all {
			if a.Name == name {
				found = true
				break
			}
		}
		if !found {
			names := make([]string, len(all))
			for i, a := range all {
				names[i] = a.Name
			}
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(names, ", "))
		}
		wanted[name] = true
	}
	var out []*Analyzer
	for _, a := range all {
		if wanted[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected by %q", spec)
	}
	return out, nil
}

// RunAnalyzers runs the given analyzers over one loaded package, applies
// //lint:ignore suppressions, and returns the surviving diagnostics sorted
// by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = applySuppressions(pkg, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// exprString renders an expression compactly for diagnostics.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// pkgPathOf returns the declaring package path of an object, or "".
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// calleeObject resolves the called function or method of a call expression,
// looking through parentheses. Returns nil for calls through function
// values, built-ins, and type conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.Func.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// isPackageSelector reports whether the call's function is a selector on the
// package named by path (e.g. time.Now with path "time"), returning the
// selected name.
func isPackageSelector(info *types.Info, call *ast.CallExpr, path string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", false
	}
	if pkgName.Imported().Path() != path {
		return "", false
	}
	return sel.Sel.Name, true
}

// namedTypeIn reports whether t (or its pointer elem) is the named type
// pkgPath.name.
func namedTypeIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name {
		return false
	}
	return pkgPathOf(obj) == pkgPath || obj.Pkg() == nil
}

// returnsError reports whether the call's result tuple contains an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
