package analysis

import (
	"go/ast"
)

// RunErr flags silently discarded error returns from the deterministic
// core: congest.NewSimulator/Run and the engine entry points, protocols.Run
// and its wrappers, the table algebra, and the trace writers
// (NDJSONTracer.Flush, ReadTrace, ...). A dropped congest.Run error turns a
// bandwidth-cap violation or round-limit overrun into silent garbage
// output, which is exactly the failure mode the simulator exists to make
// loud.
//
// The rule: a call whose callee is declared in one of the
// DeterministicPkgs and whose results include an error may not appear as a
// bare statement (or go/defer statement) anywhere in the module. Assigning
// the error — including an explicit `_ =` — is visible in review and
// greppable, so it stays legal.
var RunErr = &Analyzer{
	Name: "runerr",
	Doc:  "error returns from the simulator core must not be silently discarded",
	Run:  runRunErr,
}

func runRunErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				c, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				call = c
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			default:
				return true
			}
			checkDiscardedCall(pass, call)
			return true
		})
	}
	return nil
}

func checkDiscardedCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeObject(pass.Info, call)
	if obj == nil {
		return
	}
	if !IsDeterministicPkg(pkgPathOf(obj)) {
		return
	}
	if !returnsError(pass.Info, call) {
		return
	}
	pass.Reportf(call.Pos(), "result of %s includes an error that is silently discarded; handle it or assign it explicitly",
		exprString(call.Fun))
}
