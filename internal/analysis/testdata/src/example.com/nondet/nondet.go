// Package nondet lives outside the deterministic and request-path packages,
// so dmclint/maporder, dmclint/detsource, and dmclint/ctxflow do not apply:
// none of the shapes below may produce a diagnostic.
package nondet

import "time"

// Keys leaks map order, which is fine out here.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Stamp reads the wall clock, which is fine out here.
func Stamp() time.Time {
	return time.Now()
}

// Push blocks on a bare channel send, which is fine out here.
func Push(ch chan int) {
	ch <- 1
}
