// Package typeerr deliberately fails to type-check: the loader must surface
// every error with its source position instead of panicking.
package typeerr

func add(a int, b string) int {
	return a + b
}

var missing = undefinedName

var alsoMissing = anotherUndefinedName
