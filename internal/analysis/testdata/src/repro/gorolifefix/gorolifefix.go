// Package gorolifefix is the golden fixture for dmclint/gorolife: every go
// statement needs a join mechanism visible in the starting function, and
// goroutine closures must not capture loop variables.
package gorolifefix

import "sync"

func work() error { return nil }

// joined runs workers under a WaitGroup with the value passed as an
// argument: both rules satisfied.
func joined(items []int) []int {
	var wg sync.WaitGroup
	out := make([]int, len(items))
	for i, v := range items {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			out[i] = v * v
		}(i, v)
	}
	wg.Wait()
	return out
}

// handshake joins through a channel: the goroutine hands its result back.
func handshake() error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	return <-errc
}

// closer joins by closing a done channel.
func closer() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = work()
	}()
	<-done
}

// fireAndForget has no join at all: the goroutine outlives any drain.
func fireAndForget() {
	go func() { // want "no visible join"
		_ = work()
	}()
}

// pool mirrors the engine's worker pool: Done is called in the closure but
// the Add lives in a different method, so the join is not visible here.
type pool struct {
	tasks chan int
	wg    sync.WaitGroup
	fn    func(int)
}

func newPool(workers int) *pool {
	p := &pool{tasks: make(chan int, workers)}
	for i := 0; i < workers; i++ {
		go func() { // want "no visible join"
			for idx := range p.tasks {
				p.fn(idx)
				p.wg.Done()
			}
		}()
	}
	return p
}

type svc struct{}

func (s *svc) run() {}

// goMethod starts an opaque callee: nothing inside it is visible, so no
// join can be proven.
func goMethod(s *svc) {
	go s.run() // want "no visible join"
}

// capture grabs the loop variable instead of passing it.
func capture(items []int, out chan int) {
	for _, v := range items {
		go func() { // want "captures loop variable v"
			out <- v
		}()
	}
}

// daemonLoop is a justified process-lifetime goroutine.
func daemonLoop(stop chan struct{}) {
	//lint:ignore dmclint/gorolife the monitor runs for the process lifetime by design
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = work()
		}
	}()
}
