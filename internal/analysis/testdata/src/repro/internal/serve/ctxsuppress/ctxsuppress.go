// Package ctxsuppress exercises ignore comments attached to defer and go
// statements whose flagged operation sits on a later line inside the
// closure: the statement-span rule must cover them, including stacked
// ignores for several analyzers above a single go statement. Every
// diagnostic in this file is suppressed, so a run must come back empty.
package ctxsuppress

func release(sem chan struct{}, done chan int) {
	//lint:ignore dmclint/ctxflow the slot was just acquired; handing it back never blocks
	defer func() {
		<-sem
	}()
	//lint:ignore dmclint/gorolife the writer is joined by the caller reading done
	go func() {
		results := compute()
		for _, r := range results {
			//lint:ignore dmclint/ctxflow done is buffered for the full result set
			done <- r
		}
	}()
}

func stacked(tasks chan int) {
	//lint:ignore dmclint/gorolife the worker lives as long as the queue; close ends it
	//lint:ignore dmclint/ctxflow the range ends when the queue is closed
	go func() {
		for range tasks {
		}
	}()
}

func compute() []int { return []int{1, 2, 3} }
