// Package spanleak checks the boundary of the closure-span suppression
// rule: the ignore attaches to the first go statement only, so the send in
// the second, uncommented goroutine must still be reported. Expectations
// are asserted directly in suppress_test.go.
package spanleak

func twoWriters(a, b chan int) {
	//lint:ignore dmclint/ctxflow a is buffered for exactly one write
	go func() {
		a <- 1
	}()
	go func() {
		b <- 2
	}()
}
