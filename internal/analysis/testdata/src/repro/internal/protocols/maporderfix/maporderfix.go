// Package maporderfix is the golden fixture for dmclint/maporder: every
// shape the analyzer must flag carries a want comment, and every shape it
// must accept (the provably order-insensitive ones) carries none.
package maporderfix

import "sort"

type node struct {
	counts map[string]int
	peers  map[int]int
}

// keys is the sanctioned escape hatch: append inside the loop, sort after.
func (n *node) keys() []string {
	var out []string
	for k := range n.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// appendUnsorted leaks map order into the returned slice.
func (n *node) appendUnsorted() []string {
	var out []string
	for k := range n.counts {
		out = append(out, k) // want "map-ordered append to out is never sorted"
	}
	return out
}

// total is commutative integer accumulation.
func (n *node) total() int {
	total := 0
	for _, v := range n.peers {
		total += v
	}
	return total
}

// reset deletes every key; removal order is unobservable.
func (n *node) reset() {
	for k := range n.counts {
		delete(n.counts, k)
	}
}

// invert builds another map; insertion order is unobservable.
func (n *node) invert() map[int]int {
	inv := make(map[int]int)
	for k, v := range n.peers {
		inv[v] = k
	}
	return inv
}

// lastKey folds the iteration into an outer scalar in map order.
func (n *node) lastKey() string {
	best := ""
	for k := range n.counts { // want "escapes in map order"
		if k > best {
			best = k
		}
	}
	return best
}

// hasPositive early-returns an iteration-independent value from an
// effect-free loop: whichever iteration fires it, the result is the same.
func (n *node) hasPositive() bool {
	for _, v := range n.peers {
		if v > 0 {
			return true
		}
	}
	return false
}

// anyKey returns the loop variable itself.
func (n *node) anyKey() string {
	for k := range n.counts { // want "return of iteration-dependent value"
		return k
	}
	return ""
}

// drainFirst mixes side effects with an early return: the skipped deletes
// depend on which iteration returned.
func (n *node) drainFirst() bool {
	for k := range n.counts { // want "early return skips iterations"
		delete(n.counts, k)
		if len(n.counts) == 0 {
			return true
		}
	}
	return false
}

// legacyKeys exercises the suppression path: the violation is acknowledged
// with a reason, so no diagnostic survives.
func (n *node) legacyKeys() []string {
	var out []string
	for k := range n.counts {
		//lint:ignore dmclint/maporder fixture: consumer deduplicates into a set
		out = append(out, k)
	}
	return out
}
