// Package malformedignore is the fixture for the missing-reason suppression
// path: a //lint:ignore without a reason suppresses nothing and is itself
// reported. Expectations are asserted directly in suppress_test.go (the
// reason-less comment cannot also carry a want comment, since trailing text
// would become its reason).
package malformedignore

type state struct {
	m map[string]int
}

func keys(s state) []string {
	var out []string
	for k := range s.m {
		//lint:ignore dmclint/maporder
		out = append(out, k)
	}
	return out
}
