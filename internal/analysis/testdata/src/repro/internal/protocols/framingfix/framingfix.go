// Package framingfix is the golden fixture for dmclint/framing: payloads
// must be wireWriter (or encode-helper) products, Outgoing literals must
// carry NextFrame results, and congest.Broadcast is off-limits.
package framingfix

import "repro/internal/congest"

// wireWriter mirrors the real helper in wire.go; the analyzer recognizes it
// by type name.
type wireWriter struct{ buf []byte }

func (w *wireWriter) u8(v uint8) { w.buf = append(w.buf, v) }

type node struct {
	send []congest.ByteStreamSender
}

func (n *node) pushLiteral(port int) {
	n.send[port].Push([]byte{1, 0}) // want "not built by the wire.go helpers"
}

func (n *node) pushString(port int, s string) {
	n.send[port].Push([]byte(s)) // want "not built by the wire.go helpers"
}

// pushWire is the sanctioned shape: bytes come out of a wireWriter.
func (n *node) pushWire(port int, v uint8) {
	var w wireWriter
	w.u8(v)
	n.send[port].Push(w.buf)
}

// pushHelper delegates to an encode* helper, which is also fine.
func (n *node) pushHelper(port int, v uint8) {
	n.send[port].Push(encodeProbe(v))
}

func encodeProbe(v uint8) []byte {
	var w wireWriter
	w.u8(v)
	return w.buf
}

// frames is the sanctioned way to emit Outgoing: payloads are NextFrame
// results, so the per-edge budget holds.
func (n *node) frames(budget int) []congest.Outgoing {
	var out []congest.Outgoing
	for port := range n.send {
		frame, ok := n.send[port].NextFrame(budget)
		if !ok {
			continue
		}
		out = append(out, congest.Outgoing{Port: port, Payload: frame})
	}
	return out
}

func (n *node) rawOutgoing(port int) congest.Outgoing {
	return congest.Outgoing{Port: port, Payload: []byte{9}} // want "bypasses byte-stream framing"
}

func (n *node) shout(payload congest.Message) []congest.Outgoing {
	return congest.Broadcast(payload) // want "congest.Broadcast bypasses byte-stream framing"
}

// probe exercises the suppression path.
func (n *node) probe(port int) {
	//lint:ignore dmclint/framing fixture: handshake probe predates wire.go
	n.send[port].Push([]byte{7})
}
