// Package lockwitnessfix is the golden fixture for dmclint/lockwitness: the
// dual-mode cache shapes (nil mutex = private single owner, non-nil = shared
// handle) that must pass, the unlocked calls that must be flagged, and the
// *Locked naming rule that forces annotations.
package lockwitnessfix

import "sync"

type core struct {
	mu    *sync.RWMutex
	items map[string]int
	next  int
}

// internLocked interns a key; the caller holds mu (or owns the core
// privately).
//
//dmclint:requires-lock mu
func (c *core) internLocked(key string) int {
	if id, ok := c.items[key]; ok {
		return id
	}
	id := c.next
	c.next++
	c.items[key] = id
	return id
}

// sizeLocked reports the table size under the caller's lock.
//
//dmclint:requires-lock mu
func (c *core) sizeLocked() int { return len(c.items) }

// flushLocked drops the table under the caller's lock.
//
//dmclint:requires-lock mu
func (c *core) flushLocked() { c.items = make(map[string]int) }

// evictLocked breaks the naming rule: no annotation.
func (c *core) evictLocked() { // want "no //dmclint:requires-lock annotation"
	c.items = nil
}

// Intern is the dual-mode entry point: private fast path, then the
// double-checked locked path.
func (c *core) Intern(key string) int {
	if c.mu == nil {
		return c.internLocked(key)
	}
	c.mu.RLock()
	id, ok := c.items[key]
	c.mu.RUnlock()
	if ok {
		return id
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.internLocked(key)
}

// Size mirrors the Stats shape: a terminating non-nil branch leaves the
// remainder on the private path.
func (c *core) Size() int {
	if c.mu != nil {
		c.mu.RLock()
		n := c.sizeLocked()
		c.mu.RUnlock()
		return n
	}
	return c.sizeLocked()
}

// Flush uses the conditional-lock shape: acquired when shared, unnecessary
// when private.
func (c *core) Flush() {
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.flushLocked()
}

// rotateLocked discharges its callees' obligation through its own
// annotation.
//
//dmclint:requires-lock mu
func (c *core) rotateLocked() {
	c.flushLocked()
}

// Bad calls a locked helper with no held region at all.
func (c *core) Bad(key string) int {
	return c.internLocked(key) // want "requires mu to be held"
}

// BadAfterUnlock releases before the call.
func (c *core) BadAfterUnlock(key string) int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.internLocked(key) // want "requires mu to be held"
}

// BadInClosure shows that a closure does not inherit the creation site's
// lock region: it may run after the unlock.
func (c *core) BadInClosure(key string) func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.internLocked(key) // want "requires mu to be held"
	}
}

// Emergency is a justified exception.
func (c *core) Emergency() {
	//lint:ignore dmclint/lockwitness single-threaded teardown; no handles exist anymore
	c.flushLocked()
}

var globalMu sync.Mutex
var registry = make(map[string]int)

// register adds to the global registry.
//
//dmclint:requires-lock globalMu
func register(k string) { registry[k] = 1 }

// AddGlobal holds the package lock around the annotated plain function.
func AddGlobal(k string) {
	globalMu.Lock()
	defer globalMu.Unlock()
	register(k)
}

// BadGlobal skips the lock.
func BadGlobal(k string) {
	register(k) // want "requires globalMu to be held"
}
