// Package ctxflowfix is the golden fixture for dmclint/ctxflow: blocking
// waits on request-path packages must be cancellable (context Done case or
// non-blocking default) or carry a justified suppression.
package ctxflowfix

import (
	"context"
	"sync"
)

func blockingSend(ch chan int) {
	ch <- 1 // want "blocking send on ch has no cancellation path"
}

func blockingRecv(ch chan int) int {
	return <-ch // want "blocking receive from ch has no cancellation path"
}

func rangeChan(ch chan int) int {
	total := 0
	for v := range ch { // want "range over channel ch blocks until the channel closes"
		total += v
	}
	return total
}

func waitAll(wg *sync.WaitGroup) {
	wg.Wait() // want "blocks without a cancellation path"
}

// ctxSelect is the sanctioned blocking shape: the context Done case bounds
// the wait by the request deadline.
func ctxSelect(ctx context.Context, ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	case <-ctx.Done():
		return 0, false
	}
}

// trySend is the sanctioned non-blocking shape.
func trySend(ch chan int, v int) bool {
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}

// deafSelect blocks with no escape hatch.
func deafSelect(a, b chan int) int {
	select { // want "select has neither a default nor a context Done case"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// spin never exits and never polls anything.
func spin() {
	for { // want "infinite for loop has no break or return"
	}
}

// countdown is a bare for loop with a return, which is fine.
func countdown(n int) int {
	for {
		if n <= 0 {
			return n
		}
		n--
	}
}

// handoff documents why its send cannot block.
func handoff(ch chan int) {
	//lint:ignore dmclint/ctxflow the channel is buffered to capacity by construction
	ch <- 1
}
