// Package congest is a fixture stub of repro/internal/congest: just enough
// surface for the dmclint analyzers' type-based matching (named types
// Outgoing and ByteStreamSender, the Broadcast helper, and error-returning
// core entry points). Behavior is irrelevant; only the names, the package
// path, and the signatures matter.
package congest

// Message is one payload on an edge.
type Message []byte

// Outgoing is a frame queued on a port.
type Outgoing struct {
	Port    int
	Payload Message
}

// Env is the per-node environment.
type Env struct {
	ID          int
	Degree      int
	NeighborIDs []int
}

// Tag labels subsequent messages with a kind.
func (e *Env) Tag(kind string) {}

// Broadcast ships one payload on every port, bypassing framing.
func Broadcast(payload Message) []Outgoing { return nil }

// ByteStreamSender queues bytes for one port.
type ByteStreamSender struct {
	buf []byte
}

// Push appends one logical message to the stream.
func (s *ByteStreamSender) Push(msg []byte) { s.buf = append(s.buf, msg...) }

// NextFrame pops the next frame within the byte budget.
func (s *ByteStreamSender) NextFrame(budgetBytes int) (Message, bool) {
	if len(s.buf) == 0 {
		return nil, false
	}
	f := Message(s.buf)
	s.buf = nil
	return f, true
}

// Pending reports whether bytes remain queued.
func (s *ByteStreamSender) Pending() bool { return len(s.buf) > 0 }

// Stats summarizes a run.
type Stats struct {
	Rounds int
}

// Simulator drives one simulated run.
type Simulator struct{}

// Run executes the simulation.
func (s *Simulator) Run() (Stats, error) { return Stats{}, nil }

// Rounds returns the rounds executed so far.
func (s *Simulator) Rounds() int { return 0 }

// NDJSONTracer writes trace events.
type NDJSONTracer struct{}

// Flush drains buffered trace output.
func (t *NDJSONTracer) Flush() error { return nil }
