// Package poolpairfix is the golden fixture for dmclint/poolpair: a pool
// acquisition must land in a local variable and the very next statement must
// defer the matching release, so every return path gives the buffer back.
package poolpairfix

import "sync"

type buf struct{ b []byte }

// ScratchPool mirrors the engine pool's shape: acquire/release on a keyed
// free list.
type ScratchPool struct {
	mu    sync.Mutex
	items []*buf
}

func (p *ScratchPool) acquire(n int) *buf {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.items) > 0 {
		b := p.items[len(p.items)-1]
		p.items = p.items[:len(p.items)-1]
		return b
	}
	return &buf{b: make([]byte, n)}
}

func (p *ScratchPool) release(b *buf) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.items = append(p.items, b)
}

type server struct {
	pool    *ScratchPool
	scratch *buf
}

// good pairs the acquire with an immediate deferred release.
func (s *server) good(n int) int {
	sc := s.pool.acquire(n)
	defer s.pool.release(sc)
	return len(sc.b)
}

// leakOnReturn releases manually after a conditional early return.
func (s *server) leakOnReturn(n int) int {
	sc := s.pool.acquire(n) // want "not followed by .defer s.pool.release"
	if n == 0 {
		return 0
	}
	s.pool.release(sc)
	return len(sc.b)
}

// lateDefer lets a statement slip between acquire and defer; a panic in it
// would leak the buffer.
func (s *server) lateDefer(n int) int {
	sc := s.pool.acquire(n) // want "not followed by .defer s.pool.release"
	m := n * 2
	defer s.pool.release(sc)
	return m + len(sc.b)
}

// escapeToField hides the release from the acquiring function.
func (s *server) escapeToField(n int) {
	s.scratch = s.pool.acquire(n) // want "escapes to s.scratch"
}

// discard drops the handle entirely.
func (s *server) discard(n int) {
	s.pool.acquire(n) // want "must be assigned to a local variable"
}

var bufPool sync.Pool

// goodSync shows the same discipline on a stdlib sync.Pool.
func goodSync() []byte {
	v := bufPool.Get()
	defer bufPool.Put(v)
	b, _ := v.([]byte)
	return b
}

// leakSync never gives the value back.
func leakSync() {
	v := bufPool.Get() // want "not followed by .defer bufPool.Put"
	_ = v
}

// transfer documents an ownership hand-off: the caller releases.
func (s *server) transfer(n int) *buf {
	//lint:ignore dmclint/poolpair ownership transfers to the caller, which releases it
	sc := s.pool.acquire(n)
	return sc
}
