// Package detsrcfix is the golden fixture for dmclint/detsource: ambient
// nondeterminism (wall clock, environment, global RNG) is flagged inside the
// deterministic packages; explicitly seeded RNGs and values passed in as
// parameters are not.
package detsrcfix

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

func stamp() time.Time {
	return time.Now() // want "time.Now is nondeterministic input"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since is nondeterministic input"
}

func knob() string {
	return os.Getenv("DEBUG") // want "os.Getenv is nondeterministic input"
}

func roll() int {
	return rand.Intn(6) // want "global rand.Intn is unseeded"
}

func rollV2() int {
	return randv2.IntN(6) // want "global rand.IntN is unseeded"
}

// seeded is the sanctioned pattern: an explicit seed makes the run
// replayable.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// format consumes a time value passed in explicitly; only reading the
// ambient clock is forbidden.
func format(t time.Time) string {
	return t.Format(time.RFC3339)
}

// benchClock exercises the suppression path.
func benchClock() time.Time {
	//lint:ignore dmclint/detsource fixture: bench-only wall clock, not simulated state
	return time.Now()
}
