// Package runerrfix is the golden fixture for dmclint/runerr: error returns
// from the deterministic core (here the congest stub) must not be dropped as
// bare statements anywhere in the module, including go/defer statements.
// Explicit assignment — even to _ — stays legal because it is greppable.
package runerrfix

import "repro/internal/congest"

func discards(sim *congest.Simulator, tr *congest.NDJSONTracer) {
	sim.Run()        // want "silently discarded"
	tr.Flush()       // want "silently discarded"
	defer tr.Flush() // want "silently discarded"
	go sim.Run()     // want "silently discarded"
}

func handles(sim *congest.Simulator, tr *congest.NDJSONTracer) error {
	if _, err := sim.Run(); err != nil {
		return err
	}
	_ = tr.Flush()
	return nil
}

// rounds returns no error, so a bare call is fine.
func rounds(sim *congest.Simulator) {
	sim.Rounds()
}

// crashPath exercises the suppression path.
func crashPath(tr *congest.NDJSONTracer) {
	//lint:ignore dmclint/runerr fixture: flush failure is moot on the crash path
	tr.Flush()
}
