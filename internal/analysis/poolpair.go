package analysis

import (
	"go/ast"
	"go/types"
)

// PoolPair enforces strict Get/Put pairing on pooled resources: a call to
// congest.ScratchPool.acquire (or any ScratchPool-named type's acquire/Get,
// or sync.Pool.Get) must assign its result to a local variable and the very
// next statement must defer the matching release/Put on the same pool, so
// every return path — including early returns and panics — gives the buffer
// back. A pooled engine scratch that escapes the pool silently degrades the
// daemon to allocating fresh state per request; one that is double-released
// corrupts a concurrent run.
//
// Flagged shapes: the result discarded or assigned to a field or through a
// selector (release can then no longer be proven local), and any statement
// other than the matching `defer pool.release(v)` following the acquire.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "pool acquire/Get must be followed immediately by a deferred release/Put",
	Run:  runPoolPair,
}

func runPoolPair(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkPoolBlock(pass, n.List)
			case *ast.CaseClause:
				checkPoolBlock(pass, n.Body)
			case *ast.CommClause:
				checkPoolBlock(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkPoolBlock inspects one statement list: each statement is examined in
// the block that directly owns it, so the "next statement" relation is exact.
func checkPoolBlock(pass *Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		for _, get := range poolGetsIn(pass, s) {
			checkPoolGet(pass, stmts, i, s, get)
		}
	}
}

// poolGet is one acquire/Get call found in a statement.
type poolGet struct {
	call *ast.CallExpr
	recv ast.Expr // the pool expression
	name string   // "acquire" or "Get"
}

// poolGetsIn collects pool acquisitions directly inside s, not descending
// into nested blocks or function literals (those are visited as their own
// blocks).
func poolGetsIn(pass *Pass, s ast.Stmt) []poolGet {
	var out []poolGet
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if g, ok := asPoolGet(pass, n); ok {
				out = append(out, g)
			}
		}
		return true
	})
	return out
}

// asPoolGet matches P.acquire(...) / P.Get(...) where P is a ScratchPool or
// a sync.Pool.
func asPoolGet(pass *Pass, call *ast.CallExpr) (poolGet, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return poolGet{}, false
	}
	name := sel.Sel.Name
	if name != "acquire" && name != "Get" {
		return poolGet{}, false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return poolGet{}, false
	}
	if !isPoolType(tv.Type) {
		return poolGet{}, false
	}
	return poolGet{call: call, recv: sel.X, name: name}, true
}

// isPoolType matches sync.Pool and any type named ScratchPool (pointer or
// value), so in-tree pool wrappers are covered without an import cycle on
// congest.
func isPoolType(t types.Type) bool {
	if namedTypeIn(t, "sync", "Pool") {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "ScratchPool"
}

// checkPoolGet validates one acquisition against its block context.
func checkPoolGet(pass *Pass, stmts []ast.Stmt, i int, s ast.Stmt, g poolGet) {
	release := "release"
	if g.name == "Get" {
		release = "Put"
	}
	assign, ok := s.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || ast.Unparen(assign.Rhs[0]) != g.call {
		pass.Reportf(g.call.Pos(),
			"result of %s.%s must be assigned to a local variable with an immediate `defer %s.%s(...)`",
			exprString(g.recv), g.name, exprString(g.recv), release)
		return
	}
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok || lhs.Name == "_" {
		pass.Reportf(g.call.Pos(),
			"result of %s.%s escapes to %s; assign it to a local so the deferred %s can be checked",
			exprString(g.recv), g.name, exprString(assign.Lhs[0]), release)
		return
	}
	if i+1 < len(stmts) && isPoolRelease(stmts[i+1], exprString(g.recv), release, lhs.Name) {
		return
	}
	pass.Reportf(g.call.Pos(),
		"%s.%s(%s) is not followed by `defer %s.%s(%s)`; an early return or panic would leak the pooled value",
		exprString(g.recv), g.name, lhs.Name, exprString(g.recv), release, lhs.Name)
}

// isPoolRelease matches `defer P.release(v)` / `defer P.Put(v)`.
func isPoolRelease(s ast.Stmt, pool, release, v string) bool {
	def, ok := s.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(def.Call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != release || exprString(sel.X) != pool {
		return false
	}
	if len(def.Call.Args) != 1 {
		return false
	}
	arg, ok := ast.Unparen(def.Call.Args[0]).(*ast.Ident)
	return ok && arg.Name == v
}
