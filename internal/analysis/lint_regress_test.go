package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// moduleRoot locates the real module tree from this package's directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	root := filepath.Dir(filepath.Dir(wd))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}

// TestModuleClean pins the PR-8 state: the full analyzer suite reports
// nothing on the shipped tree. Every finding the new analyzers surfaced was
// either fixed (the pooled-scratch ownership refactor, the requires-lock
// annotations) or suppressed with a reviewed reason; a regression in any of
// them reappears here.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root := moduleRoot(t)
	loader := analysis.NewLoader(root, "repro")
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("ModulePackages: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("ModulePackages returned nothing")
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("load %s: %v", path, err)
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg, analysis.Analyzers())
		if err != nil {
			t.Errorf("run on %s: %v", path, err)
			continue
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
}

// lintMutation undoes one real-code fix or suppression from this PR and
// names the diagnostic that must come back.
type lintMutation struct {
	name     string
	file     string // module-relative
	old, new string // textual surgery; old must occur exactly once
	pkg      string // package to re-analyze
	analyzer *analysis.Analyzer
	want     string // required diagnostic substring
}

// TestFixesAreLoadBearing proves each in-tree fix is what keeps the module
// clean: the mutated copy must still type-check (so the finding comes from
// the analyzer, not a loader error) and must produce the reverted finding.
func TestFixesAreLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and re-type-checks the module per mutation; skipped in -short mode")
	}
	root := moduleRoot(t)
	mutations := []lintMutation{
		{
			name: "lockwitness_annotation_removed",
			file: "internal/regular/cached.go",
			old:  "// ever called single-threaded).\n//\n//dmclint:requires-lock mu\nfunc (c *Cached) composeMissLocked",
			new:  "// ever called single-threaded).\nfunc (c *Cached) composeMissLocked",
			pkg:  "repro/internal/regular", analyzer: analysis.LockWitness,
			want: "no //dmclint:requires-lock annotation",
		},
		{
			name: "ctxflow_wait_suppression_removed",
			file: "internal/congest/engine.go",
			old:  "\t//lint:ignore dmclint/ctxflow workers drain a bounded batch; the engine polls ctx at the round barrier around each forEach\n\tp.wg.Wait()",
			new:  "\tp.wg.Wait()",
			pkg:  "repro/internal/congest", analyzer: analysis.CtxFlow,
			want: "blocks without a cancellation path",
		},
		{
			name: "gorolife_worker_suppression_removed",
			file: "internal/congest/engine.go",
			old:  "\t\t//lint:ignore dmclint/gorolife workers live for the pool's lifetime; close(tasks) ends them and forEach joins every batch through wg\n",
			new:  "",
			pkg:  "repro/internal/congest", analyzer: analysis.GoroLife,
			want: "no visible join",
		},
		{
			name: "poolpair_defer_separated",
			file: "internal/congest/congest.go",
			old:  "scratch := pool.acquire(key)\n\t\tdefer pool.release(scratch)",
			new:  "scratch := pool.acquire(key)\n\t\t_ = scratch\n\t\tdefer pool.release(scratch)",
			pkg:  "repro/internal/congest", analyzer: analysis.PoolPair,
			want: "not followed by",
		},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			tmp := t.TempDir()
			copyModule(t, root, tmp)
			target := filepath.Join(tmp, filepath.FromSlash(m.file))
			src, err := os.ReadFile(target)
			if err != nil {
				t.Fatalf("read %s: %v", m.file, err)
			}
			if n := strings.Count(string(src), m.old); n != 1 {
				t.Fatalf("mutation anchor occurs %d times in %s, want 1", n, m.file)
			}
			mutated := strings.Replace(string(src), m.old, m.new, 1)
			if err := os.WriteFile(target, []byte(mutated), 0o644); err != nil {
				t.Fatalf("write %s: %v", m.file, err)
			}
			loader := analysis.NewLoader(tmp, "repro")
			pkg, err := loader.Load(m.pkg)
			if err != nil {
				t.Fatalf("mutated tree no longer type-checks: %v", err)
			}
			diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{m.analyzer})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			found := false
			for _, d := range diags {
				if strings.Contains(d.Message, m.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("reverting the fix did not resurface a %s finding matching %q; got %+v",
					m.analyzer.Name, m.want, diags)
			}
		})
	}
}

// copyModule copies the module's non-test Go sources and go.mod into dst,
// skipping VCS metadata and fixture trees.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if rel != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if name != "go.mod" && (!strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go")) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy module: %v", err)
	}
}
