package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlow guards the daemon's cancellation discipline: in the packages that
// sit on a request path (the simulator engine, the HTTP service, and the
// protocol layer), every construct that can block forever must either be a
// select with a context.Context Done case, carry a non-blocking default, or
// be individually justified with a //lint:ignore dmclint/ctxflow <reason>
// suppression. Per-request deadlines are threaded through
// congest.Options.Context into the engine's round barriers; a wait that
// ignores that context turns a client timeout into a leaked goroutine or a
// wedged drain.
//
// Flagged shapes: blocking channel sends and receives outside a select's
// comm clauses, `for ... range ch` over a channel, sync.WaitGroup.Wait, a
// select with neither a default nor a context Done case, and a `for {` loop
// whose body has no break or return.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "blocking waits on request paths must be cancellable or carry a justified suppression",
	Run:  runCtxFlow,
}

// ctxFlowPkgs are the request-path packages (prefix match, like
// DeterministicPkgs).
var ctxFlowPkgs = []string{
	"repro/internal/congest",
	"repro/internal/serve",
	"repro/internal/protocols",
}

func isCtxFlowPkg(path string) bool {
	for _, p := range ctxFlowPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runCtxFlow(pass *Pass) error {
	if !isCtxFlowPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// comm statements of select clauses block as a group, governed by the
		// select-level rule, not individually.
		exempt := make(map[ast.Node]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				checkSelect(pass, n, exempt)
			case *ast.SendStmt:
				if !exempt[n] {
					pass.Reportf(n.Arrow, "blocking send on %s has no cancellation path; select with a context Done case or suppress with a reason",
						exprString(n.Chan))
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !exempt[n] {
					pass.Reportf(n.OpPos, "blocking receive from %s has no cancellation path; select with a context Done case or suppress with a reason",
						exprString(n.X))
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.For, "range over channel %s blocks until the channel closes; add a context-aware select or suppress with a reason",
							exprString(n.X))
					}
				}
			case *ast.CallExpr:
				if recv, ok := isWaitGroupWait(pass, n); ok {
					pass.Reportf(n.Pos(), "%s.Wait() blocks without a cancellation path; bound the waited work by the request context or suppress with a reason",
						recv)
				}
			case *ast.ForStmt:
				if n.Cond == nil && !hasLoopExit(n.Body) {
					pass.Reportf(n.For, "infinite for loop has no break or return; poll the context or bound the loop")
				}
			}
			return true
		})
	}
	return nil
}

// checkSelect exempts the select's own comm operations from the per-op rules
// and applies the select-level rule: a select must be non-blocking (default
// clause) or include a context.Context Done case.
func checkSelect(pass *Pass, sel *ast.SelectStmt, exempt map[ast.Node]bool) {
	hasDefault, hasCtx := false, false
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		var chanExpr ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			exempt[comm] = true
			chanExpr = comm.Chan
		case *ast.ExprStmt:
			if ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				exempt[ue] = true
				chanExpr = ue.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if ue, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					exempt[ue] = true
					chanExpr = ue.X
				}
			}
		}
		if chanExpr != nil && isContextDoneCall(pass, chanExpr) {
			hasCtx = true
		}
	}
	if !hasDefault && !hasCtx {
		pass.Reportf(sel.Select, "select has neither a default nor a context Done case; a stuck peer blocks this path past the request deadline")
	}
}

// isContextDoneCall matches `X.Done()` where X is a context.Context.
func isContextDoneCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	return namedTypeIn(tv.Type, "context", "Context")
}

// isWaitGroupWait matches `X.Wait()` where X is a sync.WaitGroup.
func isWaitGroupWait(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" || len(call.Args) != 0 {
		return "", false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return "", false
	}
	if !namedTypeIn(tv.Type, "sync", "WaitGroup") {
		return "", false
	}
	return exprString(sel.X), true
}

// hasLoopExit reports whether the loop body contains a break for this loop
// or a return, without descending into nested functions or nested loops'
// own breaks.
func hasLoopExit(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// An unlabeled break inside these binds to them, not to our loop;
			// a return still exits.
			for _, inner := range innerStmts(n) {
				ast.Inspect(inner, func(m ast.Node) bool {
					if found {
						return false
					}
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					if _, ok := m.(*ast.ReturnStmt); ok {
						found = true
						return false
					}
					return true
				})
			}
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
			return false
		case *ast.ReturnStmt:
			found = true
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}

// innerStmts lists the statement children of a nested control node.
func innerStmts(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body.List
	case *ast.RangeStmt:
		return n.Body.List
	case *ast.SwitchStmt:
		return n.Body.List
	case *ast.TypeSwitchStmt:
		return n.Body.List
	case *ast.SelectStmt:
		return n.Body.List
	}
	return nil
}
