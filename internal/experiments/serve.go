package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/serve"
)

// The serve scenario (S4) measures the dmcd daemon end to end: an
// in-process HTTP server answers a mixed closed-loop query trace (decision,
// optimization, and counting problems over varied graph families, both
// distributed and sequential mode) from several concurrent clients. Every
// response is checked against a one-shot core solve of the same query, and
// the measured window reports throughput, latency percentiles, and the
// warm cross-request cache hit-rate. The claims under test: the daemon
// sustains >= 1000 queries/sec on the mixed trace, the warm hit-rate
// clears 50%, and answers never diverge from one-shot runs. cmd/bench
// serializes the result as BENCH_serve.json.

// ServeQuery is one query type of the trace: a fixed (graph, problem,
// mode) triple with its expected one-shot answer.
type ServeQuery struct {
	Name    string `json:"name"`
	Family  string `json:"family"`
	N       int    `json:"n"`
	Problem string `json:"problem"`
	Mode    string `json:"mode"`
	D       int    `json:"d"`

	// Measured-window accounting.
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`

	body []byte
	want *core.Solution
}

// ServeCache is one shared cache's end-of-trace counters.
type ServeCache struct {
	Key            string  `json:"key"`
	Classes        int     `json:"classes"`
	ComposeEntries int     `json:"compose_entries"`
	ComposeHitRate float64 `json:"compose_hit_rate"`
	LookupHitRate  float64 `json:"lookup_hit_rate"`
	Evictions      int64   `json:"evictions"`
}

// ServeReport is the BENCH_serve.json document.
type ServeReport struct {
	Harness    string `json:"harness"`
	Quick      bool   `json:"quick"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Clients    int    `json:"clients"`

	WarmupQueries   int     `json:"warmup_queries"`
	MeasuredQueries int     `json:"measured_queries"`
	DurationMS      float64 `json:"duration_ms"`
	ThroughputQPS   float64 `json:"throughput_qps"`
	P50Ms           float64 `json:"p50_ms"`
	P90Ms           float64 `json:"p90_ms"`
	P99Ms           float64 `json:"p99_ms"`
	MaxMs           float64 `json:"max_ms"`

	// WarmHitRate is the shared caches' lookup hit-rate over the measured
	// window only (hits after warmup / lookups after warmup).
	WarmHitRate float64 `json:"warm_hit_rate"`

	// Mismatches counts responses that diverged from the one-shot solve of
	// the same query; anything but 0 is a correctness bug.
	Mismatches int `json:"mismatches"`
	// Errors counts non-200 responses (admission rejections included);
	// the closed-loop trace must see none.
	Errors int `json:"errors"`

	Queries []ServeQuery `json:"queries"`
	Caches  []ServeCache `json:"caches"`
}

// servePair is one (family, problem) combination of the trace.
type servePair struct {
	famName string
	g       *graph.Graph
	d       int
	problem string
	mode    string
}

// serveCatalog builds the query mix: graph families × problems × modes.
// The mix is tuned for a single-box load test: every query's warm
// one-shot cost stays around a millisecond, so the measured throughput
// reflects daemon overhead and cache reuse rather than raw solver time.
// Subset-tracking predicates (vertex cover, independent set) are kept off
// the path family, whose DFS elimination tree is a chain on which such
// predicates are exponential in sequential mode — a property of
// Algorithm 1 on deep trees, not of the daemon under test.
func serveCatalog(quick bool) ([]*ServeQuery, error) {
	sizes := []int{8, 10, 12}
	if quick {
		sizes = []int{8, 10}
	}
	var pairs []servePair
	for i, n := range sizes {
		g, _ := gen.BoundedTreedepth(n, 3, 0.35, int64(9100+i))
		gen.AssignRandomWeights(g, 9, int64(9200+i))
		name := fmt.Sprintf("td3-n%d", n)
		// A sparse sample of the cross product keeps the mix varied
		// without ballooning the catalog; the CONGEST rows stay on the
		// smaller graphs to keep the trace's mean service time low.
		switch i % 3 {
		case 0:
			pairs = append(pairs,
				servePair{name, g, 3, "acyclic", "dist"},
				servePair{name, g, 3, "min-vertex-cover", "seq"},
			)
		case 1:
			pairs = append(pairs,
				servePair{name, g, 3, "2-colorable", "dist"},
				servePair{name, g, 3, "count-perfect-matchings", "seq"},
			)
		default:
			pairs = append(pairs,
				servePair{name, g, 3, "min-vertex-cover", "seq"},
				servePair{name, g, 3, "count-perfect-matchings", "seq"},
			)
		}
	}
	// td(Star) = 2 and td(P_6) = 3, so both families get real verdicts.
	star, path := gen.Star(9), gen.Path(6)
	pairs = append(pairs,
		servePair{"star", star, 2, "acyclic", "dist"},
		servePair{"star", star, 2, "min-vertex-cover", "seq"},
		servePair{"path", path, 3, "2-colorable", "dist"},
		servePair{"path", path, 3, "count-perfect-matchings", "seq"},
	)

	var queries []*ServeQuery
	for _, p := range pairs {
		prob, err := core.Lookup(p.problem)
		if err != nil {
			return nil, err
		}
		var want *core.Solution
		if p.mode == "seq" {
			want, err = core.SolveSequential(p.g, prob)
		} else {
			want, err = core.SolveDistributed(p.g, prob, p.d, congest.Options{Parallel: true})
		}
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", p.famName, p.problem, err)
		}
		var text bytes.Buffer
		if err := graph.WriteEdgeList(&text, p.g); err != nil {
			return nil, err
		}
		req := serve.CheckRequest{Graph: text.String(), Problem: p.problem, Mode: p.mode, D: p.d}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		queries = append(queries, &ServeQuery{
			Name: p.famName + "/" + p.problem, Family: p.famName, N: p.g.NumVertices(),
			Problem: p.problem, Mode: p.mode, D: p.d,
			body: body, want: want,
		})
	}
	return queries, nil
}

// matches compares a daemon answer against the one-shot solution.
func (q *ServeQuery) matches(resp serve.CheckResponse) bool {
	w := q.want
	if resp.TdExceeded != w.TdExceeded || resp.Accepted != w.Accepted ||
		resp.Found != w.Found || resp.Weight != w.Weight || resp.Count != w.Count {
		return false
	}
	if q.Mode == "dist" {
		if resp.Rounds != w.Stats.Rounds || resp.Messages != w.Stats.Messages ||
			resp.Bits != w.Stats.Bits || resp.MaxMsgBits != w.Stats.MaxMsgBits {
			return false
		}
	}
	return true
}

// lookupTraffic sums every cache's hit/miss counters.
func lookupTraffic(st serve.StatsResponse) (hits, total int64) {
	for _, c := range st.Caches {
		h := c.ComposeHits + c.AcceptHits + c.SelectionHits + c.DecodeHits
		m := c.ComposeMisses + c.AcceptMisses + c.SelectionMisses + c.DecodeMisses
		hits += h
		total += h + m
	}
	return hits, total
}

// ServeSweep runs the S4 scenario: warmup, then a timed closed-loop window.
func ServeSweep(quick bool) (*ServeReport, error) {
	queries, err := serveCatalog(quick)
	if err != nil {
		return nil, err
	}

	clients := runtime.GOMAXPROCS(0)
	if clients < 2 {
		clients = 2
	}
	if clients > 8 {
		clients = 8
	}
	measure := 4 * time.Second
	if quick {
		measure = 1200 * time.Millisecond
	}

	srv := serve.New(serve.Options{MaxConcurrent: clients, QueueDepth: 4 * clients})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	httpc := ts.Client()
	if tr, ok := httpc.Transport.(*http.Transport); ok {
		tr.MaxIdleConnsPerHost = clients
	}

	type sample struct {
		query int
		ms    float64
		ok    bool
		match bool
	}
	post := func(qi int) sample {
		q := queries[qi]
		start := time.Now()
		resp, err := httpc.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(q.body))
		ms := float64(time.Since(start).Microseconds()) / 1000
		s := sample{query: qi, ms: ms}
		if err != nil {
			return s
		}
		defer resp.Body.Close()
		var out serve.CheckResponse
		if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil {
			return s
		}
		s.ok = true
		s.match = q.matches(out)
		return s
	}

	// Warmup: every client touches every query type once, populating the
	// shared caches and the scratch pool.
	var wg sync.WaitGroup
	warmup := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range queries {
				post(qi)
			}
		}()
		warmup += len(queries)
	}
	wg.Wait()

	warmStats := srv.Stats()
	warmHits, warmTotal := lookupTraffic(warmStats)

	// Measured window: closed-loop clients cycling the mix, staggered so
	// they do not march in lockstep.
	results := make([][]sample, clients)
	deadline := time.Now().Add(measure)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			qi := c % len(queries)
			for time.Now().Before(deadline) {
				results[c] = append(results[c], post(qi))
				qi = (qi + 1) % len(queries)
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	endStats := srv.Stats()
	endHits, endTotal := lookupTraffic(endStats)

	report := &ServeReport{
		Harness:       "S4-serve",
		Quick:         quick,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Clients:       clients,
		WarmupQueries: warmup,
		DurationMS:    float64(elapsed.Microseconds()) / 1000,
	}
	var lat []float64
	sums := make([]float64, len(queries))
	for _, rs := range results {
		for _, s := range rs {
			report.MeasuredQueries++
			lat = append(lat, s.ms)
			queries[s.query].Count++
			sums[s.query] += s.ms
			switch {
			case !s.ok:
				report.Errors++
			case !s.match:
				report.Mismatches++
			}
		}
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	report.P50Ms, report.P90Ms, report.P99Ms = pct(0.50), pct(0.90), pct(0.99)
	if len(lat) > 0 {
		report.MaxMs = lat[len(lat)-1]
	}
	if elapsed > 0 {
		report.ThroughputQPS = float64(report.MeasuredQueries) / elapsed.Seconds()
	}
	if dt := endTotal - warmTotal; dt > 0 {
		report.WarmHitRate = float64(endHits-warmHits) / float64(dt)
	}
	for i, q := range queries {
		if q.Count > 0 {
			q.MeanMS = sums[i] / float64(q.Count)
		}
		report.Queries = append(report.Queries, *q)
	}
	for _, c := range endStats.Caches {
		report.Caches = append(report.Caches, ServeCache{
			Key: c.Key, Classes: c.Classes, ComposeEntries: c.ComposeEntries,
			ComposeHitRate: c.ComposeHitRate, LookupHitRate: c.LookupHitRate,
			Evictions: c.ComposeEvictions,
		})
	}
	if report.Mismatches > 0 {
		return report, fmt.Errorf("S4: %d responses diverged from one-shot solves", report.Mismatches)
	}
	if report.Errors > 0 {
		return report, fmt.Errorf("S4: %d requests failed", report.Errors)
	}
	return report, nil
}

// ServeTable renders the S4 report.
func ServeTable(rep *ServeReport) *Table {
	tab := &Table{
		ID:     "S4",
		Title:  "dmcd daemon under mixed closed-loop load",
		Claim:  "the daemon sustains >=1000 qps on the mixed trace with warm cache hit-rate >=50% and every answer bit-identical to a one-shot solve",
		Header: []string{"query", "mode", "n", "count", "mean_ms"},
	}
	for _, q := range rep.Queries {
		tab.AddRow(q.Name, q.Mode, q.N, q.Count, fmt.Sprintf("%.3f", q.MeanMS))
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("clients=%d window=%.0fms queries=%d throughput=%.0f qps",
			rep.Clients, rep.DurationMS, rep.MeasuredQueries, rep.ThroughputQPS),
		fmt.Sprintf("latency p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms",
			rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MaxMs),
		fmt.Sprintf("warm cross-request cache hit-rate=%.1f%% mismatches=%d errors=%d",
			100*rep.WarmHitRate, rep.Mismatches, rep.Errors),
	)
	return tab
}

// S4Serve runs the serve scenario and renders its table.
func S4Serve(quick bool) (*Table, error) {
	rep, err := ServeSweep(quick)
	if err != nil {
		return nil, err
	}
	return ServeTable(rep), nil
}
