package experiments

import (
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
)

// F1MessageWidth validates the CONGEST fidelity: the largest single message
// ever sent stays within the enforced B = Θ(log n) budget across n, for both
// decision and optimization runs.
func F1MessageWidth(quick bool) (*Table, error) {
	t := &Table{
		ID:     "F1",
		Title:  "Maximum message width vs n (series for a message-size figure)",
		Claim:  "All protocol messages fit the O(log n)-bit CONGEST budget",
		Header: []string{"n", "B (bits)", "max msg bits (decide)", "max msg bits (optimize)", "within budget"},
	}
	sizes := []int{32, 128, 512}
	if !quick {
		sizes = append(sizes, 2048)
	}
	for _, n := range sizes {
		g, _ := gen.BoundedTreedepth(n, 2, 0.2, int64(n)*5)
		gen.AssignRandomWeights(g, 100, int64(n)*11)
		dec, err := protocols.Decide(g, 2, predicates.Acyclicity{}, congest.Options{IDSeed: 7})
		if err != nil {
			return nil, fmt.Errorf("F1 n=%d: %w", n, err)
		}
		opt, err := protocols.Optimize(g, 2, predicates.IndependentSet{}, true, congest.Options{IDSeed: 7})
		if err != nil {
			return nil, fmt.Errorf("F1 n=%d opt: %w", n, err)
		}
		within := dec.Stats.MaxMsgBits <= dec.Stats.Bandwidth && opt.Stats.MaxMsgBits <= opt.Stats.Bandwidth
		t.AddRow(n, dec.Stats.Bandwidth, dec.Stats.MaxMsgBits, opt.Stats.MaxMsgBits, within)
	}
	t.Notes = append(t.Notes, "larger logical payloads (OPT tables) are streamed over ceil(k/B) rounds, as in the paper")
	return t, nil
}

// F2BaselineCrossover locates the boundary of the meta-theorem: on
// caterpillars, treedepth grows as Θ(log spine), so the protocol's O(2^2d)
// rounds become polynomial in n and the naive collect-at-root baseline
// (Θ(diam + m log n / B)) eventually overtakes it — the paper's own remark
// that the theorem cannot extend even to the class of paths. On genuinely
// bounded-treedepth families (T1) the protocol wins by an ever-growing
// margin instead.
func F2BaselineCrossover(quick bool) (*Table, error) {
	t := &Table{
		ID:     "F2",
		Title:  "Protocol vs baseline rounds on caterpillars (crossover figure)",
		Claim:  "The O(2^2d) cost is the meta-theorem's boundary: d = Θ(log n) here, so the baseline crosses over",
		Header: []string{"spine", "n", "diam", "d", "protocol rounds", "baseline rounds", "protocol wins"},
	}
	spines := []int{4, 8, 16, 32}
	if !quick {
		spines = append(spines, 48, 64)
	}
	for _, spine := range spines {
		g := gen.Caterpillar(spine, 2)
		n := g.NumVertices()
		d := int(math.Ceil(math.Log2(float64(spine+1)))) + 1
		res, err := protocols.Decide(g, d, predicates.Acyclicity{}, congest.Options{IDSeed: 8})
		if err != nil {
			return nil, fmt.Errorf("F2 spine=%d: %w", spine, err)
		}
		if res.TdExceeded {
			return nil, fmt.Errorf("F2 spine=%d: unexpected treedepth report at d=%d", spine, d)
		}
		base, err := protocols.BaselineDecide(g, protocols.AcyclicSolver, congest.Options{IDSeed: 8})
		if err != nil {
			return nil, fmt.Errorf("F2 spine=%d baseline: %w", spine, err)
		}
		t.AddRow(spine, n, g.Diameter(), d, res.Stats.Rounds, base.Stats.Rounds,
			res.Stats.Rounds < base.Stats.Rounds)
	}
	t.Notes = append(t.Notes,
		"caterpillars have treedepth Θ(log spine), so the protocol pays O(2^2d) = poly(spine) here",
		"and loses to the baseline as the spine grows — exactly the paper's impossibility remark;",
		"contrast with T1, where treedepth is fixed and the protocol's rounds stay flat in n")
	return t, nil
}

// F3ElimTree validates Lemmas 5.1 and 5.3: Algorithm 2 produces elimination
// trees of depth at most 2^d in O(2^2d) rounds, with correct bags.
func F3ElimTree(quick bool) (*Table, error) {
	t := &Table{
		ID:     "F3",
		Title:  "Distributed elimination-tree construction (Algorithm 2)",
		Claim:  "Lemma 5.1: depth <= 2^d, O(2^2d) rounds; Lemma 5.3: correct bags",
		Header: []string{"n", "d", "tree depth", "2^d", "rounds", "rounds / 2^2d", "valid"},
	}
	var jobs []struct{ n, d int }
	for _, n := range []int{64, 256} {
		for d := 2; d <= 4; d++ {
			jobs = append(jobs, struct{ n, d int }{n, d})
		}
	}
	if !quick {
		jobs = append(jobs, struct{ n, d int }{1024, 3}, struct{ n, d int }{1024, 5})
	}
	for _, job := range jobs {
		g, _ := gen.BoundedTreedepth(job.n, job.d, 0.2, int64(job.n*job.d))
		res, err := protocols.Decide(g, job.d, predicates.Acyclicity{}, congest.Options{IDSeed: 9})
		if err != nil {
			return nil, fmt.Errorf("F3 n=%d d=%d: %w", job.n, job.d, err)
		}
		valid := !res.TdExceeded && res.Forest.VerifyElimination(g) == nil
		depth := res.Forest.Depth()
		sq := 1 << uint(2*job.d)
		t.AddRow(job.n, job.d, depth, 1<<uint(job.d), res.Stats.Rounds,
			fmt.Sprintf("%.2f", float64(res.Stats.Rounds)/float64(sq)), valid && depth <= 1<<uint(job.d))
	}
	return t, nil
}
