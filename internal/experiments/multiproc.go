package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/shard"
)

// The multiproc scenario (S7) prices the process boundary: the same
// heartbeat workload as S1, run once in-process and then through the
// internal/shard coordinator at K ∈ {2, 4}, measuring rounds/sec and what
// the frame protocol actually put on the wire next to the logical CONGEST
// bits. Workers are loopback sessions (goroutines over net.Pipe speaking
// the full frame protocol — handshake, digests, batches, merge), so the
// table isolates protocol cost from process-spawn and syscall noise; the
// real-socket path is exercised by dmc -multiproc and the ExecSpawner
// equivalence tests. Every multiproc row must reproduce the in-process
// stats and state checksum bit for bit — the 'match' column is a live
// verdict, not a claim.

// MultiprocRun is one (family, n, mode) measurement.
type MultiprocRun struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	Edges  int    `json:"edges"`
	// Mode is "inproc" or "shards=K".
	Mode     string `json:"mode"`
	Shards   int    `json:"shards,omitempty"`
	Rounds   int    `json:"rounds"`
	Messages int64  `json:"messages"`
	// LogicalBits is congest.Stats.Bits: the CONGEST-model cost, identical
	// across modes by construction.
	LogicalBits int64 `json:"logical_bits"`
	// Wire counters are zero on inproc rows.
	WireFrames    int64   `json:"wire_frames,omitempty"`
	WireBytesSent int64   `json:"wire_bytes_sent,omitempty"`
	WireBytesRecv int64   `json:"wire_bytes_recv,omitempty"`
	WallMS        float64 `json:"wall_ms"`
	RoundsPerSec  float64 `json:"rounds_per_sec"`
	// WireOverhead is wire bytes sent per logical payload byte.
	WireOverhead float64 `json:"wire_overhead,omitempty"`
	Checksum     uint64  `json:"checksum"`
	// MatchesInProcess is set on multiproc rows: stats and checksum equal
	// the in-process baseline.
	MatchesInProcess *bool `json:"matches_in_process,omitempty"`
}

// MultiprocReport is the BENCH_multiproc.json document.
type MultiprocReport struct {
	Harness    string         `json:"harness"`
	Quick      bool           `json:"quick"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Transport  string         `json:"transport"`
	Runs       []MultiprocRun `json:"runs"`
	// AllMatch is true iff every multiproc run matched its in-process twin.
	AllMatch bool `json:"all_match"`
}

func multiprocSizes(quick bool) []int {
	if quick {
		return []int{2000, 10000}
	}
	return []int{100000, 1000000}
}

var multiprocShardCounts = []int{2, 4}

// MultiprocSweep runs the S7 scenario: each family × size in-process, then
// through the shard coordinator at each K, verifying bit-identical stats
// and state as it goes.
func MultiprocSweep(quick bool) (*MultiprocReport, error) {
	rep := &MultiprocReport{
		Harness:    "cmd/bench S7 (multi-process transport)",
		Quick:      quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Transport:  "loopback (in-memory pipes, full frame protocol)",
		AllMatch:   true,
	}
	for _, family := range []string{"path", "gnp"} {
		for _, n := range multiprocSizes(quick) {
			g := scalingGraph(family, n)
			base, err := multiprocInProcess(g, family, n)
			if err != nil {
				return nil, fmt.Errorf("multiproc %s n=%d inproc: %w", family, n, err)
			}
			rep.Runs = append(rep.Runs, base)
			for _, k := range multiprocShardCounts {
				run, err := multiprocOnce(g, family, n, k)
				if err != nil {
					return nil, fmt.Errorf("multiproc %s n=%d shards=%d: %w", family, n, k, err)
				}
				match := run.Checksum == base.Checksum &&
					run.Rounds == base.Rounds &&
					run.Messages == base.Messages &&
					run.LogicalBits == base.LogicalBits
				run.MatchesInProcess = &match
				if !match {
					rep.AllMatch = false
				}
				rep.Runs = append(rep.Runs, run)
			}
		}
	}
	if !rep.AllMatch {
		return rep, fmt.Errorf("multiproc sweep: shard output diverged from in-process")
	}
	return rep, nil
}

func multiprocInProcess(g *graph.Graph, family string, n int) (MultiprocRun, error) {
	start := time.Now()
	stats, sum, err := shard.RunHeartbeatInProcess(g, congest.Options{}, 0)
	wall := time.Since(start)
	if err != nil {
		return MultiprocRun{}, err
	}
	return multiprocRow(family, n, g.NumEdges(), "inproc", 0, stats, sum, wall), nil
}

func multiprocOnce(g *graph.Graph, family string, n, k int) (MultiprocRun, error) {
	spec := shard.Spec{Workload: shard.WorkloadHeartbeat}
	start := time.Now()
	res, err := shard.Run(g, spec, shard.Options{Shards: k})
	wall := time.Since(start)
	if err != nil {
		return MultiprocRun{}, err
	}
	run := multiprocRow(family, n, g.NumEdges(), fmt.Sprintf("shards=%d", k), k,
		res.Run.Stats, res.Checksum, wall)
	run.WireFrames = res.Wire.FramesSent
	run.WireBytesSent = res.Wire.BytesSent
	run.WireBytesRecv = res.Wire.BytesRecv
	if bits := run.LogicalBits; bits > 0 {
		run.WireOverhead = float64(res.Wire.BytesSent) / (float64(bits) / 8)
	}
	return run, nil
}

func multiprocRow(family string, n, edges int, mode string, shards int,
	stats congest.Stats, sum uint64, wall time.Duration) MultiprocRun {
	run := MultiprocRun{
		Family:      family,
		N:           n,
		Edges:       edges,
		Mode:        mode,
		Shards:      shards,
		Rounds:      stats.Rounds,
		Messages:    stats.Messages,
		LogicalBits: stats.Bits,
		WallMS:      float64(wall.Microseconds()) / 1000,
		Checksum:    sum,
	}
	if secs := wall.Seconds(); secs > 0 {
		run.RoundsPerSec = float64(stats.Rounds) / secs
	}
	return run
}

// MultiprocTable renders a MultiprocReport as the S7 experiment table.
func MultiprocTable(rep *MultiprocReport) *Table {
	tab := &Table{
		ID:     "S7",
		Title:  "multi-process transport: rounds/sec and bytes-on-wire vs in-process",
		Claim:  "the frame-protocol coordinator reproduces the in-process engine bit for bit at any shard count, and the table prices its rounds/sec and wire-byte overhead",
		Header: []string{"family", "n", "mode", "rounds", "messages", "logical bits", "wire bytes", "overhead", "wall ms", "rounds/s", "match"},
	}
	for _, r := range rep.Runs {
		match, wire, overhead := "-", "-", "-"
		if r.MatchesInProcess != nil {
			match = fmt.Sprintf("%v", *r.MatchesInProcess)
		}
		if r.WireBytesSent > 0 {
			wire = fmt.Sprintf("%d", r.WireBytesSent)
			overhead = fmt.Sprintf("%.2fx", r.WireOverhead)
		}
		tab.AddRow(r.Family, r.N, r.Mode, r.Rounds, r.Messages, r.LogicalBits,
			wire, overhead, fmt.Sprintf("%.1f", r.WallMS), fmt.Sprintf("%.3g", r.RoundsPerSec), match)
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("workload: S1's heartbeat (2-byte broadcast × %d rounds); logical bits are identical across modes by construction", shard.DefaultHeartbeatRounds),
		fmt.Sprintf("transport: %s — protocol cost without process-spawn or syscall noise; dmc -multiproc runs the same protocol over real sockets", rep.Transport),
		"'overhead' is wire bytes sent per logical payload byte: frame headers, message headers, and the star topology's relay (every payload crosses the coordinator twice)",
		fmt.Sprintf("GOMAXPROCS=%d; 'match' certifies shard stats+state == in-process ('-' on inproc baseline rows)", rep.GoMaxProcs))
	return tab
}

// S7Multiproc is the Experiment wrapper over MultiprocSweep.
func S7Multiproc(quick bool) (*Table, error) {
	rep, err := MultiprocSweep(quick)
	if err != nil {
		return nil, err
	}
	return MultiprocTable(rep), nil
}
