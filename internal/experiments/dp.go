package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
)

// The DP-layer scenario (S2) measures the regular-predicate algebra itself —
// class interning, dense tables, and ⊙_f memoization — with the CONGEST
// engine out of the loop: the sequential runner evaluates each predicate
// twice on the same derivation, once on the cached dense path (seq.New) and
// once on the uncached map path (seq.NewUncached). The two runs must agree
// class-for-class (root-table checksums) and verdict-for-verdict; the wall
// times quantify what the cache buys. cmd/bench serializes the result as
// BENCH_dp.json.

// DPRun is one (family, n, predicate, mode, impl) measurement.
type DPRun struct {
	Family    string `json:"family"`
	N         int    `json:"n"`
	Edges     int    `json:"edges"`
	Depth     int    `json:"depth"` // elimination-forest depth of the witness
	Predicate string `json:"predicate"`
	Mode      string `json:"mode"` // "decide", "opt", or "count"
	Impl      string `json:"impl"` // "cached" or "uncached"

	WallMS float64 `json:"wall_ms"`
	// Checksum digests the verdict, the root DP table (every class key and
	// value in canonical order), and the extracted selection, so equal
	// checksums certify per-class agreement, not just equal answers.
	Checksum uint64 `json:"checksum"`
	// MatchesUncached is set on "cached" runs when the checksum equals the
	// paired "uncached" run's.
	MatchesUncached bool `json:"matches_uncached"`
	// SpeedupVsUncached is uncached wall time / cached wall time ("cached"
	// runs only).
	SpeedupVsUncached float64 `json:"speedup_vs_uncached,omitempty"`

	// Cache counters ("cached" runs only).
	Classes        int     `json:"classes,omitempty"`
	ComposeHits    int64   `json:"compose_hits,omitempty"`
	ComposeMisses  int64   `json:"compose_misses,omitempty"`
	ComposeHitRate float64 `json:"compose_hit_rate,omitempty"`
}

// DPReport is the BENCH_dp.json document.
type DPReport struct {
	Harness    string  `json:"harness"`
	Quick      bool    `json:"quick"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Runs       []DPRun `json:"runs"`
	// AllMatch is true iff every cached run matched its uncached twin.
	AllMatch bool `json:"all_match"`
	// BestSpeedupAtLargest is the best cached-vs-uncached speedup observed at
	// the largest swept size.
	BestSpeedupAtLargest float64 `json:"best_speedup_at_largest"`
}

// dpWorkload is one predicate × mode combination of the sweep.
type dpWorkload struct {
	name     string
	mode     string
	pred     func() regular.Predicate
	maximize bool
}

func dpWorkloads() []dpWorkload {
	return []dpWorkload{
		{name: "connectivity", mode: "decide", pred: func() regular.Predicate { return predicates.Connectivity{} }},
		{name: "indset", mode: "opt", pred: func() regular.Predicate { return predicates.IndependentSet{} }, maximize: true},
		{name: "vertexcover", mode: "opt", pred: func() regular.Predicate { return predicates.VertexCover{} }, maximize: false},
		// Triangle counting keeps COUNT polynomial in n (counting matchings
		// overflows int64 at these sizes).
		{name: "triangles", mode: "count", pred: func() regular.Predicate { return predicates.Triangles{} }},
	}
}

// dpFamily is a bounded-treedepth graph family; the generator's parent slice
// is the elimination-forest witness the runner uses.
type dpFamily struct {
	name      string
	d         int
	extraProb float64
	seed      int64
}

func dpFamilies() []dpFamily {
	return []dpFamily{
		{name: "td3", d: 3, extraProb: 0.2, seed: 61},
		{name: "td4_dense", d: 4, extraProb: 0.5, seed: 62},
	}
}

func dpSizes(quick bool) []int {
	if quick {
		return []int{300, 1200}
	}
	return []int{2000, 8000, 32000}
}

// DPSweep runs the S2 scenario: each family × size × workload, uncached then
// cached, verifying per-class agreement as it goes.
func DPSweep(quick bool) (*DPReport, error) {
	rep := &DPReport{
		Harness:    "cmd/bench S2 (DP algebra: interning + memoized compose)",
		Quick:      quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		AllMatch:   true,
	}
	sizes := dpSizes(quick)
	largest := sizes[len(sizes)-1]
	for _, fam := range dpFamilies() {
		for _, n := range sizes {
			g, parent := gen.BoundedTreedepth(n, fam.d, fam.extraProb, fam.seed)
			gen.AssignRandomWeights(g, 9, fam.seed+1)
			forest := treedepth.NewForest(parent)
			for _, wl := range dpWorkloads() {
				var uncached DPRun
				for _, impl := range []string{"uncached", "cached"} {
					run, err := dpOnce(g, forest, fam, n, wl, impl)
					if err != nil {
						return nil, fmt.Errorf("dp %s n=%d %s/%s %s: %w",
							fam.name, n, wl.name, wl.mode, impl, err)
					}
					if impl == "uncached" {
						uncached = run
					} else {
						run.MatchesUncached = run.Checksum == uncached.Checksum
						if !run.MatchesUncached {
							rep.AllMatch = false
						}
						if uncached.WallMS > 0 && run.WallMS > 0 {
							run.SpeedupVsUncached = uncached.WallMS / run.WallMS
						}
						if n == largest && run.SpeedupVsUncached > rep.BestSpeedupAtLargest {
							rep.BestSpeedupAtLargest = run.SpeedupVsUncached
						}
					}
					rep.Runs = append(rep.Runs, run)
				}
			}
		}
	}
	if !rep.AllMatch {
		return rep, fmt.Errorf("dp sweep: cached run diverged from uncached reference")
	}
	return rep, nil
}

func dpOnce(g *graph.Graph, forest *treedepth.Forest, fam dpFamily, n int, wl dpWorkload, impl string) (DPRun, error) {
	build := seq.NewUncached
	if impl == "cached" {
		build = seq.New
	}
	r, err := build(g, forest, wl.pred())
	if err != nil {
		return DPRun{}, err
	}
	h := fnv.New64a()
	put64 := func(v uint64) {
		var buf [8]byte
		for j := range buf {
			buf[j] = byte(v >> uint(8*j))
		}
		h.Write(buf[:])
	}
	start := time.Now()
	switch wl.mode {
	case "decide":
		ok, err := r.Decide()
		if err != nil {
			return DPRun{}, err
		}
		if ok {
			put64(1)
		} else {
			put64(0)
		}
	case "opt":
		res, err := r.Optimize(wl.maximize)
		if err != nil {
			return DPRun{}, err
		}
		if res.Found {
			put64(1)
			put64(uint64(res.Weight))
			if res.Vertices != nil {
				for v := 0; v < g.NumVertices(); v++ {
					if res.Vertices.Contains(v) {
						put64(uint64(v))
					}
				}
			}
			if res.Edges != nil {
				for e := 0; e < g.NumEdges(); e++ {
					if res.Edges.Contains(e) {
						put64(uint64(e))
					}
				}
			}
		} else {
			put64(0)
		}
	case "count":
		total, err := r.Count()
		if err != nil {
			return DPRun{}, err
		}
		put64(uint64(total))
	default:
		return DPRun{}, fmt.Errorf("unknown dp mode %q", wl.mode)
	}
	wall := time.Since(start)
	put64(r.RootTableChecksum())

	run := DPRun{
		Family:    fam.name,
		N:         n,
		Edges:     g.NumEdges(),
		Depth:     forest.Depth(),
		Predicate: wl.name,
		Mode:      wl.mode,
		Impl:      impl,
		WallMS:    float64(wall.Microseconds()) / 1000,
		Checksum:  h.Sum64(),
	}
	if impl == "cached" {
		st := r.CacheStats()
		run.Classes = st.Classes
		run.ComposeHits = st.ComposeHits
		run.ComposeMisses = st.ComposeMisses
		run.ComposeHitRate = st.ComposeHitRate()
	}
	return run, nil
}

// DPTable renders a DPReport as the S2 experiment table.
func DPTable(rep *DPReport) *Table {
	tab := &Table{
		ID:     "S2",
		Title:  "DP algebra: cached dense tables vs uncached map folds",
		Claim:  "interning classes and memoizing the update function speeds up the regular-predicate layer without changing a single class or verdict",
		Header: []string{"family", "n", "pred", "mode", "impl", "wall ms", "speedup", "hit rate", "classes", "match"},
	}
	for _, r := range rep.Runs {
		speedup, hitRate, classes, match := "", "", "", ""
		if r.Impl == "cached" {
			speedup = fmt.Sprintf("%.2fx", r.SpeedupVsUncached)
			hitRate = fmt.Sprintf("%.3f", r.ComposeHitRate)
			classes = fmt.Sprintf("%d", r.Classes)
			match = fmt.Sprintf("%v", r.MatchesUncached)
		}
		tab.AddRow(r.Family, r.N, r.Predicate, r.Mode, r.Impl,
			fmt.Sprintf("%.1f", r.WallMS), speedup, hitRate, classes, match)
	}
	tab.Notes = append(tab.Notes,
		"checksums digest the verdict, selection, and the root table's (class key, value) pairs; 'match' certifies cached == uncached per class",
		fmt.Sprintf("best cached speedup at n=%d: %.2fx", dpSizes(rep.Quick)[len(dpSizes(rep.Quick))-1], rep.BestSpeedupAtLargest))
	return tab
}

// S2DP is the Experiment wrapper over DPSweep.
func S2DP(quick bool) (*Table, error) {
	rep, err := DPSweep(quick)
	if err != nil {
		return nil, err
	}
	return DPTable(rep), nil
}
