package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// The scaling scenario (S1) measures the CONGEST engine itself — scheduling,
// delivery, and allocation overhead — at the large n the ROADMAP north star
// targets, on three graph families (path, random tree, sparse GNP). Every
// configuration runs both sequentially and on the worker pool, and the
// sweep cross-checks that the two modes produce bit-identical stats and
// node states; cmd/bench serializes the result as BENCH_congest.json so
// successive PRs have a perf trajectory to compare against.
//
// Each (family, n, mode) cell runs twice over a shared scratch pool: a
// warm-up run that grows every buffer to steady-state capacity, then the
// measured run, bracketed by runtime.MemStats reads. The reported
// allocs/round and peak-heap columns therefore describe the engine's
// steady-state memory behavior, not first-run warm-up churn.

// scalingHeartbeatRounds is the fixed round count of the S1 workload.
const scalingHeartbeatRounds = 8

// scalingNode broadcasts a 2-byte running accumulator each round for a fixed
// number of rounds, then halts. Per-round work is O(deg), so the simulator
// cost is Θ(rounds · m) and the measurement isolates engine overhead rather
// than protocol logic. Payload and outbox live inside the node struct, so
// the workload itself allocates nothing per round — allocs_per_round
// measures the engine alone.
type scalingNode struct {
	rounds int
	acc    int
	buf    [2]byte
	out    [1]congest.Outgoing
}

func (h *scalingNode) emit() []congest.Outgoing {
	h.buf[0], h.buf[1] = byte(h.acc), byte(h.acc>>8)
	h.out[0] = congest.Broadcast(congest.Message(h.buf[:]))
	return h.out[:]
}

func (h *scalingNode) Init(env *congest.Env) []congest.Outgoing {
	h.acc = env.ID & 0xFFFF
	return h.emit()
}

func (h *scalingNode) Round(env *congest.Env, inbox []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, in := range inbox {
		h.acc += int(in.Payload[0]) | int(in.Payload[1])<<8
	}
	h.acc &= 0xFFFF
	h.rounds++
	if h.rounds >= scalingHeartbeatRounds {
		return nil, true
	}
	return h.emit(), false
}

// ScalingRun is one (family, n, mode) measurement.
type ScalingRun struct {
	Family    string  `json:"family"`
	N         int     `json:"n"`
	Edges     int     `json:"edges"`
	Mode      string  `json:"mode"` // "seq" or "par"
	Workers   int     `json:"workers"`
	Rounds    int     `json:"rounds"`
	Messages  int64   `json:"messages"`
	Bits      int64   `json:"bits"`
	Bandwidth int     `json:"bandwidth_bits"`
	WallMS    float64 `json:"wall_ms"`
	// AllocsPerRound is the heap allocations per round of the measured
	// (pool-warmed) run; the engine's steady-state target is ~0.
	AllocsPerRound float64 `json:"allocs_per_round"`
	// PeakHeapMB is the heap in use right after the measured run, before any
	// GC — an upper-bound proxy for the run's live working set.
	PeakHeapMB float64 `json:"peak_heap_mb"`
	// Checksum digests every node's final accumulator; equal checksums and
	// stats across modes certify bit-identical execution.
	Checksum uint64 `json:"checksum"`
	// MatchesSequential is set on "par" runs: true when stats and checksum
	// equal the paired "seq" run. Omitted on "seq" rows — the baseline has
	// nothing to match against.
	MatchesSequential *bool `json:"matches_sequential,omitempty"`
}

// ScalingReport is the BENCH_congest.json document.
type ScalingReport struct {
	Harness    string       `json:"harness"`
	Quick      bool         `json:"quick"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Runs       []ScalingRun `json:"runs"`
	// AllMatch is true iff every parallel run matched its sequential twin.
	AllMatch bool `json:"all_match"`
}

func scalingGraph(family string, n int) *graph.Graph {
	switch family {
	case "path":
		return gen.Path(n)
	case "tree":
		return gen.RandomTree(n, 7)
	case "gnp":
		// Expected degree ~8; the spine keeps it connected at any n.
		return gen.ConnectedSparseGNP(n, 8/float64(n), 11)
	default:
		panic("unknown scaling family " + family)
	}
}

func scalingSizes(quick bool) []int {
	if quick {
		return []int{2000, 10000}
	}
	return []int{100000, 1000000}
}

// ScalingSweep runs the S1 scenario at the default sizes: each family ×
// size, sequential then parallel, verifying mode equivalence as it goes.
func ScalingSweep(quick bool) (*ScalingReport, error) {
	return ScalingSweepSizes(quick, nil)
}

// ScalingSweepSizes is ScalingSweep with an explicit size list (nil means
// the defaults); CI uses it to run a reduced sweep without forking the
// harness.
func ScalingSweepSizes(quick bool, sizes []int) (*ScalingReport, error) {
	if len(sizes) == 0 {
		sizes = scalingSizes(quick)
	}
	rep := &ScalingReport{
		Harness:    "cmd/bench S1 (engine scaling)",
		Quick:      quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		AllMatch:   true,
	}
	for _, family := range []string{"path", "tree", "gnp"} {
		for _, n := range sizes {
			g := scalingGraph(family, n)
			var seqRun ScalingRun
			for _, mode := range []string{"seq", "par"} {
				run, err := scalingOnce(g, family, n, mode)
				if err != nil {
					return nil, fmt.Errorf("scaling %s n=%d %s: %w", family, n, mode, err)
				}
				if mode == "seq" {
					seqRun = run
				} else {
					match := run.Checksum == seqRun.Checksum &&
						run.Rounds == seqRun.Rounds &&
						run.Messages == seqRun.Messages &&
						run.Bits == seqRun.Bits
					run.MatchesSequential = &match
					if !match {
						rep.AllMatch = false
					}
				}
				rep.Runs = append(rep.Runs, run)
			}
		}
	}
	if !rep.AllMatch {
		return rep, fmt.Errorf("scaling sweep: parallel output diverged from sequential")
	}
	return rep, nil
}

func scalingOnce(g *graph.Graph, family string, n int, mode string) (ScalingRun, error) {
	pool := congest.NewScratchPool()
	opts := congest.Options{Parallel: mode == "par", Scratch: pool}
	sim, err := congest.NewSimulator(g, opts)
	if err != nil {
		return ScalingRun{}, err
	}
	nodes := make([]scalingNode, n)
	factory := func(v int) congest.Node {
		nodes[v] = scalingNode{}
		return &nodes[v]
	}

	// Warm-up run: grows the pooled buffers to steady-state capacity.
	if _, err := sim.Run(factory); err != nil {
		return ScalingRun{}, err
	}

	// Measured run, bracketed by MemStats: Mallocs delta / rounds is the
	// engine's per-round allocation count, and HeapAlloc right after the run
	// (pre-GC) bounds the live working set.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	stats, err := sim.Run(factory)
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return ScalingRun{}, err
	}

	h := fnv.New64a()
	var buf [2]byte
	for v := range nodes {
		buf[0], buf[1] = byte(nodes[v].acc), byte(nodes[v].acc>>8)
		h.Write(buf[:])
	}
	allocsPerRound := 0.0
	if stats.Rounds > 0 {
		allocsPerRound = float64(m1.Mallocs-m0.Mallocs) / float64(stats.Rounds)
	}
	return ScalingRun{
		Family:         family,
		N:              n,
		Edges:          g.NumEdges(),
		Mode:           mode,
		Workers:        opts.Workers,
		Rounds:         stats.Rounds,
		Messages:       stats.Messages,
		Bits:           stats.Bits,
		Bandwidth:      stats.Bandwidth,
		WallMS:         float64(wall.Microseconds()) / 1000,
		AllocsPerRound: allocsPerRound,
		PeakHeapMB:     float64(m1.HeapAlloc) / (1 << 20),
		Checksum:       h.Sum64(),
	}, nil
}

// ScalingTable renders a ScalingReport as the S1 experiment table.
func ScalingTable(rep *ScalingReport) *Table {
	tab := &Table{
		ID:     "S1",
		Title:  "engine scaling: wall time vs n, sequential vs worker pool",
		Claim:  "the CSR+arena engine handles n = 10^6 across graph families with ~0 allocs/round, and parallel execution is bit-identical to sequential",
		Header: []string{"family", "n", "edges", "mode", "rounds", "messages", "bits", "wall ms", "allocs/round", "peak heap MB", "match"},
	}
	for _, r := range rep.Runs {
		match := "-"
		if r.MatchesSequential != nil {
			match = fmt.Sprintf("%v", *r.MatchesSequential)
		}
		tab.AddRow(r.Family, r.N, r.Edges, r.Mode, r.Rounds, r.Messages, r.Bits,
			fmt.Sprintf("%.1f", r.WallMS), fmt.Sprintf("%.1f", r.AllocsPerRound),
			fmt.Sprintf("%.1f", r.PeakHeapMB), match)
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("workload: every node broadcasts 2 bytes/round for %d rounds (cost Θ(rounds·m))", scalingHeartbeatRounds),
		"each cell is the second of two runs over a shared scratch pool: allocs/round and peak heap describe warmed steady state",
		fmt.Sprintf("GOMAXPROCS=%d; 'match' certifies parallel stats+state == sequential ('-' on the seq baseline rows)", rep.GoMaxProcs))
	return tab
}

// S1Scaling is the Experiment wrapper over ScalingSweep.
func S1Scaling(quick bool) (*Table, error) {
	rep, err := ScalingSweep(quick)
	if err != nil {
		return nil, err
	}
	return ScalingTable(rep), nil
}
