package experiments

import "testing"

func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(true)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			out := tab.Render()
			if out == "" {
				t.Fatal("empty render")
			}
			// Every boolean verdict column must be true.
			for _, row := range tab.Rows {
				for i, cell := range row {
					if cell == "false" && verdictColumn(tab.Header[i]) {
						t.Fatalf("row %v: verdict column %q is false", row, tab.Header[i])
					}
				}
			}
			if tab.CSV() == "" {
				t.Fatal("empty CSV")
			}
		})
	}
}

func verdictColumn(h string) bool {
	switch h {
	case "verdict ok", "selection ok", "match", "within budget", "valid":
		return true
	}
	return false
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("T1"); !ok {
		t.Fatal("T1 should exist")
	}
	if _, ok := Lookup("Z9"); ok {
		t.Fatal("Z9 should not exist")
	}
}
