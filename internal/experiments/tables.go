package experiments

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
)

func sizesT1(quick bool) []int {
	if quick {
		return []int{64, 128, 256}
	}
	return []int{64, 128, 256, 512, 1024, 2048, 4096}
}

// T1DecisionRoundsVsN validates Theorem 6.1 (decision): round counts are
// independent of n for fixed d, while the collect-at-root baseline grows
// with the network.
func T1DecisionRoundsVsN(quick bool) (*Table, error) {
	t := &Table{
		ID:     "T1",
		Title:  "Decision rounds vs n (d = 3 fixed)",
		Claim:  "Theorem 6.1: O(2^2d) rounds independent of n; baseline grows with n",
		Header: []string{"n", "diam", "rounds(acyclic)", "rounds(2-colorable)", "baseline rounds", "verdict ok"},
	}
	const d = 3
	for _, n := range sizesT1(quick) {
		g, _ := gen.BoundedTreedepth(n, d, 0.1, int64(n))
		acy, err := protocols.Decide(g, d, predicates.Acyclicity{}, congest.Options{IDSeed: 1})
		if err != nil {
			return nil, fmt.Errorf("T1 n=%d: %w", n, err)
		}
		col, err := protocols.Decide(g, d, predicates.KColorability{K: 2}, congest.Options{IDSeed: 1})
		if err != nil {
			return nil, fmt.Errorf("T1 n=%d: %w", n, err)
		}
		base, err := protocols.BaselineDecide(g, protocols.AcyclicSolver, congest.Options{IDSeed: 1})
		if err != nil {
			return nil, fmt.Errorf("T1 n=%d baseline: %w", n, err)
		}
		ok := !acy.TdExceeded && !col.TdExceeded && acy.Accepted == base.Accepted
		t.AddRow(n, g.Diameter(), acy.Stats.Rounds, col.Stats.Rounds, base.Stats.Rounds, ok)
	}
	t.Notes = append(t.Notes,
		"round counts shrink slightly with n because the CONGEST bandwidth B = Θ(log n) grows",
		"the baseline ships the whole edge list to one node: Θ(diam + m log n / B) rounds")
	return t, nil
}

// T2RoundsVsDepth validates the O(2^2d) dependence on the treedepth
// parameter (Lemma 5.1 + Theorem 6.1) at fixed n.
func T2RoundsVsDepth(quick bool) (*Table, error) {
	t := &Table{
		ID:     "T2",
		Title:  "Decision rounds vs treedepth parameter d (n = 256 fixed)",
		Claim:  "Lemma 5.1/Theorem 6.1: rounds scale as O(2^2d), not with n",
		Header: []string{"d", "2^2d", "rounds(acyclic)", "rounds / 2^2d"},
	}
	n := 256
	if quick {
		n = 128
	}
	for d := 2; d <= 6; d++ {
		g, _ := gen.BoundedTreedepth(n, d, 0.1, int64(100+d))
		res, err := protocols.Decide(g, d, predicates.Acyclicity{}, congest.Options{IDSeed: 2})
		if err != nil {
			return nil, fmt.Errorf("T2 d=%d: %w", d, err)
		}
		if res.TdExceeded {
			return nil, fmt.Errorf("T2 d=%d: unexpected treedepth report", d)
		}
		sq := 1 << uint(2*d)
		t.AddRow(d, sq, res.Stats.Rounds, fmt.Sprintf("%.2f", float64(res.Stats.Rounds)/float64(sq)))
	}
	t.Notes = append(t.Notes, "the dominant term is Algorithm 2: 2^d steps of 2^d-hop floodings")
	return t, nil
}

// T3Optimization validates Theorem 6.1 (optimization): exact optima and
// correct selected sets for the paper's listed problems. Oracles are direct
// combinatorial solvers (subset brute force / Kruskal) rather than the MSO
// evaluator, whose set quantifiers are 2^n and infeasible at these sizes.
func T3Optimization(quick bool) (*Table, error) {
	t := &Table{
		ID:     "T3",
		Title:  "Distributed optimization vs sequential Algorithm 1 vs brute force",
		Claim:  "Theorem 6.1: maxφ/minφ solved exactly with explicit solution selection",
		Header: []string{"problem", "n", "dist", "seq", "oracle", "rounds", "selection ok"},
	}
	n := 40
	oracleN := 12
	if quick {
		n = 24
	}
	problems := []struct {
		name     string
		pred     regular.Predicate
		kind     regular.SetKind
		maximize bool
		oracle   func(g *graph.Graph) (bool, int64)
		check    func(g *graph.Graph, set *bitset.Set) bool
	}{
		{"max-independent-set", predicates.IndependentSet{}, regular.SetVertex, true, oracleIS, checkIS},
		{"min-vertex-cover", predicates.VertexCover{}, regular.SetVertex, false, oracleVC, checkVC},
		{"min-dominating-set", predicates.DominatingSet{}, regular.SetVertex, false, oracleDS, checkDS},
		{"max-matching", predicates.Matching{}, regular.SetEdge, true, oracleMatching, checkMatching},
		{"mst", predicates.SpanningTree{}, regular.SetEdge, false, oracleMST, checkSpanningTree},
	}
	for _, prob := range problems {
		for _, size := range []int{oracleN, n} {
			g, _ := gen.BoundedTreedepth(size, 2, 0.4, int64(size)*7)
			gen.AssignRandomWeights(g, 10, int64(size)*13)
			dist, err := protocols.Optimize(g, 2, prob.pred, prob.maximize, congest.Options{IDSeed: 3})
			if err != nil {
				return nil, fmt.Errorf("T3 %s n=%d: %w", prob.name, size, err)
			}
			run, err := seq.New(g, treedepth.DFSForest(g), prob.pred)
			if err != nil {
				return nil, err
			}
			seqRes, err := run.Optimize(prob.maximize)
			if err != nil {
				return nil, fmt.Errorf("T3 %s n=%d seq: %w", prob.name, size, err)
			}
			oracle := "-"
			if size == oracleN {
				if found, w := prob.oracle(g); found {
					oracle = fmt.Sprintf("%d", w)
				} else {
					oracle = "infeasible"
				}
			}
			set := dist.Selected
			if prob.kind == regular.SetEdge {
				set = dist.SelectedEdges
			}
			selOK := set != nil && prob.check(g, set) && setWeight(g, set, prob.kind) == dist.Weight
			t.AddRow(prob.name, size, dist.Weight, seqRes.Weight, oracle, dist.Stats.Rounds,
				selOK && dist.Weight == seqRes.Weight)
		}
	}
	t.Notes = append(t.Notes, "'selection ok' re-validates the distributed per-node selection structurally")
	return t, nil
}

func setWeight(g *graph.Graph, set *bitset.Set, kind regular.SetKind) int64 {
	var w int64
	set.ForEach(func(i int) {
		if kind == regular.SetVertex {
			w += g.VertexWeight(i)
		} else {
			w += g.EdgeWeight(i)
		}
	})
	return w
}

// --- structural checkers ---

func checkIS(g *graph.Graph, set *bitset.Set) bool {
	for _, e := range g.Edges() {
		if set.Contains(e.U) && set.Contains(e.V) {
			return false
		}
	}
	return true
}

func checkVC(g *graph.Graph, set *bitset.Set) bool {
	for _, e := range g.Edges() {
		if !set.Contains(e.U) && !set.Contains(e.V) {
			return false
		}
	}
	return true
}

func checkDS(g *graph.Graph, set *bitset.Set) bool {
	for v := 0; v < g.NumVertices(); v++ {
		if set.Contains(v) {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if set.Contains(w) {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

func checkMatching(g *graph.Graph, set *bitset.Set) bool {
	used := make([]bool, g.NumVertices())
	ok := true
	set.ForEach(func(id int) {
		e := g.Edge(id)
		if used[e.U] || used[e.V] {
			ok = false
		}
		used[e.U], used[e.V] = true, true
	})
	return ok
}

func checkSpanningTree(g *graph.Graph, set *bitset.Set) bool {
	n := g.NumVertices()
	if set.Count() != n-1 {
		return false
	}
	sub := graph.New(n)
	ok := true
	set.ForEach(func(id int) {
		e := g.Edge(id)
		if _, err := sub.AddEdge(e.U, e.V); err != nil {
			ok = false
		}
	})
	return ok && sub.IsConnected()
}

// --- brute-force / classic oracles (small n) ---

func bruteVertexSets(g *graph.Graph, feasible func(*bitset.Set) bool, maximize bool) (bool, int64) {
	n := g.NumVertices()
	found := false
	var best int64
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		set := bitset.New(n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				set.Add(i)
			}
		}
		if !feasible(set) {
			continue
		}
		w := setWeight(g, set, regular.SetVertex)
		if !found || (maximize && w > best) || (!maximize && w < best) {
			found, best = true, w
		}
	}
	return found, best
}

func bruteEdgeSets(g *graph.Graph, feasible func(*bitset.Set) bool, maximize bool) (bool, int64) {
	m := g.NumEdges()
	found := false
	var best int64
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		set := bitset.New(m)
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				set.Add(i)
			}
		}
		if !feasible(set) {
			continue
		}
		w := setWeight(g, set, regular.SetEdge)
		if !found || (maximize && w > best) || (!maximize && w < best) {
			found, best = true, w
		}
	}
	return found, best
}

func oracleIS(g *graph.Graph) (bool, int64) {
	return bruteVertexSets(g, func(s *bitset.Set) bool { return checkIS(g, s) }, true)
}

func oracleVC(g *graph.Graph) (bool, int64) {
	return bruteVertexSets(g, func(s *bitset.Set) bool { return checkVC(g, s) }, false)
}

func oracleDS(g *graph.Graph) (bool, int64) {
	return bruteVertexSets(g, func(s *bitset.Set) bool { return checkDS(g, s) }, false)
}

func oracleMatching(g *graph.Graph) (bool, int64) {
	return bruteEdgeSets(g, func(s *bitset.Set) bool { return checkMatching(g, s) }, true)
}

// oracleMST is Kruskal's algorithm.
func oracleMST(g *graph.Graph) (bool, int64) {
	n := g.NumVertices()
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool { return g.EdgeWeight(edges[i].ID) < g.EdgeWeight(edges[j].ID) })
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var total int64
	picked := 0
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		total += g.EdgeWeight(e.ID)
		picked++
	}
	return picked == n-1, total
}
