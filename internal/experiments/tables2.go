package experiments

import (
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/expansion"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/mso"
	"repro/internal/mso/msolib"
	"repro/internal/msoauto"
	"repro/internal/protocols"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
)

// T4Counting validates the Section 6 counting extension: exact triangle and
// perfect-matching counts against brute force.
func T4Counting(quick bool) (*Table, error) {
	t := &Table{
		ID:     "T4",
		Title:  "Distributed counting vs brute force",
		Claim:  "Section 6: countφ solvable in the same O(1) rounds as optimization",
		Header: []string{"quantity", "n", "distributed", "brute force", "rounds", "match"},
	}
	sizes := []int{12, 20, 28}
	if quick {
		sizes = []int{12, 20}
	}
	for _, n := range sizes {
		g, _ := gen.BoundedTreedepth(n, 3, 0.5, int64(n)*3)
		res, err := protocols.Count(g, 3, predicates.Triangles{}, congest.Options{IDSeed: 4})
		if err != nil {
			return nil, fmt.Errorf("T4 triangles n=%d: %w", n, err)
		}
		var brute int64
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					if g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(a, c) {
						brute++
					}
				}
			}
		}
		t.AddRow("triangles", n, res.Count, brute, res.Stats.Rounds, res.Count == brute)
	}
	// Perfect matchings on even cycles: exactly 2.
	for _, n := range []int{6, 10} {
		g := gen.Cycle(n)
		res, err := protocols.Count(g, 4, predicates.Matching{Perfect: true}, congest.Options{IDSeed: 4})
		if err != nil {
			return nil, fmt.Errorf("T4 pm n=%d: %w", n, err)
		}
		t.AddRow("perfect matchings", n, res.Count, 2, res.Stats.Rounds, res.Count == 2)
	}
	return t, nil
}

// T5OptMarked validates the optmarked verification of Section 6: an optimal
// marked set verifies, suboptimal and infeasible ones do not.
func T5OptMarked(quick bool) (*Table, error) {
	t := &Table{
		ID:     "T5",
		Title:  "optmarked verification (is the marked set an optimal solution?)",
		Claim:  "Section 6: optmarkedφ decided in g(d, φ) rounds",
		Header: []string{"problem", "marked set", "accepted", "expected", "match"},
	}
	n := 20
	if quick {
		n = 12
	}
	// Max independent set: mark the distributed optimum, then perturb.
	g, _ := gen.BoundedTreedepth(n, 2, 0.4, 99)
	gen.AssignRandomWeights(g, 5, 98)
	opt, err := protocols.Optimize(g, 2, predicates.IndependentSet{}, true, congest.Options{IDSeed: 5})
	if err != nil {
		return nil, err
	}
	good := g.Clone()
	opt.Selected.ForEach(func(v int) { good.SetVertexLabel(protocols.MarkLabel, v) })
	res, err := protocols.CheckMarked(good, 2, predicates.IndependentSet{}, true, congest.Options{IDSeed: 5})
	if err != nil {
		return nil, err
	}
	t.AddRow("max-independent-set", "the optimum", res.Accepted, true, res.Accepted == true)

	empty := g.Clone() // the empty set is independent but (weights >= 1) not maximum
	res, err = protocols.CheckMarked(empty, 2, predicates.IndependentSet{}, true, congest.Options{IDSeed: 5})
	if err != nil {
		return nil, err
	}
	t.AddRow("max-independent-set", "empty set", res.Accepted, false, res.Accepted == false)

	invalid := g.Clone() // mark both endpoints of some edge
	e := invalid.Edge(0)
	invalid.SetVertexLabel(protocols.MarkLabel, e.U)
	invalid.SetVertexLabel(protocols.MarkLabel, e.V)
	res, err = protocols.CheckMarked(invalid, 2, predicates.IndependentSet{}, true, congest.Options{IDSeed: 5})
	if err != nil {
		return nil, err
	}
	t.AddRow("max-independent-set", "adjacent pair", res.Accepted, false, res.Accepted == false)

	// MST: mark the distributed MST, then swap in a heavier edge.
	mst, err := protocols.Optimize(g, 2, predicates.SpanningTree{}, false, congest.Options{IDSeed: 5})
	if err != nil {
		return nil, err
	}
	goodT := g.Clone()
	mst.SelectedEdges.ForEach(func(id int) { goodT.SetEdgeLabel(protocols.MarkLabel, id) })
	res, err = protocols.CheckMarked(goodT, 2, predicates.SpanningTree{}, false, congest.Options{IDSeed: 5})
	if err != nil {
		return nil, err
	}
	t.AddRow("mst", "the MST", res.Accepted, true, res.Accepted == true)

	noneT := g.Clone()
	res, err = protocols.CheckMarked(noneT, 2, predicates.SpanningTree{}, false, congest.Options{IDSeed: 5})
	if err != nil {
		return nil, err
	}
	t.AddRow("mst", "empty set", res.Accepted, false, res.Accepted == false)
	return t, nil
}

// T6HFreeExpansion validates Corollary 7.3: H-freeness on bounded-expansion
// networks in O(log n) rounds.
func T6HFreeExpansion(quick bool) (*Table, error) {
	t := &Table{
		ID:     "T6",
		Title:  "H-freeness on bounded expansion (maximal outerplanar networks)",
		Claim:  "Corollary 7.3: O(log n) rounds; answers exact",
		Header: []string{"pattern", "n", "h-free", "oracle", "total rounds", "peel rounds", "colors", "max d", "rounds/log2(n)"},
	}
	sizes := []int{64, 128, 256}
	if !quick {
		sizes = append(sizes, 512, 1024)
	}
	for _, n := range sizes {
		g := gen.MaximalOuterplanar(n, int64(n))
		for _, pat := range []struct {
			name string
			h    *graph.Graph
		}{
			{"K3", gen.Complete(3)},
			{"C4", gen.Cycle(4)},
		} {
			res, err := expansion.HFreeDistributed(g, pat.h, 8, congest.Options{IDSeed: 6})
			if err != nil {
				return nil, fmt.Errorf("T6 %s n=%d: %w", pat.name, n, err)
			}
			oracle := "-"
			// The FO oracle costs n^|V(H)| evaluator steps; keep it to the
			// smallest size per pattern.
			if n <= 64 && pat.h.NumVertices() <= 3 {
				want, err := mso.NewEvaluator(g).Eval(msolib.HSubgraphFree(pat.h), nil)
				if err != nil {
					return nil, err
				}
				oracle = fmt.Sprintf("%v", want)
				if want != res.HFree {
					oracle += " MISMATCH"
				}
			}
			ratio := float64(res.TotalRounds) / math.Log2(float64(n))
			t.AddRow(pat.name, n, res.HFree, oracle, res.TotalRounds, res.PeelRounds,
				res.NumColors, res.MaxD, fmt.Sprintf("%.1f", ratio))
		}
	}
	t.Notes = append(t.Notes,
		"maximal outerplanar graphs always contain triangles; C4-freeness varies with the triangulation",
		"total rounds = distributed peeling (the Θ(log n) term) + per-part-subset Theorem 6.1 runs",
		"the subset phase would be an n-independent constant under the exact Nešetřil–Ossona de Mendez",
		"decomposition; our greedy substitute degrades slowly with n ('max d' shows the escalation),",
		"which inflates rounds but — by construction — never correctness (see DESIGN.md)")
	return t, nil
}

// T7GenericVsCompiled validates that the generic MSO engine, the
// hand-compiled predicates, and the naive oracle agree, and compares their
// homomorphism-class table sizes (|C| proxies).
func T7GenericVsCompiled(quick bool) (*Table, error) {
	t := &Table{
		ID:     "T7",
		Title:  "Generic MSO engine vs compiled predicates vs naive oracle",
		Claim:  "Theorem 4.2 realized two ways; identical answers, different |C|",
		Header: []string{"formula", "graphs", "agree", "max class bytes (generic)", "max class bytes (compiled)"},
	}
	trials := 10
	if quick {
		trials = 5
	}
	cases := []struct {
		name     string
		formula  mso.Formula
		compiled regular.Predicate
	}{
		{"acyclic", msolib.Acyclic(), predicates.Acyclicity{}},
		{"2-colorable", msolib.KColorable(2), predicates.KColorability{K: 2}},
		{"triangle-free", msolib.TriangleFree(), tfree()},
	}
	for _, tc := range cases {
		agree := 0
		maxGeneric, maxCompiled := 0, 0 // largest class wire encodings
		engine, err := msoauto.New(tc.formula, msoauto.Options{})
		if err != nil {
			return nil, err
		}
		for trial := 0; trial < trials; trial++ {
			// Keep representatives within the generic engine's evaluation
			// budget for MSO formulas with set quantifiers.
			g, _ := gen.BoundedTreedepth(5+trial%6, 2, 0.6, int64(800+trial))
			forest := treedepth.DFSForest(g)
			genRun, err := seq.New(g, forest, engine)
			if err != nil {
				return nil, err
			}
			genAns, err := genRun.Decide()
			if err != nil {
				return nil, err
			}
			if genRun.MaxClassKeyBytes() > maxGeneric {
				maxGeneric = genRun.MaxClassKeyBytes()
			}
			compRun, err := seq.New(g, forest, tc.compiled)
			if err != nil {
				return nil, err
			}
			compAns, err := compRun.Decide()
			if err != nil {
				return nil, err
			}
			if compRun.MaxClassKeyBytes() > maxCompiled {
				maxCompiled = compRun.MaxClassKeyBytes()
			}
			oracleAns, err := mso.NewEvaluator(g).Eval(tc.formula, nil)
			if err != nil {
				return nil, err
			}
			if genAns == compAns && compAns == oracleAns {
				agree++
			}
		}
		t.AddRow(tc.name, trials, fmt.Sprintf("%d/%d", agree, trials), maxGeneric, maxCompiled)
	}
	t.Notes = append(t.Notes,
		"class bytes = the largest homomorphism-class wire encoding (log|C| up to constants):",
		"the generic engine's reduced pattern trees are much wider than hand-compiled classes,",
		"the price of full MSO generality")
	return t, nil
}

// tfree builds the triangle-freeness predicate as the negation of
// K3-subgraph containment.
func tfree() regular.Predicate {
	p, err := predicates.NewHSubgraph(gen.Complete(3))
	if err != nil {
		panic(err)
	}
	return predicates.Negate(p)
}
