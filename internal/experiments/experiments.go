// Package experiments implements the evaluation suite of EXPERIMENTS.md:
// every table (T1–T7) and figure series (F1–F3) validating the paper's
// quantitative and correctness claims. The same functions back the
// cmd/bench harness and the root bench_test.go benchmarks; Quick mode
// shrinks the sweeps for use inside the test suite.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: an identifier, header, and rows of
// preformatted cells, plus free-text notes stating the claim validated.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting every cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render prints the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "Note: %s\n", note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID  string
	Run func(quick bool) (*Table, error)
}

// All returns the full suite in EXPERIMENTS.md order.
func All() []Experiment {
	return []Experiment{
		{"T1", T1DecisionRoundsVsN},
		{"T2", T2RoundsVsDepth},
		{"T3", T3Optimization},
		{"T4", T4Counting},
		{"T5", T5OptMarked},
		{"T6", T6HFreeExpansion},
		{"T7", T7GenericVsCompiled},
		{"T8", T8PhaseBreakdown},
		{"F1", F1MessageWidth},
		{"F2", F2BaselineCrossover},
		{"F3", F3ElimTree},
		{"S1", S1Scaling},
		{"S2", S2DP},
		{"S3", S3Faults},
		{"S4", S4Serve},
		{"S6", S6TD},
		{"S7", S7Multiproc},
	}
}

// Lookup finds one experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
