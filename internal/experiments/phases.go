package experiments

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
)

// T8PhaseBreakdown measures where rounds and bits are spent inside the
// protocol pipeline, per message kind, using the round-level tracer: the
// Algorithm 2 elimination flood (Lemma 5.1, O(2^2d) rounds), the canonical
// bag propagation (Lemma 5.3, O(2^d) rounds), and the Theorem 6.1 DP
// phases.
func T8PhaseBreakdown(quick bool) (*Table, error) {
	t := &Table{
		ID:     "T8",
		Title:  "Per-phase round/bit breakdown (tracer)",
		Claim:  "Lemma 5.1/5.3: elimination dominates rounds (O(2^2d)); decomposition and DP are O(2^d)-round tails",
		Header: []string{"problem", "phase", "rounds", "active", "messages", "bits", "bits%"},
	}
	n := 128
	if quick {
		n = 48
	}
	const d = 3
	runs := []struct {
		name string
		run  func(*congest.MetricsTracer) (*protocols.RunResult, error)
	}{
		{"acyclic (decide)", func(m *congest.MetricsTracer) (*protocols.RunResult, error) {
			g, _ := gen.BoundedTreedepth(n, d, 0.1, 11)
			return protocols.Decide(g, d, predicates.Acyclicity{}, congest.Options{IDSeed: 1, Tracer: m})
		}},
		{"max-IS (optimize)", func(m *congest.MetricsTracer) (*protocols.RunResult, error) {
			g, _ := gen.BoundedTreedepth(n/2, d, 0.1, 12)
			gen.AssignRandomWeights(g, 10, 13)
			return protocols.Optimize(g, d, predicates.IndependentSet{}, true, congest.Options{IDSeed: 1, Tracer: m})
		}},
	}
	for _, r := range runs {
		var m congest.MetricsTracer
		res, err := r.run(&m)
		if err != nil {
			return nil, fmt.Errorf("T8 %s: %w", r.name, err)
		}
		if res.TdExceeded {
			return nil, fmt.Errorf("T8 %s: unexpected treedepth report", r.name)
		}
		stats := m.Stats()
		for _, k := range m.PerKind() {
			share := 0.0
			if stats.Bits > 0 {
				share = 100 * float64(k.Bits) / float64(stats.Bits)
			}
			t.AddRow(r.name, k.Kind,
				fmt.Sprintf("%d-%d", k.FirstRound, k.LastRound),
				k.Rounds, k.Messages, k.Bits, fmt.Sprintf("%.1f", share))
		}
		t.AddRow(r.name, "TOTAL", stats.Rounds, "", stats.Messages, stats.Bits,
			fmt.Sprintf("util=%.2f%%", 100*m.Utilization()))
	}
	t.Notes = append(t.Notes,
		"rounds column is the first-last round span; active counts rounds with traffic of that kind",
		"capture the same breakdown for any instance with: dmc -trace - ... | trace")
	return t, nil
}
