package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/treedepth"
)

// The exact-treedepth scenario (S6) drives the branch-and-bound solver over a
// spread of graph families, including instances far beyond the naive
// recursion's 20-vertex ceiling. Every answer is certified twice: the witness
// forest is revalidated against the graph, and instances small enough for the
// naive Lemma-2.2 oracle are cross-checked against it. cmd/bench serializes
// the result as BENCH_td.json.

// TDRun is one instance measurement.
type TDRun struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	Edges  int    `json:"edges"`

	TD        int `json:"td"`
	Heuristic int `json:"heuristic"` // initial upper bound fed to the search
	Lower     int `json:"lower"`     // initial combinatorial lower bound

	Nodes        int64 `json:"nodes"`
	CacheEntries int   `json:"cache_entries"`
	CacheHits    int64 `json:"cache_hits"`
	MaxNodes     int64 `json:"max_nodes"` // deterministic budget for the run

	// NaiveTD is the oracle's answer for n <= 20 instances, -1 when the
	// instance is beyond the oracle's ceiling.
	NaiveTD    int  `json:"naive_td"`
	NaiveAgree bool `json:"naive_agree"` // vacuously true when NaiveTD is -1
	WitnessOK  bool `json:"witness_ok"`

	WallMS float64 `json:"wall_ms"`
	// NaiveMS is the oracle's wall time on the same instance (n <= 20 only).
	NaiveMS float64 `json:"naive_ms,omitempty"`
}

// TDReport is the BENCH_td.json document.
type TDReport struct {
	Harness    string  `json:"harness"`
	Quick      bool    `json:"quick"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Runs       []TDRun `json:"runs"`
	// BadWitnesses counts runs whose returned forest failed validation, and
	// NaiveMismatches counts disagreements with the oracle; anything but 0 in
	// either is a solver bug.
	BadWitnesses    int `json:"bad_witnesses"`
	NaiveMismatches int `json:"naive_mismatches"`
	// LargestSolved is the largest vertex count solved to verified optimality.
	LargestSolved int `json:"largest_solved"`
}

// tdInstance is one named instance of the sweep. The node budget is a
// deterministic work cap — the solver counts branch nodes, not wall time, so
// a budget failure reproduces bit-identically.
type tdInstance struct {
	name     string
	g        *graph.Graph
	maxNodes int64
}

func tdInstances(quick bool) []tdInstance {
	const budget = 5_000_000
	base := []tdInstance{
		{"path-100", gen.Path(100), budget},
		{"complete-64", gen.Complete(64), budget},
		{"star-100", gen.Star(100), budget},
		{"tree-80", gen.RandomTree(80, 61), budget},
		{"caterpillar-12x2", gen.Caterpillar(12, 2), budget},
		{"bounded-td-64", mustGraph(gen.BoundedTreedepth(64, 4, 0.25, 62)), budget},
		{"grid-3x5", gen.Grid(3, 5), budget},
		{"gnp-18", gen.RandomGNP(18, 0.3, 63), budget},
	}
	if quick {
		return base
	}
	return append(base,
		tdInstance{"cycle-64", gen.Cycle(64), budget},
		tdInstance{"grid-chords-3x4", gen.GridWithChords(3, 4, 3, 5), budget},
		tdInstance{"caterpillar-blowup", gen.Blowup(gen.Caterpillar(6, 1), 2), budget},
		tdInstance{"outerplanar-30", gen.MaximalOuterplanar(30, 64), budget},
		tdInstance{"gnp-14-dense", gen.RandomGNP(14, 0.5, 65), budget},
		tdInstance{"bounded-td-96", mustGraph(gen.BoundedTreedepth(96, 5, 0.2, 66)), budget},
	)
}

func mustGraph(g *graph.Graph, _ []int) *graph.Graph { return g }

// TDSweep runs the S6 scenario: solve every instance to optimality, validate
// the witness, and cross-check the naive oracle where it can still answer.
func TDSweep(quick bool) (*TDReport, error) {
	rep := &TDReport{
		Harness:    "cmd/bench S6 (exact treedepth: branch and bound vs the naive recursion)",
		Quick:      quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, inst := range tdInstances(quick) {
		run := TDRun{
			Family:   inst.name,
			N:        inst.g.NumVertices(),
			Edges:    inst.g.NumEdges(),
			MaxNodes: inst.maxNodes,
			NaiveTD:  -1,
		}
		start := time.Now()
		td, forest, stats, err := treedepth.SolveExact(inst.g, treedepth.SolveOptions{MaxNodes: inst.maxNodes})
		run.WallMS = float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			return nil, fmt.Errorf("treedepth %s: %w", inst.name, err)
		}
		run.TD = td
		run.Heuristic = stats.Heuristic
		run.Lower = stats.LowerBound
		run.Nodes = stats.Nodes
		run.CacheEntries = stats.CacheEntries
		run.CacheHits = stats.CacheHits

		run.WitnessOK = treedepth.ValidateForest(inst.g, forest, td) == nil
		if !run.WitnessOK {
			rep.BadWitnesses++
		}
		run.NaiveAgree = true
		nstart := time.Now()
		if naive, _, nerr := treedepth.ExactNaive(inst.g); nerr == nil {
			run.NaiveMS = float64(time.Since(nstart).Microseconds()) / 1000
			run.NaiveTD = naive
			run.NaiveAgree = naive == td
			if !run.NaiveAgree {
				rep.NaiveMismatches++
			}
		}
		if run.WitnessOK && run.NaiveAgree && run.N > rep.LargestSolved {
			rep.LargestSolved = run.N
		}
		rep.Runs = append(rep.Runs, run)
	}
	if rep.BadWitnesses > 0 {
		return rep, fmt.Errorf("treedepth sweep: %d runs returned an invalid witness forest", rep.BadWitnesses)
	}
	if rep.NaiveMismatches > 0 {
		return rep, fmt.Errorf("treedepth sweep: %d runs disagreed with the naive oracle", rep.NaiveMismatches)
	}
	return rep, nil
}

// TDTable renders a TDReport as the S6 experiment table.
func TDTable(rep *TDReport) *Table {
	tab := &Table{
		ID:     "S6",
		Title:  "Exact treedepth: branch and bound with a SetTrie bound cache",
		Claim:  "the solver certifies optimal treedepth far beyond the naive recursion's 20-vertex ceiling: every witness validates, every oracle-checkable instance agrees",
		Header: []string{"instance", "n", "m", "td", "lower", "heur", "nodes", "cache", "hits", "naive", "witness", "ms"},
	}
	for _, r := range rep.Runs {
		naive := "-"
		if r.NaiveTD >= 0 {
			naive = fmt.Sprintf("%d", r.NaiveTD)
			if !r.NaiveAgree {
				naive += "!"
			}
		}
		witness := "ok"
		if !r.WitnessOK {
			witness = "BAD"
		}
		tab.AddRow(r.Family, r.N, r.Edges, r.TD, r.Lower, r.Heuristic,
			r.Nodes, r.CacheEntries, r.CacheHits, naive, witness, fmt.Sprintf("%.1f", r.WallMS))
	}
	tab.Notes = append(tab.Notes,
		"lower/heur are the combinatorial lower bound and separator-heuristic upper bound before search; nodes is branch-and-bound nodes expanded under a deterministic 5M-node budget",
		"naive is the Lemma-2.2 oracle's answer (n <= 20 only); '!' would mark a disagreement",
		fmt.Sprintf("bad witnesses: %d, naive mismatches: %d, largest instance solved to verified optimality: n=%d",
			rep.BadWitnesses, rep.NaiveMismatches, rep.LargestSolved))
	return tab
}

// S6TD is the Experiment wrapper over TDSweep.
func S6TD(quick bool) (*Table, error) {
	rep, err := TDSweep(quick)
	if err != nil {
		return nil, err
	}
	return TDTable(rep), nil
}
