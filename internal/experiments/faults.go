package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/congest"
	"repro/internal/faults"
	"repro/internal/graph/gen"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
)

// The fault-injection scenario (S3) measures the reliable-delivery adapter
// under seed-driven network chaos: for each graph family and drop rate (with
// proportional duplication and reordering mixed in), the full DP protocol
// runs wrapped in the ARQ adapter and its verdict is compared against the
// fault-free run. The claim under test: every run at drop rates up to 0.2
// completes and agrees — faults cost rounds and retransmissions, never
// answers. cmd/bench serializes the result as BENCH_faults.json.

// FaultRun is one (family, schedule, seed) measurement.
type FaultRun struct {
	Family    string `json:"family"`
	N         int    `json:"n"`
	Edges     int    `json:"edges"`
	Predicate string `json:"predicate"`

	Seed          int64   `json:"seed"`
	DropRate      float64 `json:"drop_rate"`
	DupRate       float64 `json:"dup_rate"`
	ReorderRate   float64 `json:"reorder_rate"`
	ReorderWindow int     `json:"reorder_window"`

	// Completed is false when the run ended with ErrUnrecoverable.
	Completed     bool   `json:"completed"`
	Unrecoverable string `json:"unrecoverable,omitempty"`
	// VerdictOK: the completed run reported the fault-free verdict.
	VerdictOK bool `json:"verdict_ok"`

	Rounds        int     `json:"rounds"`
	VirtualRounds int     `json:"virtual_rounds"`
	BaseRounds    int     `json:"base_rounds"` // fault-free raw protocol rounds
	RoundOverhead float64 `json:"round_overhead"`
	Messages      int64   `json:"messages"`

	Dropped     int64 `json:"dropped"`
	Duplicated  int64 `json:"duplicated"`
	Delayed     int64 `json:"delayed"`
	Lost        int64 `json:"lost"`
	CrashRounds int64 `json:"crash_rounds"`

	Chunks         int64   `json:"chunks"`
	Retransmits    int64   `json:"retransmits"`
	DupChunks      int64   `json:"dup_chunks"`
	AckFrames      int64   `json:"ack_frames"`
	RetransmitRate float64 `json:"retransmit_rate"` // retransmits / chunks

	WallMS float64 `json:"wall_ms"`
}

// FaultReport is the BENCH_faults.json document.
type FaultReport struct {
	Harness    string     `json:"harness"`
	Quick      bool       `json:"quick"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Runs       []FaultRun `json:"runs"`
	// WrongVerdicts counts completed runs that disagreed with the fault-free
	// verdict; anything but 0 is a correctness bug.
	WrongVerdicts int `json:"wrong_verdicts"`
	// Unrecovered counts runs the adapter gave up on; the sweep stays at or
	// below the drop rate the default retry budget must mask, so anything
	// but 0 fails the sweep.
	Unrecovered int `json:"unrecovered"`
	// MaxMaskedDrop is the highest drop rate at which every run completed
	// with the correct verdict.
	MaxMaskedDrop float64 `json:"max_masked_drop"`
}

// faultFamily is one graph family of the sweep.
type faultFamily struct {
	name      string
	n         int
	d         int
	extraProb float64
	seed      int64
}

func faultFamilies(quick bool) []faultFamily {
	if quick {
		return []faultFamily{
			{name: "td2", n: 12, d: 2, extraProb: 0.3, seed: 81},
			{name: "td3", n: 16, d: 3, extraProb: 0.3, seed: 82},
		}
	}
	return []faultFamily{
		{name: "td2", n: 20, d: 2, extraProb: 0.3, seed: 81},
		{name: "td3", n: 28, d: 3, extraProb: 0.3, seed: 82},
	}
}

func faultDropRates(quick bool) []float64 {
	if quick {
		return []float64{0, 0.1, 0.2}
	}
	return []float64{0, 0.05, 0.1, 0.2}
}

func faultSeeds(quick bool) []int64 {
	if quick {
		return []int64{1}
	}
	return []int64{1, 2, 3}
}

// FaultSweep runs the S3 scenario: family × drop rate × seed, each run
// cross-checked against the fault-free verdict.
func FaultSweep(quick bool) (*FaultReport, error) {
	rep := &FaultReport{
		Harness:    "cmd/bench S3 (fault injection: reliable delivery over a lossy CONGEST network)",
		Quick:      quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	pred := predicates.Connectivity{}
	for _, fam := range faultFamilies(quick) {
		g, _ := gen.BoundedTreedepth(fam.n, fam.d, fam.extraProb, fam.seed)
		base, err := protocols.Decide(g, fam.d, pred, congest.Options{})
		if err != nil {
			return nil, fmt.Errorf("faults %s: fault-free baseline: %w", fam.name, err)
		}
		for _, drop := range faultDropRates(quick) {
			for _, seed := range faultSeeds(quick) {
				// Duplication and reordering scale with the drop rate, so one
				// knob sweeps the whole chaos level; drop 0 is the adapter's
				// own overhead floor.
				fcfg := faults.Config{
					Seed:        seed,
					DropRate:    drop,
					DupRate:     drop / 2,
					ReorderRate: drop / 2,
				}
				if drop > 0 {
					fcfg.ReorderWindow = 4
				}
				run := FaultRun{
					Family:    fam.name,
					N:         fam.n,
					Edges:     g.NumEdges(),
					Predicate: "connectivity",
					Seed:      seed,
					DropRate:  fcfg.DropRate, DupRate: fcfg.DupRate,
					ReorderRate: fcfg.ReorderRate, ReorderWindow: fcfg.ReorderWindow,
					BaseRounds: base.Stats.Rounds,
				}
				opts := congest.Options{
					BandwidthFactor: protocols.ReliableBandwidthFactor(fam.n),
					Injector:        faults.New(fcfg),
				}
				start := time.Now()
				res, err := protocols.Run(g, protocols.Config{
					Pred: pred, Mode: protocols.ModeDecide, D: fam.d, Reliable: true,
				}, opts)
				run.WallMS = float64(time.Since(start).Microseconds()) / 1000
				switch {
				case err == nil:
					run.Completed = true
					run.VerdictOK = !res.TdExceeded && res.Accepted == base.Accepted
					if !run.VerdictOK {
						rep.WrongVerdicts++
					}
				case errors.Is(err, protocols.ErrUnrecoverable):
					run.Unrecoverable = err.Error()
					rep.Unrecovered++
				default:
					return nil, fmt.Errorf("faults %s drop=%g seed=%d: %w", fam.name, drop, seed, err)
				}
				if res != nil {
					run.Rounds = res.Stats.Rounds
					run.Messages = res.Stats.Messages
					run.VirtualRounds = res.Reliability.VirtualRounds
					if base.Stats.Rounds > 0 {
						run.RoundOverhead = float64(res.Stats.Rounds) / float64(base.Stats.Rounds)
					}
					run.Dropped = res.Stats.Faults.Dropped
					run.Duplicated = res.Stats.Faults.Duplicated
					run.Delayed = res.Stats.Faults.Delayed
					run.Lost = res.Stats.Faults.Lost
					run.CrashRounds = res.Stats.Faults.CrashRounds
					run.Chunks = res.Reliability.Chunks
					run.Retransmits = res.Reliability.Retransmits
					run.DupChunks = res.Reliability.DupChunks
					run.AckFrames = res.Reliability.AckFrames
					if res.Reliability.Chunks > 0 {
						run.RetransmitRate = float64(res.Reliability.Retransmits) / float64(res.Reliability.Chunks)
					}
				}
				if run.Completed && run.VerdictOK && run.DropRate > rep.MaxMaskedDrop {
					rep.MaxMaskedDrop = run.DropRate
				}
				rep.Runs = append(rep.Runs, run)
			}
		}
	}
	if rep.WrongVerdicts > 0 {
		return rep, fmt.Errorf("fault sweep: %d completed runs reported a wrong verdict", rep.WrongVerdicts)
	}
	if rep.Unrecovered > 0 {
		return rep, fmt.Errorf("fault sweep: %d runs unrecoverable at drop rates the default budget must mask", rep.Unrecovered)
	}
	return rep, nil
}

// FaultTable renders a FaultReport as the S3 experiment table.
func FaultTable(rep *FaultReport) *Table {
	tab := &Table{
		ID:     "S3",
		Title:  "Fault injection: reliable delivery over a lossy CONGEST network",
		Claim:  "the ARQ adapter masks drop rates up to 0.2 (plus duplication and reordering) — faults cost rounds and retransmissions, never verdicts",
		Header: []string{"family", "n", "drop", "seed", "ok", "rounds", "vrounds", "overhead", "chunks", "retx", "retx rate", "dropped"},
	}
	for _, r := range rep.Runs {
		ok := "FAIL"
		if r.Completed && r.VerdictOK {
			ok = "yes"
		} else if !r.Completed {
			ok = "unrec"
		}
		tab.AddRow(r.Family, r.N, fmt.Sprintf("%.2f", r.DropRate), r.Seed, ok,
			r.Rounds, r.VirtualRounds, fmt.Sprintf("%.1fx", r.RoundOverhead),
			r.Chunks, r.Retransmits, fmt.Sprintf("%.3f", r.RetransmitRate), r.Dropped)
	}
	tab.Notes = append(tab.Notes,
		"every run wraps the DP protocol in the stop-and-wait ARQ adapter; dup/reorder rates are drop/2 with window 4",
		"overhead is physical rounds / fault-free raw-protocol rounds (drop 0 rows are the adapter's synchronization floor)",
		fmt.Sprintf("wrong verdicts: %d, unrecoverable: %d, highest fully-masked drop rate: %.2f",
			rep.WrongVerdicts, rep.Unrecovered, rep.MaxMaskedDrop))
	return tab
}

// S3Faults is the Experiment wrapper over FaultSweep.
func S3Faults(quick bool) (*Table, error) {
	rep, err := FaultSweep(quick)
	if err != nil {
		return nil, err
	}
	return FaultTable(rep), nil
}
