// Package expansion implements the bounded-expansion machinery of Section 7:
// degeneracy orderings, low-treedepth decompositions (Theorem 7.2's
// substitute), and the distributed H-freeness driver of Corollary 7.3.
//
// Substitution note (see DESIGN.md): the paper relies on the
// Nešetřil–Ossona de Mendez O(log n)-round decomposition, whose proof it
// calls sophisticated while noting the algorithm "is merely based on bounded
// degeneracy and standard distributed tools". We implement exactly those
// tools: an O(log n)-round distributed peeling that computes a
// degeneracy-based layering, and a weak-reachability greedy coloring along
// the peeling order that produces the vertex partition. The H-freeness
// driver is self-correcting: it never trusts the partition — each part-union
// run uses Algorithm 2, which certifies its own elimination tree and
// escalates d when a union's treedepth exceeds p, so answers are always
// exact and only the round count depends on partition quality.
package expansion

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// ErrExpansion is wrapped by errors from this package.
var ErrExpansion = errors.New("expansion: error")

// Degeneracy returns the degeneracy of g and a degeneracy ordering (each
// vertex has at most `degeneracy` neighbors later in the order).
func Degeneracy(g *graph.Graph) (int, []int) {
	n := g.NumVertices()
	removed := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	order := make([]int, 0, n)
	max := 0
	for len(order) < n {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if !removed[v] && (deg[v] < bestDeg || (deg[v] == bestDeg && best >= 0 && v < best)) {
				best, bestDeg = v, deg[v]
			}
		}
		if bestDeg > max {
			max = bestDeg
		}
		removed[best] = true
		order = append(order, best)
		for _, w := range g.Neighbors(best) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	return max, order
}

// Peeling is a degeneracy-based layering: Layer[v] is the iteration at
// which v was peeled; vertices in the same or later layers around any vertex
// number at most 2*(1+eps)*degeneracy.
type Peeling struct {
	Layer     []int
	NumLayers int
}

// SequentialPeeling computes the layering centrally (the reference for the
// distributed protocol): layer i removes every vertex whose degree in the
// remaining graph is at most 2*(1+eps) times the remaining average degree.
// By Markov's inequality at least half the remaining vertices peel each
// layer, so there are O(log n) layers, and in a d-degenerate graph the
// threshold never exceeds 4*(1+eps)*d, so every vertex has O(d) neighbors in
// its own or later layers.
func SequentialPeeling(g *graph.Graph, eps float64) *Peeling {
	n := g.NumVertices()
	layer := make([]int, n)
	for v := range layer {
		layer[v] = -1
	}
	remaining := n
	l := 0
	for remaining > 0 {
		// Degrees within the remaining graph.
		deg := make([]int, n)
		edges := 0
		for v := 0; v < n; v++ {
			if layer[v] >= 0 {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if layer[w] < 0 {
					deg[v]++
				}
			}
			edges += deg[v]
		}
		avg := float64(edges) / float64(remaining) // = 2|E'|/|V'|
		threshold := 2 * (1 + eps) * avg
		if threshold < 1 {
			threshold = 1
		}
		peeled := 0
		for v := 0; v < n; v++ {
			if layer[v] < 0 && float64(deg[v]) <= threshold {
				layer[v] = l
				peeled++
			}
		}
		if peeled == 0 {
			// Unreachable by the averaging argument; guard regardless.
			for v := 0; v < n; v++ {
				if layer[v] < 0 {
					layer[v] = l
					peeled++
				}
			}
		}
		remaining -= peeled
		l++
	}
	return &Peeling{Layer: layer, NumLayers: l}
}

// WeakReachability computes, for each vertex v, the set WReach_r[v] of
// vertices u weakly r-reachable from v under the given order: there is a
// path from v to u of length at most r whose minimum-position vertex is u.
// For bounded-expansion classes, |WReach_r| is bounded by a constant
// depending only on the class and r.
func WeakReachability(g *graph.Graph, order []int, r int) [][]int {
	n := g.NumVertices()
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	out := make([][]int, n)
	for v := 0; v < n; v++ {
		// u is weakly reachable iff there is a v-u path of length <= r on
		// which u holds the minimum position; track, per reached vertex, the
		// best (maximum over paths) of the minimum position along the path.
		type state struct {
			vertex int
			minPos int
		}
		frontier := []state{{v, pos[v]}}
		bestMin := map[int]int{v: pos[v]}
		for dist := 1; dist <= r; dist++ {
			var next []state
			for _, s := range frontier {
				for _, w := range g.Neighbors(s.vertex) {
					m := s.minPos
					if pos[w] < m {
						m = pos[w]
					}
					if prev, ok := bestMin[w]; !ok || m > prev {
						bestMin[w] = m
						next = append(next, state{w, m})
					}
				}
			}
			frontier = next
		}
		var set []int
		for u, m := range bestMin {
			if u != v && m == pos[u] {
				set = append(set, u)
			}
		}
		sort.Ints(set)
		out[v] = set
	}
	return out
}

// LowTreedepthDecomposition computes a vertex partition (a coloring) meant
// to satisfy the Theorem 7.1 property for parameter p: greedy coloring along
// the reverse peeling/degeneracy order where weakly (2^p)-reachable vertices
// must receive distinct colors. The number of colors depends only on the
// graph class (via the weak coloring number), not on n. The decomposition is
// *not* trusted by downstream drivers — HFree re-certifies treedepth per
// union — so an imperfect coloring costs rounds, never correctness.
func LowTreedepthDecomposition(g *graph.Graph, p int) ([]int, int, error) {
	if p < 1 {
		return nil, 0, fmt.Errorf("%w: p must be >= 1", ErrExpansion)
	}
	n := g.NumVertices()
	// Weak reachability wants few *earlier* neighbors, so the coloring order
	// is the reverse of the removal order: each vertex's earlier neighbors
	// are then bounded by the degeneracy, and |WReach_r| stays bounded in
	// terms of the graph class alone.
	_, removal := Degeneracy(g)
	order := make([]int, n)
	for i, v := range removal {
		order[n-1-i] = v
	}
	// Weak-reachability radius 2^(p-2) (Zhu-style centered colorings); the
	// color count depends on the class and p only. Imperfect unions are
	// handled by the caller's treedepth escalation, trading rounds for
	// partition quality rather than correctness.
	r := 2
	if p >= 2 {
		r = 1 << uint(p-2)
	}
	if r < 2 {
		r = 2
	}
	wreach := WeakReachability(g, order, r)
	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	numColors := 0
	// Color in order: each vertex conflicts with the already-colored members
	// of its weak-reachability set and with vertices that weakly reach it.
	reverseReach := make([][]int, n)
	for v := 0; v < n; v++ {
		for _, u := range wreach[v] {
			reverseReach[u] = append(reverseReach[u], v)
		}
	}
	for _, v := range order {
		used := map[int]bool{}
		for _, u := range wreach[v] {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		for _, u := range reverseReach[v] {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	return colors, numColors, nil
}

// PartsUnion returns the sorted vertices whose color lies in the given set.
func PartsUnion(colors []int, pick []int) []int {
	want := map[int]bool{}
	for _, c := range pick {
		want[c] = true
	}
	var out []int
	for v, c := range colors {
		if want[c] {
			out = append(out, v)
		}
	}
	return out
}

// Subsets enumerates all nonempty subsets of {0..k-1} of size at most p.
func Subsets(k, p int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == p {
			return
		}
		for i := start; i < k; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}
