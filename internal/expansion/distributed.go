package expansion

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/regular/predicates"
)

// DistributedPeeling runs the O(log n)-round CONGEST peeling: in each
// iteration, every remaining vertex of remaining degree at most degCap peels
// itself and announces it. With degCap at least four times the degeneracy, at
// least half of the remaining vertices peel per iteration, so
// ceil(log2 n) + O(1) iterations suffice, at one round each. This is the
// "standard distributed tool" underlying Theorem 7.2.
func DistributedPeeling(g *graph.Graph, degCap int, opts congest.Options) (*Peeling, congest.Stats, error) {
	if degCap < 1 {
		return nil, congest.Stats{}, fmt.Errorf("%w: degCap must be >= 1", ErrExpansion)
	}
	sim, err := congest.NewSimulator(g, opts)
	if err != nil {
		return nil, congest.Stats{}, err
	}
	n := g.NumVertices()
	nodes := make([]*peelNode, n)
	stats, err := sim.Run(func(v int) congest.Node {
		nodes[v] = &peelNode{degCap: degCap}
		return nodes[v]
	})
	if err != nil {
		return nil, stats, err
	}
	peeling := &Peeling{Layer: make([]int, n)}
	for v := 0; v < n; v++ {
		peeling.Layer[v] = nodes[v].layer
		if nodes[v].layer+1 > peeling.NumLayers {
			peeling.NumLayers = nodes[v].layer + 1
		}
	}
	return peeling, stats, nil
}

type peelNode struct {
	degCap    int
	layer     int
	remDeg    int
	peeled    bool
	iteration int
	maxIter   int
}

// KindPeel tags the peel announcements in traces.
const KindPeel = "peel"

// Init implements congest.Node.
func (p *peelNode) Init(env *congest.Env) []congest.Outgoing {
	env.Tag(KindPeel)
	p.remDeg = env.Degree
	p.layer = -1
	// ceil(log2 n) + slack iterations; stragglers get the last layer, which
	// degrades decomposition quality but never correctness (the H-freeness
	// driver re-certifies treedepth per union).
	p.maxIter = 2
	for v := 1; v < env.N; v *= 2 {
		p.maxIter++
	}
	return nil
}

// Round implements congest.Node. One iteration per round: process peel
// announcements from the previous round, then decide whether to peel.
func (p *peelNode) Round(env *congest.Env, inbox []congest.Incoming) ([]congest.Outgoing, bool) {
	for range inbox {
		p.remDeg--
	}
	p.iteration++
	if p.peeled {
		// Stay one extra round to drain (messages already sent).
		return nil, true
	}
	if p.remDeg <= p.degCap || p.iteration >= p.maxIter {
		p.peeled = true
		p.layer = p.iteration - 1
		return []congest.Outgoing{congest.Broadcast(congest.Message{1})}, false
	}
	return nil, false
}

// HFreeResult reports the outcome of the Corollary 7.3 driver.
type HFreeResult struct {
	HFree bool
	// Round accounting: peeling rounds (distributed) plus the per-subset
	// protocol rounds, summed as if the constant number of instances were
	// multiplexed on the CONGEST links.
	TotalRounds int64
	PeelRounds  int
	NumColors   int
	SubsetRuns  int
	// MaxD is the largest treedepth parameter any union needed; p when the
	// decomposition satisfies the Theorem 7.1 property.
	MaxD int
}

// HFreeDistributed decides whether g (connected, bounded expansion) contains
// the connected pattern h as a subgraph, following Corollary 7.3: compute a
// low treedepth decomposition (distributed peeling + greedy coloring), then
// run the Theorem 6.1 decision protocol for H-subgraph containment on every
// union of at most p = |V(H)| parts, component by component. Unions whose
// treedepth exceeds p (an imperfect decomposition) escalate d until
// Algorithm 2 certifies a tree, so the answer is always exact.
func HFreeDistributed(g, h *graph.Graph, degCap int, opts congest.Options) (*HFreeResult, error) {
	if !h.IsConnected() || h.NumVertices() < 1 {
		return nil, fmt.Errorf("%w: pattern must be connected and nonempty", ErrExpansion)
	}
	p := h.NumVertices()
	pred, err := predicates.NewHSubgraph(h)
	if err != nil {
		return nil, err
	}
	// H-subgraph homomorphism classes are large (sets of partial-embedding
	// configurations), so we simulate with a wider — still Θ(log n) — CONGEST
	// bandwidth to keep streamed-table round counts (and simulation time)
	// reasonable; this scales round counts by a constant only.
	if opts.BandwidthFactor < 32 {
		opts.BandwidthFactor = 32
	}
	_, peelStats, err := DistributedPeeling(g, degCap, opts)
	if err != nil {
		return nil, err
	}
	colors, numColors, err := LowTreedepthDecomposition(g, p)
	if err != nil {
		return nil, err
	}
	res := &HFreeResult{HFree: true, PeelRounds: peelStats.Rounds, NumColors: numColors, MaxD: p}
	res.TotalRounds = int64(peelStats.Rounds)
	subsets := Subsets(numColors, p)
	if len(subsets) > 1<<16 {
		return nil, fmt.Errorf("%w: %d part subsets (decomposition too coarse)", ErrExpansion, len(subsets))
	}
	for _, pick := range subsets {
		union := PartsUnion(colors, pick)
		if len(union) < p {
			continue
		}
		sub, _ := g.InducedSubgraph(union)
		var subsetRounds int64
		for _, comp := range sub.Components() {
			if len(comp) < p {
				continue
			}
			compG, _ := sub.InducedSubgraph(comp)
			d := p
			for {
				run, err := protocols.Decide(compG, d, pred, opts)
				if err != nil {
					return nil, err
				}
				if !run.TdExceeded {
					// Components run in parallel in CONGEST; charge the max.
					if int64(run.Stats.Rounds) > subsetRounds {
						subsetRounds = int64(run.Stats.Rounds)
					}
					if d > res.MaxD {
						res.MaxD = d
					}
					if run.Accepted {
						res.HFree = false
					}
					break
				}
				d++
				if 1<<uint(d) > 4*compG.NumVertices() {
					return nil, fmt.Errorf("%w: Algorithm 2 failed to certify a tree at d=%d on %d vertices",
						ErrExpansion, d, compG.NumVertices())
				}
			}
		}
		res.SubsetRuns++
		res.TotalRounds += subsetRounds
	}
	return res, nil
}
