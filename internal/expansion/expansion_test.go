package expansion

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/mso"
	"repro/internal/mso/msolib"
	"repro/internal/treedepth"
)

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path", gen.Path(10), 1},
		{"tree", gen.RandomTree(20, 1), 1},
		{"cycle", gen.Cycle(8), 2},
		{"K5", gen.Complete(5), 4},
		{"outerplanar", gen.MaximalOuterplanar(15, 2), 2},
		{"grid", gen.Grid(5, 5), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, order := Degeneracy(tc.g)
			if d != tc.want {
				t.Fatalf("degeneracy = %d, want %d", d, tc.want)
			}
			// Ordering witness: each vertex has <= d later neighbors.
			pos := make([]int, tc.g.NumVertices())
			for i, v := range order {
				pos[v] = i
			}
			for v := 0; v < tc.g.NumVertices(); v++ {
				later := 0
				for _, w := range tc.g.Neighbors(v) {
					if pos[w] > pos[v] {
						later++
					}
				}
				if later > d {
					t.Fatalf("vertex %d has %d later neighbors > degeneracy %d", v, later, d)
				}
			}
		})
	}
}

func TestSequentialPeelingLayers(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024} {
		g := gen.RandomDegenerate(n, 3, int64(n))
		p := SequentialPeeling(g, 0.5)
		bound := 2*int(math.Ceil(math.Log2(float64(n)))) + 4
		if p.NumLayers > bound {
			t.Fatalf("n=%d: %d layers exceeds O(log n) bound %d", n, p.NumLayers, bound)
		}
		for v, l := range p.Layer {
			if l < 0 || l >= p.NumLayers {
				t.Fatalf("vertex %d has invalid layer %d", v, l)
			}
		}
	}
}

func TestDistributedPeelingMatchesBound(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024} {
		g := gen.MaximalOuterplanar(n, int64(n))
		peel, stats, err := DistributedPeeling(g, 8, congest.Options{IDSeed: 3})
		if err != nil {
			t.Fatal(err)
		}
		bound := int(math.Ceil(math.Log2(float64(n)))) + 4
		if stats.Rounds > bound {
			t.Fatalf("n=%d: %d rounds exceeds O(log n) bound %d", n, stats.Rounds, bound)
		}
		if peel.NumLayers > stats.Rounds {
			t.Fatalf("n=%d: more layers than rounds", n)
		}
		// Every vertex has at most degCap neighbors in its own or later
		// layers... except stragglers forced out at the last iteration.
		for v := 0; v < n; v++ {
			same := 0
			for _, w := range g.Neighbors(v) {
				if peel.Layer[w] >= peel.Layer[v] {
					same++
				}
			}
			if same > 8 && peel.Layer[v] != peel.NumLayers-1 {
				t.Fatalf("n=%d: vertex %d has %d same-or-later neighbors", n, v, same)
			}
		}
	}
}

func TestWeakReachability(t *testing.T) {
	// Path 0-1-2-3 with order [0 1 2 3]: WReach_2(3) = {1, 2}: 2 via direct
	// edge, 1 via path 3-2-1 (min position 1 at the endpoint).
	g := gen.Path(4)
	order := []int{0, 1, 2, 3}
	wr := WeakReachability(g, order, 2)
	if len(wr[3]) != 2 || wr[3][0] != 1 || wr[3][1] != 2 {
		t.Fatalf("WReach_2(3) = %v, want [1 2]", wr[3])
	}
	// Vertex 0 is first in the order: nothing is weakly reachable.
	if len(wr[0]) != 0 {
		t.Fatalf("WReach_2(0) = %v, want empty", wr[0])
	}
	// r = 1: just earlier neighbors.
	wr1 := WeakReachability(g, order, 1)
	if len(wr1[2]) != 1 || wr1[2][0] != 1 {
		t.Fatalf("WReach_1(2) = %v, want [1]", wr1[2])
	}
}

func TestLowTreedepthDecompositionProperty(t *testing.T) {
	// The Theorem 7.1 property, verified exactly on small graphs: every
	// union of <= p parts must have treedepth <= p... our greedy does not
	// guarantee exactly p, so we check a relaxed but still n-independent
	// bound and, crucially, that the exact treedepth of each union is small.
	r := rand.New(rand.NewSource(601))
	p := 2
	for trial := 0; trial < 10; trial++ {
		g := gen.MaximalOuterplanar(10+r.Intn(8), r.Int63())
		colors, k, err := LowTreedepthDecomposition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if k > 16 {
			t.Fatalf("trial %d: %d colors is suspiciously many", trial, k)
		}
		for _, pick := range Subsets(k, p) {
			union := PartsUnion(colors, pick)
			if len(union) == 0 || len(union) > 18 {
				continue
			}
			sub, _ := g.InducedSubgraph(union)
			for _, comp := range sub.Components() {
				if len(comp) > 16 {
					continue
				}
				compG, _ := sub.InducedSubgraph(comp)
				td, err := treedepth.Exact(compG)
				if err != nil {
					continue
				}
				if td > 2*p+2 {
					t.Fatalf("trial %d: union %v component treedepth %d too large", trial, pick, td)
				}
			}
		}
	}
}

func TestSubsets(t *testing.T) {
	s := Subsets(4, 2)
	// C(4,1) + C(4,2) = 4 + 6 = 10.
	if len(s) != 10 {
		t.Fatalf("Subsets(4,2) has %d entries, want 10", len(s))
	}
	if len(Subsets(3, 5)) != 7 { // all nonempty subsets
		t.Fatal("Subsets(3,5) should enumerate all 7 nonempty subsets")
	}
}

func TestHFreeDistributedCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(602))
	patterns := []*graph.Graph{gen.Complete(3), gen.Cycle(4)}
	for trial := 0; trial < 6; trial++ {
		n := 8 + r.Intn(10)
		g := gen.MaximalOuterplanar(n, r.Int63())
		for _, h := range patterns {
			res, err := HFreeDistributed(g, h, 8, congest.Options{IDSeed: r.Int63()})
			if err != nil {
				t.Fatal(err)
			}
			want, err := mso.NewEvaluator(g).Eval(msolib.HSubgraphFree(h), nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.HFree != want {
				t.Fatalf("trial %d pattern %v: HFree=%v oracle=%v", trial, h, res.HFree, want)
			}
			if res.PeelRounds == 0 || res.SubsetRuns == 0 && !res.HFree {
				t.Fatalf("trial %d: implausible accounting %+v", trial, res)
			}
		}
	}
}

func TestHFreeDistributedOnTriangleFreeFamily(t *testing.T) {
	// Grids are C3-free but contain C4.
	g := gen.Grid(4, 5)
	res, err := HFreeDistributed(g, gen.Complete(3), 8, congest.Options{IDSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HFree {
		t.Fatal("grids are triangle-free")
	}
	res, err = HFreeDistributed(g, gen.Cycle(4), 8, congest.Options{IDSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.HFree {
		t.Fatal("grids contain C4")
	}
}

func TestHFreeRejectsBadPattern(t *testing.T) {
	dis, _ := gen.DisjointUnion(gen.Path(2), gen.Path(2))
	if _, err := HFreeDistributed(gen.Path(5), dis, 8, congest.Options{}); err == nil {
		t.Fatal("disconnected pattern should be rejected")
	}
	if _, _, err := DistributedPeeling(gen.Path(4), 0, congest.Options{}); err == nil {
		t.Fatal("degCap 0 should be rejected")
	}
	if _, _, err := LowTreedepthDecomposition(gen.Path(4), 0); err == nil {
		t.Fatal("p = 0 should be rejected")
	}
}
