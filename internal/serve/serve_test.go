package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// edgeListText renders g in the wire format the daemon accepts.
func edgeListText(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// postCheck sends one check request and decodes the response.
func postCheck(t *testing.T, ts *httptest.Server, req CheckRequest) (CheckResponse, int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out CheckResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad response body %q: %v", buf.String(), err)
		}
	}
	return out, resp.StatusCode, buf.String()
}

// normalize renders a response for bit-identity comparison, with the
// wall-clock field stripped.
func normalize(r CheckResponse) string {
	r.ElapsedMS = 0
	return fmt.Sprintf("%+v", r)
}

// TestCheckMatchesOneShot: daemon answers must be bit-identical to one-shot
// core solves of the same query, and repeats against the warm shared cache
// must not change anything.
func TestCheckMatchesOneShot(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g, _ := gen.BoundedTreedepth(14, 3, 0.4, 42)
	gen.AssignRandomWeights(g, 9, 43)
	text := edgeListText(t, g)

	cases := []CheckRequest{
		{Graph: text, Problem: "acyclic", D: 3, Seed: 7},
		{Graph: text, Problem: "max-independent-set", D: 3},
		{Graph: text, Problem: "count-perfect-matchings", D: 3},
		{Graph: text, Problem: "min-vertex-cover", Mode: "seq"},
	}
	for _, req := range cases {
		req := req
		t.Run(req.Problem+"-"+req.Mode, func(t *testing.T) {
			prob, err := core.Lookup(req.Problem)
			if err != nil {
				t.Fatal(err)
			}
			var want *core.Solution
			if req.Mode == "seq" {
				want, err = core.SolveSequential(g, prob)
			} else {
				want, err = core.SolveDistributed(g, prob, 3, congest.Options{IDSeed: req.Seed, Parallel: true})
			}
			if err != nil {
				t.Fatal(err)
			}
			var first string
			for rep := 0; rep < 3; rep++ {
				got, code, raw := postCheck(t, ts, req)
				if code != http.StatusOK {
					t.Fatalf("rep %d: status %d: %s", rep, code, raw)
				}
				if got.Accepted != want.Accepted || got.Found != want.Found ||
					got.Weight != want.Weight || got.Count != want.Count || got.TdExceeded != want.TdExceeded {
					t.Fatalf("rep %d: verdict diverged from one-shot solve:\n  got  %+v\n  want %+v", rep, got, want)
				}
				if req.Mode != "seq" {
					if got.Rounds != want.Stats.Rounds || got.Messages != want.Stats.Messages ||
						got.Bits != want.Stats.Bits || got.MaxMsgBits != want.Stats.MaxMsgBits {
						t.Fatalf("rep %d: CONGEST accounting diverged:\n  got  %+v\n  want %+v", rep, got, want.Stats)
					}
				}
				if rep == 0 {
					first = normalize(got)
				} else if normalize(got) != first {
					t.Fatalf("rep %d: warm repeat diverged from cold answer:\n  got  %s\n  want %s", rep, normalize(got), first)
				}
			}
		})
	}

	// The warm repeats above must have hit the shared caches.
	st := srv.Stats()
	if len(st.Caches) != 4 {
		t.Fatalf("expected 4 shared caches, got %d", len(st.Caches))
	}
	var hits int64
	for _, c := range st.Caches {
		hits += c.AcceptHits + c.SelectionHits + c.DecodeHits + c.ComposeHits
	}
	if hits == 0 {
		t.Fatal("warm repeats produced no cross-request cache hits")
	}
	if st.Succeeded != 12 || st.Requests != 12 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestFaultsPathSelection: faults:false, a vacuous schedule, and an absent
// field must all take the uninjected (sharded parallel) path and agree
// bit-for-bit; only a schedule with effective rates installs the injector.
func TestFaultsPathSelection(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g, _ := gen.BoundedTreedepth(12, 3, 0.5, 77)
	text := edgeListText(t, g)

	variants := []string{
		fmt.Sprintf(`{"graph":%q,"problem":"acyclic","d":3}`, text),
		fmt.Sprintf(`{"graph":%q,"problem":"acyclic","d":3,"faults":false}`, text),
		fmt.Sprintf(`{"graph":%q,"problem":"acyclic","d":3,"faults":{"drop_rate":0,"crash_rate":0}}`, text),
		fmt.Sprintf(`{"graph":%q,"problem":"acyclic","d":3,"faults":{"reorder_rate":0.5,"reorder_window":0}}`, text),
		fmt.Sprintf(`{"graph":%q,"problem":"acyclic","d":3,"parallel":false}`, text),
	}
	var want string
	var wantResp CheckResponse
	for i, body := range variants {
		resp, err := ts.Client().Post(ts.URL+"/v1/check", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var got CheckResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("variant %d: status %d", i, resp.StatusCode)
		}
		if got.FaultsInjected {
			t.Fatalf("variant %d: vacuous faults must not install the injector", i)
		}
		if i == 0 {
			want = normalize(got)
			wantResp = got
		} else if normalize(got) != want {
			t.Fatalf("variant %d diverged:\n  got  %s\n  want %s", i, normalize(got), want)
		}
	}

	// A schedule with effective rates goes through injection + reliable
	// delivery and still produces the fault-free verdict.
	body := fmt.Sprintf(`{"graph":%q,"problem":"acyclic","d":3,"faults":{"seed":5,"drop_rate":0.1,"dup_rate":0.05}}`, text)
	resp, err := ts.Client().Post(ts.URL+"/v1/check", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulty variant: status %d", resp.StatusCode)
	}
	if !got.FaultsInjected {
		t.Fatal("effective schedule must report faults_injected")
	}
	if got.Accepted != wantResp.Accepted || got.TdExceeded != wantResp.TdExceeded {
		t.Fatalf("faulty run verdict diverged: got %+v want %+v", got, wantResp)
	}
}

// TestRequestValidation: every malformed request gets a 4xx with a JSON
// error body, never a 500.
func TestRequestValidation(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g := gen.Path(5)
	text := edgeListText(t, g)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad-json", `{"graph": `, http.StatusBadRequest},
		{"unknown-field", `{"graf":"x"}`, http.StatusBadRequest},
		{"no-problem", fmt.Sprintf(`{"graph":%q}`, text), http.StatusBadRequest},
		{"both-problem-and-formula", fmt.Sprintf(`{"graph":%q,"problem":"acyclic","formula":"true"}`, text), http.StatusBadRequest},
		{"unknown-problem", fmt.Sprintf(`{"graph":%q,"problem":"nope"}`, text), http.StatusBadRequest},
		{"bad-formula", fmt.Sprintf(`{"graph":%q,"formula":"(("}`, text), http.StatusBadRequest},
		{"no-graph", `{"problem":"acyclic"}`, http.StatusBadRequest},
		{"bad-graph", `{"graph":"not a graph","problem":"acyclic"}`, http.StatusBadRequest},
		{"bad-mode", fmt.Sprintf(`{"graph":%q,"problem":"acyclic","mode":"turbo"}`, text), http.StatusBadRequest},
		{"bad-d", fmt.Sprintf(`{"graph":%q,"problem":"acyclic","d":-2}`, text), http.StatusBadRequest},
		{"faults-with-seq", fmt.Sprintf(`{"graph":%q,"problem":"acyclic","mode":"seq","faults":{"drop_rate":0.2}}`, text), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/check", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			var e ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("error body missing: err=%v body=%+v", err, e)
			}
		})
	}

	// Method checks.
	if resp, err := ts.Client().Get(ts.URL + "/v1/check"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/check = %d, want 405", resp.StatusCode)
		}
	}
}

// TestAdmissionAndTimeout: a full queue returns 429 immediately; a request
// that cannot get a slot within the timeout returns 504; the solve-loop
// cancellation path also returns 504.
func TestAdmissionAndTimeout(t *testing.T) {
	srv := New(Options{MaxConcurrent: 1, QueueDepth: 1, RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g := gen.Path(4)
	req := CheckRequest{Graph: edgeListText(t, g), Problem: "acyclic", D: 2}

	// Occupy the only solve slot and fill the queue allowance (one running
	// plus one waiting): the next arrival must bounce.
	srv.sem <- struct{}{}
	srv.queued.Add(2)
	if _, code, _ := postCheck(t, ts, req); code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", code)
	}
	srv.queued.Add(-2)
	// Queue has room but the slot never frees: the wait times out.
	if _, code, _ := postCheck(t, ts, req); code != http.StatusGatewayTimeout {
		t.Fatalf("held slot: status %d, want 504", code)
	}
	<-srv.sem

	st := srv.Stats()
	if st.Rejected != 1 || st.Timeouts != 1 {
		t.Fatalf("counters after admission tests: %+v", st)
	}
}

// TestDrain: after StartDrain the health check and new work turn 503 while
// the stats endpoint stays readable.
func TestDrain(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain = %d", resp.StatusCode)
	}

	srv.StartDrain()
	srv.StartDrain() // idempotent

	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
	}
	g := gen.Path(3)
	if _, code, _ := postCheck(t, ts, CheckRequest{Graph: edgeListText(t, g), Problem: "acyclic"}); code != http.StatusServiceUnavailable {
		t.Fatalf("check during drain = %d, want 503", code)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Fatal("stats must report draining")
	}
}

// TestFaultsSpecJSON: the "faults" field accepts bools and schedule objects.
func TestFaultsSpecJSON(t *testing.T) {
	cases := []struct {
		in      string
		enabled bool
		noop    bool
	}{
		{`false`, false, true},
		{`true`, true, true},
		{`{}`, true, true},
		{`{"drop_rate":0.2}`, true, false},
		{`{"enabled":false,"drop_rate":0.2}`, false, false},
		{`{"reorder_rate":0.9,"reorder_window":0}`, true, true},
		{`{"reorder_rate":0.9,"reorder_window":2}`, true, false},
	}
	for _, tc := range cases {
		var f FaultsSpec
		if err := json.Unmarshal([]byte(tc.in), &f); err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if f.Enabled != tc.enabled {
			t.Fatalf("%s: Enabled = %v, want %v", tc.in, f.Enabled, tc.enabled)
		}
		if got := f.config().Noop(); got != tc.noop {
			t.Fatalf("%s: Noop = %v, want %v", tc.in, got, tc.noop)
		}
	}
	var f FaultsSpec
	if err := json.Unmarshal([]byte(`{"bogus":1}`), &f); err == nil {
		t.Fatal("unknown schedule field must error")
	}
}

// TestFormulaCacheLRU: formula caches are bounded; registered problems are
// never evicted.
func TestFormulaCacheLRU(t *testing.T) {
	srv := New(Options{MaxFormulas: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g := gen.Cycle(5)
	text := edgeListText(t, g)
	if _, code, raw := postCheck(t, ts, CheckRequest{Graph: text, Problem: "acyclic", D: 3}); code != http.StatusOK {
		t.Fatalf("problem request: %d %s", code, raw)
	}
	formulas := []string{
		"exists x:V,y:V . adj(x,y)",
		"forall x:V . exists y:V . adj(x,y)",
		"~ exists x:V,y:V,z:V . adj(x,y) & adj(y,z) & adj(z,x)",
	}
	for _, f := range formulas {
		if _, code, raw := postCheck(t, ts, CheckRequest{Graph: text, Formula: f, D: 3}); code != http.StatusOK {
			t.Fatalf("formula %q: %d %s", f, code, raw)
		}
	}
	srv.mu.Lock()
	nFormula, nProblem := 0, 0
	for _, e := range srv.caches {
		if e.formula {
			nFormula++
		} else {
			nProblem++
		}
	}
	srv.mu.Unlock()
	if nFormula != 2 {
		t.Fatalf("formula caches = %d, want 2 (LRU cap)", nFormula)
	}
	if nProblem != 1 {
		t.Fatalf("problem caches = %d, want 1 (never evicted)", nProblem)
	}
}
