// Package serve implements dmcd's HTTP+JSON model-checking service: a
// long-running daemon answering POST /v1/check queries over a persistent
// worker pool, with process-lifetime DP caches shared across requests
// (regular.Shared, one per predicate), recycled CONGEST engine scratch
// (congest.ScratchPool), bounded-queue admission control, per-request
// timeouts threaded into the solve loop, and graceful drain.
//
// Endpoints:
//
//	POST /v1/check   solve one problem on one graph (JSON in/out)
//	GET  /v1/stats   server counters + per-predicate cache stats
//	GET  /healthz    200 while serving, 503 once draining
//
// Every answer is bit-identical to a one-shot dmc run of the same query:
// shared caches and scratch pooling only save work, never change results.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/regular"
)

// Options configures a Server. Zero fields take the documented defaults.
type Options struct {
	// Workers is the CONGEST worker-pool size per request
	// (0 = GOMAXPROCS; requests may override downward via "workers").
	Workers int
	// MaxConcurrent bounds solves in flight (0 = GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a solve slot beyond
	// MaxConcurrent; excess requests get 429 (0 = 64).
	QueueDepth int
	// RequestTimeout bounds one solve; exceeding it returns 504 and cancels
	// the CONGEST run at the next round barrier (0 = 30s).
	RequestTimeout time.Duration
	// ComposeCap caps each shared cache's compose memo
	// (0 = regular.DefaultComposeCap).
	ComposeCap int
	// MaxGraphBytes bounds the request body (0 = 8 MiB).
	MaxGraphBytes int64
	// MaxFormulas bounds the number of compiled-formula caches retained;
	// least-recently-used formulas are evicted past the cap. Registered
	// problems are never evicted (0 = 64).
	MaxFormulas int
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.ComposeCap <= 0 {
		o.ComposeCap = regular.DefaultComposeCap
	}
	if o.MaxGraphBytes <= 0 {
		o.MaxGraphBytes = 8 << 20
	}
	if o.MaxFormulas <= 0 {
		o.MaxFormulas = 64
	}
	return o
}

// CheckRequest is the body of POST /v1/check. Exactly one of Problem and
// Formula selects the predicate.
type CheckRequest struct {
	// Graph is the instance in edge-list format (the gengraph/dmc format).
	Graph string `json:"graph"`
	// Problem names a registered problem (see core.Problems / dmc -list).
	Problem string `json:"problem,omitempty"`
	// Formula is a closed MSO formula compiled by the generic engine.
	Formula string `json:"formula,omitempty"`
	// Mode is "dist" (default: the CONGEST protocol) or "seq" (Algorithm 1).
	Mode string `json:"mode,omitempty"`
	// D is the treedepth parameter of the distributed protocol (default 3).
	D int `json:"d,omitempty"`
	// Seed is the adversarial ID-permutation seed (0 = identity).
	Seed int64 `json:"seed,omitempty"`
	// Workers overrides the server's per-request worker count (0 = server
	// default). Ignored with "parallel": false.
	Workers int `json:"workers,omitempty"`
	// Parallel selects sharded parallel execution (default true; results
	// are bit-identical either way).
	Parallel *bool `json:"parallel,omitempty"`
	// Faults is false/absent (no injection), true (a vacuous schedule), or
	// a schedule object. Only a schedule that can actually perturb the run
	// installs the injector and the reliable-delivery adapter; a vacuous
	// one keeps the sharded parallel path.
	Faults *FaultsSpec `json:"faults,omitempty"`
}

// FaultsSpec is the "faults" request field: a JSON bool or a schedule
// object ({"drop_rate":0.2,"seed":7,...}, enabled unless "enabled":false).
type FaultsSpec struct {
	Enabled       bool    `json:"enabled"`
	Seed          int64   `json:"seed,omitempty"`
	DropRate      float64 `json:"drop_rate,omitempty"`
	DupRate       float64 `json:"dup_rate,omitempty"`
	ReorderRate   float64 `json:"reorder_rate,omitempty"`
	ReorderWindow int     `json:"reorder_window,omitempty"`
	CrashRate     float64 `json:"crash_rate,omitempty"`
}

// UnmarshalJSON accepts either a bare bool or a schedule object.
func (f *FaultsSpec) UnmarshalJSON(b []byte) error {
	var on bool
	if err := json.Unmarshal(b, &on); err == nil {
		*f = FaultsSpec{Enabled: on}
		return nil
	}
	var a struct {
		Enabled       *bool   `json:"enabled"`
		Seed          int64   `json:"seed"`
		DropRate      float64 `json:"drop_rate"`
		DupRate       float64 `json:"dup_rate"`
		ReorderRate   float64 `json:"reorder_rate"`
		ReorderWindow int     `json:"reorder_window"`
		CrashRate     float64 `json:"crash_rate"`
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	*f = FaultsSpec{
		Enabled: true, Seed: a.Seed, DropRate: a.DropRate, DupRate: a.DupRate,
		ReorderRate: a.ReorderRate, ReorderWindow: a.ReorderWindow, CrashRate: a.CrashRate,
	}
	if a.Enabled != nil {
		f.Enabled = *a.Enabled
	}
	return nil
}

// config converts the spec into a fault schedule.
func (f *FaultsSpec) config() faults.Config {
	return faults.Config{
		Seed: f.Seed, DropRate: f.DropRate, DupRate: f.DupRate,
		ReorderRate: f.ReorderRate, ReorderWindow: f.ReorderWindow,
		CrashRate: f.CrashRate, MinOutage: 1, MaxOutage: 4,
	}
}

// CheckResponse is the body of a successful POST /v1/check.
type CheckResponse struct {
	Problem    string `json:"problem"`
	Mode       string `json:"mode"`
	D          int    `json:"d"`
	TdExceeded bool   `json:"td_exceeded,omitempty"`
	Accepted   bool   `json:"accepted"`
	Found      bool   `json:"found,omitempty"`
	Weight     int64  `json:"weight,omitempty"`
	Count      int64  `json:"count,omitempty"`
	// Selected lists the optimal solution's vertex or edge IDs
	// (optimization problems only).
	Selected []int `json:"selected,omitempty"`
	// CONGEST accounting (distributed mode only).
	Rounds     int   `json:"rounds,omitempty"`
	Messages   int64 `json:"messages,omitempty"`
	Bits       int64 `json:"bits,omitempty"`
	MaxMsgBits int   `json:"max_msg_bits,omitempty"`
	// FaultsInjected reports whether a non-vacuous fault schedule ran
	// (with the reliable-delivery adapter).
	FaultsInjected bool `json:"faults_injected,omitempty"`
	// ElapsedMS is wall-clock solve time; excluded from bit-identity
	// comparisons.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// cacheEntry is one predicate's process-lifetime state.
type cacheEntry struct {
	prob    core.Problem
	shared  *regular.Shared
	formula bool  // formula entries are LRU-evictable, problem entries are not
	lastUse int64 // server tick of the last lookup
}

// Server is the dmcd service state. Create with New, mount Handler on an
// http.Server, call StartDrain before shutting down.
type Server struct {
	opts    Options
	start   time.Time
	sem     chan struct{}
	queued  atomic.Int64
	drainCh chan struct{}
	drainMu sync.Mutex
	drained bool
	scratch *congest.ScratchPool

	mu     sync.Mutex
	caches map[string]*cacheEntry
	tick   int64

	nRequests  atomic.Int64
	nOK        atomic.Int64
	nClientErr atomic.Int64
	nServerErr atomic.Int64
	nRejected  atomic.Int64
	nTimeout   atomic.Int64
}

// New builds a Server.
func New(opts Options) *Server {
	o := opts.withDefaults()
	return &Server{
		opts:    o,
		start:   time.Now(),
		sem:     make(chan struct{}, o.MaxConcurrent),
		drainCh: make(chan struct{}),
		scratch: congest.NewScratchPool(),
		caches:  make(map[string]*cacheEntry),
	}
}

// Handler returns the HTTP mux serving all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", s.handleCheck)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// StartDrain flips the server into draining: /healthz turns 503 and new
// checks are refused, while in-flight solves finish. Idempotent.
func (s *Server) StartDrain() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if !s.drained {
		s.drained = true
		close(s.drainCh)
	}
}

func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	switch {
	case status == http.StatusTooManyRequests:
		s.nRejected.Add(1)
	case status == http.StatusGatewayTimeout:
		s.nTimeout.Add(1)
	case status >= 500:
		s.nServerErr.Add(1)
	default:
		s.nClientErr.Add(1)
	}
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// cacheFor returns (creating on demand) the shared cache for the request's
// predicate, keyed by problem name or formula text.
func (s *Server) cacheFor(req *CheckRequest) (*cacheEntry, error) {
	var key string
	switch {
	case req.Problem != "" && req.Formula != "":
		return nil, errors.New("use either \"problem\" or \"formula\", not both")
	case req.Problem != "":
		key = "p:" + req.Problem
	case req.Formula != "":
		key = "f:" + req.Formula
	default:
		return nil, errors.New("need \"problem\" or \"formula\"")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	if e, ok := s.caches[key]; ok {
		e.lastUse = s.tick
		return e, nil
	}
	e := &cacheEntry{lastUse: s.tick}
	if req.Problem != "" {
		prob, err := core.Lookup(req.Problem)
		if err != nil {
			return nil, err
		}
		e.prob = prob
	} else {
		pred, err := core.CompileClosedFormula(req.Formula)
		if err != nil {
			return nil, fmt.Errorf("formula: %w", err)
		}
		e.prob = core.Problem{
			Name: "formula", Kind: core.KindDecision,
			Build:       func() (regular.Predicate, error) { return pred, nil },
			Description: req.Formula,
		}
		e.formula = true
	}
	pred, err := e.prob.Build()
	if err != nil {
		return nil, err
	}
	e.shared = regular.NewShared(pred)
	e.shared.SetComposeCap(s.opts.ComposeCap)
	s.caches[key] = e
	s.evictFormulasLocked()
	return e, nil
}

// evictFormulasLocked drops least-recently-used formula entries past the cap.
//
//dmclint:requires-lock mu
func (s *Server) evictFormulasLocked() {
	for {
		count, oldestKey, oldest := 0, "", int64(0)
		for k, e := range s.caches {
			if !e.formula {
				continue
			}
			count++
			if oldestKey == "" || e.lastUse < oldest {
				oldestKey, oldest = k, e.lastUse
			}
		}
		if count <= s.opts.MaxFormulas {
			return
		}
		delete(s.caches, oldestKey)
	}
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	s.nRequests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining() {
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxGraphBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req CheckRequest
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	// Admission: the queue holds at most MaxConcurrent running plus
	// QueueDepth waiting requests; the rest are rejected immediately.
	if s.queued.Add(1) > int64(s.opts.MaxConcurrent+s.opts.QueueDepth) {
		s.queued.Add(-1)
		s.fail(w, http.StatusTooManyRequests, "queue full (%d in flight or waiting)", s.opts.MaxConcurrent+s.opts.QueueDepth)
		return
	}
	defer s.queued.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	select {
	case s.sem <- struct{}{}:
		//lint:ignore dmclint/ctxflow the slot was just acquired on this path; releasing a held slot never blocks
		defer func() { <-s.sem }()
	case <-s.drainCh:
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	case <-ctx.Done():
		s.fail(w, http.StatusGatewayTimeout, "timed out waiting for a solve slot")
		return
	}

	resp, status, err := s.solve(ctx, &req)
	if err != nil {
		s.fail(w, status, "%v", err)
		return
	}
	s.nOK.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// solve validates and runs one check request.
func (s *Server) solve(ctx context.Context, req *CheckRequest) (*CheckResponse, int, error) {
	entry, err := s.cacheFor(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if strings.TrimSpace(req.Graph) == "" {
		return nil, http.StatusBadRequest, errors.New("need \"graph\" (edge-list text)")
	}
	g, err := graph.ReadEdgeList(strings.NewReader(req.Graph))
	if err != nil {
		// graph package errors already carry the "graph:" prefix.
		return nil, http.StatusBadRequest, err
	}
	mode := req.Mode
	if mode == "" {
		mode = "dist"
	}
	if mode != "dist" && mode != "seq" {
		return nil, http.StatusBadRequest, fmt.Errorf("mode: want \"dist\" or \"seq\", got %q", req.Mode)
	}
	d := req.D
	if d == 0 {
		d = 3
	}
	if d < 1 {
		return nil, http.StatusBadRequest, fmt.Errorf("d: must be >= 1, got %d", d)
	}
	injected := req.Faults != nil && req.Faults.Enabled && !req.Faults.config().Noop()
	if injected && mode == "seq" {
		return nil, http.StatusBadRequest, errors.New("faults apply to the distributed run, not mode \"seq\"")
	}

	prob := entry.prob
	resp := &CheckResponse{Problem: prob.Name, Mode: mode, D: d, FaultsInjected: injected}
	startSolve := time.Now()
	var sol *core.Solution
	if mode == "seq" {
		if err := ctx.Err(); err != nil {
			return nil, http.StatusGatewayTimeout, fmt.Errorf("canceled before solve: %w", err)
		}
		sol, err = core.SolveSequentialCached(g, prob, entry.shared)
	} else {
		workers := req.Workers
		if workers == 0 {
			workers = s.opts.Workers
		}
		parallel := req.Parallel == nil || *req.Parallel
		opts := congest.Options{
			IDSeed:   req.Seed,
			Parallel: parallel,
			Workers:  workers,
			Context:  ctx,
			Scratch:  s.scratch,
		}
		if injected {
			// A live schedule needs the reliable-delivery adapter and its
			// frame headroom; the injector forces deterministic serial
			// delivery inside the engine.
			opts.Injector = faults.New(req.Faults.config())
			opts.BandwidthFactor = protocols.ReliableBandwidthFactor(g.NumVertices())
			sol, err = core.SolveDistributedReliable(g, prob, d, opts, protocols.ReliableConfig{})
		} else {
			// No effective injection (including vacuous schedules): the
			// sharded parallel path, with the shared cross-request cache.
			sol, err = core.SolveDistributedCached(g, prob, d, opts, entry.shared)
		}
	}
	if err != nil {
		switch {
		case errors.Is(err, congest.ErrCanceled) || errors.Is(err, context.DeadlineExceeded):
			return nil, http.StatusGatewayTimeout, fmt.Errorf("solve timed out after %v", s.opts.RequestTimeout)
		case errors.Is(err, protocols.ErrUnrecoverable):
			return nil, http.StatusUnprocessableEntity, fmt.Errorf("faults exceeded the retry budget: %v", err)
		case errors.Is(err, protocols.ErrProtocol) || errors.Is(err, core.ErrUnknownProblem):
			return nil, http.StatusBadRequest, err
		default:
			return nil, http.StatusInternalServerError, err
		}
	}
	resp.ElapsedMS = float64(time.Since(startSolve).Microseconds()) / 1000

	resp.TdExceeded = sol.TdExceeded
	resp.Accepted = sol.Accepted
	resp.Found = sol.Found
	resp.Weight = sol.Weight
	resp.Count = sol.Count
	if sol.Selected != nil {
		ids := []int{}
		sol.Selected.ForEach(func(v int) { ids = append(ids, v) })
		resp.Selected = ids
	}
	if mode == "dist" {
		resp.Rounds = sol.Stats.Rounds
		resp.Messages = sol.Stats.Messages
		resp.Bits = sol.Stats.Bits
		resp.MaxMsgBits = sol.Stats.MaxMsgBits
	}
	return resp, http.StatusOK, nil
}

// CacheInfo is one predicate's shared-cache stats in StatsResponse.
type CacheInfo struct {
	Key string `json:"key"` // "p:<problem>" or "f:<formula>"
	regular.CacheStats
	ComposeHitRate float64 `json:"compose_hit_rate"`
	LookupHitRate  float64 `json:"lookup_hit_rate"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeMS     float64     `json:"uptime_ms"`
	Draining     bool        `json:"draining"`
	Requests     int64       `json:"requests"`
	Succeeded    int64       `json:"succeeded"`
	ClientErrors int64       `json:"client_errors"`
	ServerErrors int64       `json:"server_errors"`
	Rejected     int64       `json:"rejected"` // 429s from admission control
	Timeouts     int64       `json:"timeouts"` // 504s
	InFlight     int64       `json:"in_flight"`
	Queued       int64       `json:"queued"`
	ScratchIdle  int         `json:"scratch_idle"` // pooled engine scratch buffers
	Caches       []CacheInfo `json:"caches"`
}

// Stats snapshots the server counters and every shared cache.
func (s *Server) Stats() StatsResponse {
	inFlight := int64(len(s.sem))
	queued := s.queued.Load() - inFlight
	if queued < 0 {
		queued = 0
	}
	resp := StatsResponse{
		UptimeMS:     float64(time.Since(s.start).Microseconds()) / 1000,
		Draining:     s.draining(),
		Requests:     s.nRequests.Load(),
		Succeeded:    s.nOK.Load(),
		ClientErrors: s.nClientErr.Load(),
		ServerErrors: s.nServerErr.Load(),
		Rejected:     s.nRejected.Load(),
		Timeouts:     s.nTimeout.Load(),
		InFlight:     inFlight,
		Queued:       queued,
		ScratchIdle:  s.scratch.Idle(),
	}
	s.mu.Lock()
	keys := make([]string, 0, len(s.caches))
	entries := make(map[string]*cacheEntry, len(s.caches))
	for k, e := range s.caches {
		keys = append(keys, k)
		entries[k] = e
	}
	s.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		st := entries[k].shared.Stats()
		resp.Caches = append(resp.Caches, CacheInfo{
			Key: k, CacheStats: st,
			ComposeHitRate: st.ComposeHitRate(),
			LookupHitRate:  st.LookupHitRate(),
		})
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}
