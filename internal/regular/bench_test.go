package regular_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/wterm"
)

// foldFixture builds a six-terminal path base and an identity gluing so the
// fold benchmarks exercise a |C|² compose loop of realistic size, comparing
// the uncached map folds against the interned dense folds.
type foldFixture struct {
	pred  regular.Predicate
	glue  wterm.Gluing
	set   regular.ClassSet
	opt   regular.OptTable
	count regular.CountTable
}

func newFoldFixture(b *testing.B) *foldFixture {
	b.Helper()
	g := graph.New(6)
	for v := 0; v+1 < 6; v++ {
		g.MustAddEdge(v, v+1)
		g.SetVertexWeight(v, int64(v+1))
	}
	g.SetVertexWeight(5, 6)
	bag := []int{0, 1, 2, 3, 4, 5}
	base, err := wterm.BaseFromBag(g, bag, 5)
	if err != nil {
		b.Fatal(err)
	}
	glue, err := wterm.GluingFromBags(bag, bag, bag)
	if err != nil {
		b.Fatal(err)
	}
	fx := &foldFixture{pred: predicates.IndependentSet{}, glue: glue}
	if fx.set, err = regular.BaseClassSet(fx.pred, base); err != nil {
		b.Fatal(err)
	}
	if fx.opt, err = regular.BaseOptTable(fx.pred, base, 5, true); err != nil {
		b.Fatal(err)
	}
	if fx.count, err = regular.BaseCountTable(fx.pred, base); err != nil {
		b.Fatal(err)
	}
	return fx
}

func BenchmarkFoldDecide(b *testing.B) {
	fx := newFoldFixture(b)
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := regular.FoldDecide(fx.pred, fx.glue, fx.set, fx.set); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := regular.NewCached(fx.pred)
		g := c.InternGluing(fx.glue)
		ds := c.InternClassSet(fx.set)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.FoldDecideDense(g, ds, ds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFoldOpt(b *testing.B) {
	fx := newFoldFixture(b)
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := regular.FoldOpt(fx.pred, fx.glue, fx.opt, fx.opt, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := regular.NewCached(fx.pred)
		g := c.InternGluing(fx.glue)
		dt := c.InternOptTable(fx.opt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.FoldOptDense(g, dt, dt, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFoldCount(b *testing.B) {
	fx := newFoldFixture(b)
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := regular.FoldCount(fx.pred, fx.glue, fx.count, fx.count); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := regular.NewCached(fx.pred)
		g := c.InternGluing(fx.glue)
		dt := c.InternCountTable(fx.count)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.FoldCountDense(g, dt, dt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
