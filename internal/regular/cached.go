package regular

import (
	"repro/internal/wterm"
)

// GluingID is a dense identifier for an interned gluing signature.
type GluingID int32

// DefaultComposeCap bounds the ⊙_f memo table. A bounded-treedepth run
// needs |gluings| · |C|² entries at most, far below this; the cap exists so
// adversarial inputs cannot grow the memo without bound.
const DefaultComposeCap = 1 << 20

// CacheStats counts cache traffic for one Cached instance. Counters are
// plain totals so per-node stats can be summed into a run aggregate.
type CacheStats struct {
	Classes          int   `json:"classes"`           // distinct interned classes
	Gluings          int   `json:"gluings"`           // distinct gluing signatures
	ComposeHits      int64 `json:"compose_hits"`      // memoized ⊙_f lookups served
	ComposeMisses    int64 `json:"compose_misses"`    // ⊙_f computed and inserted
	ComposeEntries   int   `json:"compose_entries"`   // live memo entries
	ComposeEvictions int64 `json:"compose_evictions"` // entries dropped at the cap
	AcceptHits       int64 `json:"accept_hits"`
	AcceptMisses     int64 `json:"accept_misses"`
	SelectionHits    int64 `json:"selection_hits"`
	SelectionMisses  int64 `json:"selection_misses"`
	DecodeHits       int64 `json:"decode_hits"` // wire keys resolved without DecodeClass
	DecodeMisses     int64 `json:"decode_misses"`
}

// Add returns the field-wise sum of two stat records (gauges take the max).
func (s CacheStats) Add(o CacheStats) CacheStats {
	s.ComposeHits += o.ComposeHits
	s.ComposeMisses += o.ComposeMisses
	s.ComposeEvictions += o.ComposeEvictions
	s.AcceptHits += o.AcceptHits
	s.AcceptMisses += o.AcceptMisses
	s.SelectionHits += o.SelectionHits
	s.SelectionMisses += o.SelectionMisses
	s.DecodeHits += o.DecodeHits
	s.DecodeMisses += o.DecodeMisses
	if o.Classes > s.Classes {
		s.Classes = o.Classes
	}
	if o.Gluings > s.Gluings {
		s.Gluings = o.Gluings
	}
	if o.ComposeEntries > s.ComposeEntries {
		s.ComposeEntries = o.ComposeEntries
	}
	return s
}

// ComposeHitRate returns the fraction of ⊙_f calls served from the memo.
func (s CacheStats) ComposeHitRate() float64 {
	total := s.ComposeHits + s.ComposeMisses
	if total == 0 {
		return 0
	}
	return float64(s.ComposeHits) / float64(total)
}

type composeKey struct {
	g    GluingID
	a, b ClassID
}

// composeVal is NoClass when the pair is incompatible under the gluing.
type composeVal struct{ id ClassID }

// Cached wraps a Predicate with a per-run interner and deterministic
// memoization of the expensive calls: Compose per (gluing signature,
// ClassID, ClassID), Accepting and Selection per ClassID, and wire decoding
// per key. Because Predicate implementations are required to be
// deterministic functions of their arguments, replaying a memoized result is
// observationally identical to recomputing it — cached and uncached runs
// produce byte-identical tables regardless of hit pattern or evictions.
//
// Cached itself implements Predicate, so it is a drop-in wrapper for the
// map-based fold functions; the dense fold methods in dense.go skip the
// string keys entirely and are the fast path.
//
// Cached is not safe for concurrent use; give each goroutine (each simulated
// node) its own instance.
type Cached struct {
	pred Predicate
	in   *Interner

	gluingIDs map[string]GluingID
	gluings   []wterm.Gluing

	compose    map[composeKey]composeVal
	composeCap int

	// Dense per-ClassID memos, grown on demand.
	accept []uint8 // 0 unknown, 1 false, 2 true
	sel    []Selection
	selOK  []bool

	// Fold scratch: slot[id] = output index in the fold in progress, valid
	// when stamp[id] == epoch. Reusing it across folds keeps the inner loop
	// free of map operations and allocations.
	slot  []int32
	stamp []uint32
	epoch uint32

	stats CacheStats
}

var _ Predicate = (*Cached)(nil)

// NewCached wraps pred with a fresh interner and empty memo tables.
func NewCached(pred Predicate) *Cached {
	return &Cached{
		pred:       pred,
		in:         NewInterner(),
		gluingIDs:  make(map[string]GluingID),
		compose:    make(map[composeKey]composeVal),
		composeCap: DefaultComposeCap,
	}
}

// SetComposeCap overrides the compose-memo entry bound (n <= 0 restores the
// default).
func (c *Cached) SetComposeCap(n int) {
	if n <= 0 {
		n = DefaultComposeCap
	}
	c.composeCap = n
}

// Interner exposes the class interner (ID <-> key/class lookups).
func (c *Cached) Interner() *Interner { return c.in }

// Stats returns a snapshot of the cache counters.
func (c *Cached) Stats() CacheStats {
	s := c.stats
	s.Classes = c.in.Len()
	s.Gluings = len(c.gluings)
	s.ComposeEntries = len(c.compose)
	return s
}

// GluingKey returns the canonical byte signature of a gluing: (N1, N2, rows)
// little-endian. Two gluings compose identically iff their signatures match.
func GluingKey(f wterm.Gluing) string {
	b := make([]byte, 0, 4+4*len(f.Rows))
	b = append(b, byte(f.N1), byte(f.N1>>8), byte(f.N2), byte(f.N2>>8))
	for _, row := range f.Rows {
		b = append(b, byte(row[0]), byte(row[0]>>8), byte(row[1]), byte(row[1]>>8))
	}
	return string(b)
}

// InternGluing interns f's signature and returns its dense ID.
func (c *Cached) InternGluing(f wterm.Gluing) GluingID {
	key := GluingKey(f)
	if id, ok := c.gluingIDs[key]; ok {
		return id
	}
	id := GluingID(len(c.gluings))
	c.gluingIDs[key] = id
	c.gluings = append(c.gluings, f)
	return id
}

// Intern interns a class and returns its ID.
func (c *Cached) Intern(cl Class) ClassID { return c.in.Intern(cl) }

// InternWire resolves a class wire encoding to an ID. Keys double as the
// wire format, so an encoding seen before resolves without calling
// DecodeClass at all — the fast path for repeated table entries arriving
// from children.
func (c *Cached) InternWire(data []byte) (ClassID, error) {
	if id, ok := c.in.Lookup(string(data)); ok {
		c.stats.DecodeHits++
		return id, nil
	}
	c.stats.DecodeMisses++
	cl, err := c.pred.DecodeClass(data)
	if err != nil {
		return NoClass, err
	}
	return c.in.Intern(cl), nil
}

// ComposeIDs is the memoized update function ⊙_f on interned operands. The
// boolean mirrors Predicate.Compose: false means the pair is incompatible
// under the gluing (also memoized).
func (c *Cached) ComposeIDs(g GluingID, a, b ClassID) (ClassID, bool, error) {
	key := composeKey{g: g, a: a, b: b}
	if v, ok := c.compose[key]; ok {
		c.stats.ComposeHits++
		return v.id, v.id != NoClass, nil
	}
	c.stats.ComposeMisses++
	cl, ok, err := c.pred.Compose(c.gluings[g], c.in.Class(a), c.in.Class(b))
	if err != nil {
		return NoClass, false, err
	}
	v := composeVal{id: NoClass}
	if ok {
		v.id = c.in.Intern(cl)
	}
	if len(c.compose) >= c.composeCap {
		// Bounded, seed-free eviction: drop the whole memo. A flush is
		// deterministic (no map-iteration order involved) and, because every
		// entry is a pure function of its key, harmless to correctness.
		c.stats.ComposeEvictions += int64(len(c.compose))
		c.compose = make(map[composeKey]composeVal)
	}
	c.compose[key] = v
	return v.id, ok, nil
}

// AcceptingID is the memoized acceptance test.
func (c *Cached) AcceptingID(id ClassID) (bool, error) {
	c.growClassMemos()
	if v := c.accept[id]; v != 0 {
		c.stats.AcceptHits++
		return v == 2, nil
	}
	c.stats.AcceptMisses++
	ok, err := c.pred.Accepting(c.in.Class(id))
	if err != nil {
		return false, err
	}
	if ok {
		c.accept[id] = 2
	} else {
		c.accept[id] = 1
	}
	return ok, nil
}

// SelectionID is the memoized selection decoding.
func (c *Cached) SelectionID(id ClassID) (Selection, error) {
	c.growClassMemos()
	if c.selOK[id] {
		c.stats.SelectionHits++
		return c.sel[id], nil
	}
	c.stats.SelectionMisses++
	sel, err := c.pred.Selection(c.in.Class(id))
	if err != nil {
		return Selection{}, err
	}
	c.sel[id] = sel
	c.selOK[id] = true
	return sel, nil
}

// growClassMemos extends the dense per-class memo slices to cover every
// interned ID.
func (c *Cached) growClassMemos() {
	n := c.in.Len()
	for len(c.accept) < n {
		c.accept = append(c.accept, 0)
	}
	for len(c.sel) < n {
		c.sel = append(c.sel, Selection{})
		c.selOK = append(c.selOK, false)
	}
}

// --- Predicate interface (drop-in wrapper form) ---

// Name implements Predicate.
func (c *Cached) Name() string { return c.pred.Name() }

// SetKind implements Predicate.
func (c *Cached) SetKind() SetKind { return c.pred.SetKind() }

// HomBase implements Predicate (delegated; base enumeration is already
// linear in its output).
func (c *Cached) HomBase(base *wterm.TerminalGraph) ([]BaseClass, error) {
	return c.pred.HomBase(base)
}

// Compose implements Predicate with memoization keyed on interned operands.
func (c *Cached) Compose(f wterm.Gluing, c1, c2 Class) (Class, bool, error) {
	id, ok, err := c.ComposeIDs(c.InternGluing(f), c.in.Intern(c1), c.in.Intern(c2))
	if err != nil || !ok {
		return nil, ok, err
	}
	return c.in.Class(id), true, nil
}

// Accepting implements Predicate with per-class memoization.
func (c *Cached) Accepting(cl Class) (bool, error) {
	return c.AcceptingID(c.in.Intern(cl))
}

// Selection implements Predicate with per-class memoization.
func (c *Cached) Selection(cl Class) (Selection, error) {
	return c.SelectionID(c.in.Intern(cl))
}

// DecodeClass implements Predicate via the intern-by-wire fast path.
func (c *Cached) DecodeClass(data []byte) (Class, error) {
	id, err := c.InternWire(data)
	if err != nil {
		return nil, err
	}
	return c.in.Class(id), nil
}
