package regular

import (
	"sync"

	"repro/internal/wterm"
)

// GluingID is a dense identifier for an interned gluing signature.
type GluingID int32

// DefaultComposeCap bounds the ⊙_f memo table. A bounded-treedepth run
// needs |gluings| · |C|² entries at most, far below this; the cap exists so
// adversarial inputs cannot grow the memo without bound.
const DefaultComposeCap = 1 << 20

// CacheStats counts cache traffic for one Cached instance. Counters are
// plain totals so per-node stats can be summed into a run aggregate.
type CacheStats struct {
	Classes          int   `json:"classes"`           // distinct interned classes
	Gluings          int   `json:"gluings"`           // distinct gluing signatures
	ComposeHits      int64 `json:"compose_hits"`      // memoized ⊙_f lookups served
	ComposeMisses    int64 `json:"compose_misses"`    // ⊙_f computed and inserted
	ComposeEntries   int   `json:"compose_entries"`   // live memo entries
	ComposeEvictions int64 `json:"compose_evictions"` // entries dropped at the cap
	AcceptHits       int64 `json:"accept_hits"`
	AcceptMisses     int64 `json:"accept_misses"`
	SelectionHits    int64 `json:"selection_hits"`
	SelectionMisses  int64 `json:"selection_misses"`
	DecodeHits       int64 `json:"decode_hits"` // wire keys resolved without DecodeClass
	DecodeMisses     int64 `json:"decode_misses"`
}

// Add returns the field-wise sum of two stat records (gauges take the max).
func (s CacheStats) Add(o CacheStats) CacheStats {
	s.ComposeHits += o.ComposeHits
	s.ComposeMisses += o.ComposeMisses
	s.ComposeEvictions += o.ComposeEvictions
	s.AcceptHits += o.AcceptHits
	s.AcceptMisses += o.AcceptMisses
	s.SelectionHits += o.SelectionHits
	s.SelectionMisses += o.SelectionMisses
	s.DecodeHits += o.DecodeHits
	s.DecodeMisses += o.DecodeMisses
	if o.Classes > s.Classes {
		s.Classes = o.Classes
	}
	if o.Gluings > s.Gluings {
		s.Gluings = o.Gluings
	}
	if o.ComposeEntries > s.ComposeEntries {
		s.ComposeEntries = o.ComposeEntries
	}
	return s
}

// ComposeHitRate returns the fraction of ⊙_f calls served from the memo.
func (s CacheStats) ComposeHitRate() float64 {
	total := s.ComposeHits + s.ComposeMisses
	if total == 0 {
		return 0
	}
	return float64(s.ComposeHits) / float64(total)
}

// LookupHitRate returns the fraction of all memo lookups (compose, accept,
// selection, decode) served without touching the wrapped predicate.
func (s CacheStats) LookupHitRate() float64 {
	hits := s.ComposeHits + s.AcceptHits + s.SelectionHits + s.DecodeHits
	total := hits + s.ComposeMisses + s.AcceptMisses + s.SelectionMisses + s.DecodeMisses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

type composeKey struct {
	g    GluingID
	a, b ClassID
}

// composeVal is NoClass when the pair is incompatible under the gluing.
type composeVal struct{ id ClassID }

// cacheCore holds all memoized state: the interner, the gluing table, the
// two-generation ⊙_f memo, and the dense per-class Accepting/Selection
// memos. A private core (mu nil) is owned by exactly one Cached and is
// accessed without synchronization; a shared core (mu set) is owned by a
// Shared and accessed concurrently through per-goroutine handles.
type cacheCore struct {
	pred Predicate
	// mu, when non-nil, guards every field below. Lookups take the read
	// lock; interning, memo inserts, and calls into the wrapped predicate
	// take the write lock (predicates need only be single-threaded safe).
	mu *sync.RWMutex

	in *Interner

	gluingIDs map[string]GluingID
	gluings   []wterm.Gluing

	// Compose memo in two generations (segments): lookups consult cur then
	// prev; inserts go to cur. When cur fills half the cap, the prev segment
	// is dropped whole — a deterministic eviction (no map-iteration order
	// involved) that sheds at most half the memo, so sustained workloads see
	// a sliding window of recent compositions instead of the periodic
	// latency cliff a full flush caused.
	cur, prev  map[composeKey]composeVal
	composeCap int

	// Dense per-ClassID memos, grown on demand.
	accept []uint8 // 0 unknown, 1 false, 2 true
	sel    []Selection
	selOK  []bool

	// evictions counts entries dropped at the cap — incremented exactly once
	// per dropped entry, at the rotation that drops its whole segment.
	evictions int64
}

func newCacheCore(pred Predicate) *cacheCore {
	return &cacheCore{
		pred:       pred,
		in:         NewInterner(),
		gluingIDs:  make(map[string]GluingID),
		cur:        make(map[composeKey]composeVal),
		composeCap: DefaultComposeCap,
	}
}

// segCap is the per-generation entry bound: half the configured cap, so the
// two live generations together never exceed it.
func (k *cacheCore) segCap() int {
	half := k.composeCap / 2
	if half < 1 {
		half = 1
	}
	return half
}

// lookupCompose consults both generations; the caller holds the appropriate
// lock in shared mode.
//
//dmclint:requires-lock mu
func (k *cacheCore) lookupCompose(key composeKey) (composeVal, bool) {
	if v, ok := k.cur[key]; ok {
		return v, true
	}
	v, ok := k.prev[key]
	return v, ok
}

// insertCompose stores a freshly computed entry, rotating the generations at
// the cap. The caller holds the write lock in shared mode.
//
//dmclint:requires-lock mu
func (k *cacheCore) insertCompose(key composeKey, v composeVal) {
	if len(k.cur) >= k.segCap() {
		k.evictions += int64(len(k.prev))
		k.prev = k.cur
		k.cur = make(map[composeKey]composeVal, len(k.prev))
	}
	k.cur[key] = v
}

// liveCompose is the current memo size across both generations; the caller
// holds at least a read lock in shared mode.
//
//dmclint:requires-lock mu
func (k *cacheCore) liveCompose() int { return len(k.cur) + len(k.prev) }

// Cached wraps a Predicate with an interner and deterministic memoization of
// the expensive calls: Compose per (gluing signature, ClassID, ClassID),
// Accepting and Selection per ClassID, and wire decoding per key. Because
// Predicate implementations are required to be deterministic functions of
// their arguments, replaying a memoized result is observationally identical
// to recomputing it — cached and uncached runs produce byte-identical tables
// regardless of hit pattern or evictions.
//
// Cached itself implements Predicate, so it is a drop-in wrapper for the
// map-based fold functions; the dense fold methods in dense.go skip the
// string keys entirely and are the fast path.
//
// A Cached built by NewCached owns its memo state privately and is not safe
// for concurrent use; give each goroutine (each simulated node) its own
// instance. A Cached returned by Shared.Handle shares the process-lifetime
// memo state of its Shared, is safe to use from one goroutine at a time, and
// any number of handles may run concurrently.
type Cached struct {
	*cacheCore

	// sh points back to the owning Shared for handles, so global counters
	// can be maintained alongside the handle-local ones (nil for private
	// caches).
	sh *Shared

	// Fold scratch: slot[id] = output index in the fold in progress, valid
	// when stamp[id] == epoch. Reusing it across folds keeps the inner loop
	// free of map operations and allocations. Always handle-local.
	slot  []int32
	stamp []uint32
	epoch uint32

	// stats counts this handle's own traffic (never shared, so reads and
	// writes need no synchronization).
	stats CacheStats
}

var _ Predicate = (*Cached)(nil)

// NewCached wraps pred with a fresh private interner and empty memo tables.
func NewCached(pred Predicate) *Cached {
	return &Cached{cacheCore: newCacheCore(pred)}
}

// SetComposeCap overrides the compose-memo entry bound (n <= 0 restores the
// default). The bound is enforced per generation at n/2, so at most n
// entries are ever live and at most n/2 drop in one eviction.
func (c *Cached) SetComposeCap(n int) {
	if n <= 0 {
		n = DefaultComposeCap
	}
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.composeCap = n
}

// Predicate returns the wrapped predicate.
func (c *Cached) Predicate() Predicate { return c.pred }

// Interner exposes the class interner (ID <-> key/class lookups). It is only
// safe to use directly on a private Cached; shared handles must go through
// the locked accessors (KeyOf, ClassOf, LookupKey).
func (c *Cached) Interner() *Interner { return c.in }

// Stats returns a snapshot of this instance's counters. For a private Cached
// the gauges describe the whole cache; for a shared handle the counters
// describe this handle's traffic only and ComposeEvictions is reported as
// zero — evictions happen once at the shared core and are reported by
// Shared.Stats, so summing handle stats never double-counts them.
func (c *Cached) Stats() CacheStats {
	s := c.stats
	if c.mu != nil {
		c.mu.RLock()
		s.Classes = c.in.Len()
		s.Gluings = len(c.gluings)
		s.ComposeEntries = c.liveCompose()
		c.mu.RUnlock()
		return s
	}
	s.Classes = c.in.Len()
	s.Gluings = len(c.gluings)
	s.ComposeEntries = c.liveCompose()
	s.ComposeEvictions = c.evictions
	return s
}

// GluingKey returns the canonical byte signature of a gluing: (N1, N2, rows)
// little-endian. Two gluings compose identically iff their signatures match.
func GluingKey(f wterm.Gluing) string {
	b := make([]byte, 0, 4+4*len(f.Rows))
	b = append(b, byte(f.N1), byte(f.N1>>8), byte(f.N2), byte(f.N2>>8))
	for _, row := range f.Rows {
		b = append(b, byte(row[0]), byte(row[0]>>8), byte(row[1]), byte(row[1]>>8))
	}
	return string(b)
}

// InternGluing interns f's signature and returns its dense ID.
func (c *Cached) InternGluing(f wterm.Gluing) GluingID {
	key := GluingKey(f)
	if c.mu == nil {
		return c.internGluingLocked(key, f)
	}
	c.mu.RLock()
	id, ok := c.gluingIDs[key]
	c.mu.RUnlock()
	if ok {
		return id
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.internGluingLocked(key, f)
}

// internGluingLocked assigns (or finds) the dense ID for a gluing key. The
// caller holds the write lock in shared mode.
//
//dmclint:requires-lock mu
func (c *Cached) internGluingLocked(key string, f wterm.Gluing) GluingID {
	if id, ok := c.gluingIDs[key]; ok {
		return id
	}
	id := GluingID(len(c.gluings))
	c.gluingIDs[key] = id
	c.gluings = append(c.gluings, f)
	return id
}

// Intern interns a class and returns its ID.
func (c *Cached) Intern(cl Class) ClassID {
	if c.mu == nil {
		return c.in.Intern(cl)
	}
	key := cl.Key()
	c.mu.RLock()
	id, ok := c.in.Lookup(key)
	c.mu.RUnlock()
	if ok {
		return id
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.in.InternKeyed(key, cl)
}

// KeyOf returns the canonical key for an interned ID (the locked counterpart
// of Interner().Key).
func (c *Cached) KeyOf(id ClassID) string {
	if c.mu == nil {
		return c.in.Key(id)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.in.Key(id)
}

// ClassOf returns the stored representative for an interned ID (the locked
// counterpart of Interner().Class).
func (c *Cached) ClassOf(id ClassID) Class {
	if c.mu == nil {
		return c.in.Class(id)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.in.Class(id)
}

// LookupKey resolves a canonical key to its interned ID, if any (the locked
// counterpart of Interner().Lookup).
func (c *Cached) LookupKey(key string) (ClassID, bool) {
	if c.mu == nil {
		return c.in.Lookup(key)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.in.Lookup(key)
}

// InternWire resolves a class wire encoding to an ID. Keys double as the
// wire format, so an encoding seen before resolves without calling
// DecodeClass at all — the fast path for repeated table entries arriving
// from children (and, for shared caches, from earlier requests).
func (c *Cached) InternWire(data []byte) (ClassID, error) {
	if c.mu == nil {
		if id, ok := c.in.Lookup(string(data)); ok {
			c.stats.DecodeHits++
			return id, nil
		}
		c.stats.DecodeMisses++
		cl, err := c.pred.DecodeClass(data)
		if err != nil {
			return NoClass, err
		}
		return c.in.Intern(cl), nil
	}
	c.mu.RLock()
	id, ok := c.in.Lookup(string(data))
	c.mu.RUnlock()
	if ok {
		c.stats.DecodeHits++
		c.sh.decodeHits.Add(1)
		return id, nil
	}
	c.stats.DecodeMisses++
	c.sh.decodeMisses.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.in.Lookup(string(data)); ok {
		// Another handle decoded the same bytes while we waited.
		return id, nil
	}
	cl, err := c.pred.DecodeClass(data)
	if err != nil {
		return NoClass, err
	}
	return c.in.Intern(cl), nil
}

// ComposeIDs is the memoized update function ⊙_f on interned operands. The
// boolean mirrors Predicate.Compose: false means the pair is incompatible
// under the gluing (also memoized).
func (c *Cached) ComposeIDs(g GluingID, a, b ClassID) (ClassID, bool, error) {
	key := composeKey{g: g, a: a, b: b}
	if c.mu == nil {
		if v, ok := c.lookupCompose(key); ok {
			c.stats.ComposeHits++
			return v.id, v.id != NoClass, nil
		}
		c.stats.ComposeMisses++
		return c.composeMissLocked(key)
	}
	c.mu.RLock()
	v, ok := c.lookupCompose(key)
	c.mu.RUnlock()
	if ok {
		c.stats.ComposeHits++
		c.sh.composeHits.Add(1)
		return v.id, v.id != NoClass, nil
	}
	c.stats.ComposeMisses++
	c.sh.composeMisses.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.lookupCompose(key); ok {
		// Another handle computed the same entry while we waited; the result
		// is identical either way (Compose is deterministic), so serve it
		// without re-deriving.
		return v.id, v.id != NoClass, nil
	}
	return c.composeMissLocked(key)
}

// composeMissLocked computes, interns, and memoizes one ⊙_f entry. The
// caller holds the write lock in shared mode (the wrapped predicate is only
// ever called single-threaded).
//
//dmclint:requires-lock mu
func (c *Cached) composeMissLocked(key composeKey) (ClassID, bool, error) {
	cl, ok, err := c.pred.Compose(c.gluings[key.g], c.in.Class(key.a), c.in.Class(key.b))
	if err != nil {
		return NoClass, false, err
	}
	v := composeVal{id: NoClass}
	if ok {
		v.id = c.in.Intern(cl)
	}
	c.insertCompose(key, v)
	return v.id, ok, nil
}

// AcceptingID is the memoized acceptance test.
func (c *Cached) AcceptingID(id ClassID) (bool, error) {
	if c.mu == nil {
		c.growClassMemos()
		if v := c.accept[id]; v != 0 {
			c.stats.AcceptHits++
			return v == 2, nil
		}
		c.stats.AcceptMisses++
		return c.acceptMissLocked(id)
	}
	c.mu.RLock()
	var v uint8
	if int(id) < len(c.accept) {
		v = c.accept[id]
	}
	c.mu.RUnlock()
	if v != 0 {
		c.stats.AcceptHits++
		c.sh.acceptHits.Add(1)
		return v == 2, nil
	}
	c.stats.AcceptMisses++
	c.sh.acceptMisses.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.growClassMemos()
	if v := c.accept[id]; v != 0 {
		return v == 2, nil
	}
	return c.acceptMissLocked(id)
}

// acceptMissLocked computes and memoizes one Accepting entry. The caller
// holds the write lock in shared mode.
//
//dmclint:requires-lock mu
func (c *Cached) acceptMissLocked(id ClassID) (bool, error) {
	ok, err := c.pred.Accepting(c.in.Class(id))
	if err != nil {
		return false, err
	}
	if ok {
		c.accept[id] = 2
	} else {
		c.accept[id] = 1
	}
	return ok, nil
}

// SelectionID is the memoized selection decoding.
func (c *Cached) SelectionID(id ClassID) (Selection, error) {
	if c.mu == nil {
		c.growClassMemos()
		if c.selOK[id] {
			c.stats.SelectionHits++
			return c.sel[id], nil
		}
		c.stats.SelectionMisses++
		return c.selectionMissLocked(id)
	}
	c.mu.RLock()
	var sel Selection
	ok := false
	if int(id) < len(c.selOK) && c.selOK[id] {
		sel, ok = c.sel[id], true
	}
	c.mu.RUnlock()
	if ok {
		c.stats.SelectionHits++
		c.sh.selectionHits.Add(1)
		return sel, nil
	}
	c.stats.SelectionMisses++
	c.sh.selectionMisses.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.growClassMemos()
	if c.selOK[id] {
		return c.sel[id], nil
	}
	return c.selectionMissLocked(id)
}

// selectionMissLocked computes and memoizes one Selection entry. The caller
// holds the write lock in shared mode.
//
//dmclint:requires-lock mu
func (c *Cached) selectionMissLocked(id ClassID) (Selection, error) {
	sel, err := c.pred.Selection(c.in.Class(id))
	if err != nil {
		return Selection{}, err
	}
	c.sel[id] = sel
	c.selOK[id] = true
	return sel, nil
}

// growClassMemos extends the dense per-class memo slices to cover every
// interned ID. The caller holds the write lock in shared mode.
//
//dmclint:requires-lock mu
func (c *Cached) growClassMemos() {
	n := c.in.Len()
	for len(c.accept) < n {
		c.accept = append(c.accept, 0)
	}
	for len(c.sel) < n {
		c.sel = append(c.sel, Selection{})
		c.selOK = append(c.selOK, false)
	}
}

// homBase enumerates base classes through the wrapped predicate, serialized
// in shared mode (predicates may keep single-threaded internal memos, e.g.
// the generic MSO engine's pattern cache).
func (c *Cached) homBase(base *wterm.TerminalGraph) ([]BaseClass, error) {
	if c.mu == nil {
		return c.pred.HomBase(base)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pred.HomBase(base)
}

// SortCanonical sorts ids into canonical key order — the lock-aware
// counterpart of Interner().SortCanonical, safe on shared handles.
func (c *Cached) SortCanonical(ids []ClassID) { c.sortCanonical(ids) }

// sortCanonical is Interner.SortCanonical behind the shared lock (rank
// maintenance mutates the interner even on the read path).
func (c *Cached) sortCanonical(ids []ClassID) {
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.in.SortCanonical(ids)
}

// --- Predicate interface (drop-in wrapper form) ---

// Name implements Predicate.
func (c *Cached) Name() string { return c.pred.Name() }

// SetKind implements Predicate.
func (c *Cached) SetKind() SetKind { return c.pred.SetKind() }

// HomBase implements Predicate (base enumeration is already linear in its
// output; shared handles serialize the underlying call).
func (c *Cached) HomBase(base *wterm.TerminalGraph) ([]BaseClass, error) {
	return c.homBase(base)
}

// Compose implements Predicate with memoization keyed on interned operands.
func (c *Cached) Compose(f wterm.Gluing, c1, c2 Class) (Class, bool, error) {
	id, ok, err := c.ComposeIDs(c.InternGluing(f), c.Intern(c1), c.Intern(c2))
	if err != nil || !ok {
		return nil, ok, err
	}
	return c.ClassOf(id), true, nil
}

// Accepting implements Predicate with per-class memoization.
func (c *Cached) Accepting(cl Class) (bool, error) {
	return c.AcceptingID(c.Intern(cl))
}

// Selection implements Predicate with per-class memoization.
func (c *Cached) Selection(cl Class) (Selection, error) {
	return c.SelectionID(c.Intern(cl))
}

// DecodeClass implements Predicate via the intern-by-wire fast path.
func (c *Cached) DecodeClass(data []byte) (Class, error) {
	id, err := c.InternWire(data)
	if err != nil {
		return nil, err
	}
	return c.ClassOf(id), nil
}
