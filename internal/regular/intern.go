package regular

import "sort"

// ClassID is a dense per-run identifier for an interned homomorphism class.
// IDs are assigned in first-seen order by one Interner and are meaningful
// only relative to it; the canonical (wire/tie-breaking) order remains the
// lexicographic order of class keys, which the Interner tracks incrementally
// so tables never re-sort strings.
type ClassID int32

// NoClass is the sentinel for "no class" (incompatible compositions, absent
// back-pointers).
const NoClass ClassID = -1

// Interner maps canonical class keys to dense ClassIDs with O(1) lookups in
// both directions. A bounded-treedepth run touches only O(2^d)-ish distinct
// classes while folding thousands of (class, class) pairs, so interning once
// and comparing int32s afterwards removes the per-fold string hashing and
// key sorting the map-based tables paid for.
type Interner struct {
	byKey   map[string]ClassID
	classes []Class
	keys    []string
	// sorted holds every interned ID in lexicographic key order and is
	// maintained incrementally (binary insertion) as classes are interned;
	// rank is its inverse, rebuilt lazily.
	sorted []ClassID
	rank   []int32
	rankOK bool
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{byKey: make(map[string]ClassID)}
}

// Len returns the number of distinct classes interned.
func (in *Interner) Len() int { return len(in.classes) }

// Intern returns the ID of c's class, interning it on first sight. Classes
// are identified by their canonical Key; the first representative seen is
// the one stored (key-equal classes are interchangeable by the Predicate
// contract).
func (in *Interner) Intern(c Class) ClassID {
	return in.InternKeyed(c.Key(), c)
}

// InternKeyed is Intern for callers that already hold the class key,
// avoiding a redundant Key() call.
func (in *Interner) InternKeyed(key string, c Class) ClassID {
	if id, ok := in.byKey[key]; ok {
		return id
	}
	id := ClassID(len(in.classes))
	in.byKey[key] = id
	in.classes = append(in.classes, c)
	in.keys = append(in.keys, key)
	// Keep the canonical order current: binary-insert the new ID. The
	// distinct-class universe is small (O(2^d) shapes), so the memmove is
	// cheap and amortizes the string sorts the old tables did per fold.
	pos := sort.Search(len(in.sorted), func(i int) bool { return in.keys[in.sorted[i]] >= key })
	in.sorted = append(in.sorted, 0)
	copy(in.sorted[pos+1:], in.sorted[pos:])
	in.sorted[pos] = id
	in.rankOK = false
	return id
}

// Lookup returns the ID previously interned for key, if any.
func (in *Interner) Lookup(key string) (ClassID, bool) {
	id, ok := in.byKey[key]
	return id, ok
}

// Class returns the stored representative for id.
func (in *Interner) Class(id ClassID) Class { return in.classes[id] }

// Key returns the canonical key for id.
func (in *Interner) Key(id ClassID) string { return in.keys[id] }

// Rank returns id's position in the canonical (key-sorted) order over all
// classes interned so far. Ranks shift as new classes arrive, but the
// relative order of existing IDs never changes, so sorting by rank always
// reproduces key order.
func (in *Interner) Rank(id ClassID) int32 {
	in.ensureRank()
	return in.rank[id]
}

// SortCanonical sorts ids into canonical key order using integer rank
// comparisons — the "computed once" iteration order dense tables rely on.
func (in *Interner) SortCanonical(ids []ClassID) {
	in.ensureRank()
	rank := in.rank
	sort.Slice(ids, func(i, j int) bool { return rank[ids[i]] < rank[ids[j]] })
}

func (in *Interner) ensureRank() {
	if in.rankOK {
		return
	}
	if cap(in.rank) < len(in.sorted) {
		in.rank = make([]int32, len(in.sorted))
	} else {
		in.rank = in.rank[:len(in.sorted)]
	}
	for pos, id := range in.sorted {
		in.rank[id] = int32(pos)
	}
	in.rankOK = true
}
