package regular_test

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/wterm"
)

// edgeBase builds the 2-terminal base graph of an edge (owner rank 1).
func edgeBase(t *testing.T) *wterm.TerminalGraph {
	t.Helper()
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	g.SetVertexWeight(0, 3)
	g.SetVertexWeight(1, 5)
	g.SetEdgeWeight(0, 7)
	base, err := wterm.BaseFromBag(g, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func TestNormalizeEdgePairs(t *testing.T) {
	pairs := [][2]int{{3, 1}, {0, 2}, {1, 3}, {0, 1}}
	out := regular.NormalizeEdgePairs(pairs)
	want := [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 3}}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestBetter(t *testing.T) {
	if !regular.Better(3, 2, true) || regular.Better(2, 3, true) {
		t.Fatal("maximize direction wrong")
	}
	if !regular.Better(2, 3, false) || regular.Better(3, 2, false) {
		t.Fatal("minimize direction wrong")
	}
	if regular.Better(3, 3, true) || regular.Better(3, 3, false) {
		t.Fatal("ties should not be better")
	}
}

func TestBaseWeightVertexKind(t *testing.T) {
	base := edgeBase(t)
	// Only the owner (rank 1, weight 5) counts; ancestors' weights are
	// charged at their own base graphs.
	w, err := regular.BaseWeight(base, 1, regular.Selection{VertexMask: 0b11})
	if err != nil {
		t.Fatal(err)
	}
	if w != 5 {
		t.Fatalf("weight = %d, want 5 (owner only)", w)
	}
	w, err = regular.BaseWeight(base, 1, regular.Selection{VertexMask: 0b01})
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Fatalf("weight = %d, want 0 (only the ancestor selected)", w)
	}
}

func TestBaseWeightEdgeKind(t *testing.T) {
	base := edgeBase(t)
	w, err := regular.BaseWeight(base, 1, regular.Selection{EdgePairs: [][2]int{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if w != 7 {
		t.Fatalf("weight = %d, want 7", w)
	}
	if _, err := regular.BaseWeight(base, 1, regular.Selection{EdgePairs: [][2]int{{0, 0}}}); err == nil {
		t.Fatal("non-edge pair should error")
	}
}

func TestClassSetAndTables(t *testing.T) {
	p := predicates.IndependentSet{}
	base := edgeBase(t)
	cs, err := regular.BaseClassSet(p, base)
	if err != nil {
		t.Fatal(err)
	}
	// Selections over 2 adjacent terminals: {}, {0}, {1} — not {0,1}.
	if len(cs) != 3 {
		t.Fatalf("class set size = %d, want 3", len(cs))
	}
	keys := cs.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("Keys must be sorted")
		}
	}
	opt, err := regular.BaseOptTable(p, base, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) != 3 {
		t.Fatalf("opt table size = %d", len(opt))
	}
	cnt, err := regular.BaseCountTable(p, base)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, k := range cnt.Keys() {
		total += cnt[k].Count
	}
	if total != 3 {
		t.Fatalf("count total = %d, want 3", total)
	}
}

func TestFoldDecideIdentityGluing(t *testing.T) {
	p := predicates.IndependentSet{}
	base := edgeBase(t)
	cs, err := regular.BaseClassSet(p, base)
	if err != nil {
		t.Fatal(err)
	}
	glue, err := wterm.GluingFromBags([]int{0, 1}, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Identity self-fold: compatible pairs are exactly the matching
	// selections, so the size is unchanged.
	out, err := regular.FoldDecide(p, glue, cs, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(cs) {
		t.Fatalf("fold size = %d, want %d", len(out), len(cs))
	}
}

func TestAnyAcceptingAndBest(t *testing.T) {
	p := predicates.IndependentSet{}
	base := edgeBase(t)
	cs, err := regular.BaseClassSet(p, base)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := regular.AnyAccepting(p, cs)
	if err != nil || !ok {
		t.Fatalf("AnyAccepting = %v, %v", ok, err)
	}
	opt, err := regular.BaseOptTable(p, base, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	best, found, err := regular.BestAccepting(p, opt, true)
	if err != nil || !found {
		t.Fatal(err)
	}
	if best.Weight != 5 { // select the owner
		t.Fatalf("best = %d, want 5", best.Weight)
	}
	worst, found, err := regular.BestAccepting(p, opt, false)
	if err != nil || !found {
		t.Fatal(err)
	}
	if worst.Weight != 0 {
		t.Fatalf("min best = %d, want 0", worst.Weight)
	}
	// Empty table: not found.
	if _, found, err := regular.BestAccepting(p, regular.OptTable{}, true); err != nil || found {
		t.Fatal("empty table should be infeasible")
	}
}

func TestFoldCountOverflow(t *testing.T) {
	p := predicates.IndependentSet{}
	base := edgeBase(t)
	glue, err := wterm.GluingFromBags([]int{0, 1}, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := regular.BaseCountTable(p, base)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate a count near the overflow guard.
	for k, e := range cnt {
		e.Count = math.MaxInt64 / 2
		cnt[k] = e
	}
	if _, err := regular.FoldCount(p, glue, cnt, cnt); !errors.Is(err, regular.ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
}

// Property: Better is a strict total order on distinct weights.
func TestQuickBetterAntisymmetric(t *testing.T) {
	f := func(a, b int64, maximize bool) bool {
		if a == b {
			return !regular.Better(a, b, maximize) && !regular.Better(b, a, maximize)
		}
		return regular.Better(a, b, maximize) != regular.Better(b, a, maximize)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: NormalizeEdgePairs is idempotent and order-insensitive.
func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(raw [][2]int) bool {
		for i := range raw {
			raw[i][0] &= 0xF
			raw[i][1] &= 0xF
			if raw[i][0] < 0 {
				raw[i][0] = -raw[i][0]
			}
			if raw[i][1] < 0 {
				raw[i][1] = -raw[i][1]
			}
		}
		once := regular.NormalizeEdgePairs(append([][2]int(nil), raw...))
		twice := regular.NormalizeEdgePairs(append([][2]int(nil), once...))
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
