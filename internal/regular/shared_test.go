package regular_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/wterm"
)

// composePairs builds the full (gluing, class, class) workload off the edge
// base: every ordered pair of base classes under the identity-ish gluing.
func composePairs(t *testing.T, c *regular.Cached) (regular.GluingID, []regular.ClassID) {
	t.Helper()
	base := edgeBase(t)
	classes, err := c.HomBase(base)
	if err != nil {
		t.Fatal(err)
	}
	glue, err := wterm.GluingFromBags([]int{0, 1}, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]regular.ClassID, 0, len(classes))
	for _, bc := range classes {
		ids = append(ids, c.Intern(bc.Class))
	}
	return c.InternGluing(glue), ids
}

// TestEvictionStatsPinned pins the exact counter arithmetic of the
// two-generation eviction: a model of the documented policy (rotate when the
// current segment holds cap/2 entries, count each dropped entry once) must
// reproduce ComposeEvictions, ComposeEntries, ComposeHits, and ComposeMisses
// exactly. The old whole-memo flush failed this two ways: it dropped every
// entry at once (entries gauge collapsing to 1 after each flush) and its
// counter charged the full live size per flush, so an entry could be counted
// as evicted more than once across interleaved decode-path inserts.
func TestEvictionStatsPinned(t *testing.T) {
	const cap = 4
	c := regular.NewCached(predicates.IndependentSet{})
	c.SetComposeCap(cap)
	g, ids := composePairs(t, c)

	// Model state mirroring the documented policy.
	segCap := cap / 2
	cur := map[[2]regular.ClassID]bool{}
	prev := map[[2]regular.ClassID]bool{}
	var wantEvict, wantHits, wantMisses int64

	for pass := 0; pass < 3; pass++ {
		for _, a := range ids {
			for _, b := range ids {
				k := [2]regular.ClassID{a, b}
				if _, _, err := c.ComposeIDs(g, a, b); err != nil {
					t.Fatal(err)
				}
				if cur[k] || prev[k] {
					wantHits++
					continue
				}
				wantMisses++
				if len(cur) >= segCap {
					wantEvict += int64(len(prev))
					prev, cur = cur, map[[2]regular.ClassID]bool{}
				}
				cur[k] = true
			}
		}
	}

	st := c.Stats()
	if st.ComposeHits != wantHits || st.ComposeMisses != wantMisses {
		t.Fatalf("hits/misses = %d/%d, model wants %d/%d", st.ComposeHits, st.ComposeMisses, wantHits, wantMisses)
	}
	if st.ComposeEvictions != wantEvict {
		t.Fatalf("ComposeEvictions = %d, model wants %d", st.ComposeEvictions, wantEvict)
	}
	if st.ComposeEntries != len(cur)+len(prev) {
		t.Fatalf("ComposeEntries = %d, model wants %d", st.ComposeEntries, len(cur)+len(prev))
	}
	if st.ComposeEntries > cap {
		t.Fatalf("live entries %d exceed cap %d", st.ComposeEntries, cap)
	}
	// Each inserted entry is evicted at most once: the total ever evicted
	// can never exceed the total ever inserted (the double-count bug).
	if st.ComposeEvictions > st.ComposeMisses {
		t.Fatalf("evicted %d entries but only %d were ever inserted", st.ComposeEvictions, st.ComposeMisses)
	}
	if wantEvict == 0 {
		t.Fatal("fixture did not force an eviction; shrink the cap")
	}
}

// TestSharedMatchesPrivate is the golden-trace check: every answer a shared
// handle gives (compose results, acceptance, selections, wire decoding) must
// be byte-identical to a fresh private per-run cache, including while the
// shared memo is evicting under a tiny cap, and the Shared's global stats
// must count each eviction exactly once even with handle stats aggregated
// alongside.
func TestSharedMatchesPrivate(t *testing.T) {
	pred := predicates.IndependentSet{}
	sh := regular.NewShared(pred)
	sh.SetComposeCap(2)

	for run := 0; run < 3; run++ {
		h := sh.Handle()
		p := regular.NewCached(pred)
		g, ids := composePairs(t, h)
		gp, idsP := composePairs(t, p)
		if len(ids) != len(idsP) {
			t.Fatalf("class universes diverged: %d vs %d", len(ids), len(idsP))
		}
		for i, a := range ids {
			for j, b := range ids {
				id, ok, err := h.ComposeIDs(g, a, b)
				if err != nil {
					t.Fatal(err)
				}
				idP, okP, err := p.ComposeIDs(gp, idsP[i], idsP[j])
				if err != nil {
					t.Fatal(err)
				}
				if ok != okP {
					t.Fatalf("run %d: compatibility diverged at (%d,%d)", run, i, j)
				}
				if !ok {
					continue
				}
				if h.KeyOf(id) != p.KeyOf(idP) {
					t.Fatalf("run %d: compose key diverged at (%d,%d): %q vs %q",
						run, i, j, h.KeyOf(id), p.KeyOf(idP))
				}
				wid, err := h.InternWire([]byte(p.KeyOf(idP)))
				if err != nil {
					t.Fatal(err)
				}
				if wid != id {
					t.Fatalf("run %d: wire round-trip diverged at (%d,%d)", run, i, j)
				}
			}
		}
		for i, id := range ids {
			accS, err := h.AcceptingID(id)
			if err != nil {
				t.Fatal(err)
			}
			accP, err := p.AcceptingID(idsP[i])
			if err != nil {
				t.Fatal(err)
			}
			if accS != accP {
				t.Fatalf("run %d: Accepting diverged for class %d", run, i)
			}
			selS, err := h.SelectionID(id)
			if err != nil {
				t.Fatal(err)
			}
			selP, err := p.SelectionID(idsP[i])
			if err != nil {
				t.Fatal(err)
			}
			if selS.VertexMask != selP.VertexMask || fmt.Sprint(selS.EdgePairs) != fmt.Sprint(selP.EdgePairs) {
				t.Fatalf("run %d: Selection diverged for class %d", run, i)
			}
		}
		// Handle stats never report core-global evictions...
		if hs := h.Stats(); hs.ComposeEvictions != 0 {
			t.Fatalf("handle reported global evictions: %+v", hs)
		}
	}
	// ...the Shared does, bounded by the entries ever inserted.
	gs := sh.Stats()
	if gs.ComposeEvictions == 0 {
		t.Fatalf("cap 2 across 3 runs should have evicted: %+v", gs)
	}
	if gs.ComposeEvictions > gs.ComposeMisses {
		t.Fatalf("evictions %d exceed insertions %d", gs.ComposeEvictions, gs.ComposeMisses)
	}
	if gs.ComposeEntries > 2 {
		t.Fatalf("live entries %d exceed cap 2", gs.ComposeEntries)
	}
	// Runs 2 and 3 replay run 1's universe: the warm shared cache must show
	// cross-run reuse on the never-evicted memos (per-class accept/selection,
	// decode-by-key). The compose memo itself cannot hold the 9-pair working
	// set under cap 2 — that starvation is exactly what the eviction test
	// above models.
	if gs.AcceptHits == 0 || gs.SelectionHits == 0 || gs.DecodeHits == 0 {
		t.Fatalf("warm runs produced no shared hits: %+v", gs)
	}
}

// TestSharedRaceStress hammers one Shared from many goroutines issuing mixed
// Compose/Accepting/Selection/decode lookups while a tiny cap forces
// continuous eviction. Each goroutine checks every answer against its own
// private cache, so the test fails on wrong answers as well as data races
// (run under -race in CI).
func TestSharedRaceStress(t *testing.T) {
	pred := predicates.IndependentSet{}
	sh := regular.NewShared(pred)
	sh.SetComposeCap(4)

	base := edgeBase(t)
	glue, err := wterm.GluingFromBags([]int{0, 1}, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// intern builds one cache's view of the workload (error-returning so
	// worker goroutines never call t.Fatal).
	intern := func(c *regular.Cached) (regular.GluingID, []regular.ClassID, error) {
		classes, err := c.HomBase(base)
		if err != nil {
			return 0, nil, err
		}
		ids := make([]regular.ClassID, 0, len(classes))
		for _, bc := range classes {
			ids = append(ids, c.Intern(bc.Class))
		}
		return c.InternGluing(glue), ids, nil
	}

	const goroutines = 8
	const passes = 50
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := sh.Handle()
			p := regular.NewCached(pred)
			g, ids, err := intern(h)
			if err != nil {
				errc <- err
				return
			}
			gp, idsP, err := intern(p)
			if err != nil {
				errc <- err
				return
			}
			for pass := 0; pass < passes; pass++ {
				for i, a := range ids {
					for j, b := range ids {
						id, ok, err := h.ComposeIDs(g, a, b)
						if err != nil {
							errc <- err
							return
						}
						idP, okP, err := p.ComposeIDs(gp, idsP[i], idsP[j])
						if err != nil {
							errc <- err
							return
						}
						if ok != okP || (ok && h.KeyOf(id) != p.KeyOf(idP)) {
							errc <- fmt.Errorf("goroutine %d pass %d: compose diverged at (%d,%d)", w, pass, i, j)
							return
						}
					}
				}
				for i, id := range ids {
					accS, err := h.AcceptingID(id)
					if err != nil {
						errc <- err
						return
					}
					accP, err := p.AcceptingID(idsP[i])
					if err != nil {
						errc <- err
						return
					}
					selS, err := h.SelectionID(id)
					if err != nil {
						errc <- err
						return
					}
					selP, err := p.SelectionID(idsP[i])
					if err != nil {
						errc <- err
						return
					}
					if accS != accP || selS.VertexMask != selP.VertexMask {
						errc <- fmt.Errorf("goroutine %d pass %d: accept/selection diverged for class %d", w, pass, i)
						return
					}
					if _, err := h.InternWire([]byte(p.KeyOf(idsP[i]))); err != nil {
						errc <- err
						return
					}
				}
			}
			errc <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < goroutines; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	gs := sh.Stats()
	if gs.ComposeEvictions == 0 {
		t.Fatalf("stress run with cap 4 should have evicted: %+v", gs)
	}
	if gs.ComposeEvictions > gs.ComposeMisses {
		t.Fatalf("evictions %d exceed insertions %d", gs.ComposeEvictions, gs.ComposeMisses)
	}
}
