package regular

import (
	"fmt"

	"repro/internal/wterm"
)

// Dense tables are the interned counterparts of ClassSet/OptTable/CountTable:
// class IDs in canonical (key-sorted) order with parallel value slices. The
// canonical order is established once per table with integer rank
// comparisons (Interner.SortCanonical) instead of the per-fold string sort
// the map-based tables performed, and fold accumulation indexes a dense
// scratch array instead of hashing string keys.

// DenseSet is a decision-mode table: reachable class IDs in canonical order.
type DenseSet struct {
	IDs []ClassID
}

// DenseOpt is an OPT table: Weights[i] is the best weight of class IDs[i].
type DenseOpt struct {
	IDs     []ClassID
	Weights []int64
}

// DenseCount is a COUNT table: Counts[i] is the assignment count of IDs[i].
type DenseCount struct {
	IDs    []ClassID
	Counts []int64
}

// DenseBack is the ARGOPT back-pointer of one result class: the operand
// classes that produced its best weight.
type DenseBack struct {
	Acc   ClassID
	Child ClassID
}

// AddWeights is checked signed 64-bit addition for OPT weight sums,
// returning ErrOverflow instead of wrapping silently.
func AddWeights(a, b int64) (int64, error) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, fmt.Errorf("%w: weight %d + %d", ErrOverflow, a, b)
	}
	return s, nil
}

// nextEpoch advances the fold-scratch epoch, clearing stamps on the (in
// practice unreachable) uint32 wraparound.
func (c *Cached) nextEpoch() {
	c.epoch++
	if c.epoch == 0 {
		for i := range c.stamp {
			c.stamp[i] = 0
		}
		c.epoch = 1
	}
}

// ensureScratch extends the fold scratch to cover id.
func (c *Cached) ensureScratch(id ClassID) {
	for int(id) >= len(c.slot) {
		c.slot = append(c.slot, 0)
		c.stamp = append(c.stamp, 0)
	}
}

// FoldDecideDense computes the class set of f(acc, child); the dense
// counterpart of FoldDecide, iterating both operands in canonical order.
func (c *Cached) FoldDecideDense(g GluingID, acc, child DenseSet) (DenseSet, error) {
	c.nextEpoch()
	out := make([]ClassID, 0, len(acc.IDs))
	for _, a := range acc.IDs {
		for _, b := range child.IDs {
			id, ok, err := c.ComposeIDs(g, a, b)
			if err != nil {
				return DenseSet{}, err
			}
			if !ok {
				continue
			}
			c.ensureScratch(id)
			if c.stamp[id] != c.epoch {
				c.stamp[id] = c.epoch
				out = append(out, id)
			}
		}
	}
	c.sortCanonical(out)
	return DenseSet{IDs: out}, nil
}

// FoldOptDense computes OPT(f(acc, child)) and per-result back-pointers; the
// dense counterpart of FoldOpt. Iteration order matches the map-based fold
// (canonical order, first strictly-better pair wins), so back-pointers and
// tie-breaking are identical.
func (c *Cached) FoldOptDense(g GluingID, acc, child DenseOpt, maximize bool) (DenseOpt, map[ClassID]DenseBack, error) {
	c.nextEpoch()
	ids := make([]ClassID, 0, len(acc.IDs))
	weights := make([]int64, 0, len(acc.IDs))
	backs := make([]DenseBack, 0, len(acc.IDs))
	for ai, a := range acc.IDs {
		aw := acc.Weights[ai]
		for bi, b := range child.IDs {
			id, ok, err := c.ComposeIDs(g, a, b)
			if err != nil {
				return DenseOpt{}, nil, err
			}
			if !ok {
				continue
			}
			w, err := AddWeights(aw, child.Weights[bi])
			if err != nil {
				return DenseOpt{}, nil, err
			}
			c.ensureScratch(id)
			if c.stamp[id] != c.epoch {
				c.stamp[id] = c.epoch
				c.slot[id] = int32(len(ids))
				ids = append(ids, id)
				weights = append(weights, w)
				backs = append(backs, DenseBack{Acc: a, Child: b})
			} else if s := c.slot[id]; Better(w, weights[s], maximize) {
				weights[s] = w
				backs[s] = DenseBack{Acc: a, Child: b}
			}
		}
	}
	out := DenseOpt{IDs: ids, Weights: weights}
	back := make(map[ClassID]DenseBack, len(ids))
	for i, id := range ids {
		back[id] = backs[i]
	}
	c.sortOpt(&out)
	return out, back, nil
}

// FoldCountDense computes COUNT(f(acc, child)) with overflow checking; the
// dense counterpart of FoldCount.
func (c *Cached) FoldCountDense(g GluingID, acc, child DenseCount) (DenseCount, error) {
	c.nextEpoch()
	ids := make([]ClassID, 0, len(acc.IDs))
	counts := make([]int64, 0, len(acc.IDs))
	for ai, a := range acc.IDs {
		ac := acc.Counts[ai]
		for bi, b := range child.IDs {
			id, ok, err := c.ComposeIDs(g, a, b)
			if err != nil {
				return DenseCount{}, err
			}
			if !ok {
				continue
			}
			prod, err := mulCheck(ac, child.Counts[bi])
			if err != nil {
				return DenseCount{}, err
			}
			c.ensureScratch(id)
			if c.stamp[id] != c.epoch {
				c.stamp[id] = c.epoch
				c.slot[id] = int32(len(ids))
				ids = append(ids, id)
				counts = append(counts, prod)
			} else {
				s := c.slot[id]
				counts[s], err = addCheck(counts[s], prod)
				if err != nil {
					return DenseCount{}, err
				}
			}
		}
	}
	out := DenseCount{IDs: ids, Counts: counts}
	c.sortCount(&out)
	return out, nil
}

// sortOpt establishes canonical order on a freshly-folded OPT table. It
// takes the write lock in shared mode: rank maintenance mutates the interner
// even on the read path.
func (c *Cached) sortOpt(t *DenseOpt) {
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	if isCanonical(c.in, t.IDs) {
		return
	}
	ord := make([]int32, len(t.IDs))
	for i := range ord {
		ord[i] = int32(i)
	}
	c.in.ensureRank()
	rank := c.in.rank
	insertionSortBy(ord, func(i, j int32) bool { return rank[t.IDs[i]] < rank[t.IDs[j]] })
	ids := make([]ClassID, len(t.IDs))
	ws := make([]int64, len(t.IDs))
	for i, o := range ord {
		ids[i] = t.IDs[o]
		ws[i] = t.Weights[o]
	}
	t.IDs, t.Weights = ids, ws
}

// sortCount establishes canonical order on a freshly-folded COUNT table
// (write-locked in shared mode, as sortOpt).
func (c *Cached) sortCount(t *DenseCount) {
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	if isCanonical(c.in, t.IDs) {
		return
	}
	ord := make([]int32, len(t.IDs))
	for i := range ord {
		ord[i] = int32(i)
	}
	c.in.ensureRank()
	rank := c.in.rank
	insertionSortBy(ord, func(i, j int32) bool { return rank[t.IDs[i]] < rank[t.IDs[j]] })
	ids := make([]ClassID, len(t.IDs))
	cs := make([]int64, len(t.IDs))
	for i, o := range ord {
		ids[i] = t.IDs[o]
		cs[i] = t.Counts[o]
	}
	t.IDs, t.Counts = ids, cs
}

// isCanonical reports whether ids are already rank-sorted (the common case
// when folds reproduce previously seen tables).
func isCanonical(in *Interner, ids []ClassID) bool {
	in.ensureRank()
	for i := 1; i < len(ids); i++ {
		if in.rank[ids[i-1]] >= in.rank[ids[i]] {
			return false
		}
	}
	return true
}

// insertionSortBy sorts small index slices without sort.Slice's closure
// allocation; DP tables are small, so insertion sort wins on constants.
func insertionSortBy(xs []int32, less func(a, b int32) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// --- accepting reducers (canonical iteration order, matching the map path) ---

// AnyAcceptingDense reports whether some class in the set is accepting.
func (c *Cached) AnyAcceptingDense(s DenseSet) (bool, error) {
	for _, id := range s.IDs {
		ok, err := c.AcceptingID(id)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// BestAcceptingDense returns the accepting class with the best weight
// (found=false when no accepting class is reachable).
func (c *Cached) BestAcceptingDense(t DenseOpt, maximize bool) (ClassID, int64, bool, error) {
	best := NoClass
	var bestW int64
	for i, id := range t.IDs {
		ok, err := c.AcceptingID(id)
		if err != nil {
			return NoClass, 0, false, err
		}
		if !ok {
			continue
		}
		if best == NoClass || Better(t.Weights[i], bestW, maximize) {
			best = id
			bestW = t.Weights[i]
		}
	}
	return best, bestW, best != NoClass, nil
}

// TotalAcceptingDense sums the counts of accepting classes.
func (c *Cached) TotalAcceptingDense(t DenseCount) (int64, error) {
	var total int64
	for i, id := range t.IDs {
		ok, err := c.AcceptingID(id)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		total, err = addCheck(total, t.Counts[i])
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// --- base-table builders (dense counterparts of BaseClassSet & co.) ---

// BaseDenseSet builds the decision table of a base graph.
func (c *Cached) BaseDenseSet(base *wterm.TerminalGraph) (DenseSet, error) {
	classes, err := c.homBase(base)
	if err != nil {
		return DenseSet{}, err
	}
	c.nextEpoch()
	out := make([]ClassID, 0, len(classes))
	for _, bc := range classes {
		id := c.Intern(bc.Class)
		c.ensureScratch(id)
		if c.stamp[id] != c.epoch {
			c.stamp[id] = c.epoch
			out = append(out, id)
		}
	}
	c.sortCanonical(out)
	return DenseSet{IDs: out}, nil
}

// BaseDenseOpt builds OPT(base), keeping the best weight per class in
// enumeration order (first-better wins, as BaseOptTable).
func (c *Cached) BaseDenseOpt(base *wterm.TerminalGraph, ownerRank int, maximize bool) (DenseOpt, error) {
	classes, err := c.homBase(base)
	if err != nil {
		return DenseOpt{}, err
	}
	c.nextEpoch()
	ids := make([]ClassID, 0, len(classes))
	weights := make([]int64, 0, len(classes))
	for _, bc := range classes {
		w, err := BaseWeight(base, ownerRank, bc.Sel)
		if err != nil {
			return DenseOpt{}, err
		}
		id := c.Intern(bc.Class)
		c.ensureScratch(id)
		if c.stamp[id] != c.epoch {
			c.stamp[id] = c.epoch
			c.slot[id] = int32(len(ids))
			ids = append(ids, id)
			weights = append(weights, w)
		} else if s := c.slot[id]; Better(w, weights[s], maximize) {
			weights[s] = w
		}
	}
	out := DenseOpt{IDs: ids, Weights: weights}
	c.sortOpt(&out)
	return out, nil
}

// BaseDenseCount builds COUNT(base): one assignment per enumerated
// selection.
func (c *Cached) BaseDenseCount(base *wterm.TerminalGraph) (DenseCount, error) {
	classes, err := c.homBase(base)
	if err != nil {
		return DenseCount{}, err
	}
	c.nextEpoch()
	ids := make([]ClassID, 0, len(classes))
	counts := make([]int64, 0, len(classes))
	for _, bc := range classes {
		id := c.Intern(bc.Class)
		c.ensureScratch(id)
		if c.stamp[id] != c.epoch {
			c.stamp[id] = c.epoch
			c.slot[id] = int32(len(ids))
			ids = append(ids, id)
			counts = append(counts, 1)
		} else {
			s := c.slot[id]
			var err error
			counts[s], err = addCheck(counts[s], 1)
			if err != nil {
				return DenseCount{}, err
			}
		}
	}
	out := DenseCount{IDs: ids, Counts: counts}
	c.sortCount(&out)
	return out, nil
}

// --- conversions to/from the map-based tables (wire boundaries, tests) ---

// InternClassSet interns a map table into canonical dense form.
func (c *Cached) InternClassSet(s ClassSet) DenseSet {
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	out := make([]ClassID, 0, len(s))
	for _, k := range s.Keys() {
		out = append(out, c.in.InternKeyed(k, s[k]))
	}
	// Keys() is sorted, so out is already canonical.
	return DenseSet{IDs: out}
}

// InternOptTable interns a map OPT table into canonical dense form.
func (c *Cached) InternOptTable(t OptTable) DenseOpt {
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	keys := t.Keys()
	out := DenseOpt{
		IDs:     make([]ClassID, 0, len(keys)),
		Weights: make([]int64, 0, len(keys)),
	}
	for _, k := range keys {
		out.IDs = append(out.IDs, c.in.InternKeyed(k, t[k].Class))
		out.Weights = append(out.Weights, t[k].Weight)
	}
	return out
}

// InternCountTable interns a map COUNT table into canonical dense form.
func (c *Cached) InternCountTable(t CountTable) DenseCount {
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	keys := t.Keys()
	out := DenseCount{
		IDs:    make([]ClassID, 0, len(keys)),
		Counts: make([]int64, 0, len(keys)),
	}
	for _, k := range keys {
		out.IDs = append(out.IDs, c.in.InternKeyed(k, t[k].Class))
		out.Counts = append(out.Counts, t[k].Count)
	}
	return out
}

// ClassSetOf converts a dense set back to the map form.
func (c *Cached) ClassSetOf(s DenseSet) ClassSet {
	if c.mu != nil {
		c.mu.RLock()
		defer c.mu.RUnlock()
	}
	out := make(ClassSet, len(s.IDs))
	for _, id := range s.IDs {
		out[c.in.Key(id)] = c.in.Class(id)
	}
	return out
}

// OptTableOf converts a dense OPT table back to the map form.
func (c *Cached) OptTableOf(t DenseOpt) OptTable {
	if c.mu != nil {
		c.mu.RLock()
		defer c.mu.RUnlock()
	}
	out := make(OptTable, len(t.IDs))
	for i, id := range t.IDs {
		out[c.in.Key(id)] = OptEntry{Class: c.in.Class(id), Weight: t.Weights[i]}
	}
	return out
}

// CountTableOf converts a dense COUNT table back to the map form.
func (c *Cached) CountTableOf(t DenseCount) CountTable {
	if c.mu != nil {
		c.mu.RLock()
		defer c.mu.RUnlock()
	}
	out := make(CountTable, len(t.IDs))
	for i, id := range t.IDs {
		out[c.in.Key(id)] = CountEntry{Class: c.in.Class(id), Count: t.Counts[i]}
	}
	return out
}
