package regular_test

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/wterm"
)

// keyClass is a minimal Class for interner tests.
type keyClass string

func (k keyClass) Key() string { return string(k) }

func TestAddWeightsOverflow(t *testing.T) {
	for _, tc := range []struct {
		a, b     int64
		overflow bool
	}{
		{3, 5, false},
		{math.MaxInt64, 0, false},
		{math.MaxInt64, 1, true},
		{math.MaxInt64/2 + 1, math.MaxInt64/2 + 1, true},
		{math.MinInt64, -1, true},
		{math.MinInt64 + 1, -1, false},
		{-5, 5, false},
	} {
		got, err := regular.AddWeights(tc.a, tc.b)
		if tc.overflow {
			if !errors.Is(err, regular.ErrOverflow) {
				t.Errorf("AddWeights(%d, %d) = %d, %v; want ErrOverflow", tc.a, tc.b, got, err)
			}
		} else {
			if err != nil || got != tc.a+tc.b {
				t.Errorf("AddWeights(%d, %d) = %d, %v; want %d", tc.a, tc.b, got, err, tc.a+tc.b)
			}
		}
	}
}

// starFixture is a 3-vertex star rooted at 0 with the leaf weights chosen so
// summing both leaves overflows int64: the weight of the two-leaf independent
// set used to wrap around silently before AddWeights was checked.
func starFixture(t *testing.T) (acc, t1, t2 regular.OptTable, g1, g2 wterm.Gluing) {
	t.Helper()
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.SetVertexWeight(1, math.MaxInt64/2+1)
	g.SetVertexWeight(2, math.MaxInt64/2+1)
	pred := predicates.IndependentSet{}
	base0, err := wterm.BaseFromBag(g, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	base1, err := wterm.BaseFromBag(g, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := wterm.BaseFromBag(g, []int{0, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acc, err = regular.BaseOptTable(pred, base0, 0, true); err != nil {
		t.Fatal(err)
	}
	if t1, err = regular.BaseOptTable(pred, base1, 1, true); err != nil {
		t.Fatal(err)
	}
	if t2, err = regular.BaseOptTable(pred, base2, 1, true); err != nil {
		t.Fatal(err)
	}
	if g1, err = wterm.GluingFromBags([]int{0}, []int{0, 1}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if g2, err = wterm.GluingFromBags([]int{0}, []int{0, 2}, []int{0}); err != nil {
		t.Fatal(err)
	}
	return acc, t1, t2, g1, g2
}

func TestFoldOptOverflow(t *testing.T) {
	pred := predicates.IndependentSet{}
	acc, t1, t2, g1, g2 := starFixture(t)
	acc, _, err := regular.FoldOpt(pred, g1, acc, t1, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := regular.FoldOpt(pred, g2, acc, t2, true); !errors.Is(err, regular.ErrOverflow) {
		t.Fatalf("FoldOpt = %v, want ErrOverflow", err)
	}
}

func TestFoldOptDenseOverflow(t *testing.T) {
	c := regular.NewCached(predicates.IndependentSet{})
	acc, t1, t2, g1, g2 := starFixture(t)
	dacc := c.InternOptTable(acc)
	d1 := c.InternOptTable(t1)
	d2 := c.InternOptTable(t2)
	dacc, _, err := c.FoldOptDense(c.InternGluing(g1), dacc, d1, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FoldOptDense(c.InternGluing(g2), dacc, d2, true); !errors.Is(err, regular.ErrOverflow) {
		t.Fatalf("FoldOptDense = %v, want ErrOverflow", err)
	}
}

func TestInternerCanonicalOrder(t *testing.T) {
	in := regular.NewInterner()
	keys := []string{"m", "a", "z", "b", "aa", "y", "c", ""}
	var ids []regular.ClassID
	for _, k := range keys {
		ids = append(ids, in.Intern(keyClass(k)))
	}
	if in.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(keys))
	}
	// Interning again must return the same IDs, and Lookup must agree.
	for i, k := range keys {
		if got := in.Intern(keyClass(k)); got != ids[i] {
			t.Fatalf("re-Intern(%q) = %d, want %d", k, got, ids[i])
		}
		got, ok := in.Lookup(k)
		if !ok || got != ids[i] {
			t.Fatalf("Lookup(%q) = %d, %v; want %d", k, got, ok, ids[i])
		}
		if in.Key(ids[i]) != k {
			t.Fatalf("Key(%d) = %q, want %q", ids[i], in.Key(ids[i]), k)
		}
	}
	// SortCanonical must equal lexicographic key order, including after new
	// interleaved insertions.
	in.Intern(keyClass("ab"))
	all := make([]regular.ClassID, in.Len())
	for i := range all {
		all[i] = regular.ClassID(in.Len() - 1 - i) // reversed insertion order
	}
	in.SortCanonical(all)
	sorted := append([]string{}, keys...)
	sorted = append(sorted, "ab")
	sort.Strings(sorted)
	for i, id := range all {
		if in.Key(id) != sorted[i] {
			t.Fatalf("canonical position %d: key %q, want %q", i, in.Key(id), sorted[i])
		}
	}
}

func TestInternWireFastPath(t *testing.T) {
	c := regular.NewCached(predicates.IndependentSet{})
	base := edgeBase(t)
	classes, err := c.HomBase(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) == 0 {
		t.Fatal("no base classes")
	}
	first := classes[0].Class
	// A never-seen wire encoding must decode (miss); re-interning the same
	// bytes must resolve by key lookup alone (hit).
	id1, err := c.InternWire([]byte(first.Key()))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DecodeMisses != 1 || st.DecodeHits != 0 {
		t.Fatalf("after first decode: %+v", st)
	}
	id2, err := c.InternWire([]byte(first.Key()))
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("InternWire ids diverged: %d vs %d", id1, id2)
	}
	st = c.Stats()
	if st.DecodeHits != 1 {
		t.Fatalf("second decode did not hit: %+v", st)
	}
	// An already-interned class's key must hit without ever decoding.
	second := classes[len(classes)-1].Class
	c.Intern(second)
	before := c.Stats().DecodeMisses
	if _, err := c.InternWire([]byte(second.Key())); err != nil {
		t.Fatal(err)
	}
	if c.Stats().DecodeMisses != before {
		t.Fatal("interned class key should resolve without DecodeClass")
	}
}

// Compose memoization must hit on repeats, evict deterministically at the
// cap, and keep returning correct classes across flushes.
func TestComposeMemoAndEviction(t *testing.T) {
	pred := predicates.IndependentSet{}
	c := regular.NewCached(pred)
	c.SetComposeCap(2)
	base := edgeBase(t)
	classes, err := c.HomBase(base)
	if err != nil {
		t.Fatal(err)
	}
	glue, err := wterm.GluingFromBags([]int{0, 1}, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	g := c.InternGluing(glue)
	type pair struct{ a, b regular.ClassID }
	var pairs []pair
	for _, c1 := range classes {
		for _, c2 := range classes {
			pairs = append(pairs, pair{c.Intern(c1.Class), c.Intern(c2.Class)})
		}
	}
	// Reference results from the unwrapped predicate.
	want := make(map[pair]string)
	wantOK := make(map[pair]bool)
	for _, p := range pairs {
		cl, ok, err := pred.Compose(glue, c.Interner().Class(p.a), c.Interner().Class(p.b))
		if err != nil {
			t.Fatal(err)
		}
		wantOK[p] = ok
		if ok {
			want[p] = cl.Key()
		}
	}
	// Three passes over all pairs with a cap of 2 force repeated flushes; the
	// results must stay correct throughout.
	for pass := 0; pass < 3; pass++ {
		for _, p := range pairs {
			id, ok, err := c.ComposeIDs(g, p.a, p.b)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK[p] {
				t.Fatalf("pass %d: compatibility diverged for %v", pass, p)
			}
			if ok && c.Interner().Key(id) != want[p] {
				t.Fatalf("pass %d: class diverged for %v", pass, p)
			}
		}
	}
	st := c.Stats()
	if st.ComposeEvictions == 0 {
		t.Fatalf("cap 2 over %d pairs × 3 passes should have evicted: %+v", len(pairs), st)
	}
	if st.ComposeEntries > 2 {
		t.Fatalf("live entries %d exceed cap 2", st.ComposeEntries)
	}
	if st.ComposeMisses == 0 || st.ComposeHits+st.ComposeMisses != int64(3*len(pairs)) {
		t.Fatalf("hit/miss accounting off: %+v (pairs=%d)", st, len(pairs))
	}
}

func TestAcceptingAndSelectionMemo(t *testing.T) {
	c := regular.NewCached(predicates.IndependentSet{})
	base := edgeBase(t)
	classes, err := c.HomBase(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, bc := range classes {
		id := c.Intern(bc.Class)
		a1, err := c.AcceptingID(id)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := c.AcceptingID(id)
		if err != nil {
			t.Fatal(err)
		}
		if a1 != a2 {
			t.Fatal("memoized Accepting diverged from first call")
		}
		s1, err := c.SelectionID(id)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := c.SelectionID(id)
		if err != nil {
			t.Fatal(err)
		}
		if s1.VertexMask != s2.VertexMask || fmt.Sprint(s1.EdgePairs) != fmt.Sprint(s2.EdgePairs) {
			t.Fatal("memoized Selection diverged from first call")
		}
	}
	st := c.Stats()
	if st.AcceptHits == 0 || st.SelectionHits == 0 {
		t.Fatalf("second calls should hit the memo: %+v", st)
	}
}

// GluingKey must separate gluings that compose differently and identify ones
// that are signature-equal.
func TestGluingKey(t *testing.T) {
	g1, err := wterm.GluingFromBags([]int{0}, []int{0, 1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := wterm.GluingFromBags([]int{0}, []int{0, 2}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	g3, err := wterm.GluingFromBags([]int{0, 1}, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if regular.GluingKey(g1) != regular.GluingKey(g2) {
		t.Fatal("rank-identical gluings over different vertices must share a signature")
	}
	if regular.GluingKey(g1) == regular.GluingKey(g3) {
		t.Fatal("different shapes must have different signatures")
	}
	c := regular.NewCached(predicates.IndependentSet{})
	if c.InternGluing(g1) != c.InternGluing(g2) {
		t.Fatal("signature-equal gluings must intern to one ID")
	}
	if c.InternGluing(g1) == c.InternGluing(g3) {
		t.Fatal("distinct signatures must intern to distinct IDs")
	}
}
