package regular

import (
	"sync"
	"sync/atomic"
)

// Shared is a process-lifetime, concurrency-safe cache for one predicate:
// the interner, gluing table, ⊙_f memo, and per-class memos live once and
// are shared by every handle. A daemon keeps one Shared per predicate and
// gives each request (each node goroutine) its own Handle; repeated queries
// then hit classes and compositions interned by earlier requests instead of
// rebuilding the tables from scratch.
//
// Safety model: handles take a read lock for memo lookups and the write lock
// for interning, memo inserts, and every call into the wrapped predicate —
// so the predicate itself only ever runs single-threaded, which keeps
// stateful predicate implementations (e.g. the generic MSO engine's internal
// memo) safe without their own locking. Because predicates are deterministic,
// two handles racing on the same miss compute the same entry; the
// double-checked insert under the write lock keeps the memo consistent
// either way, and answers are byte-identical to a private per-run cache.
type Shared struct {
	core *cacheCore

	// Cache-traffic counters, aggregated across every handle that ever
	// existed (handles also keep their own per-run copies for RunResult
	// reporting). Atomics so the hot read path bumps them outside the lock.
	composeHits     atomic.Int64
	composeMisses   atomic.Int64
	acceptHits      atomic.Int64
	acceptMisses    atomic.Int64
	selectionHits   atomic.Int64
	selectionMisses atomic.Int64
	decodeHits      atomic.Int64
	decodeMisses    atomic.Int64
}

// NewShared builds a process-lifetime cache around pred. The predicate is
// called only under the cache's write lock and must not be used elsewhere
// concurrently.
func NewShared(pred Predicate) *Shared {
	core := newCacheCore(pred)
	core.mu = new(sync.RWMutex)
	return &Shared{core: core}
}

// Predicate returns the wrapped predicate.
func (s *Shared) Predicate() Predicate { return s.core.pred }

// SetComposeCap overrides the compose-memo entry bound (n <= 0 restores the
// default), as Cached.SetComposeCap.
func (s *Shared) SetComposeCap(n int) {
	if n <= 0 {
		n = DefaultComposeCap
	}
	s.core.mu.Lock()
	s.core.composeCap = n
	s.core.mu.Unlock()
}

// Handle returns a new view onto the shared cache. A handle is cheap (only
// fold scratch and counters), must be used by one goroutine at a time, and
// any number of handles may run concurrently.
func (s *Shared) Handle() *Cached {
	return &Cached{cacheCore: s.core, sh: s}
}

// Stats snapshots the global cache state: gauges from the shared core plus
// traffic counters summed over all handles. ComposeEvictions is counted
// here and only here (handle stats report it as zero), so aggregating
// handle stats alongside a Shared's never double-counts an eviction.
func (s *Shared) Stats() CacheStats {
	s.core.mu.RLock()
	st := CacheStats{
		Classes:          s.core.in.Len(),
		Gluings:          len(s.core.gluings),
		ComposeEntries:   s.core.liveCompose(),
		ComposeEvictions: s.core.evictions,
	}
	s.core.mu.RUnlock()
	st.ComposeHits = s.composeHits.Load()
	st.ComposeMisses = s.composeMisses.Load()
	st.AcceptHits = s.acceptHits.Load()
	st.AcceptMisses = s.acceptMisses.Load()
	st.SelectionHits = s.selectionHits.Load()
	st.SelectionMisses = s.selectionMisses.Load()
	st.DecodeHits = s.decodeHits.Load()
	st.DecodeMisses = s.decodeMisses.Load()
	return st
}
