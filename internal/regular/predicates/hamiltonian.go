package predicates

import (
	"fmt"

	"repro/internal/regular"
	"repro/internal/wterm"
)

// HamiltonianCycle is the regular predicate φ(S) over edge sets: S is a
// Hamiltonian cycle — every vertex has exactly two S-edges and (V, S) is a
// single cycle. Decide answers "is G Hamiltonian?" (via ∃S); Count counts
// Hamiltonian cycles; with edge weights, Optimize(minimize) solves the
// bounded-treedepth TSP variant the paper's problem list implies.
//
// The class tracks, per bag position, the S-degree so far (0, 1, or 2) and
// the S-connectivity partition (open path segments), plus a closed flag: the
// unique moment the cycle closes. Forgotten vertices must have degree
// exactly 2; a second closure, or degree 3, prunes.
type HamiltonianCycle struct{}

var _ regular.Predicate = HamiltonianCycle{}

type hamClass struct {
	deg       []uint8 // per bag position, 0..2
	partition []uint8
	closed    bool
	pairs     [][2]int
}

func (c hamClass) Key() string {
	b := append([]byte{uint8(len(c.deg))}, c.deg...)
	b = encodePartition(b, c.partition)
	if c.closed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return string(encodePairs(b, c.pairs))
}

// Name implements regular.Predicate.
func (HamiltonianCycle) Name() string { return "hamiltonian-cycle" }

// SetKind implements regular.Predicate.
func (HamiltonianCycle) SetKind() regular.SetKind { return regular.SetEdge }

// HomBase enumerates subsets of the owned edges with all degrees <= 2. Owned
// edges share the owner vertex, so at most two may be selected.
func (HamiltonianCycle) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	edges := base.G.Edges()
	if len(edges) > 62 {
		return nil, fmt.Errorf("predicates: cannot enumerate 2^%d edge selections", len(edges))
	}
	var out []regular.BaseClass
	for mask := uint64(0); mask < 1<<uint(len(edges)); mask++ {
		deg := make([]uint8, n)
		d := newDSU(n)
		var pairs [][2]int
		ok := true
		for i, e := range edges {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			deg[e.U]++
			deg[e.V]++
			if deg[e.U] > 2 || deg[e.V] > 2 {
				ok = false
				break
			}
			d.union(e.U, e.V) // owned edges form a star: never a cycle
			lo, hi := e.U, e.V
			if lo > hi {
				lo, hi = hi, lo
			}
			pairs = append(pairs, [2]int{lo, hi})
		}
		if !ok {
			continue
		}
		part := make([]uint8, n)
		for r := 0; r < n; r++ {
			part[r] = uint8(d.find(r))
		}
		sel := regular.Selection{EdgePairs: regular.NormalizeEdgePairs(pairs)}
		out = append(out, regular.BaseClass{
			Class: hamClass{deg: deg, partition: canonicalPartition(part), pairs: sel.EdgePairs},
			Sel:   sel,
		})
	}
	return out, nil
}

// Compose implements ⊙_f: degrees add on glued positions (operand edge sets
// are disjoint), segments merge, at most one closure ever happens, and every
// forgotten vertex must have degree exactly 2.
func (HamiltonianCycle) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(hamClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(hamClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	if len(a.deg) != f.N1 || len(b.deg) != f.N2 {
		return nil, false, nil // malformed wire data
	}
	deg := make([]uint8, len(f.Rows))
	for r, row := range f.Rows {
		var total uint8
		if row[0] != 0 {
			total += a.deg[row[0]-1]
		}
		if row[1] != 0 {
			total += b.deg[row[1]-1]
		}
		if total > 2 {
			return nil, false, nil
		}
		deg[r] = total
	}
	for _, r := range f.Forgotten1() {
		if a.deg[r-1] != 2 {
			return nil, false, nil
		}
	}
	for _, r := range f.Forgotten2() {
		if b.deg[r-1] != 2 {
			return nil, false, nil
		}
	}
	res := gluePartitions(f, a.partition, b.partition)
	if !res.compatible {
		return nil, false, nil
	}
	closed := a.closed || b.closed
	if res.cycleCount > 0 {
		if closed || res.cycleCount > 1 {
			return nil, false, nil // a second closure: two disjoint cycles
		}
		closed = true
	}
	pairs := append(mapPairs(mapRanks1(f), a.pairs), mapPairs(mapRanks2(f), b.pairs)...)
	return hamClass{
		deg:       deg,
		partition: res.partition,
		closed:    closed,
		pairs:     regular.NormalizeEdgePairs(pairs),
	}, true, nil
}

// Accepting requires the cycle to have closed and every remaining position
// to lie on it (degree 2).
func (HamiltonianCycle) Accepting(c regular.Class) (bool, error) {
	cc, ok := c.(hamClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	if !cc.closed {
		return false, nil
	}
	for _, d := range cc.deg {
		if d != 2 {
			return false, nil
		}
	}
	return true, nil
}

// Selection implements regular.Predicate.
func (HamiltonianCycle) Selection(c regular.Class) (regular.Selection, error) {
	cc, ok := c.(hamClass)
	if !ok {
		return regular.Selection{}, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return regular.Selection{EdgePairs: cc.pairs}, nil
}

// DecodeClass implements regular.Predicate.
func (HamiltonianCycle) DecodeClass(data []byte) (regular.Class, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: truncated hamiltonian class", ErrBadClass)
	}
	n := int(data[0])
	rest := data[1:]
	if len(rest) < n {
		return nil, fmt.Errorf("%w: truncated degree list", ErrBadClass)
	}
	deg := append([]uint8(nil), rest[:n]...)
	rest = rest[n:]
	part, rest, err := decodePartition(rest)
	if err != nil {
		return nil, err
	}
	closedByte, rest, err := getU8(rest)
	if err != nil {
		return nil, err
	}
	pairs, _, err := decodePairs(rest)
	if err != nil {
		return nil, err
	}
	return hamClass{deg: deg, partition: part, closed: closedByte != 0, pairs: pairs}, nil
}
