package predicates_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/mso"
	"repro/internal/mso/msolib"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
	"repro/internal/wterm"
)

// randomInstance returns a connected random bounded-treedepth graph with
// weights and its DFS elimination forest.
func randomInstance(r *rand.Rand, maxN int) (*graph.Graph, *treedepth.Forest) {
	n := 2 + r.Intn(maxN-1)
	g, _ := gen.BoundedTreedepth(n, 2+r.Intn(2), 0.6, r.Int63())
	gen.AssignRandomWeights(g, 10, r.Int63())
	return g, treedepth.DFSForest(g)
}

func runner(t *testing.T, g *graph.Graph, f *treedepth.Forest, p regular.Predicate) *seq.Runner {
	t.Helper()
	run, err := seq.New(g, f, p)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// --- Decision predicates vs the naive MSO oracle ---

func checkDecision(t *testing.T, seed int64, trials, maxN int, p regular.Predicate, formula mso.Formula) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		g, f := randomInstance(r, maxN)
		got, err := runner(t, g, f, p).Decide()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := mso.NewEvaluator(g).Eval(formula, nil)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: %s = %v, oracle says %v (graph %v)", trial, p.Name(), got, want, g)
		}
	}
}

func TestAcyclicityMatchesOracle(t *testing.T) {
	checkDecision(t, 101, 25, 10, predicates.Acyclicity{}, msolib.Acyclic())
}

func TestAcyclicityKnownGraphs(t *testing.T) {
	for _, tc := range []struct {
		g    *graph.Graph
		want bool
	}{
		{gen.Path(7), true},
		{gen.RandomTree(12, 3), true},
		{gen.Cycle(5), false},
		{gen.Complete(4), false},
		{graph.New(1), true},
	} {
		got, err := runner(t, tc.g, treedepth.DFSForest(tc.g), predicates.Acyclicity{}).Decide()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("acyclic(%v) = %v, want %v", tc.g, got, tc.want)
		}
	}
}

func TestConnectivityAlwaysTrueOnConnected(t *testing.T) {
	// The drivers require connected inputs, so the predicate must accept.
	r := rand.New(rand.NewSource(102))
	for trial := 0; trial < 20; trial++ {
		g, f := randomInstance(r, 12)
		got, err := runner(t, g, f, predicates.Connectivity{}).Decide()
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Fatalf("trial %d: connected graph judged disconnected", trial)
		}
	}
}

func TestKColorabilityMatchesOracle(t *testing.T) {
	checkDecision(t, 103, 20, 8, predicates.KColorability{K: 2}, msolib.KColorable(2))
	checkDecision(t, 104, 15, 7, predicates.KColorability{K: 3}, msolib.KColorable(3))
}

func TestKColorabilityKnownGraphs(t *testing.T) {
	for _, tc := range []struct {
		g    *graph.Graph
		k    int
		want bool
	}{
		{gen.Cycle(4), 2, true},
		{gen.Cycle(5), 2, false},
		{gen.Cycle(5), 3, true},
		{gen.Complete(4), 3, false},
		{gen.Complete(4), 4, true},
		{gen.Star(8), 2, true},
	} {
		p := predicates.KColorability{K: tc.k}
		got, err := runner(t, tc.g, treedepth.DFSForest(tc.g), p).Decide()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("%d-colorable(%v) = %v, want %v", tc.k, tc.g, got, tc.want)
		}
	}
}

func TestHSubgraphMatchesOracle(t *testing.T) {
	patterns := []*graph.Graph{gen.Complete(3), gen.Cycle(4), gen.Path(4), gen.Star(4)}
	r := rand.New(rand.NewSource(105))
	for _, h := range patterns {
		p, err := predicates.NewHSubgraph(h)
		if err != nil {
			t.Fatal(err)
		}
		formula := msolib.HSubgraph(h)
		for trial := 0; trial < 10; trial++ {
			g, f := randomInstance(r, 9)
			got, err := runner(t, g, f, p).Decide()
			if err != nil {
				t.Fatal(err)
			}
			want, err := mso.NewEvaluator(g).Eval(formula, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("pattern %v trial %d: got %v, oracle %v (graph %v)", h, trial, got, want, g)
			}
		}
	}
}

func TestHSubgraphValidation(t *testing.T) {
	if _, err := predicates.NewHSubgraph(graph.New(0)); err == nil {
		t.Fatal("empty pattern should be rejected")
	}
	if _, err := predicates.NewHSubgraph(gen.Complete(9)); err == nil {
		t.Fatal("9-vertex pattern should be rejected")
	}
}

func TestHasPerfectMatchingDecision(t *testing.T) {
	for _, tc := range []struct {
		g    *graph.Graph
		want bool
	}{
		{gen.Path(4), true},
		{gen.Path(3), false},
		{gen.Star(4), false},
		{gen.Cycle(6), true},
		{gen.Complete(4), true},
	} {
		got, err := runner(t, tc.g, treedepth.DFSForest(tc.g), predicates.Matching{Perfect: true}).Decide()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("hasPerfectMatching(%v) = %v, want %v", tc.g, got, tc.want)
		}
	}
}

// --- Optimization predicates vs the naive MSO oracle ---

func checkOptimization(t *testing.T, seed int64, trials, maxN int, p regular.Predicate, formula mso.Formula, kind mso.VarKind, maximize bool) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		g, f := randomInstance(r, maxN)
		got, err := runner(t, g, f, p).Optimize(maximize)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := mso.NewEvaluator(g).OptimizeSet(formula, msolib.FreeSet, kind, maximize)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		if got.Found != want.Found {
			t.Fatalf("trial %d: %s found=%v, oracle found=%v", trial, p.Name(), got.Found, want.Found)
		}
		if got.Found && got.Weight != want.Weight {
			t.Fatalf("trial %d: %s weight=%d, oracle=%d (graph %v)", trial, p.Name(), got.Weight, want.Weight, g)
		}
		// Verify the extracted witness with the oracle.
		if got.Found {
			var val mso.Value
			if kind == mso.KindVertexSet {
				val = mso.VertexSetValue(got.Vertices)
			} else {
				val = mso.EdgeSetValue(got.Edges)
			}
			ok, err := mso.NewEvaluator(g).Eval(formula, mso.Assignment{msolib.FreeSet: val})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: %s extracted witness does not satisfy the formula", trial, p.Name())
			}
		}
	}
}

func TestVertexCoverMatchesOracle(t *testing.T) {
	checkOptimization(t, 201, 25, 10, predicates.VertexCover{}, msolib.VertexCover(), mso.KindVertexSet, false)
}

func TestDominatingSetMatchesOracle(t *testing.T) {
	checkOptimization(t, 202, 25, 10, predicates.DominatingSet{}, msolib.DominatingSet(), mso.KindVertexSet, false)
}

func TestFeedbackVertexSetMatchesOracle(t *testing.T) {
	checkOptimization(t, 203, 20, 9, predicates.FeedbackVertexSet{}, msolib.FeedbackVertexSet(), mso.KindVertexSet, false)
}

func TestSpanningTreeMatchesOracle(t *testing.T) {
	checkOptimization(t, 204, 15, 8, predicates.SpanningTree{}, msolib.SpanningTree(), mso.KindEdgeSet, false)
}

func TestMatchingMatchesOracle(t *testing.T) {
	checkOptimization(t, 205, 20, 9, predicates.Matching{}, msolib.Matching(), mso.KindEdgeSet, true)
}

func TestMSTAvoidsHeavyEdge(t *testing.T) {
	g := gen.Cycle(4)
	for _, e := range g.Edges() {
		g.SetEdgeWeight(e.ID, 1)
	}
	heavy, _ := g.EdgeBetween(3, 0)
	g.SetEdgeWeight(heavy, 100)
	res, err := runner(t, g, treedepth.DFSForest(g), predicates.SpanningTree{}).Optimize(false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 3 {
		t.Fatalf("MST = %+v, want weight 3", res)
	}
	if res.Edges.Contains(heavy) {
		t.Fatal("MST should avoid the heavy edge")
	}
}

// --- Counting predicates vs oracles ---

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(10)
		g, _ := gen.BoundedTreedepth(n, 3, 0.7, r.Int63())
		got, err := runner(t, g, treedepth.DFSForest(g), predicates.Triangles{}).Count()
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					if g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(a, c) {
						want++
					}
				}
			}
		}
		if got != want {
			t.Fatalf("trial %d: triangles = %d, want %d (graph %v)", trial, got, want, g)
		}
	}
}

func TestTriangleCountKnown(t *testing.T) {
	for _, tc := range []struct {
		g    *graph.Graph
		want int64
	}{
		{gen.Complete(3), 1},
		{gen.Complete(4), 4},
		{gen.Complete(5), 10},
		{gen.Path(6), 0},
		{gen.Cycle(5), 0},
	} {
		got, err := runner(t, tc.g, treedepth.DFSForest(tc.g), predicates.Triangles{}).Count()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("triangles(%v) = %d, want %d", tc.g, got, tc.want)
		}
	}
}

func TestPerfectMatchingCountMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(302))
	for trial := 0; trial < 12; trial++ {
		n := 2 + r.Intn(7)
		g, _ := gen.BoundedTreedepth(n, 3, 0.6, r.Int63())
		if g.NumEdges() > 16 {
			continue // keep oracle enumeration fast
		}
		got, err := runner(t, g, treedepth.DFSForest(g), predicates.Matching{Perfect: true}).Count()
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.NewEvaluator(g).CountAssignments(
			msolib.PerfectMatching(), []mso.TypedVar{{Name: msolib.FreeSet, Kind: mso.KindEdgeSet}})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: perfect matchings = %d, oracle %d", trial, got, want)
		}
	}
}

func TestPerfectMatchingCountC6(t *testing.T) {
	got, err := runner(t, gen.Cycle(6), treedepth.DFSForest(gen.Cycle(6)), predicates.Matching{Perfect: true}).Count()
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("perfect matchings of C6 = %d, want 2", got)
	}
}

// --- Labeled domination (the paper's red/blue example) ---

func TestRedBlueDominationMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	p := predicates.DominatingSet{DominateLabel: "red", MemberLabel: "blue"}
	for trial := 0; trial < 20; trial++ {
		g, f := randomInstance(r, 9)
		for v := 0; v < g.NumVertices(); v++ {
			if r.Intn(2) == 0 {
				g.SetVertexLabel("red", v)
			}
			if r.Intn(2) == 0 {
				g.SetVertexLabel("blue", v)
			}
		}
		got, err := runner(t, g, f, p).Optimize(false)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.NewEvaluator(g).OptimizeSet(msolib.RedBlueDominatingSet(), msolib.FreeSet, mso.KindVertexSet, false)
		if err != nil {
			t.Fatal(err)
		}
		if got.Found != want.Found || (got.Found && got.Weight != want.Weight) {
			t.Fatalf("trial %d: red/blue domination (%v,%d) vs oracle (%v,%d)",
				trial, got.Found, got.Weight, want.Found, want.Weight)
		}
	}
}

// --- Wire round trips ---

func TestClassKeyDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(304))
	g, f := randomInstance(r, 8)
	hsub, err := predicates.NewHSubgraph(gen.Complete(3))
	if err != nil {
		t.Fatal(err)
	}
	preds := []regular.Predicate{
		predicates.IndependentSet{},
		predicates.VertexCover{},
		predicates.DominatingSet{},
		predicates.FeedbackVertexSet{},
		predicates.Acyclicity{},
		predicates.Connectivity{},
		predicates.SpanningTree{},
		predicates.Matching{},
		predicates.Matching{Perfect: true},
		predicates.KColorability{K: 3},
		predicates.Triangles{},
		hsub,
	}
	d, err := wtermDerivation(g, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		for u := 0; u < g.NumVertices(); u++ {
			base, err := d.Base(u)
			if err != nil {
				t.Fatal(err)
			}
			classes, err := p.HomBase(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, bc := range classes {
				key := bc.Class.Key()
				back, err := p.DecodeClass([]byte(key))
				if err != nil {
					t.Fatalf("%s: decode: %v", p.Name(), err)
				}
				if back.Key() != key {
					t.Fatalf("%s: key round trip changed", p.Name())
				}
			}
		}
	}
}

func wtermDerivation(g *graph.Graph, f *treedepth.Forest) (*wterm.Derivation, error) {
	return wterm.NewDerivation(g, f)
}
