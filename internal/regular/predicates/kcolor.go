package predicates

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/regular"
	"repro/internal/wterm"
)

// KColorability is the closed regular predicate "G is k-colorable". The
// class is the set of proper colorings of the terminals that extend to a
// proper coloring of the graph derived so far — the textbook homomorphism
// class for colorability. Non-3-colorability, the paper's running example,
// is the negation of Decide with k = 3.
type KColorability struct {
	// K is the number of colors (>= 1).
	K int
}

var _ regular.Predicate = KColorability{}

// kcolorClass is a canonical (sorted, deduplicated) set of terminal
// colorings; each coloring assigns colors 0..k-1 to terminal ranks 0..n-1.
type kcolorClass struct {
	n         int
	k         int
	colorings []string // each of length n, sorted
}

func (c kcolorClass) Key() string {
	b := make([]byte, 0, 8+len(c.colorings)*(c.n+1))
	b = append(b, uint8(c.n), uint8(c.k))
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(c.colorings)))
	b = append(b, cnt[:]...)
	for _, col := range c.colorings {
		b = append(b, col...)
	}
	return string(b)
}

func newKColorClass(n, k int, set map[string]struct{}) kcolorClass {
	colorings := make([]string, 0, len(set))
	for c := range set {
		colorings = append(colorings, c)
	}
	sort.Strings(colorings)
	return kcolorClass{n: n, k: k, colorings: colorings}
}

// Name implements regular.Predicate.
func (p KColorability) Name() string { return fmt.Sprintf("%d-colorable", p.K) }

// SetKind implements regular.Predicate.
func (KColorability) SetKind() regular.SetKind { return regular.SetNone }

// HomBase enumerates the proper colorings of the base graph (constraints are
// the owned edges).
func (p KColorability) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("predicates: KColorability needs K >= 1, got %d", p.K)
	}
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	set := map[string]struct{}{}
	coloring := make([]byte, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			set[string(coloring)] = struct{}{}
			return
		}
		for c := 0; c < p.K; c++ {
			coloring[i] = byte(c)
			ok := true
			for _, e := range base.G.Edges() {
				if e.U < i && e.V == i || e.V < i && e.U == i {
					other := e.U
					if other == i {
						other = e.V
					}
					if coloring[other] == byte(c) {
						ok = false
						break
					}
				}
			}
			if ok {
				rec(i + 1)
			}
		}
	}
	rec(0)
	return []regular.BaseClass{{Class: newKColorClass(n, p.K, set)}}, nil
}

// Compose joins the two coloring sets along the glued terminals: a result
// coloring is extendable iff it arises from a pair of extendable operand
// colorings agreeing on every glued pair.
func (p KColorability) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(kcolorClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(kcolorClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	shared := f.SharedRows()
	// Bucket operand-2 colorings by their colors at the glued coordinates.
	bucket := map[string][]string{}
	for _, col := range b.colorings {
		key := make([]byte, len(shared))
		for s, r := range shared {
			key[s] = col[f.Rows[r][1]-1]
		}
		bucket[string(key)] = append(bucket[string(key)], col)
	}
	out := map[string]struct{}{}
	result := make([]byte, len(f.Rows))
	for _, colA := range a.colorings {
		key := make([]byte, len(shared))
		for s, r := range shared {
			key[s] = colA[f.Rows[r][0]-1]
		}
		for _, colB := range bucket[string(key)] {
			for r, row := range f.Rows {
				if row[0] != 0 {
					result[r] = colA[row[0]-1]
				} else {
					result[r] = colB[row[1]-1]
				}
			}
			out[string(result)] = struct{}{}
		}
	}
	return newKColorClass(len(f.Rows), p.K, out), true, nil
}

// Accepting reports whether some proper coloring extends, i.e. the set is
// nonempty.
func (KColorability) Accepting(c regular.Class) (bool, error) {
	cc, ok := c.(kcolorClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return len(cc.colorings) > 0, nil
}

// Selection implements regular.Predicate (closed predicate: empty).
func (KColorability) Selection(regular.Class) (regular.Selection, error) {
	return regular.Selection{}, nil
}

// DecodeClass implements regular.Predicate.
func (KColorability) DecodeClass(data []byte) (regular.Class, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("%w: truncated coloring class", ErrBadClass)
	}
	n, k := int(data[0]), int(data[1])
	count := int(binary.LittleEndian.Uint32(data[2:6]))
	body := data[6:]
	if len(body) < n*count {
		return nil, fmt.Errorf("%w: truncated coloring set", ErrBadClass)
	}
	colorings := make([]string, count)
	for i := 0; i < count; i++ {
		colorings[i] = string(body[i*n : (i+1)*n])
	}
	return kcolorClass{n: n, k: k, colorings: colorings}, nil
}
