package predicates

import (
	"fmt"

	"repro/internal/regular"
	"repro/internal/wterm"
)

// DominatingSet is the regular predicate φ(S) = "every vertex is in S or
// adjacent to S" with a free vertex-set variable. Besides the selection, the
// class tracks which terminals are already dominated; a terminal may only be
// forgotten once dominated, and the root terminal must be dominated at
// acceptance. Optionally the predicate restricts domination duty to labeled
// vertices (the paper's red/blue example): only vertices carrying DominateLabel
// need to be dominated, and only vertices carrying MemberLabel may be in S.
type DominatingSet struct {
	// DominateLabel, when nonempty, restricts the domination requirement to
	// vertices carrying this label ("red" in the paper's example).
	DominateLabel string
	// MemberLabel, when nonempty, restricts membership in S to vertices
	// carrying this label ("blue" in the paper's example).
	MemberLabel string
}

var _ regular.Predicate = DominatingSet{}

type domClass struct {
	n   uint8
	sel uint64
	dom uint64 // dominated-or-exempt terminals
}

func (c domClass) Key() string {
	return string(putU64(putU64(putU8(nil, c.n), c.sel), c.dom))
}

// Name implements regular.Predicate.
func (p DominatingSet) Name() string {
	if p.DominateLabel != "" || p.MemberLabel != "" {
		return fmt.Sprintf("dominating-set(%s<-%s)", p.DominateLabel, p.MemberLabel)
	}
	return "dominating-set"
}

// SetKind implements regular.Predicate.
func (DominatingSet) SetKind() regular.SetKind { return regular.SetVertex }

// HomBase enumerates selections of the base terminals; the dominated mask is
// derived from the owned edges (and exemptions from labels).
func (p DominatingSet) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	mayJoin := uint64(0)
	exempt := uint64(0)
	for r := 0; r < n; r++ {
		v := base.Terminals[r]
		if p.MemberLabel == "" || base.G.HasVertexLabel(p.MemberLabel, v) {
			mayJoin |= 1 << uint(r)
		}
		if p.DominateLabel != "" && !base.G.HasVertexLabel(p.DominateLabel, v) {
			exempt |= 1 << uint(r)
		}
	}
	var out []regular.BaseClass
	err := enumerateMasks(n, func(mask uint64) error {
		if mask&^mayJoin != 0 {
			return nil // unlabeled vertex in S
		}
		dom := exempt
		if p.DominateLabel == "" {
			// In the classic problem, members dominate themselves. In the
			// paper's labeled variant, a red vertex needs an *adjacent*
			// member, so self-membership does not count.
			dom |= mask
		}
		for _, e := range base.G.Edges() {
			if mask&(1<<uint(e.U)) != 0 {
				dom |= 1 << uint(e.V)
			}
			if mask&(1<<uint(e.V)) != 0 {
				dom |= 1 << uint(e.U)
			}
		}
		out = append(out, regular.BaseClass{
			Class: domClass{n: uint8(n), sel: mask, dom: dom},
			Sel:   regular.Selection{VertexMask: mask},
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Compose implements ⊙_f: selections agree, dominated masks are OR-ed, and
// forgotten terminals must already be dominated.
func (DominatingSet) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(domClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(domClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	sel, compatible := resultMask(f, a.sel, b.sel)
	if !compatible {
		return nil, false, nil
	}
	dom := orResultMask(f, a.dom, b.dom)
	for _, r := range f.Forgotten1() {
		if a.dom&(1<<uint(r-1)) == 0 {
			return nil, false, nil
		}
	}
	for _, r := range f.Forgotten2() {
		if b.dom&(1<<uint(r-1)) == 0 {
			return nil, false, nil
		}
	}
	return domClass{n: uint8(len(f.Rows)), sel: sel, dom: dom}, true, nil
}

// Accepting requires every remaining terminal to be dominated.
func (DominatingSet) Accepting(c regular.Class) (bool, error) {
	cc, ok := c.(domClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	all := uint64(1)<<uint(cc.n) - 1
	return cc.dom&all == all, nil
}

// Selection implements regular.Predicate.
func (DominatingSet) Selection(c regular.Class) (regular.Selection, error) {
	cc, ok := c.(domClass)
	if !ok {
		return regular.Selection{}, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return regular.Selection{VertexMask: cc.sel}, nil
}

// DecodeClass implements regular.Predicate.
func (DominatingSet) DecodeClass(data []byte) (regular.Class, error) {
	n, rest, err := getU8(data)
	if err != nil {
		return nil, err
	}
	sel, rest, err := getU64(rest)
	if err != nil {
		return nil, err
	}
	dom, _, err := getU64(rest)
	if err != nil {
		return nil, err
	}
	return domClass{n: n, sel: sel, dom: dom}, nil
}
