package predicates

import (
	"fmt"

	"repro/internal/regular"
	"repro/internal/wterm"
)

// IndependentSet is the regular predicate φ(S) = "S is an independent set"
// with a free vertex-set variable. Its homomorphism class is simply the
// selection restricted to the terminals: under the edge-owned grammar every
// edge is checked exactly once (at the base graph that owns it), so no
// further state is needed.
type IndependentSet struct{}

var _ regular.Predicate = IndependentSet{}

// indsetClass is (terminal count, selected-terminal mask).
type indsetClass struct {
	n    uint8
	mask uint64
}

func (c indsetClass) Key() string {
	return string(putU64(putU8(nil, c.n), c.mask))
}

// Name implements regular.Predicate.
func (IndependentSet) Name() string { return "independent-set" }

// SetKind implements regular.Predicate.
func (IndependentSet) SetKind() regular.SetKind { return regular.SetVertex }

// HomBase enumerates selections of the base terminals that do not violate
// independence on the owned edges.
func (IndependentSet) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	var out []regular.BaseClass
	err := enumerateMasks(n, func(mask uint64) error {
		for _, e := range base.G.Edges() {
			// Terminals are exactly the local vertices in rank order for base
			// graphs produced by wterm.BaseFromBag.
			if mask&(1<<uint(e.U)) != 0 && mask&(1<<uint(e.V)) != 0 {
				return nil // adjacent pair selected: not independent
			}
		}
		out = append(out, regular.BaseClass{
			Class: indsetClass{n: uint8(n), mask: mask},
			Sel:   regular.Selection{VertexMask: mask},
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Compose implements ⊙_f: selections must agree on glued terminals; gluing
// introduces no edges, so the result is always independent.
func (IndependentSet) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(indsetClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(indsetClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	mask, compatible := resultMask(f, a.mask, b.mask)
	if !compatible {
		return nil, false, nil
	}
	return indsetClass{n: uint8(len(f.Rows)), mask: mask}, true, nil
}

// Accepting implements regular.Predicate: every reachable class is a valid
// independent set.
func (IndependentSet) Accepting(regular.Class) (bool, error) { return true, nil }

// Selection implements regular.Predicate.
func (IndependentSet) Selection(c regular.Class) (regular.Selection, error) {
	cc, ok := c.(indsetClass)
	if !ok {
		return regular.Selection{}, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return regular.Selection{VertexMask: cc.mask}, nil
}

// DecodeClass implements regular.Predicate.
func (IndependentSet) DecodeClass(data []byte) (regular.Class, error) {
	n, rest, err := getU8(data)
	if err != nil {
		return nil, err
	}
	mask, _, err := getU64(rest)
	if err != nil {
		return nil, err
	}
	return indsetClass{n: n, mask: mask}, nil
}
