package predicates

import (
	"fmt"
	"math/bits"

	"repro/internal/regular"
	"repro/internal/wterm"
)

func popcount(mask uint64) int { return bits.OnesCount64(mask) }

// Triangles is the regular predicate φ(X) = "X is the vertex set of a
// triangle" (|X| = 3, all three edges present), designed for the counting
// protocol: COUNT over accepting classes equals the number of triangles.
// This is the dynamic-programming exercise suggested at the end of Section 6
// of the paper.
//
// The class tracks the selected terminals, how many selected vertices were
// already forgotten, and how many edges among selected vertices have been
// seen (each edge of the graph is introduced exactly once by the edge-owned
// grammar, so a plain counter is exact).
type Triangles struct{}

var _ regular.Predicate = Triangles{}

type triClass struct {
	n        uint8
	sel      uint64
	internal uint8 // selected vertices already forgotten (0..3)
	edges    uint8 // edges seen among selected vertices (0..3)
}

func (c triClass) Key() string {
	return string(putU8(putU8(putU64(putU8(nil, c.n), c.sel), c.internal), c.edges))
}

// Name implements regular.Predicate.
func (Triangles) Name() string { return "triangles" }

// SetKind implements regular.Predicate.
func (Triangles) SetKind() regular.SetKind { return regular.SetVertex }

// HomBase enumerates terminal selections with at most 3 selected vertices.
func (Triangles) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	var out []regular.BaseClass
	err := enumerateMasks(n, func(mask uint64) error {
		if popcount(mask) > 3 {
			return nil
		}
		edges := uint8(0)
		for _, e := range base.G.Edges() {
			if mask&(1<<uint(e.U)) != 0 && mask&(1<<uint(e.V)) != 0 {
				edges++
			}
		}
		out = append(out, regular.BaseClass{
			Class: triClass{n: uint8(n), sel: mask, edges: edges},
			Sel:   regular.Selection{VertexMask: mask},
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Compose implements ⊙_f: selections agree on glued terminals, selected
// sizes and edge counters add, and selected forgotten terminals become
// internal. States exceeding a triangle's size are pruned.
func (Triangles) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(triClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(triClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	sel, compatible := resultMask(f, a.sel, b.sel)
	if !compatible {
		return nil, false, nil
	}
	internal := a.internal + b.internal
	for _, r := range f.Forgotten1() {
		if a.sel&(1<<uint(r-1)) != 0 {
			internal++
		}
	}
	for _, r := range f.Forgotten2() {
		if b.sel&(1<<uint(r-1)) != 0 {
			internal++
		}
	}
	edges := a.edges + b.edges
	if int(internal)+popcount(sel) > 3 || edges > 3 {
		return nil, false, nil
	}
	return triClass{n: uint8(len(f.Rows)), sel: sel, internal: internal, edges: edges}, true, nil
}

// Accepting requires exactly 3 selected vertices spanning 3 edges.
func (Triangles) Accepting(c regular.Class) (bool, error) {
	cc, ok := c.(triClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return int(cc.internal)+popcount(cc.sel) == 3 && cc.edges == 3, nil
}

// Selection implements regular.Predicate.
func (Triangles) Selection(c regular.Class) (regular.Selection, error) {
	cc, ok := c.(triClass)
	if !ok {
		return regular.Selection{}, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return regular.Selection{VertexMask: cc.sel}, nil
}

// DecodeClass implements regular.Predicate.
func (Triangles) DecodeClass(data []byte) (regular.Class, error) {
	n, rest, err := getU8(data)
	if err != nil {
		return nil, err
	}
	sel, rest, err := getU64(rest)
	if err != nil {
		return nil, err
	}
	internal, rest, err := getU8(rest)
	if err != nil {
		return nil, err
	}
	edges, _, err := getU8(rest)
	if err != nil {
		return nil, err
	}
	return triClass{n: n, sel: sel, internal: internal, edges: edges}, nil
}
