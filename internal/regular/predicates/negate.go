package predicates

import "repro/internal/regular"

// Negated wraps a closed predicate, flipping acceptance — e.g. H-freeness
// is the negation of H-subgraph containment.
type Negated struct {
	regular.Predicate
}

// Negate returns the negation of a closed predicate.
func Negate(p regular.Predicate) Negated { return Negated{Predicate: p} }

// Name implements regular.Predicate.
func (n Negated) Name() string { return "not-" + n.Predicate.Name() }

// Accepting flips the wrapped verdict.
func (n Negated) Accepting(c regular.Class) (bool, error) {
	v, err := n.Predicate.Accepting(c)
	return !v, err
}
