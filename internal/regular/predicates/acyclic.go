package predicates

import (
	"fmt"

	"repro/internal/regular"
	"repro/internal/wterm"
)

// Acyclicity is the closed regular predicate "G has no cycle". The class is
// the connectivity partition of the terminals plus an absorbing cyclic flag;
// because operands of the edge-owned grammar are edge-disjoint, gluing two
// blocks that are already connected certifies a cycle.
type Acyclicity struct{}

var _ regular.Predicate = Acyclicity{}

type acyclicClass struct {
	partition []uint8
	cyclic    bool
}

func (c acyclicClass) Key() string {
	b := encodePartition(nil, c.partition)
	if c.cyclic {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return string(b)
}

// Name implements regular.Predicate.
func (Acyclicity) Name() string { return "acyclic" }

// SetKind implements regular.Predicate.
func (Acyclicity) SetKind() regular.SetKind { return regular.SetNone }

// HomBase computes the connectivity partition of the owned star.
func (Acyclicity) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCountPartition(n); err != nil {
		return nil, err
	}
	part := basePartition(base, nil)
	return []regular.BaseClass{{Class: acyclicClass{partition: part}}}, nil
}

// basePartition computes the connectivity partition of a base graph's
// terminals, treating selected-mask vertices as inactive when skip is
// non-nil (skip(r) reports rank r inactive).
func basePartition(base *wterm.TerminalGraph, skip func(r int) bool) []uint8 {
	n := base.NumTerminals()
	d := newDSU(n)
	for _, e := range base.G.Edges() {
		// Base graphs from wterm.BaseFromBag have terminal rank == local ID.
		if skip != nil && (skip(e.U) || skip(e.V)) {
			continue
		}
		d.union(e.U, e.V)
	}
	part := make([]uint8, n)
	for r := 0; r < n; r++ {
		if skip != nil && skip(r) {
			part[r] = inactiveBlock
			continue
		}
		part[r] = uint8(d.find(r))
	}
	return canonicalPartition(part)
}

// Compose implements ⊙_f via partition gluing with cycle detection.
func (Acyclicity) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(acyclicClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(acyclicClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	res := gluePartitions(f, a.partition, b.partition)
	if !res.compatible {
		return nil, false, nil
	}
	return acyclicClass{partition: res.partition, cyclic: a.cyclic || b.cyclic || res.cyclic}, true, nil
}

// Accepting reports the graph acyclic so far.
func (Acyclicity) Accepting(c regular.Class) (bool, error) {
	cc, ok := c.(acyclicClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return !cc.cyclic, nil
}

// Selection implements regular.Predicate (closed predicate: empty).
func (Acyclicity) Selection(regular.Class) (regular.Selection, error) {
	return regular.Selection{}, nil
}

// DecodeClass implements regular.Predicate.
func (Acyclicity) DecodeClass(data []byte) (regular.Class, error) {
	part, rest, err := decodePartition(data)
	if err != nil {
		return nil, err
	}
	flag, _, err := getU8(rest)
	if err != nil {
		return nil, err
	}
	return acyclicClass{partition: part, cyclic: flag != 0}, nil
}

// FeedbackVertexSet is the regular predicate φ(S) = "G - S is acyclic" with
// a free vertex-set variable. Selected terminals are inactive in the
// connectivity partition; a cycle among unselected vertices prunes the
// class.
type FeedbackVertexSet struct{}

var _ regular.Predicate = FeedbackVertexSet{}

type fvsClass struct {
	sel       uint64
	partition []uint8
}

func (c fvsClass) Key() string {
	return string(encodePartition(putU64(nil, c.sel), c.partition))
}

// Name implements regular.Predicate.
func (FeedbackVertexSet) Name() string { return "feedback-vertex-set" }

// SetKind implements regular.Predicate.
func (FeedbackVertexSet) SetKind() regular.SetKind { return regular.SetVertex }

// HomBase enumerates selections; unselected terminals form the partition of
// the owned star restricted to unselected endpoints.
func (FeedbackVertexSet) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	var out []regular.BaseClass
	err := enumerateMasks(n, func(mask uint64) error {
		part := basePartition(base, func(r int) bool { return mask&(1<<uint(r)) != 0 })
		out = append(out, regular.BaseClass{
			Class: fvsClass{sel: mask, partition: part},
			Sel:   regular.Selection{VertexMask: mask},
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Compose implements ⊙_f: selections agree, partitions glue, cycles prune.
func (FeedbackVertexSet) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(fvsClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(fvsClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	sel, compatible := resultMask(f, a.sel, b.sel)
	if !compatible {
		return nil, false, nil
	}
	res := gluePartitions(f, a.partition, b.partition)
	if !res.compatible || res.cyclic {
		return nil, false, nil
	}
	return fvsClass{sel: sel, partition: res.partition}, true, nil
}

// Accepting implements regular.Predicate: all surviving classes are acyclic.
func (FeedbackVertexSet) Accepting(regular.Class) (bool, error) { return true, nil }

// Selection implements regular.Predicate.
func (FeedbackVertexSet) Selection(c regular.Class) (regular.Selection, error) {
	cc, ok := c.(fvsClass)
	if !ok {
		return regular.Selection{}, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return regular.Selection{VertexMask: cc.sel}, nil
}

// DecodeClass implements regular.Predicate.
func (FeedbackVertexSet) DecodeClass(data []byte) (regular.Class, error) {
	sel, rest, err := getU64(data)
	if err != nil {
		return nil, err
	}
	part, _, err := decodePartition(rest)
	if err != nil {
		return nil, err
	}
	return fvsClass{sel: sel, partition: part}, nil
}
