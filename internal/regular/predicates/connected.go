package predicates

import (
	"fmt"

	"repro/internal/regular"
	"repro/internal/wterm"
)

// Connectivity is the closed regular predicate "G is connected". The class
// is the terminal connectivity partition plus an orphan flag: a component
// whose terminals were all forgotten can never connect to the rest (all its
// vertices' edges are already present), so the graph is disconnected unless
// no component is ever orphaned.
type Connectivity struct{}

var _ regular.Predicate = Connectivity{}

type connClass struct {
	partition []uint8
	orphan    bool
}

func (c connClass) Key() string {
	b := encodePartition(nil, c.partition)
	if c.orphan {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return string(b)
}

// Name implements regular.Predicate.
func (Connectivity) Name() string { return "connected" }

// SetKind implements regular.Predicate.
func (Connectivity) SetKind() regular.SetKind { return regular.SetNone }

// HomBase computes the connectivity partition of the owned star.
func (Connectivity) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	if err := checkTerminalCountPartition(base.NumTerminals()); err != nil {
		return nil, err
	}
	return []regular.BaseClass{{Class: connClass{partition: basePartition(base, nil)}}}, nil
}

// Compose implements ⊙_f.
func (Connectivity) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(connClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(connClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	res := gluePartitions(f, a.partition, b.partition)
	if !res.compatible {
		return nil, false, nil
	}
	return connClass{partition: res.partition, orphan: a.orphan || b.orphan || res.newOrphan}, true, nil
}

// Accepting requires a single block among the remaining terminals and no
// orphaned component.
func (Connectivity) Accepting(c regular.Class) (bool, error) {
	cc, ok := c.(connClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	if cc.orphan {
		return false, nil
	}
	blocks := map[uint8]bool{}
	for _, b := range cc.partition {
		if b != inactiveBlock {
			blocks[b] = true
		}
	}
	return len(blocks) <= 1, nil
}

// Selection implements regular.Predicate (closed predicate: empty).
func (Connectivity) Selection(regular.Class) (regular.Selection, error) {
	return regular.Selection{}, nil
}

// DecodeClass implements regular.Predicate.
func (Connectivity) DecodeClass(data []byte) (regular.Class, error) {
	part, rest, err := decodePartition(data)
	if err != nil {
		return nil, err
	}
	flag, _, err := getU8(rest)
	if err != nil {
		return nil, err
	}
	return connClass{partition: part, orphan: flag != 0}, nil
}
