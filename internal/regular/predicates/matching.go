package predicates

import (
	"fmt"

	"repro/internal/regular"
	"repro/internal/wterm"
)

// Matching is the regular predicate φ(S) = "S is a matching" (no two S-edges
// share an endpoint) with a free edge-set variable; with Perfect set, every
// vertex must additionally be matched. Maximum-weight matching is
// Optimize(maximize); counting perfect matchings is Count with Perfect.
type Matching struct {
	// Perfect requires every vertex to be covered by S.
	Perfect bool
}

var _ regular.Predicate = Matching{}

type matchClass struct {
	n       uint8
	matched uint64 // terminals covered by an S-edge so far
	pairs   [][2]int
}

func (c matchClass) Key() string {
	return string(encodePairs(putU64(putU8(nil, c.n), c.matched), c.pairs))
}

// Name implements regular.Predicate.
func (p Matching) Name() string {
	if p.Perfect {
		return "perfect-matching"
	}
	return "matching"
}

// SetKind implements regular.Predicate.
func (Matching) SetKind() regular.SetKind { return regular.SetEdge }

// HomBase selects at most one owned edge (all owned edges share the owner
// vertex, so any two conflict).
func (Matching) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	out := []regular.BaseClass{{
		Class: matchClass{n: uint8(n)},
		Sel:   regular.Selection{},
	}}
	for _, e := range base.G.Edges() {
		lo, hi := e.U, e.V
		if lo > hi {
			lo, hi = hi, lo
		}
		pairs := [][2]int{{lo, hi}}
		out = append(out, regular.BaseClass{
			Class: matchClass{
				n:       uint8(n),
				matched: 1<<uint(e.U) | 1<<uint(e.V),
				pairs:   pairs,
			},
			Sel: regular.Selection{EdgePairs: pairs},
		})
	}
	return out, nil
}

// Compose implements ⊙_f: a glued terminal matched in both operands means
// two distinct S-edges share it (operand edge sets are disjoint), which is
// pruned; with Perfect, forgotten unmatched terminals prune as well.
func (p Matching) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(matchClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(matchClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	for _, row := range f.Rows {
		i, j := row[0], row[1]
		if i != 0 && j != 0 && a.matched&(1<<uint(i-1)) != 0 && b.matched&(1<<uint(j-1)) != 0 {
			return nil, false, nil
		}
	}
	if p.Perfect {
		for _, r := range f.Forgotten1() {
			if a.matched&(1<<uint(r-1)) == 0 {
				return nil, false, nil
			}
		}
		for _, r := range f.Forgotten2() {
			if b.matched&(1<<uint(r-1)) == 0 {
				return nil, false, nil
			}
		}
	}
	matched := orResultMask(f, a.matched, b.matched)
	pairs := append(mapPairs(mapRanks1(f), a.pairs), mapPairs(mapRanks2(f), b.pairs)...)
	return matchClass{n: uint8(len(f.Rows)), matched: matched, pairs: regular.NormalizeEdgePairs(pairs)}, true, nil
}

// Accepting implements regular.Predicate: with Perfect, the remaining
// terminals must all be matched.
func (p Matching) Accepting(c regular.Class) (bool, error) {
	cc, ok := c.(matchClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	if !p.Perfect {
		return true, nil
	}
	all := uint64(1)<<uint(cc.n) - 1
	return cc.matched&all == all, nil
}

// Selection implements regular.Predicate.
func (Matching) Selection(c regular.Class) (regular.Selection, error) {
	cc, ok := c.(matchClass)
	if !ok {
		return regular.Selection{}, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return regular.Selection{EdgePairs: cc.pairs}, nil
}

// DecodeClass implements regular.Predicate.
func (Matching) DecodeClass(data []byte) (regular.Class, error) {
	n, rest, err := getU8(data)
	if err != nil {
		return nil, err
	}
	matched, rest, err := getU64(rest)
	if err != nil {
		return nil, err
	}
	pairs, _, err := decodePairs(rest)
	if err != nil {
		return nil, err
	}
	return matchClass{n: n, matched: matched, pairs: pairs}, nil
}
