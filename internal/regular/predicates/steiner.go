package predicates

import (
	"fmt"

	"repro/internal/regular"
	"repro/internal/wterm"
)

// TerminalLabel is the vertex label marking Steiner terminals.
const TerminalLabel = "terminal"

// SteinerTree is the regular predicate φ(S) over edge sets: (V, S) is
// acyclic and all vertices labeled with TerminalLabel lie in one
// S-component. With positive edge weights, Optimize(minimize) computes a
// minimum Steiner tree — one of the paper's listed applications.
//
// The class holds the S-connectivity partition of the bag, a mask of bag
// positions whose block contains a Steiner terminal (possibly an internal
// one), and a "sealed" flag set when a terminal-bearing component loses its
// last bag vertex: from then on no second terminal-bearing component may
// ever exist.
type SteinerTree struct{}

var _ regular.Predicate = SteinerTree{}

type steinerClass struct {
	partition []uint8
	termMask  uint64 // bag positions whose block contains a terminal
	sealed    bool
	pairs     [][2]int // selected owned edges
}

func (c steinerClass) Key() string {
	b := encodePartition(nil, c.partition)
	b = putU64(b, c.termMask)
	if c.sealed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return string(encodePairs(b, c.pairs))
}

// Name implements regular.Predicate.
func (SteinerTree) Name() string { return "steiner-tree" }

// SetKind implements regular.Predicate.
func (SteinerTree) SetKind() regular.SetKind { return regular.SetEdge }

// HomBase enumerates acyclic subsets of the owned edges.
func (SteinerTree) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	edges := base.G.Edges()
	if len(edges) > 62 {
		return nil, fmt.Errorf("predicates: cannot enumerate 2^%d edge selections", len(edges))
	}
	var out []regular.BaseClass
	for mask := uint64(0); mask < 1<<uint(len(edges)); mask++ {
		d := newDSU(n)
		var pairs [][2]int
		cyclic := false
		for i, e := range edges {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			if d.union(e.U, e.V) {
				cyclic = true
				break
			}
			lo, hi := e.U, e.V
			if lo > hi {
				lo, hi = hi, lo
			}
			pairs = append(pairs, [2]int{lo, hi})
		}
		if cyclic {
			continue
		}
		part := make([]uint8, n)
		for r := 0; r < n; r++ {
			part[r] = uint8(d.find(r))
		}
		part = canonicalPartition(part)
		// Terminal-bearing blocks: propagate each labeled terminal's block to
		// every member of that block.
		var termMask uint64
		for r := 0; r < n; r++ {
			if !base.G.HasVertexLabel(TerminalLabel, r) {
				continue
			}
			for s := 0; s < n; s++ {
				if part[s] == part[r] {
					termMask |= 1 << uint(s)
				}
			}
		}
		sel := regular.Selection{EdgePairs: regular.NormalizeEdgePairs(pairs)}
		out = append(out, regular.BaseClass{
			Class: steinerClass{partition: part, termMask: termMask, pairs: sel.EdgePairs},
			Sel:   sel,
		})
	}
	return out, nil
}

// Compose implements ⊙_f.
func (SteinerTree) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(steinerClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(steinerClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	if a.sealed && b.sealed {
		return nil, false, nil // two sealed terminal components can never join
	}
	res := gluePartitions(f, a.partition, b.partition)
	if !res.compatible || res.cyclic {
		return nil, false, nil
	}
	// Propagate terminal-bearing information through the merged blocks: a
	// result block bears a terminal iff any glued operand position in it did.
	termMask := orResultMask(f, a.termMask, b.termMask)
	// Close the mask under the result partition.
	for r := range res.partition {
		if termMask&(1<<uint(r)) == 0 {
			continue
		}
		for s := range res.partition {
			if res.partition[s] == res.partition[r] {
				termMask |= 1 << uint(s)
			}
		}
	}
	// Sealing: gluePartitions reports an orphan when a component loses its
	// last bag position; a Steiner-terminal-bearing orphan seals the tree,
	// and a second seal (or a seal plus a later open terminal block at
	// acceptance) is infeasible.
	sealed := a.sealed || b.sealed
	if res.newOrphan {
		orphanBearsTerminal, err := orphanHasTerminal(f, a, b)
		if err != nil {
			return nil, false, err
		}
		if orphanBearsTerminal {
			if sealed {
				return nil, false, nil
			}
			sealed = true
		}
	}
	pairs := append(mapPairs(mapRanks1(f), a.pairs), mapPairs(mapRanks2(f), b.pairs)...)
	return steinerClass{
		partition: res.partition,
		termMask:  termMask,
		sealed:    sealed,
		pairs:     regular.NormalizeEdgePairs(pairs),
	}, true, nil
}

// orphanHasTerminal re-runs the partition merge to determine whether any
// orphaned merged component contains a terminal-bearing operand position.
func orphanHasTerminal(f wterm.Gluing, a, b steinerClass) (bool, error) {
	n1, n2 := len(a.partition), len(b.partition)
	d := newDSU(n1 + n2)
	for _, row := range f.Rows {
		i, j := row[0], row[1]
		if i != 0 && j != 0 && a.partition[i-1] != inactiveBlock && b.partition[j-1] != inactiveBlock {
			d.union(int(a.partition[i-1]), n1+int(b.partition[j-1]))
		}
	}
	hasResult := map[int]bool{}
	for _, row := range f.Rows {
		i, j := row[0], row[1]
		if i != 0 && a.partition[i-1] != inactiveBlock {
			hasResult[d.find(int(a.partition[i-1]))] = true
		} else if j != 0 && b.partition[j-1] != inactiveBlock {
			hasResult[d.find(n1+int(b.partition[j-1]))] = true
		}
	}
	for r := 0; r < n1; r++ {
		if a.termMask&(1<<uint(r)) != 0 && !hasResult[d.find(int(a.partition[r]))] {
			return true, nil
		}
	}
	for r := 0; r < n2; r++ {
		if b.termMask&(1<<uint(r)) != 0 && !hasResult[d.find(n1+int(b.partition[r]))] {
			return true, nil
		}
	}
	return false, nil
}

// Accepting requires at most one terminal-bearing component overall: either
// everything sealed and no open terminal blocks remain, or a single open
// terminal block.
func (SteinerTree) Accepting(c regular.Class) (bool, error) {
	cc, ok := c.(steinerClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	openBlocks := map[uint8]bool{}
	for r, blk := range cc.partition {
		if blk != inactiveBlock && cc.termMask&(1<<uint(r)) != 0 {
			openBlocks[blk] = true
		}
	}
	if cc.sealed {
		return len(openBlocks) == 0, nil
	}
	return len(openBlocks) <= 1, nil
}

// Selection implements regular.Predicate.
func (SteinerTree) Selection(c regular.Class) (regular.Selection, error) {
	cc, ok := c.(steinerClass)
	if !ok {
		return regular.Selection{}, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return regular.Selection{EdgePairs: cc.pairs}, nil
}

// DecodeClass implements regular.Predicate.
func (SteinerTree) DecodeClass(data []byte) (regular.Class, error) {
	part, rest, err := decodePartition(data)
	if err != nil {
		return nil, err
	}
	termMask, rest, err := getU64(rest)
	if err != nil {
		return nil, err
	}
	sealedByte, rest, err := getU8(rest)
	if err != nil {
		return nil, err
	}
	pairs, _, err := decodePairs(rest)
	if err != nil {
		return nil, err
	}
	return steinerClass{partition: part, termMask: termMask, sealed: sealedByte != 0, pairs: pairs}, nil
}
