// Package predicates provides hand-compiled regular predicates (Definition
// 4.1 of the paper) for the classic problems the paper lists: independent
// set, vertex cover, dominating set, k-colorability, acyclicity, feedback
// vertex set, connectivity, spanning tree / MST, matching, H-subgraph
// containment, and triangle counting. Each predicate implements
// regular.Predicate with compact, explicitly-constructed homomorphism
// classes; they serve both as efficient special-purpose engines and as the
// baselines against which the generic MSO engine is validated.
package predicates

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/wterm"
)

// ErrBadClass is wrapped by class-decoding and class-type errors.
var ErrBadClass = errors.New("predicates: bad class")

// maxTerminals bounds terminal counts so selections fit in uint64 masks.
const maxTerminals = 64

// maxTerminalsPartition bounds terminal counts for predicates whose classes
// are pure partitions/degree vectors (no uint64 masks): ranks must fit in a
// byte alongside the inactiveBlock sentinel.
const maxTerminalsPartition = 200

func checkTerminalCount(n int) error {
	if n > maxTerminals {
		return fmt.Errorf("predicates: %d terminals exceeds the %d-terminal limit", n, maxTerminals)
	}
	return nil
}

func checkTerminalCountPartition(n int) error {
	if n > maxTerminalsPartition {
		return fmt.Errorf("predicates: %d terminals exceeds the %d-terminal limit", n, maxTerminalsPartition)
	}
	return nil
}

// resultMask maps operand selections through a gluing: result bit r is set
// iff the corresponding operand-1 or operand-2 terminal is selected. It also
// reports whether the two selections agree on glued terminals.
func resultMask(f wterm.Gluing, mask1, mask2 uint64) (uint64, bool) {
	var out uint64
	for r, row := range f.Rows {
		i, j := row[0], row[1]
		var b1, b2, has1, has2 bool
		if i != 0 {
			has1 = true
			b1 = mask1&(1<<uint(i-1)) != 0
		}
		if j != 0 {
			has2 = true
			b2 = mask2&(1<<uint(j-1)) != 0
		}
		if has1 && has2 && b1 != b2 {
			return 0, false
		}
		if (has1 && b1) || (has2 && b2) {
			out |= 1 << uint(r)
		}
	}
	return out, true
}

// orResultMask maps operand bit masks through a gluing, OR-ing glued bits
// (no agreement requirement; used for monotone state like "dominated").
func orResultMask(f wterm.Gluing, mask1, mask2 uint64) uint64 {
	var out uint64
	for r, row := range f.Rows {
		if i := row[0]; i != 0 && mask1&(1<<uint(i-1)) != 0 {
			out |= 1 << uint(r)
		}
		if j := row[1]; j != 0 && mask2&(1<<uint(j-1)) != 0 {
			out |= 1 << uint(r)
		}
	}
	return out
}

// mapRanks1 returns, for each operand-1 terminal rank (0-based), the result
// rank (0-based) it maps to, or -1 if forgotten.
func mapRanks1(f wterm.Gluing) []int {
	out := make([]int, f.N1)
	for i := range out {
		out[i] = -1
	}
	for r, row := range f.Rows {
		if row[0] != 0 {
			out[row[0]-1] = r
		}
	}
	return out
}

// mapRanks2 is mapRanks1 for operand 2.
func mapRanks2(f wterm.Gluing) []int {
	out := make([]int, f.N2)
	for i := range out {
		out[i] = -1
	}
	for r, row := range f.Rows {
		if row[1] != 0 {
			out[row[1]-1] = r
		}
	}
	return out
}

// --- disjoint-set union (for connectivity partitions) ---

type dsu struct{ parent []int }

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// union merges the sets of a and b and reports whether they were already in
// the same set (which signals a cycle when used for forest gluing).
func (d *dsu) union(a, b int) (alreadyJoined bool) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return true
	}
	d.parent[ra] = rb
	return false
}

// --- canonical partitions over terminal ranks ---

// inactiveBlock marks terminals that do not participate in a partition
// (e.g. selected vertices in the feedback-vertex-set predicate).
const inactiveBlock = 0xFF

// canonicalPartition renormalizes block IDs so that each active terminal's
// block ID is the minimum rank in its block. blocks[i] == inactiveBlock
// marks inactive terminals.
func canonicalPartition(blocks []uint8) []uint8 {
	minOf := map[uint8]uint8{}
	for i, b := range blocks {
		if b == inactiveBlock {
			continue
		}
		if cur, ok := minOf[b]; !ok || uint8(i) < cur {
			minOf[b] = uint8(i)
		}
	}
	out := make([]uint8, len(blocks))
	for i, b := range blocks {
		if b == inactiveBlock {
			out[i] = inactiveBlock
		} else {
			out[i] = minOf[b]
		}
	}
	return out
}

// glueResult is the outcome of merging two connectivity partitions through a
// gluing.
type glueResult struct {
	partition  []uint8 // canonical partition over result ranks
	cyclic     bool    // two edge-disjoint paths joined the same pair
	cycleCount int     // how many such closures occurred in this gluing
	newOrphan  bool    // some component lost its last terminal
	compatible bool    // shared terminals agree on active/inactive
}

// gluePartitions merges connectivity partitions p1 (over operand-1 ranks)
// and p2 (over operand-2 ranks) through f. Because the edge-owned grammar
// makes operand edge sets disjoint, joining two blocks that are already
// connected certifies a cycle. A component whose terminals are all forgotten
// is reported as a new orphan (it can never gain edges again).
func gluePartitions(f wterm.Gluing, p1, p2 []uint8) glueResult {
	// Classes arrive over the wire: partitions whose length does not match
	// the gluing arity are malformed, not a crash.
	if len(p1) != f.N1 || len(p2) != f.N2 {
		return glueResult{compatible: false}
	}
	// DSU over namespaced blocks: operand-1 block b -> node b, operand-2
	// block b -> node n1+b, where block IDs are canonical (min member rank).
	n1, n2 := len(p1), len(p2)
	d := newDSU(n1 + n2)
	cycles := 0
	for _, row := range f.Rows {
		i, j := row[0], row[1]
		if i == 0 || j == 0 {
			continue
		}
		a1 := p1[i-1] != inactiveBlock
		a2 := p2[j-1] != inactiveBlock
		if a1 != a2 {
			return glueResult{compatible: false}
		}
		if a1 {
			if d.union(int(p1[i-1]), n1+int(p2[j-1])) {
				cycles++
			}
		}
	}
	// Which merged components retain an active result terminal?
	hasResult := map[int]bool{}
	res := make([]uint8, len(f.Rows))
	groupOf := map[int]uint8{}
	for r, row := range f.Rows {
		i, j := row[0], row[1]
		var root int
		active := false
		switch {
		case i != 0 && p1[i-1] != inactiveBlock:
			root = d.find(int(p1[i-1]))
			active = true
		case j != 0 && p2[j-1] != inactiveBlock:
			root = d.find(n1 + int(p2[j-1]))
			active = true
		}
		if !active {
			res[r] = inactiveBlock
			continue
		}
		hasResult[root] = true
		if _, ok := groupOf[root]; !ok {
			groupOf[root] = uint8(r)
		}
		res[r] = groupOf[root]
	}
	// Orphans: any active operand terminal whose merged component has no
	// active result terminal.
	orphan := false
	check := func(p []uint8, offset int) {
		for rank := range p {
			if p[rank] == inactiveBlock {
				continue
			}
			root := d.find(offset + int(p[rank]))
			if !hasResult[root] {
				orphan = true
			}
		}
	}
	check(p1, 0)
	check(p2, n1)
	return glueResult{
		partition:  canonicalPartition(res),
		cyclic:     cycles > 0,
		cycleCount: cycles,
		newOrphan:  orphan,
		compatible: true,
	}
}

// encodePartition appends a partition to a byte buffer.
func encodePartition(b []byte, p []uint8) []byte {
	b = append(b, uint8(len(p)))
	return append(b, p...)
}

// decodePartition reads a partition written by encodePartition, validating
// that every block ID is a rank within the partition (or inactiveBlock):
// wire data is untrusted.
func decodePartition(b []byte) ([]uint8, []byte, error) {
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("%w: truncated partition", ErrBadClass)
	}
	n := int(b[0])
	if len(b) < 1+n {
		return nil, nil, fmt.Errorf("%w: truncated partition body", ErrBadClass)
	}
	out := append([]uint8(nil), b[1:1+n]...)
	for _, blk := range out {
		if blk != inactiveBlock && int(blk) >= n {
			return nil, nil, fmt.Errorf("%w: partition block %d out of range %d", ErrBadClass, blk, n)
		}
	}
	return out, b[1+n:], nil
}

// mapPairs maps selected rank pairs through an operand rank map (from
// mapRanks1/mapRanks2), dropping pairs with a forgotten endpoint.
func mapPairs(ranks []int, pairs [][2]int) [][2]int {
	var out [][2]int
	for _, p := range pairs {
		a, b := ranks[p[0]], ranks[p[1]]
		if a < 0 || b < 0 {
			continue
		}
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]int{a, b})
	}
	return out
}

// encodePairs appends a normalized pair list to a byte buffer.
func encodePairs(b []byte, pairs [][2]int) []byte {
	b = append(b, uint8(len(pairs)))
	for _, p := range pairs {
		b = append(b, uint8(p[0]), uint8(p[1]))
	}
	return b
}

// decodePairs reads a pair list written by encodePairs. Entries are rank
// pairs bounded by maxTerminals; finer range checks happen where ranks are
// resolved against a concrete bag.
func decodePairs(b []byte) ([][2]int, []byte, error) {
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("%w: truncated pairs", ErrBadClass)
	}
	n := int(b[0])
	if len(b) < 1+2*n {
		return nil, nil, fmt.Errorf("%w: truncated pairs body", ErrBadClass)
	}
	out := make([][2]int, n)
	for i := 0; i < n; i++ {
		out[i] = [2]int{int(b[1+2*i]), int(b[2+2*i])}
		if out[i][0] >= maxTerminals || out[i][1] >= maxTerminals {
			return nil, nil, fmt.Errorf("%w: pair rank out of range", ErrBadClass)
		}
	}
	return out, b[1+2*n:], nil
}

// --- binary encoding helpers ---

func putU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func getU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated u64", ErrBadClass)
	}
	return binary.LittleEndian.Uint64(b[:8]), b[8:], nil
}

func putU8(b []byte, v uint8) []byte { return append(b, v) }

func getU8(b []byte) (uint8, []byte, error) {
	if len(b) < 1 {
		return 0, nil, fmt.Errorf("%w: truncated u8", ErrBadClass)
	}
	return b[0], b[1:], nil
}

// selectionFromMask is a convenience for vertex-set predicates.
func selectionFromMask(mask uint64) (vertexMask uint64) { return mask }

// enumerateMasks calls fn for every subset mask over n elements.
func enumerateMasks(n int, fn func(mask uint64) error) error {
	if n >= 63 {
		return fmt.Errorf("predicates: cannot enumerate 2^%d selections", n)
	}
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		if err := fn(mask); err != nil {
			return err
		}
	}
	return nil
}
