package predicates_test

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/seq"
	"repro/internal/treedepth"
)

// bruteEdgeOpt enumerates edge subsets and returns the best weight of a
// feasible one (found=false if none).
func bruteEdgeOpt(g *graph.Graph, feasible func(set *bitset.Set) bool, maximize bool) (bool, int64) {
	m := g.NumEdges()
	found := false
	var best int64
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		set := bitset.New(m)
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				set.Add(i)
			}
		}
		if !feasible(set) {
			continue
		}
		var w int64
		set.ForEach(func(e int) { w += g.EdgeWeight(e) })
		if !found || (maximize && w > best) || (!maximize && w < best) {
			found, best = true, w
		}
	}
	return found, best
}

// isAcyclicEdgeSet reports whether the selected edges contain no cycle.
func isAcyclicEdgeSet(g *graph.Graph, set *bitset.Set) bool {
	parent := make([]int, g.NumVertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	acyclic := true
	set.ForEach(func(id int) {
		e := g.Edge(id)
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			acyclic = false
			return
		}
		parent[ru] = rv
	})
	return acyclic
}

// steinerFeasible: (V,S) acyclic and all labeled terminals S-connected.
func steinerFeasible(g *graph.Graph, set *bitset.Set) bool {
	if !isAcyclicEdgeSet(g, set) {
		return false
	}
	parent := make([]int, g.NumVertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	set.ForEach(func(id int) {
		e := g.Edge(id)
		parent[find(e.U)] = find(e.V)
	})
	root := -1
	for v := 0; v < g.NumVertices(); v++ {
		if !g.HasVertexLabel(predicates.TerminalLabel, v) {
			continue
		}
		if root < 0 {
			root = find(v)
		} else if find(v) != root {
			return false
		}
	}
	return true
}

// hamiltonianFeasible: every vertex has S-degree exactly 2 and S is a single
// connected cycle.
func hamiltonianFeasible(g *graph.Graph, set *bitset.Set) bool {
	n := g.NumVertices()
	if set.Count() != n {
		return false
	}
	deg := make([]int, n)
	set.ForEach(func(id int) {
		e := g.Edge(id)
		deg[e.U]++
		deg[e.V]++
	})
	for _, d := range deg {
		if d != 2 {
			return false
		}
	}
	// n edges, all degrees 2: a disjoint union of cycles; connected iff one.
	sub := graph.New(n)
	set.ForEach(func(id int) {
		e := g.Edge(id)
		sub.MustAddEdge(e.U, e.V)
	})
	return sub.IsConnected()
}

func TestSteinerTreeMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(801))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(7)
		g, _ := gen.BoundedTreedepth(n, 2, 0.5, r.Int63())
		if g.NumEdges() > 14 {
			continue
		}
		gen.AssignRandomWeights(g, 10, r.Int63())
		// Random terminal set of 2-3 vertices.
		numTerm := 2 + r.Intn(2)
		perm := r.Perm(n)
		for i := 0; i < numTerm && i < n; i++ {
			g.SetVertexLabel(predicates.TerminalLabel, perm[i])
		}
		run, err := seqRunner(g, predicates.SteinerTree{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := run.Optimize(false)
		if err != nil {
			t.Fatal(err)
		}
		wantFound, wantW := bruteEdgeOpt(g, func(s *bitset.Set) bool { return steinerFeasible(g, s) }, false)
		if got.Found != wantFound || (wantFound && got.Weight != wantW) {
			t.Fatalf("trial %d: steiner (%v,%d) vs brute (%v,%d) on %v",
				trial, got.Found, got.Weight, wantFound, wantW, g)
		}
		if got.Found && !steinerFeasible(g, got.Edges) {
			t.Fatalf("trial %d: extracted Steiner set infeasible", trial)
		}
	}
}

func TestSteinerTreeNoTerminals(t *testing.T) {
	g := gen.Path(5)
	for _, e := range g.Edges() {
		g.SetEdgeWeight(e.ID, 1)
	}
	run, err := seqRunner(g, predicates.SteinerTree{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Optimize(false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || got.Weight != 0 {
		t.Fatalf("empty terminal set: want weight 0, got %+v", got)
	}
}

func TestHamiltonianCycleDecision(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"C5", gen.Cycle(5), true},
		{"C8", gen.Cycle(8), true},
		{"P5", gen.Path(5), false},
		{"K4", gen.Complete(4), true},
		{"K5", gen.Complete(5), true},
		{"star", gen.Star(5), false},
		{"K23", gen.CompleteBipartite(2, 3), false},
		{"K33", gen.CompleteBipartite(3, 3), true},
		{"K1", graph.New(1), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run, err := seqRunner(tc.g, predicates.HamiltonianCycle{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := run.Decide()
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("hamiltonian(%v) = %v, want %v", tc.g, got, tc.want)
			}
		})
	}
}

func TestHamiltonianCycleMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(802))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(6)
		g, _ := gen.BoundedTreedepth(n, 3, 0.7, r.Int63())
		if g.NumEdges() > 14 {
			continue
		}
		run, err := seqRunner(g, predicates.HamiltonianCycle{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := run.Decide()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := bruteEdgeOpt(g, func(s *bitset.Set) bool { return hamiltonianFeasible(g, s) }, false)
		if got != want {
			t.Fatalf("trial %d: hamiltonian = %v, brute = %v (graph %v)", trial, got, want, g)
		}
	}
}

func TestHamiltonianCycleCount(t *testing.T) {
	// K4 has 3 Hamiltonian cycles (as edge sets).
	run, err := seqRunner(gen.Complete(4), predicates.HamiltonianCycle{})
	if err != nil {
		t.Fatal(err)
	}
	count, err := run.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("hamiltonian cycles of K4 = %d, want 3", count)
	}
	// C6 has exactly one.
	run, err = seqRunner(gen.Cycle(6), predicates.HamiltonianCycle{})
	if err != nil {
		t.Fatal(err)
	}
	count, err = run.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("hamiltonian cycles of C6 = %d, want 1", count)
	}
}

func TestHamiltonianTSPWeighted(t *testing.T) {
	// K4 with one expensive edge: the cheapest tour avoids it if possible.
	g := gen.Complete(4)
	for _, e := range g.Edges() {
		g.SetEdgeWeight(e.ID, 1)
	}
	exp, _ := g.EdgeBetween(0, 1)
	g.SetEdgeWeight(exp, 100)
	run, err := seqRunner(g, predicates.HamiltonianCycle{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Optimize(false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || got.Weight != 4 {
		t.Fatalf("min tour = %+v, want weight 4", got)
	}
	if got.Edges.Contains(exp) {
		t.Fatal("cheapest tour should avoid the expensive edge")
	}
}

func seqRunner(g *graph.Graph, p regular.Predicate) (*seq.Runner, error) {
	return seq.New(g, treedepth.DFSForest(g), p)
}
