package predicates

import (
	"fmt"

	"repro/internal/regular"
	"repro/internal/wterm"
)

// SpanningTree is the regular predicate φ(S) = "the edge set S is a spanning
// tree of G" with a free edge-set variable. With edge weights and
// minimization this solves MST, one of the paper's headline applications.
//
// The class stores the S-connectivity partition of the terminals plus the
// selected owned edges as terminal rank pairs (the Remark after Definition
// 4.1). Cycles in (V, S) prune immediately; so do orphans — an S-component
// that loses its last terminal can never be joined to the rest.
type SpanningTree struct{}

var _ regular.Predicate = SpanningTree{}

type spanClass struct {
	partition []uint8
	pairs     [][2]int
}

func (c spanClass) Key() string {
	return string(encodePairs(encodePartition(nil, c.partition), c.pairs))
}

// Name implements regular.Predicate.
func (SpanningTree) Name() string { return "spanning-tree" }

// SetKind implements regular.Predicate.
func (SpanningTree) SetKind() regular.SetKind { return regular.SetEdge }

// HomBase enumerates subsets of the owned edges; the partition reflects
// S-connectivity within the base.
func (SpanningTree) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	edges := base.G.Edges()
	if len(edges) > 62 {
		return nil, fmt.Errorf("predicates: cannot enumerate 2^%d edge selections", len(edges))
	}
	var out []regular.BaseClass
	for mask := uint64(0); mask < 1<<uint(len(edges)); mask++ {
		d := newDSU(n)
		var pairs [][2]int
		cyclic := false
		for i, e := range edges {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			if d.union(e.U, e.V) {
				cyclic = true
				break
			}
			lo, hi := e.U, e.V
			if lo > hi {
				lo, hi = hi, lo
			}
			pairs = append(pairs, [2]int{lo, hi})
		}
		if cyclic {
			continue
		}
		part := make([]uint8, n)
		for r := 0; r < n; r++ {
			part[r] = uint8(d.find(r))
		}
		sel := regular.Selection{EdgePairs: regular.NormalizeEdgePairs(pairs)}
		out = append(out, regular.BaseClass{
			Class: spanClass{partition: canonicalPartition(part), pairs: sel.EdgePairs},
			Sel:   sel,
		})
	}
	return out, nil
}

// Compose implements ⊙_f: partitions glue (cycles and orphans prune) and
// surviving owned pairs map through the gluing.
func (SpanningTree) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(spanClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(spanClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	res := gluePartitions(f, a.partition, b.partition)
	if !res.compatible || res.cyclic || res.newOrphan {
		return nil, false, nil
	}
	pairs := append(mapPairs(mapRanks1(f), a.pairs), mapPairs(mapRanks2(f), b.pairs)...)
	return spanClass{partition: res.partition, pairs: regular.NormalizeEdgePairs(pairs)}, true, nil
}

// Accepting requires the remaining terminals to lie in one S-component (all
// disconnection shows up as pruned orphans before the root).
func (SpanningTree) Accepting(c regular.Class) (bool, error) {
	cc, ok := c.(spanClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	blocks := map[uint8]bool{}
	for _, b := range cc.partition {
		if b != inactiveBlock {
			blocks[b] = true
		}
	}
	return len(blocks) <= 1, nil
}

// Selection implements regular.Predicate.
func (SpanningTree) Selection(c regular.Class) (regular.Selection, error) {
	cc, ok := c.(spanClass)
	if !ok {
		return regular.Selection{}, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return regular.Selection{EdgePairs: cc.pairs}, nil
}

// DecodeClass implements regular.Predicate.
func (SpanningTree) DecodeClass(data []byte) (regular.Class, error) {
	part, rest, err := decodePartition(data)
	if err != nil {
		return nil, err
	}
	pairs, _, err := decodePairs(rest)
	if err != nil {
		return nil, err
	}
	return spanClass{partition: part, pairs: pairs}, nil
}
