package predicates

import (
	"fmt"

	"repro/internal/regular"
	"repro/internal/wterm"
)

// VertexCover is the regular predicate φ(S) = "S covers every edge" with a
// free vertex-set variable. Coverage is checked at the base graph owning
// each edge, so the class is just the selection on the terminals.
type VertexCover struct{}

var _ regular.Predicate = VertexCover{}

type vcClass struct {
	n    uint8
	mask uint64
}

func (c vcClass) Key() string { return string(putU64(putU8(nil, c.n), c.mask)) }

// Name implements regular.Predicate.
func (VertexCover) Name() string { return "vertex-cover" }

// SetKind implements regular.Predicate.
func (VertexCover) SetKind() regular.SetKind { return regular.SetVertex }

// HomBase enumerates terminal selections that cover every owned edge.
func (VertexCover) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	var out []regular.BaseClass
	err := enumerateMasks(n, func(mask uint64) error {
		for _, e := range base.G.Edges() {
			if mask&(1<<uint(e.U)) == 0 && mask&(1<<uint(e.V)) == 0 {
				return nil // uncovered owned edge
			}
		}
		out = append(out, regular.BaseClass{
			Class: vcClass{n: uint8(n), mask: mask},
			Sel:   regular.Selection{VertexMask: mask},
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Compose implements ⊙_f.
func (VertexCover) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(vcClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(vcClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	mask, compatible := resultMask(f, a.mask, b.mask)
	if !compatible {
		return nil, false, nil
	}
	return vcClass{n: uint8(len(f.Rows)), mask: mask}, true, nil
}

// Accepting implements regular.Predicate.
func (VertexCover) Accepting(regular.Class) (bool, error) { return true, nil }

// Selection implements regular.Predicate.
func (VertexCover) Selection(c regular.Class) (regular.Selection, error) {
	cc, ok := c.(vcClass)
	if !ok {
		return regular.Selection{}, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return regular.Selection{VertexMask: cc.mask}, nil
}

// DecodeClass implements regular.Predicate.
func (VertexCover) DecodeClass(data []byte) (regular.Class, error) {
	n, rest, err := getU8(data)
	if err != nil {
		return nil, err
	}
	mask, _, err := getU64(rest)
	if err != nil {
		return nil, err
	}
	return vcClass{n: n, mask: mask}, nil
}
