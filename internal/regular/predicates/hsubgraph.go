package predicates

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/regular"
	"repro/internal/wterm"
)

// HSubgraph is the closed regular predicate "G contains H as a (not
// necessarily induced) subgraph" for a fixed pattern graph H. H-freeness —
// the application of Corollary 7.3 — is the negation of Decide.
//
// The class is a set of partial-embedding configurations: each H-vertex is
// unmapped, mapped to a terminal rank, or mapped to an already-forgotten
// ("internal") vertex; a bitmask records which H-edges are realized by
// edges of the graph derived so far. An internal H-vertex with an
// unrealized H-edge can never complete (future edges never touch internal
// vertices), so such configurations are pruned, and realized-mask-dominated
// configurations are discarded.
type HSubgraph struct {
	h *graph.Graph
	// homCache and composeCache memoize HomBase and Compose results; base
	// graphs and gluings repeat heavily across the many per-component runs
	// of the Corollary 7.3 driver.
	mu           sync.Mutex
	homCache     map[string][]regular.BaseClass
	composeCache map[string]composeResult
	// autos are the automorphisms of H (as vertex permutations) paired with
	// the induced edge-ID permutations; configurations are canonicalized up
	// to automorphism, which shrinks class sets considerably for symmetric
	// patterns such as cycles and cliques.
	autos []hAutomorphism
	full  uint16 // mask of all H-edges
}

type hAutomorphism struct {
	vperm []int
	eperm []int
}

type composeResult struct {
	class      regular.Class
	compatible bool
}

var _ regular.Predicate = (*HSubgraph)(nil)

// NewHSubgraph builds the predicate for pattern H (1 <= |V(H)| <= 8).
func NewHSubgraph(h *graph.Graph) (*HSubgraph, error) {
	if h.NumVertices() < 1 || h.NumVertices() > 8 {
		return nil, fmt.Errorf("predicates: HSubgraph supports 1..8 pattern vertices, got %d", h.NumVertices())
	}
	if h.NumEdges() > 16 {
		return nil, fmt.Errorf("predicates: HSubgraph supports up to 16 pattern edges, got %d", h.NumEdges())
	}
	p := &HSubgraph{
		h:            h.Clone(),
		homCache:     map[string][]regular.BaseClass{},
		composeCache: map[string]composeResult{},
	}
	p.autos = automorphisms(p.h)
	for _, e := range p.h.Edges() {
		p.full |= edgeBit(e.ID)
	}
	return p, nil
}

// automorphisms enumerates the automorphism group of h by backtracking.
func automorphisms(h *graph.Graph) []hAutomorphism {
	n := h.NumVertices()
	var out []hAutomorphism
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			eperm := make([]int, h.NumEdges())
			for _, e := range h.Edges() {
				id, ok := h.EdgeBetween(perm[e.U], perm[e.V])
				if !ok {
					return
				}
				eperm[e.ID] = id
			}
			out = append(out, hAutomorphism{vperm: append([]int(nil), perm...), eperm: eperm})
			return
		}
		for w := 0; w < n; w++ {
			if used[w] {
				continue
			}
			ok := true
			for u := 0; u < i; u++ {
				if h.HasEdge(i, u) != h.HasEdge(w, perm[u]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			perm[i] = w
			used[w] = true
			rec(i + 1)
			used[w] = false
		}
	}
	rec(0)
	return out
}

// applyAuto returns the config twisted by one automorphism.
func (p *HSubgraph) applyAuto(cfg hsubConfig, a hAutomorphism) hsubConfig {
	pv := p.h.NumVertices()
	mapped := hsubConfig{status: make([]uint8, pv)}
	for v := 0; v < pv; v++ {
		mapped.status[v] = cfg.status[a.vperm[v]]
	}
	for _, e := range p.h.Edges() {
		if cfg.realized&edgeBit(a.eperm[e.ID]) != 0 {
			mapped.realized |= edgeBit(e.ID)
		}
	}
	return mapped
}

// canonicalConfig returns the automorphism-minimal encoding of a config.
// Classes store only canonical representatives; Compose re-expands one
// operand through the group, so no joins are lost.
func (p *HSubgraph) canonicalConfig(cfg hsubConfig) hsubConfig {
	best := cfg
	bestEnc := cfg.encode()
	for _, a := range p.autos[1:] {
		mapped := p.applyAuto(cfg, a)
		if enc := mapped.encode(); enc < bestEnc {
			best, bestEnc = mapped, enc
		}
	}
	return best
}

// orbit returns all distinct automorphism images of a config.
func (p *HSubgraph) orbit(cfg hsubConfig) []hsubConfig {
	seen := map[string]bool{cfg.encode(): true}
	out := []hsubConfig{cfg}
	for _, a := range p.autos[1:] {
		mapped := p.applyAuto(cfg, a)
		if enc := mapped.encode(); !seen[enc] {
			seen[enc] = true
			out = append(out, mapped)
		}
	}
	return out
}

// Pattern returns a copy of the pattern graph.
func (p *HSubgraph) Pattern() *graph.Graph { return p.h.Clone() }

const (
	statusUnmapped = 0
	statusInternal = 0xFE
	// terminal rank r is encoded as r+1
)

// hsubConfig is one partial embedding: status per H-vertex plus the realized
// H-edge mask.
type hsubConfig struct {
	status   []uint8
	realized uint16
}

func (c hsubConfig) encode() string {
	b := make([]byte, 0, len(c.status)+2)
	b = append(b, c.status...)
	b = append(b, byte(c.realized), byte(c.realized>>8))
	return string(b)
}

type hsubClass struct {
	p       int      // |V(H)|
	found   bool     // absorbing: a complete embedding exists
	configs []string // encoded configs, sorted
}

func (c hsubClass) Key() string {
	b := make([]byte, 0, 5+len(c.configs)*(c.p+2))
	b = append(b, uint8(c.p))
	if c.found {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, uint8(len(c.configs)>>16), uint8(len(c.configs)>>8), uint8(len(c.configs)))
	for _, cfg := range c.configs {
		b = append(b, cfg...)
	}
	return string(b)
}

// Name implements regular.Predicate.
func (p *HSubgraph) Name() string {
	return fmt.Sprintf("h-subgraph(p=%d,m=%d)", p.h.NumVertices(), p.h.NumEdges())
}

// SetKind implements regular.Predicate.
func (*HSubgraph) SetKind() regular.SetKind { return regular.SetNone }

func (p *HSubgraph) newClass(set map[string]hsubConfig) hsubClass {
	// Absorbing acceptance: once a complete embedding exists the class needs
	// no further structure.
	for _, cfg := range set {
		if p.isComplete(cfg) {
			return hsubClass{p: p.h.NumVertices(), found: true}
		}
	}
	// Domination pruning: among configs with identical statuses, keep only
	// maximal realized masks.
	byStatus := map[string][]hsubConfig{}
	for _, cfg := range set {
		k := string(cfg.status)
		byStatus[k] = append(byStatus[k], cfg)
	}
	var configs []string
	for _, group := range byStatus {
		for i, a := range group {
			dominated := false
			for j, b := range group {
				if i == j {
					continue
				}
				if a.realized&^b.realized == 0 && (a.realized != b.realized || j < i) {
					dominated = true
					break
				}
			}
			if !dominated {
				configs = append(configs, a.encode())
			}
		}
	}
	sort.Strings(configs)
	return hsubClass{p: p.h.NumVertices(), configs: configs}
}

// edgeMaskBit returns the bit index of H-edge id.
func edgeBit(id int) uint16 { return 1 << uint(id) }

// valid prunes configurations in which an internal H-vertex has an
// unrealized H-edge.
func (p *HSubgraph) valid(cfg hsubConfig) bool {
	for _, e := range p.h.Edges() {
		if cfg.realized&edgeBit(e.ID) != 0 {
			continue
		}
		if cfg.status[e.U] == statusInternal || cfg.status[e.V] == statusInternal {
			return false
		}
	}
	return true
}

// isComplete reports whether every H-vertex is mapped and every H-edge
// realized.
func (p *HSubgraph) isComplete(cfg hsubConfig) bool {
	if cfg.realized != p.full {
		return false
	}
	for _, st := range cfg.status {
		if st == statusUnmapped {
			return false
		}
	}
	return true
}

// HomBase enumerates injective partial maps of V(H) into the base terminals;
// realized edges are those whose images are joined by an owned edge.
func (p *HSubgraph) HomBase(base *wterm.TerminalGraph) ([]regular.BaseClass, error) {
	n := base.NumTerminals()
	if err := checkTerminalCount(n); err != nil {
		return nil, err
	}
	cacheKey := graph.CanonicalKey(base.G)
	p.mu.Lock()
	if cached, ok := p.homCache[cacheKey]; ok {
		p.mu.Unlock()
		return cached, nil
	}
	p.mu.Unlock()
	pv := p.h.NumVertices()
	set := map[string]hsubConfig{}
	status := make([]uint8, pv)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == pv {
			var realized uint16
			for _, e := range p.h.Edges() {
				su, sv := status[e.U], status[e.V]
				if su == statusUnmapped || sv == statusUnmapped {
					continue
				}
				if base.G.HasEdge(int(su-1), int(sv-1)) {
					realized |= edgeBit(e.ID)
				}
			}
			cfg := p.canonicalConfig(hsubConfig{status: append([]uint8(nil), status...), realized: realized})
			set[cfg.encode()] = cfg
			return
		}
		status[i] = statusUnmapped
		rec(i + 1)
		for r := 0; r < n; r++ {
			if used[r] {
				continue
			}
			used[r] = true
			status[i] = uint8(r + 1)
			rec(i + 1)
			used[r] = false
		}
		status[i] = statusUnmapped
	}
	rec(0)
	out := []regular.BaseClass{{Class: p.newClass(set)}}
	p.mu.Lock()
	p.homCache[cacheKey] = out
	p.mu.Unlock()
	return out, nil
}

// Compose joins configuration sets: statuses combine per H-vertex (an
// H-vertex mapped in both operands must sit on a glued terminal pair),
// realized masks union, forgotten terminals become internal, and invalid
// configurations are pruned.
func (p *HSubgraph) Compose(f wterm.Gluing, c1, c2 regular.Class) (regular.Class, bool, error) {
	a, ok := c1.(hsubClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c1)
	}
	b, ok := c2.(hsubClass)
	if !ok {
		return nil, false, fmt.Errorf("%w: %T", ErrBadClass, c2)
	}
	if a.found || b.found {
		return hsubClass{p: p.h.NumVertices(), found: true}, true, nil
	}
	cacheKey := f.Key() + "\x00" + a.Key() + "\x00" + b.Key()
	p.mu.Lock()
	if cached, ok := p.composeCache[cacheKey]; ok {
		p.mu.Unlock()
		return cached.class, cached.compatible, nil
	}
	p.mu.Unlock()
	ranks1, ranks2 := mapRanks1(f), mapRanks2(f)
	pv := p.h.NumVertices()
	decode := func(s string) hsubConfig {
		return hsubConfig{status: []uint8(s[:pv]), realized: uint16(s[pv]) | uint16(s[pv+1])<<8}
	}
	// Expand operand 2's canonical representatives through the automorphism
	// group so that quotienting does not lose joins.
	var bExpanded []hsubConfig
	for _, sb := range b.configs {
		bExpanded = append(bExpanded, p.orbit(decode(sb))...)
	}
	out := map[string]hsubConfig{}
	for _, sa := range a.configs {
		ca := decode(sa)
		for _, cb := range bExpanded {
			status := make([]uint8, pv)
			compatible := true
			for v := 0; v < pv; v++ {
				s1, s2 := ca.status[v], cb.status[v]
				switch {
				case s1 == statusUnmapped && s2 == statusUnmapped:
					status[v] = statusUnmapped
				case s1 == statusInternal && s2 == statusUnmapped:
					status[v] = statusInternal
				case s2 == statusInternal && s1 == statusUnmapped:
					status[v] = statusInternal
				case s1 != statusUnmapped && s1 != statusInternal && s2 == statusUnmapped:
					status[v] = mapStatus(ranks1, s1)
				case s2 != statusUnmapped && s2 != statusInternal && s1 == statusUnmapped:
					status[v] = mapStatus(ranks2, s2)
				case s1 != statusUnmapped && s1 != statusInternal && s2 != statusUnmapped && s2 != statusInternal:
					// Mapped in both operands: must be the same glued vertex.
					r1, r2 := ranks1[s1-1], ranks2[s2-1]
					if r1 < 0 || r1 != r2 {
						compatible = false
					} else {
						status[v] = uint8(r1 + 1)
					}
				default:
					// internal in one, mapped in the other: distinct vertices.
					compatible = false
				}
				if !compatible {
					break
				}
			}
			if !compatible {
				continue
			}
			// Injectivity on terminals: two H-vertices cannot land on the
			// same result terminal.
			seen := map[uint8]bool{}
			for _, s := range status {
				if s != statusUnmapped && s != statusInternal {
					if seen[s] {
						compatible = false
						break
					}
					seen[s] = true
				}
			}
			if !compatible {
				continue
			}
			cfg := hsubConfig{status: status, realized: ca.realized | cb.realized}
			if !p.valid(cfg) {
				continue
			}
			cfg = p.canonicalConfig(cfg)
			out[cfg.encode()] = cfg
		}
	}
	result := p.newClass(out)
	p.mu.Lock()
	p.composeCache[cacheKey] = composeResult{class: result, compatible: true}
	p.mu.Unlock()
	return result, true, nil
}

func mapStatus(ranks []int, s uint8) uint8 {
	r := ranks[s-1]
	if r < 0 {
		return statusInternal
	}
	return uint8(r + 1)
}

// Accepting reports whether a complete embedding of H was found (classes
// collapse to an absorbing found-state as soon as one exists).
func (p *HSubgraph) Accepting(c regular.Class) (bool, error) {
	cc, ok := c.(hsubClass)
	if !ok {
		return false, fmt.Errorf("%w: %T", ErrBadClass, c)
	}
	return cc.found, nil
}

// Selection implements regular.Predicate (closed predicate: empty).
func (*HSubgraph) Selection(regular.Class) (regular.Selection, error) {
	return regular.Selection{}, nil
}

// DecodeClass implements regular.Predicate.
func (p *HSubgraph) DecodeClass(data []byte) (regular.Class, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("%w: truncated hsub class", ErrBadClass)
	}
	pv := int(data[0])
	found := data[1] != 0
	count := int(data[2])<<16 | int(data[3])<<8 | int(data[4])
	body := data[5:]
	size := pv + 2
	if len(body) < count*size {
		return nil, fmt.Errorf("%w: truncated hsub configs", ErrBadClass)
	}
	configs := make([]string, count)
	for i := 0; i < count; i++ {
		configs[i] = string(body[i*size : (i+1)*size])
	}
	return hsubClass{p: pv, found: found, configs: configs}, nil
}
