// Package regular defines regular graph predicates in the sense of
// Definition 4.1 of the paper (Borie–Parker–Tovey): a finite set of
// homomorphism classes per terminal count, a homomorphism function on base
// graphs, and an update function ⊙_f per composition f. It also provides the
// generic dynamic-programming table algebra (decision sets, OPT tables with
// back-pointers, COUNT tables) shared by the sequential Algorithm 1 driver
// and the distributed CONGEST protocol.
//
// The library derives graphs through the edge-owned grammar (see package
// wterm): every edge and every vertex weight is introduced by exactly one
// base graph, so OPT is a plain sum and COUNT a plain product over
// compatible class pairs — Equations (3)–(4) of the paper with the
// inclusion–exclusion correction term identically zero.
package regular

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/wterm"
)

// ErrOverflow is returned when table arithmetic (COUNT products/sums or OPT
// weight sums) exceeds int64.
var ErrOverflow = errors.New("regular: table arithmetic overflow")

// SetKind describes the free set variable of a predicate.
type SetKind int

// Set-variable kinds: closed predicates have SetNone.
const (
	SetNone SetKind = iota + 1
	SetVertex
	SetEdge
)

// Class is an opaque homomorphism class. Key must be a canonical encoding:
// two classes are equal iff their keys are equal, and DecodeClass(Key) must
// reconstruct the class (keys double as the CONGEST wire format).
type Class interface {
	Key() string
}

// Selection is the restriction of the free set variable to a w-terminal
// graph, as in the Remark after Definition 4.1: a bitmask over terminal ranks
// (0-based) for vertex predicates, and the selected owned edges as terminal
// rank pairs (lo < hi, 0-based) for edge predicates.
type Selection struct {
	VertexMask uint64
	EdgePairs  [][2]int
}

// NormalizeEdgePairs sorts and normalizes the pair list in place and returns
// it; pairs are stored with lo < hi in lexicographic order.
func NormalizeEdgePairs(pairs [][2]int) [][2]int {
	for i, p := range pairs {
		if p[0] > p[1] {
			pairs[i] = [2]int{p[1], p[0]}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// BaseClass pairs a homomorphism class of a base graph with the selection
// that produced it.
type BaseClass struct {
	Class Class
	Sel   Selection
}

// Predicate is a regular graph predicate (Definition 4.1). Implementations
// must be deterministic: HomBase and Compose may not depend on anything but
// their arguments.
type Predicate interface {
	// Name identifies the predicate in logs and CLIs.
	Name() string
	// SetKind reports the kind of the free set variable.
	SetKind() SetKind
	// HomBase enumerates h(base, X) over all restrictions X of the free set
	// variable to the base graph (a single entry for closed predicates).
	// Every vertex of the base is a terminal.
	HomBase(base *wterm.TerminalGraph) ([]BaseClass, error)
	// Compose is the update function ⊙_f. The boolean is false when the two
	// classes are incompatible under f (selections disagree on glued
	// terminals, or forgetting a terminal violates the predicate for good).
	Compose(f wterm.Gluing, c1, c2 Class) (Class, bool, error)
	// Accepting reports whether the class is accepting.
	Accepting(c Class) (bool, error)
	// Selection reports the free-variable restriction encoded in the class
	// (zero Selection for closed predicates).
	Selection(c Class) (Selection, error)
	// DecodeClass reconstructs a class from its Key (wire format).
	DecodeClass(data []byte) (Class, error)
}

// --- Decision tables ---

// ClassSet is a decision-mode table: the set of reachable classes, keyed
// canonically.
type ClassSet map[string]Class

// NewClassSet builds a ClassSet from classes.
func NewClassSet(classes ...Class) ClassSet {
	s := make(ClassSet, len(classes))
	for _, c := range classes {
		s[c.Key()] = c
	}
	return s
}

// Keys returns the sorted keys (canonical iteration order).
func (s ClassSet) Keys() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FoldDecide computes the class set of f(acc, child) from the operand class
// sets.
func FoldDecide(p Predicate, f wterm.Gluing, acc, child ClassSet) (ClassSet, error) {
	out := make(ClassSet)
	for _, ka := range acc.Keys() {
		for _, kc := range child.Keys() {
			c, ok, err := p.Compose(f, acc[ka], child[kc])
			if err != nil {
				return nil, err
			}
			if ok {
				out[c.Key()] = c
			}
		}
	}
	return out, nil
}

// AnyAccepting reports whether some class in the set is accepting.
func AnyAccepting(p Predicate, s ClassSet) (bool, error) {
	for _, k := range s.Keys() {
		acc, err := p.Accepting(s[k])
		if err != nil {
			return false, err
		}
		if acc {
			return true, nil
		}
	}
	return false, nil
}

// --- OPT tables ---

// OptEntry is one OPT-table row: the best achievable weight of a partial
// solution in this homomorphism class.
type OptEntry struct {
	Class  Class
	Weight int64
}

// OptTable maps class keys to their best entries. It plays the role of
// OPT(G_u) from Definition 4.5 (entries absent from the map are -infinity).
type OptTable map[string]OptEntry

// Keys returns the sorted class keys.
func (t OptTable) Keys() []string {
	out := make([]string, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Better reports whether weight a beats weight b under the given direction.
func Better(a, b int64, maximize bool) bool {
	if maximize {
		return a > b
	}
	return a < b
}

// OptBack records, for one result class, the operand classes that produced
// its best weight — the ARGOPT information of Lemma 4.6.
type OptBack struct {
	AccKey   string
	ChildKey string
}

// FoldOpt computes OPT(f(acc, child)) and the back-pointers for extraction.
func FoldOpt(p Predicate, f wterm.Gluing, acc, child OptTable, maximize bool) (OptTable, map[string]OptBack, error) {
	out := make(OptTable)
	back := make(map[string]OptBack)
	for _, ka := range acc.Keys() {
		for _, kc := range child.Keys() {
			c, ok, err := p.Compose(f, acc[ka].Class, child[kc].Class)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				continue
			}
			w, err := AddWeights(acc[ka].Weight, child[kc].Weight)
			if err != nil {
				return nil, nil, err
			}
			key := c.Key()
			if prev, exists := out[key]; !exists || Better(w, prev.Weight, maximize) {
				out[key] = OptEntry{Class: c, Weight: w}
				back[key] = OptBack{AccKey: ka, ChildKey: kc}
			}
		}
	}
	return out, back, nil
}

// BestAccepting returns the accepting entry with the best weight, or
// found=false when no accepting class is reachable (the problem is
// infeasible, e.g. no spanning tree of a disconnected graph).
func BestAccepting(p Predicate, t OptTable, maximize bool) (OptEntry, bool, error) {
	var best OptEntry
	found := false
	for _, k := range t.Keys() {
		acc, err := p.Accepting(t[k].Class)
		if err != nil {
			return OptEntry{}, false, err
		}
		if !acc {
			continue
		}
		if !found || Better(t[k].Weight, best.Weight, maximize) {
			best = t[k]
			found = true
		}
	}
	return best, found, nil
}

// --- COUNT tables ---

// CountEntry is one COUNT-table row: the number of partial assignments in
// this class.
type CountEntry struct {
	Class Class
	Count int64
}

// CountTable maps class keys to counts (the table COUNT(G) of Section 6).
type CountTable map[string]CountEntry

// Keys returns the sorted class keys.
func (t CountTable) Keys() []string {
	out := make([]string, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FoldCount computes COUNT(f(acc, child)): products of compatible pairs,
// summed per result class, with int64 overflow detection.
func FoldCount(p Predicate, f wterm.Gluing, acc, child CountTable) (CountTable, error) {
	out := make(CountTable)
	for _, ka := range acc.Keys() {
		for _, kc := range child.Keys() {
			c, ok, err := p.Compose(f, acc[ka].Class, child[kc].Class)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			prod, err := mulCheck(acc[ka].Count, child[kc].Count)
			if err != nil {
				return nil, err
			}
			key := c.Key()
			entry := out[key]
			entry.Class = c
			entry.Count, err = addCheck(entry.Count, prod)
			if err != nil {
				return nil, err
			}
			out[key] = entry
		}
	}
	return out, nil
}

// TotalAccepting sums the counts of accepting classes.
func TotalAccepting(p Predicate, t CountTable) (int64, error) {
	var total int64
	for _, k := range t.Keys() {
		acc, err := p.Accepting(t[k].Class)
		if err != nil {
			return 0, err
		}
		if acc {
			var err2 error
			total, err2 = addCheck(total, t[k].Count)
			if err2 != nil {
				return 0, err2
			}
		}
	}
	return total, nil
}

func mulCheck(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > uint64(1)<<62 {
		return 0, fmt.Errorf("%w: %d * %d", ErrOverflow, a, b)
	}
	return int64(lo), nil
}

func addCheck(a, b int64) (int64, error) {
	s := a + b
	if s < a {
		return 0, fmt.Errorf("%w: %d + %d", ErrOverflow, a, b)
	}
	return s, nil
}

// --- Base-table builders ---

// BaseWeight computes the weight contribution of a base-graph selection
// under edge-owned accounting: the owner vertex's weight if selected plus
// the weights of the selected owned edges. ownerRank is the terminal rank of
// the bag's deepest vertex (the owner of the base graph).
func BaseWeight(base *wterm.TerminalGraph, ownerRank int, sel Selection) (int64, error) {
	var w int64
	if sel.VertexMask&(1<<uint(ownerRank)) != 0 {
		w += base.G.VertexWeight(base.Terminals[ownerRank])
	}
	for _, pair := range sel.EdgePairs {
		u, v := base.Terminals[pair[0]], base.Terminals[pair[1]]
		id, ok := base.G.EdgeBetween(u, v)
		if !ok {
			return 0, fmt.Errorf("regular: selected pair (%d,%d) is not a base edge", pair[0], pair[1])
		}
		w += base.G.EdgeWeight(id)
	}
	return w, nil
}

// BaseOptTable builds OPT(base) from HomBase, keeping the best weight per
// class (Equation (3) under edge-owned accounting).
func BaseOptTable(p Predicate, base *wterm.TerminalGraph, ownerRank int, maximize bool) (OptTable, error) {
	classes, err := p.HomBase(base)
	if err != nil {
		return nil, err
	}
	out := make(OptTable, len(classes))
	for _, bc := range classes {
		w, err := BaseWeight(base, ownerRank, bc.Sel)
		if err != nil {
			return nil, err
		}
		key := bc.Class.Key()
		if prev, exists := out[key]; !exists || Better(w, prev.Weight, maximize) {
			out[key] = OptEntry{Class: bc.Class, Weight: w}
		}
	}
	return out, nil
}

// BaseCountTable builds COUNT(base) from HomBase: each enumerated selection
// contributes one assignment.
func BaseCountTable(p Predicate, base *wterm.TerminalGraph) (CountTable, error) {
	classes, err := p.HomBase(base)
	if err != nil {
		return nil, err
	}
	out := make(CountTable, len(classes))
	for _, bc := range classes {
		key := bc.Class.Key()
		entry := out[key]
		entry.Class = bc.Class
		var err2 error
		entry.Count, err2 = addCheck(entry.Count, 1)
		if err2 != nil {
			return nil, err2
		}
		out[key] = entry
	}
	return out, nil
}

// BaseClassSet builds the decision table of a base graph.
func BaseClassSet(p Predicate, base *wterm.TerminalGraph) (ClassSet, error) {
	classes, err := p.HomBase(base)
	if err != nil {
		return nil, err
	}
	out := make(ClassSet, len(classes))
	for _, bc := range classes {
		out[bc.Class.Key()] = bc.Class
	}
	return out, nil
}
