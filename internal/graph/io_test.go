package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := New(5)
	e0 := mustEdge(t, g, 0, 1)
	e1 := mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	g.SetVertexLabel("red", 0)
	g.SetVertexLabel("blue", 4)
	g.SetEdgeLabel("mark", e1)
	g.SetVertexWeight(2, -3)
	g.SetEdgeWeight(e0, 17)

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalKey(g) != CanonicalKey(h) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", CanonicalKey(g), CanonicalKey(h))
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"no header", "e 0 1\n"},
		{"bad int", "n x\n"},
		{"loop", "n 2\ne 1 1\n"},
		{"out of range vertex", "n 2\ne 0 5\n"},
		{"unknown record", "n 2\nzz 1\n"},
		{"edge label out of range", "n 2\ne 0 1\nel mark 3\n"},
		{"missing field", "n 2\ne 0\n"},
		{"empty", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.input)); err == nil {
				t.Fatalf("expected error for %q", tc.input)
			}
		})
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# a comment\nn 3\n\ne 0 1\n  # another\ne 1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %v", g)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	g.SetVertexLabel("red", 0)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph G {", "0 -- 1;", "red"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestCanonicalKeyDistinguishes(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	h := New(3)
	mustEdge(t, h, 1, 2)
	if CanonicalKey(g) == CanonicalKey(h) {
		t.Fatal("different graphs must have different keys")
	}
	g2 := g.Clone()
	if CanonicalKey(g) != CanonicalKey(g2) {
		t.Fatal("clone must have equal key")
	}
	g2.SetVertexWeight(0, 1)
	if CanonicalKey(g) == CanonicalKey(g2) {
		t.Fatal("weights must affect the key")
	}
}
