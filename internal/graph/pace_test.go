package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestPACERoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(30)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.2 {
					g.MustAddEdge(u, v)
				}
			}
		}
		var buf bytes.Buffer
		if err := WritePACE(&buf, g); err != nil {
			t.Fatal(err)
		}
		first := buf.String()
		h, err := ReadPACE(strings.NewReader(first))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, first)
		}
		if CanonicalKey(h) != CanonicalKey(g) {
			t.Fatalf("trial %d: round trip changed the graph", trial)
		}
		// Writing the parsed graph again must be byte-identical: the format
		// preserves edge order, so the encoding is stable.
		var buf2 bytes.Buffer
		if err := WritePACE(&buf2, h); err != nil {
			t.Fatal(err)
		}
		if buf2.String() != first {
			t.Fatalf("trial %d: second encoding differs:\n%s\nvs\n%s", trial, buf2.String(), first)
		}
	}
}

func TestPACEReadAcceptsCommentsAndTD(t *testing.T) {
	in := "c treedepth instance\np td 4 3\nc edges follow\n1 2\n2 3\n\n3 4\n"
	g, err := ReadPACE(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatalf("parsed wrong graph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestPACEReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no-problem-line", "1 2\n"},
		{"bad-descriptor", "p tw 3 1\n1 2\n"},
		{"bad-counts", "p tdp x 1\n"},
		{"duplicate-problem", "p tdp 2 0\np tdp 2 0\n"},
		{"endpoint-zero", "p tdp 3 1\n0 1\n"},
		{"endpoint-high", "p tdp 3 1\n1 4\n"},
		{"self-loop", "p tdp 3 1\n2 2\n"},
		{"duplicate-edge", "p tdp 3 2\n1 2\n2 1\n"},
		{"edge-count-mismatch", "p tdp 3 2\n1 2\n"},
		{"malformed-edge", "p tdp 3 1\n1 2 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPACE(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ReadPACE(%q) succeeded, want error", tc.in)
			}
		})
	}
}
