package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePACE writes g in the PACE challenge .gr format used by the treedepth
// tracks:
//
//	c <comment>          (optional, not emitted here)
//	p tdp <n> <m>
//	<u> <v>              (one line per edge, 1-indexed, in ID order)
//
// Labels and weights are not representable in .gr and are dropped.
func WritePACE(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p tdp %d %d\n", g.NumVertices(), g.NumEdges())
	for _, e := range g.edges {
		fmt.Fprintf(bw, "%d %d\n", e.U+1, e.V+1)
	}
	return bw.Flush()
}

// ReadPACE parses the PACE .gr format produced by WritePACE: a "p tdp n m"
// problem line (the descriptor "td" is also accepted), "c" comment lines
// anywhere, and one 1-indexed edge per remaining line. Duplicate edges and
// self-loops are rejected, matching the PACE instance rules for simple graphs.
func ReadPACE(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	wantEdges := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "p" {
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate problem line", lineNo)
			}
			if len(fields) != 4 || (fields[1] != "tdp" && fields[1] != "td") {
				return nil, fmt.Errorf("graph: line %d: expected 'p tdp <n> <m>'", lineNo)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, fields[2])
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge count %q", lineNo, fields[3])
			}
			g, wantEdges = New(n), m
			continue
		}
		if g == nil {
			return nil, fmt.Errorf("graph: line %d: edge before problem line", lineNo)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected '<u> <v>'", lineNo)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad endpoint %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad endpoint %q", lineNo, fields[1])
		}
		if u < 1 || u > g.NumVertices() || v < 1 || v > g.NumVertices() {
			return nil, fmt.Errorf("graph: line %d: endpoint out of range [1, %d]", lineNo, g.NumVertices())
		}
		if _, err := g.AddEdge(u-1, v-1); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing problem line")
	}
	if g.NumEdges() != wantEdges {
		return nil, fmt.Errorf("graph: problem line declares %d edges, found %d", wantEdges, g.NumEdges())
	}
	return g, nil
}
