package gen

import (
	"math"
	"math/rand"
)

// Streaming generators: the same edge sequences as their materializing
// counterparts (Path, RandomTree, ConnectedSparseGNP), delivered through a
// callback instead of a *graph.Graph. At n = 10^6 the Graph structure itself
// (adjacency slices, edge records, weight maps) dominates memory; a tool that
// only needs to write an edge list can stream in O(n) bits of state — a spine
// bitmap for the GNP family and nothing at all for paths and trees.
//
// Each StreamX is pinned by tests to emit exactly the edges of X, in X's
// insertion order, consuming randomness identically, so a streamed file and a
// materialized graph are interchangeable for a given seed.

// StreamPath emits the edges of Path(n) in order.
func StreamPath(n int, emit func(u, v int)) {
	for i := 0; i+1 < n; i++ {
		emit(i, i+1)
	}
}

// StreamRandomTree emits the edges of RandomTree(n, seed) in order.
func StreamRandomTree(n int, seed int64, emit func(u, v int)) {
	r := rand.New(rand.NewSource(seed))
	for i := 1; i < n; i++ {
		emit(r.Intn(i), i)
	}
}

// StreamConnectedSparseGNP emits the edges of ConnectedSparseGNP(n, p, seed)
// in order: the Batagelj-Brandes geometric-skip enumeration first, then the
// spine edges (v-1, v) that the random part missed. Peak state is one bool per
// vertex.
func StreamConnectedSparseGNP(n int, p float64, seed int64, emit func(u, v int)) {
	spine := make([]bool, n)
	emitGNP := func(w, v int) {
		if w == v-1 {
			spine[v] = true
		}
		emit(w, v)
	}
	streamSparseGNP(n, p, seed, emitGNP)
	for v := 1; v < n; v++ {
		if !spine[v] {
			emit(v-1, v)
		}
	}
}

// streamSparseGNP mirrors SparseGNP's pair enumeration exactly; see the
// comments there for the geometric-skip derivation.
func streamSparseGNP(n int, p float64, seed int64, emit func(u, v int)) {
	if n < 2 || p <= 0 {
		return
	}
	r := rand.New(rand.NewSource(seed))
	if p >= 1 {
		for v := 1; v < n; v++ {
			for w := 0; w < v; w++ {
				emit(w, v)
			}
		}
		return
	}
	logq := math.Log1p(-p)
	maxSkip := float64(n) * float64(n)
	v, w := 1, -1
	for v < n {
		skip := math.Log(1-r.Float64()) / logq
		if skip > maxSkip {
			break
		}
		w += 1 + int(skip)
		for v < n && w >= v {
			w -= v
			v++
		}
		if v < n {
			emit(w, v)
		}
	}
}
