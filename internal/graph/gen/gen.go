// Package gen provides deterministic, seedable generators for the graph
// families used across tests, examples, and the benchmark harness: classic
// families (paths, cycles, cliques, grids, trees), random graphs of bounded
// treedepth (via random elimination forests), bounded-degeneracy graphs, and
// maximal outerplanar graphs for the bounded-expansion experiments.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Path returns the path P_n on vertices 0-1-2-...-(n-1).
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle C_n. It panics if n < 3.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: cycle needs n >= 3, got %d", n))
	}
	g := Path(n)
	g.MustAddEdge(n-1, 0)
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on one side, a..a+b-1 on
// the other.
func CompleteBipartite(a, b int) *graph.Graph {
	g := graph.New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.MustAddEdge(i, a+j)
		}
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n vertices (random
// parent attachment, which is not uniform over all trees but adequate for
// workloads).
func RandomTree(n int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(r.Intn(i), i)
	}
	return g
}

// Caterpillar returns a caterpillar: a spine path of the given length with
// legs pendant vertices attached to each spine vertex. Total vertices:
// spine*(1+legs). Caterpillars have large diameter, which exercises the
// baseline protocols.
func Caterpillar(spine, legs int) *graph.Graph {
	n := spine * (1 + legs)
	g := graph.New(n)
	for i := 0; i+1 < spine; i++ {
		g.MustAddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.MustAddEdge(i, next)
			next++
		}
	}
	return g
}

// Grid returns the rows x cols grid graph (planar, bounded expansion).
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// CompleteBinaryTree returns the complete binary tree with the given number
// of levels (depth counts vertices on a root-leaf path).
func CompleteBinaryTree(levels int) *graph.Graph {
	n := (1 << uint(levels)) - 1
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge((i-1)/2, i)
	}
	return g
}

// BoundedTreedepth returns a connected random graph with treedepth at most d
// together with the elimination-forest parent array that witnesses the bound
// (parent[root] = -1). The construction samples a random rooted tree of depth
// at most d on n vertices, connects every vertex to its parent, and adds each
// further vertex-to-ancestor edge independently with probability extraProb.
//
// It panics unless n >= 1, d >= 1, and n is achievable at depth d (always,
// since trees can be arbitrarily wide).
func BoundedTreedepth(n, d int, extraProb float64, seed int64) (*graph.Graph, []int) {
	if n < 1 || d < 1 {
		panic(fmt.Sprintf("gen: BoundedTreedepth needs n >= 1, d >= 1; got n=%d d=%d", n, d))
	}
	r := rand.New(rand.NewSource(seed))
	parent := make([]int, n)
	depth := make([]int, n)
	parent[0] = -1
	depth[0] = 1
	// Vertices with depth < d are eligible parents.
	eligible := []int{}
	if d > 1 {
		eligible = append(eligible, 0)
	}
	for i := 1; i < n; i++ {
		if len(eligible) == 0 {
			// d == 1 with n > 1 is impossible for a connected graph; widen by
			// rooting everything at 0 would break the bound, so reject.
			panic(fmt.Sprintf("gen: cannot build connected graph with n=%d at treedepth %d", n, d))
		}
		p := eligible[r.Intn(len(eligible))]
		parent[i] = p
		depth[i] = depth[p] + 1
		if depth[i] < d {
			eligible = append(eligible, i)
		}
	}
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(parent[i], i)
	}
	// Extra ancestor edges preserve the elimination forest witness.
	for i := 1; i < n; i++ {
		for a := parent[parent[i]]; a >= 0; a = parent[a] {
			if r.Float64() < extraProb {
				if !g.HasEdge(a, i) {
					g.MustAddEdge(a, i)
				}
			}
		}
	}
	return g, parent
}

// RandomDegenerate returns a connected random k-degenerate graph on n
// vertices: vertex i > 0 connects to min(i, 1+extra) random earlier vertices
// where extra ~ Uniform[0, k-1]. Every subgraph then has a vertex of degree
// at most k, so the graph class has bounded expansion.
func RandomDegenerate(n, k int, seed int64) *graph.Graph {
	if k < 1 {
		panic(fmt.Sprintf("gen: RandomDegenerate needs k >= 1, got %d", k))
	}
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 1; i < n; i++ {
		want := 1 + r.Intn(k)
		if want > i {
			want = i
		}
		// Sample distinct earlier vertices; iterate in sorted order so that
		// edge IDs are deterministic for a given seed.
		chosen := map[int]bool{}
		for len(chosen) < want {
			chosen[r.Intn(i)] = true
		}
		for p := 0; p < i; p++ {
			if chosen[p] {
				g.MustAddEdge(p, i)
			}
		}
	}
	return g
}

// MaximalOuterplanar returns a maximal outerplanar graph on n >= 3 vertices:
// the cycle 0..n-1 plus a random triangulation of its interior. Outerplanar
// graphs are planar (hence bounded expansion) with treewidth 2.
func MaximalOuterplanar(n int, seed int64) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: MaximalOuterplanar needs n >= 3, got %d", n))
	}
	r := rand.New(rand.NewSource(seed))
	g := Cycle(n)
	var triangulate func(i, j int)
	triangulate = func(i, j int) {
		// Polygon i, i+1, ..., j (cyclically contiguous, j > i+1).
		if j-i < 2 {
			return
		}
		k := i + 1 + r.Intn(j-i-1)
		if k != i+1 && !g.HasEdge(i, k) {
			g.MustAddEdge(i, k)
		}
		if k != j-1 && !g.HasEdge(k, j) {
			g.MustAddEdge(k, j)
		}
		triangulate(i, k)
		triangulate(k, j)
	}
	triangulate(0, n-1)
	return g
}

// RandomGNP returns an Erdos-Renyi G(n, p) graph (possibly disconnected).
func RandomGNP(n int, p float64, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustAddEdge(i, j)
			}
		}
	}
	return g
}

// SparseGNP returns an Erdos-Renyi G(n, p) graph (possibly disconnected)
// in O(n + m) expected time using geometric edge skipping (Batagelj-Brandes):
// instead of flipping a coin per vertex pair, it jumps directly to the next
// present edge with a Geometric(p) stride over the lexicographic pair order.
// For sparse graphs (p ~ c/n) this makes n = 10^5 instant where RandomGNP's
// O(n^2) loop takes tens of seconds. The distribution matches RandomGNP; the
// edge sets for a given seed differ because randomness is consumed
// differently.
func SparseGNP(n int, p float64, seed int64) *graph.Graph {
	g := graph.New(n)
	if n < 2 || p <= 0 {
		return g
	}
	r := rand.New(rand.NewSource(seed))
	if p >= 1 {
		for v := 1; v < n; v++ {
			for w := 0; w < v; w++ {
				g.MustAddEdge(w, v)
			}
		}
		return g
	}
	// Pairs are enumerated as (w, v) with 0 <= w < v < n, ordered by v then
	// w; each iteration skips a geometrically-distributed number of pairs.
	logq := math.Log1p(-p)
	maxSkip := float64(n) * float64(n) // beyond the last pair; avoids int overflow
	v, w := 1, -1
	for v < n {
		skip := math.Log(1-r.Float64()) / logq
		if skip > maxSkip {
			break
		}
		w += 1 + int(skip)
		for v < n && w >= v {
			w -= v
			v++
		}
		if v < n {
			g.MustAddEdge(w, v)
		}
	}
	return g
}

// ConnectedSparseGNP is SparseGNP plus a path spine 0-1-...-(n-1) over any
// missing consecutive pairs, guaranteeing connectivity at any n and p (the
// spine adds at most n-1 edges, preserving sparsity).
func ConnectedSparseGNP(n int, p float64, seed int64) *graph.Graph {
	g := SparseGNP(n, p, seed)
	for v := 1; v < n; v++ {
		if _, ok := g.EdgeBetween(v-1, v); !ok {
			g.MustAddEdge(v-1, v)
		}
	}
	return g
}

// AssignRandomWeights sets every vertex and edge weight uniformly from
// [1, maxW] using the given seed.
func AssignRandomWeights(g *graph.Graph, maxW int64, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for v := 0; v < g.NumVertices(); v++ {
		g.SetVertexWeight(v, 1+r.Int63n(maxW))
	}
	for _, e := range g.Edges() {
		g.SetEdgeWeight(e.ID, 1+r.Int63n(maxW))
	}
}

// DisjointUnion returns the disjoint union of the given graphs, with vertices
// renumbered consecutively, plus the offset of each input graph's vertex 0.
func DisjointUnion(gs ...*graph.Graph) (*graph.Graph, []int) {
	total := 0
	offsets := make([]int, len(gs))
	for i, g := range gs {
		offsets[i] = total
		total += g.NumVertices()
	}
	out := graph.New(total)
	for i, g := range gs {
		off := offsets[i]
		for _, e := range g.Edges() {
			id := out.MustAddEdge(e.U+off, e.V+off)
			out.SetEdgeWeight(id, g.EdgeWeight(e.ID))
			for _, label := range g.EdgeLabelNames() {
				if g.HasEdgeLabel(label, e.ID) {
					out.SetEdgeLabel(label, id)
				}
			}
		}
		for v := 0; v < g.NumVertices(); v++ {
			out.SetVertexWeight(v+off, g.VertexWeight(v))
			for _, label := range g.VertexLabelNames() {
				if g.HasVertexLabel(label, v) {
					out.SetVertexLabel(label, v+off)
				}
			}
		}
	}
	return out, offsets
}

// GridWithChords returns the rows x cols grid with `chords` extra random
// non-adjacent vertex pairs connected (deterministic in seed). Chords break
// planarity and raise treedepth, making the family a harder benchmark for
// exact solvers than plain grids.
func GridWithChords(rows, cols, chords int, seed int64) *graph.Graph {
	g := Grid(rows, cols)
	n := g.NumVertices()
	r := rand.New(rand.NewSource(seed))
	for added, attempts := 0, 0; added < chords && attempts < 100*chords+100; attempts++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		added++
	}
	return g
}

// Blowup replaces every vertex of g by an independent set of k copies and
// every edge by the complete bipartite graph between the two copy sets.
// Vertex v's copies are v*k .. v*k+k-1. Blowups inflate treedepth in a
// controlled way (an elimination forest for g lifts to one for the blowup)
// while keeping the base structure, which makes caterpillar and path blowups
// useful hard-but-solvable benchmark instances.
func Blowup(g *graph.Graph, k int) *graph.Graph {
	if k < 1 {
		panic(fmt.Sprintf("gen: Blowup needs k >= 1; got %d", k))
	}
	out := graph.New(g.NumVertices() * k)
	for _, e := range g.Edges() {
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				out.MustAddEdge(e.U*k+i, e.V*k+j)
			}
		}
	}
	return out
}
