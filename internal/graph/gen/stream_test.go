package gen

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// The streaming generators must be drop-in replacements for the materializing
// ones: same edges, same order, same randomness consumption. Two pins enforce
// that from both sides — stream-vs-materialize equivalence (so the pair can
// never drift apart) and golden edge-list digests (so neither can change the
// emitted graphs without this test noticing).

func collectStream(stream func(emit func(u, v int))) [][2]int {
	var edges [][2]int
	stream(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	return edges
}

func TestStreamMatchesMaterialized(t *testing.T) {
	cases := []struct {
		name   string
		stream func(emit func(u, v int))
		edges  [][2]int
	}{}
	for _, n := range []int{0, 1, 2, 17, 256} {
		n := n
		var pathEdges [][2]int
		for _, e := range Path(n).Edges() {
			pathEdges = append(pathEdges, [2]int{e.U, e.V})
		}
		cases = append(cases, struct {
			name   string
			stream func(emit func(u, v int))
			edges  [][2]int
		}{fmt.Sprintf("path/n=%d", n), func(emit func(u, v int)) { StreamPath(n, emit) }, pathEdges})
		for _, seed := range []int64{1, 7, 42} {
			seed := seed
			var treeEdges [][2]int
			for _, e := range RandomTree(n, seed).Edges() {
				treeEdges = append(treeEdges, [2]int{e.U, e.V})
			}
			cases = append(cases, struct {
				name   string
				stream func(emit func(u, v int))
				edges  [][2]int
			}{fmt.Sprintf("tree/n=%d/seed=%d", n, seed),
				func(emit func(u, v int)) { StreamRandomTree(n, seed, emit) }, treeEdges})
			for _, p := range []float64{0, 0.05, 0.5, 1} {
				p := p
				var gnpEdges [][2]int
				for _, e := range ConnectedSparseGNP(n, p, seed).Edges() {
					gnpEdges = append(gnpEdges, [2]int{e.U, e.V})
				}
				cases = append(cases, struct {
					name   string
					stream func(emit func(u, v int))
					edges  [][2]int
				}{fmt.Sprintf("gnp/n=%d/p=%v/seed=%d", n, p, seed),
					func(emit func(u, v int)) { StreamConnectedSparseGNP(n, p, seed, emit) }, gnpEdges})
			}
		}
	}
	for _, tc := range cases {
		got := collectStream(tc.stream)
		if len(got) != len(tc.edges) {
			t.Errorf("%s: streamed %d edges, materialized %d", tc.name, len(got), len(tc.edges))
			continue
		}
		for i := range got {
			if got[i] != tc.edges[i] {
				t.Errorf("%s: edge %d: streamed %v, materialized %v", tc.name, i, got[i], tc.edges[i])
				break
			}
		}
	}
}

func edgeDigest(edges [][2]int) uint64 {
	h := fnv.New64a()
	for _, e := range edges {
		fmt.Fprintf(h, "%d-%d;", e[0], e[1])
	}
	return h.Sum64()
}

// TestGeneratorOutputPinned freezes the exact edge sequences at small n so a
// refactor of either the materializing or the streaming path cannot silently
// change the graphs every benchmark and golden trace is built on.
func TestGeneratorOutputPinned(t *testing.T) {
	cases := []struct {
		name   string
		stream func(emit func(u, v int))
		want   uint64
	}{
		{"path/n=10", func(emit func(u, v int)) { StreamPath(10, emit) }, 0x146c9e0b519e5cd2},
		{"tree/n=10/seed=7", func(emit func(u, v int)) { StreamRandomTree(10, 7, emit) }, 0xb02e8052d52bc52d},
		{"gnp/n=10/p=0.3/seed=11", func(emit func(u, v int)) { StreamConnectedSparseGNP(10, 0.3, 11, emit) }, 0xbfbbaf85da398e},
	}
	for _, tc := range cases {
		if got := edgeDigest(collectStream(tc.stream)); got != tc.want {
			t.Errorf("%s: edge digest = %#x, want %#x", tc.name, got, tc.want)
		}
	}
}
