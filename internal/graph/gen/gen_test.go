package gen

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/treedepth"
)

func TestPathCycleStar(t *testing.T) {
	p := Path(5)
	if p.NumVertices() != 5 || p.NumEdges() != 4 || p.Diameter() != 4 {
		t.Fatalf("Path(5) wrong: %v", p)
	}
	if Path(1).NumEdges() != 0 {
		t.Fatal("Path(1) should have no edges")
	}
	c := Cycle(5)
	if c.NumEdges() != 5 || c.Diameter() != 2 {
		t.Fatalf("Cycle(5) wrong: %v diam=%d", c, c.Diameter())
	}
	s := Star(6)
	if s.NumEdges() != 5 || s.Degree(0) != 5 || s.Diameter() != 2 {
		t.Fatalf("Star(6) wrong: %v", s)
	}
}

func TestCyclePanicsSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cycle(2) should panic")
		}
	}()
	Cycle(2)
}

func TestCompleteAndBipartite(t *testing.T) {
	k := Complete(5)
	if k.NumEdges() != 10 {
		t.Fatalf("K5 edges = %d", k.NumEdges())
	}
	b := CompleteBipartite(2, 3)
	if b.NumEdges() != 6 || b.HasEdge(0, 1) || !b.HasEdge(0, 2) {
		t.Fatalf("K_{2,3} wrong")
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(30, 1)
	if g.NumEdges() != 29 || !g.IsConnected() {
		t.Fatalf("RandomTree not a tree: m=%d", g.NumEdges())
	}
	// Determinism.
	h := RandomTree(30, 1)
	if graph.CanonicalKey(g) != graph.CanonicalKey(h) {
		t.Fatal("same seed must give same tree")
	}
	h2 := RandomTree(30, 2)
	if graph.CanonicalKey(g) == graph.CanonicalKey(h2) {
		t.Fatal("different seeds should give different trees")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(10, 2)
	if g.NumVertices() != 30 || g.NumEdges() != 29 || !g.IsConnected() {
		t.Fatalf("Caterpillar wrong: %v", g)
	}
	if g.Diameter() != 11 { // leg + 9 spine edges + leg
		t.Fatalf("Caterpillar diameter = %d, want 11", g.Diameter())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 || g.NumEdges() != 3*3+2*4 || !g.IsConnected() {
		t.Fatalf("Grid wrong: %v", g)
	}
	if g.Diameter() != 2+3 {
		t.Fatalf("Grid diameter = %d", g.Diameter())
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(4)
	if g.NumVertices() != 15 || g.NumEdges() != 14 || !g.IsConnected() {
		t.Fatalf("CompleteBinaryTree wrong: %v", g)
	}
}

func TestBoundedTreedepthWitness(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		d := 2 + r.Intn(4)
		g, parent := BoundedTreedepth(n, d, 0.5, r.Int63())
		if !g.IsConnected() {
			t.Fatalf("trial %d: not connected", trial)
		}
		f := treedepth.NewForest(parent)
		if err := f.VerifyElimination(g); err != nil {
			t.Fatalf("trial %d: witness invalid: %v", trial, err)
		}
		if f.Depth() > d {
			t.Fatalf("trial %d: witness depth %d > d=%d", trial, f.Depth(), d)
		}
	}
}

func TestBoundedTreedepthExactCheck(t *testing.T) {
	// For small n, the exact treedepth must be at most d.
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		n := 2 + r.Intn(10)
		d := 2 + r.Intn(3)
		g, _ := BoundedTreedepth(n, d, 0.7, r.Int63())
		td, err := treedepth.Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if td > d {
			t.Fatalf("trial %d: exact td %d > d=%d", trial, td, d)
		}
	}
}

func TestBoundedTreedepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=5, d=1 should panic (disconnected impossible)")
		}
	}()
	BoundedTreedepth(5, 1, 0, 1)
}

func TestRandomDegenerate(t *testing.T) {
	g := RandomDegenerate(60, 3, 9)
	if !g.IsConnected() {
		t.Fatal("RandomDegenerate should be connected")
	}
	// Degeneracy check: repeatedly remove min-degree vertex; max removed degree <= 3.
	if d := degeneracy(g); d > 3 {
		t.Fatalf("degeneracy = %d, want <= 3", d)
	}
	// Determinism.
	h := RandomDegenerate(60, 3, 9)
	if graph.CanonicalKey(g) != graph.CanonicalKey(h) {
		t.Fatal("same seed must give same graph")
	}
}

func degeneracy(g *graph.Graph) int {
	n := g.NumVertices()
	removed := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	max := 0
	for k := 0; k < n; k++ {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if bestDeg > max {
			max = bestDeg
		}
		removed[best] = true
		for _, w := range g.Neighbors(best) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	return max
}

func TestMaximalOuterplanar(t *testing.T) {
	for _, n := range []int{3, 4, 5, 10, 25} {
		g := MaximalOuterplanar(n, 3)
		// Maximal outerplanar on n >= 3 vertices has exactly 2n-3 edges.
		if got, want := g.NumEdges(), 2*n-3; got != want {
			t.Fatalf("n=%d: edges = %d, want %d", n, got, want)
		}
		if !g.IsConnected() {
			t.Fatalf("n=%d: not connected", n)
		}
		// Outerplanar graphs are 2-degenerate.
		if d := degeneracy(g); d > 2 {
			t.Fatalf("n=%d: degeneracy = %d, want <= 2", n, d)
		}
	}
}

func TestRandomGNP(t *testing.T) {
	g := RandomGNP(20, 0, 1)
	if g.NumEdges() != 0 {
		t.Fatal("p=0 should give no edges")
	}
	g = RandomGNP(20, 1, 1)
	if g.NumEdges() != 190 {
		t.Fatalf("p=1 should give complete graph, got %d edges", g.NumEdges())
	}
}

func TestAssignRandomWeights(t *testing.T) {
	g := Path(10)
	AssignRandomWeights(g, 100, 4)
	for v := 0; v < 10; v++ {
		if w := g.VertexWeight(v); w < 1 || w > 100 {
			t.Fatalf("vertex weight %d out of range", w)
		}
	}
	for _, e := range g.Edges() {
		if w := g.EdgeWeight(e.ID); w < 1 || w > 100 {
			t.Fatalf("edge weight %d out of range", w)
		}
	}
}

func TestDisjointUnion(t *testing.T) {
	a := Path(3)
	a.SetVertexLabel("red", 0)
	a.SetVertexWeight(1, 5)
	b := Cycle(3)
	id := 0
	b.SetEdgeWeight(id, 9)
	u, offsets := DisjointUnion(a, b)
	if u.NumVertices() != 6 || u.NumEdges() != 5 {
		t.Fatalf("union wrong: %v", u)
	}
	if offsets[0] != 0 || offsets[1] != 3 {
		t.Fatalf("offsets = %v", offsets)
	}
	if !u.HasVertexLabel("red", 0) || u.VertexWeight(1) != 5 {
		t.Fatal("labels/weights not carried")
	}
	if !u.HasEdge(3, 4) || u.HasEdge(2, 3) {
		t.Fatal("union edges wrong")
	}
	if len(u.Components()) != 2 {
		t.Fatal("union should have 2 components")
	}
}

func TestSparseGNP(t *testing.T) {
	// Deterministic for a fixed seed.
	a := SparseGNP(500, 0.02, 7)
	b := SparseGNP(500, 0.02, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("not deterministic: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	for _, e := range a.Edges() {
		if _, ok := b.EdgeBetween(e.U, e.V); !ok {
			t.Fatalf("edge sets differ for identical seeds")
		}
	}

	// Edge count concentrates around p * n(n-1)/2. With n=2000, p=4/n the
	// expectation is ~3998 and the standard deviation ~63; allow 6 sigma.
	n := 2000
	g := SparseGNP(n, 4/float64(n), 11)
	want := 4 / float64(n) * float64(n) * float64(n-1) / 2
	if m := float64(g.NumEdges()); m < want-380 || m > want+380 {
		t.Fatalf("edge count %v far from expectation %v", m, want)
	}

	// Degenerate parameters.
	if g := SparseGNP(5, 0, 1); g.NumEdges() != 0 {
		t.Fatal("p=0 must produce no edges")
	}
	if g := SparseGNP(5, 1, 1); g.NumEdges() != 10 {
		t.Fatalf("p=1 must produce the complete graph, got %d edges", g.NumEdges())
	}
	if g := SparseGNP(1, 0.5, 1); g.NumEdges() != 0 {
		t.Fatal("single vertex has no edges")
	}
}

func TestConnectedSparseGNP(t *testing.T) {
	g := ConnectedSparseGNP(3000, 2/3000.0, 5)
	if !g.IsConnected() {
		t.Fatal("spine must make the graph connected")
	}
	// The spine never duplicates existing edges.
	seen := map[[2]int]bool{}
	for _, e := range g.Edges() {
		k := [2]int{e.U, e.V}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
	}
}

func TestGridWithChords(t *testing.T) {
	base := Grid(3, 5)
	g := GridWithChords(3, 5, 4, 9)
	if g.NumVertices() != base.NumVertices() {
		t.Fatalf("chords changed vertex count: %d", g.NumVertices())
	}
	if got, want := g.NumEdges(), base.NumEdges()+4; got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
	// Every grid edge survives.
	for _, e := range base.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("grid edge (%d,%d) missing", e.U, e.V)
		}
	}
	// Deterministic in the seed.
	h := GridWithChords(3, 5, 4, 9)
	if graph.CanonicalKey(h) != graph.CanonicalKey(g) {
		t.Fatal("same seed produced different graphs")
	}
	if graph.CanonicalKey(GridWithChords(3, 5, 4, 10)) == graph.CanonicalKey(g) {
		t.Fatal("different seeds produced identical chords")
	}
	// Saturated request: K4 has no room for chords.
	if full := GridWithChords(2, 2, 50, 1); full.NumEdges() > 6 {
		t.Fatalf("overfull grid: %d edges", full.NumEdges())
	}
}

func TestBlowup(t *testing.T) {
	g := Blowup(Path(3), 2)
	if g.NumVertices() != 6 || g.NumEdges() != 8 {
		t.Fatalf("blowup(P3, 2): n=%d m=%d, want 6, 8", g.NumVertices(), g.NumEdges())
	}
	// Copies of one vertex stay independent; copies across an edge are
	// completely joined.
	if g.HasEdge(0, 1) || g.HasEdge(2, 3) {
		t.Fatal("copies of the same vertex must not be adjacent")
	}
	for _, pair := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		if !g.HasEdge(pair[0], pair[1]) {
			t.Fatalf("missing blowup edge %v", pair)
		}
	}
	if h := Blowup(Complete(3), 1); graph.CanonicalKey(h) != graph.CanonicalKey(Complete(3)) {
		t.Fatal("k=1 blowup must be the identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Blowup(g, 0) must panic")
		}
	}()
	Blowup(Path(2), 0)
}
