// Package graph implements simple undirected graphs with optional vertex and
// edge labels and integer weights, as used by the distributed model-checking
// library. Vertices are integers 0..n-1; edges carry stable integer IDs in
// insertion order.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// ErrLoop is returned when adding a self-loop to a simple graph.
var ErrLoop = errors.New("graph: self-loops are not allowed")

// ErrDuplicateEdge is returned when adding an edge that already exists.
var ErrDuplicateEdge = errors.New("graph: duplicate edge")

// ErrVertexRange is returned when an endpoint is outside [0, n).
var ErrVertexRange = errors.New("graph: vertex out of range")

// Edge is an undirected edge with a stable identifier. U < V always holds.
type Edge struct {
	ID int
	U  int
	V  int
}

// Other returns the endpoint of e different from x.
func (e Edge) Other(x int) int {
	if x == e.U {
		return e.V
	}
	return e.U
}

// Graph is a simple undirected graph. The zero value is not usable; use New.
type Graph struct {
	n     int
	adj   [][]int // neighbor vertex IDs, sorted
	inc   [][]int // incident edge IDs, aligned with adj
	edges []Edge

	vertexLabels map[string]*bitset.Set
	edgeLabels   map[string]*bitset.Set
	vertexWeight []int64
	edgeWeight   []int64
}

// New returns a graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:            n,
		adj:          make([][]int, n),
		inc:          make([][]int, n),
		vertexLabels: make(map[string]*bitset.Set),
		edgeLabels:   make(map[string]*bitset.Set),
	}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u, v} and returns its ID.
func (g *Graph) AddEdge(u, v int) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, fmt.Errorf("%w: {%d,%d} with n=%d", ErrVertexRange, u, v, g.n)
	}
	if u == v {
		return 0, fmt.Errorf("%w: vertex %d", ErrLoop, u)
	}
	if g.HasEdge(u, v) {
		return 0, fmt.Errorf("%w: {%d,%d}", ErrDuplicateEdge, u, v)
	}
	if u > v {
		u, v = v, u
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v})
	g.insertNeighbor(u, v, id)
	g.insertNeighbor(v, u, id)
	if g.edgeWeight != nil {
		g.edgeWeight = append(g.edgeWeight, 0)
	}
	return id, nil
}

// MustAddEdge is AddEdge for construction code where failure is a programming
// error (e.g., generators); it panics on error.
func (g *Graph) MustAddEdge(u, v int) int {
	id, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

func (g *Graph) insertNeighbor(u, v, edgeID int) {
	i := sort.SearchInts(g.adj[u], v)
	g.adj[u] = append(g.adj[u], 0)
	copy(g.adj[u][i+1:], g.adj[u][i:])
	g.adj[u][i] = v
	g.inc[u] = append(g.inc[u], 0)
	copy(g.inc[u][i+1:], g.inc[u][i:])
	g.inc[u][i] = edgeID
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeBetween(u, v)
	return ok
}

// EdgeBetween returns the edge ID connecting u and v, if any.
func (g *Graph) EdgeBetween(u, v int) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return 0, false
	}
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	i := sort.SearchInts(g.adj[u], v)
	if i < len(g.adj[u]) && g.adj[u][i] == v {
		return g.inc[u][i], true
	}
	return 0, false
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns a copy of the edge list in ID order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Neighbors returns the sorted neighbors of u. The returned slice must not be
// modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// IncidentEdges returns the IDs of edges incident to u, aligned with
// Neighbors(u). The returned slice must not be modified.
func (g *Graph) IncidentEdges(u int) []int { return g.inc[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	m := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > m {
			m = d
		}
	}
	return m
}

// Clone returns a deep copy of g, including labels and weights.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for u := 0; u < g.n; u++ {
		c.adj[u] = append([]int(nil), g.adj[u]...)
		c.inc[u] = append([]int(nil), g.inc[u]...)
	}
	for name, set := range g.vertexLabels {
		c.vertexLabels[name] = set.Clone()
	}
	for name, set := range g.edgeLabels {
		c.edgeLabels[name] = set.Clone()
	}
	if g.vertexWeight != nil {
		c.vertexWeight = append([]int64(nil), g.vertexWeight...)
	}
	if g.edgeWeight != nil {
		c.edgeWeight = append([]int64(nil), g.edgeWeight...)
	}
	return c
}

// --- Labels ---

// SetVertexLabel marks vertex v with the given label.
func (g *Graph) SetVertexLabel(label string, v int) {
	set, ok := g.vertexLabels[label]
	if !ok {
		set = bitset.New(g.n)
		g.vertexLabels[label] = set
	}
	set.Add(v)
}

// HasVertexLabel reports whether vertex v carries the label.
func (g *Graph) HasVertexLabel(label string, v int) bool {
	set, ok := g.vertexLabels[label]
	return ok && set.Contains(v)
}

// SetEdgeLabel marks the edge with the given ID.
func (g *Graph) SetEdgeLabel(label string, edgeID int) {
	set, ok := g.edgeLabels[label]
	if !ok {
		set = bitset.New(len(g.edges) + 64) // generous capacity; IDs only grow
		g.edgeLabels[label] = set
	}
	if edgeID >= set.Len() {
		grown := bitset.New(len(g.edges))
		set.ForEach(grown.Add)
		set = grown
		g.edgeLabels[label] = set
	}
	set.Add(edgeID)
}

// HasEdgeLabel reports whether the edge with the given ID carries the label.
func (g *Graph) HasEdgeLabel(label string, edgeID int) bool {
	set, ok := g.edgeLabels[label]
	return ok && set.Contains(edgeID)
}

// VertexLabelNames returns the sorted names of all vertex labels.
func (g *Graph) VertexLabelNames() []string {
	out := make([]string, 0, len(g.vertexLabels))
	for name := range g.vertexLabels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EdgeLabelNames returns the sorted names of all edge labels.
func (g *Graph) EdgeLabelNames() []string {
	out := make([]string, 0, len(g.edgeLabels))
	for name := range g.edgeLabels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// --- Weights ---

// SetVertexWeight assigns an integer weight to vertex v (default 0).
func (g *Graph) SetVertexWeight(v int, w int64) {
	if g.vertexWeight == nil {
		g.vertexWeight = make([]int64, g.n)
	}
	g.vertexWeight[v] = w
}

// VertexWeight returns the weight of v (0 if unset).
func (g *Graph) VertexWeight(v int) int64 {
	if g.vertexWeight == nil {
		return 0
	}
	return g.vertexWeight[v]
}

// SetEdgeWeight assigns an integer weight to the edge with the given ID.
func (g *Graph) SetEdgeWeight(edgeID int, w int64) {
	if g.edgeWeight == nil {
		g.edgeWeight = make([]int64, len(g.edges))
	}
	g.edgeWeight[edgeID] = w
}

// EdgeWeight returns the weight of the edge with the given ID (0 if unset).
func (g *Graph) EdgeWeight(edgeID int) int64 {
	if g.edgeWeight == nil {
		return 0
	}
	return g.edgeWeight[edgeID]
}

// --- Structure queries ---

// Components returns the connected components as sorted vertex slices, in
// order of their minimum vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			for _, w := range g.adj[comp[i]] {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g is connected. The empty graph counts as
// connected.
func (g *Graph) IsConnected() bool {
	return g.n == 0 || len(g.Components()) == 1
}

// BFSDistances returns the distance (in edges) from src to every vertex, with
// -1 for unreachable vertices.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Diameter returns the diameter (max eccentricity) of a connected graph; it
// returns -1 if the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for s := 0; s < g.n; s++ {
		for _, d := range g.BFSDistances(s) {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// InducedSubgraph returns the subgraph induced by the given vertices, plus
// the mapping from new vertex IDs to original vertex IDs. Labels, weights,
// and induced edges are carried over. The input order is irrelevant; new IDs
// follow the sorted order of the originals.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int) {
	orig := append([]int(nil), vertices...)
	sort.Ints(orig)
	// Deduplicate.
	orig = dedupSorted(orig)
	index := make(map[int]int, len(orig))
	for i, v := range orig {
		index[v] = i
	}
	sub := New(len(orig))
	for _, e := range g.edges {
		iu, okU := index[e.U]
		iv, okV := index[e.V]
		if !okU || !okV {
			continue
		}
		id := sub.MustAddEdge(iu, iv)
		for label := range g.edgeLabels {
			if g.HasEdgeLabel(label, e.ID) {
				sub.SetEdgeLabel(label, id)
			}
		}
		if g.edgeWeight != nil {
			sub.SetEdgeWeight(id, g.edgeWeight[e.ID])
		}
	}
	for i, v := range orig {
		for label := range g.vertexLabels {
			if g.HasVertexLabel(label, v) {
				sub.SetVertexLabel(label, i)
			}
		}
		if g.vertexWeight != nil {
			sub.SetVertexWeight(i, g.vertexWeight[v])
		}
	}
	return sub, orig
}

// DeleteVertex returns a copy of g with vertex v removed (vertices above v
// shift down by one) along with the mapping from new IDs to original IDs.
func (g *Graph) DeleteVertex(v int) (*Graph, []int) {
	keep := make([]int, 0, g.n-1)
	for u := 0; u < g.n; u++ {
		if u != v {
			keep = append(keep, u)
		}
	}
	return g.InducedSubgraph(keep)
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// String renders a compact description, e.g. "Graph(n=4, m=3)".
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, len(g.edges))
}
