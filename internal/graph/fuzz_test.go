package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// FuzzGraphIO drives the edge-list reader with arbitrary input. Invariants:
// the reader never panics, and every accepted graph survives a
// write -> read round trip with an identical canonical key.
func FuzzGraphIO(f *testing.F) {
	seeds := []string{
		"n 1\n",
		"n 3\ne 0 1\ne 1 2\n",
		"n 4\ne 0 1\ne 1 2\ne 2 3\ne 3 0\nvl red 0\nvl red 2\nvw 1 -7\n",
		"n 2\ne 0 1\nel mark 0\new 0 42\n",
		"# comment\nn 5\ne 0 4\n\ne 1 4\nvl terminal 0\nvl terminal 1\n",
		"n 3\ne 0 1\nvw 2 9223372036854775807\n",
		// Near-miss inputs that must be rejected cleanly.
		"e 0 1\n",
		"n 2\ne 0 0\n",
		"n 2\ne 0 1\ne 0 1\n",
		"n 2\nvw 5 1\n",
		"n 2\nvl red -1\n",
		"n 2\nel mark 0\n",
		"n x\n",
		"n 2\nzz 1 2\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if declaredVerticesTooLarge(data, 1<<16) {
			return // avoid fuzzing into multi-gigabyte allocations
		}
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to be rejected without panic
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write failed on accepted graph: %v", err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reader rejected its own writer's output: %v\n%s", err, buf.String())
		}
		if k1, k2 := CanonicalKey(g), CanonicalKey(g2); k1 != k2 {
			t.Fatalf("round trip changed the graph:\n before: %s\n  after: %s\nwire:\n%s", k1, k2, buf.String())
		}
	})
}

// declaredVerticesTooLarge reports whether any "n <count>" record declares
// more than maxN vertices; such inputs are valid but would make the fuzzer
// spend its budget on allocation, not parsing.
func declaredVerticesTooLarge(data []byte, maxN int) bool {
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) >= 2 && fields[0] == "n" {
			if v, err := strconv.Atoi(fields[1]); err == nil && v > maxN {
				return true
			}
		}
	}
	return false
}
