package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, u, v int) int {
	t.Helper()
	id, err := g.AddEdge(u, v)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
	return id
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	id0 := mustEdge(t, g, 0, 1)
	id1 := mustEdge(t, g, 2, 1)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(1, 2) {
		t.Fatal("edges should be undirected")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("unexpected edge 0-2")
	}
	e := g.Edge(id1)
	if e.U != 1 || e.V != 2 {
		t.Fatalf("Edge(%d) = %+v, want normalized U<V", id1, e)
	}
	if e.Other(1) != 2 || e.Other(2) != 1 {
		t.Fatal("Other endpoint wrong")
	}
	if got, ok := g.EdgeBetween(0, 1); !ok || got != id0 {
		t.Fatalf("EdgeBetween(0,1) = %d,%v", got, ok)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 0); !errors.Is(err, ErrLoop) {
		t.Fatalf("loop error = %v", err)
	}
	if _, err := g.AddEdge(0, 3); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("range error = %v", err)
	}
	if _, err := g.AddEdge(-1, 1); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("range error = %v", err)
	}
	mustEdge(t, g, 0, 1)
	if _, err := g.AddEdge(1, 0); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate error = %v", err)
	}
}

func TestNeighborsSortedAndAligned(t *testing.T) {
	g := New(5)
	e3 := mustEdge(t, g, 2, 3)
	e0 := mustEdge(t, g, 2, 0)
	e4 := mustEdge(t, g, 2, 4)
	e1 := mustEdge(t, g, 2, 1)
	nbrs := g.Neighbors(2)
	want := []int{0, 1, 3, 4}
	wantE := []int{e0, e1, e3, e4}
	if len(nbrs) != 4 {
		t.Fatalf("Neighbors = %v", nbrs)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", nbrs, want)
		}
		if g.IncidentEdges(2)[i] != wantE[i] {
			t.Fatalf("IncidentEdges misaligned: %v want %v", g.IncidentEdges(2), wantE)
		}
	}
	if g.Degree(2) != 4 || g.MaxDegree() != 4 {
		t.Fatal("degree bookkeeping wrong")
	}
}

func TestComponentsAndConnectivity(t *testing.T) {
	g := New(6)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 4, 5)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %v, want 3 components", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 1 || len(comps[2]) != 2 {
		t.Fatalf("Components = %v", comps)
	}
	if g.IsConnected() {
		t.Fatal("graph should be disconnected")
	}
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	if !g.IsConnected() {
		t.Fatal("graph should now be connected")
	}
}

func TestBFSAndDiameter(t *testing.T) {
	// Path 0-1-2-3-4.
	g := New(5)
	for i := 0; i < 4; i++ {
		mustEdge(t, g, i, i+1)
	}
	dist := g.BFSDistances(0)
	for i, d := range dist {
		if d != i {
			t.Fatalf("dist[%d] = %d, want %d", i, d, i)
		}
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("Diameter = %d, want 4", d)
	}
	g2 := New(3)
	mustEdge(t, g2, 0, 1)
	if d := g2.Diameter(); d != -1 {
		t.Fatalf("disconnected Diameter = %d, want -1", d)
	}
	if d := New(0).Diameter(); d != -1 {
		t.Fatalf("empty Diameter = %d, want -1", d)
	}
}

func TestLabelsAndWeights(t *testing.T) {
	g := New(3)
	id := mustEdge(t, g, 0, 1)
	g.SetVertexLabel("red", 0)
	g.SetVertexLabel("red", 2)
	g.SetVertexLabel("blue", 1)
	g.SetEdgeLabel("mark", id)
	if !g.HasVertexLabel("red", 0) || g.HasVertexLabel("red", 1) {
		t.Fatal("vertex label wrong")
	}
	if !g.HasEdgeLabel("mark", id) || g.HasEdgeLabel("mark", id+7) {
		t.Fatal("edge label wrong")
	}
	if g.HasVertexLabel("nonexistent", 0) {
		t.Fatal("unknown label should be false")
	}
	names := g.VertexLabelNames()
	if len(names) != 2 || names[0] != "blue" || names[1] != "red" {
		t.Fatalf("VertexLabelNames = %v", names)
	}
	g.SetVertexWeight(2, -7)
	g.SetEdgeWeight(id, 42)
	if g.VertexWeight(2) != -7 || g.VertexWeight(0) != 0 {
		t.Fatal("vertex weight wrong")
	}
	if g.EdgeWeight(id) != 42 {
		t.Fatal("edge weight wrong")
	}
}

func TestCloneDeep(t *testing.T) {
	g := New(3)
	id := mustEdge(t, g, 0, 1)
	g.SetVertexLabel("red", 0)
	g.SetVertexWeight(1, 9)
	g.SetEdgeWeight(id, 5)
	c := g.Clone()
	mustEdge(t, c, 1, 2)
	c.SetVertexLabel("red", 2)
	c.SetVertexWeight(1, 1)
	if g.NumEdges() != 1 || g.HasVertexLabel("red", 2) || g.VertexWeight(1) != 9 {
		t.Fatal("Clone must be deep")
	}
	if c.EdgeWeight(id) != 5 {
		t.Fatal("Clone lost edge weight")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(6)
	e01 := mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	e05 := mustEdge(t, g, 0, 5)
	g.SetVertexLabel("red", 0)
	g.SetVertexLabel("red", 3)
	g.SetVertexWeight(5, 11)
	g.SetEdgeWeight(e01, 3)
	g.SetEdgeLabel("mark", e05)

	sub, origIDs := g.InducedSubgraph([]int{5, 0, 1, 1}) // dup + unsorted
	if sub.NumVertices() != 3 {
		t.Fatalf("sub n = %d, want 3", sub.NumVertices())
	}
	// origIDs sorted: [0 1 5] -> new IDs 0,1,2.
	if origIDs[0] != 0 || origIDs[1] != 1 || origIDs[2] != 5 {
		t.Fatalf("origIDs = %v", origIDs)
	}
	if sub.NumEdges() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(0, 2) {
		t.Fatalf("sub edges wrong: %v", sub.Edges())
	}
	if !sub.HasVertexLabel("red", 0) || sub.HasVertexLabel("red", 1) {
		t.Fatal("sub vertex labels wrong")
	}
	if sub.VertexWeight(2) != 11 {
		t.Fatal("sub vertex weight wrong")
	}
	id01, _ := sub.EdgeBetween(0, 1)
	if sub.EdgeWeight(id01) != 3 {
		t.Fatal("sub edge weight wrong")
	}
	id05, _ := sub.EdgeBetween(0, 2)
	if !sub.HasEdgeLabel("mark", id05) {
		t.Fatal("sub edge label wrong")
	}
}

func TestDeleteVertex(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	h, orig := g.DeleteVertex(1)
	if h.NumVertices() != 3 || h.NumEdges() != 1 {
		t.Fatalf("after delete: %v", h)
	}
	if orig[0] != 0 || orig[1] != 2 || orig[2] != 3 {
		t.Fatalf("orig = %v", orig)
	}
	if !h.HasEdge(1, 2) { // old 2-3
		t.Fatal("edge 2-3 should survive as 1-2")
	}
}

// Property: induced subgraph on all vertices is the same graph.
func TestQuickInducedIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					g.MustAddEdge(i, j)
				}
			}
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		sub, _ := g.InducedSubgraph(all)
		if sub.NumVertices() != n || sub.NumEdges() != g.NumEdges() {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if sub.HasEdge(i, j) != g.HasEdge(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of degrees = 2|E|.
func TestQuickHandshake(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(2) == 0 {
					g.MustAddEdge(i, j)
				}
			}
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
