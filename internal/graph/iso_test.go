package graph

import (
	"math/rand"
	"testing"
)

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func TestIsomorphicSmallBasic(t *testing.T) {
	// P4 relabeled.
	g := pathGraph(4)
	h := New(4)
	h.MustAddEdge(2, 0)
	h.MustAddEdge(0, 3)
	h.MustAddEdge(3, 1)
	if !IsomorphicSmall(g, h) {
		t.Fatal("relabeled P4 should be isomorphic")
	}
	// P4 vs star K_{1,3}: same degree counts? P4 degrees: 1,2,2,1; star: 3,1,1,1. Different.
	star := New(4)
	star.MustAddEdge(0, 1)
	star.MustAddEdge(0, 2)
	star.MustAddEdge(0, 3)
	if IsomorphicSmall(g, star) {
		t.Fatal("P4 vs K_{1,3} should not be isomorphic")
	}
}

func TestIsomorphicSmallNeedsBacktracking(t *testing.T) {
	// C6 vs two triangles: same degree sequence (all degree 2).
	c6 := New(6)
	for i := 0; i < 6; i++ {
		c6.MustAddEdge(i, (i+1)%6)
	}
	twoTriangles := New(6)
	twoTriangles.MustAddEdge(0, 1)
	twoTriangles.MustAddEdge(1, 2)
	twoTriangles.MustAddEdge(2, 0)
	twoTriangles.MustAddEdge(3, 4)
	twoTriangles.MustAddEdge(4, 5)
	twoTriangles.MustAddEdge(5, 3)
	if IsomorphicSmall(c6, twoTriangles) {
		t.Fatal("C6 vs 2K3 should not be isomorphic")
	}
}

func TestIsomorphicSmallLabels(t *testing.T) {
	g := pathGraph(2)
	g.SetVertexLabel("red", 0)
	h := pathGraph(2)
	h.SetVertexLabel("red", 1)
	if !IsomorphicSmall(g, h) {
		t.Fatal("label on either endpoint of P2 is symmetric")
	}
	h2 := pathGraph(2)
	h2.SetVertexLabel("blue", 0)
	if IsomorphicSmall(g, h2) {
		t.Fatal("different label names cannot match")
	}
	g3 := pathGraph(3)
	g3.SetVertexLabel("red", 1) // center
	h3 := pathGraph(3)
	h3.SetVertexLabel("red", 0) // endpoint
	if IsomorphicSmall(g3, h3) {
		t.Fatal("center-labeled vs endpoint-labeled P3 differ")
	}
}

func TestIsomorphicSmallRandomPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(8)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(2) == 0 {
					g.MustAddEdge(i, j)
				}
			}
		}
		perm := r.Perm(n)
		h := New(n)
		for _, e := range g.Edges() {
			h.MustAddEdge(perm[e.U], perm[e.V])
		}
		if !IsomorphicSmall(g, h) {
			t.Fatalf("trial %d: permuted graph should be isomorphic", trial)
		}
	}
}

func TestIsomorphicSmallSizeMismatch(t *testing.T) {
	if IsomorphicSmall(pathGraph(3), pathGraph(4)) {
		t.Fatal("different n")
	}
	g := pathGraph(3)
	h := pathGraph(3)
	h.MustAddEdge(0, 2)
	if IsomorphicSmall(g, h) {
		t.Fatal("different m")
	}
}
