package graph

// IsomorphicSmall reports whether g and h are isomorphic, respecting vertex
// labels. It uses degree-pruned backtracking and is intended for small graphs
// (tests, canonical-representative checks); it is exponential in the worst
// case.
func IsomorphicSmall(g, h *Graph) bool {
	n := g.NumVertices()
	if n != h.NumVertices() || g.NumEdges() != h.NumEdges() {
		return false
	}
	gLabels := g.VertexLabelNames()
	hLabels := h.VertexLabelNames()
	if len(gLabels) != len(hLabels) {
		return false
	}
	for i := range gLabels {
		if gLabels[i] != hLabels[i] {
			return false
		}
	}
	// Degree-sequence quick reject.
	if !sameDegreeSequence(g, h) {
		return false
	}
	mapping := make([]int, n) // g vertex -> h vertex
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	var match func(v int) bool
	match = func(v int) bool {
		if v == n {
			return true
		}
		for w := 0; w < n; w++ {
			if used[w] || g.Degree(v) != h.Degree(w) {
				continue
			}
			if !sameLabelProfile(g, h, gLabels, v, w) {
				continue
			}
			ok := true
			for u := 0; u < v; u++ {
				if g.HasEdge(v, u) != h.HasEdge(w, mapping[u]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[v] = w
			used[w] = true
			if match(v + 1) {
				return true
			}
			mapping[v] = -1
			used[w] = false
		}
		return false
	}
	return match(0)
}

func sameDegreeSequence(g, h *Graph) bool {
	n := g.NumVertices()
	gd := make([]int, n+1)
	hd := make([]int, n+1)
	for v := 0; v < n; v++ {
		gd[g.Degree(v)]++
		hd[h.Degree(v)]++
	}
	for i := range gd {
		if gd[i] != hd[i] {
			return false
		}
	}
	return true
}

func sameLabelProfile(g, h *Graph, labels []string, v, w int) bool {
	for _, label := range labels {
		if g.HasVertexLabel(label, v) != h.HasVertexLabel(label, w) {
			return false
		}
	}
	return true
}
