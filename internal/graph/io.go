package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a simple textual format:
//
//	n <numVertices>
//	e <u> <v>            (one line per edge, in ID order)
//	vl <label> <v>       (vertex labels)
//	el <label> <edgeID>  (edge labels)
//	vw <v> <weight>      (nonzero vertex weights)
//	ew <edgeID> <weight> (nonzero edge weights)
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "n %d\n", g.NumVertices())
	for _, e := range g.edges {
		fmt.Fprintf(bw, "e %d %d\n", e.U, e.V)
	}
	for _, label := range g.VertexLabelNames() {
		for v := 0; v < g.n; v++ {
			if g.HasVertexLabel(label, v) {
				fmt.Fprintf(bw, "vl %s %d\n", label, v)
			}
		}
	}
	for _, label := range g.EdgeLabelNames() {
		for _, e := range g.edges {
			if g.HasEdgeLabel(label, e.ID) {
				fmt.Fprintf(bw, "el %s %d\n", label, e.ID)
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if wt := g.VertexWeight(v); wt != 0 {
			fmt.Fprintf(bw, "vw %d %d\n", v, wt)
		}
	}
	for _, e := range g.edges {
		if wt := g.EdgeWeight(e.ID); wt != 0 {
			fmt.Fprintf(bw, "ew %d %d\n", e.ID, wt)
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if g == nil && fields[0] != "n" {
			return nil, fmt.Errorf("graph: line %d: expected header 'n <count>' first", lineNo)
		}
		switch fields[0] {
		case "n":
			n, err := atoiField(fields, 1, lineNo)
			if err != nil {
				return nil, err
			}
			g = New(n)
		case "e":
			u, err := atoiField(fields, 1, lineNo)
			if err != nil {
				return nil, err
			}
			v, err := atoiField(fields, 2, lineNo)
			if err != nil {
				return nil, err
			}
			if _, err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		case "vl":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: vl needs label and vertex", lineNo)
			}
			v, err := atoiField(fields, 2, lineNo)
			if err != nil {
				return nil, err
			}
			if v < 0 || v >= g.NumVertices() {
				return nil, fmt.Errorf("graph: line %d: vertex %d out of range", lineNo, v)
			}
			g.SetVertexLabel(fields[1], v)
		case "el":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: el needs label and edge ID", lineNo)
			}
			id, err := atoiField(fields, 2, lineNo)
			if err != nil {
				return nil, err
			}
			if id < 0 || id >= g.NumEdges() {
				return nil, fmt.Errorf("graph: line %d: edge ID %d out of range", lineNo, id)
			}
			g.SetEdgeLabel(fields[1], id)
		case "vw":
			v, err := atoiField(fields, 1, lineNo)
			if err != nil {
				return nil, err
			}
			if v < 0 || v >= g.NumVertices() {
				return nil, fmt.Errorf("graph: line %d: vertex %d out of range", lineNo, v)
			}
			wt, err := atoi64Field(fields, 2, lineNo)
			if err != nil {
				return nil, err
			}
			g.SetVertexWeight(v, wt)
		case "ew":
			id, err := atoiField(fields, 1, lineNo)
			if err != nil {
				return nil, err
			}
			if id < 0 || id >= g.NumEdges() {
				return nil, fmt.Errorf("graph: line %d: edge ID %d out of range", lineNo, id)
			}
			wt, err := atoi64Field(fields, 2, lineNo)
			if err != nil {
				return nil, err
			}
			g.SetEdgeWeight(id, wt)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return g, nil
}

func atoiField(fields []string, i, lineNo int) (int, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("graph: line %d: missing field %d", lineNo, i)
	}
	v, err := strconv.Atoi(fields[i])
	if err != nil {
		return 0, fmt.Errorf("graph: line %d: bad integer %q: %w", lineNo, fields[i], err)
	}
	return v, nil
}

func atoi64Field(fields []string, i, lineNo int) (int64, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("graph: line %d: missing field %d", lineNo, i)
	}
	v, err := strconv.ParseInt(fields[i], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("graph: line %d: bad integer %q: %w", lineNo, fields[i], err)
	}
	return v, nil
}

// WriteDOT writes g in Graphviz DOT format for visualization.
func WriteDOT(w io.Writer, g *Graph, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "graph %s {\n", name)
	labels := g.VertexLabelNames()
	for v := 0; v < g.NumVertices(); v++ {
		var attrs []string
		var has []string
		for _, label := range labels {
			if g.HasVertexLabel(label, v) {
				has = append(has, label)
			}
		}
		if len(has) > 0 {
			attrs = append(attrs, fmt.Sprintf("label=\"%d:%s\"", v, strings.Join(has, ",")))
		}
		if len(attrs) > 0 {
			fmt.Fprintf(bw, "  %d [%s];\n", v, strings.Join(attrs, " "))
		} else {
			fmt.Fprintf(bw, "  %d;\n", v)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// CanonicalKey returns a string that is identical for equal graphs (same
// vertex numbering, edges, labels, weights). It is *not* an isomorphism
// invariant; see IsomorphicSmall for that.
func CanonicalKey(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d;", g.NumVertices())
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "%d-%d;", e.U, e.V)
	}
	for _, label := range g.VertexLabelNames() {
		fmt.Fprintf(&b, "vl:%s=", label)
		for v := 0; v < g.NumVertices(); v++ {
			if g.HasVertexLabel(label, v) {
				fmt.Fprintf(&b, "%d,", v)
			}
		}
		b.WriteByte(';')
	}
	for _, label := range g.EdgeLabelNames() {
		fmt.Fprintf(&b, "el:%s=", label)
		for _, e := range g.Edges() {
			if g.HasEdgeLabel(label, e.ID) {
				fmt.Fprintf(&b, "%d,", e.ID)
			}
		}
		b.WriteByte(';')
	}
	var weighted []string
	for v := 0; v < g.NumVertices(); v++ {
		if wt := g.VertexWeight(v); wt != 0 {
			weighted = append(weighted, fmt.Sprintf("vw%d=%d", v, wt))
		}
	}
	for _, e := range g.Edges() {
		if wt := g.EdgeWeight(e.ID); wt != 0 {
			weighted = append(weighted, fmt.Sprintf("ew%d=%d", e.ID, wt))
		}
	}
	sort.Strings(weighted)
	b.WriteString(strings.Join(weighted, ";"))
	return b.String()
}
